#!/usr/bin/env python
"""Edge blending demo: what the audience sees on the projector wall.

Decodes a clip in parallel on a 2x2 wall with a 16-pixel projector overlap
(the Princeton wall used ~40 px at full scale), then writes three PPM
images to ./blending_out/:

- wall_exact.ppm      — the exact assembled wall image (correctness path)
- wall_unblended.ppm  — what overlapping projectors would show with no
                        blending (bright seams: each overlap pixel is lit
                        twice)
- wall_blended.ppm    — with the linear edge-blend ramps applied (seams
                        disappear)

    python examples/edge_blending_demo.py
"""

from pathlib import Path

import numpy as np

from repro.mpeg2 import Encoder, EncoderConfig
from repro.mpeg2.frames import Frame
from repro.mpeg2.video_io import write_ppm
from repro.parallel.pipeline import ParallelDecoder
from repro.wall.display import edge_blend_weights, projected_wall_luma
from repro.wall.layout import TileLayout
from repro.workloads import fish_tank_frames


def main() -> None:
    out_dir = Path("blending_out")
    out_dir.mkdir(exist_ok=True)

    width, height, overlap = 256, 160, 16
    frames = fish_tank_frames(width, height, 8, seed=6)
    stream = Encoder(EncoderConfig(gop_size=8, b_frames=1)).encode(frames)

    layout = TileLayout(width, height, 2, 2, overlap=overlap)
    pdec = ParallelDecoder(layout, k=2)

    # Intercept per-tile frames for the last displayed picture.
    tile_frames = {}
    wall_frames = pdec.decode(stream)
    # Re-run the final picture's assembly inputs: decode again, keeping
    # the per-tile results this time (cheap at this scale).
    from repro.mpeg2.decoder import decode_stream

    ref = decode_stream(stream)[-1]

    # Reconstruct per-tile views from the exact wall image: each tile
    # displays its rect of the video.
    for tile in layout:
        tile_frames[tile.tid] = ref

    # 1. exact assembly (what the decoders jointly computed)
    write_ppm(out_dir / "wall_exact.ppm", wall_frames[-1])

    # 2. unblended projection: overlap pixels receive light twice
    acc = np.zeros((height, width), dtype=np.float64)
    for tile in layout:
        r = tile.rect
        acc[r.y0 : r.y1, r.x0 : r.x1] += ref.y[r.y0 : r.y1, r.x0 : r.x1]
    unblended = np.clip(acc, 0, 255).astype(np.uint8)
    write_ppm(
        out_dir / "wall_unblended.ppm",
        Frame(
            unblended,
            wall_frames[-1].cb.copy(),
            wall_frames[-1].cr.copy(),
        ),
    )

    # 3. blended projection: ramps sum to one across each overlap band
    blended = projected_wall_luma(layout, tile_frames)
    write_ppm(
        out_dir / "wall_blended.ppm",
        Frame(blended, wall_frames[-1].cb.copy(), wall_frames[-1].cr.copy()),
    )

    seam_err_unblended = np.abs(
        unblended.astype(int) - ref.y.astype(int)
    ).max()
    seam_err_blended = np.abs(blended.astype(int) - ref.y.astype(int)).max()
    print(f"wrote 3 images to {out_dir}/")
    print(f"max luma error vs exact image: unblended={seam_err_unblended} "
          f"(double-lit seams), blended={seam_err_blended}")
    w = edge_blend_weights(layout, 0)
    print(f"tile 0 blend ramp: interior weight {w[0, 0]:.1f}, "
          f"seam column weights {w[0, -overlap]:.2f}..{w[0, -1]:.2f}")


if __name__ == "__main__":
    main()
