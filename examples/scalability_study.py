#!/usr/bin/env python
"""Scalability study: reproduce the shape of figures 6 and 8.

Sweeps screen configurations for a DVD and an HDTV stream, with and
without second-level splitters (figure 6), then runs every Table 4 stream
on its resolution-matched wall and reports the aggregate pixel decoding
rate versus node count (figure 8).

    python examples/scalability_study.py
"""

from repro.perf.experiments import figure8, table5, table6


def main() -> None:
    print("figure 6 — one-level vs two-level frame rate")
    print(f"{'stream':>6} {'config':>12} {'nodes':>5} {'1-level fps':>12} "
          f"{'2-level cfg':>12} {'2-level fps':>12}")
    for r in table5(n_frames=30):
        print(f"{r['stream']:>6} {r['one_level_config']:>12} "
              f"{r['one_level_nodes']:>5} {r['one_level_fps']:>12.1f} "
              f"{r['two_level_config']:>12} {r['two_level_fps']:>12.1f}")
    print("\n-> the one-level splitter saturates beyond ~4 decoders; the")
    print("   hierarchy keeps scaling (paper §5.3-§5.4).\n")

    print("table 6 / figure 8 — resolution scalability")
    rows = table6(n_frames=30)
    print(f"{'stream':>6} {'resolution':>12} {'config':>12} {'nodes':>5} "
          f"{'fps':>7} {'Mpps':>8}")
    for r in rows:
        print(f"{r['stream']:>6} {r['resolution']:>12} {r['config']:>12} "
              f"{r['nodes']:>5} {r['fps']:>7.1f} {r['pixel_rate_mpps']:>8.1f}")

    print("\npixel decoding rate vs number of nodes (figure 8):")
    for nodes, rate in figure8(rows):
        bar = "#" * int(rate / 8)
        print(f"  {nodes:3d} nodes {rate:8.1f} Mpps  {bar}")
    print("\n-> near-linear growth; the four Orion streams dip slightly")
    print("   because their detail is localized in a few tiles (paper §5.5).")


if __name__ == "__main__":
    main()
