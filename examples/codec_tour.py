#!/usr/bin/env python
"""Tour of the MPEG-2 codec substrate: syntax, pictures, macroblocks.

Shows the layers the parallel decoder is built from: bitstream scanning
(what the root splitter does), macroblock parsing (what a second-level
splitter does), and full reconstruction (what tile decoders do).

    python examples/codec_tour.py
"""

from collections import Counter

from repro.mpeg2 import Encoder, EncoderConfig, decode_stream, psnr
from repro.mpeg2.parser import MacroblockParser, PictureScanner
from repro.workloads import fish_tank_frames


def main() -> None:
    frames = fish_tank_frames(160, 96, 9, seed=2)
    enc = Encoder(EncoderConfig(gop_size=9, b_frames=2, search_range=7))
    stream = enc.encode(frames)
    print(f"encoded {len(frames)} frames -> {len(stream)} bytes")
    print("picture sizes by coded order:",
          [f"{t.name}:{s}" for t, s in
           zip(enc.stats.picture_types, enc.stats.picture_sizes)])

    # Layer 1 — picture-level scan (the root splitter's whole job):
    scanner = PictureScanner(stream)
    sequence, pictures = scanner.scan()
    print(f"\nsequence: {sequence.width}x{sequence.height} "
          f"@ {sequence.frame_rate:.0f} fps, {len(pictures)} coded pictures")

    # Layer 2 — macroblock-level parse (the second-level splitter's job):
    parser = MacroblockParser(sequence)
    for unit in pictures[:4]:
        parsed = parser.parse_picture(unit.data)
        modes = Counter(
            "intra" if it.mb.intra
            else "skipped" if it.mb.skipped
            else "inter"
            for it in parsed.items
        )
        mvs = [it.mb.mv_fwd for it in parsed.items if it.mb.mv_fwd]
        max_mv = max((max(abs(v[0]), abs(v[1])) for v in mvs), default=0)
        print(f"  picture {unit.coded_index} "
              f"({parsed.header.picture_type.name}): "
              f"{dict(modes)}, max |mv| = {max_mv / 2:.1f} px")

    # Layer 3 — full reconstruction:
    decoded = decode_stream(stream)
    quality = [psnr(a, b) for a, b in zip(frames, decoded)]
    print(f"\ndecoded {len(decoded)} frames, "
          f"PSNR {min(quality):.1f}..{max(quality):.1f} dB")


if __name__ == "__main__":
    main()
