#!/usr/bin/env python
"""The paper's headline experiment: play the 3840x2800 Orion-nebula flyby
on a 4x4 display wall driven by 21 PCs — a 1-4-(4,4) system.

This uses the timed discrete-event simulation (the Princeton wall hardware
retired two decades ago); costs are calibrated to the paper's 733 MHz
Pentium III + Myrinet platform.  Expected output: ~38-39 fps, matching the
paper's 38.9 fps.

    python examples/display_wall_playback.py [stream_id]
"""

import sys

from repro.parallel.system import run_system
from repro.perf.metrics import RuntimeBreakdown
from repro.workloads import stream_by_id


def main(stream_id: int = 16) -> None:
    spec = stream_by_id(stream_id)
    print(f"stream {spec.sid} ({spec.name}): {spec.width}x{spec.height}, "
          f"{spec.bpp} bpp, ~{spec.bit_rate_mbps:.0f} Mb/s at {spec.fps:.0f} fps")

    result = run_system(spec, m=4, n=4, k=4, n_frames=60)
    nodes = 1 + 4 + 16
    print(f"\nconfiguration {result.label} ({nodes} PCs: 1 console, "
          f"4 splitters, 16 decoders)")
    print(f"frame rate: {result.fps:.1f} fps "
          f"(paper: 38.9 fps for this setup)")
    print(f"pixel rate: {result.pixel_rate_mpps:.0f} Mpixels/s")
    eq_mbps = result.fps * spec.avg_frame_bytes * 8 / 1e6
    print(f"equivalent bit rate: {eq_mbps:.0f} Mb/s (paper: ~130 Mb/s)")

    mean = result.mean_breakdown()
    fr = mean.fractions()
    print("\naverage decoder runtime breakdown (figure 7 buckets):")
    for bucket in RuntimeBreakdown.BUCKETS:
        ms = 1e3 * getattr(mean, bucket) / result.n_frames
        print(f"  {bucket:12s} {ms:6.2f} ms/frame  ({fr[bucket]:5.1%})")

    print("\nper-node bandwidth (figure 9; MB/s) and CPU utilization:")
    for name, (send, recv) in result.bandwidth.items():
        util = result.utilization.get(name, 0.0)
        print(f"  {name:12s} send {send:6.2f}   recv {recv:6.2f}   cpu {util:5.1%}")

    print(f"\nflow-control violations: {result.flow_control_violations} "
          "(the ack/ANID protocol keeps every arrival inside a posted buffer)")


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 16)
