#!/usr/bin/env python
"""Quickstart: encode a clip, decode it in parallel on a 2x2 wall, and
verify the result is bit-exact against the sequential reference decoder.

Runs in a few seconds on a laptop; everything is pure Python/NumPy.

    python examples/quickstart.py
"""

from repro.mpeg2 import Encoder, EncoderConfig, decode_stream, psnr
from repro.parallel import ParallelDecoder
from repro.wall import TileLayout
from repro.workloads import moving_pattern_frames


def main() -> None:
    # 1. Synthesize a small clip (the paper's streams are copyrighted
    #    movies/flybys; see repro.workloads for profile-matched generators).
    width, height, n_frames = 192, 128, 12
    frames = moving_pattern_frames(width, height, n_frames, seed=1)

    # 2. Compress it with the from-scratch MPEG-2 encoder (IBBP GOPs).
    encoder = Encoder(EncoderConfig(gop_size=6, b_frames=2, search_range=7))
    stream = encoder.encode(frames)
    bpp = 8 * len(stream) / (width * height * n_frames)
    print(f"encoded {n_frames} frames at {width}x{height}: "
          f"{len(stream)} bytes ({bpp:.2f} bits/pixel)")

    # 3. Decode sequentially (the correctness oracle)...
    reference = decode_stream(stream)
    print(f"sequential decode: {len(reference)} frames, "
          f"PSNR vs source {psnr(frames[0], reference[0]):.1f} dB")

    # 4. ...and in parallel on a 2x2 tiled wall with 2 second-level
    #    splitters and an 8-pixel projector overlap: a 1-2-(2,2) system.
    layout = TileLayout(width, height, m=2, n=2, overlap=8)
    pdec = ParallelDecoder(layout, k=2, verify_overlaps=True)
    wall_frames = pdec.decode(stream)

    # 5. The parallel wall image must equal the sequential decode *bit for
    #    bit* — this is the property the SPH/MEI machinery guarantees.
    worst = max(a.max_abs_diff(b) for a, b in zip(reference, wall_frames))
    assert worst == 0, "parallel decode diverged from the reference!"
    print(f"parallel 1-2-(2,2) decode: {len(wall_frames)} frames, "
          f"max abs difference vs sequential = {worst} (bit-exact)")

    # 6. Peek at what the machinery did.
    s = pdec.stats
    print(f"pictures split: {s.pictures} "
          f"(per splitter: {s.splitter_pictures})")
    print(f"reference-block exchanges: {s.exchange_count} "
          f"({s.exchange_bytes / 1e3:.1f} kB moved between tiles)")
    print(f"sub-picture overhead (SPH + framing): "
          f"{s.sph_overhead_fraction:.1%} of copied payload")


if __name__ == "__main__":
    main()
