#!/usr/bin/env python
"""Automatic configuration (the paper's §6 future work, implemented).

Given a stream and a target frame rate, pick (k, m, n): match tiles to the
video resolution, then take the smallest splitter count whose predicted
rate F = min(k/t_s, 1/t_d) meets the target — and validate the choice in
the timed simulator.

    python examples/auto_configuration.py
"""

from repro.parallel.config import auto_configure, optimal_k, predicted_frame_rate
from repro.parallel.system import TimedSystem
from repro.perf.costmodel import CostModel
from repro.wall.layout import TileLayout
from repro.workloads import TABLE4_STREAMS


def main() -> None:
    cost = CostModel()
    print(f"{'stream':>6} {'resolution':>12} {'target':>7} {'chosen':>12} "
          f"{'model fps':>10} {'simulated':>10}")
    for spec in TABLE4_STREAMS:
        target = 30.0

        def t_d_of(m, n):
            return cost.t_d(spec, TileLayout(spec.width, spec.height, m, n))

        cfg = auto_configure(
            t_s=cost.t_s(spec),
            t_d_of=t_d_of,
            video_w=spec.width,
            video_h=spec.height,
            target_fps=target,
        )
        layout = TileLayout(spec.width, spec.height, cfg.m, cfg.n)
        model = predicted_frame_rate(cfg.k, cost.t_s(spec), cost.t_d(spec, layout))
        sim = TimedSystem(spec, layout, cfg.k, cost=cost, n_frames=30).run()
        print(f"{spec.sid:>6} {spec.width}x{spec.height:>6} {target:>7.0f} "
              f"{cfg.label():>12} {model:>10.1f} {sim.fps:>10.1f}")

    s16 = TABLE4_STREAMS[-1]
    layout = TileLayout(s16.width, s16.height, 4, 4)
    k_star = optimal_k(cost.t_s(s16), cost.t_d(s16, layout))
    print(f"\noptimal k for stream 16 on 4x4 (k* = ceil(t_s/t_d)): {k_star}")
    print("(the paper chose k empirically by raising it until fps stopped")
    print(" improving; §6 proposes exactly this kind of automation)")


if __name__ == "__main__":
    main()
