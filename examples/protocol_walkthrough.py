#!/usr/bin/env python
"""Protocol walkthrough: watch one picture move through the hierarchy.

Builds a tiny 1-2-(2,2) system, runs ten pictures through the timed
simulator with timeline tracing, and prints:

1. the Figure 5 activity gantt (root / splitters / decoders);
2. the per-node phase totals;
3. the sub-picture anatomy of one picture (SPH fields, runs, skips, MEI).

    python examples/protocol_walkthrough.py
"""

from repro.mpeg2.encoder import Encoder, EncoderConfig
from repro.mpeg2.parser import PictureScanner
from repro.parallel.mb_splitter import MacroblockSplitter
from repro.parallel.subpicture import RunRecord, SkipRecord
from repro.parallel.system import TimedSystem
from repro.perf.timeline import TimelineTrace, render_ascii
from repro.wall.layout import TileLayout
from repro.workloads import moving_pattern_frames, stream_by_id


def show_timeline() -> None:
    spec = stream_by_id(8)
    layout = TileLayout(spec.width, spec.height, 2, 2)
    trace = TimelineTrace()
    res = TimedSystem(spec, layout, k=2, n_frames=10, trace=trace).run()
    lo, hi = trace.window()
    print("=== Figure 5: flow of work units, 1-2-(2,2), stream 8 "
          f"({res.fps:.0f} fps) ===")
    print(render_ascii(trace, width=100, t0=lo, t1=lo + (hi - lo) * 0.55))
    print("\nper-node time in each phase (ms):")
    for actor in trace.actors():
        totals = trace.phase_totals(actor)
        body = "  ".join(f"{p}={1e3 * v:.1f}" for p, v in sorted(totals.items()))
        print(f"  {actor:11s} {body}")


def show_subpicture_anatomy() -> None:
    frames = moving_pattern_frames(96, 64, 5, seed=21)
    stream = Encoder(EncoderConfig(gop_size=5, b_frames=1)).encode(frames)
    seq, pics = PictureScanner(stream).scan()
    layout = TileLayout(seq.width, seq.height, 2, 2)
    splitter = MacroblockSplitter(seq, layout)
    result = splitter.split(pics[1], 1)  # a P picture

    print("\n=== Anatomy of one split P picture (96x64 on a 2x2 wall) ===")
    for tid, sp in result.subpictures.items():
        runs = [r for r in sp.records if isinstance(r, RunRecord)]
        skips = [r for r in sp.records if isinstance(r, SkipRecord)]
        prog = result.mei.program(tid)
        print(f"tile {tid}: {sp.n_macroblocks} MBs in {len(runs)} runs"
              f" + {len(skips)} skip records; "
              f"{len(sp.serialize())} B on the wire "
              f"({sp.payload_bytes} payload); "
              f"MEI: {len(prog.sends)} sends / {len(prog.recvs)} recvs")
        if runs:
            r = runs[0]
            print(f"    first run: addr={r.sph.address} "
                  f"coded={r.n_coded}/{r.n_total} skip_bits={r.sph.skip_bits} "
                  f"qscale={r.sph.qscale_code} dc_pred={r.sph.dc_pred} "
                  f"pmv={r.sph.pmv}")
    total = result.mei.total_exchanges()
    print(f"picture-wide reference exchanges pre-calculated: {total}")


if __name__ == "__main__":
    show_timeline()
    show_subpicture_anatomy()
