"""Cluster runtime — threaded single-process vs. real multi-process decode.

Decodes the same 1080p-class synthetic stream with the threaded runner
(one process, ``1 + k + m*n`` threads) and with the multi-process cluster
runtime at 1, 2 and 4 tile-decoder processes, recording wall time, fps,
per-stage time *per process* (parse/plan/execute/wire, harvested from the
cross-process trace stream), and bit-identity against the sequential
decoder to ``BENCH_cluster.json`` at the repo root.

The 4-process grid runs twice — with plan shipping (the default: splitters
compile reconstruction plans, decoders never run VLC) and with the
sub-picture bitstream fallback (decoders re-parse) — so the JSON shows the
attribution shift directly: with plans on, every decoder's ``parse`` is 0.

Honesty note: the committed numbers are whatever the build machine
provides — the ``cores`` field records it.  On a single-core box the
process fleet time-slices one CPU, so multi-process cannot beat threaded
there; the paper's speedup needs ``cores >= 2``, which is asserted only
*for* such machines, never faked on smaller ones.  A ``warning`` field
flags single-core runs.

Run under pytest-benchmark with the other tables/figures or directly:
``PYTHONPATH=src python benchmarks/bench_cluster.py``.
"""

import json
import os
import sys
import threading
import time
from pathlib import Path

from repro.cluster.runtime import ClusterSupervisor, WallConfig
from repro.obs.plane import obs_snapshot, snapshot_text
from repro.mpeg2.decoder import decode_stream
from repro.mpeg2.encoder import Encoder, EncoderConfig
from repro.parallel.threaded import ThreadedParallelDecoder
from repro.wall.layout import TileLayout
from repro.workloads.synthetic import GENERATORS

WIDTH, HEIGHT, N_FRAMES = 1920, 1088, 4
GOP_SIZE, B_FRAMES = 4, 1
OUT_PATH = Path(__file__).resolve().parent.parent / "BENCH_cluster.json"

#: (label, m, n, ship_plans, telemetry, use_shm_pool) — 1, 2 and 4
#: tile-decoder processes with plan shipping, the 4-process bitstream
#: fallback for the attribution comparison, a telemetry-off 4-process run
#: measuring the span-instrumentation overhead, and a pool-off 4-process
#: run so the JSON carries the shared-memory zero-copy delta.
CLUSTER_GRIDS = [
    ("cluster_1proc", 1, 1, True, True, True),
    ("cluster_2proc", 2, 1, True, True, True),
    ("cluster_4proc", 2, 2, True, True, True),
    ("cluster_4proc_bitstream", 2, 2, False, True, True),
    ("cluster_4proc_notelemetry", 2, 2, True, False, True),
    ("cluster_4proc_nopool", 2, 2, True, True, False),
]


class _ObsPoller:
    """An obs-plane scraper running alongside a decode.

    Accumulates the wall time actually spent building and encoding
    snapshots; :meth:`overhead_pct_at_1hz` is that per-scrape cost
    expressed as the percentage of wall time a 1 Hz collector would
    consume — the on/off wall-clock delta without the run-to-run noise
    that swamps a sub-percent figure.  Sampling runs faster than 1 Hz so
    short runs still collect a few scrapes to average.
    """

    def __init__(self, interval: float = 0.25):
        self.interval = interval
        self.busy_s = 0.0
        self.polls = 0
        self._stop = threading.Event()
        self._thread = threading.Thread(target=self._loop, daemon=True)

    def _loop(self) -> None:
        while not self._stop.wait(self.interval):
            t0 = time.perf_counter()
            snapshot_text(obs_snapshot())
            self.busy_s += time.perf_counter() - t0
            self.polls += 1

    def __enter__(self) -> "_ObsPoller":
        self._thread.start()
        return self

    def __exit__(self, *exc) -> None:
        self._stop.set()
        self._thread.join(timeout=5.0)

    def overhead_pct_at_1hz(self) -> float:
        """Scrape seconds per second of wall time at a 1 Hz cadence."""
        if not self.polls:
            return 0.0
        return 100.0 * (self.busy_s / self.polls) * 1.0


def run_cluster_bench() -> dict:
    frames = GENERATORS["pattern"](WIDTH, HEIGHT, N_FRAMES, seed=0)
    stream = Encoder(
        EncoderConfig(gop_size=GOP_SIZE, b_frames=B_FRAMES, search_range=3)
    ).encode(frames)
    reference = decode_stream(stream)

    # The affinity mask, not the box's core count: under cgroup/taskset
    # restriction os.cpu_count() overstates what the fleet can actually
    # use, and the honesty checks below key off this number.
    if hasattr(os, "sched_getaffinity"):
        cores = len(os.sched_getaffinity(0))
    else:  # pragma: no cover - non-Linux fallback
        cores = os.cpu_count()
    report = {
        "stream": {
            "width": WIDTH,
            "height": HEIGHT,
            "frames": N_FRAMES,
            "gop_size": GOP_SIZE,
            "b_frames": B_FRAMES,
            "bytes": len(stream),
        },
        "cores": cores,
        "modes": {},
    }
    if cores is not None and cores < 2:
        report["warning"] = (
            "single-core machine: processes time-slice one CPU, so the "
            "multi-process numbers measure protocol overhead, not speedup"
        )
        print(f"WARNING: {report['warning']}", file=sys.stderr)

    def record(name, out, wall, extra=None):
        identical = len(out) == len(reference) and all(
            a.max_abs_diff(b) == 0 for a, b in zip(reference, out)
        )
        report["modes"][name] = {
            "wall_s": round(wall, 4),
            "frames_per_s": round(N_FRAMES / wall, 3),
            "bit_identical": identical,
            **(extra or {}),
        }

    layout = TileLayout(WIDTH, HEIGHT, 2, 2)
    t0 = time.perf_counter()
    out = ThreadedParallelDecoder(layout, k=1).decode(stream, timeout=600)
    record("threaded_2x2", out, time.perf_counter() - t0, {"processes": 1, "threads": 6})

    for name, m, n, ship_plans, telemetry, use_shm_pool in CLUSTER_GRIDS:
        sup = ClusterSupervisor(
            WallConfig(
                m=m, n=n, k=1, transport="unix",
                ship_plans=ship_plans, telemetry=telemetry,
                use_shm_pool=use_shm_pool,
                # Only pins when the affinity mask offers >= 2 cores.
                pin_cores=True,
            )
        )
        # the 1 Hz obs scrape rides along the reference grid so its cost
        # is measured against a real decode, not an idle process
        poller = _ObsPoller() if name == "cluster_4proc" else None
        t0 = time.perf_counter()
        if poller is not None:
            with poller:
                out = sup.decode(stream, timeout=600)
        else:
            out = sup.decode(stream, timeout=600)
        wall = time.perf_counter() - t0
        if poller is not None:
            report["obs_overhead_pct"] = round(
                poller.overhead_pct_at_1hz(), 4
            )
            report["obs_polls"] = poller.polls
        stages = {
            proc: {
                "parse_s": round(st.parse, 4),
                "plan_s": round(st.plan, 4),
                "execute_s": round(st.execute, 4),
                "wire_s": round(st.wire, 4),
                "pictures": st.pictures,
            }
            for proc, st in sorted(sup.stage_times_by_proc.items())
        }
        record(
            name,
            out,
            wall,
            {
                "processes": 2 + m * n,
                "ship_plans": ship_plans,
                "telemetry": telemetry,
                "use_shm_pool": use_shm_pool,
                "decoder_stage_s": round(sup.stage_times.total, 4),
                "decoder_pictures": sup.stage_times.pictures,
                "decoder_parse_s": round(sup.stage_times.parse, 4),
                "stages": stages,
            },
        )

    # span/stats instrumentation overhead: the 4-process grid with and
    # without telemetry (same config otherwise).  Noisy on loaded boxes;
    # recorded, not asserted.
    on = report["modes"]["cluster_4proc"]["wall_s"]
    off = report["modes"]["cluster_4proc_notelemetry"]["wall_s"]
    report["telemetry_overhead_pct"] = round(100.0 * (on - off) / off, 2)

    # Shared-memory pool delta: negative means by-handle shipping beat
    # by-value socket copies on this box.  Recorded, not asserted —
    # the win scales with frame bytes, not with protocol chatter.
    pool_on = report["modes"]["cluster_4proc"]["wall_s"]
    pool_off = report["modes"]["cluster_4proc_nopool"]["wall_s"]
    report["shm_pool_delta_pct"] = round(100.0 * (pool_on - pool_off) / pool_off, 2)

    return report


def _check(report: dict) -> None:
    for name, mode in report["modes"].items():
        assert mode["bit_identical"], f"{name} diverged from the sequential decoder"
    # Plan shipping means decoders never touch VLC: their aggregated parse
    # stage is exactly zero, while the bitstream fallback's is not.
    assert report["modes"]["cluster_4proc"]["decoder_parse_s"] == 0.0
    assert report["modes"]["cluster_4proc_bitstream"]["decoder_parse_s"] > 0.0
    # 1 Hz obs-plane scraping must stay in the noise floor
    assert report["obs_overhead_pct"] < 2.0, report["obs_overhead_pct"]
    # The paper's claim — multi-process beats one process — only holds
    # with real parallel hardware; never pretend on a single-core box.
    if report["cores"] and report["cores"] >= 2:
        assert (
            report["modes"]["cluster_4proc"]["frames_per_s"]
            > 0.5 * report["modes"]["threaded_2x2"]["frames_per_s"]
        )


def test_cluster(benchmark):
    from conftest import print_table, run_once

    report = run_once(benchmark, run_cluster_bench)
    _check(report)
    OUT_PATH.write_text(json.dumps(report, indent=2) + "\n")
    print_table(
        f"Cluster runtime ({WIDTH}x{HEIGHT}, {N_FRAMES} frames, "
        f"{report['cores']} core(s))",
        ["mode", "procs", "wall", "fps", "dec parse", "bit-identical"],
        [
            (
                name,
                str(m["processes"]),
                f"{m['wall_s']:.2f} s",
                f"{m['frames_per_s']:.3f}",
                f"{m.get('decoder_parse_s', 0.0):.3f} s",
                "yes" if m["bit_identical"] else "NO",
            )
            for name, m in report["modes"].items()
        ],
    )


if __name__ == "__main__":
    result = run_cluster_bench()
    _check(result)
    OUT_PATH.write_text(json.dumps(result, indent=2) + "\n")
    print(json.dumps(result, indent=2))
