"""Fast path — table-driven VLC + two-phase batched reconstruction.

Decodes the same 1080p-class synthetic stream through both reconstruction
engines of the sequential decoder and records the stage split (parse vs.
plan vs. execute), throughput in macroblocks/s and frames/s, and two
speedups to ``BENCH_fastpath.json`` at the repo root:

- ``reconstruct_speedup`` — per-macroblock reference vs. batched engine;
- ``parse_speedup`` — bit-at-a-time reference VLC vs. the table-driven
  fast parser (both decoding the batched path).

Both fast paths must be *bit-identical* to their reference — this bench
asserts it on every run, so the committed baseline numbers always
correspond to an output-equivalent configuration.

Run either under pytest-benchmark with the other tables/figures or
directly: ``PYTHONPATH=src python benchmarks/bench_fastpath.py``.
CI runs the smoke variant ``--frames 1 --small`` under a time budget.
"""

import argparse
import json
import time
from pathlib import Path

from repro.mpeg2 import fast_vlc
from repro.mpeg2.decoder import Decoder
from repro.mpeg2.encoder import Encoder, EncoderConfig
from repro.workloads.synthetic import GENERATORS

WIDTH, HEIGHT, N_FRAMES = 1920, 1088, 4
SMALL_WIDTH, SMALL_HEIGHT = 640, 384
GOP_SIZE, B_FRAMES = 4, 1
OUT_PATH = Path(__file__).resolve().parent.parent / "BENCH_fastpath.json"


def run_fastpath(width: int = WIDTH, height: int = HEIGHT, n_frames: int = N_FRAMES) -> dict:
    frames = GENERATORS["pattern"](width, height, n_frames, seed=0)
    stream = Encoder(
        EncoderConfig(gop_size=GOP_SIZE, b_frames=B_FRAMES, search_range=3)
    ).encode(frames)
    n_mb = (width // 16) * (height // 16) * n_frames

    report = {
        "stream": {
            "width": width,
            "height": height,
            "frames": n_frames,
            "gop_size": GOP_SIZE,
            "b_frames": B_FRAMES,
            "bytes": len(stream),
            "macroblocks": n_mb,
        },
        "modes": {},
    }
    outputs = {}

    def measure(name, batch, reference_vlc=False):
        dec = Decoder(batch_reconstruct=batch)
        t0 = time.perf_counter()
        if reference_vlc:
            with fast_vlc.use_reference():
                outputs[name] = dec.decode(stream)
        else:
            outputs[name] = dec.decode(stream)
        wall = time.perf_counter() - t0
        st = dec.stage_times
        report["modes"][name] = {
            "parse_s": round(st.parse, 4),
            "plan_s": round(st.plan, 4),
            "execute_s": round(st.execute, 4),
            "reconstruct_s": round(st.reconstruct, 4),
            "wall_s": round(wall, 4),
            "reconstruct_mb_per_s": round(n_mb / st.reconstruct, 1),
            "frames_per_s": round(n_frames / wall, 2),
        }

    measure("per_macroblock", batch=False)
    measure("batched", batch=True)
    measure("batched_reference_vlc", batch=True, reference_vlc=True)

    ref, bat = outputs["per_macroblock"], outputs["batched"]
    refvlc = outputs["batched_reference_vlc"]
    report["bit_identical"] = (
        len(ref) == len(bat) == len(refvlc)
        and all(a == b for a, b in zip(ref, bat))
        and all(a == b for a, b in zip(bat, refvlc))
    )
    report["reconstruct_speedup"] = round(
        report["modes"]["per_macroblock"]["reconstruct_s"]
        / report["modes"]["batched"]["reconstruct_s"],
        2,
    )
    report["parse_speedup"] = round(
        report["modes"]["batched_reference_vlc"]["parse_s"]
        / report["modes"]["batched"]["parse_s"],
        2,
    )
    return report


def _check(report: dict) -> None:
    assert report["bit_identical"], "fast path output diverged from reference"
    # Regression guards only — the committed baseline documents the real
    # margins (>= 3x reconstruct, >= 2x parse on the full-size stream); a
    # loaded CI box still must beat 1x.
    assert report["reconstruct_speedup"] > 1.0
    assert report["parse_speedup"] > 1.0


def test_fastpath(benchmark):
    from conftest import print_table, run_once

    report = run_once(benchmark, run_fastpath)
    _check(report)
    OUT_PATH.write_text(json.dumps(report, indent=2) + "\n")
    print_table(
        f"Fast path ({WIDTH}x{HEIGHT}, {N_FRAMES} frames)",
        ["mode", "parse", "plan", "execute", "reconstruct", "MB/s", "fps"],
        [
            (
                name,
                f"{m['parse_s']:.2f} s",
                f"{m['plan_s']:.2f} s",
                f"{m['execute_s']:.2f} s",
                f"{m['reconstruct_s']:.2f} s",
                f"{m['reconstruct_mb_per_s']:.0f}",
                f"{m['frames_per_s']:.2f}",
            )
            for name, m in report["modes"].items()
        ],
    )
    print(f"reconstruct speedup: {report['reconstruct_speedup']}x")
    print(f"parse speedup: {report['parse_speedup']}x")


def main() -> None:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--frames", type=int, default=N_FRAMES, help="frames to encode/decode")
    ap.add_argument(
        "--small",
        action="store_true",
        help=f"use a {SMALL_WIDTH}x{SMALL_HEIGHT} raster (CI smoke) instead of {WIDTH}x{HEIGHT}",
    )
    ap.add_argument("--out", type=Path, default=OUT_PATH, help="output JSON path")
    args = ap.parse_args()

    w, h = (SMALL_WIDTH, SMALL_HEIGHT) if args.small else (WIDTH, HEIGHT)
    result = run_fastpath(w, h, args.frames)
    _check(result)
    args.out.write_text(json.dumps(result, indent=2) + "\n")
    print(json.dumps(result, indent=2))


if __name__ == "__main__":
    main()
