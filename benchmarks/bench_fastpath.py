"""Fast path — per-macroblock reference vs. two-phase batched reconstruction.

Decodes the same 1080p-class synthetic stream through both reconstruction
engines of the sequential decoder and records the stage split (parse vs.
plan vs. execute), throughput in macroblocks/s and frames/s, and the
reconstruction-phase speedup to ``BENCH_fastpath.json`` at the repo root.

The batched engine must be *bit-identical* to the reference path — this
bench asserts it on every run, so the committed baseline numbers always
correspond to an output-equivalent configuration.

Run either under pytest-benchmark with the other tables/figures or
directly: ``PYTHONPATH=src python benchmarks/bench_fastpath.py``.
"""

import json
import time
from pathlib import Path

from repro.mpeg2.decoder import Decoder
from repro.mpeg2.encoder import Encoder, EncoderConfig
from repro.workloads.synthetic import GENERATORS

WIDTH, HEIGHT, N_FRAMES = 1920, 1088, 4
GOP_SIZE, B_FRAMES = 4, 1
OUT_PATH = Path(__file__).resolve().parent.parent / "BENCH_fastpath.json"


def run_fastpath() -> dict:
    frames = GENERATORS["pattern"](WIDTH, HEIGHT, N_FRAMES, seed=0)
    stream = Encoder(
        EncoderConfig(gop_size=GOP_SIZE, b_frames=B_FRAMES, search_range=3)
    ).encode(frames)
    n_mb = (WIDTH // 16) * (HEIGHT // 16) * N_FRAMES

    report = {
        "stream": {
            "width": WIDTH,
            "height": HEIGHT,
            "frames": N_FRAMES,
            "gop_size": GOP_SIZE,
            "b_frames": B_FRAMES,
            "bytes": len(stream),
            "macroblocks": n_mb,
        },
        "modes": {},
    }
    outputs = {}
    for flag, name in ((False, "per_macroblock"), (True, "batched")):
        dec = Decoder(batch_reconstruct=flag)
        t0 = time.perf_counter()
        outputs[name] = dec.decode(stream)
        wall = time.perf_counter() - t0
        st = dec.stage_times
        report["modes"][name] = {
            "parse_s": round(st.parse, 4),
            "plan_s": round(st.plan, 4),
            "execute_s": round(st.execute, 4),
            "reconstruct_s": round(st.reconstruct, 4),
            "wall_s": round(wall, 4),
            "reconstruct_mb_per_s": round(n_mb / st.reconstruct, 1),
            "frames_per_s": round(N_FRAMES / wall, 2),
        }

    ref, bat = outputs["per_macroblock"], outputs["batched"]
    bit_identical = len(ref) == len(bat) and all(
        a == b for a, b in zip(ref, bat)
    )
    report["bit_identical"] = bit_identical
    report["reconstruct_speedup"] = round(
        report["modes"]["per_macroblock"]["reconstruct_s"]
        / report["modes"]["batched"]["reconstruct_s"],
        2,
    )
    return report


def _check(report: dict) -> None:
    assert report["bit_identical"], "batched output diverged from reference"
    # Regression guard only — the committed baseline documents the real
    # margin (>= 3x on this stream); a loaded CI box still must beat 1x.
    assert report["reconstruct_speedup"] > 1.0


def test_fastpath(benchmark):
    from conftest import print_table, run_once

    report = run_once(benchmark, run_fastpath)
    _check(report)
    OUT_PATH.write_text(json.dumps(report, indent=2) + "\n")
    print_table(
        f"Fast path ({WIDTH}x{HEIGHT}, {N_FRAMES} frames)",
        ["mode", "parse", "plan", "execute", "reconstruct", "MB/s", "fps"],
        [
            (
                name,
                f"{m['parse_s']:.2f} s",
                f"{m['plan_s']:.2f} s",
                f"{m['execute_s']:.2f} s",
                f"{m['reconstruct_s']:.2f} s",
                f"{m['reconstruct_mb_per_s']:.0f}",
                f"{m['frames_per_s']:.2f}",
            )
            for name, m in report["modes"].items()
        ],
    )
    print(f"reconstruct speedup: {report['reconstruct_speedup']}x")


if __name__ == "__main__":
    result = run_fastpath()
    _check(result)
    OUT_PATH.write_text(json.dumps(result, indent=2) + "\n")
    print(json.dumps(result, indent=2))
