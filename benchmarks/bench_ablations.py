"""Ablations of the paper's design decisions (§4.2-§4.5 and future work).

Each ablation removes one mechanism the paper argues for and measures the
cost on the headline workload:

- **MEI pre-calculation vs demand fetching** (§4.2): blocking round trips
  and server-thread context switches vs pre-scheduled exchange.
- **Zero-copy transport** (§4.4): GM's no-memcpy path vs a copying stack.
- **ANID ack redirection** (§4.5): without it, unordered cross-sender
  delivery breaks picture ordering / overruns the two posted buffers.
- **Dynamic load balancing** (§6 future work): static vs cost-equalized
  partition lines on a localized-detail stream.
"""

from conftest import print_table, run_once

from repro.net.gm import NetworkParams
from repro.parallel.loadbalance import balanced_layout, imbalance
from repro.parallel.system import TimedSystem, run_system
from repro.wall.layout import TileLayout
from repro.workloads.streams import stream_by_id

S13 = stream_by_id(13)
S16 = stream_by_id(16)


def test_ablation_mei_precalculation(benchmark):
    def experiment():
        pre = run_system(S16, 4, 4, k=4, n_frames=24).fps
        demand = run_system(S16, 4, 4, k=4, n_frames=24, demand_fetch=True).fps
        return pre, demand

    pre, demand = run_once(benchmark, experiment)
    print_table(
        "MEI pre-calculation ablation (stream 16, 1-4-(4,4))",
        ["variant", "fps"],
        [("pre-calculated exchange (paper)", f"{pre:.1f}"),
         ("demand fetching", f"{demand:.1f}")],
    )
    assert pre > demand * 1.2


def test_ablation_zero_copy(benchmark):
    def experiment():
        zero = run_system(S16, 4, 4, k=4, n_frames=24).fps
        copying = run_system(
            S16, 4, 4, k=4, n_frames=24,
            net_params=NetworkParams(copy_cost_per_byte=4e-9),
        ).fps
        return zero, copying

    zero, copying = run_once(benchmark, experiment)
    print_table(
        "Zero-copy transport ablation (stream 16, 1-4-(4,4))",
        ["variant", "fps"],
        [("zero-copy GM (paper)", f"{zero:.1f}"),
         ("copying transport", f"{copying:.1f}")],
    )
    assert zero > copying


def test_ablation_anid_ordering(benchmark):
    def experiment():
        layout = TileLayout(stream_by_id(8).width, stream_by_id(8).height, 2, 2)
        sys_ = TimedSystem(
            stream_by_id(8),
            layout,
            k=3,
            n_frames=20,
            disable_anid=True,
            net_params=NetworkParams(strict=False),
        )
        try:
            res = sys_.run()
            return res.flow_control_violations, None
        except RuntimeError as exc:
            return sys_.net.flow_control_violations, str(exc)

    violations, error = run_once(benchmark, experiment)
    print("\nANID ablation (stream 8, 1-3-(2,2), no ack redirection):")
    if error:
        print(f"  protocol failure: {error}")
    print(f"  flow-control violations observed: {violations}")
    assert violations > 0 or error is not None


def test_ablation_load_balancing(benchmark):
    from repro.parallel.loadbalance import adaptive_balance

    def experiment():
        static = TileLayout(S13.width, S13.height, 4, 4)
        balanced = balanced_layout(S13, 4, 4)
        hist = adaptive_balance(S13, 4, 4, k=3, windows=4, frames_per_window=16)
        return (
            TimedSystem(S13, static, k=3, n_frames=24).run().fps,
            TimedSystem(S13, balanced, k=3, n_frames=24).run().fps,
            imbalance(S13, static),
            imbalance(S13, balanced),
            hist,
        )

    f_static, f_bal, i_static, i_bal, hist = run_once(benchmark, experiment)
    print_table(
        "Dynamic load balancing (stream 13, 4x4; paper future work)",
        ["layout", "fps", "max/mean tile cost"],
        [("static (paper's system)", f"{f_static:.1f}", f"{i_static:.2f}"),
         ("model-balanced partitions", f"{f_bal:.1f}", f"{i_bal:.2f}")],
    )
    print("\nadaptive balancing from *measured* decode times:")
    for h in hist:
        print(f"  window {h.window}: {h.fps:6.1f} fps, measured "
              f"imbalance {h.measured_imbalance:.2f}")
    assert f_bal > f_static
    assert i_bal < i_static
    assert hist[-1].fps >= hist[0].fps
