"""§4.6 — the configuration rule F = min(k/t_s, 1/t_d) against the DES.

The paper derives the optimal splitter count k* = ceil(t_s/t_d); this bench
sweeps k on the headline stream and shows (a) the formula tracks the
simulated system and (b) fps stops improving at k*.
"""

from conftest import print_table, run_once

from repro.parallel.config import optimal_k, predicted_frame_rate
from repro.parallel.system import run_system
from repro.perf.costmodel import CostModel
from repro.wall.layout import TileLayout
from repro.workloads.streams import stream_by_id


def test_config_model(benchmark):
    spec = stream_by_id(16)
    cost = CostModel()
    layout = TileLayout(spec.width, spec.height, 4, 4)
    t_s = cost.t_s(spec)
    t_d = cost.t_d(spec, layout)
    k_star = optimal_k(t_s, t_d)

    def sweep():
        return {
            k: run_system(spec, 4, 4, k=k, n_frames=24, cost=cost).fps
            for k in range(1, 7)
        }

    fps = run_once(benchmark, sweep)
    print_table(
        f"F = min(k/t_s, 1/t_d) with t_s={t_s * 1e3:.1f} ms, "
        f"t_d={t_d * 1e3:.1f} ms, k* = {k_star}",
        ["k", "model fps", "simulated fps"],
        [
            (k, f"{predicted_frame_rate(k, t_s, t_d):.1f}", f"{v:.1f}")
            for k, v in fps.items()
        ],
    )
    # The simulated system follows the model within protocol overheads.
    for k, v in fps.items():
        model = predicted_frame_rate(k, t_s, t_d)
        assert v < model * 1.05
        if k <= k_star:
            assert v > model * 0.6
    # fps stops improving past k*
    assert fps[k_star + 2] < fps[k_star] * 1.1
