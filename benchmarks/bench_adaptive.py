"""Adaptive tile repartitioning — static vs. content vs. feedback policy.

Decodes one localized-detail stream (the paper's §5.5 Orion-flyby shape:
most coded bits concentrated in one moving region, so one tile's decoder
is the straggler under a fixed grid) through the 4-process cluster under
each partition policy, and records to ``BENCH_adaptive.json``:

- bit-identity against the sequential decoder (every mode — adaptive
  repartitioning must never change output);
- whole-run and per-GOP cross-tile imbalance (max/mean of per-tile
  decode+serve busy, from the trace stream).  Per-picture busy is the
  decoder's *thread-CPU* time (``cpu_s`` on the decode event), not the
  wall span: on an oversubscribed box concurrent decoders' wall spans
  absorb each other's scheduler slices and the imbalance signal drowns
  in preemption noise, while CPU time measures the actual work;
- ``sync_fps`` — the critical-path synchronized frame rate
  ``n_pics / sum_pic max_tile busy(pic)``: what a frame-locked wall
  could sustain if only decode work mattered.  Built on CPU-time busy
  it does not depend on how many cores the build box has, so it is the
  honest cross-machine measure of what load balancing buys;
- the versioned layout updates each adaptive run issued.

``imbalance_excess`` is ``max_over_mean - 1`` (0 = perfect balance).
The steady-state figure excludes the first GOP: picture 0 always decodes
under the static base layout (the policy has no telemetry yet), so the
first window measures the *problem*, the later windows the *fix*.

Honesty note: wall fps is recorded but not asserted (it time-slices on
small boxes — ``cores`` records what the machine offered).  The asserted
claims are bit-identity, >= 30% steady-state imbalance-excess reduction
for the best adaptive policy, and a sync-fps win over static.

Run directly (``--smoke`` shrinks the stream for CI) or under
pytest-benchmark: ``PYTHONPATH=src python benchmarks/bench_adaptive.py``.
"""

import json
import os
import sys
import tempfile
import time
from pathlib import Path

from repro.cluster.runtime import ClusterSupervisor, WallConfig
from repro.mpeg2.decoder import decode_stream
from repro.mpeg2.encoder import Encoder, EncoderConfig
from repro.perf.export import build_report
from repro.perf.trace import merge_traces
from repro.workloads.synthetic import localized_detail_frames

OUT_PATH = Path(__file__).resolve().parent.parent / "BENCH_adaptive.json"

FULL = dict(width=960, height=512, frames=30, gop_size=6, b_frames=1)
SMOKE = dict(width=384, height=256, frames=18, gop_size=6, b_frames=1)

POLICIES = ("static", "content", "feedback")


def _decode_traced(cfg: WallConfig, stream: bytes) -> tuple:
    """One cluster decode; returns (frames, wall_s, TraceReport)."""
    with tempfile.TemporaryDirectory(prefix="bench-adaptive-") as rundir:
        sup = ClusterSupervisor(cfg, trace_dir=rundir)
        t0 = time.perf_counter()
        frames = sup.decode(stream, timeout=600)
        wall = time.perf_counter() - t0
        report = build_report(merge_traces(rundir, strict=False))
    return frames, wall, report


def _sync_fps(report, n_pics: int) -> float:
    """Critical-path synchronized rate: every picture costs its slowest
    tile's busy time (decode+serve), the frame-lock barrier of the wall."""
    decs = report.decoder_procs()
    critical = sum(
        max(report.procs[p].picture_busy.get(i, 0.0) for p in decs)
        for i in range(n_pics)
    )
    return n_pics / critical if critical > 0 else 0.0


def run_adaptive_bench(smoke: bool = False) -> dict:
    shape = SMOKE if smoke else FULL
    # The busy region starts in the upper-left tile and drifts right —
    # under the fixed 2x2 grid tile 0 is the straggler.
    clip = localized_detail_frames(
        shape["width"], shape["height"], shape["frames"],
        center=(0.22, 0.28), radius_frac=0.2, seed=7,
    )
    stream = Encoder(
        EncoderConfig(
            gop_size=shape["gop_size"], b_frames=shape["b_frames"],
            search_range=3,
        )
    ).encode(clip)
    reference = decode_stream(stream)
    n_pics = len(reference)

    if hasattr(os, "sched_getaffinity"):
        cores = len(os.sched_getaffinity(0))
    else:  # pragma: no cover - non-Linux fallback
        cores = os.cpu_count()

    out = {
        "stream": {**shape, "bytes": len(stream), "profile": "localized-detail"},
        "cores": cores,
        "smoke": smoke,
        "modes": {},
    }
    if cores is not None and cores < 2:
        out["warning"] = (
            "single-core machine: wall fps time-slices one CPU; the "
            "sync_fps and imbalance figures remain meaningful"
        )
        print(f"WARNING: {out['warning']}", file=sys.stderr)

    for policy in POLICIES:
        cfg = WallConfig(
            m=2, n=2, k=1, transport="unix",
            partition_policy=policy, pin_cores=True,
        )
        frames, wall, report = _decode_traced(cfg, stream)
        identical = len(frames) == n_pics and all(
            a.max_abs_diff(b) == 0 for a, b in zip(reference, frames)
        )
        imb = report.imbalance()
        gop_imb = report.gop_imbalance()
        first_upd = min(
            (u["picture"] for u in report.partition_updates), default=None
        )
        # steady state: GOP windows decoded under an adapted layout
        steady = [
            g for g in gop_imb
            if first_upd is not None and g["start"] >= first_upd
        ] or gop_imb[1:] or gop_imb
        steady_excess = (
            sum(g["max_over_mean"] for g in steady) / len(steady) - 1.0
            if steady
            else 0.0
        )
        out["modes"][policy] = {
            "wall_s": round(wall, 4),
            "frames_per_s": round(n_pics / wall, 3),
            "sync_fps": round(_sync_fps(report, n_pics), 3),
            "bit_identical": identical,
            "imbalance_max_over_mean": round(imb.get("max_over_mean", 0.0), 4),
            "imbalance_excess": round(imb.get("max_over_mean", 1.0) - 1.0, 4),
            "steady_state_excess": round(steady_excess, 4),
            "per_gop_max_over_mean": [
                {"start": g["start"], "max_over_mean": round(g["max_over_mean"], 4)}
                for g in gop_imb
            ],
            "layout_updates": [
                {
                    "version": u.get("version"),
                    "picture": u["picture"],
                    "x_bounds": u.get("x_bounds"),
                    "y_bounds": u.get("y_bounds"),
                }
                for u in report.partition_updates
            ],
        }

    static_excess = out["modes"]["static"]["steady_state_excess"]
    best = min(
        ("content", "feedback"),
        key=lambda p: out["modes"][p]["steady_state_excess"],
    )
    best_excess = out["modes"][best]["steady_state_excess"]
    out["best_adaptive"] = best
    out["imbalance_before"] = static_excess
    out["imbalance_after"] = best_excess
    out["imbalance_reduction_pct"] = round(
        100.0 * (1.0 - best_excess / static_excess) if static_excess > 0 else 0.0,
        2,
    )
    out["sync_fps_gain_pct"] = round(
        100.0
        * (
            out["modes"][best]["sync_fps"] / out["modes"]["static"]["sync_fps"]
            - 1.0
        ),
        2,
    )
    return out


def _check(report: dict) -> None:
    for name, mode in report["modes"].items():
        assert mode["bit_identical"], f"{name} diverged from the sequential decoder"
    for policy in ("content", "feedback"):
        assert report["modes"][policy]["layout_updates"], (
            f"{policy} issued no layout updates on a localized-detail stream"
        )
    assert report["modes"]["static"]["layout_updates"] == []
    assert report["imbalance_after"] < report["imbalance_before"]
    # The tentpole claim: the best adaptive policy removes >= 30% of the
    # static grid's steady-state cross-tile imbalance excess...
    assert report["imbalance_reduction_pct"] >= 30.0, (
        f"imbalance reduction {report['imbalance_reduction_pct']}% < 30%"
    )
    # ... which lifts the critical-path synchronized frame rate.  Only
    # asserted with real parallel hardware: CPU-time busy removes the
    # bulk of the time-slicing noise, but on a single-core box the
    # per-picture *max* across tiles — a max-statistic — still soaks up
    # cache-thrash jitter from the 7-way oversubscription (same honesty
    # rule as bench_cluster's fps assertion).
    if report["cores"] and report["cores"] >= 2:
        assert report["sync_fps_gain_pct"] > 0.0, (
            f"sync fps gain {report['sync_fps_gain_pct']}% not positive"
        )


def test_adaptive(benchmark):
    from conftest import print_table, run_once

    report = run_once(benchmark, run_adaptive_bench)
    _check(report)
    OUT_PATH.write_text(json.dumps(report, indent=2) + "\n")
    print_table(
        f"Adaptive repartitioning ({report['stream']['width']}x"
        f"{report['stream']['height']}, {report['stream']['frames']} frames, "
        f"{report['cores']} core(s))",
        ["policy", "wall fps", "sync fps", "excess", "steady", "updates", "bit-id"],
        [
            (
                name,
                f"{m['frames_per_s']:.3f}",
                f"{m['sync_fps']:.3f}",
                f"{m['imbalance_excess']:.4f}",
                f"{m['steady_state_excess']:.4f}",
                str(len(m["layout_updates"])),
                "yes" if m["bit_identical"] else "NO",
            )
            for name, m in report["modes"].items()
        ],
    )


if __name__ == "__main__":
    smoke = "--smoke" in sys.argv
    result = run_adaptive_bench(smoke=smoke)
    _check(result)
    # Smoke runs (CI) write next to the working directory, never over the
    # committed full-size numbers.
    path = Path("bench-adaptive-smoke.json") if smoke else OUT_PATH
    path.write_text(json.dumps(result, indent=2) + "\n")
    print(json.dumps(result, indent=2))
