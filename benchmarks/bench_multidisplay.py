"""Future work §6 #1: graphics cards that drive multiple displays.

"First, each of our graphics card drives a single projector.  It would be
useful to experiment with graphics cards that can drive multiple displays
to further evaluate the performance."  This bench runs that experiment in
the timed system: the 4x4 wall with 1, 2, and 4 tiles per decoder PC.
"""

from conftest import print_table, run_once

from repro.parallel.system import TimedSystem
from repro.wall.layout import TileLayout
from repro.workloads.streams import stream_by_id


def test_multidisplay_tradeoff(benchmark):
    spec = stream_by_id(16)
    layout = TileLayout(spec.width, spec.height, 4, 4)

    def experiment():
        rows = []
        for tpn in (1, 2, 4):
            sys_ = TimedSystem(spec, layout, k=4, n_frames=24, tiles_per_node=tpn)
            res = sys_.run()
            n_dec = len(sys_.decoder_ids)
            rows.append(
                (
                    tpn,
                    n_dec,
                    1 + 4 + n_dec,
                    res.fps,
                    res.fps * n_dec,  # fps per decoder-PC proxy
                )
            )
        return rows

    rows = run_once(benchmark, experiment)
    print_table(
        "Stream 16, 4x4 wall: tiles per decoder PC",
        ["tiles/PC", "decoder PCs", "total nodes", "fps", "fps x PCs"],
        [
            (tpn, nd, total, f"{fps:.1f}", f"{eff:.0f}")
            for tpn, nd, total, fps, eff in rows
        ],
    )
    print(
        "\n-> decode is CPU-bound, so consolidating projectors onto fewer "
        "PCs trades frame rate for hardware; co-located tiles do save "
        "their exchange traffic (fps stays above the 1/tiles-per-PC line)."
    )
    fps = {tpn: f for tpn, _, _, f, _ in rows}
    assert fps[1] > fps[2] > fps[4]
    assert fps[2] > fps[1] / 2
    assert fps[4] > fps[1] / 4
