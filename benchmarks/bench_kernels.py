"""Micro-benchmarks of the real codec kernels (not in the paper).

These time the actual Python implementation — encode, sequential decode,
macroblock split, and parallel pipeline decode — on a scaled clip, so
regressions in the functional path are visible.  pytest-benchmark's normal
multi-round timing applies here.
"""

import pytest

from repro.mpeg2.decoder import decode_stream
from repro.mpeg2.encoder import Encoder, EncoderConfig
from repro.mpeg2.parser import PictureScanner
from repro.parallel.mb_splitter import MacroblockSplitter
from repro.parallel.pipeline import ParallelDecoder
from repro.wall.layout import TileLayout
from repro.workloads.synthetic import moving_pattern_frames


@pytest.fixture(scope="module")
def clip():
    frames = moving_pattern_frames(160, 96, 6, seed=0)
    stream = Encoder(EncoderConfig(gop_size=6, b_frames=2)).encode(frames)
    return frames, stream


def test_encode_kernel(benchmark, clip):
    frames, _ = clip

    def encode():
        return Encoder(EncoderConfig(gop_size=6, b_frames=2)).encode(frames)

    data = benchmark(encode)
    px = frames[0].n_pixels * len(frames)
    print(f"\nencoded {px} pixels -> {len(data)} bytes")


def test_sequential_decode_kernel(benchmark, clip):
    _, stream = clip
    out = benchmark(decode_stream, stream)
    assert len(out) == 6


def test_macroblock_split_kernel(benchmark, clip):
    """The second-level splitter's VLC parse + sort, per picture."""
    _, stream = clip
    seq, pics = PictureScanner(stream).scan()
    layout = TileLayout(seq.width, seq.height, 2, 2)
    splitter = MacroblockSplitter(seq, layout)
    result = benchmark(splitter.split, pics[0], 0)
    assert len(result.subpictures) == 4


def test_picture_scan_kernel(benchmark, clip):
    """The root splitter's start-code scan over the whole stream."""
    _, stream = clip

    def scan():
        return PictureScanner(stream).scan()

    seq, pics = benchmark(scan)
    assert len(pics) == 6


def test_parallel_pipeline_kernel(benchmark, clip):
    frames, stream = clip
    layout = TileLayout(frames[0].width, frames[0].height, 2, 2)

    def decode():
        return ParallelDecoder(layout, k=2).decode(stream)

    out = benchmark.pedantic(decode, rounds=2, iterations=1)
    assert len(out) == 6
