"""Beyond the paper's scale (§6: "we expect our system to perform well
beyond the scales and resolutions reported in this paper").

Two probes of that claim:

1. the **full Princeton wall**: 6x4 projectors / 25 PCs (the paper only
   drove up to 4x4 of it) on a 6144x3072 stream;
2. a **network-generation sweep**: the same headline workload over Fast
   Ethernet-, Myrinet-, and ~10G-class fabrics, showing where the low
   bandwidth requirement starts and stops mattering.
"""


from conftest import print_table, run_once

from repro.net.gm import NetworkParams
from repro.parallel.system import run_system
from repro.workloads.streams import StreamSpec, stream_by_id


def test_full_wall_six_by_four(benchmark):
    # A hypothetical stream matching the full 6x4 wall (~18.9 Mpixels).
    spec = StreamSpec(
        sid=99,
        name="wall6x4",
        width=6144,
        height=3072,
        fps=30.0,
        bpp=0.30,
        motion_pixels=10.0,
        detail=stream_by_id(16).detail,
        content="detail",
    )

    def experiment():
        rows = []
        for k in (3, 4, 5, 6):
            res = run_system(spec, 6, 4, k=k, n_frames=24)
            rows.append((res.label, 1 + k + 24, res.fps, res.pixel_rate_mpps))
        return rows

    rows = run_once(benchmark, experiment)
    print_table(
        "Full 6x4 wall, 6144x3072 stream (beyond the paper's 4x4 runs)",
        ["config", "nodes", "fps", "Mpixel/s"],
        [(c, n, f"{f:.1f}", f"{p:.0f}") for c, n, f, p in rows],
    )
    best = max(f for _, _, f, _ in rows)
    assert best > 24.0  # still interactive at 18.9 Mpixels/frame


def test_network_generation_sweep(benchmark):
    spec = stream_by_id(16)
    fabrics = [
        ("Fast Ethernet (~12 MB/s)", NetworkParams(bandwidth=12e6, latency=100e-6)),
        ("Gigabit-class (~110 MB/s)", NetworkParams(bandwidth=110e6, latency=30e-6)),
        ("Myrinet/GM (paper)", NetworkParams()),
        ("10G-class (~1.1 GB/s)", NetworkParams(bandwidth=1.1e9, latency=5e-6)),
    ]

    def experiment():
        return [
            (name, run_system(spec, 4, 4, k=4, n_frames=24, net_params=p).fps)
            for name, p in fabrics
        ]

    rows = run_once(benchmark, experiment)
    print_table(
        "Stream 16 on 1-4-(4,4) across network generations",
        ["fabric", "fps"],
        [(n, f"{f:.1f}") for n, f in rows],
    )
    by_name = dict(rows)
    myrinet = by_name["Myrinet/GM (paper)"]
    # the paper's claim: bandwidth needs are low, so a commodity fabric is
    # enough — gigabit-class is already within a few percent of Myrinet,
    # and 10x more bandwidth buys almost nothing
    assert by_name["Gigabit-class (~110 MB/s)"] > 0.9 * myrinet
    assert by_name["10G-class (~1.1 GB/s)"] < 1.15 * myrinet
    # but a 1995-era Fast Ethernet cannot carry the picture stream
    assert by_name["Fast Ethernet (~12 MB/s)"] < 0.8 * myrinet
