"""Benchmark helpers: single-shot experiment runs with table printing.

Every table/figure benchmark runs its experiment exactly once under
pytest-benchmark timing (``benchmark.pedantic(rounds=1)``) — the point is
regenerating the paper's numbers, not micro-timing them — and then prints
the reproduced table alongside the paper's surviving anchors.
"""

from __future__ import annotations

from typing import Iterable, Sequence


def run_once(benchmark, fn, *args, **kwargs):
    """Run ``fn`` once under the benchmark timer and return its result."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)


def print_table(title: str, headers: Sequence[str], rows: Iterable[Sequence]) -> None:
    rows = [[str(c) for c in row] for row in rows]
    widths = [
        max(len(h), *(len(r[i]) for r in rows)) if rows else len(h)
        for i, h in enumerate(headers)
    ]
    line = "  ".join(h.ljust(w) for h, w in zip(headers, widths))
    print(f"\n=== {title} ===")
    print(line)
    print("-" * len(line))
    for r in rows:
        print("  ".join(c.ljust(w) for c, w in zip(r, widths)))


def print_series(title: str, series: dict) -> None:
    print(f"\n=== {title} ===")
    for name, pts in series.items():
        body = ", ".join(f"({x}, {y:.1f})" for x, y in pts)
        print(f"{name}: {body}")
