"""Table 5 / Figure 6 — one-level vs two-level frame rates (§5.3-§5.4).

Paper anchors (numeric cells were lost in the source text; these are the
claims the prose makes): the one-level splitter "can not keep up with the
decoders" beyond 4 of them and fps "drops slightly" past saturation; the
two-level system removes the bottleneck and keeps scaling.
"""

from conftest import print_series, print_table, run_once

from repro.perf.experiments import figure6, table5


def test_table5_and_figure6(benchmark):
    rows = run_once(benchmark, table5, n_frames=30)
    print_table(
        "Table 5 — frame rate of one-level and two-level systems",
        [
            "stream",
            "one-level",
            "nodes",
            "fps",
            "two-level",
            "nodes",
            "fps",
        ],
        [
            (
                r["stream"],
                r["one_level_config"],
                r["one_level_nodes"],
                r["one_level_fps"],
                r["two_level_config"],
                r["two_level_nodes"],
                r["two_level_fps"],
            )
            for r in rows
        ],
    )
    print_series("Figure 6 — fps vs number of nodes", figure6(rows))

    for sid in (1, 8):
        fps = {(r["m"], r["n"]): r for r in rows if r["stream"] == sid}
        # saturation beyond ~4 decoders (paper §5.3)
        assert fps[(4, 4)]["one_level_fps"] <= fps[(3, 3)]["one_level_fps"] * 1.05
        # two-level removes the bottleneck (paper §5.4)
        assert (
            fps[(4, 4)]["two_level_fps"] > fps[(4, 4)]["one_level_fps"] * 1.3
        )
