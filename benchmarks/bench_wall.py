"""Wall broadcast — sender encode cost vs receiver count, restart tune-in.

Two experiments on the broadcast fan-out plane:

**Fan-out scaling.**  One 36-picture clip is published to walls of 1, 2
and 4 receivers over the stream fan-out.  The broadcast sender encodes
each wire record exactly once and writes the same buffer to every
subscriber, so its encode count stays flat in N; the unicast
counterfactual (one point-to-point publisher per receiver, same
machinery) pays one encode per receiver per picture and grows linearly.
Both slopes are asserted, not just reported.

**Restart resume.**  Four tile receivers consume a paced broadcast; one
is torn down mid-GOP and restarted.  The rejoin handshake answers with
the next closed-GOP I-picture after the publish cursor, the restarted
receiver tunes there, and its steady-state output digest must equal a
clean full-raster decode of the same stream from that anchor (sha256
over the partition crop, display order).  Frames that arrived while
tuning are dropped and accounted, never displayed.

Results land in ``BENCH_wall.json`` at the repo root.  Run under
pytest-benchmark or directly:
``PYTHONPATH=src python benchmarks/bench_wall.py``.
"""

import json
import tempfile
import threading
import time
from pathlib import Path

from repro.mpeg2.encoder import Encoder, EncoderConfig
from repro.wall.broadcast import WallBroadcaster
from repro.wall.config import WallSpec
from repro.wall.receiver import WallReceiver, tile_decode_digest
from repro.workloads.streams import stream_by_id

OUT_PATH = Path(__file__).resolve().parent.parent / "BENCH_wall.json"

SPEC = stream_by_id(5)  # fish1: 16:9, encoded here at 96px width
N_FRAMES = 36
RECEIVER_COUNTS = (1, 2, 4)
WALL = WallSpec(cols=2, rows=2, overlap=0, name="bench")
RESTART_RATE_FPS = 30.0  # paced restart run: 36 pictures in ~1.2 s


def _encode_clip() -> bytes:
    frames = SPEC.synthetic_frames(N_FRAMES, max_width=96)
    return Encoder(EncoderConfig(gop_size=6, b_frames=2)).encode(frames)


def _control(tmp: str, name: str):
    return ("unix", str(Path(tmp) / f"{name}.sock"))


def _run_receivers(bc, tiles, summaries):
    def one(tid):
        with WallReceiver(bc.control_address, tid, name=f"t{tid}") as rx:
            summaries[tid] = rx.run(max_wall_s=60.0)

    threads = [
        threading.Thread(target=one, args=(t,), daemon=True) for t in tiles
    ]
    for t in threads:
        t.start()
    return threads


def _broadcast_level(stream: bytes, tmp: str, n: int) -> dict:
    """One broadcast to n receivers; returns the sender's encode ledger."""
    bc = WallBroadcaster(stream, WALL, _control(tmp, f"bcast{n}"))
    try:
        summaries: dict = {}
        threads = _run_receivers(bc, range(n), summaries)
        bc.sender.wait_subscribers(n, timeout=20.0)
        t0 = time.monotonic()
        bc.run(rate_fps=None)
        wall_s = time.monotonic() - t0
        for t in threads:
            t.join(timeout=60.0)
        st = bc.stats()
        records = st["n_pictures"] + 2  # + W_SEQ + W_END
        return {
            "receivers": n,
            "records": records,
            "encodes": st["encodes"],
            "encodes_per_record": st["encodes"] / records,
            "fanout_sends": st["fanout_sends"],
            "encoded_bytes": st["encoded_bytes"],
            "states": sorted(s["state"] for s in summaries.values()),
            "wall_s": round(wall_s, 3),
        }
    finally:
        bc.close()


def _unicast_level(stream: bytes, tmp: str, n: int) -> dict:
    """Counterfactual: one point-to-point publisher per receiver."""
    bcs = [
        WallBroadcaster(stream, WALL, _control(tmp, f"uni{n}-{i}"))
        for i in range(n)
    ]
    try:
        summaries: dict = {}
        threads = []
        for i, bc in enumerate(bcs):
            threads += _run_receivers(bc, [i], summaries)
            bc.sender.wait_subscribers(1, timeout=20.0)
        for bc in bcs:
            bc.run(rate_fps=None)
        for t in threads:
            t.join(timeout=60.0)
        encodes = sum(bc.stats()["encodes"] for bc in bcs)
        records = bcs[0].stats()["n_pictures"] + 2
        return {
            "receivers": n,
            "records": records,
            "encodes": encodes,
            "encodes_per_record": encodes / records,
            "encoded_bytes": sum(bc.stats()["encoded_bytes"] for bc in bcs),
            "states": sorted(s["state"] for s in summaries.values()),
        }
    finally:
        for bc in bcs:
            bc.close()


def _restart_experiment(stream: bytes, tmp: str) -> dict:
    """Kill one of four receivers mid-broadcast; rejoin at the anchor."""
    bc = WallBroadcaster(stream, WALL, _control(tmp, "restart"))
    try:
        layout = WALL.to_layout(bc.sequence.width, bc.sequence.height)
        summaries: dict = {}
        threads = _run_receivers(bc, (0, 1, 3), summaries)

        victim = WallReceiver(bc.control_address, 2, name="victim")
        bc.sender.wait_subscribers(4, timeout=20.0)
        run_t = threading.Thread(
            target=lambda: bc.run(rate_fps=RESTART_RATE_FPS), daemon=True
        )
        run_t.start()
        # consume a few pictures, then die mid-GOP (no goodbye, like a kill)
        victim_t = threading.Thread(
            target=lambda: victim.run(max_wall_s=20.0), daemon=True
        )
        victim_t.start()
        deadline = time.monotonic() + 20.0
        while victim.decoded < 4 and time.monotonic() < deadline:
            time.sleep(0.01)
        kill_cursor = bc.stats()["cursor"]
        victim.close()  # socket torn down with pictures still in flight

        rejoin = WallReceiver(bc.control_address, 2, name="rejoin")
        rejoin_summary = rejoin.run(max_wall_s=60.0)
        rejoin.close()
        run_t.join(timeout=60.0)
        for t in threads:
            t.join(timeout=60.0)

        oracle = tile_decode_digest(
            stream, layout, 2, start_at=rejoin_summary["tuned_at"]
        )
        survivors_ok = all(
            summaries[t]["digest"]
            == tile_decode_digest(stream, layout, t, start_at=0)
            for t in (0, 1, 3)
        )
        return {
            "anchors": bc.anchors,
            "kill_cursor": kill_cursor,
            "rejoin_start_at": rejoin_summary["start_at"],
            "tuned_at": rejoin_summary["tuned_at"],
            "retunes": rejoin_summary["retunes"],
            "decoded": rejoin_summary["decoded"],
            "displayed": rejoin_summary["displayed"],
            "dropped_tuning": rejoin_summary["dropped_tuning"],
            "dropped_gap": rejoin_summary["dropped_gap"],
            "dropped_late": rejoin_summary["dropped_late"],
            "bit_identical": rejoin_summary["digest"] == oracle,
            "survivors_bit_identical": survivors_ok,
        }
    finally:
        bc.close()


def run_wall_bench() -> dict:
    stream = _encode_clip()
    report: dict = {
        "stream": {
            "spec": SPEC.to_dict(),
            "frames": N_FRAMES,
            "coded_bytes": len(stream),
        },
        "wall": WALL.to_dict(),
        "broadcast": {},
        "unicast": {},
    }
    with tempfile.TemporaryDirectory() as tmp:
        for n in RECEIVER_COUNTS:
            report["broadcast"][str(n)] = _broadcast_level(stream, tmp, n)
            report["unicast"][str(n)] = _unicast_level(stream, tmp, n)
        report["restart"] = _restart_experiment(stream, tmp)
    return report


def _check(report: dict) -> None:
    for n in RECEIVER_COUNTS:
        b = report["broadcast"][str(n)]
        u = report["unicast"][str(n)]
        # the tentpole property: encode cost flat in N for broadcast,
        # linear in N for unicast
        assert b["encodes_per_record"] == 1.0, b
        assert u["encodes_per_record"] == float(n), u
        assert b["states"] == ["done"] * n
    r = report["restart"]
    assert r["tuned_at"] in r["anchors"]
    assert r["tuned_at"] > r["kill_cursor"] or r["retunes"] == 0
    assert r["bit_identical"] and r["survivors_bit_identical"]
    # every decoded frame is displayed or accounted as a drop
    assert r["displayed"] + r["dropped_late"] == r["decoded"]


def test_wall(benchmark):
    from conftest import print_table, run_once

    report = run_once(benchmark, run_wall_bench)
    _check(report)
    OUT_PATH.write_text(json.dumps(report, indent=2) + "\n")
    print_table(
        f"Broadcast fan-out ({N_FRAMES} pictures, stream mode)",
        ["receivers", "bcast enc/rec", "unicast enc/rec", "bcast bytes", "unicast bytes"],
        [
            (
                n,
                f"{report['broadcast'][str(n)]['encodes_per_record']:.1f}",
                f"{report['unicast'][str(n)]['encodes_per_record']:.1f}",
                report["broadcast"][str(n)]["encoded_bytes"],
                report["unicast"][str(n)]["encoded_bytes"],
            )
            for n in RECEIVER_COUNTS
        ],
    )
    r = report["restart"]
    print(
        f"restart: killed at cursor {r['kill_cursor']}, "
        f"rejoined at anchor {r['tuned_at']} "
        f"({r['dropped_tuning']} tuning drops), "
        f"bit-identical={r['bit_identical']}"
    )


if __name__ == "__main__":
    result = run_wall_bench()
    _check(result)
    OUT_PATH.write_text(json.dumps(result, indent=2) + "\n")
    print(json.dumps(result, indent=2))
