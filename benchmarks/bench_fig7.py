"""Figure 7 — decoder runtime breakdown, stream 8 on 2x2 vs 4x4 (§5.4).

Paper anchors: "about 80% of the runtime is spent in decoding in a
1-2-(2,2) system, only about 40% ... in a 1-5-(4,4) system"; the share of
serving remote decoders "increases significantly" as tiles shrink.
"""

from conftest import print_table, run_once

from repro.perf.experiments import figure7
from repro.perf.metrics import RuntimeBreakdown


def test_figure7(benchmark):
    out = run_once(benchmark, figure7, stream_id=8, n_frames=30)

    for setup, data in out.items():
        rows = []
        for tid in sorted(data["per_decoder_ms"]):
            ms = data["per_decoder_ms"][tid]
            rows.append(
                (tid, *(f"{ms[b]:.2f}" for b in RuntimeBreakdown.BUCKETS))
            )
        avg = data["average_ms"]
        rows.append(("avg", *(f"{avg[b]:.2f}" for b in RuntimeBreakdown.BUCKETS)))
        print_table(
            f"Figure 7 — runtime breakdown (ms/frame), stream 8, "
            f"{data['config']} @ {data['fps']} fps",
            ("decoder",) + RuntimeBreakdown.BUCKETS,
            rows,
        )
        frac = data["average_fractions"]
        print(
            "work share: {:.0%}   serve: {:.0%}   receive: {:.0%}   "
            "wait_remote: {:.0%}   ack: {:.0%}".format(
                frac["work"], frac["serve"], frac["receive"],
                frac["wait_remote"], frac["ack"],
            )
        )

    w22 = out["2x2"]["average_fractions"]["work"]
    w44 = out["4x4"]["average_fractions"]["work"]
    print(f"\npaper: ~80% work at 2x2 vs ~40% at 4x4; measured "
          f"{w22:.0%} vs {w44:.0%}")
    assert w22 > 0.6 and w44 < 0.6 and w22 - w44 > 0.15
    assert (
        out["4x4"]["average_fractions"]["serve"]
        > out["2x2"]["average_fractions"]["serve"]
    )
