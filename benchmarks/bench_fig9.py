"""Figure 9 — per-node send/receive bandwidth, 1-4-(4,4) on stream 16
(§5.6).

Paper anchors: "even for an ultra-high-resolution video with localized
detail, the communication requirement is still low and balanced ... well
within the range of current commodity network technologies"; "the SPH
headers ... cause the send bandwidth of a splitter to be larger than its
receive bandwidth ... the overhead is only about 20%".
"""

from conftest import print_table, run_once

from repro.perf.experiments import figure9


def test_figure9(benchmark):
    out = run_once(benchmark, figure9, n_frames=30)
    bw = out["bandwidth_mbps"]
    print_table(
        f"Figure 9 — per-node bandwidth, {out['config']} @ {out['fps']} fps "
        "(MB/s)",
        ["node", "send", "receive"],
        [(name, s, r) for name, (s, r) in bw.items()],
    )
    ratio = out["splitter_send_over_recv"]
    print(f"\nsplitter send/receive ratio: {ratio} (paper: ~1.2, SPH overhead)")

    assert 1.05 < ratio < 1.45
    for name, (s, r) in bw.items():
        assert s < 40 and r < 40, f"{name} exceeds commodity-network budget"
    # balanced: no decoder dominates by an order of magnitude
    dec_recv = [r for n, (s, r) in bw.items() if n.startswith("decoder")]
    assert max(dec_recv) < 10 * max(min(dec_recv), 0.1)
