"""Table 6 / Figure 8 — resolution scalability of the two-level system
(§5.5).

Paper anchors: every stream plays at a real-time-or-better rate on its
resolution-matched configuration; the headline 3840x2800 Orion stream runs
at 38.9 fps on a 21-node 1-4-(4,4)-class system (we report the k the
paper's own choose-until-flat procedure selects); aggregate pixel rate
scales near-linearly with node count, with a slight droop for the four
localized-detail Orion streams.
"""

from conftest import print_table, run_once

from repro.perf.experiments import figure8, table6


def test_table6_and_figure8(benchmark):
    rows = run_once(benchmark, table6, n_frames=30)
    print_table(
        "Table 6 — frame rate of all streams in the two-level system",
        ["stream", "name", "resolution", "config", "nodes", "fps", "Mpixels/s"],
        [
            (
                r["stream"],
                r["name"],
                r["resolution"],
                r["config"],
                r["nodes"],
                r["fps"],
                r["pixel_rate_mpps"],
            )
            for r in rows
        ],
    )
    pts = figure8(rows)
    print("\nFigure 8 — pixel decoding rate vs nodes:")
    for nodes, rate in pts:
        print(f"  {nodes:3d} nodes: {rate:8.1f} Mpps")

    s16 = rows[-1]
    print(f"\npaper headline: 38.9 fps at 3840x2800; measured {s16['fps']}")
    assert abs(s16["fps"] - 38.9) / 38.9 < 0.15
    assert all(r["fps"] >= 24.0 for r in rows)
    rates = [r for _, r in pts]
    assert rates[-1] > 6 * rates[0]  # near-linear growth overall
