"""Wall service — sessions-vs-latency curve under a fixed worker pool.

Submits 1, 2, 4 and 8 concurrent fish-tank sessions to one `repro serve`
daemon (in-process, 2 workers) and records, per concurrency level, what
the service did with each submission (accept / queue / reject) and how
the admitted sessions fared: per-session p95 picture latency, drops by
picture type, forced drops, peak degradation level.  Results land in
``BENCH_service.json`` at the repo root.

The pool is sized so the curve actually bends: capacity admits four
fish-tank streams, the backlog holds two more, and the last two of eight
are shed with a structured ``reject-queue-full``.  A per-picture
``slowdown_s`` models a heavier codec deterministically — two workers
then sustain ~100 pictures/s, so four 30 fps sessions (120 pictures/s
of demand) must shed load through the degradation ladder while one or
two sessions ride free.  Every drop is accounted: the ``_check`` gate
replays the service trace through ``build_report`` and fails the run on
any ledger disagreement between streamed drop events and the
``session_summary`` counters (the <1% acceptance criterion; the
implementation achieves exact agreement).

Run under pytest-benchmark with the other tables/figures or directly:
``PYTHONPATH=src python benchmarks/bench_service.py``.
"""

import json
import tempfile
import threading
import time
from pathlib import Path

from repro.mpeg2.encoder import Encoder, EncoderConfig
from repro.perf.export import build_report
from repro.perf.trace import read_trace_file
from repro.service import ServiceClient, ServiceConfig, WallService
from repro.service.daemon import TRACE_FILE
from repro.workloads.streams import stream_by_id

OUT_PATH = Path(__file__).resolve().parent.parent / "BENCH_service.json"

SPEC = stream_by_id(5)  # fish1: 1280x720 @ 30 fps, 27.65 Mpixel/s demand
N_FRAMES = 24  # 0.8 s of playout per session
SLOWDOWN_S = 0.02  # per decoded picture: 2 workers ≈ 100 pictures/s
LEVELS = (1, 2, 4, 8)

#: Admits 4 fish streams (110.6 Mpixel/s), queues up to 2, rejects the rest.
POOL = dict(capacity_mpps=120.0, workers=2, queue_slots=2)


def _encode_clip() -> bytes:
    frames = SPEC.synthetic_frames(N_FRAMES, max_width=96)
    cfg = EncoderConfig(gop_size=SPEC.gop_size, b_frames=SPEC.b_frames)
    return Encoder(cfg).encode(frames)


def _run_level(n_sessions: int, clip: bytes) -> dict:
    """One concurrency level: submit n sessions at once, wait them out."""
    with tempfile.TemporaryDirectory(prefix="bench-service-") as rundir:
        rundir = Path(rundir)
        with WallService(rundir, ServiceConfig(**POOL)):
            t0 = time.perf_counter()
            replies = [None] * n_sessions

            def submit(i):
                with ServiceClient(rundir) as c:
                    replies[i] = c.submit(
                        SPEC,
                        stream=clip,
                        name=f"s{i}",
                        slowdown_s=SLOWDOWN_S,
                    )

            threads = [
                threading.Thread(target=submit, args=(i,))
                for i in range(n_sessions)
            ]
            for t in threads:
                t.start()
                t.join()  # serialize: keeps the accept/queue/reject split
                # deterministic while still using one connection per client
            actions = [r["admission"]["action"] for r in replies]
            sids = [r["sid"] for r in replies if "sid" in r]
            with ServiceClient(rundir) as client:
                finals = [client.wait(s, timeout=300.0) for s in sids]
            wall = time.perf_counter() - t0
        events = read_trace_file(rundir / TRACE_FILE)

    report = build_report(events)
    sessions = []
    for f in finals:
        agg = report.sessions.get(f["sid"])
        sessions.append(
            {
                "sid": f["sid"],
                "state": f["state"],
                "released": f["released"],
                "decoded": f["decoded"],
                "dropped_b": f["dropped_b"],
                "dropped_p": f["dropped_p"],
                "forced_drops": f["forced_drops"],
                "late_frames": f["late_frames"],
                "peak_degrade_level": f["peak_degrade_level"],
                "latency_p95_ms": f["latency_p95_ms"],
                "ledger_consistent": agg.consistent() if agg else None,
            }
        )
    drops = sum(s["dropped_b"] + s["dropped_p"] for s in sessions)
    p95s = [s["latency_p95_ms"] for s in sessions]
    return {
        "submitted": n_sessions,
        "admission": {a: actions.count(a) for a in sorted(set(actions))},
        "rejections": actions.count("reject"),
        "wall_s": round(wall, 3),
        "completed": sum(1 for s in sessions if s["state"] == "completed"),
        "total_drops": drops,
        "total_forced_drops": sum(s["forced_drops"] for s in sessions),
        "worst_p95_ms": round(max(p95s), 3) if p95s else None,
        "mean_p95_ms": round(sum(p95s) / len(p95s), 3) if p95s else None,
        "sessions": sessions,
    }


def run_service_bench() -> dict:
    clip = _encode_clip()
    out = {
        "stream": {
            "spec": SPEC.to_dict(),
            "frames": N_FRAMES,
            "coded_bytes": len(clip),
            "slowdown_s": SLOWDOWN_S,
        },
        "pool": dict(POOL),
        "levels": {str(n): _run_level(n, clip) for n in LEVELS},
    }
    return out


def _check(report: dict) -> None:
    levels = report["levels"]
    # one session rides free: no drops, nothing rejected, no degradation
    solo = levels["1"]
    assert solo["rejections"] == 0 and solo["total_drops"] == 0, solo
    assert all(s["peak_degrade_level"] == 0 for s in solo["sessions"])
    # eight sessions: four admitted, two queued, two shed — deterministically
    assert levels["8"]["admission"].get("reject", 0) == 2, levels["8"]["admission"]
    # oversubscription degrades through the ladder, it does not crash:
    # every admitted session completes and every I-picture survives
    n_gops = N_FRAMES // SPEC.gop_size
    for n in map(str, LEVELS):
        lv = levels[n]
        assert lv["completed"] == len(lv["sessions"]), (n, lv)
        for s in lv["sessions"]:
            assert s["decoded"]["I"] == n_gops, (n, s)
            # the acceptance bar is <1% disagreement; we hold it at zero
            assert s["ledger_consistent"] is True, (n, s)
    assert levels["8"]["total_drops"] > 0, "8-way run never engaged the ladder"


def test_service(benchmark):
    from conftest import print_table, run_once

    report = run_once(benchmark, run_service_bench)
    _check(report)
    OUT_PATH.write_text(json.dumps(report, indent=2) + "\n")
    print_table(
        f"Wall service ({POOL['workers']} workers, "
        f"{POOL['capacity_mpps']:.0f} Mpixel/s, queue={POOL['queue_slots']})",
        ["sessions", "accept/queue/reject", "drops", "forced", "worst p95", "wall"],
        [
            (
                n,
                "/".join(
                    str(lv["admission"].get(a, 0))
                    for a in ("accept", "queue", "reject")
                ),
                str(lv["total_drops"]),
                str(lv["total_forced_drops"]),
                f"{lv['worst_p95_ms']:.1f} ms" if lv["worst_p95_ms"] else "-",
                f"{lv['wall_s']:.2f} s",
            )
            for n, lv in report["levels"].items()
        ],
    )


if __name__ == "__main__":
    result = run_service_bench()
    _check(result)
    OUT_PATH.write_text(json.dumps(result, indent=2) + "\n")
    print(json.dumps(result, indent=2))
