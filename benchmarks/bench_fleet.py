"""Fleet gateway — sessions sustained vs daemon count, and failover cost.

Two experiments against real spawned daemon processes:

**Scaling.**  Eight fish-tank sessions are offered to fleets of 1, 2 and
4 daemons (each daemon: 2 workers, 120 Mpixel/s, queue of 2).  A single
daemon saturates — it accepts four, queues two and sheds the rest with a
structured reject — while two and four daemons absorb the same offered
load through capacity-aware placement: the gateway walks the consistent-
hash ring past daemons whose live admission headroom can't take the
stream.  Per level we record the admission split, sessions sustained to
completion, drop totals and the worst per-session p95 picture latency.

**Failover.**  A paced session is placed on a 2-daemon fleet; its home
daemon is SIGKILLed mid-stream.  The gateway's health loop declares the
daemon down, replays the session's bytes to the survivor resuming at the
next I-picture, and the ``failover`` trace event carries the accounting.
We report time-to-resume (kill to resubmit, including detection),
dropped pictures, and verify the acceptance oracle: the resumed output
digest equals a clean decode of the same stream from the anchor onward.

Results land in ``BENCH_fleet.json`` at the repo root.  Run under
pytest-benchmark or directly:
``PYTHONPATH=src python benchmarks/bench_fleet.py``.
"""

import json
import tempfile
import threading
import time
from pathlib import Path

from repro.fleet import FleetConfig, FleetGateway
from repro.mpeg2.encoder import Encoder, EncoderConfig
from repro.perf.trace import read_trace_file
from repro.service import ServiceClient, ServiceConfig
from repro.service.session import clean_decode_digest
from repro.workloads.streams import stream_by_id

OUT_PATH = Path(__file__).resolve().parent.parent / "BENCH_fleet.json"

SPEC = stream_by_id(5)  # fish1: 1280x720 @ 30 fps, 27.65 Mpixel/s demand
N_SESSIONS = 8
N_FRAMES = 48  # 1.6 s of playout: outlives the submission ramp
SLOWDOWN_S = 0.02  # per decoded picture: 2 workers ≈ 100 pictures/s
DAEMON_COUNTS = (1, 2, 4)

#: Per daemon: admits 4 fish streams, queues 2, rejects the overflow.
POOL = dict(capacity_mpps=120.0, workers=2, queue_slots=2)


def _encode_clip(n_frames: int) -> bytes:
    frames = SPEC.synthetic_frames(n_frames, max_width=96)
    cfg = EncoderConfig(gop_size=SPEC.gop_size, b_frames=SPEC.b_frames)
    return Encoder(cfg).encode(frames)


def _fleet_config(daemons: int, **service_kw) -> FleetConfig:
    svc = dict(POOL)
    svc.update(service_kw)
    return FleetConfig(
        daemons=daemons,
        service=ServiceConfig(**svc),
        health_interval=0.1,
    )


class _StatsScraper:
    """A ``VERB_STATS`` poller against the gateway during a level run.

    Times each scrape (request + fleet rollup + reply) over its own
    client connection and reports the cost a 1 Hz collector would pay as
    a percentage of wall time — the measured form of the "1 Hz polling
    vs off" overhead, immune to run-to-run wall noise.  Polls faster
    than 1 Hz so short levels still average several scrapes.
    """

    def __init__(self, rundir: Path, interval: float = 0.25):
        self.rundir = rundir
        self.interval = interval
        self.busy_s = 0.0
        self.polls = 0
        self._stop = threading.Event()
        self._thread = threading.Thread(target=self._loop, daemon=True)

    def _loop(self) -> None:
        with ServiceClient(self.rundir, request_timeout=30.0) as client:
            while not self._stop.wait(self.interval):
                t0 = time.perf_counter()
                try:
                    client.stats(format="prometheus")
                except Exception:
                    return  # gateway going down: the level is over
                self.busy_s += time.perf_counter() - t0
                self.polls += 1

    def __enter__(self) -> "_StatsScraper":
        self._thread.start()
        return self

    def __exit__(self, *exc) -> None:
        self._stop.set()
        self._thread.join(timeout=10.0)

    def overhead_pct_at_1hz(self) -> float:
        if not self.polls:
            return 0.0
        return 100.0 * (self.busy_s / self.polls) * 1.0


def _run_level(daemons: int, clip: bytes, scrape: bool = False) -> dict:
    obs_overhead = None
    with tempfile.TemporaryDirectory(prefix="bench-fleet-") as rundir:
        rundir = Path(rundir)
        with FleetGateway(rundir, _fleet_config(daemons)) as gw:
            scraper = _StatsScraper(rundir) if scrape else None
            if scraper is not None:
                scraper.__enter__()
            with ServiceClient(rundir, request_timeout=60.0) as client:
                t0 = time.perf_counter()
                replies = []
                for i in range(N_SESSIONS):
                    replies.append(
                        client.submit(
                            SPEC,
                            stream=clip,
                            name=f"s{i}",
                            slowdown_s=SLOWDOWN_S,
                        )
                    )
                    # let the health loop refresh admission snapshots so
                    # placement sees each daemon's live headroom
                    time.sleep(0.12)
                actions = [r["admission"]["action"] for r in replies]
                placed = [r.get("daemon") for r in replies if "sid" in r]
                sids = [r["sid"] for r in replies if "sid" in r]
                finals = [client.wait(s, timeout=300.0) for s in sids]
                wall = time.perf_counter() - t0
            if scraper is not None:
                scraper.__exit__()
                obs_overhead = round(scraper.overhead_pct_at_1hz(), 4)

    sessions = [
        {
            "sid": f["sid"],
            "daemon": f["daemon"],
            "state": f["state"],
            "released": f["released"],
            "dropped_b": f["dropped_b"],
            "dropped_p": f["dropped_p"],
            "latency_p95_ms": f["latency_p95_ms"],
        }
        for f in finals
    ]
    p95s = [s["latency_p95_ms"] for s in sessions]
    out = {
        "daemons": daemons,
        "offered": N_SESSIONS,
        "admission": {a: actions.count(a) for a in sorted(set(actions))},
        "rejections": actions.count("reject"),
        "sustained": sum(1 for s in sessions if s["state"] == "completed"),
        "spread": {d: placed.count(d) for d in sorted(set(placed))},
        "total_drops": sum(s["dropped_b"] + s["dropped_p"] for s in sessions),
        "worst_p95_ms": round(max(p95s), 3) if p95s else None,
        "mean_p95_ms": round(sum(p95s) / len(p95s), 3) if p95s else None,
        "wall_s": round(wall, 3),
        "sessions": sessions,
    }
    if obs_overhead is not None:
        out["obs_overhead_pct"] = obs_overhead
        out["obs_polls"] = scraper.polls
    return out


def _run_failover(clip: bytes) -> dict:
    with tempfile.TemporaryDirectory(prefix="bench-fleet-fo-") as rundir:
        rundir = Path(rundir)
        # ample capacity and a dormant ladder: digests stay deterministic
        cfg = _fleet_config(
            2, capacity_mpps=500.0, enter_levels=(1e9, 1e9, 1e9)
        )
        cfg.health_interval = 0.15
        with FleetGateway(rundir, cfg) as gw:
            with ServiceClient(rundir) as client:
                r = client.submit(SPEC, stream=clip, name="victim")
                gsid, home = r["sid"], r["daemon"]
                deadline = time.monotonic() + 30.0
                while time.monotonic() < deadline:
                    if client.status(gsid).get("processed", 0) >= 4:
                        break
                    time.sleep(0.05)
                t_kill = time.time()
                gw.kill_daemon(home)
                final = client.wait(gsid, timeout=120.0)
            stream = gw.sessions[gsid].stream
            events = read_trace_file(rundir / "gateway.trace.jsonl")

    fo = next(e for e in events if e.event == "failover")
    oracle = clean_decode_digest(stream, start_at=final["start_at"])
    return {
        "daemons": 2,
        "from_daemon": fo.data["from_daemon"],
        "to_daemon": fo.data["to_daemon"],
        "state": final["state"],
        "failovers": final["failovers"],
        "resume_at": fo.data["resume_at"],
        "dropped_pictures": fo.data["dropped_pictures"],
        # kill -> resubmitted on the survivor, detection included
        "time_to_resume_s": round(fo.ts - t_kill, 3),
        # replay + resubmit alone, as accounted by the gateway
        "resume_s": fo.data["resume_s"],
        "output_digest": final["output_digest"],
        "oracle_digest": oracle,
        "bit_identical": final["output_digest"] == oracle,
    }


def run_fleet_bench() -> dict:
    clip = _encode_clip(N_FRAMES)
    report = {
        "stream": {
            "spec": SPEC.to_dict(),
            "frames": N_FRAMES,
            "coded_bytes": len(clip),
            "slowdown_s": SLOWDOWN_S,
        },
        "pool_per_daemon": dict(POOL),
        # the 2-daemon level carries the 1 Hz VERB_STATS scrape so the
        # obs overhead is measured against a loaded gateway
        "levels": {
            str(n): _run_level(n, clip, scrape=(n == 2))
            for n in DAEMON_COUNTS
        },
        "failover": _run_failover(clip),
    }
    report["obs_overhead_pct"] = report["levels"]["2"]["obs_overhead_pct"]
    return report


def _check(report: dict) -> None:
    levels = report["levels"]
    # a single daemon saturates and sheds load; a fleet does not
    assert levels["1"]["rejections"] >= 1, levels["1"]["admission"]
    assert levels["4"]["rejections"] == 0, levels["4"]["admission"]
    # sustained sessions are monotone in daemon count
    s1, s2, s4 = (levels[k]["sustained"] for k in ("1", "2", "4"))
    assert s1 <= s2 <= s4, (s1, s2, s4)
    assert s4 == N_SESSIONS, levels["4"]
    # every admitted session ran to completion at every level
    for n, lv in levels.items():
        assert lv["sustained"] == len(lv["sessions"]), (n, lv)
        assert len(lv["spread"]) <= int(n), (n, lv["spread"])
    # a bigger fleet spreads sessions across more than one daemon
    assert len(levels["4"]["spread"]) >= 2, levels["4"]["spread"]
    # 1 Hz VERB_STATS scraping must stay in the noise floor
    assert report["obs_overhead_pct"] < 2.0, report["obs_overhead_pct"]
    # failover: detected, resumed on the survivor, bit-identical output
    fo = report["failover"]
    assert fo["state"] == "completed" and fo["failovers"] == 1, fo
    assert fo["to_daemon"] and fo["to_daemon"] != fo["from_daemon"], fo
    assert fo["dropped_pictures"] >= 0, fo
    assert fo["time_to_resume_s"] < 10.0, fo
    assert fo["bit_identical"], fo


def test_fleet(benchmark):
    from conftest import print_table, run_once

    report = run_once(benchmark, run_fleet_bench)
    _check(report)
    OUT_PATH.write_text(json.dumps(report, indent=2) + "\n")
    print_table(
        f"Fleet gateway ({N_SESSIONS} offered sessions, "
        f"{POOL['capacity_mpps']:.0f} Mpixel/s per daemon)",
        ["daemons", "accept/queue/reject", "sustained", "drops", "worst p95", "wall"],
        [
            (
                n,
                "/".join(
                    str(lv["admission"].get(a, 0))
                    for a in ("accept", "queue", "reject")
                ),
                f"{lv['sustained']}/{lv['offered']}",
                str(lv["total_drops"]),
                f"{lv['worst_p95_ms']:.1f} ms" if lv["worst_p95_ms"] else "-",
                f"{lv['wall_s']:.2f} s",
            )
            for n, lv in report["levels"].items()
        ],
    )
    fo = report["failover"]
    print(
        f"failover: {fo['from_daemon']} -> {fo['to_daemon']}, "
        f"resume at picture {fo['resume_at']} "
        f"({fo['dropped_pictures']} dropped), "
        f"{fo['time_to_resume_s']:.2f} s kill-to-resume, "
        f"bit-identical={fo['bit_identical']}"
    )


if __name__ == "__main__":
    result = run_fleet_bench()
    _check(result)
    OUT_PATH.write_text(json.dumps(result, indent=2) + "\n")
    print(json.dumps(result, indent=2))
