"""Figure 5 — flow of work units and messages in a two-level system (§4.5).

The paper's Figure 5 is a timeline: the root copying/sending pictures to
two alternating splitters, each splitter receiving/splitting/sending, and
the decoders receiving/decoding — with phases of successive pictures
overlapping (the pipeline the two-buffer ack protocol creates).  This
bench regenerates it as an activity trace of the simulated k=2 system and
asserts the pipelining properties the figure illustrates.
"""

from conftest import run_once

from repro.parallel.system import TimedSystem
from repro.perf.timeline import TimelineTrace, render_ascii
from repro.wall.layout import TileLayout
from repro.workloads.streams import stream_by_id


def test_figure5(benchmark):
    spec = stream_by_id(8)
    layout = TileLayout(spec.width, spec.height, 2, 2)

    def experiment():
        trace = TimelineTrace()
        TimedSystem(spec, layout, k=2, n_frames=10, trace=trace).run()
        return trace

    trace = run_once(benchmark, experiment)
    lo, hi = trace.window()
    print("\nFigure 5 — flow of work units and messages, 1-2-(2,2), stream 8")
    print(render_ascii(trace, width=110, t0=lo, t1=lo + (hi - lo) * 0.6))

    # The figure's structural claims:
    actors = trace.actors()
    assert "root" in actors
    assert "splitter0" in actors and "splitter1" in actors
    assert any(a.startswith("decoder") for a in actors)

    # 1. splitters alternate pictures (round-robin)
    s0_pics = {s.picture for s in trace.spans_for("splitter0") if s.phase == "split"}
    s1_pics = {s.picture for s in trace.spans_for("splitter1") if s.phase == "split"}
    assert s0_pics == set(range(0, 10, 2))
    assert s1_pics == set(range(1, 10, 2))

    # 2. pipelining: splitter1 starts splitting picture 1 while splitter0
    #    is still working on (or sending) picture 0's results
    s0_done = max(s.end for s in trace.spans_for("splitter0") if s.picture == 0)
    s1_start = min(s.start for s in trace.spans_for("splitter1") if s.picture == 1)
    assert s1_start < s0_done

    # 3. decoders decode picture i while picture i+1 is already in flight
    dec = next(a for a in actors if a.startswith("decoder"))
    d0 = next(s for s in trace.spans_for(dec) if s.phase == "decode" and s.picture == 0)
    later_split = min(
        s.start for s in trace.spans_for("splitter1") if s.picture == 1
    )
    assert later_split < d0.end

    # 4. every picture decodes exactly once per decoder
    for a in actors:
        if a.startswith("decoder"):
            pics = [s.picture for s in trace.spans_for(a) if s.phase == "decode"]
            assert pics == sorted(pics) == list(range(10))
