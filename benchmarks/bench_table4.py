"""Table 4 — characteristics of the 16 test streams.

Prints the stream table (resolution, average frame size, bits/pixel) and
validates the model against a real encode: a scaled-down version of one
stream is actually compressed with this repository's encoder and its
bits-per-pixel compared with the model's target.

Paper anchors: streams 1-3 are DVD clips at elevated bit rate; streams
4-16 sit at ~0.3 bpp ("about 20 Mbps for HDTV ... about 100 Mbps for the
highest resolution Orion flyby"); every sequence holds 240 frames.
"""

from conftest import print_table, run_once

from repro.mpeg2.encoder import Encoder, EncoderConfig
from repro.workloads.streams import stream_by_id, table4_rows


def test_table4(benchmark):
    rows = run_once(benchmark, table4_rows)
    print_table(
        "Table 4 — test video streams",
        ["#", "name", "resolution", "avg frame bytes", "bpp", "Mb/s @ native fps"],
        [
            (
                r["stream"],
                r["name"],
                r["resolution"],
                r["avg_frame_bytes"],
                r["bpp"],
                r["bit_rate_mbps"],
            )
            for r in rows
        ],
    )
    s16 = rows[-1]
    assert s16["resolution"] == "3840x2800"
    assert 80 < s16["bit_rate_mbps"] < 130  # "~100 Mbps" anchor
    assert all(r["bpp"] == 0.30 for r in rows[3:])


def test_encoder_matches_bpp_model(benchmark):
    """Encode a scaled stream-8 clip for real and report achieved bpp."""
    spec = stream_by_id(8)

    def encode():
        frames = spec.synthetic_frames(12, max_width=160)
        enc = Encoder(EncoderConfig(gop_size=6, b_frames=2))
        data = enc.encode(frames)
        n_px = frames[0].n_pixels * len(frames)
        return 8.0 * len(data) / n_px

    bpp = run_once(benchmark, encode)
    print(f"\nreal encode of scaled stream 8: {bpp:.3f} bpp "
          f"(model target {spec.bpp}; synthetic content, fixed quantizers)")
    assert 0.05 < bpp < 1.5
