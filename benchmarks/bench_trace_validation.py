"""Cross-validation: analytic workload model vs a real-stream trace.

Not a paper table — this validates the reproduction itself.  A scaled
stream-8 clip is actually encoded and pushed through the real second-level
splitter; the extracted per-tile bits, SPH counts, and MEI exchange
volumes are compared with what the analytic model (which drives Tables 5-6
and Figures 6-9) predicts, and both are run through the timed system.
"""

from conftest import print_table, run_once

from repro.mpeg2.encoder import Encoder, EncoderConfig
from repro.parallel.system import TimedSystem
from repro.perf.costmodel import build_picture_work
from repro.perf.trace import compare_trace_to_model, extract_trace, scaling_for
from repro.wall.layout import TileLayout
from repro.workloads.streams import stream_by_id


def test_trace_vs_model(benchmark):
    spec = stream_by_id(8)
    scaled = spec.scaled(160)

    def experiment():
        frames = spec.synthetic_frames(18, max_width=160)
        stream = Encoder(
            EncoderConfig(gop_size=scaled.gop_size, b_frames=scaled.b_frames)
        ).encode(frames)
        layout = TileLayout(scaled.width, scaled.height, 2, 2)
        traced = extract_trace(stream, layout)
        modeled = build_picture_work(scaled, layout, n_frames=len(traced))
        cmp_ = compare_trace_to_model(traced, modeled)
        scaling = scaling_for(spec, scaled, len(stream), len(traced))
        full_layout = TileLayout(spec.width, spec.height, 2, 2)
        fps_trace = TimedSystem(
            spec, full_layout, k=2, works=extract_trace(stream, layout, scaling)
        ).run().fps
        fps_model = TimedSystem(spec, full_layout, k=2, n_frames=18).run().fps
        return cmp_, fps_trace, fps_model

    cmp_, fps_trace, fps_model = run_once(benchmark, experiment)
    print_table(
        "Analytic model vs real-splitter trace (scaled stream 8, 2x2)",
        ["quantity", "trace", "model"],
        [
            (
                "exchange bytes / inter picture",
                f"{cmp_.traced_exchange_bytes_per_pic:.0f}",
                f"{cmp_.model_exchange_bytes_per_pic:.0f}",
            ),
            (
                "SPH records / tile / picture",
                f"{cmp_.traced_sph_per_tile_pic:.1f}",
                f"{cmp_.model_sph_per_tile_pic:.1f}",
            ),
            (
                "per-tile bits spread (CV)",
                f"{cmp_.traced_bits_cv:.2f}",
                f"{cmp_.model_bits_cv:.2f}",
            ),
            ("timed fps (full-res, k=2)", f"{fps_trace:.1f}", f"{fps_model:.1f}"),
        ],
    )
    assert 0.2 < cmp_.exchange_ratio < 5.0
    assert 0.4 < fps_trace / fps_model < 2.5
