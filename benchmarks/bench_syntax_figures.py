"""Figures 2-4 — the paper's illustrative MPEG-2 syntax figures, shown on
real data from this repository's encoder.

- **Figure 2** (a series of pictures): the I/B/B/P display pattern with
  prediction arrows, printed from an actual encoded stream's parse.
- **Figure 3** (syntactic elements): the sequence/GOP/picture/slice/
  macroblock/block hierarchy counted from a real stream — including the
  paper's crucial observation that macroblocks have *no start code* and
  are not byte-aligned.
- **Figure 4** (partial slices in a sub-picture): a real RunRecord whose
  payload begins mid-byte, demonstrating the byte-copy + skip_bits trick.
"""

from conftest import run_once

from repro.bitstream import find_start_codes
from repro.mpeg2.constants import PictureType, is_slice_start_code
from repro.mpeg2.encoder import Encoder, EncoderConfig
from repro.mpeg2.parser import MacroblockParser, PictureScanner
from repro.parallel.mb_splitter import MacroblockSplitter
from repro.parallel.subpicture import RunRecord
from repro.wall.layout import TileLayout
from repro.workloads.synthetic import moving_pattern_frames


def test_syntax_figures(benchmark):
    def experiment():
        frames = moving_pattern_frames(96, 64, 9, seed=11)
        stream = Encoder(EncoderConfig(gop_size=9, b_frames=2)).encode(frames)
        seq, pics = PictureScanner(stream).scan()
        parser = MacroblockParser(seq)
        parsed = [parser.parse_picture(u.data) for u in pics]
        layout = TileLayout(seq.width, seq.height, 2, 1)
        split = MacroblockSplitter(seq, layout).split(pics[1], 1)
        return stream, seq, pics, parsed, split

    stream, seq, pics, parsed, split = run_once(benchmark, experiment)

    # Figure 2 — a series of pictures ---------------------------------- #
    order = sorted(parsed, key=lambda p: p.header.temporal_reference)
    print("\nFigure 2 — a series of pictures (display order):")
    print("  " + " ".join(p.header.picture_type.name for p in order))
    print("  B pictures predict from both neighbouring anchors; "
          "P from the previous anchor.")
    assert [p.header.picture_type for p in order][:4] == [
        PictureType.I, PictureType.B, PictureType.B, PictureType.P
    ]

    # Figure 3 — syntactic elements ------------------------------------- #
    codes = [c for _, c in find_start_codes(stream)]
    n_slices = sum(1 for c in codes if is_slice_start_code(c))
    n_pictures = sum(1 for c in codes if c == 0x00)
    n_gops = sum(1 for c in codes if c == 0xB8)
    n_mbs = sum(len(p.items) for p in parsed)
    print("\nFigure 3 — syntactic elements of this stream:")
    print(f"  sequence(1) > GOP({n_gops}) > picture({n_pictures}) > "
          f"slice({n_slices}) > macroblock({n_mbs}) > block({n_mbs * 6})")
    print(f"  start codes exist down to slices ({len(codes)} total); "
          "macroblocks have none and need a full VLC parse to find")
    assert n_pictures == 9
    assert n_slices == 9 * (seq.height // 16)

    # a macroblock that starts mid-byte proves non-alignment
    misaligned = [
        it.mb for p in parsed for it in p.coded_items() if it.mb.bit_start % 8
    ]
    print(f"  {len(misaligned)} of {n_mbs} macroblocks start mid-byte")
    assert misaligned

    # Figure 4 — partial slices in a sub-picture ------------------------- #
    rec = next(
        r
        for sp in split.subpictures.values()
        for r in sp.records
        if isinstance(r, RunRecord) and r.sph.skip_bits
    )
    print("\nFigure 4 — a real partial slice:")
    print(f"  first macroblock at wall address {rec.sph.address}, "
          f"payload of {len(rec.payload)} whole bytes copied from the "
          f"original stream, skip_bits={rec.sph.skip_bits} "
          f"(macroblock_type begins {rec.sph.skip_bits} bits into byte 0)")
    print(f"  SPH carries qscale={rec.sph.qscale_code}, "
          f"dc_pred={rec.sph.dc_pred}, pmv={rec.sph.pmv}")
    assert 1 <= rec.sph.skip_bits <= 7
    assert rec.payload in pics[1].data  # byte-exact copy, never shifted
