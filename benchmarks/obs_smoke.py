"""Observability smoke: scrape a live 2-daemon fleet mid-run.

Mirrors the ``fleet-smoke`` topology — two spawned daemons behind one
gateway — then exercises the obs plane while sessions are actually
decoding:

- ``VERB_STATS`` against the gateway and both daemon run directories,
  twice, about a second apart;
- asserts the metric families the plane promises are present, that the
  gateway's fleet rollup covers both daemons, and that every flat
  counter is monotonic across the two scrapes (per-session counters are
  pruned at teardown and exempt);
- renders one ``repro top`` frame from the gateway scrape.

Writes a JSON artifact (``--out``) with both scrapes' key figures so a
failed assertion can be diagnosed from CI artifacts alone.

Run directly: ``PYTHONPATH=src python benchmarks/obs_smoke.py``.
"""

import argparse
import json
import sys
import time
from pathlib import Path

from repro.fleet import FleetConfig, FleetGateway
from repro.obs.top import run_top
from repro.service import ServiceClient, ServiceConfig
from repro.workloads.streams import stream_by_id

SPEC = stream_by_id(5)  # fish1: 1280x720 @ 30 fps
N_SESSIONS = 2
N_FRAMES = 60
SLOWDOWN_S = 0.05  # stretch the decode so the scrapes land mid-run


def _assert_daemon_snapshot(name: str, snap: dict) -> None:
    assert snap.get("role") == "daemon", (name, snap.get("role"))
    for key in ("families", "metrics", "channels", "admission", "slo"):
        assert key in snap, (name, key)
    fams = snap["families"]
    for fam in ("repro_admission_headroom_mpps", "repro_slo_worst_burn"):
        assert fam in fams, (name, fam, sorted(fams))


def _assert_counters_monotonic(name: str, a: dict, b: dict) -> None:
    for cname, v in a.get("counters", {}).items():
        if cname.startswith("session."):
            continue  # pruned at session teardown by design
        assert b.get("counters", {}).get(cname, 0) >= v, (name, cname)


def run_obs_smoke(rundir: Path) -> dict:
    cfg = FleetConfig(
        daemons=2,
        service=ServiceConfig(capacity_mpps=400.0, workers=2),
        health_interval=0.1,
        stats_interval=0.25,
    )
    report = {"scrapes": [], "sessions": []}
    with FleetGateway(rundir, cfg) as gw:
        with ServiceClient(rundir, request_timeout=60.0) as client:
            sids = [
                client.submit(
                    SPEC,
                    name=f"obs{i}",
                    n_frames=N_FRAMES,
                    slowdown_s=SLOWDOWN_S,
                )["sid"]
                for i in range(N_SESSIONS)
            ]
            # let the health loop cache at least one stats scrape and the
            # sessions produce pictures before the first mid-run scrape
            time.sleep(1.0)

            scrapes = []
            for _ in range(2):
                doc = {"gateway": client.stats(format="prometheus")}
                for i in range(cfg.daemons):
                    with ServiceClient(rundir / f"daemon{i}") as dc:
                        doc[f"daemon{i}"] = dc.stats()
                scrapes.append(doc)
                time.sleep(1.0)

            # one scriptable dashboard frame against the live gateway
            top_path = rundir / "top.txt"
            with open(top_path, "w", encoding="utf-8") as fh:
                rc = run_top(rundir, count=1, clear=False, out=fh)
            assert rc == 0, "repro top failed against the live gateway"
            print(top_path.read_text())

            finals = [client.wait(s, timeout=300.0) for s in sids]

    # ---- gateway: fleet rollup + prometheus families ------------------- #
    for doc in scrapes:
        gsnap = doc["gateway"]["stats"]
        assert gsnap["role"] == "gateway", gsnap
        assert gsnap["fleet"]["daemons_up"] == 2, gsnap["fleet"]
        assert set(gsnap["daemons"]) == {"daemon0", "daemon1"}, gsnap
        text = doc["gateway"]["text"]
        for fam in (
            "repro_fleet_capacity_mpps",
            "repro_fleet_daemons_up",
            "repro_fleet_worst_burn",
        ):
            assert fam in text, fam

    # ---- daemons: families present, flat counters monotonic ------------ #
    for i in range(cfg.daemons):
        name = f"daemon{i}"
        a, b = scrapes[0][name]["stats"], scrapes[1][name]["stats"]
        _assert_daemon_snapshot(name, a)
        _assert_daemon_snapshot(name, b)
        _assert_counters_monotonic(name, a["metrics"], b["metrics"])

    # at least one daemon was decoding when the scrapes landed
    mid_run = [
        row
        for doc in scrapes
        for i in range(cfg.daemons)
        for row in doc[f"daemon{i}"]["stats"]["sessions"]
    ]
    assert mid_run, "no session visible in any mid-run scrape"

    for f in finals:
        assert f["state"] == "completed", f
        report["sessions"].append(
            {k: f[k] for k in ("sid", "daemon", "state", "released")}
        )

    for doc in scrapes:
        entry = {"gateway_fleet": doc["gateway"]["stats"]["fleet"]}
        for i in range(cfg.daemons):
            snap = doc[f"daemon{i}"]["stats"]
            entry[f"daemon{i}"] = {
                "counters": snap["metrics"]["counters"],
                "sessions": [
                    {
                        "sid": r["sid"],
                        "state": r["state"],
                        "fps": r["fps"],
                        "latency_p95_ms": r["latency_p95_ms"],
                        "slo_worst_burn": r["slo"]["worst_burn"],
                    }
                    for r in snap["sessions"]
                ],
            }
        report["scrapes"].append(entry)
    return report


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--rundir", default="obs-smoke-run")
    ap.add_argument("--out", default="obs-smoke.json")
    args = ap.parse_args(argv)

    rundir = Path(args.rundir)
    report = run_obs_smoke(rundir)

    Path(args.out).write_text(json.dumps(report, indent=2) + "\n")
    print(json.dumps(report["scrapes"][-1]["gateway_fleet"], indent=2))
    print(f"obs smoke OK: report written to {args.out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
