"""Table 1 — comparison of parallelization levels (paper §3).

The paper's Table 1 is qualitative; this bench quantifies it per stream and
also prints the derived baseline frame rates (the §3 argument that no
coarse level suffices by itself).

Paper anchors: macroblock level has high/moderate splitting cost, low
inter-decoder communication, and NO pixel redistribution; every coarse
level pays very-high redistribution.
"""

from conftest import print_table, run_once

from repro.parallel.analysis import level_costs
from repro.parallel.baselines import compare_all
from repro.wall.layout import TileLayout
from repro.workloads.streams import stream_by_id


def test_table1(benchmark):
    spec = stream_by_id(16)
    layout = TileLayout(spec.width, spec.height, 4, 4)

    def experiment():
        return level_costs(spec, layout), compare_all(spec, layout, k=4)

    rows, baselines = run_once(benchmark, experiment)
    print_table(
        "Table 1 (quantified for stream 16, 4x4 wall)",
        [
            "level",
            "split CPU/pic",
            "inter-decoder/pic",
            "redistribution/pic",
            "paper labels (split/comm/redist)",
        ],
        [
            (
                r.level,
                f"{r.split_cpu_s * 1e3:.2f} ms",
                f"{r.interdecoder_bytes / 1e3:.0f} kB",
                f"{r.redistribution_bytes / 1e6:.2f} MB",
                f"{r.label_split} / {r.label_comm} / {r.label_redist}",
            )
            for r in rows
        ],
    )
    print_table(
        "Derived baseline frame rates (stream 16, Myrinet-class network)",
        ["scheme", "fps", "bound", "memory/node"],
        [
            (
                b.scheme,
                f"{b.fps:.1f}" if b.feasible else "infeasible",
                b.bound,
                f"{b.memory_required_mb:.0f} MB",
            )
            for b in baselines
        ],
    )
    mb = {r.level: r for r in rows}["macroblock"]
    assert mb.redistribution_bytes == 0.0
    assert {b.scheme: b for b in baselines}["hierarchical"].fps > 30
