"""The binary plan wire codec and the plan-shipping decode path.

Round-trips compiled :class:`TilePlan` payloads through the zero-copy wire
format — empty plans, skipped-macroblock-only plans, half-pel and
bidirectional motion — and checks the end-to-end property the format
exists for: a tile decoder fed wire-decoded plans produces frames
bit-identical to one re-parsing sub-picture bitstreams, with zero time in
its VLC parse stage.
"""

import numpy as np
import pytest

from repro.cluster.runtime.messages import decode_plan_msg, encode_plan_msg
from repro.mpeg2 import plan_codec
from repro.mpeg2.batch_reconstruct import PlanBuilder
from repro.mpeg2.constants import PictureType
from repro.mpeg2.decoder import decode_stream
from repro.mpeg2.encoder import Encoder, EncoderConfig
from repro.mpeg2.parser import PictureScanner
from repro.mpeg2.plan_codec import TilePlan, buffers_nbytes, decode_plan, encode_plan, encode_plan_bytes
from repro.mpeg2.reconstruct import QuantMatrices
from repro.parallel.mb_splitter import MacroblockSplitter
from repro.parallel.pdecoder import TileDecoder
from repro.parallel.threaded import ThreadedParallelDecoder
from repro.wall.layout import TileLayout
from repro.workloads.synthetic import moving_pattern_frames


@pytest.fixture(scope="module")
def clip_stream():
    clip = moving_pattern_frames(128, 96, 8, seed=11)
    # search_range > 1 with odd shifts produces half-pel vectors.
    stream = Encoder(EncoderConfig(gop_size=4, b_frames=2, search_range=5)).encode(clip)
    return clip, stream


@pytest.fixture(scope="module")
def split_setup(clip_stream):
    _, stream = clip_stream
    sequence, pictures = PictureScanner(stream).scan()
    layout = TileLayout(sequence.width, sequence.height, 2, 2)
    splitter = MacroblockSplitter(sequence, layout)
    return sequence, pictures, layout, splitter


def _assert_plans_equal(a: TilePlan, b: TilePlan) -> None:
    assert (a.picture_index, a.tile, a.picture_type) == (
        b.picture_index,
        b.tile,
        b.picture_type,
    )
    assert (a.n_coded, a.n_skipped) == (b.n_coded, b.n_skipped)
    pa, pb = a.plan, b.plan
    assert (pa.mb_width, pa.dc_scaler) == (pb.mb_width, pb.dc_scaler)
    assert (pa.n_intra_blocks, pa.n_res) == (pb.n_intra_blocks, pb.n_res)
    for name, dtype, _shape in plan_codec._BLOCK_ARRAYS + plan_codec._MB_ARRAYS:
        va, vb = getattr(pa, name), getattr(pb, name)
        assert va.dtype == vb.dtype == dtype, name
        assert np.array_equal(va, vb), name


class TestRoundTrip:
    def test_empty_plan(self):
        matrices = QuantMatrices()
        builder = PlanBuilder(PictureType.I, 8, 128, 96, matrices, 8)
        tp = TilePlan(0, 0, PictureType.I, 0, 0, builder.build())
        payload = encode_plan_bytes(tp)
        out, end = decode_plan(payload, matrices)
        assert end == len(payload)
        assert out.plan.n_macroblocks == 0 and out.plan.n_blocks == 0
        _assert_plans_equal(tp, out)

    def test_real_plans_round_trip(self, split_setup):
        """Every tile of every picture — covers intra, P with half-pel MVs,
        bidirectional B, and skipped-only tiles."""
        _, pictures, layout, splitter = split_setup
        saw_skipped_only = saw_halfpel = saw_bidir = False
        for i, unit in enumerate(pictures):
            result = splitter.split_plans(unit, i)
            for tid in range(layout.n_tiles):
                tp = result.plans[tid]
                payload = encode_plan_bytes(tp)
                out, end = decode_plan(payload, splitter.matrices)
                assert end == len(payload)
                assert out.wire_bytes == len(payload)
                _assert_plans_equal(tp, out)
                if tp.n_coded == 0 and tp.n_skipped > 0:
                    saw_skipped_only = True
                if tp.plan.n_macroblocks and (tp.plan.mb_mv % 2).any():
                    saw_halfpel = True
                if tp.plan.n_macroblocks and tp.plan.mb_dir.all(axis=1).any():
                    saw_bidir = True
        assert saw_halfpel, "stream produced no half-pel vectors"
        assert saw_bidir, "stream produced no bidirectional macroblocks"
        # skipped-only tiles are stream-dependent; don't require one, but
        # the loop above round-trips them whenever they occur.
        del saw_skipped_only

    def test_offset_decoding(self, split_setup):
        """Plans embedded mid-payload decode from their offset."""
        _, pictures, _, splitter = split_setup
        tp = splitter.split_plans(pictures[0], 0).plans[0]
        prefix = b"\xaa" * 13
        payload = prefix + encode_plan_bytes(tp) + b"\xbb" * 5
        out, end = decode_plan(payload, splitter.matrices, offset=len(prefix))
        assert end == len(payload) - 5
        _assert_plans_equal(tp, out)

    def test_buffer_list_matches_joined_bytes(self, split_setup):
        _, pictures, _, splitter = split_setup
        tp = splitter.split_plans(pictures[1], 1).plans[2]
        bufs = encode_plan(tp)
        joined = encode_plan_bytes(tp)
        assert buffers_nbytes(bufs) == len(joined)
        assert b"".join(bytes(b) for b in bufs) == joined

    def test_version_mismatch_rejected(self):
        matrices = QuantMatrices()
        builder = PlanBuilder(PictureType.I, 8, 128, 96, matrices, 8)
        tp = TilePlan(0, 0, PictureType.I, 0, 0, builder.build())
        payload = bytearray(encode_plan_bytes(tp))
        payload[0] = plan_codec.PLAN_WIRE_VERSION + 1
        with pytest.raises(ValueError, match="version"):
            decode_plan(bytes(payload), matrices)

    def test_plan_message_round_trip(self, split_setup):
        _, pictures, layout, splitter = split_setup
        result = splitter.split_plans(pictures[2], 2)
        for tid in range(layout.n_tiles):
            program = result.mei.program(tid)
            bufs = encode_plan_msg(1, result.plans[tid], program, (1.5, 2.5))
            payload = b"".join(bytes(b) for b in bufs)
            anid, expected, tp, prog, stamps = decode_plan_msg(
                payload, splitter.matrices
            )
            assert anid == 1
            assert expected == len(program.recvs)
            assert stamps == (1.5, 2.5)
            assert len(prog.sends) == len(program.sends)
            _assert_plans_equal(result.plans[tid], tp)


class TestPlanDecodeEquivalence:
    def test_decode_plan_matches_decode_subpicture(self, split_setup):
        """The tentpole property: per-tile frames from wire-shipped plans
        are bit-identical to sub-picture bitstream decoding, and the plan
        decoder does zero VLC work."""
        sequence, pictures, layout, splitter = split_setup
        dec_sp = {
            t.tid: TileDecoder(t, layout, sequence) for t in layout
        }
        dec_plan = {
            t.tid: TileDecoder(t, layout, sequence) for t in layout
        }
        for i, unit in enumerate(pictures):
            sp_result = splitter.split(unit, i)
            plan_result = splitter.compile_plans(
                splitter.parser.parse_picture(unit.data), i
            )
            for tid in range(layout.n_tiles):
                a = dec_sp[tid].decode_subpicture(sp_result.subpictures[tid])
                payload = encode_plan_bytes(plan_result.plans[tid])
                tp, _ = decode_plan(payload, dec_plan[tid].matrices)
                b = dec_plan[tid].decode_plan(tp)
                assert (a is None) == (b is None)
                if a is not None:
                    assert a.max_abs_diff(b) == 0, f"picture {i} tile {tid}"
        for tid in range(layout.n_tiles):
            a, b = dec_sp[tid].flush(), dec_plan[tid].flush()
            if a is not None:
                assert a.max_abs_diff(b) == 0
            assert dec_plan[tid].stage_times.parse == 0.0
            assert dec_sp[tid].stage_times.parse > 0.0
            assert (
                dec_plan[tid].stats.macroblocks_decoded
                == dec_sp[tid].stats.macroblocks_decoded
            )
            assert (
                dec_plan[tid].stats.macroblocks_skipped
                == dec_sp[tid].stats.macroblocks_skipped
            )

    def test_threaded_runner_both_wire_modes(self, clip_stream):
        _, stream = clip_stream
        ref = decode_stream(stream)
        layout = TileLayout(128, 96, 2, 2)
        plans = ThreadedParallelDecoder(layout, k=2, ship_plans=True).decode(stream)
        bits = ThreadedParallelDecoder(layout, k=2, ship_plans=False).decode(stream)
        assert all(a.max_abs_diff(b) == 0 for a, b in zip(ref, plans))
        assert all(a.max_abs_diff(b) == 0 for a, b in zip(ref, bits))
