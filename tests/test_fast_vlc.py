"""Differential fuzz: table-driven fast VLC vs. the bit-at-a-time reference.

Every fast decoder in :mod:`repro.mpeg2.fast_vlc` is checked symbol-for-
symbol (and cursor-position-for-cursor-position) against the reference
codecs in :mod:`repro.mpeg2.vlc` over randomized valid bitstreams produced
by the reference *encoders* — including every escape-code shape: address-
increment escapes (single and stacked), the non-intra first-coefficient
short form, both DCT tables' end-of-block codes, and MPEG-2 24-bit escape
coefficients across the level range.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.bitstream import BitReader, BitWriter
from repro.mpeg2 import fast_vlc, tables as T, vlc
from repro.mpeg2.decoder import decode_stream
from repro.mpeg2.encoder import Encoder, EncoderConfig
from repro.mpeg2.parser import MacroblockParser, PictureScanner
from repro.workloads.synthetic import moving_pattern_frames

# Levels that exercise every coding shape: short-form +/-1, in-table codes,
# and escapes at both ends of the 12-bit two's-complement range.
_LEVELS = [1, -1, 2, -3, 5, -8, 31, 40, -40, 127, -127, 255, -255, 2047, -2047]


@st.composite
def coded_blocks(draw):
    """A valid (run, level) list: positions stay inside the 8x8 block."""
    intra = draw(st.booleans())
    table_one = draw(st.booleans()) if intra else False
    pairs = []
    # Intra blocks start at scan position 0 (DC is separate); non-intra
    # coefficients may fill all 64 positions.
    p = 0 if intra else -1
    while True:
        if len(pairs) >= 8 or draw(st.booleans()) and pairs:
            break
        run = draw(st.integers(0, 63))
        if p + run + 1 > 63:
            break
        p += run + 1
        pairs.append((run, draw(st.sampled_from(_LEVELS))))
    return intra, table_one, pairs


def _encode_block(pairs, intra, table_one, lead_bits=0):
    w = BitWriter()
    if lead_bits:
        w.write((1 << lead_bits) - 1, lead_bits)  # unaligned start offset
    vlc.encode_coefficients(w, pairs, intra, table_one)
    w.write(0xAB, 8)  # trailing bytes: the decoder must stop exactly at EOB
    w.write(0xCD, 8)
    return w.getvalue()


def _ref_scan(br, intra, table_one):
    scan = np.zeros(64, dtype=np.int32)
    p = 0 if intra else -1
    for run, level in vlc.decode_coefficients(br, intra, table_one):
        p += run + 1
        scan[p] = level
    return scan


class TestCoefficients:
    @given(coded_blocks(), st.integers(0, 7))
    @settings(max_examples=300, deadline=None)
    def test_matches_reference_symbol_for_symbol(self, block, lead_bits):
        intra, table_one, pairs = block
        data = _encode_block(pairs, intra, table_one, lead_bits)

        ref_br = BitReader(data)
        ref_br.skip(lead_bits)
        ref = _ref_scan(ref_br, intra, table_one)

        fast_br = BitReader(data)
        fast_br.skip(lead_bits)
        fast = np.zeros(64, dtype=np.int32)
        fast_vlc.decode_ac_into(fast_br, fast, intra, table_one)

        assert np.array_equal(ref, fast)
        assert ref_br.pos == fast_br.pos  # stopped on the same bit

    @pytest.mark.parametrize("level", [2047, -2047, 256, -256, 41, -41])
    @pytest.mark.parametrize("run", [0, 5, 31, 63])
    def test_escape_shapes(self, run, level):
        """Every escape-coded coefficient decodes identically."""
        if run > 62:
            run = 62  # keep position 63 reachable after run zeros
        data = _encode_block([(run, level)], True, False)
        ref = _ref_scan(BitReader(data), True, False)
        fast = np.zeros(64, dtype=np.int32)
        fast_vlc.decode_ac_into(BitReader(data), fast, True, False)
        assert np.array_equal(ref, fast)

    def test_escape_level_zero_raises(self):
        w = BitWriter()
        bits, length = T.DCT_ESCAPE_CODE
        w.write(bits, length)
        w.write(3, T.ESCAPE_RUN_BITS)
        w.write(0, T.ESCAPE_LEVEL_BITS)  # forbidden
        w.align()
        with pytest.raises(vlc.VLCError):
            fast_vlc.decode_ac_into(
                BitReader(w.getvalue()), np.zeros(64, np.int32), True
            )

    def test_run_overrun_raises(self):
        w = BitWriter()
        bits, length = T.DCT_ESCAPE_CODE
        for _ in range(3):  # 3 x (run 40 + coefficient) overruns 64
            w.write(bits, length)
            w.write(40, T.ESCAPE_RUN_BITS)
            w.write(7, T.ESCAPE_LEVEL_BITS)
        w.align()
        with pytest.raises(Exception):
            fast_vlc.decode_ac_into(
                BitReader(w.getvalue()), np.zeros(64, np.int32), True
            )


class TestScalarCodes:
    @given(st.lists(st.integers(1, 150), min_size=1, max_size=6))
    @settings(max_examples=200, deadline=None)
    def test_address_increment(self, increments):
        """Increments beyond 33 use stacked escape codes."""
        w = BitWriter()
        for inc in increments:
            vlc.encode_address_increment(w, inc)
        w.align(fill=1)
        data = w.getvalue()
        ref_br, fast_br = BitReader(data), BitReader(data)
        for inc in increments:
            assert vlc.decode_address_increment(ref_br) == inc
            assert fast_vlc.decode_address_increment(fast_br) == inc
            assert ref_br.pos == fast_br.pos

    @given(
        st.integers(0, 8),
        st.lists(st.integers(-100, 100), min_size=1, max_size=8),
    )
    @settings(max_examples=200, deadline=None)
    def test_motion_delta(self, r_size, deltas):
        f = 1 << r_size
        deltas = [max(-16 * f, min(16 * f - 1, d * f // 4)) for d in deltas]
        w = BitWriter()
        for d in deltas:
            vlc.encode_motion_delta(w, d, r_size)
        w.align(fill=1)
        data = w.getvalue()
        ref_br, fast_br = BitReader(data), BitReader(data)
        for d in deltas:
            assert vlc.decode_motion_delta(ref_br, r_size) == d
            assert fast_vlc.decode_motion_delta(fast_br, r_size) == d
            assert ref_br.pos == fast_br.pos

    @given(st.integers(0, 1), st.lists(st.integers(-2047, 2047), min_size=1, max_size=8))
    @settings(max_examples=200, deadline=None)
    def test_dc_delta(self, component, diffs):
        table = vlc.DC_SIZE_LUMA if component == 0 else vlc.DC_SIZE_CHROMA
        w = BitWriter()
        for d in diffs:
            size = 0 if d == 0 else abs(d).bit_length()
            table.encode(w, size)
            if size:
                w.write(d if d > 0 else d + (1 << size) - 1, size)
        w.align(fill=1)
        data = w.getvalue()
        ref_br, fast_br = BitReader(data), BitReader(data)
        for d in diffs:
            # reference path: size VLC then the folded differential
            size = table.decode(ref_br)
            if size == 0:
                ref = 0
            else:
                raw = ref_br.read(size)
                ref = raw if raw >= (1 << (size - 1)) else raw - (1 << size) + 1
            assert ref == d
            assert fast_vlc.decode_dc_delta(fast_br, component) == d
            assert ref_br.pos == fast_br.pos

    def test_cbp_and_mb_type_match_reference(self):
        w = BitWriter()
        cbps = sorted(T.CODED_BLOCK_PATTERN)
        for cbp in cbps:
            vlc.CBP.encode(w, cbp)
        w.align(fill=1)
        data = w.getvalue()
        ref_br, fast_br = BitReader(data), BitReader(data)
        for cbp in cbps:
            assert vlc.CBP.decode(ref_br) == cbp
            assert fast_vlc.decode_cbp(fast_br) == cbp
            assert ref_br.pos == fast_br.pos

        for ptype, table in ((1, vlc.MB_TYPE_I), (2, vlc.MB_TYPE_P), (3, vlc.MB_TYPE_B)):
            w = BitWriter()
            syms = list(table.mapping)
            for sym in syms:
                table.encode(w, sym)
            w.align(fill=1)
            data = w.getvalue()
            ref_br, fast_br = BitReader(data), BitReader(data)
            for sym in syms:
                assert table.decode(ref_br) == sym
                assert fast_vlc.decode_mb_type(fast_br, ptype) == sym
                assert ref_br.pos == fast_br.pos


class TestWholeStream:
    """The integrated check: full pictures parse identically both ways."""

    def test_full_stream_parse_matches_reference(self):
        clip = moving_pattern_frames(128, 96, 8, seed=7)
        stream = Encoder(EncoderConfig(gop_size=4, b_frames=2)).encode(clip)
        sequence, pictures = PictureScanner(stream).scan()
        parser = MacroblockParser(sequence)
        for unit in pictures:
            fast = parser.parse_picture(unit.data)
            with fast_vlc.use_reference():
                ref = parser.parse_picture(unit.data)
            assert len(fast.items) == len(ref.items)
            for a, b in zip(fast.items, ref.items):
                assert a.mb.address == b.mb.address
                assert a.mb.bit_end == b.mb.bit_end
                assert a.mb.skipped == b.mb.skipped

    def test_full_stream_decode_bit_identical(self):
        clip = moving_pattern_frames(128, 96, 6, seed=3)
        stream = Encoder(EncoderConfig(gop_size=3, b_frames=1)).encode(clip)
        fast = decode_stream(stream)
        with fast_vlc.use_reference():
            ref = decode_stream(stream)
        assert all(a.max_abs_diff(b) == 0 for a, b in zip(ref, fast))
