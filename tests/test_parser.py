"""Macroblock-level parsing: coverage, bit extents, state snapshots."""

import pytest

from repro.bitstream import BitReader
from repro.mpeg2.constants import PictureType
from repro.mpeg2.parser import MacroblockParser, PictureScanner


@pytest.fixture(scope="module")
def parsed_pictures(small_stream_module):
    seq, pics = PictureScanner(small_stream_module).scan()
    parser = MacroblockParser(seq)
    return seq, [parser.parse_picture(u.data) for u in pics]


@pytest.fixture(scope="session")
def small_stream_module(small_stream):
    return small_stream


class TestCoverage:
    def test_every_macroblock_appears_once(self, parsed_pictures):
        seq, parsed = parsed_pictures
        n_mbs = (seq.width // 16) * (seq.height // 16)
        for pic in parsed:
            addresses = [it.mb.address for it in pic.items]
            assert sorted(addresses) == list(range(n_mbs))

    def test_counts_consistent(self, parsed_pictures):
        _, parsed = parsed_pictures
        for pic in parsed:
            skipped = sum(1 for it in pic.items if it.mb.skipped)
            assert skipped == pic.n_skipped
            assert pic.n_coded == len(pic.items) - skipped
            assert len(pic.coded_items()) == pic.n_coded

    def test_slice_rows_match_addresses(self, parsed_pictures):
        seq, parsed = parsed_pictures
        mb_w = seq.width // 16
        for pic in parsed:
            for it in pic.items:
                assert it.mb.address // mb_w == it.slice_row


class TestBitExtents:
    def test_extents_ordered_and_disjoint(self, parsed_pictures):
        _, parsed = parsed_pictures
        for pic in parsed:
            prev_end = 0
            for it in pic.items:
                if it.mb.skipped:
                    continue
                mb = it.mb
                assert mb.bit_start < mb.body_start <= mb.bit_end
                assert mb.bit_start >= prev_end
                prev_end = mb.bit_end

    def test_body_parses_same_as_original(self, parsed_pictures):
        """Re-parsing a coded macroblock's body bits from its snapshot
        reproduces the same macroblock — the property the sub-picture
        decoder relies on."""
        from repro.mpeg2.macroblock import CodingState, parse_macroblock_body

        _, parsed = parsed_pictures
        pic = parsed[0]
        for it in pic.coded_items()[:20]:
            state = CodingState(picture=pic.header)
            state.restore(it.state_before)
            br = BitReader(pic.data, start_bit=it.mb.body_start)
            mb = parse_macroblock_body(br, state)
            assert mb.type_flags() == it.mb.type_flags()
            assert mb.mv_fwd == it.mb.mv_fwd
            assert br.pos == it.mb.bit_end


class TestStateSnapshots:
    def test_snapshot_fields_complete(self, parsed_pictures):
        _, parsed = parsed_pictures
        snap = parsed[0].items[0].state_before
        assert set(snap) == {
            "qscale_code",
            "dc_pred",
            "pmv",
            "prev_forward",
            "prev_backward",
        }

    def test_slice_start_state_is_reset(self, parsed_pictures):
        seq, parsed = parsed_pictures
        mb_w = seq.width // 16
        for pic in parsed:
            for it in pic.items:
                if it.mb.address % mb_w == 0 and not it.mb.skipped:
                    assert it.state_before["dc_pred"] == [128, 128, 128]
                    assert it.state_before["pmv"] == [[0, 0], [0, 0]]


class TestPictureTypes:
    def test_types_match_encoder_plan(self, parsed_pictures):
        _, parsed = parsed_pictures
        # coded order for gop_size=6, b_frames=2, 8 frames:
        # GOP0: I0 P3 B1 B2 P5 B4 ; GOP1: I6 P7
        got = [p.header.picture_type.name for p in parsed]
        assert got == ["I", "P", "B", "B", "P", "B", "I", "P"]

    def test_b_pictures_contain_backward_vectors(self, parsed_pictures):
        _, parsed = parsed_pictures
        b_pics = [p for p in parsed if p.header.picture_type == PictureType.B]
        assert b_pics
        assert any(
            it.mb.motion_backward for p in b_pics for it in p.items
        )
