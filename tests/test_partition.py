"""Runtime partition policies: equalizer invariants, the versioned
layout-update wire codec, schedule semantics, controller gating, and the
end-to-end bit-identity of adaptive repartitioning in the threaded runner.

The multi-process cluster variants live in ``test_cluster_runtime.py``
territory (integration-marked at the bottom of this file): they spawn
real worker processes.
"""

from types import SimpleNamespace

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.mpeg2.constants import MB_SIZE
from repro.mpeg2.decoder import decode_stream
from repro.mpeg2.encoder import Encoder, EncoderConfig
from repro.parallel.partition import (
    ContentAwarePolicy,
    FeedbackPolicy,
    LayoutSchedule,
    LayoutUpdate,
    PartitionController,
    build_controller,
    clamp_cell,
    content_profile,
    equalize_cells,
    equalize_pixel_bounds,
    is_repartition_point,
    make_policy,
)
from repro.parallel.threaded import ThreadedParallelDecoder
from repro.wall.layout import TileLayout
from repro.workloads.synthetic import localized_detail_frames

# ---------------------------------------------------------------------- #
# boundary equalization
# ---------------------------------------------------------------------- #

weights_st = st.lists(
    st.one_of(
        st.floats(0, 1e9),
        st.just(float("nan")),
        st.just(float("inf")),
        st.floats(-100, 0),
    ),
    min_size=1,
    max_size=64,
)


@given(weights=weights_st, parts=st.integers(1, 8))
@settings(max_examples=200, deadline=None)
def test_equalize_cells_invariants(weights, parts):
    """For ANY weight vector (NaN/inf/negative included): parts+1 strictly
    increasing boundaries spanning [0, n] — or ValueError when n < parts."""
    n = len(weights)
    if n < parts:
        with pytest.raises(ValueError):
            equalize_cells(weights, parts)
        return
    cuts = equalize_cells(weights, parts)
    assert len(cuts) == parts + 1
    assert cuts[0] == 0 and cuts[-1] == n
    assert all(b > a for a, b in zip(cuts, cuts[1:]))


@given(weights=weights_st, parts=st.integers(1, 8))
@settings(max_examples=50, deadline=None)
def test_pixel_bounds_are_macroblock_aligned(weights, parts):
    if len(weights) < parts:
        return
    bounds = equalize_pixel_bounds(weights, parts)
    assert all(b % MB_SIZE == 0 for b in bounds)
    assert bounds[-1] == len(weights) * MB_SIZE


def test_uniform_weights_reproduce_the_static_grid():
    """Adaptive equalization under uniform load == the paper's fixed grid."""
    for mbw, parts in ((6, 2), (6, 3), (12, 4), (8, 2)):
        lay = TileLayout(mbw * MB_SIZE, 64, parts, 1)
        assert equalize_pixel_bounds(np.ones(mbw), parts) == lay.x_bounds


def test_concentrated_weight_still_yields_valid_bounds():
    """All the load in one cell: every part still gets >= 1 cell."""
    w = np.zeros(8)
    w[3] = 1e9
    cuts = equalize_cells(w, 4)
    assert cuts[0] == 0 and cuts[-1] == 8
    assert all(b > a for a, b in zip(cuts, cuts[1:]))


def test_clamp_cell_window():
    # previous bound at cell 2 (32px), 1 part after this one, 8 cells total
    assert clamp_cell(0, 32, 1, 8) == 3  # below window -> lo
    assert clamp_cell(9, 32, 1, 8) == 7  # above window -> hi
    assert clamp_cell(5, 32, 1, 8) == 5  # inside -> unchanged
    with pytest.raises(ValueError):
        clamp_cell(4, 7 * MB_SIZE, 1, 8)  # no room left


# ---------------------------------------------------------------------- #
# layout-update wire codec + schedule
# ---------------------------------------------------------------------- #


@given(
    version=st.integers(0, 2**32 - 1),
    eff=st.integers(0, 2**32 - 1),
    m=st.integers(1, 6),
    n=st.integers(1, 6),
    data=st.data(),
)
@settings(
    max_examples=60, deadline=None, suppress_health_check=[HealthCheck.too_slow]
)
def test_layout_update_wire_roundtrip(version, eff, m, n, data):
    """version + bounds survive encode/decode exactly."""
    xs = sorted(
        data.draw(
            st.lists(
                st.integers(1, 2**20), min_size=m, max_size=m, unique=True
            )
        )
    )
    ys = sorted(
        data.draw(
            st.lists(
                st.integers(1, 2**20), min_size=n, max_size=n, unique=True
            )
        )
    )
    upd = LayoutUpdate(version, eff, (0, *xs), (0, *ys))
    back = LayoutUpdate.decode(upd.encode())
    assert back == upd


def test_layout_update_truncated_raises():
    payload = LayoutUpdate(1, 5, (0, 32, 96), (0, 64)).encode()
    with pytest.raises(ValueError):
        LayoutUpdate.decode(payload[:-2])


def test_schedule_applies_versions_and_dedupes():
    base = TileLayout(96, 64, 2, 2)
    sched = LayoutSchedule(base)
    upd = LayoutUpdate(1, 5, (0, 48, 96), (0, 32, 64))
    lay = sched.apply(upd)
    assert lay is not None and lay.x_bounds == [0, 48, 96]
    # same version forwarded along a second channel path: ignored
    assert sched.apply(upd) is None
    # pictures before effective_from stay on the base layout
    assert sched.layout_for(4) is base
    assert sched.layout_for(5) is lay
    assert sched.layout_for(99) is lay
    assert sched.version_for(4) == 0
    assert sched.version_for(5) == 1
    # a later version may not rewind behind the staged history
    with pytest.raises(ValueError):
        sched.apply(LayoutUpdate(2, 3, (0, 32, 96), (0, 32, 64)))
    # ... but may replace the entry at the same effective picture
    lay2 = sched.apply(LayoutUpdate(2, 5, (0, 32, 96), (0, 32, 64)))
    assert sched.layout_for(5) is lay2
    assert sched.n_updates == 1


# ---------------------------------------------------------------------- #
# controller gating
# ---------------------------------------------------------------------- #


def _unit(new_gop: bool, closed: bool):
    gop = SimpleNamespace(closed_gop=closed) if new_gop else None
    return SimpleNamespace(new_gop=new_gop, gop=gop)


def test_is_repartition_point():
    assert is_repartition_point(_unit(True, True))
    assert not is_repartition_point(_unit(True, False))  # open GOP
    assert not is_repartition_point(_unit(False, False))  # mid-GOP picture


def test_controller_only_moves_at_closed_gop_boundaries():
    base = TileLayout(96, 64, 2, 1)
    ctrl = build_controller("feedback", base)
    assert isinstance(ctrl, PartitionController)
    # one tile is 9x slower: the policy clearly wants a move
    for pic in range(3):
        ctrl.observe_execute(pic, 0, 0.9)
        ctrl.observe_execute(pic, 1, 0.1)
    assert ctrl.maybe_update(0, _unit(True, True)) is None  # never picture 0
    assert ctrl.maybe_update(3, _unit(False, False)) is None  # mid-GOP
    assert ctrl.maybe_update(3, _unit(True, False)) is None  # open GOP
    upd = ctrl.maybe_update(3, _unit(True, True))
    assert upd is not None and upd.version == 1 and upd.effective_from == 3
    # the slow tile 0 shrank
    assert upd.x_bounds[1] < base.x_bounds[1]
    assert ctrl.schedule.current().x_bounds == list(upd.x_bounds)


def test_controller_suppresses_no_op_updates():
    base = TileLayout(96, 64, 2, 1)
    ctrl = build_controller("feedback", base)
    for pic in range(3):
        ctrl.observe_execute(pic, 0, 0.5)
        ctrl.observe_execute(pic, 1, 0.5)
    # perfectly balanced load proposes the current grid -> no update
    assert ctrl.maybe_update(3, _unit(True, True)) is None
    assert ctrl.schedule.n_updates == 0


def test_feedback_policy_waits_for_all_tiles():
    pol = FeedbackPolicy(6, 4, 2, 2)
    lay = TileLayout(96, 64, 2, 2)
    pol.observe_execute(0, 0, 0.4)
    pol.observe_execute(0, 1, 0.1)
    assert pol.propose(lay) is None  # tiles 2,3 silent so far
    pol.observe_execute(0, 2, 0.1)
    pol.observe_execute(0, 3, 0.1)
    assert pol.propose(lay) is not None


def test_build_controller_static_is_none():
    assert build_controller("static", TileLayout(96, 64, 2, 2)) is None
    with pytest.raises(ValueError):
        make_policy("bogus", 6, 4, 2, 2)


def test_content_policy_shrinks_the_busy_column_span():
    pol = ContentAwarePolicy(8, 4, 2, 1, uniform_floor=0.0)
    cols = np.ones(8)
    cols[:2] = 100.0  # left edge carries nearly all coded bits
    pol.observe_content(0, cols, np.ones(4))
    xb, yb = pol.propose(TileLayout(128, 64, 2, 1))
    assert xb[1] < 64  # boundary moved toward the busy edge
    assert yb == [0, 64]


# ---------------------------------------------------------------------- #
# content profile from a real parsed picture
# ---------------------------------------------------------------------- #


def test_content_profile_totals_match_macroblock_count():
    from repro.mpeg2.parser import PictureScanner
    from repro.parallel.mb_splitter import MacroblockSplitter

    clip = localized_detail_frames(96, 64, 3, seed=1)
    stream = Encoder(EncoderConfig(gop_size=3, b_frames=0)).encode(clip)
    sequence, pictures = PictureScanner(stream).scan()
    msplit = MacroblockSplitter(
        sequence, TileLayout(96, 64, 2, 2), collect_content=True
    )
    msplit.split_plans(pictures[0], 0)
    assert msplit.last_content is not None
    cols, rows = msplit.last_content
    assert cols.shape == (96 // MB_SIZE,)
    assert rows.shape == (64 // MB_SIZE,)
    # every macroblock contributed >= 1 "bit" to its column and row
    assert (cols >= 1).all() and (rows >= 1).all()
    assert cols.sum() == rows.sum()  # same bits, two projections


# ---------------------------------------------------------------------- #
# end-to-end: adaptive == static, bit for bit (threaded runner)
# ---------------------------------------------------------------------- #


@pytest.fixture(scope="module")
def detail_stream():
    clip = localized_detail_frames(96, 64, 20, seed=3)
    stream = Encoder(EncoderConfig(gop_size=5, b_frames=1)).encode(clip)
    return stream, decode_stream(stream)


@pytest.mark.parametrize("policy", ["content", "feedback"])
def test_threaded_adaptive_bit_identical(detail_stream, policy):
    stream, ref = detail_stream
    dec = ThreadedParallelDecoder(
        TileLayout(96, 64, 2, 2), k=2, partition_policy=policy
    )
    frames = dec.decode(stream)
    assert len(frames) == len(ref)
    assert all(a.max_abs_diff(b) == 0 for a, b in zip(ref, frames))


def test_threaded_adaptive_actually_repartitions(detail_stream):
    """The localized-detail stream must trigger at least one layout move
    (otherwise the bit-identity test above proves nothing adaptive ran)."""
    stream, ref = detail_stream
    dec = ThreadedParallelDecoder(
        TileLayout(96, 64, 2, 2), k=1, partition_policy="content"
    )
    frames = dec.decode(stream)
    assert all(a.max_abs_diff(b) == 0 for a, b in zip(ref, frames))
    assert len(dec.partition_updates) >= 1
    versions = [u.version for u in dec.partition_updates]
    assert versions == sorted(versions) and len(set(versions)) == len(versions)
    # a static run records none
    static = ThreadedParallelDecoder(TileLayout(96, 64, 2, 2))
    static.decode(stream)
    assert static.partition_updates == []


@pytest.mark.integration
@pytest.mark.parametrize("policy", ["content", "feedback"])
def test_cluster_adaptive_bit_identical_with_repartition(
    detail_stream, policy, tmp_path
):
    """Full multi-process cluster: adaptive output equals sequential AND
    at least one versioned layout update was applied by every decoder."""
    from repro.cluster.runtime import ClusterSupervisor, WallConfig
    from repro.perf.trace import read_trace_file

    stream, ref = detail_stream
    sup = ClusterSupervisor(
        WallConfig(m=2, n=2, k=2, transport="unix", partition_policy=policy),
        trace_dir=str(tmp_path),
    )
    frames = sup.decode(stream, timeout=120.0)
    assert len(frames) == len(ref)
    assert all(a.max_abs_diff(b) == 0 for a, b in zip(ref, frames))
    updates = repartitions = 0
    for f in tmp_path.glob("*.jsonl"):
        for ev in read_trace_file(f):
            updates += ev.event == "layout_update"
            repartitions += ev.event == "repartition"
    assert updates >= 1, "no layout update issued on this stream"
    # every decoder applied each update exactly once (4 tiles)
    assert repartitions == 4 * updates
