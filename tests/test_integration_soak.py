"""Everything-at-once integration: all codec tools + the full parallel
stack + the systems layer in one run.

This is the 'kitchen sink' a downstream user would eventually hit: a
rate-controlled stream with custom quantization matrices, 10-bit intra DC,
the alternate intra VLC table, and open skips — muxed into a program
stream, demuxed, decoded on a 3x2 wall with projector overlap and three
second-level splitters, validated, bit-exact against the reference.
"""

import numpy as np
import pytest

from repro.mpeg2 import psnr
from repro.mpeg2.decoder import Decoder, decode_stream
from repro.mpeg2.encoder import Encoder, EncoderConfig
from repro.mpeg2.ratecontrol import RateControlConfig, RateControlledEncoder
from repro.mpeg2.systems import demux_program_stream, mux_program_stream
from repro.mpeg2.validate import validate_stream
from repro.mpeg2.vbv import check_stream
from repro.parallel.pipeline import ParallelDecoder
from repro.wall.layout import TileLayout
from repro.workloads.synthetic import localized_detail_frames

STEEP = np.clip(
    np.add.outer(np.arange(8), np.arange(8)) * 10 + 8, 1, 255
).astype(np.int32)


@pytest.fixture(scope="module")
def kitchen_sink():
    frames = localized_detail_frames(144, 96, 14, seed=12)
    cfg = EncoderConfig(
        gop_size=7,
        b_frames=2,
        search_range=7,
        intra_matrix=STEEP,
        non_intra_matrix=np.full((8, 8), 12, np.int32),
        intra_dc_precision=10,
        intra_vlc_format=1,
    )
    enc = RateControlledEncoder(cfg, RateControlConfig(target_bpp=0.4))
    es = enc.encode(frames)
    return frames, es


class TestKitchenSink:
    def test_stream_validates(self, kitchen_sink):
        _, es = kitchen_sink
        report = validate_stream(es)
        assert report.ok, [str(f) for f in report.findings]

    def test_sequential_quality(self, kitchen_sink):
        frames, es = kitchen_sink
        out = decode_stream(es)
        assert len(out) == len(frames)
        assert min(psnr(a, b) for a, b in zip(frames, out)) > 27

    def test_through_program_stream_and_wall(self, kitchen_sink):
        frames, es = kitchen_sink
        ps = mux_program_stream(es, fps=30.0, chunk_size=1500)
        recovered = demux_program_stream(ps).video_es
        assert recovered == es
        ref = decode_stream(recovered)
        layout = TileLayout(144, 96, 3, 2, overlap=8)
        pd = ParallelDecoder(layout, k=3, verify_overlaps=True)
        wall = pd.decode(recovered)
        assert len(wall) == len(ref)
        assert all(a.max_abs_diff(b) == 0 for a, b in zip(ref, wall))
        assert pd.stats.exchange_count > 0

    def test_vbv_fits_at_generous_rate(self, kitchen_sink):
        _, es = kitchen_sink
        nominal = 8 * len(es) * 30.0 / 14
        assert check_stream(es, bit_rate=1.5 * nominal, fps=30.0).ok

    def test_seek_composes_with_features(self, kitchen_sink):
        frames, es = kitchen_sink
        full = decode_stream(es)
        tail = Decoder().decode_from_gop(es, 1)
        assert len(tail) == len(full) - 7
        for a, b in zip(full[7:], tail):
            assert a.max_abs_diff(b) == 0
