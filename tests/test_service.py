"""Wall service: protocol, admission, pacing ladder, fair-share pool,
drop-capable decode, and the daemon end to end (in-process threads)."""

import json
import threading
import time
from collections import Counter

import numpy as np
import pytest

from repro.mpeg2.constants import PictureType
from repro.mpeg2.decoder import Decoder
from repro.mpeg2.encoder import Encoder, EncoderConfig
from repro.mpeg2.vbv import plan_initial_fill, simulate_vbv
from repro.net.channel import ConnectPolicy, Listener
from repro.perf.export import build_report, render_report
from repro.perf.trace import read_trace_file
from repro.service import (
    AdmissionController,
    LadderConfig,
    PoolScheduler,
    ServiceClient,
    ServiceConfig,
    SessionPacer,
    WallService,
)
from repro.service.admission import (
    PoolView,
    REJECT_DRAINING,
    REJECT_OVERSIZE,
    REJECT_QUEUE_FULL,
    REJECT_VBV,
    vbv_buffer_for,
)
from repro.service.client import ServiceError
from repro.service.pacer import DegradationLadder
from repro.service.protocol import (
    SVC_RESPONSE,
    ProtocolError,
    ProtocolVersionError,
    decode_request,
    decode_response,
    encode_request,
    encode_response,
)
from repro.service.session import (
    PacedStreamDecoder,
    clean_decode_digest,
    i_picture_indices,
    peek_picture_type,
)
from repro.workloads.streams import StreamSpec, stream_by_id

SPEC = stream_by_id(5)  # fish1: 1280x720@30, 27.6 Mpixel/s demand


@pytest.fixture(scope="module")
def clip_stream():
    frames = SPEC.synthetic_frames(18, max_width=96)
    return Encoder(EncoderConfig(gop_size=6, b_frames=2)).encode(frames)


def tiny_spec(**kw) -> StreamSpec:
    base = dict(
        sid=99, name="tiny", width=96, height=64, fps=30.0, bpp=0.3,
        motion_pixels=4.0, n_frames=18, gop_size=6, b_frames=2,
    )
    base.update(kw)
    return StreamSpec(**base)


# --------------------------------------------------------------------- #
# protocol
# --------------------------------------------------------------------- #


class TestProtocol:
    def test_request_roundtrip_with_blob(self):
        blob = bytes(range(256)) * 3
        payload = encode_request("submit", {"weight": 2.0, "name": "x"}, blob)
        verb, fields, out = decode_request(payload)
        assert verb == "submit"
        assert fields == {"weight": 2.0, "name": "x"}
        assert out == blob

    def test_response_roundtrip(self):
        doc = decode_response(
            encode_response(True, {"sid": 3, "admission": {"action": "accept"}})
        )
        assert doc["ok"] is True and doc["sid"] == 3

    def test_error_response(self):
        doc = decode_response(encode_response(False, {}, error="nope"))
        assert doc["ok"] is False and doc["error"] == "nope"

    def test_unknown_verb_rejected_both_ways(self):
        with pytest.raises(ProtocolError):
            encode_request("explode", {})
        payload = encode_request("status", {})
        bad = payload.replace(b"status", b"statuz")
        with pytest.raises(ProtocolError):
            decode_request(bad)

    def test_version_mismatch_raises_before_fields(self):
        payload = bytearray(encode_request("ping", {}))
        payload[0] ^= 0xFF  # corrupt the little-endian version word
        with pytest.raises(ProtocolVersionError):
            decode_request(bytes(payload))

    def test_truncated_payload(self):
        payload = encode_request("ping", {"a": 1})
        with pytest.raises(ProtocolError):
            decode_request(payload[:4])

    def test_response_with_binary_tail_rejected(self):
        with pytest.raises(ProtocolError):
            decode_response(encode_response(True, {}) + b"tail")


# --------------------------------------------------------------------- #
# admission
# --------------------------------------------------------------------- #


class TestAdmission:
    def test_decisions_are_deterministic(self):
        ac = AdmissionController(capacity_mpps=100.0)
        pool = PoolView(active_demand_mpps=50.0, queued=1, soonest_finish_s=2.5)
        a = ac.evaluate(SPEC, pool)
        b = ac.evaluate(SPEC, pool)
        assert a == b

    def test_accept_under_capacity_reports_utilization(self):
        ac = AdmissionController(capacity_mpps=100.0)
        d = ac.evaluate(SPEC, PoolView())
        assert d.accepted and d.reason == "ok"
        assert d.utilization == pytest.approx(SPEC.demand_mpps / 100.0)
        assert d.vbv["underflows"] == 0 and d.vbv["overflows"] == 0

    def test_oversize_rejected_with_reason(self):
        ac = AdmissionController(capacity_mpps=10.0)
        d = ac.evaluate(SPEC, PoolView())
        assert d.action == "reject" and d.reason == REJECT_OVERSIZE
        assert "Mpixel/s" in d.detail

    def test_orion4_fails_vbv_deterministically(self):
        # orion4's modeled I-picture exceeds even the MP@HL buffer, so no
        # vbv_delay can save it: a stable machine-readable rejection.
        ac = AdmissionController(capacity_mpps=1000.0)
        d = ac.evaluate(stream_by_id(16), PoolView())
        assert d.action == "reject" and d.reason == REJECT_VBV
        assert d.vbv["underflows"] > 0
        assert d.to_dict()["reason"] == REJECT_VBV

    def test_all_other_table4_streams_pass_vbv(self):
        ac = AdmissionController(capacity_mpps=1000.0)
        for sid in range(1, 16):
            d = ac.evaluate(stream_by_id(sid), PoolView())
            assert d.accepted, (sid, d.reason, d.detail)

    def test_queue_then_queue_full(self):
        ac = AdmissionController(capacity_mpps=30.0, queue_slots=1)
        busy = PoolView(active_demand_mpps=28.0, queued=0, soonest_finish_s=4.0)
        d = ac.evaluate(SPEC, busy)
        assert d.action == "queue" and d.retry_after_s == 4.0
        full = PoolView(active_demand_mpps=28.0, queued=1, soonest_finish_s=4.0)
        d2 = ac.evaluate(SPEC, full)
        assert d2.action == "reject" and d2.reason == REJECT_QUEUE_FULL
        assert d2.retry_after_s == 4.0  # structured retry hint survives

    def test_bad_spec_rejected(self):
        ac = AdmissionController(capacity_mpps=100.0)
        d = ac.evaluate(tiny_spec(fps=-1.0), PoolView())
        assert d.action == "reject" and d.reason == "reject-bad-spec"

    def test_level_appropriate_buffers(self):
        assert vbv_buffer_for(stream_by_id(1)) == 1_835_008  # 720x480 ML
        assert vbv_buffer_for(stream_by_id(5)) == 7_340_032  # 720p High-1440
        assert vbv_buffer_for(stream_by_id(10)) == 9_781_248  # 1080 HL


class TestVBVPlanning:
    def test_planner_finds_fill_steady_stream(self):
        fill = plan_initial_fill([1000] * 30, 30_000, 30.0, buffer_bits=50_000)
        assert fill is not None
        res = simulate_vbv(
            [1000] * 30, 30_000, 30.0, buffer_bits=50_000,
            initial_delay=fill / 30_000,
        )
        assert res.ok

    def test_planner_infeasible_when_picture_exceeds_buffer(self):
        assert (
            plan_initial_fill([60_000], 30_000, 30.0, buffer_bits=50_000) is None
        )

    def test_planner_fill_respects_overflow_band(self):
        # tiny pictures force occupancy to rise; the planner must leave
        # headroom, and its choice must replay clean
        sizes = [10] * 10 + [9_000]
        fill = plan_initial_fill(sizes, 30_000, 30.0, buffer_bits=20_000)
        assert fill is not None
        res = simulate_vbv(
            sizes, 30_000, 30.0, buffer_bits=20_000, initial_delay=fill / 30_000
        )
        assert res.ok


# --------------------------------------------------------------------- #
# ladder + pacer
# --------------------------------------------------------------------- #


class TestLadder:
    def test_never_drops_i_pictures(self):
        ladder = DegradationLadder()
        ladder.update(100.0)  # deeply late: level 3
        assert ladder.level == 3
        assert not ladder.should_drop(PictureType.I, 0, 12)
        assert ladder.should_drop(PictureType.P, 1, 12)
        assert ladder.should_drop(PictureType.B, 2, 12)

    def test_levels_enter_in_order(self):
        ladder = DegradationLadder(LadderConfig(enter_levels=(1.0, 3.0, 6.0)))
        assert ladder.update(0.5) == 0
        assert ladder.update(1.5) == 1
        assert ladder.update(3.5) == 2
        assert ladder.update(6.5) == 3
        assert ladder.peak_level == 3

    def test_hysteresis_blocks_flapping(self):
        ladder = DegradationLadder(
            LadderConfig(enter_levels=(1.0, 3.0, 6.0), exit_hysteresis=0.5)
        )
        ladder.update(1.5)
        assert ladder.level == 1
        assert ladder.update(0.8) == 1  # above 0.5 * 1.0: stays degraded
        assert ladder.update(0.4) == 0  # clearly recovered

    def test_level2_drops_only_gop_tail_p(self):
        ladder = DegradationLadder()
        ladder.update(4.0)  # level 2
        assert not ladder.should_drop(PictureType.P, 1, 12)  # GOP head
        assert ladder.should_drop(PictureType.P, 7, 12)  # GOP tail
        assert ladder.should_drop(PictureType.B, 2, 12)

    def test_config_validation(self):
        with pytest.raises(ValueError):
            LadderConfig(enter_levels=(3.0, 1.0, 6.0))
        with pytest.raises(ValueError):
            LadderConfig(exit_hysteresis=1.5)
        with pytest.raises(ValueError):
            LadderConfig(lookahead=0)


class TestPacer:
    def test_deadlines_on_presentation_clock(self):
        p = SessionPacer(fps=10.0)
        p.start(100.0)
        assert p.deadline(0) == pytest.approx(100.1)
        assert p.deadline(9) == pytest.approx(101.0)

    def test_gate_limits_decode_ahead(self):
        p = SessionPacer(fps=10.0, config=LadderConfig(lookahead=2))
        p.start(100.0)
        assert p.gate_time(0) == 100.0  # within lookahead of t0
        assert p.gate_time(10) == pytest.approx(100.0 + 1.1 - 0.2)

    def test_decide_drops_b_when_late(self):
        p = SessionPacer(fps=10.0)
        p.start(100.0)
        # picture 0's deadline is 100.1; now = 100.35 -> 2.5 periods late
        drop, level = p.decide(0, PictureType.B, 2, 6, now=100.35)
        assert drop and level == 1
        drop_i, _ = p.decide(0, PictureType.I, 0, 6, now=100.35)
        assert not drop_i


# --------------------------------------------------------------------- #
# scheduler
# --------------------------------------------------------------------- #


class StubSession:
    def __init__(self, name, weight=1.0, gate=0.0):
        self.name = name
        self.weight = weight
        self.vt = 0.0
        self.in_flight = False
        self.gate = gate

    def wants_lease(self, now):
        return not self.in_flight and self.gate <= now

    def gate_time(self):
        return self.gate


class TestScheduler:
    def test_weighted_fair_share(self):
        clock = [0.0]
        sched = PoolScheduler(now_fn=lambda: clock[0])
        a = StubSession("a", weight=1.0)
        b = StubSession("b", weight=2.0)
        sched.add(a)
        sched.add(b)
        counts = Counter()
        for _ in range(300):
            s = sched.next_lease(timeout=0.0)
            assert s is not None
            counts[s.name] += 1
            sched.complete(s, cost_s=0.01)  # equal per-picture cost
        # weight 2 gets twice the leases of weight 1
        assert counts["b"] == pytest.approx(2 * counts["a"], rel=0.05)

    def test_gated_session_is_invisible(self):
        clock = [0.0]
        sched = PoolScheduler(now_fn=lambda: clock[0])
        gated = StubSession("g", gate=10.0)
        open_ = StubSession("o")
        sched.add(gated)
        sched.add(open_)
        for _ in range(5):
            s = sched.next_lease(timeout=0.0)
            assert s is open_  # work-conserving: gated never picked
            sched.complete(s, 0.01)
        clock[0] = 11.0
        # now the gated session is behind in vt and must win
        s = sched.next_lease(timeout=0.0)
        assert s is gated

    def test_late_joiner_starts_at_pool_virtual_time(self):
        sched = PoolScheduler(now_fn=lambda: 0.0)
        old = StubSession("old")
        old.vt = 5.0
        sched.add(old)
        newcomer = StubSession("new")
        sched.add(newcomer)
        assert newcomer.vt == 5.0  # no catch-up monopoly

    def test_timeout_returns_none_and_counts_idle(self):
        sched = PoolScheduler()
        assert sched.next_lease(timeout=0.01) is None
        assert sched.idle_waits == 1

    def test_close_unblocks_waiters(self):
        sched = PoolScheduler()
        out = []

        def wait():
            out.append(sched.next_lease(timeout=5.0))

        t = threading.Thread(target=wait)
        t.start()
        time.sleep(0.05)
        sched.close()
        t.join(timeout=2.0)
        assert out == [None]


# --------------------------------------------------------------------- #
# drop-capable decode
# --------------------------------------------------------------------- #


class TestPacedStreamDecoder:
    def test_no_drop_run_is_bit_identical(self, clip_stream):
        ref = Decoder().decode(clip_stream)
        d = PacedStreamDecoder(clip_stream)
        out = []
        while not d.done:
            r = d.step(drop=False)
            if r.frame is not None:
                out.append(r.frame)
        tail = d.flush()
        if tail is not None:
            out.append(tail)
        assert len(out) == len(ref)
        for a, b in zip(out, ref):
            assert np.array_equal(a.y, b.y)
            assert np.array_equal(a.cb, b.cb)
            assert np.array_equal(a.cr, b.cr)

    def test_meta_matches_headers(self, clip_stream):
        d = PacedStreamDecoder(clip_stream)
        for unit, meta in zip(d.pictures, d.meta):
            assert peek_picture_type(unit.data) == meta.ptype
        assert d.meta[0].ptype == PictureType.I and d.meta[0].gop_pos == 0

    def test_b_drops_leave_anchors_bit_identical(self, clip_stream):
        ref = Decoder().decode(clip_stream)
        d = PacedStreamDecoder(clip_stream)
        anchors = []
        while not d.done:
            meta = d.meta[d.next_index]
            r = d.step(drop=meta.ptype == PictureType.B)
            if r.frame is not None:
                anchors.append((r.index, r.frame))
        tail = d.flush()
        assert tail is not None
        assert all(not np.array_equal(f.y, 0) for _, f in anchors)
        # every emitted anchor is bit-identical to some reference frame
        ref_ys = [fr.y for fr in ref]
        for _, frame in anchors:
            assert any(np.array_equal(frame.y, y) for y in ref_ys)

    def test_p_drop_breaks_gop_until_next_i(self, clip_stream):
        d = PacedStreamDecoder(clip_stream)
        # drop the first P that has non-I pictures after it in its GOP
        broke_at = next(
            i
            for i, m in enumerate(d.meta)
            if m.ptype == PictureType.P
            and i + 1 < len(d.meta)
            and d.meta[i + 1].ptype != PictureType.I
        )
        next_i = next(
            i
            for i, m in enumerate(d.meta)
            if i > broke_at and m.ptype == PictureType.I
        )
        forced = []
        while not d.done:
            i = d.next_index
            r = d.step(drop=i == broke_at)
            if r.forced:
                forced.append(i)
            if broke_at < i < next_i:
                # broken chain: nothing decodes until the next keyframe
                assert not r.decoded and r.forced
            elif i > next_i:
                assert r.decoded  # the I re-anchored the chain
        d.flush()
        assert forced == list(range(broke_at + 1, next_i))

    def test_dropping_i_is_a_bug(self, clip_stream):
        d = PacedStreamDecoder(clip_stream)
        with pytest.raises(ValueError):
            d.step(drop=True)  # picture 0 is an I


# --------------------------------------------------------------------- #
# the daemon, end to end (threads in this process)
# --------------------------------------------------------------------- #


@pytest.fixture()
def service(tmp_path):
    cfg = ServiceConfig(capacity_mpps=200.0, workers=2, queue_slots=2)
    svc = WallService(tmp_path, cfg)
    svc.start()
    yield svc, tmp_path
    svc.stop()


def submit_tiny(client, clip_stream, **kw):
    return client.submit(SPEC, stream=clip_stream, **kw)


class TestServiceEndToEnd:
    def test_concurrent_sessions_no_drops_under_capacity(
        self, service, clip_stream
    ):
        svc, rundir = service
        with ServiceClient(rundir) as client:
            sids = [
                submit_tiny(client, clip_stream, name=f"s{i}")["sid"]
                for i in range(4)
            ]
            finals = [client.wait(sid, timeout=90.0) for sid in sids]
        for f in finals:
            assert f["state"] == "completed"
            assert f["dropped_b"] == 0 and f["dropped_p"] == 0
            assert f["released"] == 18
            assert f["peak_degrade_level"] == 0

    def test_oversubscribed_sessions_degrade_reference_safely(
        self, tmp_path, clip_stream
    ):
        cfg = ServiceConfig(capacity_mpps=200.0, workers=1)
        with WallService(tmp_path, cfg) as svc:
            with ServiceClient(tmp_path) as client:
                sids = [
                    submit_tiny(
                        client, clip_stream, name=f"o{i}", slowdown_s=0.05
                    )["sid"]
                    for i in range(3)
                ]
                finals = [client.wait(sid, timeout=120.0) for sid in sids]
        total_drops = 0
        for f in finals:
            assert f["state"] == "completed"
            assert f["decoded"]["I"] == 3  # every keyframe survived
            total_drops += f["dropped_b"] + f["dropped_p"]
            assert f["peak_degrade_level"] >= 1
        assert total_drops > 0

        # drop ledger: trace events agree with summary counters exactly
        events = read_trace_file(tmp_path / "service.trace.jsonl")
        drops = Counter(
            e.data["sid"] for e in events if e.event == "drop"
        )
        summaries = {
            e.data["sid"]: e.data["dropped_b"] + e.data["dropped_p"]
            for e in events
            if e.event == "session_summary"
        }
        assert dict(drops) == {k: v for k, v in summaries.items() if v}
        # nothing in the stream ever dropped an I
        assert all(
            e.data["ptype"] in ("P", "B")
            for e in events
            if e.event == "drop"
        )

    def test_structured_rejection_is_deterministic(self, tmp_path, clip_stream):
        # pool big enough that orion4 clears the capacity check and fails
        # on its VBV model instead — the deterministic conformance reject
        with WallService(tmp_path, ServiceConfig(capacity_mpps=1000.0)) as svc:
            with ServiceClient(tmp_path) as client:
                replies = [client.submit(stream_by_id(16)) for _ in range(2)]
        for r in replies:
            assert "sid" not in r
            assert r["admission"]["action"] == "reject"
            assert r["admission"]["reason"] == REJECT_VBV
        assert replies[0]["admission"] == replies[1]["admission"]

    def test_oversize_rejection_names_capacity(self, tmp_path, clip_stream):
        with WallService(tmp_path, ServiceConfig(capacity_mpps=5.0)) as svc:
            with ServiceClient(tmp_path) as client:
                r = client.submit(SPEC, stream=clip_stream)
        assert r["admission"]["reason"] == REJECT_OVERSIZE
        assert "retry_after_s" not in r["admission"]  # waiting cannot help

    def test_queue_promotion(self, tmp_path, clip_stream):
        # capacity for one fish stream at a time; second waits its turn
        cfg = ServiceConfig(capacity_mpps=30.0, workers=1, queue_slots=2)
        with WallService(tmp_path, cfg) as svc:
            with ServiceClient(tmp_path) as client:
                first = submit_tiny(client, clip_stream, name="front")
                second = submit_tiny(client, clip_stream, name="back")
                assert first["admission"]["action"] == "accept"
                assert second["admission"]["action"] == "queue"
                assert second["admission"]["retry_after_s"] > 0
                done = client.wait(second["sid"], timeout=90.0)
        assert done["state"] == "completed"
        assert done["released"] == 18

    def test_cancel_mid_session(self, tmp_path, clip_stream):
        cfg = ServiceConfig(capacity_mpps=200.0, workers=1)
        with WallService(tmp_path, cfg) as svc:
            with ServiceClient(tmp_path) as client:
                sid = submit_tiny(
                    client, clip_stream, name="doomed", slowdown_s=0.05
                )["sid"]
                time.sleep(0.2)
                reply = client.cancel(sid, reason="test says stop")
                final = client.wait(sid, timeout=30.0)
        assert reply["cancelled"] is True
        assert final["state"] == "cancelled"
        assert final["reason"] == "test says stop"
        events = read_trace_file(tmp_path / "service.trace.jsonl")
        summaries = [e for e in events if e.event == "session_summary"]
        assert len(summaries) == 1  # cancelled sessions still summarize

    def test_status_unknown_sid_is_an_error(self, service, clip_stream):
        svc, rundir = service
        with ServiceClient(rundir) as client:
            with pytest.raises(ServiceError):
                client.status(777)

    def test_ping_reports_pool_state(self, service, clip_stream):
        svc, rundir = service
        with ServiceClient(rundir) as client:
            info = client.ping()
        assert info["capacity_mpps"] == 200.0
        assert info["workers"] == 2
        assert info["protocol"] == 1

    def test_shutdown_verb_stops_daemon(self, tmp_path):
        svc = WallService(tmp_path, ServiceConfig())
        svc.start()
        with ServiceClient(tmp_path) as client:
            client.shutdown(reason="test over")
        deadline = time.monotonic() + 10.0
        while not svc._stop.is_set() and time.monotonic() < deadline:
            time.sleep(0.02)
        assert svc._stop.is_set()
        svc.stop()

    def test_shutdown_ack_flushes_before_teardown(self, tmp_path):
        # Regression: the shutdown reply must reach the requester before
        # teardown begins (no retries to paper over a lost ack), and a
        # concurrent stop() — the foreground serve loop waking on
        # ``_stop`` — must block until cleanup finished, so the process
        # cannot exit while the reply or the final trace events are
        # still being written.
        svc = WallService(tmp_path, ServiceConfig())
        svc.start()
        with ServiceClient(tmp_path, retries=0) as client:
            reply = client.shutdown(reason="ack ordering")
        assert reply["stopping"] is True
        svc.stop()  # second caller: returns only after cleanup is done
        assert svc._stop_done.is_set()
        events = read_trace_file(tmp_path / "service.trace.jsonl")
        assert any(e.event == "service_stop" for e in events)

    def test_tcp_transport(self, tmp_path, clip_stream):
        cfg = ServiceConfig(capacity_mpps=200.0, transport="tcp")
        with WallService(tmp_path, cfg) as svc:
            with ServiceClient(tmp_path, transport="tcp") as client:
                sid = submit_tiny(client, clip_stream, name="tcp")["sid"]
                final = client.wait(sid, timeout=90.0)
        assert final["state"] == "completed"


class TestTraceReportSessions:
    def test_report_attributes_sessions_and_checks_ledger(
        self, tmp_path, clip_stream
    ):
        cfg = ServiceConfig(capacity_mpps=200.0, workers=1)
        with WallService(tmp_path, cfg) as svc:
            with ServiceClient(tmp_path) as client:
                sid = submit_tiny(
                    client, clip_stream, name="traced", slowdown_s=0.05
                )["sid"]
                client.wait(sid, timeout=90.0)
                client.submit(stream_by_id(16))  # one structured rejection
        events = read_trace_file(tmp_path / "service.trace.jsonl")
        report = build_report(events)
        assert sid in report.sessions
        agg = report.sessions[sid]
        assert agg.summary is not None
        assert agg.consistent()
        assert agg.decode_count == agg.summary["decoded"]["I"] + (
            agg.summary["decoded"]["P"] + agg.summary["decoded"]["B"]
        )
        assert len(report.admission_rejects) == 1
        text = render_report(report)
        assert "Service sessions" in text
        assert "Admission rejections" in text
        assert "reject-oversize: 1" in text


# --------------------------------------------------------------------- #
# config knobs (satellites)
# --------------------------------------------------------------------- #


class TestConfigKnobs:
    def test_wallconfig_connect_policy_roundtrip(self):
        from repro.cluster.runtime import WallConfig

        cfg = WallConfig(
            connect_retry_interval=0.01, connect_backoff=2.0,
            connect_max_interval=0.1,
        )
        p = cfg.connect_policy
        assert isinstance(p, ConnectPolicy)
        assert (p.retry_interval, p.backoff, p.max_interval) == (0.01, 2.0, 0.1)
        again = WallConfig.from_dict(cfg.to_dict())
        assert again.connect_policy == p

    def test_wallconfig_teardown_budgets_validated(self):
        from repro.cluster.runtime import WallConfig

        with pytest.raises(ValueError):
            WallConfig(terminate_grace_s=0.0)
        with pytest.raises(ValueError):
            WallConfig(teardown_kill_s=-1.0)

    def test_service_config_roundtrip_and_validation(self):
        cfg = ServiceConfig(capacity_mpps=50.0, enter_levels=(2.0, 4.0, 8.0))
        again = ServiceConfig.from_dict(
            json.loads(json.dumps(cfg.to_dict()))
        )
        assert again == cfg
        assert again.ladder().enter_levels == (2.0, 4.0, 8.0)
        with pytest.raises(ValueError):
            ServiceConfig(workers=0)
        with pytest.raises(ValueError):
            ServiceConfig(transport="carrier-pigeon")

    def test_metrics_prune(self):
        from repro.perf.telemetry import MetricsRegistry

        reg = MetricsRegistry()
        reg.counter("session.7.leases").inc()
        reg.gauge("session.7.level").set(2)
        reg.histogram("session.7.latency").observe(0.1)
        reg.counter("pool.leases").inc()
        assert reg.prune("session.7.") == 3
        snap = reg.snapshot()
        assert list(snap["counters"]) == ["pool.leases"]


# --------------------------------------------------------------------- #
# client retry, drain, and resume (fleet-facing service surface)
# --------------------------------------------------------------------- #


class TestClientRetryOnFlappingListener:
    def test_request_survives_connection_resets(self, tmp_path):
        """Regression: a listener that accepts and immediately drops two
        connections (a restarting daemon) must not fail the request —
        the client re-dials with backoff and completes on the third."""
        lst = Listener(("unix", str(tmp_path / "service.sock")))
        drops = []

        def serve():
            for i in range(2):  # flap: accept, then slam the door
                ch = lst.accept(timeout=10.0)
                drops.append(i)
                ch.close()
            ch = lst.accept(timeout=10.0)
            msg = ch.recv(timeout=10.0)
            verb, _fields, _blob = decode_request(msg.payload)
            ch.send(SVC_RESPONSE, encode_response(True, {"echo": verb}))
            time.sleep(0.2)
            ch.close()

        t = threading.Thread(target=serve, daemon=True)
        t.start()
        try:
            with ServiceClient(
                tmp_path, connect_timeout=5.0, request_timeout=5.0
            ) as client:
                reply = client.request("ping", {})
        finally:
            lst.close()
            t.join(timeout=5.0)
        assert reply["echo"] == "ping"
        assert len(drops) == 2

    def test_retries_exhausted_raises(self, tmp_path):
        lst = Listener(("unix", str(tmp_path / "service.sock")))

        def serve():
            while True:
                try:
                    lst.accept(timeout=5.0).close()
                except Exception:  # noqa: BLE001 - listener torn down
                    return

        t = threading.Thread(target=serve, daemon=True)
        t.start()
        try:
            with ServiceClient(
                tmp_path, connect_timeout=2.0, request_timeout=2.0, retries=2
            ) as client:
                with pytest.raises(Exception):
                    client.request("ping", {})
        finally:
            lst.close()
            t.join(timeout=5.0)


class TestDrainVerb:
    def test_drain_rejects_submits_until_undrained(self, tmp_path, clip_stream):
        cfg = ServiceConfig(capacity_mpps=200.0, workers=1)
        with WallService(tmp_path, cfg) as svc:
            with ServiceClient(tmp_path) as client:
                assert client.ping()["draining"] is False
                r = client.drain(reason="rolling restart")
                assert r["draining"] is True
                rej = submit_tiny(client, clip_stream, name="refused")
                assert "sid" not in rej
                assert rej["admission"]["action"] == "reject"
                assert rej["admission"]["reason"] == REJECT_DRAINING
                assert client.ping()["draining"] is True
                r2 = client.undrain(reason="restart done")
                assert r2["draining"] is False
                ok = submit_tiny(client, clip_stream, name="accepted")
                assert "sid" in ok
                final = client.wait(ok["sid"], timeout=90.0)
        assert final["state"] == "completed"

    def test_drain_leaves_running_sessions_alone(self, tmp_path, clip_stream):
        cfg = ServiceConfig(capacity_mpps=200.0, workers=1)
        with WallService(tmp_path, cfg) as svc:
            with ServiceClient(tmp_path) as client:
                sid = submit_tiny(client, clip_stream, name="rider")["sid"]
                client.drain(reason="drain while busy")
                final = client.wait(sid, timeout=90.0)
        assert final["state"] == "completed"
        assert final["released"] == 18


class TestStartAtResume:
    def test_resume_output_is_bit_identical_from_anchor(
        self, tmp_path, clip_stream
    ):
        """A session submitted with ``start_at`` (the failover replay path)
        reports exactly the digest of a clean decode from that anchor."""
        anchors = i_picture_indices(clip_stream)
        assert anchors[0] == 0 and len(anchors) >= 2
        k = anchors[1]
        cfg = ServiceConfig(
            capacity_mpps=200.0, workers=1, enter_levels=(1e9, 1e9, 1e9)
        )
        with WallService(tmp_path, cfg) as svc:
            with ServiceClient(tmp_path) as client:
                sid = submit_tiny(
                    client, clip_stream, name="resumed", start_at=k
                )["sid"]
                final = client.wait(sid, timeout=90.0)
        assert final["state"] == "completed"
        assert final["start_at"] == k
        assert final["output_digest"] == clean_decode_digest(
            clip_stream, start_at=k
        )

    def test_start_at_must_be_an_i_picture(self, clip_stream):
        with pytest.raises(ValueError):
            PacedStreamDecoder(clip_stream, start_at=1)  # coded 1 is not I

    def test_negative_start_at_is_a_protocol_error(self, service, clip_stream):
        svc, rundir = service
        with ServiceClient(rundir) as client:
            with pytest.raises(ServiceError):
                client.request(
                    "submit",
                    {"spec": SPEC.to_dict(), "start_at": -3},
                )
