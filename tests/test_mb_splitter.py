"""Second-level splitter: sub-picture construction and MEI derivation."""

import pytest

from repro.mpeg2.constants import MB_SIZE, PictureType
from repro.mpeg2.parser import MacroblockParser, PictureScanner
from repro.parallel.mb_splitter import MacroblockSplitter
from repro.parallel.subpicture import RunRecord, SkipRecord
from repro.wall.layout import TileLayout


@pytest.fixture(scope="module")
def split_setup(small_stream):
    seq, pics = PictureScanner(small_stream).scan()
    layout = TileLayout(seq.width, seq.height, 3, 2, overlap=0)
    splitter = MacroblockSplitter(seq, layout)
    results = [splitter.split(u, i) for i, u in enumerate(pics)]
    parser = MacroblockParser(seq)
    parsed = [parser.parse_picture(u.data) for u in pics]
    return seq, layout, results, parsed


class TestSubPictureConstruction:
    def test_every_tile_gets_a_subpicture(self, split_setup):
        _, layout, results, _ = split_setup
        for res in results:
            assert set(res.subpictures) == {t.tid for t in layout}

    def test_macroblock_coverage_per_tile(self, split_setup):
        """Each tile's sub-picture reconstructs exactly the macroblocks
        whose squares intersect its display rect."""
        seq, layout, results, parsed = split_setup
        mb_w = seq.width // MB_SIZE
        for res, pic in zip(results, parsed):
            for tile in layout:
                expected = {
                    it.mb.address
                    for it in pic.items
                    if tile.tid
                    in layout.tiles_for_mb(
                        it.mb.address % mb_w, it.mb.address // mb_w
                    )
                }
                sp = res.subpictures[tile.tid]
                got = set()
                for rec in sp.records:
                    if isinstance(rec, RunRecord):
                        # runs are contiguous from the SPH address
                        got.update(
                            range(rec.sph.address, rec.sph.address + rec.n_total)
                        )
                    else:
                        got.update(range(rec.address, rec.address + rec.count))
                assert got == expected, f"tile {tile.tid}"

    def test_runs_start_with_coded_macroblock(self, split_setup):
        _, _, results, parsed = split_setup
        for res, pic in zip(results, parsed):
            coded = {it.mb.address for it in pic.items if not it.mb.skipped}
            for sp in res.subpictures.values():
                for rec in sp.records:
                    if isinstance(rec, RunRecord):
                        assert rec.sph.address in coded
                        assert 1 <= rec.n_coded <= rec.n_total

    def test_runs_stay_within_one_row(self, split_setup):
        seq, _, results, _ = split_setup
        mb_w = seq.width // MB_SIZE
        for res in results:
            for sp in res.subpictures.values():
                for rec in sp.records:
                    if isinstance(rec, RunRecord):
                        first_row = rec.sph.address // mb_w
                        last_row = (rec.sph.address + rec.n_total - 1) // mb_w
                        assert first_row == last_row

    def test_skip_records_reference_skipped_macroblocks(self, split_setup):
        _, _, results, parsed = split_setup
        for res, pic in zip(results, parsed):
            skipped = {it.mb.address for it in pic.items if it.mb.skipped}
            for sp in res.subpictures.values():
                for rec in sp.records:
                    if isinstance(rec, SkipRecord):
                        for a in range(rec.address, rec.address + rec.count):
                            assert a in skipped

    def test_skip_bits_in_range(self, split_setup):
        _, _, results, _ = split_setup
        for res in results:
            for sp in res.subpictures.values():
                for rec in sp.records:
                    if isinstance(rec, RunRecord):
                        assert 0 <= rec.sph.skip_bits <= 7
                        assert len(rec.payload) >= (rec.sph.skip_bits + rec.nbits + 7) // 8 - 1

    def test_payload_is_substring_of_picture(self, split_setup):
        _, _, results, parsed = split_setup
        for res, pic in zip(results, parsed):
            for sp in res.subpictures.values():
                for rec in sp.records:
                    if isinstance(rec, RunRecord):
                        assert rec.payload in pic.data

    def test_sph_carries_picture_state(self, split_setup):
        """SPH predictors match the parser's snapshot for the first coded
        macroblock of the run."""
        _, _, results, parsed = split_setup
        for res, pic in zip(results, parsed):
            snaps = {
                it.mb.address: it.state_before
                for it in pic.items
                if not it.mb.skipped
            }
            for sp in res.subpictures.values():
                for rec in sp.records:
                    if isinstance(rec, RunRecord):
                        snap = snaps[rec.sph.address]
                        assert rec.sph.qscale_code == snap["qscale_code"]
                        assert list(rec.sph.dc_pred) == snap["dc_pred"]
                        assert [list(p) for p in rec.sph.pmv] == snap["pmv"]


class TestMEIDerivation:
    def test_duality(self, split_setup):
        _, layout, results, _ = split_setup
        for res in results:
            sends = sorted(
                (src, dst, repr(x))
                for src in range(layout.n_tiles)
                for x, dst in res.mei.program(src).sends
            )
            recvs = sorted(
                (src, dst, repr(x))
                for dst in range(layout.n_tiles)
                for x, src in res.mei.program(dst).recvs
            )
            assert sends == recvs

    def test_i_pictures_have_no_exchanges(self, split_setup):
        _, _, results, _ = split_setup
        for res in results:
            if res.picture_type == PictureType.I:
                assert res.mei.total_exchanges() == 0

    def test_pieces_lie_in_sender_partition(self, split_setup):
        _, layout, results, _ = split_setup
        for res in results:
            for src in range(layout.n_tiles):
                part = layout.tile(src).partition
                for x, _ in res.mei.program(src).sends:
                    if x.luma.area:
                        assert part.contains(x.luma)

    def test_recv_pieces_outside_coverage(self, split_setup):
        """A tile never receives what it already reconstructs itself."""
        _, layout, results, _ = split_setup
        for res in results:
            for dst in range(layout.n_tiles):
                cov = layout.tile(dst).coverage
                for x, _ in res.mei.program(dst).recvs:
                    if x.luma.area:
                        assert not cov.contains(x.luma)

    def test_single_tile_has_no_exchanges(self, small_stream):
        seq, pics = PictureScanner(small_stream).scan()
        layout = TileLayout(seq.width, seq.height, 1, 1)
        splitter = MacroblockSplitter(seq, layout)
        for i, u in enumerate(pics):
            assert splitter.split(u, i).mei.total_exchanges() == 0


class TestLayoutMismatch:
    def test_wrong_raster_rejected(self, small_stream):
        seq, _ = PictureScanner(small_stream).scan()
        bad = TileLayout(seq.width * 2, seq.height, 2, 1)
        with pytest.raises(ValueError):
            MacroblockSplitter(seq, bad)
