"""Functional baselines: bit-exact decode + measured communication."""

import pytest

from repro.mpeg2.decoder import decode_stream
from repro.parallel.functional_baselines import (
    GopParallelDecoder,
    PictureParallelDecoder,
    SliceParallelDecoder,
)
from repro.parallel.pipeline import ParallelDecoder
from repro.wall.layout import TileLayout


@pytest.fixture(scope="module")
def reference(small_stream):
    return decode_stream(small_stream)


def _layout(ref):
    return TileLayout(ref[0].width, ref[0].height, 2, 2)


class TestBitExactness:
    @pytest.mark.parametrize("nodes", [1, 2, 3])
    def test_gop_level(self, small_stream, reference, nodes):
        dec = GopParallelDecoder(nodes, _layout(reference))
        out = dec.decode(small_stream)
        assert len(out) == len(reference)
        assert all(a.max_abs_diff(b) == 0 for a, b in zip(reference, out))

    @pytest.mark.parametrize("nodes", [1, 2, 4])
    def test_picture_level(self, small_stream, reference, nodes):
        dec = PictureParallelDecoder(nodes, _layout(reference))
        out = dec.decode(small_stream)
        assert all(a.max_abs_diff(b) == 0 for a, b in zip(reference, out))

    @pytest.mark.parametrize("bands", [1, 2, 4])
    def test_slice_level(self, small_stream, reference, bands):
        dec = SliceParallelDecoder(bands, _layout(reference))
        out = dec.decode(small_stream)
        assert all(a.max_abs_diff(b) == 0 for a, b in zip(reference, out))


class TestAccounting:
    def test_gop_redistribution_scale(self, small_stream, reference):
        dec = GopParallelDecoder(4, _layout(reference))
        out = dec.decode(small_stream)
        frame_bytes = out[0].n_pixels * 1.5
        inter, redist = dec.accounting.per_frame()
        assert inter == 0  # closed GOPs: no reference traffic
        assert redist == pytest.approx(frame_bytes * 3 / 4, rel=0.01)

    def test_picture_level_fetches_references(self, small_stream, reference):
        dec = PictureParallelDecoder(4, _layout(reference))
        dec.decode(small_stream)
        inter, redist = dec.accounting.per_frame()
        frame_bytes = reference[0].n_pixels * 1.5
        assert inter > frame_bytes * 0.5  # P fetch one, B fetch two refs
        assert redist > 0

    def test_single_node_picture_level_no_fetch(self, small_stream, reference):
        dec = PictureParallelDecoder(1)
        dec.decode(small_stream)
        inter, redist = dec.accounting.per_frame()
        assert inter == 0 and redist == 0

    def test_slice_level_moderate_traffic(self, small_stream, reference):
        dec = SliceParallelDecoder(4, _layout(reference))
        dec.decode(small_stream)
        inter, redist = dec.accounting.per_frame()
        frame_bytes = reference[0].n_pixels * 1.5
        assert 0 < inter < frame_bytes  # strips, not whole pictures
        assert 0 < redist < frame_bytes

    def test_work_balanced_across_nodes(self, small_stream, reference):
        dec = PictureParallelDecoder(3)
        dec.decode(small_stream)
        counts = list(dec.accounting.per_node_frames.values())
        assert max(counts) - min(counts) <= 1


class TestMeasuredTable1Ordering:
    def test_total_traffic_ordering(self, small_stream, reference):
        """Measured per-frame network traffic: picture > gop > slice >
        hierarchical (macroblock) — the quantified Table 1, from real
        decodes of the same stream."""
        layout = _layout(reference)
        gop = GopParallelDecoder(4, layout)
        gop.decode(small_stream)
        pic = PictureParallelDecoder(4, layout)
        pic.decode(small_stream)
        slc = SliceParallelDecoder(4, layout)
        slc.decode(small_stream)
        mb = ParallelDecoder(layout, k=1)
        mb.decode(small_stream)

        def total(acct):
            i, r = acct.per_frame()
            return i + r

        mb_traffic = mb.stats.exchange_bytes / mb.stats.pictures
        assert total(pic.accounting) > total(gop.accounting)
        assert total(gop.accounting) > total(slc.accounting)
        assert total(slc.accounting) > mb_traffic  # redistribution-free


class TestValidation:
    def test_rejects_zero_nodes(self):
        with pytest.raises(ValueError):
            GopParallelDecoder(0)
        with pytest.raises(ValueError):
            PictureParallelDecoder(0)
        with pytest.raises(ValueError):
            SliceParallelDecoder(0)

    def test_too_many_bands_rejected(self, small_stream):
        with pytest.raises(ValueError):
            SliceParallelDecoder(1000).decode(small_stream)
