"""Trace-driven workloads and their agreement with the analytic model."""

import pytest

from repro.mpeg2.constants import PictureType
from repro.mpeg2.encoder import Encoder, EncoderConfig
from repro.perf.costmodel import build_picture_work
from repro.perf.trace import (
    TraceScaling,
    compare_trace_to_model,
    extract_trace,
    scaling_for,
)
from repro.parallel.system import TimedSystem
from repro.wall.layout import TileLayout
from repro.workloads.streams import stream_by_id


@pytest.fixture(scope="module")
def traced_setup():
    spec = stream_by_id(8)
    scaled = spec.scaled(160)
    frames = spec.synthetic_frames(18, max_width=160)
    stream = Encoder(
        EncoderConfig(gop_size=scaled.gop_size, b_frames=scaled.b_frames)
    ).encode(frames)
    layout = TileLayout(scaled.width, scaled.height, 2, 2)
    works = extract_trace(stream, layout)
    return spec, scaled, stream, layout, works


class TestExtraction:
    def test_one_work_per_picture(self, traced_setup):
        _, _, _, _, works = traced_setup
        assert len(works) == 18
        assert works[0].ptype == PictureType.I

    def test_tiles_cover_layout(self, traced_setup):
        _, _, _, layout, works = traced_setup
        for w in works:
            assert set(w.tiles) == {t.tid for t in layout}

    def test_macroblock_conservation(self, traced_setup):
        """Per-tile macroblock counts cover each picture at least once
        (exactly once with no overlap)."""
        _, scaled, _, layout, works = traced_setup
        for w in works:
            total = sum(tw.n_mbs for tw in w.tiles.values())
            assert total == scaled.mbs_per_frame

    def test_exchanges_absent_for_i_pictures(self, traced_setup):
        _, _, _, _, works = traced_setup
        for w in works:
            if w.ptype == PictureType.I:
                assert w.exchanges == []

    def test_scaling_multiplies(self, traced_setup):
        _, _, stream, layout, works = traced_setup
        scaled2 = extract_trace(
            stream, layout, TraceScaling(area_factor=4.0, bit_factor=2.0)
        )
        for a, b in zip(works, scaled2):
            assert b.nbytes == pytest.approx(2 * a.nbytes, abs=2)
            for tid in a.tiles:
                assert b.tiles[tid].n_mbs == pytest.approx(
                    4 * a.tiles[tid].n_mbs, abs=2
                )

    def test_wrong_layout_rejected(self, traced_setup):
        _, scaled, stream, _, _ = traced_setup
        bad = TileLayout(scaled.width * 2, scaled.height, 2, 1)
        with pytest.raises(ValueError):
            extract_trace(stream, bad)


class TestModelAgreement:
    def test_trace_and_model_within_factor(self, traced_setup):
        """The analytic model's exchange volume and SPH counts agree with
        the real splitter's within a small factor — the model feeds the
        performance results, so this bounds its input error."""
        spec, scaled, stream, layout, works = traced_setup
        modeled = build_picture_work(scaled, layout, n_frames=len(works))
        cmp_ = compare_trace_to_model(works, modeled)
        assert 0.2 < cmp_.exchange_ratio < 5.0
        assert cmp_.traced_sph_per_tile_pic > 0
        # SPH count scale: roughly one per macroblock row per tile
        assert (
            0.3
            < cmp_.traced_sph_per_tile_pic / cmp_.model_sph_per_tile_pic
            < 3.0
        )

    def test_timed_system_accepts_trace(self, traced_setup):
        """The DES runs on trace-derived workloads end to end."""
        spec, scaled, stream, layout, works = traced_setup
        scaling = scaling_for(
            spec, scaled, traced_bytes=len(stream), n_pics=len(works)
        )
        full_layout = TileLayout(spec.width, spec.height, 2, 2)
        full_works = extract_trace(stream, layout, scaling)
        sys_ = TimedSystem(spec, full_layout, k=2, works=full_works)
        res = sys_.run()
        assert res.fps > 0
        assert res.flow_control_violations == 0
        assert len(res.display_times) == len(works)

    def test_trace_driven_fps_comparable_to_model(self, traced_setup):
        """Trace-driven and model-driven runs land in the same regime."""
        spec, scaled, stream, layout, works = traced_setup
        scaling = scaling_for(spec, scaled, len(stream), len(works))
        full_layout = TileLayout(spec.width, spec.height, 2, 2)
        traced_fps = TimedSystem(
            spec, full_layout, k=2, works=extract_trace(stream, layout, scaling)
        ).run().fps
        model_fps = TimedSystem(spec, full_layout, k=2, n_frames=18).run().fps
        assert 0.4 < traced_fps / model_fps < 2.5
