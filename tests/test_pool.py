"""The shared-memory frame pool: slab allocation, generation-tagged
handles, refcounted release, crash-safe purge — and the by-handle wire
paths built on top of it (plans, boundary blocks, tile frames) decoding
bit-identically to their by-value encodings.
"""

import numpy as np
import pytest

from repro.mem import (
    DoubleRelease,
    FramePool,
    Handle,
    PoolError,
    PoolExhausted,
    PoolRegistry,
    StaleHandle,
    purge_pools,
)
from repro.mem.pool import POOL_PREFIX
from repro.mpeg2 import plan_codec
from repro.mpeg2.encoder import Encoder, EncoderConfig
from repro.mpeg2.parser import PictureScanner
from repro.parallel.mb_splitter import MacroblockSplitter
from repro.wall.layout import TileLayout
from repro.workloads.synthetic import moving_pattern_frames


@pytest.fixture
def pool(tmp_path):
    p = FramePool.create("t-unit", [(64, 2), (256, 2)], shm_dir=tmp_path)
    yield p
    p.destroy()


class TestFramePool:
    def test_alloc_write_view_release_round_trip(self, pool, tmp_path):
        lease = pool.alloc(48)
        lease.buf[:] = bytes(range(48))
        consumer = FramePool.open(pool.name, shm_dir=tmp_path)
        got = consumer.view(lease.handle)
        assert bytes(got) == bytes(range(48))
        del got
        consumer.release(lease.handle)
        assert pool.slabs_in_use() == 0
        consumer.close()

    def test_smallest_fitting_class_wins(self, pool):
        small = pool.alloc(10)
        assert pool._sizes[small.handle.slab] == 64

    def test_exhaustion_raises_for_by_value_fallback(self, pool):
        leases = [pool.alloc(200) for _ in range(2)]
        # the two 64-byte slabs cannot fit 200 bytes
        with pytest.raises(PoolExhausted):
            pool.alloc(200)
        assert pool.stats.exhausted == 1
        for held in leases:
            pool.release(held.handle)
        pool.alloc(200)  # freed slabs are reusable

    def test_double_release_raises(self, pool):
        lease = pool.alloc(32)
        pool.release(lease.handle)
        with pytest.raises(DoubleRelease):
            pool.release(lease.handle)

    def test_generation_mismatch_raises_stale_handle(self, pool):
        first = pool.alloc(200)
        stale = first.handle
        pool.release(stale)
        # force reuse of the same slab (only two large slabs, rotate once)
        second = pool.alloc(200)
        third = pool.alloc(200)
        reused = second if second.handle.slab == stale.slab else third
        assert reused.handle.slab == stale.slab
        assert reused.handle.generation != stale.generation
        with pytest.raises(StaleHandle):
            pool.view(stale)
        with pytest.raises(StaleHandle):
            pool.release(stale)

    def test_multi_lease_refcount(self, pool):
        lease = pool.alloc(16, leases=3)
        for _ in range(3):
            pool.release(lease.handle)
        with pytest.raises(DoubleRelease):
            pool.release(lease.handle)
        assert pool.slabs_in_use() == 0

    def test_cancel_unwinds_unsent_lease(self, pool):
        lease = pool.alloc(16)
        pool.cancel(lease)
        assert pool.slabs_in_use() == 0

    def test_only_owner_allocates(self, pool, tmp_path):
        consumer = FramePool.open(pool.name, shm_dir=tmp_path)
        with pytest.raises(PoolError, match="owner"):
            consumer.alloc(8)
        consumer.close()

    def test_handle_pack_unpack(self):
        h = Handle(pool=f"{POOL_PREFIX}abc-dec0", slab=7, generation=3, nbytes=999)
        packed = h.pack()
        out, end = Handle.unpack(b"xx" + packed, offset=2)
        assert out == h and end == 2 + len(packed)

    def test_purge_reaps_by_token(self, tmp_path):
        a = FramePool.create("tok1-dec0", [(64, 1)], shm_dir=tmp_path)
        b = FramePool.create("tok1-split0", [(64, 1)], shm_dir=tmp_path)
        c = FramePool.create("tok2-dec0", [(64, 1)], shm_dir=tmp_path)
        a.close()  # owners crash without unlinking
        b.close()
        removed = purge_pools("tok1", tmp_path)
        assert sorted(removed) == [
            f"{POOL_PREFIX}tok1-dec0",
            f"{POOL_PREFIX}tok1-split0",
        ]
        assert list(tmp_path.glob(f"{POOL_PREFIX}tok1-*")) == []
        assert (tmp_path / f"{POOL_PREFIX}tok2-dec0").exists()
        c.destroy()

    def test_registry_dispatches_on_pool_name(self, tmp_path):
        a = FramePool.create("reg-a", [(64, 1)], shm_dir=tmp_path)
        b = FramePool.create("reg-b", [(64, 1)], shm_dir=tmp_path)
        la, lb = a.alloc(4), b.alloc(4)
        la.buf[:] = b"aaaa"
        lb.buf[:] = b"bbbb"
        with PoolRegistry(tmp_path) as reg:
            assert bytes(reg.view(la.handle)) == b"aaaa"
            assert bytes(reg.view(lb.handle)) == b"bbbb"
            reg.release(la.handle)
            reg.release(lb.handle)
        assert a.slabs_in_use() == b.slabs_in_use() == 0
        with PoolRegistry(tmp_path) as reg:
            with pytest.raises(PoolError, match="non-pool"):
                reg.view(Handle(pool="passwd", slab=0, generation=0, nbytes=1))
        a.destroy()
        b.destroy()

    def test_destroy_with_outstanding_view_still_unlinks(self, tmp_path):
        p = FramePool.create("pin", [(64, 1)], shm_dir=tmp_path)
        lease = p.alloc(8)  # the memoryview pins the mapping
        p.destroy()
        assert not (tmp_path / f"{POOL_PREFIX}pin").exists()
        del lease


@pytest.fixture(scope="module")
def compiled_plans():
    clip = moving_pattern_frames(128, 96, 6, seed=13)
    stream = Encoder(EncoderConfig(gop_size=3, b_frames=1, search_range=5)).encode(clip)
    sequence, pictures = PictureScanner(stream).scan()
    layout = TileLayout(sequence.width, sequence.height, 2, 2)
    splitter = MacroblockSplitter(sequence, layout)
    results = [splitter.split_plans(u, i) for i, u in enumerate(pictures)]
    return splitter, layout, results


class TestPlanByHandle:
    def test_pool_slab_plan_decodes_identically_to_by_value(
        self, compiled_plans, tmp_path
    ):
        """encode_plan_into a leased slab == encode_plan_bytes, and the
        consumer-side decode of the shared-memory view is bit-identical."""
        splitter, layout, results = compiled_plans
        slab = max(
            plan_codec.plan_nbytes(tp)
            for r in results
            for tp in r.plans.values()
        )
        pool = FramePool.create("plans", [(slab, 4)], shm_dir=tmp_path)
        consumer = PoolRegistry(tmp_path)
        for r in results:
            for tid in range(layout.n_tiles):
                tp = r.plans[tid]
                nb = plan_codec.plan_nbytes(tp)
                lease = pool.alloc(nb)
                written = plan_codec.encode_plan_into(tp, lease.buf)
                assert written == nb == len(plan_codec.encode_plan_bytes(tp))
                out, end = plan_codec.decode_plan(
                    consumer.view(lease.handle), splitter.matrices
                )
                assert end == nb
                ref, _ = plan_codec.decode_plan(
                    plan_codec.encode_plan_bytes(tp), splitter.matrices
                )
                for name, _dtype, _s in (
                    plan_codec._BLOCK_ARRAYS + plan_codec._MB_ARRAYS
                ):
                    assert np.array_equal(
                        getattr(out.plan, name), getattr(ref.plan, name)
                    ), name
                assert (out.n_coded, out.n_skipped) == (tp.n_coded, tp.n_skipped)
                consumer.release(lease.handle)
        consumer.close()
        pool.destroy()

    def test_vectorized_compiler_matches_scalar_reference(self, compiled_plans):
        """compile_plans (vectorized) is bit-identical to the macroblock-
        at-a-time reference: plans, counts, and MEI programs."""
        splitter, layout, results = compiled_plans
        clip = moving_pattern_frames(128, 96, 6, seed=13)
        stream = Encoder(
            EncoderConfig(gop_size=3, b_frames=1, search_range=5)
        ).encode(clip)
        _, pictures = PictureScanner(stream).scan()
        for i, unit in enumerate(pictures):
            parsed = splitter.parser.parse_picture(unit.data)
            ref = splitter.compile_plans_reference(parsed, i)
            vec = results[i]
            assert ref.mei._seen == vec.mei._seen
            for tid in range(layout.n_tiles):
                pa = ref.mei.program(tid)
                pb = vec.mei.program(tid)
                assert pa.sends == pb.sends and pa.recvs == pb.recvs
                a, b = ref.plans[tid], vec.plans[tid]
                assert (a.n_coded, a.n_skipped) == (b.n_coded, b.n_skipped)
                assert a.plan.n_intra_blocks == b.plan.n_intra_blocks
                assert a.plan.n_res == b.plan.n_res
                for name, dtype, _s in (
                    plan_codec._BLOCK_ARRAYS + plan_codec._MB_ARRAYS
                ):
                    va = getattr(a.plan, name)
                    vb = getattr(b.plan, name)
                    assert va.dtype == vb.dtype == dtype, name
                    assert np.array_equal(va, vb), (i, tid, name)

    def test_bad_motion_vector_raises_like_reference(self, compiled_plans):
        """A corrupt record fails with the same ValueError in both paths."""
        splitter, _, _ = compiled_plans
        clip = moving_pattern_frames(128, 96, 3, seed=13)
        stream = Encoder(EncoderConfig(gop_size=3, b_frames=1)).encode(clip)
        _, pictures = PictureScanner(stream).scan()
        # pictures[1] is a P picture in this GOP structure; corrupt one MV
        parsed = splitter.parser.parse_picture(pictures[1].data)
        victim = next(it.mb for it in parsed.items if not it.mb.intra)
        victim.motion_forward = True
        victim.mv_fwd = (10_000, 0)
        with pytest.raises(ValueError, match="outside plane") as vec_err:
            splitter.compile_plans(parsed, 1)
        with pytest.raises(ValueError, match="outside plane") as ref_err:
            splitter.compile_plans_reference(parsed, 1)
        assert str(vec_err.value) == str(ref_err.value)
