"""Wall geometry and assembly: partitions, overlap, coverage, blending."""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.mpeg2.frames import Frame
from repro.mpeg2.motion import Rect
from repro.wall.config import TileCrop, WallSpec
from repro.wall.display import (
    assemble_wall,
    check_overlap_consistency,
    edge_blend_weights,
    projected_wall_luma,
)
from repro.wall.layout import TileLayout


class TestLayoutGeometry:
    def test_partitions_tile_exactly(self):
        layout = TileLayout(128, 96, 4, 3, overlap=8)
        covered = np.zeros((96, 128), dtype=int)
        for t in layout:
            p = t.partition
            covered[p.y0 : p.y1, p.x0 : p.x1] += 1
        assert (covered == 1).all()

    def test_rect_contains_partition(self):
        layout = TileLayout(128, 96, 4, 3, overlap=8)
        for t in layout:
            assert t.rect.contains(t.partition) or t.rect == t.partition
            assert t.rect.x0 <= t.partition.x0 and t.rect.x1 >= t.partition.x1

    def test_coverage_is_mb_aligned_superset(self):
        layout = TileLayout(128, 96, 3, 2, overlap=10)
        for t in layout:
            c = t.coverage
            assert c.x0 % 16 == 0 and c.y0 % 16 == 0
            assert c.x1 % 16 == 0 and c.y1 % 16 == 0
            assert c.contains(t.rect)

    def test_no_overlap_rects_equal_partitions(self):
        layout = TileLayout(128, 96, 4, 3, overlap=0)
        for t in layout:
            assert t.rect == t.partition

    def test_adjacent_rects_overlap_by_parameter(self):
        layout = TileLayout(128, 64, 2, 1, overlap=16)
        a, b = layout.tile(0), layout.tile(1)
        inter = a.rect.intersect(b.rect)
        assert inter.width == 16

    def test_single_tile(self):
        layout = TileLayout(64, 48, 1, 1, overlap=0)
        assert layout.n_tiles == 1
        assert layout.tile(0).rect == Rect(0, 0, 64, 48)

    def test_validation(self):
        with pytest.raises(ValueError):
            TileLayout(100, 48, 2, 1)  # not MB aligned
        with pytest.raises(ValueError):
            TileLayout(64, 48, 0, 1)
        with pytest.raises(ValueError):
            TileLayout(64, 48, 2, 1, overlap=-1)
        with pytest.raises(ValueError):
            TileLayout(64, 48, 2, 1, overlap=40)

    def test_custom_bounds(self):
        layout = TileLayout(128, 64, 2, 1, x_bounds=[0, 48, 128])
        assert layout.tile(0).partition.x1 == 48
        assert layout.tile(1).partition.x0 == 48

    def test_custom_bounds_validation(self):
        with pytest.raises(ValueError):
            TileLayout(128, 64, 2, 1, x_bounds=[0, 128])  # wrong count
        with pytest.raises(ValueError):
            TileLayout(128, 64, 2, 1, x_bounds=[0, 0, 128])  # not increasing
        with pytest.raises(ValueError):
            TileLayout(128, 64, 2, 1, x_bounds=[0, 64, 120])  # wrong span


# Raster dims are MB multiples; overlap stays under the tightest tile
# extent the dimension strategies can produce (16*8 px / 4 tiles = 32).
_dims = st.integers(min_value=8, max_value=24).map(lambda k: k * 16)
_grid = st.integers(min_value=1, max_value=4)
_overlap = st.integers(min_value=0, max_value=30)


class TestLayoutInvariants:
    """Property-based: the geometry contracts every layout must honour."""

    @settings(
        max_examples=40, deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(width=_dims, height=_dims, m=_grid, n=_grid, overlap=_overlap)
    def test_partitions_tile_raster_exactly(self, width, height, m, n, overlap):
        layout = TileLayout(width, height, m, n, overlap=overlap)
        covered = np.zeros((height, width), dtype=np.int32)
        for t in layout:
            p = t.partition
            covered[p.y0 : p.y1, p.x0 : p.x1] += 1
        assert (covered == 1).all()

    @settings(
        max_examples=40, deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(width=_dims, height=_dims, m=_grid, n=_grid, overlap=_overlap)
    def test_coverage_contains_rect_contains_partition(
        self, width, height, m, n, overlap
    ):
        layout = TileLayout(width, height, m, n, overlap=overlap)
        for t in layout:
            assert t.rect.x0 <= t.partition.x0 <= t.partition.x1 <= t.rect.x1
            assert t.rect.y0 <= t.partition.y0 <= t.partition.y1 <= t.rect.y1
            assert t.coverage.contains(t.rect)
            # coverage never spills off the raster
            assert 0 <= t.coverage.x0 and t.coverage.x1 <= width
            assert 0 <= t.coverage.y0 and t.coverage.y1 <= height

    @settings(
        max_examples=40, deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(width=_dims, height=_dims, m=_grid, n=_grid, overlap=_overlap)
    def test_coverage_is_mb_aligned(self, width, height, m, n, overlap):
        layout = TileLayout(width, height, m, n, overlap=overlap)
        for t in layout:
            c = t.coverage
            assert c.x0 % 16 == 0 and c.y0 % 16 == 0
            assert c.x1 % 16 == 0 and c.y1 % 16 == 0

    @settings(
        max_examples=25, deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(width=_dims, height=_dims, m=_grid, n=_grid, overlap=_overlap)
    def test_interior_overlap_width_is_parameter(
        self, width, height, m, n, overlap
    ):
        layout = TileLayout(width, height, m, n, overlap=overlap)
        for t in layout:
            if t.col + 1 < m:
                right = layout.tile(t.tid + 1)
                assert t.rect.intersect(right.rect).width == overlap
            if t.row + 1 < n:
                below = layout.tile(t.tid + m)
                assert t.rect.intersect(below.rect).height == overlap


class TestMacroblockAssignment:
    def test_every_mb_assigned(self):
        layout = TileLayout(128, 96, 4, 3, overlap=8)
        for my in range(96 // 16):
            for mx in range(128 // 16):
                assert layout.tiles_for_mb(mx, my)

    def test_no_overlap_unique_assignment(self):
        layout = TileLayout(128, 96, 4, 3, overlap=0)
        for my in range(6):
            for mx in range(8):
                tiles = layout.tiles_for_mb(mx, my)
                # a macroblock may straddle a partition line (boundaries are
                # not MB-aligned with 3 rows over 96px), but its owner is
                # unique
                assert layout.owner_of_mb(mx, my) in tiles

    def test_overlap_duplicates_boundary_mbs(self):
        layout = TileLayout(128, 64, 2, 1, overlap=16)
        dup = layout.duplication_factor()
        assert dup > 1.0
        no_ov = TileLayout(128, 64, 2, 1, overlap=0)
        assert no_ov.duplication_factor() >= 1.0
        assert dup > no_ov.duplication_factor()

    def test_split_rect_by_partition_tiles_input(self):
        layout = TileLayout(128, 96, 4, 3, overlap=8)
        rect = Rect(10, 10, 100, 90)
        pieces = layout.split_rect_by_partition(rect)
        area = sum(r.area for _, r in pieces)
        assert area == rect.area


class TestAssembly:
    def _tile_frames(self, layout, value_of):
        frames = {}
        for t in layout:
            f = Frame.blank(layout.width, layout.height, y=0)
            c = t.coverage
            f.y[c.y0 : c.y1, c.x0 : c.x1] = value_of(t.tid)
            frames[t.tid] = f
        return frames

    def test_each_pixel_from_owner(self):
        layout = TileLayout(64, 64, 2, 2, overlap=0)
        frames = self._tile_frames(layout, lambda tid: 50 + tid)
        wall = assemble_wall(layout, frames)
        for t in layout:
            p = t.partition
            assert (wall.y[p.y0 : p.y1, p.x0 : p.x1] == 50 + t.tid).all()

    def test_overlap_consistency_detects_mismatch(self):
        layout = TileLayout(64, 64, 2, 1, overlap=16)
        frames = self._tile_frames(layout, lambda tid: 50 + tid)
        assert check_overlap_consistency(layout, frames) > 0
        same = self._tile_frames(layout, lambda tid: 99)
        assert check_overlap_consistency(layout, same) == 0


class TestEdgeBlending:
    def test_weights_shape(self):
        layout = TileLayout(128, 64, 2, 1, overlap=16)
        w = edge_blend_weights(layout, 0)
        r = layout.tile(0).rect
        assert w.shape == (r.height, r.width)

    def test_interior_weight_one(self):
        layout = TileLayout(128, 64, 2, 1, overlap=16)
        w = edge_blend_weights(layout, 0)
        assert (w[:, :8] == 1.0).all()  # left edge of left tile: no ramp

    def test_ramps_sum_to_one(self):
        layout = TileLayout(128, 64, 2, 1, overlap=16)
        w0 = edge_blend_weights(layout, 0)
        w1 = edge_blend_weights(layout, 1)
        band0 = w0[:, -16:]
        band1 = w1[:, :16]
        assert np.allclose(band0 + band1, 1.0)

    def test_vertical_ramps_sum_to_one(self):
        layout = TileLayout(64, 128, 1, 2, overlap=16)
        top = edge_blend_weights(layout, 0)
        bot = edge_blend_weights(layout, 1)
        assert np.allclose(top[-16:, :] + bot[:16, :], 1.0)

    def test_every_overlap_column_and_row_sums_to_one(self):
        """2x2 with overlap: light from all contributing tiles is unity on
        every column/row of every band (corners get four contributions)."""
        layout = TileLayout(96, 96, 2, 2, overlap=16)
        acc = np.zeros((96, 96), dtype=np.float64)
        for t in layout:
            r = t.rect
            acc[r.y0 : r.y1, r.x0 : r.x1] += edge_blend_weights(layout, t.tid)
        assert np.allclose(acc, 1.0)

    def test_blending_never_in_bit_exactness(self):
        """Blending happens in projected light: the exact assembly of
        blended-weight content must stay byte-identical to the owners'
        decoded pixels (weights never touch assemble_wall)."""
        layout = TileLayout(64, 64, 2, 1, overlap=16)
        frames = {t.tid: Frame.blank(64, 64, y=7 + t.tid) for t in layout}
        wall = assemble_wall(layout, frames)
        for t in layout:
            p = t.partition
            assert (wall.y[p.y0 : p.y1, p.x0 : p.x1] == 7 + t.tid).all()

    def test_projection_of_uniform_content_is_uniform(self):
        layout = TileLayout(64, 64, 2, 2, overlap=8)
        frames = {t.tid: Frame.blank(64, 64, y=120) for t in layout}
        img = projected_wall_luma(layout, frames)
        assert (np.abs(img.astype(int) - 120) <= 1).all()


class TestWallSpec:
    def test_json_roundtrip(self, tmp_path):
        spec = WallSpec(
            cols=3,
            rows=2,
            overlap=16,
            bezel_px=4,
            name="lab-wall",
            crops={1: TileCrop(left=2, top=1), 5: TileCrop(bottom=3)},
        )
        path = tmp_path / "wall.json"
        spec.save(path)
        back = WallSpec.load(path)
        assert back == spec
        assert back.tile_crop(1).left == 2
        assert back.tile_crop(0) == TileCrop()  # untouched tiles: no inset

    def test_layout_derivation_is_raster_specific(self):
        spec = WallSpec(cols=2, rows=2, overlap=8)
        a = spec.to_layout(128, 96)
        b = spec.to_layout(64, 64)
        assert (a.width, a.height) == (128, 96)
        assert (b.width, b.height) == (64, 64)
        assert a.n_tiles == b.n_tiles == 4

    def test_display_rect_applies_crop_inside_decoded_rect(self):
        spec = WallSpec(cols=2, rows=1, crops={0: TileCrop(left=4, bottom=2)})
        layout = spec.to_layout(128, 64)
        disp = spec.display_rect(layout, 0)
        rect = layout.tile(0).rect
        assert disp == Rect(rect.x0 + 4, rect.y0, rect.x1, rect.y1 - 2)
        assert rect.contains(disp)

    def test_validation(self):
        with pytest.raises(ValueError):
            WallSpec(cols=0, rows=1)
        with pytest.raises(ValueError):
            WallSpec(cols=1, rows=1, overlap=-1)
        with pytest.raises(ValueError):
            WallSpec(cols=2, rows=1, crops={5: TileCrop()})
        with pytest.raises(ValueError):
            TileCrop(left=-1)

    def test_overcrop_rejected_at_display_time(self):
        spec = WallSpec(cols=1, rows=1, crops={0: TileCrop(left=64, right=64)})
        layout = spec.to_layout(64, 64)
        with pytest.raises(ValueError):
            spec.display_rect(layout, 0)
