"""Metrics registry, span emission, and the stage/span agreement helpers."""

import json
import threading
import time

import pytest

from repro.perf.metrics import NodeBandwidth, StageTimes
from repro.perf.telemetry import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    channel_snapshot,
    emit_stats,
    maybe_emit_stats,
    register_channel,
    stage_span_block,
    traced_stage,
)
from repro.perf.trace import TraceWriter, read_trace_file


class TestMetricsPrimitives:
    def test_counter_accumulates_and_is_thread_safe(self):
        c = Counter()
        threads = [
            threading.Thread(target=lambda: [c.inc() for _ in range(1000)])
            for _ in range(8)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert c.value == 8000

    def test_gauge_holds_last_value(self):
        g = Gauge()
        g.set(3.5)
        g.set(1.0)
        assert g.value == 1.0

    def test_histogram_percentiles_uniform(self):
        # 1..100 with unit-wide buckets: percentiles are near-exact
        h = Histogram(bounds=list(range(1, 101)))
        for v in range(1, 101):
            h.observe(float(v))
        assert h.count == 100
        assert h.percentile(50) == pytest.approx(50.0, abs=1.0)
        assert h.percentile(95) == pytest.approx(95.0, abs=1.0)
        assert h.percentile(99) == pytest.approx(99.0, abs=1.0)
        assert h.mean == pytest.approx(50.5)

    def test_histogram_percentile_clamps_to_observed_range(self):
        h = Histogram(bounds=[1.0, 10.0, 100.0])
        h.observe(5.0)
        h.observe(5.0)
        # everything lands in one bucket; estimates never leave [min, max]
        for p in (1, 50, 99):
            assert h.min <= h.percentile(p) <= h.max

    def test_histogram_empty_and_bad_bounds(self):
        h = Histogram()
        assert h.percentile(50) == 0.0
        assert h.to_dict() == {"count": 0}
        with pytest.raises(ValueError):
            Histogram(bounds=[3.0, 1.0])

    def test_histogram_to_dict_has_percentile_keys(self):
        h = Histogram()
        h.observe(0.01)
        d = h.to_dict()
        assert {"count", "sum", "mean", "p50", "p95", "p99", "min", "max"} <= set(d)


class TestRegistry:
    def test_create_or_get_returns_same_instance(self):
        r = MetricsRegistry()
        assert r.counter("a") is r.counter("a")
        assert r.histogram("h") is r.histogram("h")
        assert r.gauge("g") is r.gauge("g")

    def test_snapshot_is_json_safe(self):
        r = MetricsRegistry()
        r.counter("frames").inc(3)
        r.gauge("credits").set(2)
        r.histogram("lat").observe(0.02)
        snap = r.snapshot()
        json.dumps(snap)  # must not raise
        assert snap["counters"]["frames"] == 3
        assert snap["gauges"]["credits"] == 2
        assert snap["histograms"]["lat"]["count"] == 1

    def test_reset_clears_everything(self):
        r = MetricsRegistry()
        r.counter("x").inc()
        r.reset()
        assert r.snapshot() == {"counters": {}, "gauges": {}, "histograms": {}}


class _FakeChannel:
    """Duck-typed stand-in for Channel in channel_snapshot tests."""

    class _Stats:
        def to_dict(self):
            return {"sent_bytes": 7}

    def __init__(self, name):
        self.name = name
        self.stats = self._Stats()


class TestChannelRegistry:
    def test_snapshot_reads_live_named_channels(self):
        ch = _FakeChannel("root->split0")
        register_channel(ch)
        snap = channel_snapshot()
        assert snap["root->split0"] == {"sent_bytes": 7}

    def test_unnamed_channels_are_skipped(self):
        ch = _FakeChannel("")
        register_channel(ch)
        assert "" not in channel_snapshot()

    def test_registry_is_weak(self):
        import gc

        ch = _FakeChannel("ephemeral-chan")
        register_channel(ch)
        del ch
        gc.collect()
        assert "ephemeral-chan" not in channel_snapshot()


class TestSpans:
    def test_span_emits_balanced_pair_with_duration(self, tmp_path):
        path = tmp_path / "t.trace.jsonl"
        with TraceWriter(path, "p0") as tr:
            with tr.span("decode", picture=3):
                time.sleep(0.01)
        b, e = read_trace_file(path)
        assert (b.event, b.data["ph"], b.picture) == ("decode", "B", 3)
        assert (e.event, e.data["ph"], e.picture) == ("decode", "E", 3)
        assert e.data["dur_s"] >= 0.01
        assert e.ts >= b.ts

    def test_span_nesting_orders_begin_end_correctly(self, tmp_path):
        path = tmp_path / "t.trace.jsonl"
        with TraceWriter(path, "p0") as tr:
            with tr.span("outer"):
                with tr.span("inner"):
                    pass
        evs = [(ev.event, ev.data["ph"]) for ev in read_trace_file(path)]
        assert evs == [
            ("outer", "B"), ("inner", "B"), ("inner", "E"), ("outer", "E"),
        ]

    def test_spans_disabled_emit_nothing(self, tmp_path):
        path = tmp_path / "t.trace.jsonl"
        with TraceWriter(path, "p0", spans=False) as tr:
            with tr.span("decode"):
                pass
            tr.emit("still-works")
        evs = read_trace_file(path)
        assert [ev.event for ev in evs] == ["still-works"]

    def test_thread_emits_carry_tid(self, tmp_path):
        path = tmp_path / "t.trace.jsonl"
        with TraceWriter(path, "p0") as tr:
            t = threading.Thread(target=lambda: tr.emit("tick"), name="pump-1")
            t.start()
            t.join()
            tr.emit("tock")
        by_event = {ev.event: ev for ev in read_trace_file(path)}
        assert by_event["tick"].data["tid"] == "pump-1"
        assert "tid" not in by_event["tock"].data


class TestStageSpanAgreement:
    def test_traced_stage_feeds_both_identically(self, tmp_path):
        path = tmp_path / "t.trace.jsonl"
        st = StageTimes()
        with TraceWriter(path, "p0") as tr:
            with traced_stage(tr, st, "wire", picture=0):
                time.sleep(0.005)
        end = [ev for ev in read_trace_file(path) if ev.data.get("ph") == "E"]
        assert len(end) == 1
        # one measurement feeds both: agreement is exact up to rounding
        assert end[0].data["dur_s"] == pytest.approx(st.wire, abs=1e-8)

    def test_traced_stage_rejects_unknown_stage(self):
        with pytest.raises(KeyError):
            with traced_stage(None, StageTimes(), "nosuchstage"):
                pass

    def test_stage_span_block_children_match_stage_deltas(self, tmp_path):
        path = tmp_path / "t.trace.jsonl"
        st = StageTimes()
        with TraceWriter(path, "p0") as tr:
            with stage_span_block(tr, st, "decode", picture=1,
                                  stages=("parse", "plan")):
                # interleaved stage accrual, as the batched decoder does
                for _ in range(3):
                    with st.stage("parse"):
                        time.sleep(0.002)
                    with st.stage("plan"):
                        time.sleep(0.001)
        evs = read_trace_file(path)
        ends = {
            ev.event: ev.data["dur_s"]
            for ev in evs
            if ev.data.get("ph") == "E"
        }
        assert ends["parse"] == pytest.approx(st.parse, abs=1e-8)
        assert ends["plan"] == pytest.approx(st.plan, abs=1e-8)
        # children nest inside the parent decode span
        assert ends["decode"] >= ends["parse"] + ends["plan"] - 1e-6
        begins = [ev for ev in evs if ev.data.get("ph") == "B"]
        assert begins[0].event == "decode"  # parent B emitted eagerly

    def test_stage_span_block_skips_zero_stages(self, tmp_path):
        path = tmp_path / "t.trace.jsonl"
        st = StageTimes()
        with TraceWriter(path, "p0") as tr:
            with stage_span_block(tr, st, "decode"):
                pass  # no stage accrues time
        events = {ev.event for ev in read_trace_file(path)}
        assert events == {"decode"}


class TestStatsEmission:
    def test_emit_stats_carries_metrics_and_channels(self, tmp_path):
        from repro.perf.telemetry import registry

        registry().counter("test.frames").inc(2)
        path = tmp_path / "t.trace.jsonl"
        with TraceWriter(path, "p0") as tr:
            emit_stats(tr)
        (ev,) = read_trace_file(path)
        assert ev.event == "stats"
        assert ev.data["metrics"]["counters"]["test.frames"] >= 2
        assert "channels" in ev.data

    def test_maybe_emit_stats_rate_limits(self, tmp_path):
        path = tmp_path / "t.trace.jsonl"
        with TraceWriter(path, "p0") as tr:
            assert maybe_emit_stats(tr, interval=10.0) is True
            assert maybe_emit_stats(tr, interval=10.0) is False
        assert len(read_trace_file(path)) == 1

    def test_maybe_emit_stats_noop_when_spans_disabled(self, tmp_path):
        path = tmp_path / "t.trace.jsonl"
        with TraceWriter(path, "p0", spans=False) as tr:
            assert maybe_emit_stats(tr) is False
        assert read_trace_file(path) == []


class TestNodeBandwidth:
    def test_mbps_returns_pair(self):
        bw = NodeBandwidth(sent=10_000_000, received=5_000_000)
        s, r = bw.mbps(10.0)
        assert s == pytest.approx(1.0)
        assert r == pytest.approx(0.5)

    def test_zero_or_negative_duration_guard(self):
        bw = NodeBandwidth(sent=1, received=1)
        assert bw.mbps(0.0) == (0.0, 0.0)
        assert bw.mbps(-1.0) == (0.0, 0.0)
