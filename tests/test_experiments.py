"""Experiment runners reproduce the paper's qualitative results."""

import pytest

from repro.perf import experiments as E
from repro.perf.metrics import RuntimeBreakdown, average_breakdown


@pytest.fixture(scope="module")
def t5_rows():
    return E.table5(n_frames=24)


@pytest.fixture(scope="module")
def t6_rows():
    return E.table6(n_frames=24)


class TestTable5Figure6:
    def test_all_configs_present(self, t5_rows):
        assert len(t5_rows) == 2 * len(E.SCREEN_CONFIGS)

    def test_one_level_saturates(self, t5_rows):
        """§5.3: beyond ~4 decoders the single splitter cannot keep up."""
        for sid in (1, 8):
            fps = {
                (r["m"], r["n"]): r["one_level_fps"]
                for r in t5_rows
                if r["stream"] == sid
            }
            assert fps[(2, 2)] > 1.7 * fps[(1, 1)]
            assert fps[(4, 4)] < fps[(3, 3)] * 1.05  # flat or drooping

    def test_two_level_keeps_scaling(self, t5_rows):
        for sid in (1, 8):
            rows = [r for r in t5_rows if r["stream"] == sid]
            assert rows[-1]["two_level_fps"] > rows[-1]["one_level_fps"] * 1.3
            fps_series = [r["two_level_fps"] for r in rows]
            assert fps_series == sorted(fps_series)

    def test_figure6_series_shape(self, t5_rows):
        series = E.figure6(t5_rows)
        assert set(series) == {
            "stream1-one-level",
            "stream1-two-level",
            "stream8-one-level",
            "stream8-two-level",
        }
        for pts in series.values():
            assert len(pts) == len(E.SCREEN_CONFIGS)


class TestFigure7:
    def test_work_share_falls(self):
        out = E.figure7(n_frames=24)
        w22 = out["2x2"]["average_fractions"]["work"]
        w44 = out["4x4"]["average_fractions"]["work"]
        assert w22 > 0.6
        assert w44 < 0.6
        assert w22 - w44 > 0.15

    def test_serve_share_rises(self):
        out = E.figure7(n_frames=24)
        s22 = out["2x2"]["average_fractions"]["serve"]
        s44 = out["4x4"]["average_fractions"]["serve"]
        assert s44 > s22

    def test_per_decoder_data_complete(self):
        out = E.figure7(n_frames=24)
        assert len(out["2x2"]["per_decoder_ms"]) == 4
        assert len(out["4x4"]["per_decoder_ms"]) == 16


class TestTable6Figure8:
    def test_all_streams(self, t6_rows):
        assert [r["stream"] for r in t6_rows] == list(range(1, 17))

    def test_headline_anchor(self, t6_rows):
        s16 = t6_rows[-1]
        assert s16["config"].endswith("(4,4)")
        assert s16["fps"] == pytest.approx(38.9, rel=0.15)

    def test_realtime_for_all_streams(self, t6_rows):
        """§6: 'can achieve real time frame rate for ultra high resolution
        video streams'."""
        for r in t6_rows:
            assert r["fps"] >= 24.0, r

    def test_pixel_rate_grows_with_nodes(self, t6_rows):
        pts = E.figure8(t6_rows)
        nodes = [p[0] for p in pts]
        rates = [p[1] for p in pts]
        assert nodes == sorted(nodes)
        # near-linear overall: biggest config achieves a large multiple
        assert rates[-1] > 6 * rates[0]

    def test_orion_streams_show_detail_droop(self, t6_rows):
        """§5.5: localized detail makes the largest streams fall slightly
        below linear — pixel rate per node dips for streams 13-16."""
        by_sid = {r["stream"]: r for r in t6_rows}
        eff_uniform = by_sid[10]["pixel_rate_mpps"] / by_sid[10]["nodes"]
        eff_orion = by_sid[16]["pixel_rate_mpps"] / by_sid[16]["nodes"]
        assert eff_orion < eff_uniform * 1.05


class TestFigure9:
    def test_bandwidth_report(self):
        out = E.figure9(n_frames=24)
        bw = out["bandwidth_mbps"]
        assert len([n for n in bw if n.startswith("decoder")]) == 16
        assert len([n for n in bw if n.startswith("splitter")]) == 4
        # low and within commodity network reach
        for name, (s, r) in bw.items():
            assert s < 40 and r < 40

    def test_sph_overhead_in_splitter_send(self):
        out = E.figure9(n_frames=24)
        assert 1.05 < out["splitter_send_over_recv"] < 1.45


class TestChooseK:
    def test_small_stream_needs_one(self):
        from repro.workloads.streams import stream_by_id

        assert E.choose_k_empirically(stream_by_id(1), 1, 1) == 1

    def test_large_wall_needs_more(self):
        from repro.workloads.streams import stream_by_id

        k = E.choose_k_empirically(stream_by_id(8), 4, 4)
        assert k >= 2


class TestMetricsHelpers:
    def test_breakdown_fractions(self):
        bd = RuntimeBreakdown(work=3, serve=1, receive=0, wait_remote=0, ack=0)
        fr = bd.fractions()
        assert fr["work"] == pytest.approx(0.75)
        assert sum(fr.values()) == pytest.approx(1.0)

    def test_breakdown_add_validates(self):
        bd = RuntimeBreakdown()
        with pytest.raises(KeyError):
            bd.add("nonsense", 1.0)

    def test_average(self):
        a = RuntimeBreakdown(work=2.0)
        b = RuntimeBreakdown(work=4.0, serve=2.0)
        avg = average_breakdown([a, b])
        assert avg.work == 3.0 and avg.serve == 1.0

    def test_empty_average(self):
        assert average_breakdown([]).total == 0.0

    def test_per_frame_ms(self):
        bd = RuntimeBreakdown(work=0.12)
        assert bd.per_frame_ms(12)["work"] == pytest.approx(10.0)
