"""Motion compensation, estimation, and reference-region analysis."""

import numpy as np
import pytest

from repro.mpeg2.frames import Frame
from repro.mpeg2.motion import (
    Rect,
    chroma_mv,
    chroma_reference_rect,
    estimate_mv,
    mb_rect,
    predict_macroblock,
    predict_plane,
    reference_rect,
)


class TestRect:
    def test_basic_geometry(self):
        r = Rect(2, 3, 10, 7)
        assert r.width == 8 and r.height == 4 and r.area == 32

    def test_intersection(self):
        a, b = Rect(0, 0, 10, 10), Rect(5, 5, 15, 15)
        assert a.intersect(b) == Rect(5, 5, 10, 10)

    def test_empty_intersection(self):
        assert Rect(0, 0, 4, 4).intersect(Rect(8, 8, 12, 12)).is_empty()
        assert Rect(0, 0, 4, 4).intersect(Rect(4, 0, 8, 4)).is_empty()

    def test_contains(self):
        assert Rect(0, 0, 10, 10).contains(Rect(2, 2, 8, 8))
        assert not Rect(0, 0, 10, 10).contains(Rect(2, 2, 12, 8))

    def test_mb_rect(self):
        assert mb_rect(2, 3) == Rect(32, 48, 48, 64)


class TestReferenceRect:
    def test_zero_mv_is_own_square(self):
        assert reference_rect(1, 1, (0, 0)) == Rect(16, 16, 32, 32)

    def test_integer_mv_shifts(self):
        assert reference_rect(1, 1, (4, -6)) == Rect(18, 13, 34, 29)

    def test_half_pel_widens(self):
        r = reference_rect(0, 0, (1, 0))
        assert (r.width, r.height) == (17, 16)
        r = reference_rect(0, 0, (1, 3))
        assert (r.width, r.height) == (17, 17)

    def test_negative_half_pel_floor(self):
        # mv -1 half-pel: integer part -1 (floor), fractional part set
        r = reference_rect(1, 0, (-1, 0))
        assert r.x0 == 15 and r.width == 17

    def test_chroma_rect_tracks_mv(self):
        r = chroma_reference_rect(1, 1, (0, 0))
        assert r == Rect(8, 8, 16, 16)
        r = chroma_reference_rect(0, 0, (5, 0))  # chroma mv = 2 (half-pel)
        assert r.x0 == 1 and r.width == 8


class TestChromaMV:
    @pytest.mark.parametrize(
        "luma,expected",
        [((0, 0), (0, 0)), ((4, 6), (2, 3)), ((5, 7), (2, 3)),
         ((-4, -6), (-2, -3)), ((-5, -7), (-2, -3)), ((3, -3), (1, -1))],
    )
    def test_truncates_toward_zero(self, luma, expected):
        assert chroma_mv(luma) == expected


class TestPredictPlane:
    def _plane(self, w=64, h=48, seed=0):
        return np.random.default_rng(seed).integers(0, 256, (h, w)).astype(np.uint8)

    def test_integer_mv_is_copy(self):
        p = self._plane()
        pred = predict_plane(p, 16, 16, 16, 16, 8, -4)  # +4,-2 px
        assert (pred == p[14:30, 20:36]).all()

    def test_horizontal_half_pel_average(self):
        p = self._plane()
        pred = predict_plane(p, 16, 16, 16, 16, 1, 0)
        a = p[16:32, 16:32].astype(int)
        b = p[16:32, 17:33].astype(int)
        assert (pred == (a + b + 1) // 2).all()

    def test_vertical_half_pel_average(self):
        p = self._plane()
        pred = predict_plane(p, 16, 16, 16, 16, 0, 1)
        a = p[16:32, 16:32].astype(int)
        b = p[17:33, 16:32].astype(int)
        assert (pred == (a + b + 1) // 2).all()

    def test_diagonal_half_pel_bilinear(self):
        p = self._plane()
        pred = predict_plane(p, 16, 16, 8, 8, 1, 1)
        r = p[16:25, 16:25].astype(int)
        expect = (r[:-1, :-1] + r[:-1, 1:] + r[1:, :-1] + r[1:, 1:] + 2) >> 2
        assert (pred == expect).all()

    def test_out_of_bounds_raises(self):
        p = self._plane()
        with pytest.raises(ValueError):
            predict_plane(p, 0, 0, 16, 16, -1, 0)
        with pytest.raises(ValueError):
            predict_plane(p, 48, 32, 16, 16, 1, 0)  # half-pel needs one extra


class TestPredictMacroblock:
    def _frame(self, seed=0):
        rng = np.random.default_rng(seed)
        return Frame(
            rng.integers(0, 256, (48, 64), dtype=np.uint8).astype(np.uint8),
            rng.integers(0, 256, (24, 32), dtype=np.uint8).astype(np.uint8),
            rng.integers(0, 256, (24, 32), dtype=np.uint8).astype(np.uint8),
        )

    def test_forward_only(self):
        f = self._frame()
        y, cb, cr = predict_macroblock(f, None, 1, 1, (0, 0), None)
        assert (y == f.y[16:32, 16:32]).all()
        assert (cb == f.cb[8:16, 8:16]).all()

    def test_bidirectional_average(self):
        a, b = self._frame(1), self._frame(2)
        y, _, _ = predict_macroblock(a, b, 1, 1, (0, 0), (0, 0))
        expect = (a.y[16:32, 16:32].astype(int) + b.y[16:32, 16:32] + 1) >> 1
        assert (y == expect).all()

    def test_no_mv_raises(self):
        with pytest.raises(ValueError):
            predict_macroblock(self._frame(), None, 0, 0, None, None)


class TestEstimateMV:
    def test_finds_known_translation(self):
        rng = np.random.default_rng(0)
        ref = rng.integers(0, 256, (96, 128)).astype(np.uint8)
        cur = np.roll(np.roll(ref, 3, axis=0), -5, axis=1)  # moved by (-5, +3)
        mv = estimate_mv(cur, ref, 3, 2, search_range=7)
        assert mv == (10, -6)  # half-pel units: +5 px right in ref, -3 down

    def test_zero_motion_preferred_on_static(self):
        rng = np.random.default_rng(1)
        ref = rng.integers(0, 256, (64, 64)).astype(np.uint8)
        assert estimate_mv(ref, ref, 1, 1, search_range=7) == (0, 0)

    def test_result_always_legal(self):
        """MVs returned near frame edges must be usable by predict_plane."""
        rng = np.random.default_rng(2)
        ref = rng.integers(0, 256, (48, 48)).astype(np.uint8)
        cur = rng.integers(0, 256, (48, 48)).astype(np.uint8)
        for mbx in range(3):
            for mby in range(3):
                mv = estimate_mv(cur, ref, mbx, mby, search_range=10)
                predict_plane(ref, mbx * 16, mby * 16, 16, 16, mv[0], mv[1])

    def test_half_pel_refinement(self):
        """A half-pel shifted pattern estimates a fractional vector."""
        x = np.arange(128, dtype=np.float64)
        row = 100 + 50 * np.sin(x / 5.0)
        ref = np.tile(row, (48, 1)).astype(np.uint8)
        row_half = 100 + 50 * np.sin((x + 0.5) / 5.0)
        cur = np.tile(row_half, (48, 1)).astype(np.uint8)
        mv = estimate_mv(cur, ref, 3, 1, search_range=4)
        # vertically constant pattern: any vertical half-pel ties
        assert mv[0] == 1 and abs(mv[1]) <= 1
