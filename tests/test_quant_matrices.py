"""Custom quantization matrices: header carriage and end-to-end effect."""

import numpy as np
import pytest

from repro.bitstream import BitReader, BitWriter
from repro.mpeg2 import psnr
from repro.mpeg2.constants import SEQUENCE_HEADER_CODE
from repro.mpeg2.decoder import decode_stream
from repro.mpeg2.encoder import Encoder, EncoderConfig
from repro.mpeg2.structures import SequenceHeader
from repro.parallel.pipeline import ParallelDecoder
from repro.wall.layout import TileLayout
from repro.workloads.synthetic import moving_pattern_frames


FLAT_8 = np.full((8, 8), 8, dtype=np.int32)
STEEP = np.clip(np.add.outer(np.arange(8), np.arange(8)) * 16 + 8, 1, 255).astype(
    np.int32
)


def _roundtrip_header(seq):
    bw = BitWriter()
    seq.write(bw)
    br = BitReader(bw.getvalue())
    assert br.next_start_code() == SEQUENCE_HEADER_CODE
    return SequenceHeader.parse(br)


class TestHeaderCarriage:
    def test_intra_matrix_roundtrip(self):
        seq = SequenceHeader(64, 48, intra_matrix=STEEP)
        out = _roundtrip_header(seq)
        assert out.intra_matrix is not None
        assert (out.intra_matrix == STEEP).all()
        assert out.non_intra_matrix is None

    def test_both_matrices_roundtrip(self):
        seq = SequenceHeader(64, 48, intra_matrix=STEEP, non_intra_matrix=FLAT_8)
        out = _roundtrip_header(seq)
        assert (out.intra_matrix == STEEP).all()
        assert (out.non_intra_matrix == FLAT_8).all()

    def test_default_header_unchanged(self):
        out = _roundtrip_header(SequenceHeader(64, 48))
        assert out.intra_matrix is None and out.non_intra_matrix is None

    def test_invalid_matrix_rejected(self):
        with pytest.raises(ValueError):
            _roundtrip_header(
                SequenceHeader(64, 48, intra_matrix=np.zeros((8, 8), np.int32))
            )
        with pytest.raises(ValueError):
            _roundtrip_header(
                SequenceHeader(64, 48, intra_matrix=np.ones((4, 4), np.int32))
            )


class TestEndToEnd:
    @pytest.fixture(scope="class")
    def clip(self):
        return moving_pattern_frames(96, 64, 6, seed=5)

    def test_custom_matrices_decode_consistently(self, clip):
        enc = Encoder(
            EncoderConfig(
                gop_size=6,
                b_frames=1,
                intra_matrix=FLAT_8,
                non_intra_matrix=FLAT_8,
            )
        )
        data = enc.encode(clip)
        out = decode_stream(data)
        assert len(out) == len(clip)
        assert min(psnr(a, b) for a, b in zip(clip, out)) > 30

    def test_finer_matrix_improves_quality(self, clip):
        """An all-8 matrix quantizes finer than the default intra matrix
        (entries 8..83), so quality rises and bits grow."""
        default = Encoder(EncoderConfig(gop_size=1))
        flat = Encoder(EncoderConfig(gop_size=1, intra_matrix=FLAT_8))
        d_def = default.encode(clip[:2])
        d_flat = flat.encode(clip[:2])
        q_def = psnr(clip[0], decode_stream(d_def)[0])
        q_flat = psnr(clip[0], decode_stream(d_flat)[0])
        assert q_flat > q_def
        assert len(d_flat) > len(d_def)

    def test_steep_matrix_saves_bits(self, clip):
        default = Encoder(EncoderConfig(gop_size=1))
        steep = Encoder(EncoderConfig(gop_size=1, intra_matrix=STEEP))
        assert len(steep.encode(clip[:2])) < len(default.encode(clip[:2]))

    def test_parallel_decode_with_custom_matrices(self, clip):
        """Custom matrices ride the sequence header, which the root
        distributes — the parallel path must honour them bit-exactly."""
        enc = Encoder(
            EncoderConfig(
                gop_size=6,
                b_frames=2,
                intra_matrix=STEEP,
                non_intra_matrix=FLAT_8,
            )
        )
        data = enc.encode(clip)
        ref = decode_stream(data)
        layout = TileLayout(96, 64, 2, 2, overlap=4)
        out = ParallelDecoder(layout, k=2, verify_overlaps=True).decode(data)
        assert all(a.max_abs_diff(b) == 0 for a, b in zip(ref, out))
