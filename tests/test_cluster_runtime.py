"""The multi-process cluster runtime, end to end.

These tests spawn real worker processes (``1 + k + m*n`` interpreters)
talking over the socket transport, so they are marked ``integration``
and run in a dedicated CI job rather than the default matrix.
"""

import json
import os
import time

import pytest

from repro.cluster.runtime import ClusterError, ClusterSupervisor, WallConfig
from repro.mpeg2.decoder import decode_stream
from repro.mpeg2.encoder import Encoder, EncoderConfig
from repro.perf.trace import read_trace_file
from repro.workloads.synthetic import moving_pattern_frames

pytestmark = pytest.mark.integration


@pytest.fixture(scope="module")
def clip_stream():
    """A multi-GOP stream exercising I, P and B pictures."""
    clip = moving_pattern_frames(96, 64, 8, seed=21)
    stream = Encoder(EncoderConfig(gop_size=5, b_frames=2)).encode(clip)
    return clip, stream


@pytest.fixture(scope="module")
def wall_run(clip_stream, tmp_path_factory):
    """One full 2x2, k=2 decode over unix sockets, traced; shared by the
    assertions below so the expensive spawn happens once."""
    _, stream = clip_stream
    rundir = tmp_path_factory.mktemp("cluster-2x2")
    sup = ClusterSupervisor(
        WallConfig(m=2, n=2, k=2, transport="unix"), trace_dir=str(rundir)
    )
    frames = sup.decode(stream, timeout=120.0)
    return sup, frames, rundir


class TestBitIdentical:
    def test_2x2_two_splitters_matches_sequential(self, clip_stream, wall_run):
        _, stream = clip_stream
        ref = decode_stream(stream)
        _, frames, _ = wall_run
        assert len(frames) == len(ref)
        for i, (a, b) in enumerate(zip(ref, frames)):
            assert a.max_abs_diff(b) == 0, f"picture {i} diverged"

    def test_all_workers_exited_cleanly(self, wall_run):
        sup, _, _ = wall_run
        assert len(sup.processes) == 1 + 2 + 4
        for name, proc in sup.processes.items():
            assert proc.poll() == 0, f"{name} still running or failed"

    def test_stage_times_harvested_across_processes(self, wall_run):
        sup, frames, _ = wall_run
        # four decoders, eight pictures each
        assert sup.stage_times.pictures == 4 * len(frames)
        assert sup.stage_times.total > 0

    def test_tcp_transport(self, clip_stream):
        _, stream = clip_stream
        ref = decode_stream(stream)
        sup = ClusterSupervisor(WallConfig(m=2, n=1, k=1, transport="tcp"))
        frames = sup.decode(stream, timeout=120.0)
        assert all(a.max_abs_diff(b) == 0 for a, b in zip(ref, frames))

    def test_bitstream_fallback_matches_sequential(self, clip_stream):
        """ship_plans=False: decoders re-parse sub-picture bitstreams."""
        _, stream = clip_stream
        ref = decode_stream(stream)
        sup = ClusterSupervisor(
            WallConfig(m=2, n=1, k=1, transport="unix", ship_plans=False)
        )
        frames = sup.decode(stream, timeout=120.0)
        assert all(a.max_abs_diff(b) == 0 for a, b in zip(ref, frames))

    def test_plan_shipping_decoders_do_no_vlc(self, wall_run):
        """With plan shipping on (the default), every tile decoder's parse
        stage must be exactly zero — the splitters run VLC once."""
        sup, _, _ = wall_run
        decs = {p: st for p, st in sup.stage_times_by_proc.items() if p.startswith("dec")}
        assert len(decs) == 4
        for proc, st in decs.items():
            assert st.parse == 0.0, f"{proc} spent {st.parse}s in VLC"
            assert st.execute > 0.0


class TestTraceTimeline:
    def test_merged_trace_is_one_wall_clock_timeline(self, wall_run):
        sup, _, rundir = wall_run
        assert sup.merged_trace_path is not None and sup.merged_trace_path.exists()
        events = read_trace_file(sup.merged_trace_path)
        assert events, "merged trace is empty"
        stamps = [ev.ts for ev in events]
        assert stamps == sorted(stamps), "events not in wall-clock order"
        # every process contributed to the single timeline
        procs = {ev.proc for ev in events}
        assert procs >= {
            "supervisor", "root", "split0", "split1", "dec0", "dec1", "dec2", "dec3",
        }

    def test_timeline_covers_the_protocol(self, wall_run):
        sup, frames, _ = wall_run
        events = read_trace_file(sup.merged_trace_path)
        by_event = {}
        for ev in events:
            if "ph" in ev.data:
                continue  # span begin/end pairs are counted separately
            by_event.setdefault(ev.event, []).append(ev)
        assert len(by_event["picture_sent"]) == len(frames)  # root
        assert len(by_event["split"]) == len(frames)  # across k splitters
        assert len(by_event["decode"]) == 4 * len(frames)  # per tile
        assert len(by_event["frame_sent"]) == 4 * len(frames)

    def test_timeline_carries_spans(self, wall_run):
        """Every instrumented region appears as balanced B/E span pairs."""
        sup, frames, _ = wall_run
        events = read_trace_file(sup.merged_trace_path)
        begins, ends = {}, {}
        for ev in events:
            ph = ev.data.get("ph")
            if ph == "B":
                begins[ev.event] = begins.get(ev.event, 0) + 1
            elif ph == "E":
                ends[ev.event] = ends.get(ev.event, 0) + 1
        assert begins == ends, "unbalanced span begin/end pairs"
        # one decode span per tile-picture; exchange/credit waits visible
        assert begins["decode"] == 4 * len(frames)
        assert begins["credit_wait"] == len(frames)
        assert begins["exchange_wait"] == 4 * len(frames)
        assert begins["split"] == len(frames)
        for stage in ("plan", "execute", "wire"):
            assert begins.get(stage, 0) > 0, f"no {stage} spans"

    def test_trace_lines_are_valid_jsonl(self, wall_run):
        sup, _, _ = wall_run
        for line in sup.merged_trace_path.read_text().splitlines():
            rec = json.loads(line)
            assert {"ts", "proc", "event"} <= set(rec)


class TestFailureHandling:
    def test_killed_decoder_is_detected_and_torn_down(self, clip_stream, tmp_path):
        """SIGKILL a tile decoder mid-stream: the supervisor must surface a
        ClusterError promptly and leave no orphan process behind."""
        _, stream = clip_stream
        sup = ClusterSupervisor(
            WallConfig(m=2, n=2, k=1, transport="unix", fail_at="dec1@2"),
            trace_dir=str(tmp_path),
        )
        t0 = time.monotonic()
        with pytest.raises(ClusterError, match="dec1"):
            sup.decode(stream, timeout=120.0)
        assert time.monotonic() - t0 < 60, "failure detection took too long"
        for name, proc in sup.processes.items():
            assert proc.poll() is not None, f"{name} orphaned after teardown"
        assert sup.processes["dec1"].returncode == -9

    def test_sigkill_mid_lease_leaks_no_shm_segments(self, clip_stream, tmp_path):
        """Kill a decoder while frame leases are in flight: workers never
        unlink their own segments, so the supervisor's purge must reap the
        whole ``repro-pool-<token>-*`` namespace on the failure path too."""
        _, stream = clip_stream
        sup = ClusterSupervisor(
            WallConfig(
                m=2, n=2, k=1, transport="unix", fail_at="dec1@2",
                shm_dir=str(tmp_path),
            ),
            trace_dir=str(tmp_path),
        )
        with pytest.raises(ClusterError, match="dec1"):
            sup.decode(stream, timeout=120.0)
        assert sup.processes["dec1"].returncode == -9
        # the purge actually had segments to reap (the SIGKILL left the
        # dead decoder's pool behind), and none survive it
        purges = [
            ev.data["removed"]
            for ev in read_trace_file(sup.merged_trace_path)
            if ev.event == "pool_purge"
        ]
        assert purges and len(purges[0]) > 0
        assert [p for p in os.listdir(tmp_path) if p.startswith("repro-pool-")] == []

    def test_failure_report_carries_diagnostics(self, clip_stream, tmp_path):
        _, stream = clip_stream
        sup = ClusterSupervisor(
            WallConfig(m=2, n=1, k=1, transport="unix", fail_at="split0@1"),
            trace_dir=str(tmp_path),
        )
        with pytest.raises(ClusterError) as excinfo:
            sup.decode(stream, timeout=120.0)
        # the report names every process and its exit state
        for name in sup.config.process_names:
            assert name in str(excinfo.value)

    def test_no_stale_sockets_after_success(self, wall_run):
        _, _, rundir = wall_run
        leftovers = [p for p in os.listdir(rundir) if p.endswith(".sock")]
        assert leftovers == []


class TestShutdownAPI:
    def test_shutdown_interrupts_a_run_and_is_idempotent(self, tmp_path):
        """shutdown(reason=...) mid-decode: the decode thread surfaces a
        ClusterError, no child survives, the reason lands in the trace,
        and calling it again is a no-op."""
        import threading

        clip = moving_pattern_frames(96, 64, 40, seed=7)
        stream = Encoder(EncoderConfig(gop_size=5, b_frames=2)).encode(clip)
        sup = ClusterSupervisor(
            WallConfig(m=2, n=1, k=1, transport="unix"), trace_dir=str(tmp_path)
        )
        outcome = {}

        def run():
            try:
                outcome["frames"] = sup.decode(stream, timeout=120.0)
            except ClusterError as exc:
                outcome["error"] = exc

        t = threading.Thread(target=run)
        t.start()
        deadline = time.monotonic() + 60.0
        while len(sup.processes) < 4 and time.monotonic() < deadline:
            time.sleep(0.02)  # wait for the tree to spawn
        assert len(sup.processes) == 4
        sup.shutdown(reason="session cancelled")
        sup.shutdown(reason="second call must be a no-op")
        t.join(timeout=60.0)
        assert not t.is_alive()
        assert "error" in outcome, "shutdown did not interrupt the decode"
        for name, proc in sup.processes.items():
            assert proc.poll() is not None, f"{name} survived shutdown"
        events = read_trace_file(tmp_path / "supervisor.trace.jsonl")
        requested = [e for e in events if e.event == "shutdown_requested"]
        assert [e.data["reason"] for e in requested] == ["session cancelled"]
