"""Transform layer: DCT/IDCT, quantization, scan ordering."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st
from hypothesis.extra import numpy as hnp

from repro.mpeg2 import dct


class TestTransform:
    def test_idct_inverts_fdct(self):
        rng = np.random.default_rng(0)
        blocks = rng.integers(0, 256, (10, 8, 8)).astype(np.float64)
        back = dct.idct(dct.fdct(blocks))
        assert np.allclose(back, blocks, atol=1e-9)

    def test_mpeg_dc_scaling(self):
        """The DC of a constant block c is 8c, so 8-bit video fits the
        12-bit coefficient range."""
        block = np.full((1, 8, 8), 255.0)
        co = dct.fdct(block)
        assert co[0, 0, 0] == pytest.approx(255 * 8)
        assert abs(co[0, 0, 0]) <= dct.COEFF_MAX + 1

    def test_fdct_linear(self):
        rng = np.random.default_rng(1)
        a = rng.normal(size=(3, 8, 8))
        b = rng.normal(size=(3, 8, 8))
        assert np.allclose(dct.fdct(a + b), dct.fdct(a) + dct.fdct(b))

    def test_batch_matches_single(self):
        rng = np.random.default_rng(2)
        blocks = rng.integers(0, 256, (5, 8, 8)).astype(np.float64)
        batch = dct.fdct(blocks)
        for i in range(5):
            assert np.allclose(batch[i], dct.fdct(blocks[i]))


class TestQuantization:
    def test_intra_roundtrip_bounded_error(self):
        rng = np.random.default_rng(0)
        blocks = rng.integers(0, 256, (20, 8, 8)).astype(np.float64)
        co = dct.fdct(blocks)
        q = dct.quantize_intra(co, 4)
        rec = dct.idct(dct.dequantize_intra(q, 4))
        # Error bounded by ~half the largest quantizer step.
        assert np.max(np.abs(rec - blocks)) < 12

    def test_intra_dc_rule(self):
        """Intra DC quantizes by /8 regardless of qscale."""
        block = np.full((1, 8, 8), 200.0)
        co = dct.fdct(block)
        q = dct.quantize_intra(co, 62)
        assert q[0, 0, 0] == 200  # 1600 / 8
        deq = dct.dequantize_intra(q, 62)
        assert deq[0, 0, 0] == 1600

    def test_non_intra_dead_zone(self):
        """Small coefficients truncate to zero (dead zone)."""
        co = np.zeros((1, 8, 8))
        co[0, 1, 1] = 15.0  # below one step at qscale 16 (step = 16)
        q = dct.quantize_non_intra(co, 16)
        assert q[0, 1, 1] == 0

    def test_non_intra_roundtrip(self):
        rng = np.random.default_rng(1)
        resid = rng.integers(-100, 100, (20, 8, 8)).astype(np.float64)
        co = dct.fdct(resid)
        q = dct.quantize_non_intra(co, 8)
        rec = dct.idct(dct.dequantize_non_intra(q, 8))
        # effective step is 8 per coefficient; spatial error accumulates
        # across 64 coefficients but stays near one step
        assert np.max(np.abs(rec - resid)) < 12

    def test_levels_fit_escape_range(self):
        """Extreme inputs must still produce escapable levels."""
        block = np.zeros((1, 8, 8))
        block[0] = 255.0
        block[0, ::2, ::2] = -255.0 + 255  # harsh checkerboard-ish
        co = dct.fdct(block * 8)  # exaggerate
        q = dct.quantize_non_intra(co, 2)
        assert np.abs(q).max() <= 2047

    def test_dequantize_saturates(self):
        q = np.zeros((1, 8, 8), dtype=np.int32)
        q[0, 0, 0] = 2047
        deq = dct.dequantize_intra(q, 62)
        assert deq.max() <= dct.COEFF_MAX

    def test_sign_symmetry_non_intra(self):
        co = np.zeros((1, 8, 8))
        co[0, 2, 3] = 100.0
        qp = dct.quantize_non_intra(co, 8)
        qn = dct.quantize_non_intra(-co, 8)
        assert (qp == -qn).all()
        assert (dct.dequantize_non_intra(qp, 8) == -dct.dequantize_non_intra(qn, 8)).all()


class TestScanOrder:
    def test_scan_block_roundtrip(self):
        rng = np.random.default_rng(0)
        block = rng.integers(-100, 100, (4, 8, 8))
        assert (dct.scan_to_block(dct.block_to_scan(block)) == block).all()

    def test_dc_first_in_scan(self):
        block = np.zeros((8, 8), dtype=np.int32)
        block[0, 0] = 42
        scan = dct.block_to_scan(block)
        assert scan[0] == 42
        assert (scan[1:] == 0).all()

    def test_low_frequencies_early(self):
        """Zigzag puts (0,1) and (1,0) right after DC."""
        block = np.zeros((8, 8), dtype=np.int32)
        block[0, 1] = 7
        block[1, 0] = 9
        scan = dct.block_to_scan(block)
        assert set(scan[1:3].tolist()) == {7, 9}


class TestRunLevels:
    def test_empty_block(self):
        assert dct.run_levels_from_scan(np.zeros(64, dtype=np.int32), False) == []

    def test_skip_dc(self):
        scan = np.zeros(64, dtype=np.int32)
        scan[0] = 99
        scan[3] = -5
        assert dct.run_levels_from_scan(scan, skip_dc=True) == [(2, -5)]
        assert dct.run_levels_from_scan(scan, skip_dc=False) == [(0, 99), (2, -5)]

    def test_roundtrip_with_dc(self):
        rng = np.random.default_rng(3)
        scan = np.zeros(64, dtype=np.int32)
        idx = rng.choice(np.arange(1, 64), size=10, replace=False)
        scan[idx] = rng.integers(1, 50, size=10)
        rl = dct.run_levels_from_scan(scan, skip_dc=True)
        back = dct.scan_from_run_levels(rl, dc=0)
        assert (back == scan).all()

    def test_overrun_rejected(self):
        with pytest.raises(ValueError):
            dct.scan_from_run_levels([(63, 1), (0, 1)], dc=None)


@given(
    hnp.arrays(np.int32, (64,), elements=st.integers(-40, 40)),
)
@settings(max_examples=100)
def test_run_level_roundtrip_property(scan):
    rl = dct.run_levels_from_scan(scan, skip_dc=False)
    back = dct.scan_from_run_levels(rl, dc=None)
    assert (back == scan).all()
