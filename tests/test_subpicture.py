"""Sub-picture wire format: SPH, run/skip records, serialization."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.mpeg2.constants import PictureType
from repro.parallel.subpicture import SPH, RunRecord, SkipRecord, SubPicture


def _sph(**kw):
    base = dict(
        address=1234,
        qscale_code=7,
        dc_pred=(128, 130, 126),
        pmv=((4, -6), (0, 2)),
        prev_forward=True,
        prev_backward=False,
        skip_bits=5,
    )
    base.update(kw)
    return SPH(**base)


class TestSPH:
    def test_pack_unpack_roundtrip(self):
        sph = _sph()
        out, off = SPH.unpack(sph.pack(), 0)
        assert out == sph
        assert off == SPH.packed_size()

    def test_negative_predictors(self):
        sph = _sph(pmv=((-100, -1), (-32, 17)), dc_pred=(0, 2047, 55))
        out, _ = SPH.unpack(sph.pack(), 0)
        assert out == sph

    def test_state_snapshot_conversion(self):
        snap = _sph().to_state_snapshot()
        assert snap["qscale_code"] == 7
        assert snap["pmv"] == [[4, -6], [0, 2]]
        assert snap["prev_forward"] is True

    @given(
        st.integers(0, 1 << 20),
        st.integers(1, 31),
        st.tuples(*[st.integers(-2047, 2047)] * 3),
        st.tuples(*[st.integers(-2000, 2000)] * 4),
        st.booleans(),
        st.booleans(),
        st.integers(0, 7),
    )
    @settings(max_examples=60)
    def test_roundtrip_property(self, addr, q, dc, pmv, pf, pb, skip):
        sph = SPH(
            address=addr,
            qscale_code=q,
            dc_pred=dc,
            pmv=((pmv[0], pmv[1]), (pmv[2], pmv[3])),
            prev_forward=pf,
            prev_backward=pb,
            skip_bits=skip,
        )
        out, _ = SPH.unpack(sph.pack(), 0)
        assert out == sph


class TestRecords:
    def test_run_record_roundtrip(self):
        rec = RunRecord(sph=_sph(), n_coded=5, n_total=7, nbits=1234, payload=b"abc123")
        packed = rec.pack()
        assert packed[0] == 1
        out, off = RunRecord.unpack(packed, 1)
        assert out.sph == rec.sph
        assert (out.n_coded, out.n_total, out.nbits) == (5, 7, 1234)
        assert out.payload == b"abc123"
        assert off == len(packed)

    def test_skip_record_roundtrip(self):
        rec = SkipRecord(
            address=99, count=4, forward=True, backward=True,
            mv_fwd=(3, -5), mv_bwd=(-2, 7),
        )
        packed = rec.pack()
        assert packed[0] == 2
        out, off = SkipRecord.unpack(packed, 1)
        assert out == rec
        assert off == len(packed)


class TestSubPicture:
    def _subpicture(self):
        sp = SubPicture(
            picture_index=12,
            tile=3,
            picture_type=PictureType.B,
            temporal_reference=4,
            f_code=((2, 2), (3, 3)),
            mb_width=8,
            mb_height=6,
        )
        sp.records.append(
            RunRecord(sph=_sph(), n_coded=3, n_total=4, nbits=100, payload=b"payload")
        )
        sp.records.append(SkipRecord(address=40, count=2, forward=True, backward=False))
        return sp

    def test_serialize_roundtrip(self):
        sp = self._subpicture()
        out = SubPicture.deserialize(sp.serialize())
        assert out.picture_index == 12 and out.tile == 3
        assert out.picture_type == PictureType.B
        assert out.f_code == ((2, 2), (3, 3))
        assert len(out.records) == 2
        assert isinstance(out.records[0], RunRecord)
        assert isinstance(out.records[1], SkipRecord)
        assert out.records[0].payload == b"payload"

    def test_picture_header_reconstruction(self):
        hdr = self._subpicture().picture_header()
        assert hdr.picture_type == PictureType.B
        assert hdr.temporal_reference == 4
        assert hdr.f_code == ((2, 2), (3, 3))

    def test_macroblock_count(self):
        assert self._subpicture().n_macroblocks == 4 + 2

    def test_byte_accounting(self):
        sp = self._subpicture()
        assert sp.payload_bytes == len(b"payload")
        assert sp.overhead_bytes == len(sp.serialize()) - len(b"payload")

    def test_bad_magic_rejected(self):
        with pytest.raises(ValueError):
            SubPicture.deserialize(b"\x00" * 64)

    def test_empty_subpicture(self):
        sp = SubPicture(
            picture_index=0,
            tile=0,
            picture_type=PictureType.I,
            temporal_reference=0,
            f_code=((15, 15), (15, 15)),
            mb_width=4,
            mb_height=4,
        )
        out = SubPicture.deserialize(sp.serialize())
        assert out.records == []
        assert out.n_macroblocks == 0
