"""Table 1 analysis and the coarse-granularity baselines."""


from repro.net.gm import NetworkParams
from repro.parallel.analysis import LEVELS, level_costs
from repro.parallel.baselines import (
    compare_all,
    gop_level,
    hierarchical,
    picture_level,
    slice_level,
)
from repro.wall.layout import TileLayout
from repro.workloads.streams import stream_by_id


S8 = stream_by_id(8)
S16 = stream_by_id(16)


def _layout(spec, m=4, n=4):
    return TileLayout(spec.width, spec.height, m, n)


class TestTable1Analysis:
    def test_all_levels_reported(self):
        rows = level_costs(S8, _layout(S8))
        assert [r.level for r in rows] == list(LEVELS)

    def test_macroblock_split_cost_highest(self):
        rows = {r.level: r for r in level_costs(S8, _layout(S8))}
        for lvl in ("sequence", "gop", "picture", "slice"):
            assert rows["macroblock"].split_cpu_s > rows[lvl].split_cpu_s

    def test_macroblock_no_redistribution(self):
        rows = {r.level: r for r in level_costs(S8, _layout(S8))}
        assert rows["macroblock"].redistribution_bytes == 0.0
        for lvl in ("sequence", "gop", "picture"):
            assert rows[lvl].redistribution_bytes > 0

    def test_picture_level_communication_very_high(self):
        rows = {r.level: r for r in level_costs(S8, _layout(S8))}
        assert rows["picture"].interdecoder_bytes > rows["slice"].interdecoder_bytes
        assert rows["slice"].interdecoder_bytes >= rows["macroblock"].interdecoder_bytes

    def test_macroblock_network_total_smallest(self):
        rows = {r.level: r for r in level_costs(S16, _layout(S16))}
        for lvl in ("sequence", "gop", "picture", "slice"):
            assert rows["macroblock"].network_bytes < rows[lvl].network_bytes

    def test_redistribution_grows_with_tiles(self):
        small = {r.level: r for r in level_costs(S8, _layout(S8, 2, 1))}
        large = {r.level: r for r in level_costs(S8, _layout(S8, 4, 4))}
        assert (
            large["gop"].redistribution_bytes > small["gop"].redistribution_bytes
        )

    def test_single_tile_no_network(self):
        rows = level_costs(S8, _layout(S8, 1, 1))
        for r in rows:
            assert r.network_bytes == 0.0

    def test_qualitative_labels(self):
        rows = {r.level: r for r in level_costs(S8, _layout(S8))}
        assert rows["sequence"].label_redist == "very high"
        assert rows["macroblock"].label_redist == "none"
        assert rows["macroblock"].label_split == "high or moderate"


class TestBaselines:
    def test_gop_level_memory_infeasible_at_high_resolution(self):
        """§3: whole-picture schemes must buffer decoded GOPs of 16 MB
        frames — beyond the 256 MB workstations ("it is impossible for an
        SMP to display such videos even if it can decode them")."""
        res = gop_level(S16, _layout(S16))
        assert not res.feasible
        assert res.bound == "memory"
        assert res.memory_required_mb > 256

    def test_picture_level_network_bound_at_high_resolution(self):
        """Remote reference fetches + pixel redistribution saturate even a
        Myrinet-class fabric."""
        res = picture_level(S16, _layout(S16))
        assert res.feasible
        assert res.bound in ("network", "decode")
        assert res.network_fps < hierarchical(S16, _layout(S16), k=4).network_fps

    def test_hierarchical_wins_at_high_resolution(self):
        results = {r.scheme: r for r in compare_all(S16, _layout(S16), k=4)}
        h = results["hierarchical"]
        for scheme in ("gop", "picture", "slice"):
            assert h.fps > results[scheme].fps

    def test_hierarchical_realtime_on_stream16(self):
        res = hierarchical(S16, _layout(S16), k=4)
        assert res.fps > 30.0

    def test_coarse_schemes_fine_for_dvd(self):
        """At DVD resolution the coarse schemes are fine — the paper's
        related work achieved real-time DVD this way; the breakdown only
        comes with resolution scaling."""
        s1 = stream_by_id(1)
        res = gop_level(s1, TileLayout(s1.width, s1.height, 1, 1))
        assert res.feasible
        assert res.fps > 24.0

    def test_slice_level_closest_contender(self):
        """Slice level avoids the memory wall and most redistribution; it
        loses on communication + copy overhead, not feasibility."""
        s = slice_level(S16, _layout(S16))
        h = hierarchical(S16, _layout(S16), k=4)
        assert s.feasible
        assert s.fps < h.fps
        assert s.fps > picture_level(S16, _layout(S16)).fps

    def test_faster_network_lifts_network_bound(self):
        slow = picture_level(S16, _layout(S16), net=NetworkParams(bandwidth=60e6))
        fast = picture_level(S16, _layout(S16), net=NetworkParams(bandwidth=600e6))
        assert fast.fps > slow.fps

    def test_stage_rates_reported(self):
        res = hierarchical(S16, _layout(S16), k=4)
        assert res.fps == min(res.split_fps, res.decode_fps, res.network_fps)
