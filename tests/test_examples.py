"""Every example script must run clean end to end (they are the docs)."""

import os
import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = sorted(
    p.name for p in (Path(__file__).parent.parent / "examples").glob("*.py")
)


@pytest.mark.parametrize("script", EXAMPLES)
def test_example_runs(script, tmp_path):
    path = Path(__file__).parent.parent / "examples" / script
    # The subprocess does not inherit the repo layout implicitly: put src/
    # on PYTHONPATH so the examples import `repro` the way the docs say to.
    src = str(Path(__file__).parent.parent / "src")
    env = dict(os.environ)
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    proc = subprocess.run(
        [sys.executable, str(path)],
        cwd=tmp_path,  # scripts that write files do so in a scratch dir
        capture_output=True,
        text=True,
        timeout=300,
        env=env,
    )
    assert proc.returncode == 0, f"{script} failed:\n{proc.stderr[-2000:]}"
    assert proc.stdout.strip(), f"{script} produced no output"


def test_example_inventory():
    """The README promises at least quickstart + two domain scenarios."""
    assert "quickstart.py" in EXAMPLES
    assert len(EXAMPLES) >= 3
