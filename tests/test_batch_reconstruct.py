"""Batched two-phase reconstruction must be bit-identical to the reference.

The batched engine (:mod:`repro.mpeg2.batch_reconstruct`) replays exactly
the arithmetic of the per-macroblock path over whole-picture stacks, so the
only acceptable difference is speed.  Golden tests pin the session streams;
the hypothesis test sweeps random GOP structures (I/P/B mixes, skipped
macroblocks from frozen content, partial slices wherever a 2x2 tiling cuts
a slice mid-row) through both the sequential decoder and the tiled wall.
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.mpeg2.batch_reconstruct import PlanBuilder, execute_plan
from repro.mpeg2.constants import PictureType
from repro.mpeg2.decoder import Decoder
from repro.mpeg2.encoder import Encoder, EncoderConfig
from repro.mpeg2.frames import Frame
from repro.mpeg2.macroblock import Macroblock
from repro.parallel.pipeline import ParallelDecoder
from repro.wall.layout import TileLayout


def assert_frames_equal(a, b, context=""):
    __tracebackhide__ = True
    assert a.y.shape == b.y.shape, f"{context}: luma shapes differ"
    diff = a.max_abs_diff(b)
    assert diff == 0, f"{context}: frames differ by up to {diff}"


def _decode_both(stream):
    ref = Decoder(batch_reconstruct=False).decode(stream)
    bat = Decoder(batch_reconstruct=True).decode(stream)
    assert len(ref) == len(bat)
    return ref, bat


# ---------------------------------------------------------------------- #
# golden streams
# ---------------------------------------------------------------------- #


def test_batched_matches_reference_ibbp(small_stream):
    ref, bat = _decode_both(small_stream)
    for i, (a, b) in enumerate(zip(ref, bat)):
        assert_frames_equal(a, b, f"IBBP frame {i}")


def test_batched_matches_reference_ip_only(ip_stream):
    ref, bat = _decode_both(ip_stream)
    for i, (a, b) in enumerate(zip(ref, bat)):
        assert_frames_equal(a, b, f"IP frame {i}")


def test_batched_matches_reference_all_intra(i_only_stream):
    ref, bat = _decode_both(i_only_stream)
    for i, (a, b) in enumerate(zip(ref, bat)):
        assert_frames_equal(a, b, f"intra frame {i}")


def test_batched_tiled_matches_sequential_reference(small_stream):
    ref = Decoder(batch_reconstruct=False).decode(small_stream)
    layout = TileLayout(96, 64, 2, 2)
    for flag in (False, True):
        out = ParallelDecoder(layout, k=2, batch_reconstruct=flag).decode(
            small_stream
        )
        assert len(out) == len(ref)
        for i, (a, b) in enumerate(zip(out, ref)):
            assert_frames_equal(a, b, f"tiled batch={flag} frame {i}")


# ---------------------------------------------------------------------- #
# randomized GOPs
# ---------------------------------------------------------------------- #


def _gop_clip(rng: np.random.Generator, w: int, h: int, n: int):
    """Temporally coherent frames with frozen stretches (-> skipped MBs)."""
    base = rng.integers(16, 235, (h, w), dtype=np.uint8).astype(np.uint8)
    frames = []
    prev = None
    for t in range(n):
        if prev is not None and t % 3 == 1:
            # an identical frame makes P/B macroblocks skip
            frames.append(prev)
            continue
        y = np.roll(base, shift=2 * t, axis=1).copy()
        y[: h // 4, : w // 4] = rng.integers(16, 235)
        cb = np.full((h // 2, w // 2), 120, np.uint8)
        cr = np.full((h // 2, w // 2), 130, np.uint8)
        prev = Frame(y, cb, cr)
        frames.append(prev)
    return frames


@given(
    seed=st.integers(0, 2**31),
    mbw=st.integers(2, 5),
    mbh=st.integers(2, 4),
    gop=st.integers(1, 5),
    b_frames=st.integers(0, 2),
)
@settings(
    max_examples=10,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
def test_random_gop_batched_identical(seed, mbw, mbh, gop, b_frames):
    rng = np.random.default_rng(seed)
    w, h = 16 * mbw, 16 * mbh
    frames = _gop_clip(rng, w, h, 6)
    stream = Encoder(
        EncoderConfig(gop_size=gop, b_frames=b_frames, search_range=3)
    ).encode(frames)

    ref, bat = _decode_both(stream)
    for i, (a, b) in enumerate(zip(ref, bat)):
        assert_frames_equal(a, b, f"sequential frame {i}")

    # a 2x2 wall cuts every slice into partial-slice records
    layout = TileLayout(w, h, 2, 2)
    tiled = ParallelDecoder(layout, k=2, batch_reconstruct=True).decode(stream)
    assert len(tiled) == len(ref)
    for i, (a, b) in enumerate(zip(tiled, ref)):
        assert_frames_equal(a, b, f"tiled frame {i}")


# ---------------------------------------------------------------------- #
# plan builder contracts
# ---------------------------------------------------------------------- #


def test_plan_rejects_out_of_bounds_vector():
    builder = PlanBuilder(PictureType.P, mb_width=4, frame_width=64, frame_height=48)
    mb = Macroblock(
        address=0, intra=False, motion_forward=True, mv_fwd=(-9, 0), qscale_code=8
    )
    with pytest.raises(ValueError, match="outside plane"):
        builder.add(mb)


def test_plan_add_all_is_transactional():
    builder = PlanBuilder(PictureType.P, mb_width=4, frame_width=64, frame_height=48)
    good = Macroblock(
        address=0, intra=False, motion_forward=True, mv_fwd=(2, 2), qscale_code=8
    )
    bad = Macroblock(
        address=1, intra=False, motion_forward=True, mv_fwd=(0, 99), qscale_code=8
    )
    with pytest.raises(ValueError):
        builder.add_all([good, bad])
    assert builder.build().n_macroblocks == 0


def test_empty_plan_executes_as_noop():
    builder = PlanBuilder(PictureType.I, mb_width=4, frame_width=64, frame_height=48)
    out = Frame.blank(64, 48, y=77, c=128)
    execute_plan(builder.build(), out, None, None)
    assert int(out.y.min()) == int(out.y.max()) == 77
