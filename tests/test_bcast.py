"""Broadcast channel: one encode, N receivers, NACK repair, tune-in."""

import threading
import time

import pytest

from repro.net.bcast import (
    ALL_TILES,
    BroadcastReceiver,
    BroadcastRecord,
    BroadcastSender,
    GapNotice,
    RECORD_STICKY,
    decode_record,
    encode_record,
    multicast_available,
    tile_mask,
)
from repro.net.channel import ChannelTimeout

UDP_OK = multicast_available()
needs_multicast = pytest.mark.skipif(
    not UDP_OK, reason="UDP multicast loopback unavailable in this environment"
)


def unix_addr(tmp_path, name="bc.sock"):
    return ("unix", str(tmp_path / name))


def drain(rx, n, timeout=10.0):
    """Collect the next n records/notices from a receiver."""
    out = []
    deadline = time.monotonic() + timeout
    while len(out) < n and time.monotonic() < deadline:
        rec = rx.recv(timeout=0.5)
        if rec is not None:
            out.append(rec)
    return out


class TestRecordCodec:
    def test_roundtrip(self):
        wire = encode_record(7, b"payload", seq=42, picture=3, tiles=0b1010)
        rec = decode_record(wire)
        assert rec == BroadcastRecord(
            kind=7, seq=42, picture=3, tiles=0b1010, flags=0, payload=b"payload"
        )
        assert not rec.sticky

    def test_sticky_flag(self):
        wire = encode_record(1, b"x", seq=0, flags=RECORD_STICKY)
        assert decode_record(wire).sticky

    def test_tile_mask(self):
        assert tile_mask(None) == ALL_TILES
        assert tile_mask([0, 2]) == 0b101
        with pytest.raises(ValueError):
            tile_mask([64])

    def test_truncated_record_rejected(self):
        from repro.net.channel import ChannelError

        wire = encode_record(1, b"0123456789", seq=0)
        with pytest.raises(ChannelError):
            decode_record(wire[:-3])


class TestStreamFanout:
    def test_single_encode_many_receivers(self, tmp_path):
        sender = BroadcastSender(unix_addr(tmp_path), mode="stream")
        try:
            rxs = [
                BroadcastReceiver(sender.control_address, name=f"r{i}")
                for i in range(3)
            ]
            sender.wait_subscribers(3)
            for i in range(4):
                sender.publish(2, b"pic%d" % i, picture=i)
            for rx in rxs:
                got = drain(rx, 4)
                assert [r.payload for r in got] == [b"pic0", b"pic1", b"pic2", b"pic3"]
            # the one-encode property: 4 encodes regardless of 3 receivers
            assert sender.stats.encodes == 4
            assert sender.stats.fanout_sends == 12
            for rx in rxs:
                rx.close()
        finally:
            sender.close()

    def test_tile_filtering_on_receive(self, tmp_path):
        sender = BroadcastSender(unix_addr(tmp_path), mode="stream")
        try:
            rx = BroadcastReceiver(
                sender.control_address, tiles=[1], name="tile1"
            )
            sender.wait_subscribers(1)
            sender.publish(2, b"for-t0", tiles=tile_mask([0]))
            sender.publish(2, b"for-t1", tiles=tile_mask([1]))
            sender.publish(2, b"for-all", tiles=ALL_TILES)
            got = drain(rx, 2)
            assert [r.payload for r in got] == [b"for-t1", b"for-all"]
            assert rx.stats.filtered == 1
            rx.close()
        finally:
            sender.close()

    def test_sticky_replay_and_tune_in(self, tmp_path):
        anchors = iter([12, 18])
        sender = BroadcastSender(
            unix_addr(tmp_path),
            mode="stream",
            meta={"clip": "t"},
            anchor_fn=lambda: next(anchors),
        )
        try:
            sender.publish(1, b"seq-header", sticky=True)
            sender.publish(2, b"pic0")
            late = BroadcastReceiver(sender.control_address, name="late")
            assert late.start_at == 12
            assert late.meta == {"clip": "t"}
            # the sticky record arrives even though it predates the join
            got = drain(late, 1)
            assert got[0].payload == b"seq-header"
            assert got[0].sticky
            later = BroadcastReceiver(sender.control_address, name="later")
            assert later.start_at == 18
            late.close()
            later.close()
        finally:
            sender.close()

    def test_receiver_reports_reach_sender(self, tmp_path):
        sender = BroadcastSender(unix_addr(tmp_path), mode="stream")
        try:
            rx = BroadcastReceiver(sender.control_address, name="reporter")
            sender.wait_subscribers(1)
            rx.report({"decoded": 5})
            deadline = time.monotonic() + 5.0
            reports = []
            while not reports and time.monotonic() < deadline:
                reports = sender.receiver_reports()
                time.sleep(0.01)
            assert reports and reports[0]["decoded"] == 5
            assert reports[0]["name"] == "reporter"
            rx.close()
            # final reports survive the disconnect
            time.sleep(0.1)
            assert sender.receiver_reports()
        finally:
            sender.close()

    def test_wait_subscribers_timeout(self, tmp_path):
        sender = BroadcastSender(unix_addr(tmp_path), mode="stream")
        try:
            with pytest.raises(ChannelTimeout):
                sender.wait_subscribers(1, timeout=0.1)
        finally:
            sender.close()


@needs_multicast
class TestUdpFanout:
    def test_datagram_delivery(self, tmp_path):
        sender = BroadcastSender(unix_addr(tmp_path), mode="udp")
        try:
            rx = BroadcastReceiver(sender.control_address, name="u0")
            for i in range(6):
                sender.publish(2, b"p%d" % i, picture=i)
            got = drain(rx, 6)
            assert [r.payload for r in got] == [b"p%d" % i for i in range(6)]
            assert sender.stats.datagrams >= 6
            rx.close()
        finally:
            sender.close()

    def test_fragmentation_reassembly(self, tmp_path):
        sender = BroadcastSender(unix_addr(tmp_path), mode="udp")
        try:
            rx = BroadcastReceiver(sender.control_address, name="ufrag")
            big = bytes(range(256)) * 1024  # 256 KiB -> 5 fragments
            sender.publish(2, big)
            got = drain(rx, 1)
            assert got and got[0].payload == big
            rx.close()
        finally:
            sender.close()

    def test_nack_repair(self, tmp_path):
        dropped = []

        def loss(seq, frag):
            # lose the first fragment of record 2 exactly once
            if seq == 2 and frag == 0 and not dropped:
                dropped.append((seq, frag))
                return True
            return False

        sender = BroadcastSender(unix_addr(tmp_path), mode="udp", loss_fn=loss)
        try:
            rx = BroadcastReceiver(
                sender.control_address, name="urep", nack_delay=0.05
            )
            for i in range(5):
                sender.publish(2, b"r%d" % i, picture=i)
            got = drain(rx, 5)
            assert [r.payload for r in got] == [b"r%d" % i for i in range(5)]
            assert dropped, "loss hook never fired"
            assert rx.stats.repaired >= 1
            assert sender.stats.repairs >= 1
            rx.close()
        finally:
            sender.close()

    def test_window_overflow_becomes_gap(self, tmp_path):
        def loss(seq, frag):
            return seq == 1  # record 1 never arrives

        sender = BroadcastSender(
            unix_addr(tmp_path), mode="udp", repair_window=2, loss_fn=loss
        )
        try:
            rx = BroadcastReceiver(
                sender.control_address, name="ugap", nack_delay=0.02
            )
            for i in range(8):
                sender.publish(2, b"g%d" % i, picture=i)
                time.sleep(0.02)  # let the window slide past seq 1
            got = drain(rx, 8)
            gaps = [g for g in got if isinstance(g, GapNotice)]
            recs = [r for r in got if isinstance(r, BroadcastRecord)]
            assert gaps and 1 in gaps[0].seqs
            assert b"g0" in [r.payload for r in recs]
            assert b"g7" in [r.payload for r in recs]
            rx.close()
        finally:
            sender.close()


class TestConcurrency:
    def test_publish_during_subscribe_churn(self, tmp_path):
        """Joins racing live publishes must never corrupt the sequence."""
        sender = BroadcastSender(unix_addr(tmp_path), mode="stream")
        stop = threading.Event()
        seqs = []

        def pump():
            i = 0
            while not stop.is_set():
                seqs.append(sender.publish(2, b"c%d" % i, picture=i))
                i += 1
                time.sleep(0.002)

        t = threading.Thread(target=pump, daemon=True)
        t.start()
        try:
            for round_ in range(4):
                rx = BroadcastReceiver(sender.control_address, name=f"churn{round_}")
                got = drain(rx, 3)
                assert len(got) == 3
                rec_seqs = [r.seq for r in got]
                assert rec_seqs == sorted(rec_seqs)
                rx.close()
        finally:
            stop.set()
            t.join(timeout=5)
            sender.close()
        assert seqs == list(range(len(seqs)))
