"""Failure injection: corrupted streams, stragglers, degraded networks."""

import numpy as np
import pytest

from repro.bitstream import BitstreamError
from repro.mpeg2.decoder import decode_stream
from repro.mpeg2.parser import PictureScanner
from repro.net.gm import NetworkParams
from repro.parallel.system import TimedSystem
from repro.wall.layout import TileLayout
from repro.workloads.streams import stream_by_id


S8 = stream_by_id(8)


class TestCorruptedStreams:
    def test_truncated_stream_raises(self, small_stream):
        with pytest.raises(Exception):
            decode_stream(small_stream[: len(small_stream) // 3])

    def test_garbage_rejected(self):
        with pytest.raises(Exception):
            decode_stream(b"\xde\xad\xbe\xef" * 100)

    def test_empty_stream_rejected(self):
        with pytest.raises(Exception):
            decode_stream(b"")

    def test_flipped_bits_detected_or_harmless(self, small_stream):
        """Corrupting slice payload either raises a parse error or yields
        a stream that still parses structurally — it must never hang or
        crash with a non-codec exception."""
        rng = np.random.default_rng(0)
        for trial in range(12):
            data = bytearray(small_stream)
            # corrupt a byte inside the second half (slice data, not headers)
            pos = int(rng.integers(len(data) // 2, len(data) - 5))
            data[pos] ^= 1 << int(rng.integers(0, 8))
            try:
                decode_stream(bytes(data))
            except (BitstreamError, ValueError):
                pass  # detected — acceptable

    def test_missing_sequence_end_still_decodes(self, small_stream):
        assert small_stream.endswith(b"\x00\x00\x01\xb7")
        frames_full = decode_stream(small_stream)
        frames_cut = decode_stream(small_stream[:-4])
        assert len(frames_cut) == len(frames_full)
        for a, b in zip(frames_full, frames_cut):
            assert a.max_abs_diff(b) == 0

    def test_scanner_tolerates_trailing_garbage(self, small_stream):
        _, pics = PictureScanner(small_stream + b"\x00" * 64).scan()
        _, ref = PictureScanner(small_stream).scan()
        assert len(pics) == len(ref)


class TestStragglerInjection:
    def test_slow_decoder_gates_frame_rate(self):
        """Decoders synchronize through the MEI exchange, so one slow node
        drags the whole wall — the §5.5 observation, injected directly."""
        layout = TileLayout(S8.width, S8.height, 2, 2)
        base = TimedSystem(S8, layout, k=2, n_frames=20).run().fps
        # decoder of tile 0 is node k+1 = 3; halve its CPU speed
        slow = TimedSystem(
            S8, layout, k=2, n_frames=20, node_speeds={3: 0.5}
        ).run().fps
        assert slow < base * 0.85

    def test_slow_splitter_hurts_less_with_more_splitters(self):
        layout = TileLayout(S8.width, S8.height, 4, 4)
        k = 3
        base = TimedSystem(S8, layout, k=k, n_frames=20).run().fps
        slow1 = TimedSystem(
            S8, layout, k=k, n_frames=20, node_speeds={1: 0.4}
        ).run().fps
        # a slow splitter slows its share of pictures but the pipeline
        # still makes progress
        assert 0.3 * base < slow1 < base

    def test_slow_console_caps_everything(self):
        layout = TileLayout(S8.width, S8.height, 2, 2)
        base = TimedSystem(S8, layout, k=2, n_frames=20).run().fps
        # the root only copies pictures, so it takes an extreme slowdown
        # before the picture-copy stage caps the pipeline
        slow = TimedSystem(
            S8, layout, k=2, n_frames=20, node_speeds={0: 0.002}
        ).run().fps
        assert slow < base * 0.6


class TestNetworkDegradation:
    def test_low_bandwidth_limits_fps(self):
        layout = TileLayout(S8.width, S8.height, 2, 2)
        base = TimedSystem(S8, layout, k=2, n_frames=20).run().fps
        # 2 MB/s links: sub-picture delivery dominates
        starved = TimedSystem(
            S8,
            layout,
            k=2,
            n_frames=20,
            net_params=NetworkParams(bandwidth=2e6),
        ).run().fps
        assert starved < base * 0.6

    def test_high_latency_hurts_exchange(self):
        layout = TileLayout(S8.width, S8.height, 4, 4)
        base = TimedSystem(S8, layout, k=3, n_frames=20).run().fps
        lagged = TimedSystem(
            S8,
            layout,
            k=3,
            n_frames=20,
            net_params=NetworkParams(latency=3e-3),
        ).run().fps
        assert lagged < base

    def test_protocol_survives_degradation(self):
        """Slow networks change timing, never correctness: no flow-control
        violations, frames still in order."""
        layout = TileLayout(S8.width, S8.height, 2, 2)
        res = TimedSystem(
            S8,
            layout,
            k=2,
            n_frames=16,
            net_params=NetworkParams(bandwidth=1e6, latency=5e-3),
        ).run()
        assert res.flow_control_violations == 0
        assert res.display_times == sorted(res.display_times)
        assert len(res.display_times) == 16
