"""MEI programs: dedup, duality, size accounting."""

import pytest

from repro.mpeg2.motion import Rect
from repro.parallel.mei import (
    BWD,
    FWD,
    INSTRUCTION_BYTES,
    BlockXfer,
    MEIBatch,
    MEIProgram,
)


def _xfer(x0=0, y0=0, w=17, h=17, direction=FWD):
    return BlockXfer(
        luma=Rect(x0, y0, x0 + w, y0 + h),
        chroma=Rect(x0 // 2, y0 // 2, x0 // 2 + w // 2, y0 // 2 + h // 2),
        direction=direction,
    )


class TestBlockXfer:
    def test_payload_bytes(self):
        x = _xfer(w=16, h=16)
        assert x.payload_bytes == 16 * 16 + 2 * 8 * 8

    def test_hashable_for_dedup(self):
        assert _xfer() == _xfer()
        assert len({_xfer(), _xfer()}) == 1


class TestMEIBatch:
    def test_send_recv_duality(self):
        batch = MEIBatch(0, 4)
        batch.add_exchange(0, 1, _xfer())
        batch.add_exchange(2, 3, _xfer(32, 0))
        sends = [
            (src, dst, x)
            for src in range(4)
            for x, dst in batch.program(src).sends
        ]
        recvs = [
            (src, dst, x)
            for dst in range(4)
            for x, src in batch.program(dst).recvs
        ]
        assert sorted(sends, key=repr) == sorted(recvs, key=repr)

    def test_duplicates_collapse(self):
        batch = MEIBatch(0, 2)
        batch.add_exchange(0, 1, _xfer())
        batch.add_exchange(0, 1, _xfer())
        assert batch.total_exchanges() == 1
        assert len(batch.program(0).sends) == 1

    def test_distinct_directions_kept(self):
        batch = MEIBatch(0, 2)
        batch.add_exchange(0, 1, _xfer(direction=FWD))
        batch.add_exchange(0, 1, _xfer(direction=BWD))
        assert batch.total_exchanges() == 2

    def test_self_exchange_rejected(self):
        with pytest.raises(ValueError):
            MEIBatch(0, 2).add_exchange(1, 1, _xfer())

    def test_instruction_byte_accounting(self):
        batch = MEIBatch(0, 2)
        batch.add_exchange(0, 1, _xfer())
        assert batch.program(0).instruction_bytes == INSTRUCTION_BYTES
        assert batch.program(1).instruction_bytes == INSTRUCTION_BYTES

    def test_payload_byte_sums(self):
        batch = MEIBatch(0, 3)
        batch.add_exchange(0, 1, _xfer())
        batch.add_exchange(2, 1, _xfer(48, 0))
        p1 = batch.program(1)
        assert p1.recv_payload_bytes == 2 * _xfer().payload_bytes
        assert p1.send_payload_bytes == 0
