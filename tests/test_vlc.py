"""Entropy layer: table hygiene and codec round-trips."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.bitstream import BitReader, BitWriter
from repro.mpeg2 import tables as T
from repro.mpeg2 import vlc


class TestTableHygiene:
    @pytest.mark.parametrize("name,table", sorted(T.all_vlc_tables().items()))
    def test_prefix_free(self, name, table):
        """Every table must be a prefix-free code (constructing the
        VLCTable runs the check)."""
        vlc.VLCTable(name, table)

    def test_dct_table_disjoint_from_specials(self):
        """EOB ('10'), escape ('000001') and the first-coefficient short
        form are not in the run/level table, so check them explicitly."""
        specials = [T.EOB_CODE, T.DCT_ESCAPE_CODE]
        for bits, length in T.DCT_COEFF.values():
            for sbits, slength in specials:
                shorter = min(length, slength)
                assert bits >> (length - shorter) != sbits >> (slength - shorter)

    def test_mb_escape_disjoint_from_increments(self):
        ebits, elen = T.MB_ESCAPE_CODE
        for bits, length in T.MB_ADDRESS_INCREMENT.values():
            shorter = min(length, elen)
            assert bits >> (length - shorter) != ebits >> (elen - shorter)

    def test_address_increment_complete(self):
        assert sorted(T.MB_ADDRESS_INCREMENT) == list(range(1, 34))

    def test_motion_codes_complete(self):
        assert sorted(T.MOTION_CODE) == list(range(-16, 17))

    def test_cbp_complete(self):
        assert sorted(T.CODED_BLOCK_PATTERN) == list(range(64))

    def test_dc_size_tables_complete(self):
        assert sorted(T.DCT_DC_SIZE_LUMA) == list(range(12))
        assert sorted(T.DCT_DC_SIZE_CHROMA) == list(range(12))

    def test_zigzag_is_permutation(self):
        assert sorted(T.ZIGZAG.reshape(-1).tolist()) == list(range(64))
        assert (T.RASTER_OF_SCAN[T.SCAN_OF_RASTER] == range(64)).all()

    def test_quantiser_scale_code_range(self):
        assert T.quantiser_scale_from_code(1) == 2
        assert T.quantiser_scale_from_code(31) == 62
        with pytest.raises(ValueError):
            T.quantiser_scale_from_code(0)
        with pytest.raises(ValueError):
            T.quantiser_scale_from_code(32)


class TestVLCTable:
    def test_decode_unknown_bits_raises(self):
        table = vlc.VLCTable("toy", {0: (0b10, 2), 1: (0b11, 2)})
        br = BitReader(bytes([0b00000000]))
        with pytest.raises(vlc.VLCError):
            table.decode(br)

    def test_try_decode_returns_none(self):
        table = vlc.VLCTable("toy", {0: (0b10, 2)})
        br = BitReader(bytes([0b00000000]))
        assert table.try_decode(br) is None
        assert br.pos == 0

    def test_prefix_violation_detected(self):
        with pytest.raises(ValueError):
            vlc.VLCTable("bad", {0: (0b1, 1), 1: (0b10, 2)})

    def test_code_length(self):
        assert vlc.MB_ADDR_INC.code_length(1) == 1
        assert vlc.MB_ADDR_INC.code_length(33) == 11


class TestAddressIncrement:
    @pytest.mark.parametrize("inc", [1, 2, 33, 34, 66, 67, 100, 300])
    def test_roundtrip(self, inc):
        bw = BitWriter()
        vlc.encode_address_increment(bw, inc)
        assert vlc.decode_address_increment(BitReader(bw.getvalue())) == inc

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            vlc.encode_address_increment(BitWriter(), 0)


class TestMotionDelta:
    @pytest.mark.parametrize("r_size", range(0, 8))
    def test_full_range_roundtrip(self, r_size):
        f = 1 << r_size
        bw = BitWriter()
        deltas = list(range(-16 * f, 16 * f))
        for d in deltas:
            vlc.encode_motion_delta(bw, d, r_size)
        br = BitReader(bw.getvalue())
        for d in deltas:
            assert vlc.decode_motion_delta(br, r_size) == d

    def test_out_of_range_raises(self):
        # motion_code is capped at 16; delta 17 with r_size 0 needs 17
        with pytest.raises(ValueError):
            vlc.encode_motion_delta(BitWriter(), 17, 0)


def _run_levels(draw_escape_levels):
    level = st.integers(1, 1500 if draw_escape_levels else 30)
    return st.lists(
        st.tuples(st.integers(0, 10), level, st.booleans()), min_size=1, max_size=20
    )


@given(_run_levels(False), st.booleans())
def test_coefficients_roundtrip(pairs, intra):
    rl, total = [], 0
    for run, mag, neg in pairs:
        if total + run + 1 > 64:
            break
        total += run + 1
        rl.append((run, -mag if neg else mag))
    if not rl:
        return
    bw = BitWriter()
    vlc.encode_coefficients(bw, rl, intra=intra)
    out = vlc.decode_coefficients(BitReader(bw.getvalue()), intra=intra)
    assert out == rl


@given(_run_levels(True), st.booleans())
@settings(max_examples=60)
def test_coefficients_roundtrip_escape_levels(pairs, intra):
    rl, total = [], 0
    for run, mag, neg in pairs:
        if total + run + 1 > 64:
            break
        total += run + 1
        rl.append((run, -mag if neg else mag))
    if not rl:
        return
    bw = BitWriter()
    vlc.encode_coefficients(bw, rl, intra=intra)
    assert vlc.decode_coefficients(BitReader(bw.getvalue()), intra=intra) == rl


def test_coefficient_zero_level_rejected():
    with pytest.raises(ValueError):
        vlc.encode_coefficients(BitWriter(), [(0, 0)], intra=False)


def test_first_coefficient_short_form_used():
    """Non-intra (0, 1) first coefficient takes the 1-bit form + sign."""
    bw = BitWriter()
    vlc.encode_coefficients(bw, [(0, 1)], intra=False)
    # '1' + sign 0 + EOB '10' = 4 bits
    assert len(bw) == 4


def test_escape_level_bounds():
    bw = BitWriter()
    vlc.encode_coefficients(bw, [(5, -2047)], intra=True)
    assert vlc.decode_coefficients(BitReader(bw.getvalue()), intra=True) == [(5, -2047)]
    with pytest.raises(ValueError):
        vlc.encode_coefficients(BitWriter(), [(0, 2048)], intra=True)
