"""Header syntax round-trips (sequence, GOP, picture)."""

import pytest

from repro.bitstream import BitReader, BitstreamError, BitWriter
from repro.mpeg2.constants import (
    EXTENSION_START_CODE,
    GROUP_START_CODE,
    PICTURE_START_CODE,
    SEQUENCE_HEADER_CODE,
    PictureType,
)
from repro.mpeg2.structures import GOPHeader, PictureHeader, SequenceHeader


def _roundtrip_sequence(seq: SequenceHeader) -> SequenceHeader:
    bw = BitWriter()
    seq.write(bw)
    br = BitReader(bw.getvalue())
    assert br.next_start_code() == SEQUENCE_HEADER_CODE
    return SequenceHeader.parse(br)


class TestSequenceHeader:
    def test_roundtrip_basic(self):
        seq = SequenceHeader(width=1280, height=720, frame_rate_code=8)
        out = _roundtrip_sequence(seq)
        assert (out.width, out.height) == (1280, 720)
        assert out.frame_rate_code == 8
        assert out.frame_rate == 60.0

    def test_roundtrip_large_dimensions(self):
        """3840x2800 needs the sequence-extension size bits (>12 bits)."""
        seq = SequenceHeader(width=3840, height=2800)
        out = _roundtrip_sequence(seq)
        assert (out.width, out.height) == (3840, 2800)

    def test_oversized_rejected(self):
        with pytest.raises(ValueError):
            _roundtrip_sequence(SequenceHeader(width=1 << 14, height=16))

    def test_for_video_picks_nearest_rate(self):
        assert SequenceHeader.for_video(64, 48, fps=30.0).frame_rate_code == 5
        assert SequenceHeader.for_video(64, 48, fps=24.0).frame_rate_code == 2
        assert SequenceHeader.for_video(64, 48, fps=59.0).frame_rate_code in (7, 8)

    def test_bit_rate_and_vbv_roundtrip(self):
        seq = SequenceHeader(width=64, height=48, bit_rate=123456, vbv_buffer_size=777)
        out = _roundtrip_sequence(seq)
        assert out.bit_rate == 123456
        assert out.vbv_buffer_size == 777


class TestGOPHeader:
    @pytest.mark.parametrize("closed,broken", [(True, False), (False, True)])
    def test_roundtrip(self, closed, broken):
        bw = BitWriter()
        GOPHeader(closed_gop=closed, broken_link=broken, time_code=12345).write(bw)
        br = BitReader(bw.getvalue())
        assert br.next_start_code() == GROUP_START_CODE
        out = GOPHeader.parse(br)
        assert out.closed_gop == closed
        assert out.broken_link == broken
        assert out.time_code == 12345


class TestPictureHeader:
    def _roundtrip(self, hdr: PictureHeader) -> PictureHeader:
        bw = BitWriter()
        hdr.write(bw)
        br = BitReader(bw.getvalue())
        assert br.next_start_code() == PICTURE_START_CODE
        return PictureHeader.parse(br)

    def test_i_picture(self):
        out = self._roundtrip(PictureHeader(5, PictureType.I))
        assert out.picture_type == PictureType.I
        assert out.temporal_reference == 5
        assert out.f_code == ((15, 15), (15, 15))

    def test_p_picture_f_codes(self):
        hdr = PictureHeader(9, PictureType.P, f_code=((3, 2), (15, 15)))
        out = self._roundtrip(hdr)
        assert out.picture_type == PictureType.P
        assert out.f_code == ((3, 2), (15, 15))
        assert out.f_code_for(0, 0) == 3
        assert out.f_code_for(0, 1) == 2

    def test_b_picture_f_codes(self):
        hdr = PictureHeader(2, PictureType.B, f_code=((2, 2), (3, 3)))
        out = self._roundtrip(hdr)
        assert out.picture_type == PictureType.B
        assert out.f_code == ((2, 2), (3, 3))

    def test_temporal_reference_wraps_at_10_bits(self):
        out = self._roundtrip(PictureHeader(1023, PictureType.I))
        assert out.temporal_reference == 1023

    def test_missing_extension_rejected(self):
        bw = BitWriter()
        bw.write_start_code(PICTURE_START_CODE)
        bw.write(0, 10)
        bw.write(int(PictureType.I), 3)
        bw.write(0xFFFF, 16)
        bw.write(0, 1)  # extra_bit_picture
        bw.write_start_code(GROUP_START_CODE)  # wrong: not an extension
        br = BitReader(bw.getvalue())
        br.next_start_code()
        with pytest.raises(BitstreamError):
            PictureHeader.parse(br)
