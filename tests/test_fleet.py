"""Fleet gateway: consistent-hash ring, placement, health, supervisor
death hooks, and (under the ``integration`` marker) SIGKILL failover
with the bit-identity oracle."""

import time

import pytest
from hypothesis import given, settings, strategies as st

from repro.cluster.runtime.config import WallConfig
from repro.cluster.runtime.supervisor import ClusterSupervisor
from repro.fleet import FleetConfig, FleetGateway, HashRing
from repro.fleet.gateway import DOWN, DaemonHandle, UP
from repro.perf.trace import read_trace_file
from repro.service import ServiceClient, ServiceConfig, WallService
from repro.service.session import clean_decode_digest
from repro.workloads.streams import stream_by_id

SPEC = stream_by_id(5)  # fish1: 1280x720@30


# --------------------------------------------------------------------- #
# consistent-hash ring
# --------------------------------------------------------------------- #


def _keys(seed: int, count: int = 200):
    return [f"stream-{seed}-{k}" for k in range(count)]


class TestHashRing:
    @given(n=st.integers(1, 7), seed=st.integers(0, 10_000))
    @settings(max_examples=40, deadline=None)
    def test_placement_is_deterministic_across_instances(self, n, seed):
        """A restarted gateway rebuilds the identical placement: the ring
        hashes labels (sha1), never Python's salted hash()."""
        nodes = [f"daemon{i}" for i in range(n)]
        a, b = HashRing(nodes), HashRing(list(reversed(nodes)))
        for key in _keys(seed, 50):
            assert a.place(key) == b.place(key)
            assert a.preference(key) == b.preference(key)

    @given(n=st.integers(1, 7), seed=st.integers(0, 10_000))
    @settings(max_examples=40, deadline=None)
    def test_adding_a_node_remaps_about_one_over_n(self, n, seed):
        nodes = [f"daemon{i}" for i in range(n)]
        keys = _keys(seed)
        before = {k: HashRing(nodes).place(k) for k in keys}
        grown = HashRing(nodes)
        grown.add(f"daemon{n}")
        after = {k: grown.place(k) for k in keys}
        moved = [k for k in keys if before[k] != after[k]]
        # every moved key lands on the new node — nothing reshuffles
        # between survivors (the defining consistent-hashing property)
        assert all(after[k] == f"daemon{n}" for k in moved)
        # and the moved fraction is ~1/(n+1), not ~all of them
        assert len(moved) <= 2.0 * len(keys) / (n + 1)

    @given(n=st.integers(2, 7), seed=st.integers(0, 10_000))
    @settings(max_examples=40, deadline=None)
    def test_removing_a_node_moves_only_its_orphans(self, n, seed):
        nodes = [f"daemon{i}" for i in range(n)]
        keys = _keys(seed)
        before = {k: HashRing(nodes).place(k) for k in keys}
        shrunk = HashRing(nodes)
        victim = shrunk.place(keys[0])  # remove a node that owns keys
        shrunk.remove(victim)
        for k in keys:
            if before[k] != victim:
                assert shrunk.place(k) == before[k]
            else:
                assert shrunk.place(k) != victim

    def test_preference_walk_covers_every_node_once(self):
        ring = HashRing([f"d{i}" for i in range(5)])
        pref = ring.preference("some-stream")
        assert sorted(pref) == sorted(ring.nodes)
        assert len(pref) == len(set(pref))

    def test_place_honors_accept_predicate(self):
        ring = HashRing(["a", "b", "c"])
        key = "stream-x"
        first = ring.place(key)
        second = ring.place(key, accept=lambda n: n != first)
        assert second is not None and second != first
        assert ring.place(key, accept=lambda n: False) is None

    def test_empty_ring_places_nowhere(self):
        assert HashRing().place("anything") is None


# --------------------------------------------------------------------- #
# placement predicate (gateway's view of one daemon)
# --------------------------------------------------------------------- #


class TestDaemonHandle:
    def _handle(self, tmp_path) -> DaemonHandle:
        return DaemonHandle("daemon0", tmp_path, FleetConfig(daemons=1))

    def test_accepts_without_snapshot_defers_to_admission(self, tmp_path):
        h = self._handle(tmp_path)
        assert h.state == UP and h.accepts(100.0)

    def test_headroom_gates_placement(self, tmp_path):
        h = self._handle(tmp_path)
        h.admission = {"headroom_mpps": 30.0}
        assert h.accepts(27.6)
        assert not h.accepts(30.1)

    def test_draining_and_down_are_excluded(self, tmp_path):
        h = self._handle(tmp_path)
        h.draining = True
        assert not h.accepts(1.0)
        h.draining = False
        h.state = DOWN
        assert not h.accepts(1.0)


# --------------------------------------------------------------------- #
# supervisor death hooks (the gateway's failover trigger)
# --------------------------------------------------------------------- #


class _FakeProc:
    def __init__(self, rc):
        self.rc = rc
        self.pid = 4242

    def poll(self):
        return self.rc


class TestSupervisorDeathHooks:
    def test_hook_fires_once_per_dead_child(self):
        sup = ClusterSupervisor(WallConfig())
        seen = []
        sup.add_death_hook(lambda name, rc: seen.append((name, rc)))
        sup.processes = {"dec0": _FakeProc(None), "dec1": _FakeProc(-9)}
        assert sup._poll_children() == "dec1"
        assert sup._poll_children() == "dec1"  # still dead, not re-notified
        assert seen == [("dec1", -9)]

    def test_clean_exit_is_not_a_death(self):
        sup = ClusterSupervisor(WallConfig())
        seen = []
        sup.add_death_hook(lambda name, rc: seen.append(name))
        sup.processes = {"dec0": _FakeProc(0)}
        assert sup._poll_children() is None
        assert seen == []

    def test_misbehaving_hook_cannot_kill_polling(self):
        sup = ClusterSupervisor(WallConfig())

        def bad_hook(name, rc):
            raise RuntimeError("hook bug")

        seen = []
        sup.add_death_hook(bad_hook)
        sup.add_death_hook(lambda name, rc: seen.append(name))
        sup.processes = {"dec1": _FakeProc(1)}
        assert sup._poll_children() == "dec1"
        assert seen == ["dec1"]


# --------------------------------------------------------------------- #
# gateway end to end, daemons in-process (tier 1)
# --------------------------------------------------------------------- #


def _fleet_config(**kw) -> FleetConfig:
    service = ServiceConfig(
        capacity_mpps=500.0,
        workers=2,
        # determinism: a ladder that never engages keeps digests stable
        enter_levels=(1e9, 1e9, 1e9),
    )
    base = dict(daemons=2, service=service, health_interval=0.1)
    base.update(kw)
    return FleetConfig(**base)


@pytest.fixture()
def fleet(tmp_path):
    """A 2-daemon fleet with the daemons as in-process services."""
    cfg = _fleet_config()
    gw = FleetGateway(tmp_path, cfg, spawn=False)
    services = []
    for i in range(cfg.daemons):
        name = f"daemon{i}"
        svc = WallService(tmp_path / name, cfg.daemon_config(i))
        svc.start()
        services.append(svc)
        gw.add_daemon(name, tmp_path / name)
    gw.start()
    yield gw, tmp_path
    gw.stop()
    for svc in services:
        svc.stop()


class TestFleetGateway:
    def test_ping_reports_fleet_role_and_daemons(self, fleet):
        gw, rundir = fleet
        with ServiceClient(rundir) as c:
            info = c.ping()
        assert info["role"] == "gateway"
        names = [d["name"] for d in info["daemons"]]
        assert names == ["daemon0", "daemon1"]
        deadline = time.monotonic() + 5.0
        while time.monotonic() < deadline:
            with ServiceClient(rundir) as c:
                info = c.ping()
            if info["capacity_mpps"] == 1000.0:  # both probed at least once
                break
            time.sleep(0.05)
        assert info["capacity_mpps"] == 1000.0

    def test_session_runs_to_completion_through_gateway(self, fleet):
        gw, rundir = fleet
        with ServiceClient(rundir) as c:
            r = c.submit(SPEC, name="through", n_frames=12)
            assert r["daemon"] in ("daemon0", "daemon1")
            final = c.wait(r["sid"], timeout=90.0)
        assert final["state"] == "completed"
        assert final["daemon"] == r["daemon"]
        assert final["failovers"] == 0
        assert final["failover_dropped"] == 0
        # daemon-local sids live in per-daemon namespaces (sid_offset)
        gs = gw.sessions[r["sid"]]
        index = int(r["daemon"][len("daemon"):])
        assert gs.sid // gw.config.sid_stride == index

    def test_placement_is_sticky_per_key(self, fleet):
        gw, rundir = fleet
        with ServiceClient(rundir) as c:
            replies = [
                c.request(
                    "submit",
                    {
                        "spec": SPEC.to_dict(),
                        "name": f"sticky{i}",
                        "placement_key": "same-wall-feed",
                        "n_frames": 6,
                    },
                )
                for i in range(3)
            ]
            for r in replies:
                c.wait(r["sid"], timeout=90.0)
        assert len({r["daemon"] for r in replies}) == 1

    def test_drained_daemon_is_excluded_until_undrained(self, fleet):
        gw, rundir = fleet

        def pinned_submit(client, name):
            return client.request(
                "submit",
                {
                    "spec": SPEC.to_dict(),
                    "name": name,
                    "placement_key": "pinned-wall-feed",
                    "n_frames": 6,
                },
            )

        with ServiceClient(rundir) as c:
            home = pinned_submit(c, "probe")["daemon"]
            c.request("drain", {"daemon": home, "reason": "rolling restart"})
            r2 = pinned_submit(c, "displaced")
            assert r2["daemon"] != home
            c.request("undrain", {"daemon": home})
            # the ring still prefers `home` for this key: placement returns
            r3 = pinned_submit(c, "returned")
            assert r3["daemon"] == home
            for sid in (r2["sid"], r3["sid"]):
                c.wait(sid, timeout=90.0)

    def test_list_rewrites_to_gateway_namespace(self, fleet):
        gw, rundir = fleet
        with ServiceClient(rundir) as c:
            r = c.submit(SPEC, name="listed", n_frames=6)
            final = c.wait(r["sid"], timeout=90.0)
            rows = c.list_sessions()
        assert final["output_digest"]
        row = next(row for row in rows if row["sid"] == r["sid"])
        assert row["daemon"] == r["daemon"]
        assert row["state"] == "completed"

    def test_gateway_trace_records_placement(self, fleet):
        gw, rundir = fleet
        with ServiceClient(rundir) as c:
            r = c.submit(SPEC, name="traced", n_frames=6)
            c.wait(r["sid"], timeout=90.0)
        events = read_trace_file(rundir / "gateway.trace.jsonl")
        placed = [e for e in events if e.event == "placement"]
        assert placed and placed[0].data["daemon"] == r["daemon"]


# --------------------------------------------------------------------- #
# failover (real daemon processes; SIGKILL mid-session)
# --------------------------------------------------------------------- #


@pytest.mark.integration
class TestFleetFailover:
    def test_sigkill_failover_resumes_bit_identical(self, tmp_path):
        """The ISSUE's acceptance oracle: a session killed on daemon A
        resumes on daemon B at the next I-picture, and its output digest
        equals a clean decode of the same bytes from that anchor on."""
        cfg = _fleet_config(health_interval=0.15)
        with FleetGateway(tmp_path, cfg) as gw:
            with ServiceClient(tmp_path) as c:
                r = c.submit(SPEC, name="victim", n_frames=36)
                gsid, home = r["sid"], r["daemon"]
                # wait until the victim has real progress, then kill home
                deadline = time.monotonic() + 30.0
                while time.monotonic() < deadline:
                    if c.status(gsid).get("processed", 0) >= 4:
                        break
                    time.sleep(0.05)
                gw.kill_daemon(home)
                final = c.wait(gsid, timeout=120.0)
            gs = gw.sessions[gsid]
        assert final["state"] == "completed"
        assert final["failovers"] == 1
        assert final["daemon"] != home
        assert gs.start_at > 0 and gs.start_at in gs.i_indices
        assert final["start_at"] == gs.start_at
        # dropped-picture accounting matches the resume gap
        assert final["failover_dropped"] == gs.failover_dropped > 0
        # bit-identity from the resume anchor onward
        assert final["output_digest"] == clean_decode_digest(
            gs.stream, start_at=gs.start_at
        )
        # the gateway trace carries the failover record
        events = read_trace_file(tmp_path / "gateway.trace.jsonl")
        fo = [e for e in events if e.event == "failover"]
        assert len(fo) == 1
        assert fo[0].data["from_daemon"] == home
        assert fo[0].data["to_daemon"] == final["daemon"]
        assert fo[0].data["resume_at"] == gs.start_at
        assert fo[0].data["dropped_pictures"] == final["failover_dropped"]

    def test_spawned_fleet_survives_daemon_loss_for_new_sessions(
        self, tmp_path
    ):
        cfg = _fleet_config(health_interval=0.15)
        with FleetGateway(tmp_path, cfg) as gw:
            with ServiceClient(tmp_path) as c:
                c.ping()
                gw.kill_daemon("daemon0")
                deadline = time.monotonic() + 15.0
                while time.monotonic() < deadline:
                    if gw.daemons["daemon0"].state == DOWN:
                        break
                    time.sleep(0.05)
                assert gw.daemons["daemon0"].state == DOWN
                r = c.submit(SPEC, name="survivor", n_frames=6)
                assert r["daemon"] == "daemon1"
                final = c.wait(r["sid"], timeout=90.0)
        assert final["state"] == "completed"
