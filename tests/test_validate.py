"""Stream conformance checker."""


from repro.bitstream import BitWriter
from repro.cli import main
from repro.mpeg2.constants import SEQUENCE_END_CODE
from repro.mpeg2.structures import SequenceHeader
from repro.mpeg2.validate import Severity, validate_stream


class TestValidStreams:
    def test_encoder_output_is_clean(self, small_stream):
        report = validate_stream(small_stream)
        assert report.ok, [str(f) for f in report.findings]
        assert report.pictures == 8
        assert report.macroblocks == 8 * (96 // 16) * (64 // 16)

    def test_ip_and_intra_streams(self, ip_stream, i_only_stream):
        assert validate_stream(ip_stream).ok
        assert validate_stream(i_only_stream).ok

    def test_rate_controlled_stream(self):
        from repro.mpeg2.encoder import EncoderConfig
        from repro.mpeg2.ratecontrol import RateControlledEncoder
        from repro.workloads.synthetic import fish_tank_frames

        data = RateControlledEncoder(
            EncoderConfig(gop_size=6, b_frames=2)
        ).encode(fish_tank_frames(96, 64, 8))
        assert validate_stream(data).ok


class TestBrokenStreams:
    def test_not_a_stream(self):
        report = validate_stream(b"hello world")
        assert not report.ok
        assert "sequence header" in str(report.errors()[0])

    def test_empty_sequence(self):
        bw = BitWriter()
        SequenceHeader(width=64, height=48).write(bw)
        bw.write_start_code(SEQUENCE_END_CODE)
        report = validate_stream(bw.getvalue())
        assert not report.ok
        assert any("no pictures" in str(f) for f in report.errors())

    def test_missing_end_code_warns(self, small_stream):
        report = validate_stream(small_stream[:-4])
        assert any(
            f.severity == Severity.WARNING and "sequence_end_code" in f.message
            for f in report.findings
        )

    def test_truncated_picture_detected(self, small_stream):
        report = validate_stream(small_stream[: len(small_stream) * 2 // 3])
        assert not report.ok or report.pictures < 8

    def test_corrupted_macroblock_coverage(self, small_stream):
        """Blanking a slice's payload breaks coverage or parsing — the
        validator must flag it, not pass it."""
        data = bytearray(small_stream)
        # find the 3rd slice start code of the first picture and zero 8 bytes
        idx = data.find(b"\x00\x00\x01\x03")
        assert idx > 0
        data[idx + 5 : idx + 13] = b"\x55" * 8
        report = validate_stream(bytes(data))
        assert not report.ok


class TestCLI:
    def test_validate_command_ok(self, tmp_path, small_stream, capsys):
        p = tmp_path / "ok.m2v"
        p.write_bytes(small_stream)
        assert main(["validate", "-i", str(p)]) == 0
        assert "OK" in capsys.readouterr().out

    def test_validate_command_error(self, tmp_path, capsys):
        p = tmp_path / "bad.m2v"
        p.write_bytes(b"\x00" * 100)
        assert main(["validate", "-i", str(p)]) == 1
