"""Stream models (Table 4) and synthetic content generators."""

import numpy as np
import pytest

from repro.mpeg2.constants import PictureType
from repro.wall.layout import TileLayout
from repro.workloads.streams import (
    TABLE4_STREAMS,
    DetailProfile,
    StreamSpec,
    stream_by_id,
    table4_rows,
)
from repro.workloads.synthetic import (
    fish_tank_frames,
    localized_detail_frames,
    moving_pattern_frames,
)


class TestTable4:
    def test_sixteen_streams(self):
        assert len(TABLE4_STREAMS) == 16
        assert [s.sid for s in TABLE4_STREAMS] == list(range(1, 17))

    def test_paper_prose_anchors(self):
        """Resolutions the paper states in prose."""
        assert (stream_by_id(1).width, stream_by_id(1).height) == (720, 480)
        assert stream_by_id(8).width == 1280  # 720p fish tank
        assert stream_by_id(10).width == 1920  # 1080i broadcast
        s16 = stream_by_id(16)
        assert (s16.width, s16.height) == (3840, 2800)
        # "about 100 Mbps for the highest resolution Orion flyby at 30 fps"
        assert 80 < s16.bit_rate_mbps < 130

    def test_dvd_streams_higher_bpp(self):
        for sid in (1, 2, 3):
            assert stream_by_id(sid).bpp > 0.4
        for sid in range(4, 17):
            assert stream_by_id(sid).bpp == pytest.approx(0.30)

    def test_240_frames(self):
        assert all(s.n_frames == 240 for s in TABLE4_STREAMS)

    def test_mb_alignment(self):
        for s in TABLE4_STREAMS:
            assert s.width % 16 == 0 and s.height % 16 == 0

    def test_table_rows(self):
        rows = table4_rows()
        assert len(rows) == 16
        assert rows[15]["resolution"] == "3840x2800"
        assert rows[0]["bpp"] > rows[4]["bpp"]

    def test_stream_by_id_unknown(self):
        with pytest.raises(KeyError):
            stream_by_id(17)


class TestWireAndDemand:
    """The service ships specs over the wire and prices them by demand."""

    def test_to_dict_from_dict_roundtrip(self):
        for s in TABLE4_STREAMS:
            again = StreamSpec.from_dict(s.to_dict())
            assert again == s

    def test_roundtrip_survives_json(self):
        import json

        s = stream_by_id(13)  # orion1 carries a detail profile
        again = StreamSpec.from_dict(json.loads(json.dumps(s.to_dict())))
        assert again.detail == s.detail
        assert again == s

    def test_plain_spec_omits_detail(self):
        d = stream_by_id(5).to_dict()
        assert "detail" not in d  # uniform streams stay compact on the wire

    def test_demand_is_pixel_rate(self):
        s = stream_by_id(5)  # 1280x720 @ 30
        assert s.demand_mpps == pytest.approx(1280 * 720 * 30 / 1e6)
        # demand is decode work: independent of compression ratio
        assert stream_by_id(1).demand_mpps == stream_by_id(2).demand_mpps

    def test_bit_rate_scales_with_bpp_and_fps(self):
        s = stream_by_id(5)
        assert s.bit_rate_mbps == pytest.approx(1280 * 720 * 0.30 * 30 / 1e6)
        # fish4 is the same raster at 60 fps: twice the rate and demand
        assert stream_by_id(8).bit_rate_mbps == pytest.approx(
            2 * s.bit_rate_mbps
        )
        assert stream_by_id(8).demand_mpps == pytest.approx(2 * s.demand_mpps)


class TestPictureModel:
    def test_gop_pattern(self):
        s = stream_by_id(8)
        types = s.picture_types(13)
        assert types[0] == PictureType.I
        assert types[12] == PictureType.I  # gop_size 12
        assert types[3] == PictureType.P
        assert types[1] == types[2] == PictureType.B

    def test_picture_bytes_average_out(self):
        s = stream_by_id(8)
        types = s.picture_types()
        total = sum(s.picture_bytes(t) for t in types)
        assert total / len(types) == pytest.approx(s.avg_frame_bytes)

    def test_weights_sum_to_one(self):
        for s in TABLE4_STREAMS:
            assert s.mb_bit_weights().sum() == pytest.approx(1.0)

    def test_detail_concentrates_bits(self):
        uniform = StreamSpec(99, "u", 640, 480, 30, 0.3, 5.0)
        hot = StreamSpec(
            98, "h", 640, 480, 30, 0.3, 5.0,
            detail=DetailProfile(center=(0.25, 0.25), concentration=0.6),
        )
        wu, wh = uniform.mb_bit_weights(), hot.mb_bit_weights()
        assert wu.std() < 1e-12
        assert wh.max() > 3 * wh.min()

    def test_tile_workloads_account_overlap(self):
        s = stream_by_id(10)
        flat = TileLayout(s.width, s.height, 2, 2, overlap=0)
        ov = TileLayout(s.width, s.height, 2, 2, overlap=32)
        mbs_flat = sum(w["mbs"] for w in s.tile_workloads(flat).values())
        mbs_ov = sum(w["mbs"] for w in s.tile_workloads(ov).values())
        assert mbs_ov > mbs_flat >= s.mbs_per_frame


class TestScaling:
    def test_scaled_preserves_shape(self):
        s = stream_by_id(16).scaled(192)
        assert s.width <= 192
        assert s.width % 16 == 0 and s.height % 16 == 0
        # aspect ratio roughly preserved
        orig = stream_by_id(16)
        assert s.height / s.width == pytest.approx(orig.height / orig.width, rel=0.2)

    def test_small_stream_not_scaled(self):
        s = stream_by_id(1)
        assert s.scaled(720) is s

    def test_synthetic_frames_generated(self):
        frames = stream_by_id(13).synthetic_frames(3, max_width=96)
        assert len(frames) == 3
        assert frames[0].width <= 96


class TestSyntheticGenerators:
    @pytest.mark.parametrize(
        "gen", [moving_pattern_frames, localized_detail_frames, fish_tank_frames]
    )
    def test_valid_frames(self, gen):
        frames = gen(96, 64, 4)
        assert len(frames) == 4
        for f in frames:
            assert (f.width, f.height) == (96, 64)
            assert f.y.dtype == np.uint8

    def test_motion_present(self):
        frames = moving_pattern_frames(96, 64, 3)
        assert frames[0].max_abs_diff(frames[1]) > 10

    def test_detail_is_localized(self):
        frames = localized_detail_frames(128, 96, 2, center=(0.25, 0.25))
        y = frames[0].y.astype(float)
        # variance in the detail quadrant dwarfs the far quadrant
        hot = y[:48, :64].var()
        cold = y[48:, 64:].var()
        assert hot > 5 * cold

    def test_deterministic_by_seed(self):
        a = fish_tank_frames(96, 64, 3, seed=7)
        b = fish_tank_frames(96, 64, 3, seed=7)
        for x, y in zip(a, b):
            assert x.max_abs_diff(y) == 0
