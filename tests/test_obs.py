"""The live observability plane: metric families, Prometheus exposition,
SLO burn-rate tracking, end-to-end latency stamps, ``VERB_STATS`` on the
daemon and the fleet gateway, the HTTP listener, and the ``repro top``
dashboard.

The histogram overflow-bucket regression and the closed-channel rollup
are covered here too: both are load-bearing for the quantiles and wire
totals the obs plane exposes.
"""

import json
import time
import urllib.request
from pathlib import Path

import pytest

from repro.obs.http import MetricsHTTPServer
from repro.obs.plane import empty_snapshot, obs_snapshot, snapshot_text
from repro.obs.slo import SLOConfig, SLOTracker
from repro.obs.top import render, run_top
from repro.perf.export import build_report, render_report
from repro.perf.metrics import FamilyRegistry, encode_prometheus, families
from repro.perf.telemetry import (
    Histogram,
    channel_snapshot,
    registry,
    reset_closed_channels,
    retire_channel,
)
from repro.perf.trace import TraceEvent
from repro.service import ServiceClient, ServiceConfig, WallService
from repro.workloads.streams import stream_by_id

SPEC = stream_by_id(5)  # fish1: 1280x720@30


# --------------------------------------------------------------------- #
# histogram overflow bucket (quantile regression)
# --------------------------------------------------------------------- #


class TestHistogramOverflow:
    def test_overflow_quantiles_do_not_collapse_to_last_edge(self):
        """Regression: with most mass past the final bound, quantiles in
        the +Inf bucket must interpolate between the overflowing values,
        not from the last finite edge (which dragged p50 toward 1.0)."""
        h = Histogram(bounds=(1.0,))
        for v in (0.01, 5.0, 5.0, 5.0):
            h.observe(v)
        assert h.overflow == 3
        assert h.percentile(50) == 5.0
        assert h.percentile(99) == 5.0

    def test_buckets_expose_inf_edge_with_total_count(self):
        h = Histogram(bounds=(1.0, 2.0))
        for v in (0.5, 1.5, 99.0):
            h.observe(v)
        b = h.buckets()
        assert b[-1] == (float("inf"), 3)
        assert b[0] == (1.0, 1) and b[1] == (2.0, 2)

    def test_to_dict_reports_overflow_count(self):
        h = Histogram(bounds=(1.0,))
        h.observe(10.0)
        d = h.to_dict()
        assert d["overflow"] == 1
        h2 = Histogram(bounds=(1.0,))
        h2.observe(0.5)
        assert "overflow" not in h2.to_dict()

    def test_interpolation_within_overflow_range(self):
        h = Histogram(bounds=(1.0,))
        for v in (3.0, 3.0, 9.0, 9.0):
            h.observe(v)
        # quantiles stay inside [overflow_min, max]
        assert 3.0 <= h.percentile(50) <= 9.0
        assert h.percentile(1) >= 3.0


# --------------------------------------------------------------------- #
# labeled metric families
# --------------------------------------------------------------------- #


class TestMetricFamilies:
    def test_counter_children_keyed_by_labels(self):
        reg = FamilyRegistry()
        c = reg.counter("drops_total", labelnames=("rung",))
        c.inc(rung="skip-b")
        c.inc(2, rung="skip-b")
        c.inc(rung="half-res")
        snap = reg.snapshot()["drops_total"]
        assert snap["kind"] == "counter"
        by_rung = {s["labels"]["rung"]: s["value"] for s in snap["samples"]}
        assert by_rung == {"skip-b": 3, "half-res": 1}

    def test_label_mismatch_rejected(self):
        reg = FamilyRegistry()
        g = reg.gauge("x", labelnames=("a",))
        with pytest.raises(ValueError, match="labels"):
            g.set(1.0, b="no")

    def test_kind_mismatch_rejected(self):
        reg = FamilyRegistry()
        reg.counter("dual")
        with pytest.raises(ValueError, match="already registered"):
            reg.gauge("dual")

    def test_histogram_family_snapshot_has_buckets(self):
        reg = FamilyRegistry()
        hf = reg.histogram("lat", labelnames=("hop",), bounds=(0.1, 1.0))
        hf.observe(0.05, hop="split")
        hf.observe(5.0, hop="split")
        sample = reg.snapshot()["lat"]["samples"][0]
        hist = sample["hist"]
        assert hist["count"] == 2
        assert hist["buckets"][-1] == ["+Inf", 2]

    def test_global_registry_is_a_singleton(self):
        assert families() is families()


class TestPrometheusEncoding:
    def test_families_flat_metrics_and_channels_render(self):
        snap = {
            "families": {
                "repro_drops_total": {
                    "kind": "counter",
                    "help": "session drops",
                    "labelnames": ["rung"],
                    "samples": [
                        {"labels": {"rung": "skip-b"}, "value": 4},
                    ],
                },
                "repro_lat": {
                    "kind": "histogram",
                    "help": "",
                    "labelnames": [],
                    "samples": [
                        {
                            "labels": {},
                            "hist": {
                                "count": 2,
                                "sum": 1.5,
                                "buckets": [[0.1, 1], ["+Inf", 2]],
                            },
                        }
                    ],
                },
            },
            "metrics": {
                "counters": {"frames.in": 7},
                "gauges": {"pool.leases": 3},
                "histograms": {
                    "e2e.latency": {"count": 2, "sum": 0.2, "p50": 0.1},
                },
            },
            "channels": {"root->split0": {"sent_bytes": 123}},
        }
        text = encode_prometheus(snap)
        assert '# TYPE repro_drops_total counter' in text
        assert 'repro_drops_total{rung="skip-b"} 4' in text
        assert 'repro_lat_bucket{le="+Inf"} 2' in text
        assert "repro_lat_count 2" in text
        assert "repro_frames_in 7" in text
        assert "repro_pool_leases 3" in text
        assert 'repro_e2e_latency_seconds{quantile="0.5"} 0.1' in text
        assert 'repro_channel_sent_bytes{channel="root->split0"} 123' in text
        assert text.endswith("\n")

    def test_empty_snapshot_encodes_to_empty_text(self):
        snap = empty_snapshot()
        assert snapshot_text(snap) == ""
        assert set(snap) == {"ts", "families", "metrics", "channels"}


# --------------------------------------------------------------------- #
# SLO burn rates (fake clock)
# --------------------------------------------------------------------- #


class TestSLOTracker:
    CFG = SLOConfig(
        deadline_miss_target=0.1, drop_rate_target=0.1, windows=(5.0, 30.0)
    )

    def test_config_validation(self):
        with pytest.raises(ValueError):
            SLOConfig(deadline_miss_target=0.0)
        with pytest.raises(ValueError):
            SLOConfig(windows=(30.0, 5.0))
        with pytest.raises(ValueError):
            SLOConfig(burn_alert=0.0)

    def test_healthy_session_never_alerts(self):
        tr = SLOTracker(self.CFG)
        for i in range(100):
            tr.record(now=float(i) * 0.1, late=False, dropped=False)
        assert tr.worst_burn(10.0) == 0.0
        assert not tr.should_alert(10.0)

    def test_all_late_burns_at_inverse_target(self):
        tr = SLOTracker(self.CFG)
        for i in range(50):
            tr.record(now=float(i) * 0.1, late=True, dropped=False)
        # 100% late against a 10% budget = 10x burn on every window
        assert tr.worst_burn(5.0) == pytest.approx(10.0)
        assert tr.should_alert(5.0)
        burns = tr.alerting_burns(5.0)
        assert burns["deadline"] == pytest.approx(10.0)
        assert burns["drop"] == 0.0

    def test_multi_window_gate_filters_old_blips(self):
        """A burst that ended long ago still sits in the slow window but
        the fast window has recovered — the alertable burn (min across
        windows) must drop back under the threshold."""
        tr = SLOTracker(self.CFG)
        for i in range(10):
            tr.record(now=float(i), late=True, dropped=False)
        for i in range(10, 28):
            tr.record(now=float(i), late=False, dropped=False)
        now = 27.0
        rates = tr.burn_rates(now)
        assert rates["deadline"]["30"] > 1.0  # slow window still remembers
        assert rates["deadline"]["5"] == 0.0  # fast window recovered
        assert not tr.should_alert(now)

    def test_events_pruned_past_slowest_window(self):
        tr = SLOTracker(self.CFG)
        for i in range(200):
            tr.record(now=float(i), late=False, dropped=True)
        assert tr.recorded == 200
        assert len(tr._events) <= 32  # 30 s window + the boundary

    def test_to_dict_is_json_safe(self):
        tr = SLOTracker(self.CFG)
        tr.record(1.0, late=True, dropped=True)
        d = tr.to_dict(1.0)
        json.dumps(d)
        assert set(d) == {"worst_burn", "burns", "windows_s", "targets", "alerting"}
        assert d["alerting"] is True


# --------------------------------------------------------------------- #
# closed-channel rollup
# --------------------------------------------------------------------- #


class TestChannelRollup:
    class _FakeStats:
        def __init__(self, sent, received):
            self._d = {"sent_bytes": sent, "received_bytes": received}

        def to_dict(self):
            return dict(self._d)

    class _FakeChannel:
        def __init__(self, name, sent=0, received=0):
            self.name = name
            self.stats = TestChannelRollup._FakeStats(sent, received)

    def test_close_reopen_accumulates_under_one_name(self):
        reset_closed_channels()
        retire_channel(self._FakeChannel("dec0", sent=100))
        retire_channel(self._FakeChannel("dec0", sent=50))
        snap = channel_snapshot()
        assert snap["dec0"]["sent_bytes"] == 150

    def test_rollup_isolated_by_conftest_fixture(self):
        # the autouse fixture must have cleared the previous test's totals
        assert "dec0" not in channel_snapshot()


# --------------------------------------------------------------------- #
# end-to-end latency assembly and report folding
# --------------------------------------------------------------------- #


class _CapturingTracer:
    def __init__(self):
        self.events = []

    def emit(self, event, picture=-1, **data):
        self.events.append((event, picture, data))


class TestE2EAssembly:
    def test_hops_telescope_to_the_e2e_total(self):
        from repro.cluster.runtime.supervisor import ClusterSupervisor

        t0 = time.time() - 0.5
        crops = {
            0: (None, None, None, None, None, (t0, t0 + 0.1, t0 + 0.3)),
            1: (None, None, None, None, None, (t0, t0 + 0.12, t0 + 0.25)),
        }
        tracer = _CapturingTracer()
        registry().prune("e2e.")
        ClusterSupervisor._emit_e2e(tracer, 7, crops)
        (event, picture, data), = tracer.events
        assert event == "e2e" and picture == 7
        hops = data["split_s"] + data["decode_s"] + data["collect_s"]
        assert hops == pytest.approx(data["e2e_s"], abs=5e-6)
        # the late decoder (t0+0.3) and late splitter (t0+0.12) dominate
        assert data["split_s"] == pytest.approx(0.12, abs=1e-6)
        assert data["decode_s"] == pytest.approx(0.18, abs=1e-6)
        assert registry().histogram("e2e.latency").count == 1

    def test_unstamped_crops_are_skipped(self):
        from repro.cluster.runtime.supervisor import ClusterSupervisor

        tracer = _CapturingTracer()
        crops = {0: (None, None, None, None, None, (0.0, 0.0, 0.0))}
        ClusterSupervisor._emit_e2e(tracer, 0, crops)
        assert tracer.events == []


class TestReportFolding:
    @staticmethod
    def _events():
        evs = [
            TraceEvent(
                ts=1.0 + i * 0.04,
                proc="collector",
                event="e2e",
                picture=i,
                data={
                    "e2e_s": 0.030 + 0.001 * i,
                    "split_s": 0.004,
                    "decode_s": 0.020 + 0.001 * i,
                    "collect_s": 0.006,
                    "critical": "decode",
                },
            )
            for i in range(5)
        ]
        evs.append(
            TraceEvent(
                ts=2.0,
                proc="svc",
                event="slo_burn",
                picture=40,
                data={"sid": 3, "burn": 4.2, "windows_s": [5.0, 30.0]},
            )
        )
        return evs

    def test_e2e_stats_agree_with_hop_attribution(self):
        report = build_report(self._events())
        stats = report.e2e_stats()
        assert stats["count"] == 5
        hop_total = sum(stats["hops_s"].values())
        # acceptance: span attribution within 5% of the e2e totals
        assert hop_total == pytest.approx(stats["sum_s"], rel=0.05)
        assert stats["critical"] == {"decode": 5}
        assert stats["p50_ms"] > 0

    def test_render_has_e2e_and_slo_sections(self):
        text = render_report(build_report(self._events()))
        assert "End-to-end picture latency" in text
        assert "Critical-path attribution" in text
        assert "SLO burn alerts" in text
        assert "4.2" in text


# --------------------------------------------------------------------- #
# daemon VERB_STATS, HTTP listener, and the dashboard
# --------------------------------------------------------------------- #


@pytest.fixture()
def obs_service(tmp_path):
    cfg = ServiceConfig(
        capacity_mpps=400.0,
        workers=2,
        metrics_port=0,
        enter_levels=(1e9, 1e9, 1e9),
    )
    svc = WallService(tmp_path, cfg)
    svc.start()
    yield svc, tmp_path
    svc.stop()


class TestDaemonStats:
    def test_stats_verb_serves_sessions_and_slo(self, obs_service):
        svc, rundir = obs_service
        with ServiceClient(rundir) as c:
            sid = c.submit(SPEC, name="obs", n_frames=8)["sid"]
            final = c.wait(sid, timeout=90.0)
            reply = c.stats()
        assert final["state"] == "completed"
        snap = reply["stats"]
        assert snap["role"] == "daemon"
        assert {"families", "metrics", "channels", "admission", "slo"} <= set(snap)
        rows = snap["sessions"]
        assert any(r["name"] == "obs" for r in rows)
        row = next(r for r in rows if r["name"] == "obs")
        assert {"fps", "latency_p95_ms", "slo", "progress"} <= set(row)
        assert row["slo"]["worst_burn"] >= 0.0

    def test_prometheus_format_adds_text(self, obs_service):
        svc, rundir = obs_service
        with ServiceClient(rundir) as c:
            reply = c.stats(format="prometheus")
        assert "# TYPE repro_admission_headroom_mpps gauge" in reply["text"]

    def test_stats_counters_monotonic_across_scrapes(self, obs_service):
        svc, rundir = obs_service
        with ServiceClient(rundir) as c:
            sid = c.submit(SPEC, name="mono", n_frames=8)["sid"]
            a = c.stats()["stats"]["metrics"]["counters"]
            c.wait(sid, timeout=90.0)
            b = c.stats()["stats"]["metrics"]["counters"]
        # per-session counters are pruned at session teardown by design;
        # everything else must be monotonic across scrapes
        for name, v in a.items():
            if name.startswith("session."):
                continue
            assert b.get(name, 0) >= v, name

    def test_http_listener_serves_metrics(self, obs_service):
        svc, rundir = obs_service
        port = int((rundir / "metrics.port").read_text().strip())
        base = f"http://127.0.0.1:{port}"
        with urllib.request.urlopen(f"{base}/healthz", timeout=5.0) as r:
            assert r.read() == b"ok\n"
        with urllib.request.urlopen(f"{base}/metrics.json", timeout=5.0) as r:
            doc = json.loads(r.read())
        assert doc["role"] == "daemon"
        with urllib.request.urlopen(f"{base}/metrics", timeout=5.0) as r:
            body = r.read().decode()
        assert "# TYPE" in body

    def test_top_once_against_live_daemon(self, obs_service, capsys):
        svc, rundir = obs_service
        with ServiceClient(rundir) as c:
            sid = c.submit(SPEC, name="topsmoke", n_frames=8)["sid"]
            c.wait(sid, timeout=90.0)
        rc = run_top(Path(rundir), count=1, clear=False)
        out = capsys.readouterr().out
        assert rc == 0
        assert "repro top @" in out
        assert "topsmoke" in out

    def test_top_fails_cleanly_without_a_daemon(self, tmp_path, capsys):
        assert run_top(tmp_path, count=1, clear=False) == 1


class TestTelemetryKillSwitch:
    def test_stats_answer_is_empty_not_an_error(self, tmp_path):
        cfg = ServiceConfig(capacity_mpps=200.0, workers=1, telemetry=False)
        with WallService(tmp_path, cfg) as svc:
            with ServiceClient(tmp_path) as c:
                reply = c.stats(format="prometheus")
        snap = reply["stats"]
        assert snap["telemetry"] is False
        assert snap["families"] == {} and snap["channels"] == {}
        assert snap["sessions"] == []
        assert reply["text"] == ""
        # the dashboard renders the dark snapshot without erroring
        frame = render(reply)
        assert "telemetry disabled" in frame


class TestMetricsHTTPServerUnit:
    def test_ephemeral_port_and_endpoints(self):
        srv = MetricsHTTPServer(lambda: obs_snapshot(extra={"role": "t"}))
        try:
            assert srv.port > 0
            with urllib.request.urlopen(
                f"{srv.address}/metrics.json", timeout=5.0
            ) as r:
                assert json.loads(r.read())["role"] == "t"
            with pytest.raises(urllib.error.HTTPError):
                urllib.request.urlopen(f"{srv.address}/nope", timeout=5.0)
        finally:
            srv.stop()


# --------------------------------------------------------------------- #
# dashboard rendering (fabricated replies)
# --------------------------------------------------------------------- #


class TestTopRender:
    def test_gateway_frame_lists_daemons_and_sessions(self):
        reply = {
            "stats": {
                "role": "gateway",
                "fleet": {
                    "capacity_mpps": 800.0,
                    "active_demand_mpps": 55.2,
                    "daemons_up": 2,
                    "failovers": 1,
                    "worst_burn": 2.5,
                },
                "daemons": {
                    "daemon0": {
                        "admission": {"headroom_mpps": 344.8, "queued": 0},
                        "slo": {"worst_burn": 2.5},
                        "sessions": [
                            {
                                "sid": 1000001,
                                "name": "fish1",
                                "state": "running",
                                "progress": 0.5,
                                "fps": 29.9,
                                "latency_p95_ms": 12.0,
                                "dropped_b": 2,
                                "dropped_p": 0,
                                "level": 1,
                                "slo": {"worst_burn": 2.5, "alerting": True},
                            }
                        ],
                    },
                    "daemon1": {},
                },
            }
        }
        frame = render(reply)
        assert "2 daemon(s) up" in frame
        assert "1 failover(s)" in frame
        assert "daemon0" in frame and "daemon1" in frame
        assert "no stats yet" in frame  # daemon1 not yet scraped
        assert "2.50!" in frame  # alerting burn is flagged
        assert "fish1" in frame and "50%" in frame

    def test_single_daemon_frame_without_sessions(self):
        frame = render({"stats": {"role": "daemon", "name": "d0", "sessions": []}})
        assert "single daemon" in frame
        assert "(no sessions)" in frame


# --------------------------------------------------------------------- #
# gateway VERB_STATS (fleet rollup from the health-loop cache)
# --------------------------------------------------------------------- #


@pytest.fixture()
def obs_fleet(tmp_path):
    """A 2-daemon fleet with in-process daemons and a fast stats cadence."""
    from repro.fleet import FleetConfig, FleetGateway

    service = ServiceConfig(
        capacity_mpps=500.0,
        workers=2,
        enter_levels=(1e9, 1e9, 1e9),
    )
    cfg = FleetConfig(
        daemons=2, service=service, health_interval=0.1, stats_interval=0.1
    )
    gw = FleetGateway(tmp_path, cfg, spawn=False)
    services = []
    for i in range(cfg.daemons):
        name = f"daemon{i}"
        svc = WallService(tmp_path / name, cfg.daemon_config(i))
        svc.start()
        services.append(svc)
        gw.add_daemon(name, tmp_path / name)
    gw.start()
    yield gw, tmp_path
    gw.stop()
    for svc in services:
        svc.stop()


def _wait_for_daemon_stats(rundir, names, timeout=10.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        with ServiceClient(rundir) as c:
            snap = c.stats()["stats"]
        daemons = snap.get("daemons", {})
        if all(daemons.get(n) for n in names):
            return snap
        time.sleep(0.05)
    raise AssertionError("gateway never cached stats for all daemons")


class TestGatewayStats:
    def test_fleet_rollup_and_cached_daemon_snapshots(self, obs_fleet):
        gw, rundir = obs_fleet
        with ServiceClient(rundir) as c:
            sid = c.submit(SPEC, name="fleetobs", n_frames=8)["sid"]
            final = c.wait(sid, timeout=90.0)
        assert final["state"] == "completed"
        snap = _wait_for_daemon_stats(rundir, ["daemon0", "daemon1"])
        assert snap["role"] == "gateway"
        fleet = snap["fleet"]
        assert fleet["capacity_mpps"] == 1000.0
        assert fleet["daemons_up"] == 2
        assert fleet["worst_burn"] >= 0.0
        # per-daemon cached snapshots answer the fleet-wide question live:
        # headroom, sessions, and SLO burn per daemon, from one scrape
        for name in ("daemon0", "daemon1"):
            d = snap["daemons"][name]
            assert "admission" in d and "slo" in d and "sessions" in d
        all_rows = [
            r for d in snap["daemons"].values() for r in d.get("sessions", [])
        ]
        assert any(r["name"] == "fleetobs" for r in all_rows)

    def test_gateway_prometheus_text_has_fleet_families(self, obs_fleet):
        gw, rundir = obs_fleet
        with ServiceClient(rundir) as c:
            reply = c.stats(format="prometheus")
        text = reply["text"]
        assert "repro_fleet_capacity_mpps" in text
        assert "repro_fleet_daemons_up" in text
        assert "repro_fleet_worst_burn" in text

    def test_top_renders_the_fleet_view(self, obs_fleet, capsys):
        gw, rundir = obs_fleet
        _wait_for_daemon_stats(rundir, ["daemon0", "daemon1"])
        rc = run_top(Path(rundir), count=1, clear=False)
        out = capsys.readouterr().out
        assert rc == 0
        assert "fleet:" in out
        assert "daemon0" in out and "daemon1" in out


# --------------------------------------------------------------------- #
# trace-report --follow (live tailing)
# --------------------------------------------------------------------- #


class TestTraceReportFollow:
    def test_follow_renders_once_and_exits(self, tmp_path, capsys):
        from repro.cli import main
        from repro.perf.trace import TRACE_SUFFIX

        path = tmp_path / f"collector{TRACE_SUFFIX}"
        evs = [
            TraceEvent(
                ts=1.0 + 0.04 * i,
                proc="collector",
                event="e2e",
                picture=i,
                data={
                    "e2e_s": 0.03,
                    "split_s": 0.005,
                    "decode_s": 0.02,
                    "collect_s": 0.005,
                    "critical": "decode",
                },
            )
            for i in range(3)
        ]
        path.write_text("".join(e.to_json() + "\n" for e in evs))
        rc = main(
            [
                "trace-report", str(tmp_path),
                "--follow", "--iterations", "1", "--interval", "0.01",
            ]
        )
        out = capsys.readouterr().out
        assert rc == 0
        assert "End-to-end picture latency" in out
