"""Shared fixtures: small synthetic clips and encoded streams.

Encoding is the slow part of the functional tests, so streams are encoded
once per session and shared; tests must treat them as immutable.
"""

from __future__ import annotations

import pytest

from repro.mpeg2.encoder import Encoder, EncoderConfig
from repro.mpeg2.frames import Frame
from repro.workloads.synthetic import (
    fish_tank_frames,
    localized_detail_frames,
    moving_pattern_frames,
)


def make_frames(width=96, height=64, n=8, kind="pattern", seed=0):
    gen = {
        "pattern": moving_pattern_frames,
        "detail": localized_detail_frames,
        "fish": fish_tank_frames,
    }[kind]
    return gen(width, height, n, seed=seed) if kind != "detail" else gen(
        width, height, n, seed=seed
    )


@pytest.fixture(autouse=True)
def _fresh_channel_rollup():
    """The closed-channel stats rollup is process-global and cumulative by
    design; tests must not see the previous test's wire totals."""
    from repro.perf.telemetry import reset_closed_channels

    reset_closed_channels()
    yield
    reset_closed_channels()


@pytest.fixture(scope="session")
def small_frames():
    """8 frames of 96x64 panning content."""
    return make_frames()


@pytest.fixture(scope="session")
def small_stream(small_frames):
    """Encoded IBBP stream of the small clip."""
    enc = Encoder(EncoderConfig(gop_size=6, b_frames=2, search_range=7))
    return enc.encode(small_frames)


@pytest.fixture(scope="session")
def ip_stream(small_frames):
    """I/P-only stream (no B pictures)."""
    enc = Encoder(EncoderConfig(gop_size=4, b_frames=0, search_range=7))
    return enc.encode(small_frames)


@pytest.fixture(scope="session")
def i_only_stream(small_frames):
    """All-intra stream."""
    enc = Encoder(EncoderConfig(gop_size=1, b_frames=0))
    return enc.encode(small_frames[:4])


@pytest.fixture(scope="session")
def detail_frames():
    """Localized-detail content (Orion-like), 128x96."""
    return make_frames(128, 96, 7, kind="detail", seed=3)


@pytest.fixture(scope="session")
def detail_stream(detail_frames):
    enc = Encoder(EncoderConfig(gop_size=7, b_frames=2, search_range=7))
    return enc.encode(detail_frames)


@pytest.fixture(scope="session")
def flat_frame():
    return Frame.blank(64, 48, y=100, c=128)


def assert_frames_equal(a, b, context=""):
    __tracebackhide__ = True
    assert a.y.shape == b.y.shape, f"{context}: luma shapes differ"
    diff = a.max_abs_diff(b)
    assert diff == 0, f"{context}: frames differ by up to {diff}"
