"""Socket transport: framing, ordering, flow control, failure detection."""

import threading
import time

import pytest

from repro.net.channel import (
    ChannelClosed,
    ChannelTimeout,
    ConnectPolicy,
    CreditGate,
    CreditTimeout,
    Listener,
    PeerDeadError,
    connect,
)


@pytest.fixture(params=["unix", "tcp"])
def pair(request, tmp_path):
    """A connected (client, server) channel pair over each transport."""
    if request.param == "unix":
        lst = Listener(("unix", str(tmp_path / "chan.sock")))
    else:
        lst = Listener(("tcp", "127.0.0.1", 0))
    client = connect(lst.address, timeout=5, name="client")
    server = lst.accept(timeout=5)
    server.name = "server"
    yield client, server
    client.close()
    server.close()
    lst.close()


class TestFraming:
    def test_roundtrip_headers_and_payload(self, pair):
        client, server = pair
        payload = bytes(range(256)) * 17
        client.send(7, payload, picture=42, sender=3)
        msg = server.recv(timeout=5)
        assert (msg.type, msg.sender, msg.picture) == (7, 3, 42)
        assert msg.payload == payload

    def test_buffer_list_payload_arrives_joined(self, pair):
        """Vectored send: a list of buffers (bytes / bytearray / typed
        memoryviews, including empty ones) arrives as one contiguous
        payload, identical to sending the joined bytes."""
        import numpy as np

        client, server = pair
        arr = np.arange(300, dtype=np.int64)
        parts = [b"head", b"", bytearray(b"mid"), arr.data, memoryview(b"tail")]
        client.send(5, parts, picture=1)
        msg = server.recv(timeout=5)
        assert msg.payload == b"head" + b"mid" + arr.tobytes() + b"tail"

    def test_empty_payload_and_negative_picture(self, pair):
        client, server = pair
        client.send(9)
        msg = server.recv(timeout=5)
        assert (msg.type, msg.picture, msg.payload) == (9, -1, b"")

    def test_bidirectional(self, pair):
        client, server = pair
        client.send(1, b"ping")
        server.send(2, b"pong")
        assert server.recv(timeout=5).payload == b"ping"
        assert client.recv(timeout=5).payload == b"pong"

    def test_many_messages_in_order(self, pair):
        """Per-sender delivery is in send order (the GM-like guarantee).

        The sender streams from its own thread: with no reader draining,
        an unthrottled sender would rightly block once the kernel socket
        buffer fills — the transport has no hidden infinite buffering.
        """
        client, server = pair
        n = 500

        def blast():
            for i in range(n):
                client.send(4, f"msg{i}".encode(), picture=i)

        t = threading.Thread(target=blast)
        t.start()
        for i in range(n):
            msg = server.recv(timeout=5)
            assert msg.picture == i
            assert msg.payload == f"msg{i}".encode()
        t.join(timeout=5)

    def test_send_timeout_when_receiver_stalls(self, pair):
        """A bounded send fails cleanly when the peer never drains."""
        client, _server = pair
        big = b"\0" * (1 << 20)
        with pytest.raises(ChannelTimeout):
            for _ in range(64):  # kernel buffers absorb the first few
                client.send(1, big, timeout=0.3)


class TestChannelStats:
    def test_byte_counters_cover_header_and_payload(self, pair):
        client, server = pair
        payload = b"z" * 1000
        client.send(3, payload)
        msg = server.recv(timeout=5)
        assert msg.payload == payload
        # every wire byte is counted: framing header + payload
        assert client.stats.bandwidth.sent >= len(payload)
        assert server.stats.bandwidth.received == client.stats.bandwidth.sent

    def test_frame_counters_count_application_frames(self, pair):
        client, server = pair
        for i in range(5):
            client.send(1, b"x", picture=i)
        for _ in range(5):
            server.recv(timeout=5)
        assert client.stats.sent_frames == 5
        assert server.stats.recv_frames == 5
        assert server.stats.sent_frames == 0

    def test_heartbeats_count_bytes_but_not_frames(self, pair):
        client, server = pair
        client.start_heartbeat(interval=0.05)
        time.sleep(0.3)
        client.send(1, b"real")
        assert server.recv(timeout=5).payload == b"real"
        assert client.stats.sent_frames == 1  # heartbeats excluded
        # ...but their wire bytes are real traffic and are counted
        assert client.stats.bandwidth.sent > len("real") + 16

    def test_recv_wait_time_accumulates_while_blocked(self, pair):
        client, server = pair
        threading.Timer(0.3, lambda: client.send(1, b"late")).start()
        server.recv(timeout=5)
        assert server.stats.recv_wait_s >= 0.2

    def test_stats_to_dict_keys(self, pair):
        client, _server = pair
        d = client.stats.to_dict()
        assert set(d) == {
            "sent_bytes", "recv_bytes", "sent_frames", "recv_frames",
            "send_blocked_s", "recv_wait_s", "handle_frames", "handle_bytes",
        }

    def test_channels_appear_in_telemetry_snapshot(self, pair):
        from repro.perf.telemetry import channel_snapshot

        client, server = pair
        client.send(1, b"ping")
        server.recv(timeout=5)
        snap = channel_snapshot()
        assert "client" in snap and "server" in snap
        assert snap["client"]["sent_frames"] == 1

    def test_credit_gate_counts_acquires_and_stalls(self):
        gate = CreditGate(1)
        gate.acquire(timeout=1)  # free credit: no stall
        threading.Timer(0.2, gate.release).start()
        gate.acquire(timeout=5)  # must wait for the release: one stall
        d = gate.stats_dict()
        assert d["acquires"] == 2
        assert d["stalls"] == 1
        assert d["wait_s"] >= 0.1


class TestMultiSenderInterleaving:
    def test_cross_sender_order_is_free_but_per_sender_order_holds(self, tmp_path):
        """Two senders, one receiver: the transport makes no promise about
        cross-sender interleaving (why ANID exists) but each sender's own
        messages arrive in order."""
        lst = Listener(("unix", str(tmp_path / "rx.sock")))
        n_each = 200

        def sender(sid):
            ch = connect(lst.address, timeout=5)
            for i in range(n_each):
                ch.send(1, b"x" * (1 + (i % 37)), picture=i, sender=sid)
                if i % 50 == sid * 10:
                    time.sleep(0.001)  # jitter the interleaving
            ch.recv(timeout=10)  # wait for the go-to-close signal
            ch.close()

        threads = [threading.Thread(target=sender, args=(s,)) for s in (0, 1)]
        for t in threads:
            t.start()
        chans = [lst.accept(timeout=5) for _ in range(2)]

        seen = {0: [], 1: []}
        done = 0
        while done < 2 * n_each:
            for ch in chans:
                try:
                    msg = ch.recv(timeout=0.01)
                except ChannelTimeout:
                    continue
                seen[msg.sender].append(msg.picture)
                done += 1
        for sid in (0, 1):
            assert seen[sid] == list(range(n_each))  # per-sender order
        for ch in chans:
            ch.send(2)  # release the senders
            ch.close()
        for t in threads:
            t.join(timeout=5)
        lst.close()


class TestCreditFlowControl:
    def test_acquire_consumes_and_release_replenishes(self):
        gate = CreditGate(2)
        gate.acquire(timeout=1)
        gate.acquire(timeout=1)
        assert gate.available == 0
        gate.release()
        gate.acquire(timeout=1)
        assert gate.available == 0

    def test_exhaustion_blocks_until_credit_arrives(self):
        gate = CreditGate(1)
        gate.acquire(timeout=1)
        t0 = time.monotonic()
        threading.Timer(0.3, gate.release).start()
        gate.acquire(timeout=5)  # blocks ~0.3s, then proceeds
        assert 0.2 < time.monotonic() - t0 < 3

    def test_exhaustion_times_out(self):
        gate = CreditGate(1)
        gate.acquire(timeout=1)
        with pytest.raises(CreditTimeout):
            gate.acquire(timeout=0.2)

    def test_poison_wakes_blocked_sender(self):
        gate = CreditGate(1)
        gate.acquire(timeout=1)
        boom = ChannelClosed("peer died")
        threading.Timer(0.2, gate.poison, args=(boom,)).start()
        with pytest.raises(ChannelClosed):
            gate.acquire(timeout=10)

    def test_end_to_end_two_buffer_scheme(self, pair):
        """Sender never has more than `depth` unacked messages in flight."""
        client, server = pair
        depth = 2
        gate = CreditGate(depth)
        sent, acked = [], []

        def reader():
            try:
                while True:
                    msg = client.recv(timeout=5)
                    if msg.type == 99:
                        return
                    acked.append(msg.picture)
                    gate.release()
            except ChannelClosed:
                return

        def receiver():
            # acks each message only as it consumes it, like the splitter
            for _ in range(10):
                msg = server.recv(timeout=5)
                time.sleep(0.01)  # "work" — keeps the sender gated
                server.send(8, picture=msg.picture)  # CREDIT back
            server.send(99)

        rt = threading.Thread(target=reader)
        st = threading.Thread(target=receiver)
        rt.start()
        st.start()
        for i in range(10):
            gate.acquire(timeout=5)
            client.send(1, b"payload", picture=i)
            sent.append(i)
            assert len(sent) - len(acked) <= depth
        st.join(timeout=10)
        rt.join(timeout=10)
        assert acked == list(range(10))


class TestTimeoutsAndRetry:
    def test_recv_timeout(self, pair):
        client, _server = pair
        t0 = time.monotonic()
        with pytest.raises(ChannelTimeout):
            client.recv(timeout=0.3)
        assert time.monotonic() - t0 < 2

    def test_connect_refused_then_backoff_then_success(self, tmp_path):
        """The listener comes up late; the dialer's bounded retry wins."""
        path = str(tmp_path / "late.sock")
        result = {}

        def dial():
            t0 = time.monotonic()
            ch = connect(("unix", path), timeout=10)
            result["elapsed"] = time.monotonic() - t0
            ch.send(1, b"made it")
            ch.close()

        t = threading.Thread(target=dial)
        t.start()
        time.sleep(0.5)  # dialer is retrying against a missing socket
        lst = Listener(("unix", path))
        server = lst.accept(timeout=5)
        assert server.recv(timeout=5).payload == b"made it"
        t.join(timeout=5)
        assert result["elapsed"] >= 0.4  # really did wait through backoff
        server.close()
        lst.close()

    def test_connect_gives_up_at_deadline(self, tmp_path):
        t0 = time.monotonic()
        with pytest.raises(ChannelTimeout):
            connect(("unix", str(tmp_path / "nobody.sock")), timeout=0.5)
        assert time.monotonic() - t0 < 5


class TestConnectPolicy:
    def test_validation(self):
        with pytest.raises(ValueError):
            ConnectPolicy(retry_interval=0.0)
        with pytest.raises(ValueError):
            ConnectPolicy(max_interval=-1.0)
        with pytest.raises(ValueError):
            ConnectPolicy(backoff=0.9)  # would shrink the retry interval

    def test_policy_drives_connect(self, tmp_path):
        """A slow policy really does slow the retry loop down."""
        lazy = ConnectPolicy(retry_interval=0.4, backoff=1.0, max_interval=0.4)
        t0 = time.monotonic()
        with pytest.raises(ChannelTimeout):
            connect(
                ("unix", str(tmp_path / "nobody.sock")),
                timeout=0.6,
                policy=lazy,
            )
        # one attempt, one 0.4 s sleep, then the deadline cuts it off
        assert time.monotonic() - t0 >= 0.4

    def test_kwargs_override_policy_fields(self, tmp_path):
        lazy = ConnectPolicy(retry_interval=5.0, backoff=1.0, max_interval=5.0)
        t0 = time.monotonic()
        with pytest.raises(ChannelTimeout):
            connect(
                ("unix", str(tmp_path / "nobody.sock")),
                timeout=0.3,
                policy=lazy,
                retry_interval=0.01,
                max_interval=0.02,
            )
        assert time.monotonic() - t0 < 2.0

    def test_wallconfig_maps_to_policy(self):
        from repro.cluster.runtime import WallConfig

        cfg = WallConfig(
            connect_retry_interval=0.05,
            connect_backoff=2.0,
            connect_max_interval=0.3,
        )
        p = cfg.connect_policy
        assert p == ConnectPolicy(
            retry_interval=0.05, backoff=2.0, max_interval=0.3
        )


class TestPeerDeath:
    def test_closed_peer_raises_channel_closed(self, pair):
        client, server = pair
        server.close()
        with pytest.raises(ChannelClosed):
            client.recv(timeout=5)

    def test_send_to_closed_peer_raises(self, pair):
        client, server = pair
        server.close()
        with pytest.raises(ChannelClosed):
            for _ in range(64):  # first sends may land in kernel buffers
                client.send(1, b"x" * 65536)

    def test_heartbeat_keeps_idle_peer_alive(self, tmp_path):
        lst = Listener(("unix", str(tmp_path / "hb.sock")))
        client = connect(lst.address, timeout=5)
        server = lst.accept(timeout=5, dead_after=0.6)
        client.start_heartbeat(interval=0.1)
        # no application message for 1s, but heartbeats refresh activity
        with pytest.raises(ChannelTimeout):
            server.recv(timeout=1.0)
        client.close()
        server.close()
        lst.close()

    def test_hung_peer_detected_via_missing_heartbeat(self, tmp_path):
        """A connected-but-silent peer (no heartbeats) is declared dead
        after ``dead_after`` — the hang-vs-dead distinction."""
        lst = Listener(("unix", str(tmp_path / "dead.sock")))
        client = connect(lst.address, timeout=5)
        server = lst.accept(timeout=5, dead_after=0.5)
        t0 = time.monotonic()
        with pytest.raises(PeerDeadError):
            server.recv(timeout=10)  # would wait 10s if deadness went unseen
        assert time.monotonic() - t0 < 5
        client.close()
        server.close()
        lst.close()


# --------------------------------------------------------------------- #
# reliable-link layer
# --------------------------------------------------------------------- #

import struct

from repro.net.channel import ChannelError
from repro.net.reliable import (
    RL_ACK,
    RL_DATA,
    RL_SYN,
    RL_SYNACK,
    LinkProtocolError,
    ReliableEndpoint,
    _ACK_HEAD,
    _DATA_HEAD,
    decode_syn,
    dial_reliable,
    encode_syn,
)


class _ReliableServer:
    """A minimal accept loop adopting RL_SYN connections into one endpoint
    — the daemon's connection-classification logic, shrunk for tests."""

    def __init__(self, lst, **ep_kw):
        self.lst = lst
        self.ep = ReliableEndpoint(side="accepter", **ep_kw)
        self.raw = []  # every adopted raw channel, for fault injection
        self._stop = threading.Event()
        self.thread = threading.Thread(target=self._loop, daemon=True)
        self.thread.start()

    def _loop(self):
        while not self._stop.is_set():
            try:
                ch = self.lst.accept(timeout=0.1)
            except ChannelTimeout:
                continue
            except (ChannelError, OSError):
                return
            try:
                first = ch.recv(timeout=5)
                if first.type != RL_SYN:
                    ch.close()
                    continue
                _token, rx_next, feats = decode_syn(first.payload)
                self.raw.append(ch)
                self.ep.adopt(ch, rx_next, feats)
            except (ChannelClosed, ChannelError):
                ch.close()

    def cut(self):
        """Sever the live connection server-side (simulated network cut)."""
        for ch in self.raw:
            ch.close()

    def close(self):
        self._stop.set()
        self.ep.close()
        self.thread.join(timeout=5)


@pytest.fixture(params=["unix", "tcp"])
def reliable_pair(request, tmp_path):
    """(dialer endpoint, server harness, listener) over each transport."""
    if request.param == "unix":
        lst = Listener(("unix", str(tmp_path / "rl.sock")))
    else:
        lst = Listener(("tcp", "127.0.0.1", 0))
    server = _ReliableServer(lst, resume_timeout=5.0)
    dialer = dial_reliable(
        lambda: connect(lst.address, timeout=5), resume_timeout=5.0, name="dl"
    )
    yield dialer, server, lst
    dialer.close()
    server.close()
    lst.close()


class TestReliableLink:
    def test_in_order_roundtrip_with_acks(self, reliable_pair):
        dialer, server, _ = reliable_pair
        for i in range(10):
            dialer.send(40, f"m{i}".encode(), picture=i)
        got = [server.ep.recv(timeout=5) for _ in range(10)]
        assert [m.payload for m in got] == [f"m{i}".encode() for i in range(10)]
        assert [m.picture for m in got] == list(range(10))
        # replies flow the other way on the same link
        server.ep.send(41, b"pong")
        assert dialer.recv(timeout=5).payload == b"pong"
        # the reply's piggybacked ack cleared the dialer's window
        assert dialer.stats_dict()["unacked"] == 0
        assert server.ep.rx_next == 10

    def test_features_negotiated_hello_style(self, reliable_pair):
        dialer, server, _ = reliable_pair
        dialer.send(40, b"x")
        server.ep.recv(timeout=5)
        assert server.ep.peer_features.get("reliable") is True
        # the dialer learns the accepter's features from the SYNACK
        assert dialer.peer_features.get("reliable") is True

    def test_window_full_blocks_sender(self, tmp_path):
        lst = Listener(("unix", str(tmp_path / "w.sock")))
        server = _ReliableServer(lst, resume_timeout=5.0)
        dialer = dial_reliable(
            lambda: connect(lst.address, timeout=5), window=2, resume_timeout=5.0
        )
        try:
            dialer.send(40, b"a")
            dialer.send(40, b"b")
            # nobody pumps the accepter, so no acks: the window is full
            with pytest.raises(ChannelTimeout):
                dialer.send(40, b"c", timeout=0.3)
            # draining the receiver acks and unblocks the sender
            assert server.ep.recv(timeout=5).payload == b"a"
            assert server.ep.recv(timeout=5).payload == b"b"
            dialer.send(40, b"c", timeout=5)
            assert server.ep.recv(timeout=5).payload == b"c"
        finally:
            dialer.close()
            server.close()
            lst.close()

    def test_reconnect_and_resume_no_loss(self, reliable_pair):
        dialer, server, _ = reliable_pair
        dialer.send(40, b"before")
        assert server.ep.recv(timeout=5).payload == b"before"
        server.cut()  # network cut: both directions sever
        # the committed-but-unacked send survives the cut via resume
        dialer.send(40, b"during", timeout=5)
        dialer.send(40, b"after", timeout=5)
        assert server.ep.recv(timeout=5).payload == b"during"
        assert server.ep.recv(timeout=5).payload == b"after"
        assert dialer.reconnects >= 1
        assert len(server.raw) >= 2  # a second connection was adopted

    def test_resume_survives_repeated_cuts(self, reliable_pair):
        dialer, server, _ = reliable_pair
        for round_ in range(3):
            dialer.send(40, f"r{round_}".encode(), timeout=5)
            assert server.ep.recv(timeout=5).payload == f"r{round_}".encode()
            server.cut()
        dialer.send(40, b"final", timeout=5)
        assert server.ep.recv(timeout=5).payload == b"final"
        assert dialer.reconnects >= 3

    def test_dialer_peer_dead_after_resume_timeout(self, tmp_path):
        lst = Listener(("unix", str(tmp_path / "dead.sock")))
        server = _ReliableServer(lst, resume_timeout=5.0)
        dialer = dial_reliable(
            lambda: connect(lst.address, timeout=0.2), resume_timeout=0.4
        )
        try:
            dialer.send(40, b"x")
            server.ep.recv(timeout=5)
            server.close()
            lst.close()  # daemon gone for good: no listener to resume against
            with pytest.raises(PeerDeadError):
                deadline = time.monotonic() + 10
                while time.monotonic() < deadline:
                    dialer.send(40, b"y", timeout=1.0)
                    time.sleep(0.05)
        finally:
            dialer.close()
            server.close()

    def test_accepter_short_recv_timeouts_then_peer_dead(self, tmp_path):
        """Caller-deadline expiry is ChannelTimeout (poll again); only the
        resume window expiring is PeerDeadError — and the window anchors
        at the cut, not at each recv call."""
        lst = Listener(("unix", str(tmp_path / "park.sock")))
        server = _ReliableServer(lst, resume_timeout=0.6)
        dialer = dial_reliable(
            lambda: connect(lst.address, timeout=5), resume_timeout=5.0
        )
        try:
            dialer.send(40, b"x")
            assert server.ep.recv(timeout=5).payload == b"x"
            dialer.close()  # dialer gone; accepter must wait out the window
            with pytest.raises(ChannelTimeout):
                server.ep.recv(timeout=0.15)  # well inside the window
            time.sleep(0.6)
            with pytest.raises(PeerDeadError):
                server.ep.recv(timeout=2.0)
        finally:
            dialer.close()
            server.close()
            lst.close()


class TestReliableWireFaults:
    """Speak the reliable wire protocol by hand to inject faults a real
    peer never produces — lost acks and sequence corruption."""

    def _handshake(self, lst, tmp_path):
        server = _ReliableServer(lst, resume_timeout=5.0)
        raw = connect(lst.address, timeout=5, name="raw")
        raw.send(RL_SYN, encode_syn("tok-fault", 0, {"reliable": True}))
        reply = raw.recv(timeout=5)
        assert reply.type == RL_SYNACK
        return server, raw

    def _data(self, seq, ack, payload):
        return struct.pack(_DATA_HEAD, seq, ack, 40, 0, -1) + payload

    def test_dropped_ack_retransmit_is_deduped_and_reacked(self, tmp_path):
        lst = Listener(("unix", str(tmp_path / "f1.sock")))
        server, raw = self._handshake(lst, tmp_path)
        try:
            raw.send(RL_DATA, self._data(0, 0, b"once"))
            assert server.ep.recv(timeout=5).payload == b"once"
            ack1 = raw.recv(timeout=5)
            assert ack1.type == RL_ACK
            assert struct.unpack(_ACK_HEAD, ack1.payload) == (1,)
            # the sender "lost" that ack: it retransmits seq 0 verbatim
            raw.send(RL_DATA, self._data(0, 0, b"once"))
            # pumping the endpoint dedupes the retransmit: no redelivery...
            with pytest.raises(ChannelTimeout):
                server.ep.recv(timeout=0.5)
            assert server.ep.duplicates_dropped == 1
            # ...but the cursor is re-acked for the sender's benefit
            ack2 = raw.recv(timeout=5)
            assert ack2.type == RL_ACK
            assert struct.unpack(_ACK_HEAD, ack2.payload) == (1,)
        finally:
            raw.close()
            server.close()
            lst.close()

    def test_sequence_gap_is_a_protocol_error(self, tmp_path):
        lst = Listener(("unix", str(tmp_path / "f2.sock")))
        server, raw = self._handshake(lst, tmp_path)
        try:
            raw.send(RL_DATA, self._data(5, 0, b"hole"))
            with pytest.raises(LinkProtocolError):
                server.ep.recv(timeout=5)
        finally:
            raw.close()
            server.close()
            lst.close()

    def test_malformed_syn_rejected(self):
        with pytest.raises(LinkProtocolError):
            decode_syn(b"\xff\xfenot json")
        with pytest.raises(LinkProtocolError):
            decode_syn(b"{}")


class TestConnectJitter:
    def test_jitter_validation(self):
        with pytest.raises(ValueError):
            ConnectPolicy(jitter=1.0)
        with pytest.raises(ValueError):
            ConnectPolicy(jitter=-0.1)
        assert ConnectPolicy(jitter=0.0).jitter == 0.0

    def test_backoff_sleeps_are_jittered_downward(self, monkeypatch):
        """Every retry sleep lands in [interval * (1 - jitter), interval]."""
        import repro.net.channel as chan_mod

        sleeps = []
        monkeypatch.setattr(
            chan_mod.time, "sleep", lambda s: sleeps.append(s)
        )
        policy = ConnectPolicy(
            retry_interval=0.1, backoff=1.0, max_interval=0.1, jitter=0.5
        )
        with pytest.raises(ChannelTimeout):
            connect(("tcp", "127.0.0.1", 9), timeout=0.2, policy=policy)
        assert sleeps, "expected at least one backoff sleep"
        for s in sleeps:
            assert 0.0 <= s <= 0.1 + 1e-9
        # with jitter active the sleeps should not all sit at the ceiling
        if len(sleeps) >= 3:
            assert min(sleeps) < 0.1
