"""Intra DC precision (8/9/10 bit) end to end."""

import numpy as np
import pytest

from repro.bitstream import BitReader, BitWriter
from repro.mpeg2 import psnr
from repro.mpeg2.constants import PICTURE_START_CODE, PictureType
from repro.mpeg2.decoder import decode_stream
from repro.mpeg2.encoder import Encoder, EncoderConfig
from repro.mpeg2.frames import Frame
from repro.mpeg2.structures import PictureHeader
from repro.parallel.pipeline import ParallelDecoder
from repro.wall.layout import TileLayout


def _gradient_clip(n=3, w=96, h=64):
    """Slow gradients show DC banding at coarse DC precision."""
    frames = []
    for t in range(n):
        yy, xx = np.mgrid[0:h, 0:w]
        y = (60 + 0.35 * xx + 0.2 * yy + t).astype(np.uint8)
        cb = np.full((h // 2, w // 2), 128, np.uint8)
        cr = np.full((h // 2, w // 2), 128, np.uint8)
        frames.append(Frame(y, cb, cr))
    return frames


class TestHeaderField:
    @pytest.mark.parametrize("precision", [8, 9, 10])
    def test_roundtrip(self, precision):
        hdr = PictureHeader(0, PictureType.I, intra_dc_precision=precision)
        bw = BitWriter()
        hdr.write(bw)
        br = BitReader(bw.getvalue())
        assert br.next_start_code() == PICTURE_START_CODE
        out = PictureHeader.parse(br)
        assert out.intra_dc_precision == precision
        assert out.dc_scaler == 1 << (11 - precision)
        assert out.dc_reset == 1 << (precision - 1)

    def test_invalid_precision_rejected(self):
        hdr = PictureHeader(0, PictureType.I, intra_dc_precision=11)
        with pytest.raises(ValueError):
            hdr.write(BitWriter())

    def test_config_validation(self):
        with pytest.raises(ValueError):
            EncoderConfig(intra_dc_precision=7)


class TestEndToEnd:
    @pytest.mark.parametrize("precision", [8, 9, 10])
    def test_roundtrip_decodes(self, precision):
        clip = _gradient_clip()
        enc = Encoder(
            EncoderConfig(gop_size=3, b_frames=1, intra_dc_precision=precision)
        )
        data = enc.encode(clip)
        out = decode_stream(data)
        assert len(out) == len(clip)
        assert min(psnr(a, b) for a, b in zip(clip, out)) > 30

    def test_higher_precision_improves_gradients(self):
        clip = _gradient_clip(1)
        def quality(precision):
            # finest AC quantizer so the DC precision dominates the error
            enc = Encoder(
                EncoderConfig(gop_size=1, intra_dc_precision=precision,
                              qscale_code_intra=1)
            )
            return psnr(clip[0], decode_stream(enc.encode(clip))[0])

        assert quality(10) >= quality(8)

    def test_higher_precision_costs_bits(self):
        clip = _gradient_clip(1)

        def bits(precision):
            enc = Encoder(
                EncoderConfig(gop_size=1, intra_dc_precision=precision)
            )
            return len(enc.encode(clip))

        assert bits(10) > bits(8)

    @pytest.mark.parametrize("precision", [9, 10])
    def test_parallel_decode_matches(self, precision):
        """The SPH carries 10-bit DC predictors across tile boundaries."""
        clip = _gradient_clip(6, 128, 96)
        enc = Encoder(
            EncoderConfig(gop_size=6, b_frames=2, intra_dc_precision=precision)
        )
        data = enc.encode(clip)
        ref = decode_stream(data)
        layout = TileLayout(128, 96, 3, 2, overlap=8)
        out = ParallelDecoder(layout, k=2, verify_overlaps=True).decode(data)
        assert all(a.max_abs_diff(b) == 0 for a, b in zip(ref, out))
