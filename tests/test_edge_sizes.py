"""Boundary-size streams: the smallest and oddest rasters must work."""


from repro.mpeg2.decoder import decode_stream
from repro.mpeg2.encoder import Encoder, EncoderConfig
from repro.mpeg2.frames import Frame
from repro.parallel.pipeline import ParallelDecoder
from repro.wall.layout import TileLayout
from repro.workloads.synthetic import broadcast_frames, moving_pattern_frames


class TestTinyRasters:
    def test_single_macroblock_frame(self):
        """16x16: one macroblock, one slice, one tile."""
        frames = [Frame.blank(16, 16, y=100 + 10 * t) for t in range(4)]
        stream = Encoder(EncoderConfig(gop_size=4, b_frames=1)).encode(frames)
        out = decode_stream(stream)
        assert len(out) == 4
        layout = TileLayout(16, 16, 1, 1)
        wall = ParallelDecoder(layout, k=1).decode(stream)
        assert all(a.max_abs_diff(b) == 0 for a, b in zip(out, wall))

    def test_one_row_raster(self):
        """Wide and short: 128x16 split into 4 columns."""
        frames = moving_pattern_frames(128, 16, 5, seed=16)
        stream = Encoder(EncoderConfig(gop_size=5, b_frames=1, search_range=4)).encode(frames)
        ref = decode_stream(stream)
        out = ParallelDecoder(TileLayout(128, 16, 4, 1), k=2).decode(stream)
        assert all(a.max_abs_diff(b) == 0 for a, b in zip(ref, out))

    def test_one_column_raster(self):
        """Tall and thin: 16x128 split into 4 rows."""
        frames = moving_pattern_frames(16, 128, 5, seed=17)
        stream = Encoder(EncoderConfig(gop_size=5, b_frames=1, search_range=4)).encode(frames)
        ref = decode_stream(stream)
        out = ParallelDecoder(TileLayout(16, 128, 1, 4), k=2).decode(stream)
        assert all(a.max_abs_diff(b) == 0 for a, b in zip(ref, out))

    def test_more_tiles_than_macroblock_columns_rejected(self):
        # 32px wide = 2 MB columns; a 4-column layout has sub-MB tiles but
        # layout construction itself remains valid — partitions are pixel
        # based; the split still covers every MB (possibly duplicated).
        frames = [Frame.blank(32, 32, y=90 + t) for t in range(3)]
        stream = Encoder(EncoderConfig(gop_size=3, b_frames=0)).encode(frames)
        ref = decode_stream(stream)
        out = ParallelDecoder(TileLayout(32, 32, 4, 1), k=1).decode(stream)
        assert all(a.max_abs_diff(b) == 0 for a, b in zip(ref, out))


class TestBroadcastContent:
    def test_generator_properties(self):
        frames = broadcast_frames(160, 96, 6)
        assert len(frames) == 6
        # ticker moves every frame
        band_a = frames[0].y[-12:, :]
        band_b = frames[1].y[-12:, :]
        assert (band_a != band_b).any()
        # studio background is static (top-left corner)
        import numpy as np

        assert (
            np.abs(
                frames[0].y[:16, :16].astype(int) - frames[3].y[:16, :16].astype(int)
            ).mean()
            < 6
        )

    def test_broadcast_stream_through_wall(self):
        frames = broadcast_frames(128, 96, 7, seed=5)
        stream = Encoder(EncoderConfig(gop_size=7, b_frames=2)).encode(frames)
        ref = decode_stream(stream)
        out = ParallelDecoder(TileLayout(128, 96, 2, 2), k=2).decode(stream)
        assert all(a.max_abs_diff(b) == 0 for a, b in zip(ref, out))

    def test_ticker_generates_boundary_exchanges(self):
        """The scrolling lower third crosses vertical tile boundaries."""
        frames = broadcast_frames(128, 96, 6, seed=5)
        stream = Encoder(EncoderConfig(gop_size=6, b_frames=1)).encode(frames)
        pd = ParallelDecoder(TileLayout(128, 96, 2, 1), k=1)
        pd.decode(stream)
        assert pd.stats.exchange_count > 0
