"""Encoder + reference decoder: GOP planning, round-trips, quality."""

import numpy as np
import pytest

from repro.mpeg2 import psnr
from repro.mpeg2.constants import PictureType, SEQUENCE_END_CODE
from repro.mpeg2.decoder import Decoder, decode_stream
from repro.mpeg2.encoder import Encoder, EncoderConfig, plan_gop_structure
from repro.mpeg2.frames import Frame
from repro.mpeg2.parser import PictureScanner


class TestGOPPlanning:
    def test_ibbp_structure(self):
        plans = plan_gop_structure(7, EncoderConfig(gop_size=7, b_frames=2))
        order = [(p.display_index, p.picture_type.name) for p in plans]
        assert order == [
            (0, "I"), (3, "P"), (1, "B"), (2, "B"),
            (6, "P"), (4, "B"), (5, "B"),
        ]

    def test_every_frame_planned_once(self):
        for n in (1, 2, 5, 9, 17):
            plans = plan_gop_structure(n, EncoderConfig(gop_size=6, b_frames=2))
            assert sorted(p.display_index for p in plans) == list(range(n))

    def test_b_pictures_have_both_refs(self):
        plans = plan_gop_structure(20, EncoderConfig(gop_size=9, b_frames=2))
        for p in plans:
            if p.picture_type == PictureType.B:
                assert p.fwd_ref is not None and p.bwd_ref is not None
                assert p.fwd_ref < p.display_index < p.bwd_ref

    def test_anchors_coded_before_their_b_pictures(self):
        plans = plan_gop_structure(12, EncoderConfig(gop_size=12, b_frames=2))
        coded_at = {p.display_index: i for i, p in enumerate(plans)}
        for p in plans:
            if p.picture_type == PictureType.B:
                assert coded_at[p.bwd_ref] < coded_at[p.display_index]

    def test_no_b_frames(self):
        plans = plan_gop_structure(6, EncoderConfig(gop_size=3, b_frames=0))
        assert all(p.picture_type != PictureType.B for p in plans)

    def test_temporal_reference_is_gop_relative(self):
        plans = plan_gop_structure(12, EncoderConfig(gop_size=6, b_frames=2))
        for p in plans:
            assert p.temporal_reference == p.display_index % 6

    def test_config_validation(self):
        with pytest.raises(ValueError):
            EncoderConfig(b_frames=-1)
        with pytest.raises(ValueError):
            EncoderConfig(gop_size=0)
        with pytest.raises(ValueError):
            EncoderConfig(search_range=20, f_code=1)
        with pytest.raises(ValueError):
            EncoderConfig(qscale_code_intra=32)


class TestEncodeDecode:
    def test_stream_structure(self, small_stream):
        assert small_stream.startswith(b"\x00\x00\x01\xb3")
        assert small_stream.endswith(bytes([0, 0, 1, SEQUENCE_END_CODE]))

    def test_roundtrip_frame_count(self, small_frames, small_stream):
        out = decode_stream(small_stream)
        assert len(out) == len(small_frames)

    def test_roundtrip_quality(self, small_frames, small_stream):
        out = decode_stream(small_stream)
        for i, (a, b) in enumerate(zip(small_frames, out)):
            q = psnr(a, b)
            assert q > 30, f"frame {i} PSNR {q:.1f} too low"

    def test_display_order_tracks_motion(self, small_frames, small_stream):
        """Decoded frames must match the source order, not coded order:
        each decoded frame must be closest to its own source frame."""
        out = decode_stream(small_stream)
        for i, dec in enumerate(out):
            errs = [
                np.mean(np.abs(dec.y.astype(int) - src.y.astype(int)))
                for src in small_frames
            ]
            assert int(np.argmin(errs)) == i

    def test_i_only_stream(self, small_frames, i_only_stream):
        out = decode_stream(i_only_stream)
        assert len(out) == 4
        for a, b in zip(small_frames, out):
            assert psnr(a, b) > 30

    def test_ip_stream(self, small_frames, ip_stream):
        out = decode_stream(ip_stream)
        assert len(out) == len(small_frames)
        for a, b in zip(small_frames, out):
            assert psnr(a, b) > 30

    def test_single_frame(self):
        f = Frame.blank(32, 32, y=120)
        out = decode_stream(Encoder(EncoderConfig(gop_size=1)).encode([f]))
        assert len(out) == 1
        assert out[0].max_abs_diff(f) <= 2

    def test_stats_track_sizes(self, small_frames):
        enc = Encoder(EncoderConfig(gop_size=6, b_frames=2))
        data = enc.encode(small_frames)
        assert len(enc.stats.picture_sizes) == len(small_frames)
        assert sum(enc.stats.picture_sizes) <= len(data)
        # I pictures cost more than B pictures on average
        sizes = {}
        for t, s in zip(enc.stats.picture_types, enc.stats.picture_sizes):
            sizes.setdefault(t, []).append(s)
        assert np.mean(sizes[PictureType.I]) > np.mean(sizes[PictureType.B])

    def test_mixed_resolution_rejected(self):
        with pytest.raises(ValueError):
            Encoder().encode([Frame.blank(32, 32), Frame.blank(64, 32)])

    def test_empty_input_rejected(self):
        with pytest.raises(ValueError):
            Encoder().encode([])

    def test_oversized_height_rejected(self):
        f = Frame.blank(16, 2816)
        with pytest.raises(ValueError):
            Encoder().encode([f])

    def test_adaptive_quant_changes_bits(self, detail_frames):
        flat = Encoder(EncoderConfig(gop_size=7, b_frames=0))
        flat_bytes = len(flat.encode(detail_frames[:3]))

        def modulator(mx, my, activity):
            return 3 if activity > 200 else 12

        adaptive = Encoder(
            EncoderConfig(gop_size=7, b_frames=0, quant_modulator=modulator)
        )
        adaptive_bytes = len(adaptive.encode(detail_frames[:3]))
        assert adaptive_bytes != flat_bytes

    def test_skips_emitted_for_static_content(self):
        """A static clip's P pictures should contain skipped macroblocks."""
        frames = [Frame.blank(96, 48, y=100) for _ in range(4)]
        # add a small moving square so not everything is skipped
        for t, f in enumerate(frames):
            f.y[8 : 16, 8 + 4 * t : 20 + 4 * t] = 200
        enc = Encoder(EncoderConfig(gop_size=4, b_frames=0))
        data = enc.encode(frames)
        dec = Decoder()
        dec.decode(data)
        assert sum(dec.stats.skipped_macroblocks) > 0


class TestDecoderStats:
    def test_macroblock_accounting(self, small_frames, small_stream):
        dec = Decoder()
        dec.decode(small_stream)
        n_mbs = small_frames[0].n_macroblocks
        for coded, skipped in zip(
            dec.stats.coded_macroblocks, dec.stats.skipped_macroblocks
        ):
            assert coded + skipped == n_mbs

    def test_picture_types_recorded(self, small_stream):
        dec = Decoder()
        dec.decode(small_stream)
        assert dec.stats.picture_types[0] == PictureType.I

    def test_iter_decode_is_lazy_equivalent(self, small_stream):
        eager = decode_stream(small_stream)
        lazy = list(Decoder().iter_decode(small_stream))
        assert len(eager) == len(lazy)
        for a, b in zip(eager, lazy):
            assert a.max_abs_diff(b) == 0


class TestPictureScanner:
    def test_picture_count(self, small_frames, small_stream):
        seq, pics = PictureScanner(small_stream).scan()
        assert len(pics) == len(small_frames)
        assert (seq.width, seq.height) == (96, 64)

    def test_pictures_carry_gop_flags(self, small_stream):
        _, pics = PictureScanner(small_stream).scan()
        assert pics[0].new_gop and pics[0].gop is not None
        assert not pics[1].new_gop

    def test_picture_units_self_contained(self, small_stream):
        _, pics = PictureScanner(small_stream).scan()
        for unit in pics:
            assert unit.data.startswith(b"\x00\x00\x01\x00")

    def test_scan_cached(self, small_stream):
        sc = PictureScanner(small_stream)
        a = sc.scan()
        b = sc.scan()
        assert a[1] is b[1]

    def test_rejects_non_sequence_start(self):
        with pytest.raises(Exception):
            PictureScanner(b"\x00\x00\x01\x00garbage").scan()
