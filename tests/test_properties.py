"""Cross-cutting property-based tests (hypothesis).

These complement the per-module property tests with whole-subsystem
invariants over randomized inputs: arbitrary clips survive the
encode→parallel-decode path, arbitrary layouts keep their geometric
invariants, and the sub-picture machinery covers every macroblock exactly
once whatever the tiling.
"""

import numpy as np
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.mpeg2.decoder import decode_stream
from repro.mpeg2.encoder import Encoder, EncoderConfig
from repro.mpeg2.frames import Frame
from repro.mpeg2.parser import MacroblockParser, PictureScanner
from repro.parallel.mb_splitter import MacroblockSplitter
from repro.parallel.pipeline import ParallelDecoder
from repro.parallel.subpicture import RunRecord, SkipRecord
from repro.wall.layout import TileLayout


def _random_clip(rng: np.random.Generator, w: int, h: int, n: int):
    """Random-ish frames with temporal coherence (so P/B pictures bite)."""
    base = rng.integers(16, 235, (h, w), dtype=np.uint8).astype(np.uint8)
    frames = []
    for t in range(n):
        y = np.roll(base, shift=3 * t, axis=1).copy()
        y[: h // 4, : w // 4] = rng.integers(16, 235)
        cb = np.full((h // 2, w // 2), 120, np.uint8)
        cr = np.full((h // 2, w // 2), 130, np.uint8)
        frames.append(Frame(y, cb, cr))
    return frames


@given(
    seed=st.integers(0, 2**31),
    mbw=st.integers(2, 5),
    mbh=st.integers(2, 4),
    gop=st.integers(1, 5),
    b_frames=st.integers(0, 2),
)
@settings(
    max_examples=12,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
def test_random_clip_roundtrips_through_parallel_wall(
    seed, mbw, mbh, gop, b_frames
):
    """For arbitrary clip content, GOP structure, and tiling, the parallel
    decode equals the sequential decode bit for bit."""
    rng = np.random.default_rng(seed)
    w, h = 16 * mbw, 16 * mbh
    frames = _random_clip(rng, w, h, n=max(gop, b_frames + 2))
    stream = Encoder(
        EncoderConfig(gop_size=gop, b_frames=b_frames, search_range=4)
    ).encode(frames)
    ref = decode_stream(stream)
    m = int(rng.integers(1, min(3, mbw) + 1))
    n = int(rng.integers(1, min(3, mbh) + 1))
    k = int(rng.integers(1, 4))
    layout = TileLayout(w, h, m, n)
    out = ParallelDecoder(layout, k=k).decode(stream)
    assert len(out) == len(ref)
    for a, b in zip(ref, out):
        assert a.max_abs_diff(b) == 0


@given(
    mbw=st.integers(2, 12),
    mbh=st.integers(2, 10),
    m=st.integers(1, 4),
    n=st.integers(1, 4),
    overlap=st.integers(0, 12),
)
@settings(max_examples=60, deadline=None)
def test_layout_invariants(mbw, mbh, m, n, overlap):
    w, h = 16 * mbw, 16 * mbh
    if m > 1 and overlap >= w // m:
        return
    if n > 1 and overlap >= h // n:
        return
    layout = TileLayout(w, h, m, n, overlap=overlap)
    # partitions tile the raster
    area = sum(t.partition.area for t in layout)
    assert area == w * h
    for t in layout:
        # rect within the raster and containing its partition
        assert 0 <= t.rect.x0 and t.rect.x1 <= w
        assert 0 <= t.rect.y0 and t.rect.y1 <= h
        assert t.rect.x0 <= t.partition.x0 and t.rect.x1 >= t.partition.x1
        # coverage is the MB-aligned closure of rect
        assert t.coverage.contains(t.rect)
        assert t.coverage.x1 - t.rect.x1 < 16 and t.rect.x0 - t.coverage.x0 < 16
    # every macroblock is displayed somewhere
    for my in range(mbh):
        for mx in range(mbw):
            assert layout.tiles_for_mb(mx, my)


@given(
    m=st.integers(1, 3),
    n=st.integers(1, 3),
    overlap=st.sampled_from([0, 4, 16]),
)
@settings(max_examples=15, deadline=None, suppress_health_check=[HealthCheck.function_scoped_fixture])
def test_subpicture_coverage_property(small_stream, m, n, overlap):
    """For every tiling of a real stream, each tile's sub-picture contains
    exactly the macroblocks that intersect the tile's rect."""
    seq, pics = PictureScanner(small_stream).scan()
    if m > 1 and overlap >= seq.width // m:
        return
    if n > 1 and overlap >= seq.height // n:
        return
    layout = TileLayout(seq.width, seq.height, m, n, overlap=overlap)
    splitter = MacroblockSplitter(seq, layout)
    parser = MacroblockParser(seq)
    unit = pics[1]  # a P picture (has skips and motion)
    parsed = parser.parse_picture(unit.data)
    result = splitter.split(unit, 1)
    mbw = seq.width // 16
    for tile in layout:
        expected = {
            it.mb.address
            for it in parsed.items
            if tile.tid
            in layout.tiles_for_mb(it.mb.address % mbw, it.mb.address // mbw)
        }
        got = set()
        for rec in result.subpictures[tile.tid].records:
            if isinstance(rec, RunRecord):
                got.update(range(rec.sph.address, rec.sph.address + rec.n_total))
            elif isinstance(rec, SkipRecord):
                got.update(range(rec.address, rec.address + rec.count))
        assert got == expected
