"""Cost model and per-picture workload derivation."""

import pytest

from repro.mpeg2.constants import PictureType
from repro.perf.costmodel import CostModel, build_picture_work
from repro.wall.layout import TileLayout
from repro.workloads.streams import stream_by_id


S8 = stream_by_id(8)
S16 = stream_by_id(16)


class TestCostModel:
    def test_decode_scales_with_mbs_and_bits(self):
        c = CostModel()
        assert c.t_decode_mbs(200, 0) == pytest.approx(
            2 * c.t_decode_mbs(100, 0)
        )
        assert c.t_decode_mbs(100, 1000) > c.t_decode_mbs(100, 0)

    def test_split_cheaper_than_decode(self):
        """The calibration anchor behind §5.3: splitting one picture costs
        a fraction (~1/4) of decoding it."""
        c = CostModel()
        bits = S8.avg_frame_bytes * 8
        ratio = c.t_split_picture(S8.mbs_per_frame, bits) / c.t_decode_mbs(
            S8.mbs_per_frame, bits
        )
        assert 0.15 < ratio < 0.45

    def test_root_slower_console(self):
        c = CostModel()
        assert c.t_root_copy(1000) > 1000 * c.root_per_byte

    def test_t_d_is_slowest_tile(self):
        c = CostModel()
        layout = TileLayout(S16.width, S16.height, 4, 4)
        loads = S16.tile_workloads(layout)
        bits = S16.avg_frame_bytes * 8
        times = [
            c.t_decode_mbs(w["mbs"], bits * w["bits_fraction"])
            for w in loads.values()
        ]
        assert c.t_d(S16, layout) == pytest.approx(max(times))


class TestPictureWork:
    def test_sequence_length_and_types(self):
        layout = TileLayout(S8.width, S8.height, 2, 2)
        works = build_picture_work(S8, layout, n_frames=24)
        assert len(works) == 24
        assert works[0].ptype == PictureType.I
        assert {w.ptype for w in works} == {
            PictureType.I,
            PictureType.P,
            PictureType.B,
        }

    def test_average_picture_bytes_match_spec(self):
        layout = TileLayout(S8.width, S8.height, 2, 2)
        works = build_picture_work(S8, layout, n_frames=S8.n_frames)
        avg = sum(w.nbytes for w in works) / len(works)
        assert avg == pytest.approx(S8.avg_frame_bytes, rel=0.02)

    def test_i_pictures_largest(self):
        layout = TileLayout(S8.width, S8.height, 2, 2)
        works = build_picture_work(S8, layout, n_frames=24)
        sizes = {t: [] for t in PictureType}
        for w in works:
            sizes[w.ptype].append(w.nbytes)
        assert min(sizes[PictureType.I]) > max(sizes[PictureType.P])
        assert min(sizes[PictureType.P]) > max(sizes[PictureType.B])

    def test_tile_work_covers_all_tiles(self):
        layout = TileLayout(S8.width, S8.height, 4, 4)
        works = build_picture_work(S8, layout, n_frames=6)
        for w in works:
            assert set(w.tiles) == {t.tid for t in layout}
            for tw in w.tiles.values():
                assert tw.n_mbs > 0
                assert tw.sp_bytes > 0

    def test_i_pictures_have_no_exchanges(self):
        layout = TileLayout(S8.width, S8.height, 2, 2)
        for w in build_picture_work(S8, layout, n_frames=24):
            if w.ptype == PictureType.I:
                assert w.exchanges == []
            else:
                assert w.exchanges

    def test_b_exchanges_exceed_p(self):
        """B pictures reference two anchors, so they exchange more."""
        layout = TileLayout(S8.width, S8.height, 2, 2)
        works = build_picture_work(S8, layout, n_frames=24)
        p = [sum(e.nbytes for e in w.exchanges) for w in works if w.ptype == PictureType.P]
        b = [sum(e.nbytes for e in w.exchanges) for w in works if w.ptype == PictureType.B]
        assert min(b) > max(p) * 1.2

    def test_exchanges_only_between_neighbours(self):
        layout = TileLayout(S8.width, S8.height, 4, 4)
        for w in build_picture_work(S8, layout, n_frames=12):
            for e in w.exchanges:
                a, b = layout.tile(e.src), layout.tile(e.dst)
                assert abs(a.col - b.col) + abs(a.row - b.row) == 1

    def test_exchange_helpers(self):
        layout = TileLayout(S8.width, S8.height, 2, 1)
        works = build_picture_work(S8, layout, n_frames=12)
        w = next(w for w in works if w.exchanges)
        assert all(e.src == 0 for e in w.exchanges_from(0))
        assert all(e.dst == 0 for e in w.exchanges_to(0))

    def test_localized_detail_imbalances_tiles(self):
        layout = TileLayout(S16.width, S16.height, 4, 4)
        works = build_picture_work(S16, layout, n_frames=4)
        fracs = [tw.bits for tw in works[0].tiles.values()]
        assert max(fracs) > 1.5 * min(fracs)

    def test_single_tile_no_exchanges(self):
        layout = TileLayout(S8.width, S8.height, 1, 1)
        for w in build_picture_work(S8, layout, n_frames=12):
            assert w.exchanges == []
