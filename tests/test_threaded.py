"""The protocol on real OS threads: order-correct and deadlock-free."""

import pytest

from repro.mpeg2.decoder import decode_stream
from repro.mpeg2.encoder import Encoder, EncoderConfig
from repro.parallel.threaded import ThreadedParallelDecoder
from repro.wall.layout import TileLayout
from repro.workloads.synthetic import moving_pattern_frames


@pytest.fixture(scope="module")
def clip_stream():
    clip = moving_pattern_frames(128, 96, 10, seed=15)
    stream = Encoder(EncoderConfig(gop_size=5, b_frames=2)).encode(clip)
    return clip, stream


class TestThreadedDecoder:
    @pytest.mark.parametrize("m,n,k", [(2, 1, 1), (2, 2, 2), (2, 2, 3), (4, 2, 2)])
    def test_bit_exact_under_preemption(self, clip_stream, m, n, k):
        _, stream = clip_stream
        ref = decode_stream(stream)
        layout = TileLayout(128, 96, m, n)
        out = ThreadedParallelDecoder(layout, k=k).decode(stream, timeout=60)
        assert len(out) == len(ref)
        assert all(a.max_abs_diff(b) == 0 for a, b in zip(ref, out))

    def test_with_overlap(self, clip_stream):
        _, stream = clip_stream
        ref = decode_stream(stream)
        layout = TileLayout(128, 96, 2, 2, overlap=16)
        out = ThreadedParallelDecoder(layout, k=2).decode(stream, timeout=60)
        assert all(a.max_abs_diff(b) == 0 for a, b in zip(ref, out))

    def test_repeated_runs_stable(self, clip_stream):
        """Thread scheduling varies run to run; output must not."""
        _, stream = clip_stream
        layout = TileLayout(128, 96, 2, 2)
        a = ThreadedParallelDecoder(layout, k=3).decode(stream, timeout=60)
        b = ThreadedParallelDecoder(layout, k=3).decode(stream, timeout=60)
        assert all(x.max_abs_diff(y) == 0 for x, y in zip(a, b))

    def test_needs_a_splitter(self, clip_stream):
        with pytest.raises(ValueError):
            ThreadedParallelDecoder(TileLayout(128, 96, 1, 1), k=0)

    def test_error_propagates(self):
        layout = TileLayout(128, 96, 2, 1)
        with pytest.raises(Exception):
            ThreadedParallelDecoder(layout, k=1).decode(b"garbage", timeout=5)
