"""The protocol on real OS threads: order-correct and deadlock-free."""

import threading
import time

import pytest

import repro.parallel.threaded as threaded_mod
from repro.mpeg2.decoder import decode_stream
from repro.mpeg2.encoder import Encoder, EncoderConfig
from repro.parallel.pdecoder import TileDecoder
from repro.parallel.threaded import ThreadedParallelDecoder
from repro.wall.layout import TileLayout
from repro.workloads.synthetic import moving_pattern_frames


@pytest.fixture(scope="module")
def clip_stream():
    clip = moving_pattern_frames(128, 96, 10, seed=15)
    stream = Encoder(EncoderConfig(gop_size=5, b_frames=2)).encode(clip)
    return clip, stream


class TestThreadedDecoder:
    @pytest.mark.parametrize("m,n,k", [(2, 1, 1), (2, 2, 2), (2, 2, 3), (4, 2, 2)])
    def test_bit_exact_under_preemption(self, clip_stream, m, n, k):
        _, stream = clip_stream
        ref = decode_stream(stream)
        layout = TileLayout(128, 96, m, n)
        out = ThreadedParallelDecoder(layout, k=k).decode(stream, timeout=60)
        assert len(out) == len(ref)
        assert all(a.max_abs_diff(b) == 0 for a, b in zip(ref, out))

    @pytest.mark.parametrize("ship_plans", [True, False])
    def test_plan_and_bitstream_paths_bit_exact(self, clip_stream, ship_plans):
        """Both wire modes — compiled plans and sub-picture bitstreams —
        must match the sequential decoder exactly."""
        _, stream = clip_stream
        ref = decode_stream(stream)
        layout = TileLayout(128, 96, 2, 2)
        out = ThreadedParallelDecoder(layout, k=2, ship_plans=ship_plans).decode(
            stream, timeout=60
        )
        assert len(out) == len(ref)
        assert all(a.max_abs_diff(b) == 0 for a, b in zip(ref, out))

    def test_with_overlap(self, clip_stream):
        _, stream = clip_stream
        ref = decode_stream(stream)
        layout = TileLayout(128, 96, 2, 2, overlap=16)
        out = ThreadedParallelDecoder(layout, k=2).decode(stream, timeout=60)
        assert all(a.max_abs_diff(b) == 0 for a, b in zip(ref, out))

    def test_repeated_runs_stable(self, clip_stream):
        """Thread scheduling varies run to run; output must not."""
        _, stream = clip_stream
        layout = TileLayout(128, 96, 2, 2)
        a = ThreadedParallelDecoder(layout, k=3).decode(stream, timeout=60)
        b = ThreadedParallelDecoder(layout, k=3).decode(stream, timeout=60)
        assert all(x.max_abs_diff(y) == 0 for x, y in zip(a, b))

    def test_needs_a_splitter(self, clip_stream):
        with pytest.raises(ValueError):
            ThreadedParallelDecoder(TileLayout(128, 96, 1, 1), k=0)

    def test_error_propagates(self):
        layout = TileLayout(128, 96, 2, 1)
        with pytest.raises(Exception):
            ThreadedParallelDecoder(layout, k=1).decode(b"garbage", timeout=5)


class TestShutdownOnWorkerFailure:
    """A failing tile decoder must poison the pipeline, not hang the join."""

    def test_failing_decoder_cannot_hang_the_driver(self, clip_stream, monkeypatch):
        _, stream = clip_stream

        class FailingDecoder(TileDecoder):
            def decode_subpicture(self, sp):
                if self.tile.tid == 1 and sp.picture_index >= 2:
                    raise RuntimeError("injected tile-decoder failure")
                return super().decode_subpicture(sp)

            def decode_plan(self, tp):
                if self.tile.tid == 1 and tp.picture_index >= 2:
                    raise RuntimeError("injected tile-decoder failure")
                return super().decode_plan(tp)

        monkeypatch.setattr(threaded_mod, "TileDecoder", FailingDecoder)
        before = threading.active_count()
        layout = TileLayout(128, 96, 2, 2)
        t0 = time.monotonic()
        # A generous decode timeout: the failure must surface via the
        # poison path, long before any queue timeout could fire.
        with pytest.raises(RuntimeError, match="injected tile-decoder failure"):
            ThreadedParallelDecoder(layout, k=2).decode(stream, timeout=60)
        assert time.monotonic() - t0 < 20
        # every worker thread drained: nothing left blocked on a queue
        deadline = time.monotonic() + 10
        while threading.active_count() > before and time.monotonic() < deadline:
            time.sleep(0.05)
        assert threading.active_count() <= before

    def test_failure_in_root_of_deep_pipeline_drains(self, clip_stream, monkeypatch):
        """Root blocked on a full bounded queue must wake on poisoning."""
        _, stream = clip_stream

        class FailingDecoder(TileDecoder):
            def execute_sends(self, program, ptype):
                raise RuntimeError("decoder died before acking")

        monkeypatch.setattr(threaded_mod, "TileDecoder", FailingDecoder)
        before = threading.active_count()
        layout = TileLayout(128, 96, 2, 1)
        with pytest.raises(RuntimeError, match="decoder died"):
            # k=1 and 10 pictures: the root *will* be blocked on the
            # bounded picture queue when the failure strikes.
            ThreadedParallelDecoder(layout, k=1).decode(stream, timeout=60)
        deadline = time.monotonic() + 10
        while threading.active_count() > before and time.monotonic() < deadline:
            time.sleep(0.05)
        assert threading.active_count() <= before
