"""Report generator: structure and content sanity."""

import pytest

from repro.perf.report import PAPER_ANCHORS, generate_report


@pytest.fixture(scope="module")
def report():
    return generate_report(n_frames=16)


class TestReport:
    def test_all_sections_present(self, report):
        for section in (
            "## Table 4",
            "## Table 5 / Figure 6",
            "## Figure 7",
            "## Table 6 / Figure 8",
            "## Figure 9",
            "## Table 1",
        ):
            assert section in report

    def test_headline_mentions_paper_anchor(self, report):
        assert str(PAPER_ANCHORS["headline_fps"]) in report

    def test_all_streams_listed(self, report):
        for name in ("spr", "fish4", "orion4"):
            assert name in report

    def test_markdown_tables_well_formed(self, report):
        lines = report.splitlines()
        for i, line in enumerate(lines):
            if line.startswith("|") and set(line.strip("|").strip()) <= {"-", "|", " "}:
                header = lines[i - 1]
                assert header.count("|") == line.count("|"), header

    def test_baselines_included(self, report):
        assert "infeasible" in report  # GOP level at stream 16
        assert "hierarchical" in report

    def test_cli_report_writes_file(self, tmp_path, capsys):
        from repro.cli import main

        out = tmp_path / "r.md"
        assert main(["report", "-o", str(out), "--frames", "12"]) == 0
        assert out.read_text().startswith("# Reproduction report")
