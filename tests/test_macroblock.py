"""Macroblock-layer syntax: encode/parse round-trips and state semantics."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.bitstream import BitReader, BitWriter
from repro.mpeg2.constants import PictureType
from repro.mpeg2.macroblock import (
    CodingState,
    Macroblock,
    encode_macroblock,
    make_skipped,
    parse_macroblock,
    parse_macroblock_body,
)
from repro.mpeg2.structures import PictureHeader


def _header(ptype: PictureType, fc: int = 3) -> PictureHeader:
    f_code = {
        PictureType.I: ((15, 15), (15, 15)),
        PictureType.P: ((fc, fc), (15, 15)),
        PictureType.B: ((fc, fc), (fc, fc)),
    }[ptype]
    return PictureHeader(0, ptype, f_code=f_code)


def _intra_mb(rng, qscale=5) -> Macroblock:
    mb = Macroblock(address=-1, intra=True, cbp=0x3F, qscale_code=qscale)
    blocks = []
    for b in range(6):
        scan = np.zeros(64, dtype=np.int32)
        scan[0] = int(rng.integers(1, 255))
        nz = rng.choice(np.arange(1, 64), size=int(rng.integers(0, 8)), replace=False)
        scan[nz] = rng.integers(-30, 31, size=len(nz))
        blocks.append(scan)
    mb.blocks = blocks
    return mb


def _inter_mb(rng, ptype, qscale=5) -> Macroblock:
    mb = Macroblock(address=-1, qscale_code=qscale)
    mb.motion_forward = True
    mb.mv_fwd = (int(rng.integers(-20, 21)), int(rng.integers(-20, 21)))
    if ptype == PictureType.B and rng.random() < 0.5:
        mb.motion_backward = True
        mb.mv_bwd = (int(rng.integers(-20, 21)), int(rng.integers(-20, 21)))
    cbp = 0
    blocks = [None] * 6
    for b in range(6):
        if rng.random() < 0.5:
            scan = np.zeros(64, dtype=np.int32)
            pos = int(rng.integers(0, 64))
            scan[pos] = int(rng.integers(1, 40)) * (1 if rng.random() < 0.5 else -1)
            blocks[b] = scan
            cbp |= 1 << (5 - b)
    mb.cbp = cbp
    mb.pattern = cbp != 0
    mb.blocks = blocks
    return mb


def _assert_mb_equal(a: Macroblock, b: Macroblock):
    assert a.type_flags() == b.type_flags()
    assert a.qscale_code == b.qscale_code
    assert a.mv_fwd == b.mv_fwd
    assert a.mv_bwd == b.mv_bwd
    assert a.cbp == b.cbp
    for x, y in zip(a.blocks, b.blocks):
        if x is None or y is None:
            assert x is None and y is None
        else:
            assert (np.asarray(x) == np.asarray(y)).all()


class TestRoundTrip:
    @pytest.mark.parametrize("seed", range(5))
    def test_intra_chain(self, seed):
        """A chain of intra macroblocks exercises the DC predictors."""
        rng = np.random.default_rng(seed)
        hdr = _header(PictureType.I)
        enc_state = CodingState(hdr, qscale_code=5)
        mbs = [_intra_mb(rng) for _ in range(8)]
        bw = BitWriter()
        for mb in mbs:
            encode_macroblock(bw, mb, 1, enc_state)
        dec_state = CodingState(hdr, qscale_code=5)
        br = BitReader(bw.getvalue())
        for mb in mbs:
            inc, out = parse_macroblock(br, dec_state)
            assert inc == 1
            _assert_mb_equal(mb, out)

    @pytest.mark.parametrize("ptype", [PictureType.P, PictureType.B])
    @pytest.mark.parametrize("seed", range(3))
    def test_inter_chain(self, ptype, seed):
        """Inter macroblocks exercise the MV predictors."""
        rng = np.random.default_rng(seed)
        hdr = _header(ptype)
        enc_state = CodingState(hdr, qscale_code=5)
        mbs = [_inter_mb(rng, ptype) for _ in range(10)]
        bw = BitWriter()
        for mb in mbs:
            encode_macroblock(bw, mb, 1, enc_state)
        dec_state = CodingState(hdr, qscale_code=5)
        br = BitReader(bw.getvalue())
        for mb in mbs:
            _, out = parse_macroblock(br, dec_state)
            _assert_mb_equal(mb, out)

    def test_quant_change_propagates(self):
        rng = np.random.default_rng(0)
        hdr = _header(PictureType.I)
        enc_state = CodingState(hdr, qscale_code=5)
        a = _intra_mb(rng, qscale=5)
        b = _intra_mb(rng, qscale=9)
        b.quant = True
        c = _intra_mb(rng, qscale=9)  # inherits 9, no quant flag
        bw = BitWriter()
        for mb, inc in ((a, 1), (b, 1), (c, 1)):
            encode_macroblock(bw, mb, inc, enc_state)
        dec_state = CodingState(hdr, qscale_code=5)
        br = BitReader(bw.getvalue())
        outs = [parse_macroblock(br, dec_state)[1] for _ in range(3)]
        assert [o.qscale_code for o in outs] == [5, 9, 9]

    def test_address_increment_preserved(self):
        rng = np.random.default_rng(1)
        hdr = _header(PictureType.I)
        enc_state = CodingState(hdr, qscale_code=5)
        bw = BitWriter()
        encode_macroblock(bw, _intra_mb(rng), 7, enc_state)
        dec_state = CodingState(hdr, qscale_code=5)
        inc, _ = parse_macroblock(BitReader(bw.getvalue()), dec_state)
        assert inc == 7

    def test_bit_extents_recorded(self):
        rng = np.random.default_rng(2)
        hdr = _header(PictureType.I)
        enc_state = CodingState(hdr, qscale_code=5)
        bw = BitWriter()
        encode_macroblock(bw, _intra_mb(rng), 1, enc_state)
        total_bits = len(bw)
        dec_state = CodingState(hdr, qscale_code=5)
        _, out = parse_macroblock(BitReader(bw.getvalue()), dec_state)
        assert out.bit_start == 0
        assert out.body_start == 1  # increment '1' is a single bit
        assert out.bit_end == total_bits


class TestStateSemantics:
    def test_non_intra_resets_dc(self):
        hdr = _header(PictureType.P)
        state = CodingState(hdr, qscale_code=5)
        state.dc_pred = [7, 8, 9]
        rng = np.random.default_rng(0)
        bw = BitWriter()
        encode_macroblock(bw, _inter_mb(rng, PictureType.P), 1, state)
        assert state.dc_pred == [128, 128, 128]

    def test_intra_resets_mv(self):
        hdr = _header(PictureType.P)
        state = CodingState(hdr, qscale_code=5)
        state.pmv = [[10, 12], [0, 0]]
        rng = np.random.default_rng(0)
        bw = BitWriter()
        encode_macroblock(bw, _intra_mb(rng), 1, state)
        assert state.pmv == [[0, 0], [0, 0]]

    def test_p_no_mc_resets_mv(self):
        hdr = _header(PictureType.P)
        state = CodingState(hdr, qscale_code=5)
        state.pmv = [[4, 4], [0, 0]]
        mb = Macroblock(address=-1, pattern=True, cbp=0x20, qscale_code=5)
        scan = np.zeros(64, dtype=np.int32)
        scan[1] = 3
        mb.blocks = [scan] + [None] * 5
        bw = BitWriter()
        encode_macroblock(bw, mb, 1, state)
        assert state.pmv[0] == [0, 0]

    def test_skipped_p_semantics(self):
        hdr = _header(PictureType.P)
        state = CodingState(hdr, qscale_code=5)
        state.pmv = [[6, 6], [0, 0]]
        state.dc_pred = [1, 2, 3]
        smb = make_skipped(17, state)
        assert smb.skipped and smb.motion_forward and smb.mv_fwd == (0, 0)
        assert state.pmv[0] == [0, 0]
        assert state.dc_pred == [128, 128, 128]

    def test_skipped_b_semantics(self):
        hdr = _header(PictureType.B)
        state = CodingState(hdr, qscale_code=5)
        state.pmv = [[6, 2], [4, 8]]
        state.prev_forward = True
        state.prev_backward = True
        smb = make_skipped(3, state)
        assert smb.mv_fwd == (6, 2) and smb.mv_bwd == (4, 8)
        assert state.pmv == [[6, 2], [4, 8]]  # unchanged in B

    def test_snapshot_restore_is_deep(self):
        hdr = _header(PictureType.B)
        state = CodingState(hdr, qscale_code=7)
        state.pmv = [[1, 2], [3, 4]]
        snap = state.snapshot()
        state.pmv[0][0] = 99
        state.dc_pred[0] = 99
        state.restore(snap)
        assert state.pmv == [[1, 2], [3, 4]]
        assert state.dc_pred == [128, 128, 128]

    def test_skipped_cannot_be_encoded(self):
        hdr = _header(PictureType.P)
        state = CodingState(hdr)
        smb = make_skipped(0, state)
        with pytest.raises(ValueError):
            encode_macroblock(BitWriter(), smb, 1, state)


@given(st.integers(1, 31), st.lists(st.integers(0, 254), min_size=1, max_size=12))
@settings(max_examples=40, deadline=None)
def test_dc_chain_roundtrip_property(qscale, dcs):
    """Arbitrary DC sequences survive the differential chain."""
    hdr = _header(PictureType.I)
    enc_state = CodingState(hdr, qscale_code=qscale)
    bw = BitWriter()
    mbs = []
    for dc in dcs:
        mb = Macroblock(address=-1, intra=True, cbp=0x3F, qscale_code=qscale)
        mb.blocks = []
        for _ in range(6):
            scan = np.zeros(64, dtype=np.int32)
            scan[0] = dc
            mb.blocks.append(scan)
        mbs.append(mb)
        encode_macroblock(bw, mb, 1, enc_state)
    dec_state = CodingState(hdr, qscale_code=qscale)
    br = BitReader(bw.getvalue())
    for mb in mbs:
        _, out = parse_macroblock(br, dec_state)
        for b in range(6):
            assert out.blocks[b][0] == mb.blocks[b][0]
