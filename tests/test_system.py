"""Timed 1-k-(m,n) system: protocol safety and performance shape."""

import pytest

from repro.net.gm import NetworkParams
from repro.parallel.config import predicted_frame_rate
from repro.parallel.system import TimedSystem, run_system
from repro.perf.costmodel import CostModel
from repro.wall.layout import TileLayout
from repro.workloads.streams import stream_by_id


S1 = stream_by_id(1)
S8 = stream_by_id(8)
S16 = stream_by_id(16)


class TestProtocolSafety:
    def test_no_flow_control_violations(self):
        for k in (0, 1, 3):
            res = run_system(S8, 2, 2, k=k, n_frames=16)
            assert res.flow_control_violations == 0

    def test_all_frames_displayed_in_order(self):
        res = run_system(S8, 2, 2, k=2, n_frames=16)
        assert len(res.display_times) == 16
        assert res.display_times == sorted(res.display_times)

    def test_disabling_anid_breaks_the_protocol(self):
        """Without ack redirection, splitters race and either flood the
        decoders' two receive buffers or deliver pictures out of order."""
        lenient = NetworkParams(strict=False)
        spec = S8
        layout = TileLayout(spec.width, spec.height, 2, 2)
        sys_ = TimedSystem(
            spec, layout, k=3, net_params=lenient, n_frames=16, disable_anid=True
        )
        try:
            res = sys_.run()
            broken = res.flow_control_violations > 0
        except RuntimeError as exc:
            broken = "ordering" in str(exc)
        assert broken

    def test_breakdown_buckets_cover_decoder_time(self):
        res = run_system(S8, 2, 2, k=2, n_frames=16)
        for bd in res.breakdowns.values():
            assert bd.work > 0
            assert bd.total > 0
            fr = bd.fractions()
            assert abs(sum(fr.values()) - 1.0) < 1e-9


class TestPerformanceShape:
    def test_one_level_splitter_saturates(self):
        """§5.3: with more than ~4 decoders a single splitter cannot keep
        up — frame rate flattens, then droops slightly."""
        fps = {
            (m, n): run_system(S1, m, n, k=0, n_frames=24).fps
            for m, n in [(1, 1), (2, 2), (3, 3), (4, 4)]
        }
        assert fps[(2, 2)] > 1.8 * fps[(1, 1)]
        # saturation: 16 decoders no better than 9
        assert fps[(4, 4)] <= fps[(3, 3)] * 1.02

    def test_two_level_removes_bottleneck(self):
        one = run_system(S8, 4, 4, k=0, n_frames=24).fps
        two = run_system(S8, 4, 4, k=3, n_frames=24).fps
        assert two > one * 1.3

    def test_headline_anchor_stream16(self):
        """§5.5: 1-4-(4,4) plays the 3840x2800 Orion stream at 38.9 fps."""
        res = run_system(S16, 4, 4, k=4, n_frames=24)
        assert res.fps == pytest.approx(38.9, rel=0.12)

    def test_work_share_falls_with_tiles(self):
        """Figure 7: ~80 % work at 2x2 vs ~40 % at 4x4 for stream 8."""
        w22 = run_system(S8, 2, 2, k=2, n_frames=24).mean_breakdown().fractions()["work"]
        w44 = run_system(S8, 4, 4, k=5, n_frames=24).mean_breakdown().fractions()["work"]
        assert 0.6 < w22 < 0.92
        assert 0.3 < w44 < 0.6
        assert w22 - w44 > 0.2

    def test_splitter_send_exceeds_receive_by_sph_overhead(self):
        """Figure 9: splitter send bandwidth ~20 % above receive."""
        res = run_system(S16, 4, 4, k=4, n_frames=24)
        send = sum(res.bandwidth[f"splitter{i}"][0] for i in range(4))
        recv = sum(res.bandwidth[f"splitter{i}"][1] for i in range(4))
        assert 1.05 < send / recv < 1.45

    def test_bandwidth_low_and_balanced(self):
        """Figure 9: every node's bandwidth fits easily in a commodity
        network (Myrinet-class: >100 MB/s)."""
        res = run_system(S16, 4, 4, k=4, n_frames=24)
        for name, (s, r) in res.bandwidth.items():
            assert s < 30 and r < 30, name

    def test_matches_configuration_model_when_splitter_bound(self):
        """F = min(k/t_s, 1/t_d): with k=1 on a big stream the splitter
        bound dominates and the DES agrees with the formula."""
        cost = CostModel()
        layout = TileLayout(S16.width, S16.height, 4, 4)
        t_s = cost.t_s(S16)  # on a worker-speed node
        res = run_system(S16, 4, 4, k=1, n_frames=24)
        model = predicted_frame_rate(1, t_s, cost.t_d(S16, layout))
        assert res.fps == pytest.approx(model, rel=0.25)

    def test_pixel_rate_scales_with_nodes(self):
        """Figure 8: pixel decoding rate grows near-linearly."""
        small = run_system(stream_by_id(10), 2, 2, k=1, n_frames=24)
        large = run_system(S16, 4, 4, k=4, n_frames=24)
        assert large.pixel_rate_mpps > 2.0 * small.pixel_rate_mpps

    def test_labels(self):
        assert run_system(S1, 2, 1, k=0, n_frames=4).label == "1-(2,1)"
        assert run_system(S1, 2, 1, k=2, n_frames=4).label == "1-2-(2,1)"


class TestDeterminism:
    def test_repeated_runs_identical(self):
        a = run_system(S8, 2, 2, k=2, n_frames=12)
        b = run_system(S8, 2, 2, k=2, n_frames=12)
        assert a.fps == b.fps
        assert a.display_times == b.display_times
