"""Multi-display decoder nodes (paper future work §6, first item)."""

import pytest

from repro.parallel.system import TimedSystem
from repro.wall.layout import TileLayout
from repro.workloads.streams import stream_by_id

S8 = stream_by_id(8)
S16 = stream_by_id(16)


def _run(spec, m, n, k, tpn, n_frames=16):
    layout = TileLayout(spec.width, spec.height, m, n)
    return TimedSystem(spec, layout, k=k, n_frames=n_frames, tiles_per_node=tpn)


class TestGrouping:
    def test_node_count_shrinks(self):
        sys1 = _run(S8, 4, 4, 2, 1)
        sys2 = _run(S8, 4, 4, 2, 2)
        sys4 = _run(S8, 4, 4, 2, 4)
        assert len(sys1.decoder_ids) == 16
        assert len(sys2.decoder_ids) == 8
        assert len(sys4.decoder_ids) == 4

    def test_uneven_grouping(self):
        sys3 = _run(S8, 3, 2, 1, 4)  # 6 tiles over groups of 4 -> 2 nodes
        assert len(sys3.decoder_ids) == 2
        assert sys3.tile_groups == [[0, 1, 2, 3], [4, 5]]

    def test_every_tile_mapped(self):
        sys2 = _run(S8, 4, 4, 2, 3)
        assert sorted(sys2.node_of_tile) == list(range(16))
        assert set(sys2.node_of_tile.values()) == set(sys2.decoder_ids)

    def test_invalid_rejected(self):
        with pytest.raises(ValueError):
            _run(S8, 2, 2, 1, 0)


class TestBehaviour:
    def test_runs_and_stays_ordered(self):
        res = _run(S16, 4, 4, 3, 2).run()
        assert res.flow_control_violations == 0
        assert len(res.display_times) == 16
        assert res.display_times == sorted(res.display_times)

    def test_fewer_nodes_lower_fps(self):
        """Decode is CPU-bound, so consolidating tiles trades nodes for
        frame rate — quantifying the paper's open question."""
        f1 = _run(S16, 4, 4, 4, 1).run().fps
        f2 = _run(S16, 4, 4, 4, 2).run().fps
        assert f2 < f1
        # ...but better than half: intra-node exchanges leave the network
        assert f2 > 0.45 * f1

    def test_single_node_wall(self):
        """Degenerate case: one PC drives the whole 2x2 wall."""
        res = _run(S8, 2, 2, 1, 4).run()
        assert len(res.breakdowns) == 1
        assert res.fps > 0
        # nothing to exchange over the network between co-located tiles
        bd = next(iter(res.breakdowns.values()))
        assert bd.wait_remote == 0.0
