"""Open GOPs (§6.3.8): leading B pictures referencing across GOPs."""

import pytest

from repro.mpeg2 import psnr
from repro.mpeg2.constants import PictureType
from repro.mpeg2.decoder import Decoder, decode_stream
from repro.mpeg2.encoder import Encoder, EncoderConfig, plan_gop_structure
from repro.mpeg2.validate import validate_stream
from repro.parallel.functional_baselines import GopParallelDecoder
from repro.parallel.pipeline import ParallelDecoder
from repro.wall.layout import TileLayout
from repro.workloads.synthetic import moving_pattern_frames


@pytest.fixture(scope="module")
def clip():
    return moving_pattern_frames(96, 64, 14, seed=14)


@pytest.fixture(scope="module")
def open_stream(clip):
    return Encoder(
        EncoderConfig(gop_size=6, b_frames=2, closed_gop=False)
    ).encode(clip)


class TestPlanning:
    def test_leading_bs_cross_reference(self):
        plans = plan_gop_structure(
            14, EncoderConfig(gop_size=6, b_frames=2, closed_gop=False)
        )
        by_display = {p.display_index: p for p in plans}
        # B4/B5 display before I6 but reference back to P3
        assert by_display[6].picture_type == PictureType.I
        for b in (4, 5):
            p = by_display[b]
            assert p.picture_type == PictureType.B
            assert p.fwd_ref == 3 and p.bwd_ref == 6

    def test_every_frame_covered(self):
        for n in (7, 12, 14, 20):
            plans = plan_gop_structure(
                n, EncoderConfig(gop_size=6, b_frames=2, closed_gop=False)
            )
            assert sorted(p.display_index for p in plans) == list(range(n))

    def test_temporal_references_unique_per_gop(self):
        plans = plan_gop_structure(
            18, EncoderConfig(gop_size=6, b_frames=2, closed_gop=False)
        )
        gops, cur = [], []
        for p in plans:
            if p.new_gop and cur:
                gops.append(cur)
                cur = []
            cur.append(p.temporal_reference)
        gops.append(cur)
        for trefs in gops:
            assert len(set(trefs)) == len(trefs)


class TestDecoding:
    def test_validates_and_decodes(self, clip, open_stream):
        assert validate_stream(open_stream).ok
        out = decode_stream(open_stream)
        assert len(out) == len(clip)
        assert min(psnr(a, b) for a, b in zip(clip, out)) > 30

    def test_display_order_correct(self, clip, open_stream):
        """Every decoded frame is closest to its own source frame."""
        import numpy as np

        out = decode_stream(open_stream)
        for i, dec in enumerate(out):
            errs = [
                np.mean(np.abs(dec.y.astype(int) - src.y.astype(int)))
                for src in clip
            ]
            assert int(np.argmin(errs)) == i

    def test_parallel_bit_exact(self, open_stream):
        ref = decode_stream(open_stream)
        layout = TileLayout(96, 64, 2, 2)
        out = ParallelDecoder(layout, k=2).decode(open_stream)
        assert all(a.max_abs_diff(b) == 0 for a, b in zip(ref, out))

    def test_gop_parallel_baseline_rejects_open(self, open_stream):
        """GOP-level parallelism requires closed GOPs — the baseline must
        refuse rather than decode garbage."""
        with pytest.raises(ValueError):
            GopParallelDecoder(2).decode(open_stream)

    def test_seek_into_open_gop_rejected(self, open_stream):
        with pytest.raises(ValueError):
            Decoder().decode_from_gop(open_stream, 1)

    def test_open_gop_saves_bits(self, clip):
        """Open GOPs replace a forced tail P per GOP with cheap B's."""
        open_ = Encoder(
            EncoderConfig(gop_size=6, b_frames=2, closed_gop=False)
        ).encode(clip)
        closed = Encoder(
            EncoderConfig(gop_size=6, b_frames=2, closed_gop=True)
        ).encode(clip)
        assert len(open_) < len(closed)
