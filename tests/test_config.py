"""Configuration determination: F = min(k/t_s, 1/t_d) and auto-config."""

import pytest

from repro.parallel.config import (
    SystemConfig,
    auto_configure,
    decoder_bound,
    match_tiles_to_video,
    optimal_k,
    predicted_frame_rate,
    splitter_bound,
)


class TestFrameRateModel:
    def test_splitter_bound_dominates_small_k(self):
        # t_s = 40 ms, t_d = 5 ms: one splitter caps at 25 fps
        assert predicted_frame_rate(1, 0.040, 0.005) == pytest.approx(25.0)

    def test_decoder_bound_dominates_large_k(self):
        assert predicted_frame_rate(10, 0.040, 0.005) == pytest.approx(200.0)

    def test_monotone_in_k_until_decoder_bound(self):
        rates = [predicted_frame_rate(k, 0.040, 0.005) for k in range(1, 12)]
        assert rates == sorted(rates)
        assert rates[-1] == rates[-2] == decoder_bound(0.005)

    def test_bounds_helpers(self):
        assert splitter_bound(4, 0.040) == pytest.approx(100.0)
        assert decoder_bound(0.010) == pytest.approx(100.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            predicted_frame_rate(0, 1.0, 1.0)
        with pytest.raises(ValueError):
            predicted_frame_rate(1, -1.0, 1.0)
        with pytest.raises(ValueError):
            optimal_k(0.0, 1.0)


class TestOptimalK:
    def test_exact_ratio(self):
        assert optimal_k(0.040, 0.010) == 4

    def test_ceiling(self):
        assert optimal_k(0.041, 0.010) == 5

    def test_fast_splitter_needs_one(self):
        assert optimal_k(0.004, 0.010) == 1

    def test_k_star_achieves_decoder_bound(self):
        for t_s, t_d in [(0.05, 0.007), (0.02, 0.02), (0.1, 0.013)]:
            k = optimal_k(t_s, t_d)
            assert predicted_frame_rate(k, t_s, t_d) == pytest.approx(
                decoder_bound(t_d)
            )
            if k > 1:
                assert predicted_frame_rate(k - 1, t_s, t_d) < decoder_bound(t_d)


class TestSystemConfig:
    def test_node_counts(self):
        assert SystemConfig(k=4, m=4, n=4).n_nodes == 21  # the paper's headline
        assert SystemConfig(k=0, m=2, n=2).n_nodes == 5

    def test_labels(self):
        assert SystemConfig(k=0, m=3, n=2).label() == "1-(3,2)"
        assert SystemConfig(k=4, m=4, n=4).label() == "1-4-(4,4)"


class TestMatching:
    def test_resolution_match(self):
        assert match_tiles_to_video(3840, 2800) == (4, 4)
        assert match_tiles_to_video(720, 480) == (1, 1)
        assert match_tiles_to_video(1920, 1080) == (2, 2)

    def test_caps_at_wall_size(self):
        assert match_tiles_to_video(100000, 100000, max_m=6, max_n=4) == (6, 4)


class TestAutoConfigure:
    def test_meets_reachable_target(self):
        cfg = auto_configure(
            t_s=0.050,
            t_d_of=lambda m, n: 0.010,
            video_w=3840,
            video_h=2800,
            target_fps=60.0,
        )
        assert cfg.m == 4 and cfg.n == 4
        assert predicted_frame_rate(cfg.k, 0.050, 0.010) >= 60.0

    def test_unreachable_target_returns_decoder_optimal(self):
        cfg = auto_configure(
            t_s=0.050,
            t_d_of=lambda m, n: 0.020,  # decoders cap at 50 fps
            video_w=3840,
            video_h=2800,
            target_fps=200.0,
        )
        assert cfg.k == optimal_k(0.050, 0.020)

    def test_easy_target_uses_one_splitter(self):
        cfg = auto_configure(
            t_s=0.010,
            t_d_of=lambda m, n: 0.010,
            video_w=1280,
            video_h=720,
            target_fps=30.0,
        )
        assert cfg.k == 1
