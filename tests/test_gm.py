"""GM transport model: timing, flow control, ordering, accounting."""

import pytest

from repro.net.gm import FlowControlError, GMNetwork, NetworkParams
from repro.net.simtime import Simulator, Timeout


def _net(**kw):
    sim = Simulator()
    return sim, GMNetwork(sim, NetworkParams(**kw))


class TestTransferTiming:
    def test_wire_time_model(self):
        """Delivery = send overhead + tx hold + latency + rx hold."""
        sim, net = _net(bandwidth=1e6, latency=1e-3, per_message_overhead=1e-4)
        src, dst = net.port(0), net.port(1)
        dst.post_receive_buffer(1)
        arrivals = []

        def sender():
            yield from src.send(1, "x", size=1000, tag="t")

        def receiver():
            msg = yield from dst.recv()
            arrivals.append((sim.now, msg.payload))

        sim.process(sender())
        sim.process(receiver())
        sim.run()
        expected = 1e-4 + 1000 / 1e6 + 1e-3 + 1000 / 1e6
        assert arrivals[0][0] == pytest.approx(expected)

    def test_copy_cost_ablation_knob(self):
        sim0, net0 = _net(copy_cost_per_byte=0.0)
        sim1, net1 = _net(copy_cost_per_byte=1e-6)

        def run(sim, net):
            dst = net.port(1)
            dst.post_receive_buffer(1)
            src = net.port(0)
            done = []

            def sender():
                yield from src.send(1, None, size=10000, tag="t")
                done.append(sim.now)

            sim.process(sender())
            sim.run()
            return done[0]

        assert run(sim1, net1) > run(sim0, net0)

    def test_nic_serializes_concurrent_sends(self):
        sim, net = _net(bandwidth=1e6, latency=0.0, per_message_overhead=0.0)
        src = net.port(0)
        for nid in (1, 2):
            net.port(nid).post_receive_buffer(1)
        ends = []

        def sender(dst):
            yield from src.send(dst, None, size=1000, tag="t")
            ends.append(sim.now)

        sim.process(sender(1))
        sim.process(sender(2))
        sim.run()
        assert ends == [pytest.approx(1e-3), pytest.approx(2e-3)]


class TestFlowControl:
    def test_no_buffer_strict_raises(self):
        sim, net = _net(strict=True)
        src = net.port(0)
        net.port(1)  # never posts

        def sender():
            yield from src.send(1, None, size=10, tag="t")

        sim.process(sender())
        with pytest.raises(FlowControlError):
            sim.run()

    def test_no_buffer_lenient_counts(self):
        sim, net = _net(strict=False)
        src = net.port(0)
        net.port(1)

        def sender():
            yield from src.send(1, None, size=10, tag="t")

        sim.process(sender())
        sim.run()
        assert net.flow_control_violations == 1

    def test_control_messages_bypass_buffers(self):
        sim, net = _net(strict=True)
        src = net.port(0)
        net.port(1)

        def sender():
            yield from src.send(1, None, size=8, tag="ack", control=True)

        sim.process(sender())
        sim.run()
        assert net.flow_control_violations == 0

    def test_posted_buffers_consumed(self):
        sim, net = _net(strict=True)
        src, dst = net.port(0), net.port(1)
        dst.post_receive_buffer(2)

        def sender():
            for _ in range(2):
                yield from src.send(1, None, size=10, tag="t")

        sim.process(sender())
        sim.run()
        assert dst.posted_buffers == 0


class TestOrdering:
    def test_per_sender_pair_fifo(self):
        sim, net = _net()
        src, dst = net.port(0), net.port(1)
        dst.post_receive_buffer(10)
        got = []

        def sender():
            for i in range(5):
                yield from src.send(1, i, size=100, tag="t")

        def receiver():
            for _ in range(5):
                msg = yield from dst.recv()
                got.append(msg.payload)

        sim.process(sender())
        sim.process(receiver())
        sim.run()
        assert got == [0, 1, 2, 3, 4]

    def test_cross_sender_interleaving_possible(self):
        """A later small message from a fast sender can overtake an earlier
        large one from a busy sender — the GM property the ANID protocol
        exists to handle."""
        sim, net = _net(bandwidth=1e6, latency=0.0, per_message_overhead=0.0)
        a, b, dst = net.port(0), net.port(1), net.port(2)
        dst.post_receive_buffer(2)
        got = []

        def slow():
            yield from a.send(2, "big", size=100000, tag="t")

        def fast():
            yield Timeout(1e-6)
            yield from b.send(2, "small", size=10, tag="t")

        def receiver():
            for _ in range(2):
                msg = yield from dst.recv()
                got.append(msg.payload)

        sim.process(slow())
        sim.process(fast())
        sim.process(receiver())
        sim.run()
        assert got == ["small", "big"]


class TestAccounting:
    def test_byte_counters(self):
        sim, net = _net()
        src, dst = net.port(0), net.port(1)
        dst.post_receive_buffer(3)

        def sender():
            for size in (100, 200, 300):
                yield from src.send(1, None, size=size, tag="t")

        def receiver():
            for _ in range(3):
                yield from dst.recv()

        sim.process(sender())
        sim.process(receiver())
        sim.run()
        assert src.stats.bytes_sent == 600
        assert src.stats.messages_sent == 3
        assert dst.stats.bytes_received == 600

    def test_bandwidth_report(self):
        sim, net = _net()
        src, dst = net.port(0), net.port(1)
        dst.post_receive_buffer(1)

        def sender():
            yield from src.send(1, None, size=5_000_000, tag="t")

        def receiver():
            yield from dst.recv()

        sim.process(sender())
        sim.process(receiver())
        sim.run()
        report = net.bandwidth_report(duration=1.0)
        assert report[0][0] == pytest.approx(5.0)
        assert report[1][1] == pytest.approx(5.0)
