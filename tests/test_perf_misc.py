"""Odds and ends of the perf layer: config tables, helpers, invariants."""

import pytest

from repro.perf import experiments as E
from repro.perf.costmodel import CostModel
from repro.wall.layout import TileLayout
from repro.workloads.streams import TABLE4_STREAMS, stream_by_id


class TestExperimentConfigTables:
    def test_table6_covers_all_streams(self):
        assert sorted(E.TABLE6_CONFIGS) == [s.sid for s in TABLE4_STREAMS]

    def test_configs_fit_the_wall(self):
        for sid, (m, n) in E.TABLE6_CONFIGS.items():
            assert 1 <= m <= 6 and 1 <= n <= 4  # the 6x4 Princeton wall

    def test_configs_scale_with_resolution(self):
        """Bigger streams get at least as many tiles."""
        tiles = {
            sid: m * n for sid, (m, n) in E.TABLE6_CONFIGS.items()
        }
        assert tiles[16] == 16
        assert tiles[1] == 1
        assert tiles[16] >= tiles[13] >= tiles[10] >= tiles[8]

    def test_screen_configs_ordered_by_size(self):
        sizes = [m * n for m, n in E.SCREEN_CONFIGS]
        assert sizes == sorted(sizes)
        assert sizes[0] == 1 and sizes[-1] == 16


class TestLayoutsMatchStreams:
    @pytest.mark.parametrize("sid", [s.sid for s in TABLE4_STREAMS])
    def test_every_stream_layout_constructible(self, sid):
        spec = stream_by_id(sid)
        m, n = E.TABLE6_CONFIGS[sid]
        layout = TileLayout(spec.width, spec.height, m, n)
        assert layout.n_tiles == m * n
        loads = spec.tile_workloads(layout)
        assert sum(w["mbs"] for w in loads.values()) >= spec.mbs_per_frame


class TestCostModelSanity:
    def test_costs_positive(self):
        c = CostModel()
        for name in (
            "decode_mb_fixed",
            "decode_per_bit",
            "display_mb",
            "split_mb_fixed",
            "split_per_bit",
            "serve_per_byte",
            "mei_per_instruction",
            "ack_cost",
        ):
            assert getattr(c, name) > 0, name

    def test_console_slower_than_workers(self):
        assert CostModel().root_speed < 1.0

    def test_t_s_monotone_in_resolution(self):
        c = CostModel()
        assert c.t_s(stream_by_id(16)) > c.t_s(stream_by_id(8)) > c.t_s(
            stream_by_id(1)
        )

    def test_t_d_decreases_with_tiles(self):
        c = CostModel()
        spec = stream_by_id(16)
        t1 = c.t_d(spec, TileLayout(spec.width, spec.height, 1, 1))
        t4 = c.t_d(spec, TileLayout(spec.width, spec.height, 2, 2))
        t16 = c.t_d(spec, TileLayout(spec.width, spec.height, 4, 4))
        assert t1 > t4 > t16

    def test_paper_anchor_ratio(self):
        """The §5.3 calibration anchor: splitting a picture costs roughly
        a quarter of decoding it (saturation beyond ~4 decoders)."""
        c = CostModel()
        spec = stream_by_id(1)
        bits = spec.avg_frame_bytes * 8
        ratio = c.t_split_picture(spec.mbs_per_frame, bits) / c.t_decode_mbs(
            spec.mbs_per_frame, bits
        )
        assert 0.15 < ratio < 0.4
