"""VBV buffer model, GOP random access, and error concealment."""

import numpy as np
import pytest

from repro.mpeg2.decoder import Decoder, decode_stream
from repro.mpeg2.encoder import Encoder, EncoderConfig
from repro.mpeg2.parser import PictureScanner
from repro.mpeg2.ratecontrol import RateControlConfig, RateControlledEncoder
from repro.mpeg2.vbv import check_stream, simulate_vbv
from repro.parallel.mb_splitter import MacroblockSplitter
from repro.parallel.pdecoder import TileDecoder
from repro.parallel.subpicture import RunRecord
from repro.wall.layout import TileLayout
from repro.workloads.synthetic import fish_tank_frames


class TestVBVModel:
    def test_steady_stream_ok(self):
        # constant-size pictures exactly at the channel rate
        res = simulate_vbv([1000] * 50, bit_rate=30_000, fps=30.0, buffer_bits=50_000)
        assert res.ok
        assert res.min_occupancy >= 1000

    def test_oversized_picture_underflows(self):
        sizes = [1000] * 10 + [100_000]
        res = simulate_vbv(sizes, bit_rate=30_000, fps=30.0, buffer_bits=50_000)
        assert not res.ok
        assert res.underflows == [10]

    def test_starved_channel_underflows_everywhere(self):
        res = simulate_vbv(
            [2000] * 20, bit_rate=30_000, fps=30.0,
            buffer_bits=8_000, initial_delay=0.1,
        )
        assert res.underflows  # 2000 bits/frame > 1000 arriving per tick

    def test_tiny_pictures_overflow(self):
        res = simulate_vbv(
            [10] * 30, bit_rate=300_000, fps=30.0, buffer_bits=20_000
        )
        assert res.overflows  # channel outpaces consumption; buffer clamps

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            simulate_vbv([1], bit_rate=0, fps=30)

    def test_rate_controlled_stream_fits_vbv(self):
        """The rate controller's output survives the VBV at ~1.3x its
        average rate with a standard MP@ML buffer."""
        frames = fish_tank_frames(160, 96, 24, seed=9)
        enc = RateControlledEncoder(
            EncoderConfig(gop_size=6, b_frames=2),
            RateControlConfig(target_bpp=0.3),
        )
        data = enc.encode(frames)
        nominal = 8 * len(data) / (len(frames) / 30.0)  # bits per second
        res = check_stream(data, bit_rate=1.3 * nominal, fps=30.0)
        assert res.ok, (res.underflows, res.overflows)


class TestGOPSeek:
    @pytest.fixture(scope="class")
    def clip_stream(self):
        frames = fish_tank_frames(96, 64, 18, seed=2)
        return frames, Encoder(EncoderConfig(gop_size=6, b_frames=2)).encode(frames)

    def test_seek_points(self, clip_stream):
        _, stream = clip_stream
        points = Decoder.seek_points(stream)
        assert points[0] == 0
        assert len(points) == 3  # 18 frames / gop 6

    def test_decode_from_each_gop(self, clip_stream):
        frames, stream = clip_stream
        full = decode_stream(stream)
        for g in range(3):
            tail = Decoder().decode_from_gop(stream, g)
            expect = full[g * 6 :]
            assert len(tail) == len(expect)
            for a, b in zip(expect, tail):
                assert a.max_abs_diff(b) == 0

    def test_seek_past_end_rejected(self, clip_stream):
        _, stream = clip_stream
        with pytest.raises(ValueError):
            Decoder().decode_from_gop(stream, 99)

    def test_open_gop_seek_rejected(self):
        frames = fish_tank_frames(96, 64, 12, seed=3)
        stream = Encoder(
            EncoderConfig(gop_size=6, b_frames=2, closed_gop=False)
        ).encode(frames)
        with pytest.raises(ValueError):
            Decoder().decode_from_gop(stream, 1)


class TestErrorConcealment:
    @pytest.fixture(scope="class")
    def split_setup(self):
        frames = fish_tank_frames(96, 64, 6, seed=4)
        stream = Encoder(EncoderConfig(gop_size=6, b_frames=1)).encode(frames)
        seq, pics = PictureScanner(stream).scan()
        layout = TileLayout(seq.width, seq.height, 2, 1)
        splitter = MacroblockSplitter(seq, layout)
        return seq, layout, splitter, pics

    def _corrupt(self, sp):
        """Flip bits inside the largest run record's payload."""
        runs = [r for r in sp.records if isinstance(r, RunRecord)]
        rec = max(runs, key=lambda r: len(r.payload))
        bad = bytearray(rec.payload)
        for i in range(min(6, len(bad))):
            bad[i] ^= 0xFF
        rec.payload = bytes(bad)
        return sp

    def test_strict_decoder_raises(self, split_setup):
        seq, layout, splitter, pics = split_setup
        dec = TileDecoder(layout.tile(0), layout, seq)
        result = splitter.split(pics[0], 0)
        with pytest.raises(Exception):
            dec.decode_subpicture(self._corrupt(result.subpictures[0]))

    def test_concealing_decoder_survives(self, split_setup):
        seq, layout, splitter, pics = split_setup
        dec = TileDecoder(layout.tile(0), layout, seq, conceal_errors=True)
        # picture 0 decodes cleanly (builds a reference)...
        r0 = splitter.split(pics[0], 0)
        dec.decode_subpicture(r0.subpictures[0])
        # ...picture 1 arrives corrupted
        r1 = splitter.split(pics[1], 1)
        dec.decode_subpicture(self._corrupt(r1.subpictures[0]))
        assert dec.stats.records_failed >= 1
        assert dec.stats.macroblocks_concealed > 0

    def test_concealment_copies_reference(self, split_setup):
        """Concealed macroblocks show the previous anchor's pixels."""
        seq, layout, splitter, pics = split_setup
        dec = TileDecoder(layout.tile(0), layout, seq, conceal_errors=True)
        r0 = splitter.split(pics[0], 0)
        dec.decode_subpicture(r0.subpictures[0])
        anchor = dec.held.copy()
        r1 = splitter.split(pics[1], 1)
        sp = r1.subpictures[0]
        # corrupt every run so the whole tile conceals
        for rec in sp.records:
            if isinstance(rec, RunRecord):
                rec.payload = b"\xff" * len(rec.payload)
        dec.decode_subpicture(sp)
        part = layout.tile(0).partition
        a = dec.held.y[part.y0 : part.y1, part.x0 : part.x1]
        b = anchor.y[part.y0 : part.y1, part.x0 : part.x1]
        assert np.array_equal(a, b)
