"""Table B.15 (intra_vlc_format = 1) end to end."""

import pytest

from repro.bitstream import BitReader, BitWriter
from repro.mpeg2 import psnr, vlc
from repro.mpeg2.constants import PICTURE_START_CODE, PictureType
from repro.mpeg2.decoder import decode_stream
from repro.mpeg2.encoder import Encoder, EncoderConfig
from repro.mpeg2.structures import PictureHeader
from repro.parallel.pipeline import ParallelDecoder
from repro.wall.layout import TileLayout
from repro.workloads.synthetic import moving_pattern_frames


class TestCoefficientCodec:
    @pytest.mark.parametrize(
        "rl",
        [
            [(0, 1)],
            [(0, 3), (1, 1), (2, -2)],
            [(0, -1), (5, 1), (0, 7)],
            [(13, 1), (0, 200)],  # (0, 200) escapes
            [(63, 1)],  # escapes (run beyond table)
        ],
    )
    def test_roundtrip(self, rl):
        bw = BitWriter()
        vlc.encode_coefficients(bw, rl, intra=True, table_one=True)
        out = vlc.decode_coefficients(
            BitReader(bw.getvalue()), intra=True, table_one=True
        )
        assert out == rl

    def test_short_codes_shorter_than_b14(self):
        """B.15's raison d'etre: common intra pairs cost fewer bits."""
        def bits(table_one):
            bw = BitWriter()
            vlc.encode_coefficients(
                bw, [(0, 3), (0, 5), (0, 7)], intra=True, table_one=table_one
            )
            return len(bw)

        assert bits(True) < bits(False)

    def test_table_one_rejected_for_non_intra(self):
        with pytest.raises(ValueError):
            vlc.encode_coefficients(BitWriter(), [(0, 1)], intra=False, table_one=True)
        with pytest.raises(ValueError):
            vlc.decode_coefficients(BitReader(b"\x00"), intra=False, table_one=True)

    def test_distinct_eob(self):
        """Table one's EOB is 4 bits ('0110'), not 2."""
        bw = BitWriter()
        vlc.encode_coefficients(bw, [], intra=True, table_one=True)
        assert len(bw) == 4
        bw0 = BitWriter()
        vlc.encode_coefficients(bw0, [], intra=True, table_one=False)
        assert len(bw0) == 2


class TestHeaderField:
    def test_roundtrip(self):
        hdr = PictureHeader(0, PictureType.I, intra_vlc_format=1)
        bw = BitWriter()
        hdr.write(bw)
        br = BitReader(bw.getvalue())
        assert br.next_start_code() == PICTURE_START_CODE
        assert PictureHeader.parse(br).intra_vlc_format == 1

    def test_config_validation(self):
        with pytest.raises(ValueError):
            EncoderConfig(intra_vlc_format=2)


class TestEndToEnd:
    @pytest.fixture(scope="class")
    def clip(self):
        return moving_pattern_frames(96, 64, 6, seed=7)

    def test_roundtrip_decodes(self, clip):
        enc = Encoder(EncoderConfig(gop_size=3, b_frames=1, intra_vlc_format=1))
        data = enc.encode(clip)
        out = decode_stream(data)
        assert len(out) == len(clip)
        assert min(psnr(a, b) for a, b in zip(clip, out)) > 30

    def test_identical_pixels_to_format_zero(self, clip):
        """The table changes bits, never reconstruction."""
        d0 = Encoder(EncoderConfig(gop_size=3, b_frames=1, intra_vlc_format=0)).encode(clip)
        d1 = Encoder(EncoderConfig(gop_size=3, b_frames=1, intra_vlc_format=1)).encode(clip)
        f0 = decode_stream(d0)
        f1 = decode_stream(d1)
        assert all(a.max_abs_diff(b) == 0 for a, b in zip(f0, f1))
        assert len(d0) != len(d1)  # but the bitstreams differ

    def test_parallel_decode_matches(self, clip):
        """intra_vlc_format rides the sub-picture header; the tile decoders
        must parse the copied intra macroblock bits with the right table."""
        enc = Encoder(EncoderConfig(gop_size=6, b_frames=2, intra_vlc_format=1))
        data = enc.encode(clip)
        ref = decode_stream(data)
        layout = TileLayout(96, 64, 2, 2, overlap=4)
        out = ParallelDecoder(layout, k=2, verify_overlaps=True).decode(data)
        assert all(a.max_abs_diff(b) == 0 for a, b in zip(ref, out))
