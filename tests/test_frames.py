"""Frame container invariants and pixel utilities."""

import numpy as np
import pytest

from repro.mpeg2.frames import Frame, pad_to_macroblocks, psnr


class TestFrameValidation:
    def test_requires_mb_alignment(self):
        with pytest.raises(ValueError):
            Frame(
                np.zeros((50, 64), np.uint8),
                np.zeros((25, 32), np.uint8),
                np.zeros((25, 32), np.uint8),
            )

    def test_requires_420_chroma(self):
        with pytest.raises(ValueError):
            Frame(
                np.zeros((48, 64), np.uint8),
                np.zeros((48, 64), np.uint8),
                np.zeros((24, 32), np.uint8),
            )

    def test_requires_uint8(self):
        with pytest.raises(ValueError):
            Frame(
                np.zeros((48, 64), np.int16),
                np.zeros((24, 32), np.uint8),
                np.zeros((24, 32), np.uint8),
            )


class TestFrameProperties:
    def test_geometry(self):
        f = Frame.blank(96, 64)
        assert (f.width, f.height) == (96, 64)
        assert (f.mb_width, f.mb_height) == (6, 4)
        assert f.n_macroblocks == 24
        assert f.n_pixels == 96 * 64

    def test_blank_values(self):
        f = Frame.blank(32, 32, y=77, c=99)
        assert (f.y == 77).all() and (f.cb == 99).all() and (f.cr == 99).all()

    def test_equality_and_copy(self):
        a = Frame.blank(32, 32)
        b = a.copy()
        assert a == b
        b.y[0, 0] = 200
        assert a != b
        assert a.max_abs_diff(b) == 200 - 16

    def test_mb_views_are_views(self):
        f = Frame.blank(32, 32)
        f.mb_luma(1, 0)[:] = 50
        assert (f.y[0:16, 16:32] == 50).all()
        cb, cr = f.mb_chroma(0, 1)
        cb[:] = 60
        assert (f.cb[8:16, 0:8] == 60).all()


class TestPSNR:
    def test_identical_is_inf(self):
        f = Frame.blank(32, 32)
        assert psnr(f, f) == float("inf")

    def test_known_value(self):
        a = Frame.blank(32, 32, y=100)
        b = Frame.blank(32, 32, y=110)
        # MSE = 100 -> PSNR = 10 log10(255^2/100)
        assert psnr(a, b) == pytest.approx(10 * np.log10(255**2 / 100))

    def test_symmetry(self):
        rng = np.random.default_rng(0)
        a = Frame(
            rng.integers(0, 255, (32, 32), dtype=np.uint8).astype(np.uint8),
            np.zeros((16, 16), np.uint8),
            np.zeros((16, 16), np.uint8),
        )
        b = Frame.blank(32, 32)
        assert psnr(a, b) == pytest.approx(psnr(b, a))


class TestPadding:
    def test_pads_to_alignment(self):
        y = np.arange(50 * 70, dtype=np.uint8).reshape(50, 70)
        cb = np.zeros((25, 35), np.uint8)
        cr = np.zeros((25, 35), np.uint8)
        f = pad_to_macroblocks(y, cb, cr)
        assert f.width == 80 and f.height == 64
        # original content preserved
        assert (f.y[:50, :70] == y).all()
        # edge padding replicates the border
        assert (f.y[:50, 70:] == y[:, -1:]).all()

    def test_aligned_input_untouched(self):
        y = np.zeros((48, 64), np.uint8)
        f = pad_to_macroblocks(y, np.zeros((24, 32), np.uint8), np.zeros((24, 32), np.uint8))
        assert (f.width, f.height) == (64, 48)
