"""Timeline tracing of the timed system (the Figure 5 machinery)."""

import pytest

from repro.parallel.system import TimedSystem
from repro.perf.timeline import TimelineTrace, render_ascii
from repro.wall.layout import TileLayout
from repro.workloads.streams import stream_by_id


class TestTraceCollection:
    def test_record_validates(self):
        tr = TimelineTrace()
        with pytest.raises(ValueError):
            tr.record("a", "decode", 2.0, 1.0)
        with pytest.raises(ValueError):
            tr.record("a", "nonsense", 0.0, 1.0)

    def test_actors_in_first_seen_order(self):
        tr = TimelineTrace()
        tr.record("b", "decode", 0, 1)
        tr.record("a", "decode", 1, 2)
        tr.record("b", "serve", 2, 3)
        assert tr.actors() == ["b", "a"]

    def test_window_and_totals(self):
        tr = TimelineTrace()
        tr.record("x", "decode", 1.0, 3.0)
        tr.record("x", "serve", 3.0, 3.5)
        assert tr.window() == (1.0, 3.5)
        totals = tr.phase_totals("x")
        assert totals["decode"] == pytest.approx(2.0)
        assert totals["serve"] == pytest.approx(0.5)


class TestRendering:
    def test_empty(self):
        assert render_ascii(TimelineTrace()) == "(empty trace)"

    def test_glyphs_appear(self):
        tr = TimelineTrace()
        tr.record("node", "decode", 0.0, 0.6)
        tr.record("node", "serve", 0.6, 1.0)
        art = render_ascii(tr, width=20)
        row = [l for l in art.splitlines() if l.startswith("node")][0]
        assert "D" in row and "s" in row
        assert row.index("D") < row.index("s")

    def test_legend_present(self):
        tr = TimelineTrace()
        tr.record("n", "copy", 0, 1)
        assert "legend:" in render_ascii(tr)


class TestSystemIntegration:
    @pytest.fixture(scope="class")
    def trace(self):
        spec = stream_by_id(8)
        layout = TileLayout(spec.width, spec.height, 2, 1)
        tr = TimelineTrace()
        TimedSystem(spec, layout, k=2, n_frames=8, trace=tr).run()
        return tr

    def test_all_actor_kinds_traced(self, trace):
        actors = trace.actors()
        assert "root" in actors
        assert "splitter0" in actors and "splitter1" in actors
        assert "decoder0" in actors and "decoder1" in actors

    def test_spans_non_overlapping_per_actor(self, trace):
        """An actor is a single CPU: its spans never overlap."""
        for actor in trace.actors():
            spans = sorted(trace.spans_for(actor), key=lambda s: s.start)
            for a, b in zip(spans, spans[1:]):
                assert b.start >= a.end - 1e-12

    def test_decode_totals_match_breakdown(self):
        spec = stream_by_id(8)
        layout = TileLayout(spec.width, spec.height, 2, 1)
        tr = TimelineTrace()
        res = TimedSystem(spec, layout, k=1, n_frames=8, trace=tr).run()
        for tid, bd in res.breakdowns.items():
            traced = tr.phase_totals(f"decoder{tid}").get("decode", 0.0)
            assert traced == pytest.approx(bd.work, rel=1e-9)

    def test_round_robin_visible(self, trace):
        s0 = {s.picture for s in trace.spans_for("splitter0") if s.phase == "split"}
        s1 = {s.picture for s in trace.spans_for("splitter1") if s.phase == "split"}
        assert s0 == {0, 2, 4, 6}
        assert s1 == {1, 3, 5, 7}
