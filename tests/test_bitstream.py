"""Bit-level I/O: readers, writers, alignment, start codes."""

import pytest
from hypothesis import given, strategies as st

from repro.bitstream import BitReader, BitstreamError, BitWriter, find_start_codes
from repro.bitstream.reader import split_at_codes


class TestBitWriter:
    def test_empty(self):
        assert BitWriter().getvalue() == b""

    def test_single_byte(self):
        bw = BitWriter()
        bw.write(0xA5, 8)
        assert bw.getvalue() == b"\xa5"

    def test_cross_byte_writes(self):
        bw = BitWriter()
        bw.write(0b101, 3)
        bw.write(0b00110, 5)
        bw.write(0xFF, 8)
        assert bw.getvalue() == bytes([0b10100110, 0xFF])

    def test_partial_byte_zero_padded(self):
        bw = BitWriter()
        bw.write(0b11, 2)
        assert bw.getvalue() == bytes([0b11000000])

    def test_len_counts_bits(self):
        bw = BitWriter()
        bw.write(0, 5)
        assert len(bw) == 5
        bw.write(0, 8)
        assert len(bw) == 13

    def test_value_out_of_range(self):
        bw = BitWriter()
        with pytest.raises(ValueError):
            bw.write(4, 2)
        with pytest.raises(ValueError):
            bw.write(-1, 4)

    def test_align_fill_ones(self):
        bw = BitWriter()
        bw.write(0, 1)
        bw.align(fill=1)
        assert bw.getvalue() == bytes([0b01111111])

    def test_start_code(self):
        bw = BitWriter()
        bw.write(1, 3)  # non-aligned on purpose
        bw.write_start_code(0xB3)
        data = bw.getvalue()
        assert data[1:4] == b"\x00\x00\x01"
        assert data[4] == 0xB3

    def test_write_bytes_requires_alignment(self):
        bw = BitWriter()
        bw.write(1, 1)
        with pytest.raises(ValueError):
            bw.write_bytes(b"ab")

    def test_signed_roundtrip_bounds(self):
        bw = BitWriter()
        bw.write_signed(-8, 4)
        bw.write_signed(7, 4)
        br = BitReader(bw.getvalue())
        assert br.read_signed(4) == -8
        assert br.read_signed(4) == 7

    def test_signed_out_of_range(self):
        bw = BitWriter()
        with pytest.raises(ValueError):
            bw.write_signed(8, 4)


class TestBitReader:
    def test_read_bits(self):
        br = BitReader(bytes([0b10110010]))
        assert br.read(1) == 1
        assert br.read(3) == 0b011
        assert br.read(4) == 0b0010

    def test_peek_does_not_advance(self):
        br = BitReader(b"\xf0")
        assert br.peek(4) == 0xF
        assert br.peek(4) == 0xF
        assert br.read(4) == 0xF

    def test_peek_past_end_pads_zero(self):
        br = BitReader(b"\xff")
        assert br.peek(16) == 0xFF00

    def test_read_past_end_raises(self):
        br = BitReader(b"\xff")
        br.read(8)
        with pytest.raises(BitstreamError):
            br.skip(1)

    def test_align(self):
        br = BitReader(b"\xff\x0f")
        br.read(3)
        br.align()
        assert br.pos == 8
        br.align()
        assert br.pos == 8

    def test_next_start_code(self):
        data = b"\xab\x00\x00\x01\xb3\x11\x22"
        br = BitReader(data)
        assert br.next_start_code() == 0xB3
        assert br.byte_pos == 5
        assert br.next_start_code() is None

    def test_peek_start_code_preserves_position(self):
        data = b"\x00\x00\x01\x42\x00"
        br = BitReader(data)
        assert br.peek_start_code() == 0x42
        assert br.pos == 0

    def test_bit_in_byte(self):
        br = BitReader(b"\x00\x00")
        br.read(11)
        assert br.byte_pos == 1
        assert br.bit_in_byte == 3


class TestStartCodeScan:
    def test_find_all(self):
        data = b"\x00\x00\x01\x00junk\x00\x00\x01\xb8more"
        found = list(find_start_codes(data))
        assert found == [(0, 0x00), (8, 0xB8)]

    def test_truncated_code_ignored(self):
        assert list(find_start_codes(b"\x00\x00\x01")) == []

    def test_split_at_codes(self):
        # regions run to the next LISTED code, so the 0x01 slice region
        # stays inside the first picture's region
        data = b"\x00\x00\x01\x00aa\x00\x00\x01\x01bb\x00\x00\x01\x00cc"
        regions = split_at_codes(data, [0x00])
        assert regions == [(0, 0, 12), (0, 12, 18)]

    def test_overlapping_zeros(self):
        # 00 00 00 01 xx: the start code begins at offset 1
        data = b"\x00\x00\x00\x01\x42"
        assert list(find_start_codes(data)) == [(1, 0x42)]


@given(st.lists(st.tuples(st.integers(0, 31), st.integers(1, 16)), min_size=1, max_size=64))
def test_writer_reader_roundtrip(chunks):
    """Any sequence of (value, width) writes reads back identically."""
    chunks = [(v & ((1 << w) - 1), w) for v, w in chunks]
    bw = BitWriter()
    for v, w in chunks:
        bw.write(v, w)
    br = BitReader(bw.getvalue())
    for v, w in chunks:
        assert br.read(w) == v


@given(st.binary(max_size=64), st.integers(0, 7))
def test_skip_bits_view(data, skip):
    """Reading after a bit skip equals reading the shifted stream."""
    if len(data) * 8 <= skip + 8:
        return
    br = BitReader(data, start_bit=skip)
    direct = BitReader(data)
    direct.skip(skip)
    assert br.read(8) == direct.read(8)
