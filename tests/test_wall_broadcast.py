"""Wall broadcast plane: tune-in anchors, decode margins, bit-exact
tile receivers, presentation clock, and the broadcast session kind."""

import threading

import numpy as np
import pytest

from repro.mpeg2.constants import PictureType
from repro.mpeg2.decoder import decode_stream
from repro.mpeg2.encoder import Encoder, EncoderConfig
from repro.mpeg2.parser import PictureScanner
from repro.service import ServiceClient, ServiceConfig, WallService
from repro.wall.broadcast import (
    WallBroadcaster,
    _parse_picture_header,
    decode_margins,
    tune_anchors,
)
from repro.wall.clock import PresentationClock
from repro.wall.config import WallSpec
from repro.wall.display import assemble_wall
from repro.wall.receiver import WallReceiver, tile_decode_digest
from repro.workloads.streams import stream_by_id

SPEC = stream_by_id(5)


@pytest.fixture(scope="module")
def clip_stream():
    frames = SPEC.synthetic_frames(18, max_width=96)
    return Encoder(EncoderConfig(gop_size=6, b_frames=2)).encode(frames)


@pytest.fixture(scope="module")
def wall_spec():
    return WallSpec(cols=2, rows=2, overlap=0, name="testwall")


def unix_addr(tmp_path, name="wall.sock"):
    return ("unix", str(tmp_path / name))


# --------------------------------------------------------------------- #
# anchors and margins
# --------------------------------------------------------------------- #


class TestAnchorsAndMargins:
    def test_anchors_are_i_pictures(self, clip_stream):
        _, pictures = PictureScanner(clip_stream).scan()
        anchors = tune_anchors(pictures)
        assert anchors and anchors[0] == 0
        assert anchors == sorted(set(anchors))
        for a in anchors:
            h = _parse_picture_header(pictures[a].data)
            assert h.picture_type == PictureType.I

    def test_margins_cover_every_picture(self, clip_stream):
        _, pictures = PictureScanner(clip_stream).scan()
        margins = decode_margins(pictures)
        assert len(margins) == len(pictures)
        assert all(m >= 0 for m in margins)
        # references carry downstream motion requirements; with B-frames
        # in the clip at least one reference must demand a margin
        assert max(margins) > 0

    def test_open_gop_not_an_anchor(self):
        frames = SPEC.synthetic_frames(12, max_width=96)
        stream = Encoder(
            EncoderConfig(gop_size=6, b_frames=2, closed_gop=False)
        ).encode(frames)
        _, pictures = PictureScanner(stream).scan()
        # an open GOP's leading B-frames reference the previous GOP, so
        # only picture 0 (which needs no prior state) may tune a joiner
        assert tune_anchors(pictures) == [0]


# --------------------------------------------------------------------- #
# end to end: broadcast -> 4 receivers -> bit-exact wall
# --------------------------------------------------------------------- #


class TestWallEndToEnd:
    def test_four_tiles_bit_exact(self, tmp_path, clip_stream, wall_spec):
        bc = WallBroadcaster(
            clip_stream, wall_spec, unix_addr(tmp_path), mode="stream"
        )
        try:
            layout = wall_spec.to_layout(
                bc.sequence.width, bc.sequence.height
            )
            last = {}
            summaries = {}

            def run_tile(tid):
                rx = WallReceiver(
                    bc.control_address,
                    tid,
                    on_frame=lambda i, f, t=tid: last.__setitem__(t, f),
                )
                with rx:
                    summaries[tid] = rx.run(max_wall_s=60.0)

            threads = [
                threading.Thread(target=run_tile, args=(t,), daemon=True)
                for t in range(4)
            ]
            for t in threads:
                t.start()
            bc.sender.wait_subscribers(4, timeout=20.0)
            bc.run(rate_fps=None)
            for t in threads:
                t.join(timeout=60.0)

            assert set(summaries) == {0, 1, 2, 3}
            for tid, s in summaries.items():
                assert s["state"] == "done"
                assert s["tuned_at"] == 0
                assert s["digest"] == tile_decode_digest(
                    clip_stream, layout, tid, start_at=0
                )
            # single-encode fan-out: encodes track pictures, not receivers
            st = bc.stats()
            assert st["encodes"] == st["n_pictures"] + 2  # + W_SEQ + W_END
            assert st["fanout_sends"] >= 4 * st["encodes"]

            # assembled wall == sequential decode, bit for bit
            wall = assemble_wall(layout, last)
            ref = decode_stream(clip_stream)[-1]
            assert np.array_equal(wall.y, ref.y)
            assert np.array_equal(wall.cb, ref.cb)
            assert np.array_equal(wall.cr, ref.cr)
        finally:
            bc.close()

    def test_late_joiner_tunes_at_next_anchor(
        self, tmp_path, clip_stream, wall_spec
    ):
        bc = WallBroadcaster(
            clip_stream, wall_spec, unix_addr(tmp_path), mode="stream"
        )
        try:
            layout = wall_spec.to_layout(bc.sequence.width, bc.sequence.height)
            bc.publish_sequence()
            for i in range(8):  # cursor lands mid-GOP
                bc.publish_picture(i)
            rx = WallReceiver(bc.control_address, 0, name="late0")
            expected = next(a for a in bc.anchors if a > 7)
            assert rx.start_at == expected
            for i in range(8, len(bc.pictures)):
                bc.publish_picture(i)
            bc.publish_end()
            s = rx.run(max_wall_s=60.0)
            rx.close()
            assert s["state"] == "done"
            assert s["tuned_at"] == expected
            assert s["dropped_tuning"] == expected - 8
            assert s["digest"] == tile_decode_digest(
                clip_stream, layout, 0, start_at=expected
            )
        finally:
            bc.close()


# --------------------------------------------------------------------- #
# presentation clock
# --------------------------------------------------------------------- #


class TestPresentationClock:
    def test_free_run_releases_everything(self):
        clk = PresentationClock(fps=None)
        assert all(clk.offer(i) for i in range(5))
        assert clk.released == 5 and clk.dropped_late == 0

    def test_due_timeline(self):
        clk = PresentationClock(fps=10.0, epoch=100.0, latency_s=0.25)
        assert clk.due(0) == pytest.approx(100.25)
        assert clk.due(10) == pytest.approx(101.25)

    def test_early_frame_sleeps_until_due(self):
        now = [100.0]
        slept = []
        clk = PresentationClock(
            fps=10.0,
            epoch=100.0,
            latency_s=0.25,
            time_fn=lambda: now[0],
            sleep_fn=slept.append,
        )
        assert clk.offer(0)
        assert slept == [pytest.approx(0.25)]
        assert clk.released == 1

    def test_late_frame_dropped_and_accounted(self):
        now = [105.0]  # frame 0 due at 100.25: hopelessly late
        clk = PresentationClock(
            fps=10.0,
            epoch=100.0,
            latency_s=0.25,
            time_fn=lambda: now[0],
            sleep_fn=lambda s: None,
        )
        assert not clk.offer(0)
        assert clk.dropped_late == 1 and clk.released == 0
        assert clk.last_lag_s == pytest.approx(4.75)
        d = clk.to_dict()
        assert d["dropped_late"] == 1
        assert d["max_lag_s"] == pytest.approx(4.75)

    def test_tolerance_admits_slightly_late(self):
        now = [100.30]
        clk = PresentationClock(
            fps=10.0,
            epoch=100.0,
            latency_s=0.25,
            late_tolerance_s=0.1,
            time_fn=lambda: now[0],
            sleep_fn=lambda s: None,
        )
        assert clk.offer(0)
        assert clk.dropped_late == 0


# --------------------------------------------------------------------- #
# the broadcast session kind on the daemon
# --------------------------------------------------------------------- #


@pytest.fixture()
def service(tmp_path):
    cfg = ServiceConfig(capacity_mpps=200.0, workers=2, queue_slots=2)
    svc = WallService(tmp_path, cfg)
    svc.start()
    yield svc, tmp_path
    svc.stop()


class TestBroadcastSessionKind:
    def test_submit_publishes_and_receiver_matches_oracle(
        self, service, clip_stream, wall_spec
    ):
        svc, rundir = service
        with ServiceClient(rundir) as client:
            reply = client.submit(
                SPEC,
                stream=clip_stream,
                name="bcast1",
                kind="broadcast",
                wall=wall_spec.to_dict(),
                rate_fps=10.0,  # hold the publish open for the subscribe
            )
            assert reply["admission"]["action"] == "accept"
            info = reply["broadcast"]
            assert info["anchors"][0] == 0
            control = tuple(info["control"])
            rx = WallReceiver(control, 2, name="svc-tile2")
            s = rx.run(max_wall_s=60.0)
            layout = rx.layout  # raster-true geometry from the broadcast
            rx.close()
            # the daemon free-runs from submit, so the receiver may tune
            # late; the oracle is keyed on its actual tune-in point
            assert s["digest"] == tile_decode_digest(
                clip_stream, layout, 2, start_at=s["tuned_at"]
            )
            done = client.wait(reply["sid"], timeout=30.0)
            assert done["state"] == "completed"
            assert done["kind"] == "broadcast"

    def test_cancel_mid_broadcast(self, service, clip_stream, wall_spec):
        svc, rundir = service
        with ServiceClient(rundir) as client:
            reply = client.submit(
                SPEC,
                stream=clip_stream,
                name="bcast2",
                kind="broadcast",
                wall=wall_spec.to_dict(),
                rate_fps=2.0,  # slow publish so the cancel lands mid-run
            )
            sid = reply["sid"]
            out = client.cancel(sid)
            assert out["cancelled"] is True
            done = client.wait(sid, timeout=30.0)
            assert done["state"] == "cancelled"

    def test_broadcasts_do_not_consume_pool_capacity(
        self, service, clip_stream, wall_spec
    ):
        svc, rundir = service
        with ServiceClient(rundir) as client:
            client.submit(
                SPEC,
                stream=clip_stream,
                kind="broadcast",
                wall=wall_spec.to_dict(),
                rate_fps=2.0,
            )
            snap = client.stats()["stats"]
            adm = snap["admission"]
            assert adm["active_demand_mpps"] == pytest.approx(0.0)
            assert snap["wall"]["broadcasts"] >= 1
