"""Cluster node model: specs, speed scaling, busy accounting."""

import pytest

from repro.cluster.node import PRINCETON_WALL, ClusterSpec, Node, NodeSpec
from repro.net.gm import GMNetwork
from repro.net.simtime import Simulator


class TestNodeSpec:
    def test_speed_relative_to_reference(self):
        assert NodeSpec("ref", cpu_mhz=733.0).speed == pytest.approx(1.0)
        assert NodeSpec("console", cpu_mhz=550.0).speed == pytest.approx(
            550 / 733
        )

    def test_princeton_wall_matches_paper(self):
        """§5.1: 550 MHz console with 1 GB; 733 MHz workstations, 256 MB;
        24 projectors -> 24 workers."""
        assert PRINCETON_WALL.console.cpu_mhz == 550.0
        assert PRINCETON_WALL.console.ram_mb == 1024
        assert PRINCETON_WALL.worker.cpu_mhz == 733.0
        assert PRINCETON_WALL.worker.ram_mb == 256
        assert PRINCETON_WALL.n_workers == 24

    def test_cluster_spec_lookup(self):
        spec = ClusterSpec(
            console=NodeSpec("c", 550), worker=NodeSpec("w", 733), n_workers=4
        )
        assert spec.node_spec(0).name == "c"
        assert spec.node_spec(3).name == "w"


class TestNodeCompute:
    def _node(self, mhz):
        sim = Simulator()
        net = GMNetwork(sim)
        return sim, Node(sim, net, 1, NodeSpec("n", cpu_mhz=mhz))

    def test_reference_speed_wall_time(self):
        sim, node = self._node(733.0)

        def proc():
            yield from node.compute(2.0)

        sim.process(proc())
        assert sim.run() == pytest.approx(2.0)

    def test_slow_node_takes_longer(self):
        sim, node = self._node(366.5)  # half speed

        def proc():
            yield from node.compute(1.0)

        sim.process(proc())
        assert sim.run() == pytest.approx(2.0)

    def test_busy_time_accumulates(self):
        sim, node = self._node(733.0)

        def proc():
            yield from node.compute(0.5)
            yield from node.compute(0.25)

        sim.process(proc())
        sim.run()
        assert node.busy_time == pytest.approx(0.75)
        assert node.utilization(1.5) == pytest.approx(0.5)

    def test_utilization_zero_duration(self):
        _, node = self._node(733.0)
        assert node.utilization(0.0) == 0.0
