"""THE integration tests: parallel 1-k-(m,n) decode == sequential decode,
bit-exact, across tile configurations, splitter counts, projector overlaps,
GOP structures, and content types."""

import pytest

from repro.mpeg2.decoder import decode_stream
from repro.parallel.pipeline import ParallelDecoder
from repro.parallel.root_splitter import RootSplitter
from repro.wall.layout import TileLayout

from tests.conftest import assert_frames_equal


def _run(stream, m, n, k=1, overlap=0, verify_overlaps=True):
    ref = decode_stream(stream)
    seq_w = ref[0].width
    seq_h = ref[0].height
    layout = TileLayout(seq_w, seq_h, m, n, overlap=overlap)
    pd = ParallelDecoder(layout, k=k, verify_overlaps=verify_overlaps)
    out = pd.decode(stream)
    assert len(out) == len(ref)
    for i, (a, b) in enumerate(zip(ref, out)):
        assert_frames_equal(a, b, f"{m}x{n} k={k} ov={overlap} frame {i}")
    return pd


class TestBitExactness:
    @pytest.mark.parametrize("m,n", [(1, 1), (2, 1), (1, 2), (2, 2), (3, 2)])
    def test_configs_match_sequential(self, small_stream, m, n):
        _run(small_stream, m, n, k=1)

    @pytest.mark.parametrize("k", [1, 2, 3, 5])
    def test_splitter_count_is_transparent(self, small_stream, k):
        _run(small_stream, 2, 2, k=k)

    @pytest.mark.parametrize("overlap", [2, 8, 16])
    def test_projector_overlap(self, small_stream, overlap):
        _run(small_stream, 2, 2, k=2, overlap=overlap)

    def test_i_only_stream(self, i_only_stream):
        _run(i_only_stream, 2, 2, k=2)

    def test_ip_stream(self, ip_stream):
        _run(ip_stream, 3, 2, k=2)

    def test_localized_detail_content(self, detail_stream):
        _run(detail_stream, 2, 2, k=2, overlap=8)

    def test_uneven_tiling(self, detail_stream):
        # 128x96: 3 columns of ~42px -> partition lines not MB aligned
        _run(detail_stream, 3, 3, k=2)


class TestPipelineStats:
    def test_exchanges_happen_with_multiple_tiles(self, small_stream):
        pd = _run(small_stream, 2, 2, k=1)
        assert pd.stats.exchange_count > 0
        assert pd.stats.exchange_bytes > 0

    def test_no_exchanges_single_tile(self, small_stream):
        pd = _run(small_stream, 1, 1, k=1)
        assert pd.stats.exchange_count == 0

    def test_round_robin_balances_splitters(self, small_stream):
        pd = _run(small_stream, 2, 1, k=3)
        counts = pd.stats.splitter_pictures
        assert max(counts) - min(counts) <= 1
        assert sum(counts) == pd.stats.pictures

    def test_sph_overhead_positive_but_bounded(self, small_stream):
        pd = _run(small_stream, 2, 2, k=1)
        assert 0.0 < pd.stats.sph_overhead_fraction < 2.0

    def test_decoder_stats_collected(self, small_stream):
        pd = _run(small_stream, 2, 2, k=1)
        assert set(pd.stats.decoder_stats) == {0, 1, 2, 3}
        total_served = sum(
            s.serve_bytes for s in pd.stats.decoder_stats.values()
        )
        total_fetched = sum(
            s.fetch_bytes for s in pd.stats.decoder_stats.values()
        )
        assert total_served == total_fetched == pd.stats.exchange_bytes


class TestRootSplitter:
    def test_round_robin_with_nsid(self, small_stream):
        root = RootSplitter(small_stream, k=3)
        routed = list(root.route())
        for i, r in enumerate(routed):
            assert r.splitter == i % 3
            assert r.nsid == (i + 1) % 3
            assert r.picture_index == i

    def test_single_splitter_nsid_self(self, small_stream):
        for r in RootSplitter(small_stream, k=1).route():
            assert r.splitter == 0 and r.nsid == 0

    def test_rejects_zero_splitters(self, small_stream):
        with pytest.raises(ValueError):
            RootSplitter(small_stream, k=0)

    def test_schedule_covers_all_pictures(self, small_stream):
        root = RootSplitter(small_stream, k=2)
        sched = root.schedule()
        assert [i for i, _ in sched] == list(range(len(root)))
