"""Command-line interface: every subcommand end to end."""

import pytest

from repro.cli import main
from repro.mpeg2.video_io import read_y4m


@pytest.fixture()
def encoded(tmp_path):
    out = tmp_path / "clip.m2v"
    rc = main(
        [
            "encode",
            "-o",
            str(out),
            "--frames",
            "8",
            "--width",
            "96",
            "--height",
            "64",
            "--gop",
            "4",
            "--b-frames",
            "1",
        ]
    )
    assert rc == 0
    return out


class TestEncode:
    def test_produces_stream(self, encoded):
        data = encoded.read_bytes()
        assert data.startswith(b"\x00\x00\x01\xb3")

    def test_rate_controlled(self, tmp_path):
        out = tmp_path / "rc.m2v"
        rc = main(
            [
                "encode",
                "-o",
                str(out),
                "--frames",
                "12",
                "--width",
                "128",
                "--height",
                "96",
                "--bpp",
                "0.3",
                "--synthetic",
                "fish",
            ]
        )
        assert rc == 0
        bpp = 8 * len(out.read_bytes()) / (128 * 96 * 12)
        assert 0.1 < bpp < 0.7

    def test_from_y4m_input(self, tmp_path, encoded):
        y4m = tmp_path / "in.y4m"
        assert main(["decode", "-i", str(encoded), "-o", str(y4m)]) == 0
        out = tmp_path / "re.m2v"
        assert main(["encode", "-i", str(y4m), "-o", str(out)]) == 0
        assert out.read_bytes().startswith(b"\x00\x00\x01\xb3")


class TestDecode:
    def test_decode_to_y4m(self, tmp_path, encoded):
        out = tmp_path / "out.y4m"
        assert main(["decode", "-i", str(encoded), "-o", str(out)]) == 0
        assert len(read_y4m(out)) == 8


class TestWall:
    def test_wall_verifies_bit_exact(self, tmp_path, encoded, capsys):
        rc = main(
            ["wall", "-i", str(encoded), "-m", "2", "-n", "2", "-k", "2",
             "--overlap", "8"]
        )
        assert rc == 0
        assert "bit-exact" in capsys.readouterr().out

    def test_wall_writes_output(self, tmp_path, encoded):
        out = tmp_path / "wall.y4m"
        rc = main(
            ["wall", "-i", str(encoded), "-m", "2", "-n", "1", "-o", str(out)]
        )
        assert rc == 0
        assert len(read_y4m(out)) == 8


class TestRunCluster:
    @pytest.mark.integration
    def test_run_cluster_verifies_bit_exact(self, tmp_path, encoded, capsys):
        trace_dir = tmp_path / "run"
        rc = main(
            ["run-cluster", "-i", str(encoded), "-m", "2", "-n", "1", "-k", "1",
             "--trace-dir", str(trace_dir)]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "bit-exact" in out
        assert "merged trace" in out
        assert (trace_dir / "merged.trace.jsonl").exists()

    @pytest.mark.integration
    def test_run_cluster_writes_output(self, tmp_path, encoded):
        out = tmp_path / "wall.y4m"
        rc = main(
            ["run-cluster", "-i", str(encoded), "-m", "2", "-n", "1",
             "--no-verify", "-o", str(out)]
        )
        assert rc == 0
        assert len(read_y4m(out)) == 8


class TestSimulate:
    def test_simulate_stream(self, capsys):
        rc = main(
            ["simulate", "--stream", "8", "-m", "2", "-n", "2", "-k", "1",
             "--frames", "12", "--bandwidth"]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "fps" in out and "decoder0" in out


class TestProgramStreamInput:
    def test_cli_demuxes_transparently(self, tmp_path, encoded):
        from repro.mpeg2.systems import mux_program_stream

        ps = tmp_path / "clip.mpg"
        ps.write_bytes(mux_program_stream(encoded.read_bytes()))
        out = tmp_path / "out.y4m"
        assert main(["decode", "-i", str(ps), "-o", str(out)]) == 0
        assert len(read_y4m(out)) == 8

    def test_wall_accepts_program_stream(self, tmp_path, encoded, capsys):
        from repro.mpeg2.systems import mux_program_stream

        ps = tmp_path / "clip.mpg"
        ps.write_bytes(mux_program_stream(encoded.read_bytes()))
        assert main(["wall", "-i", str(ps), "-m", "2", "-n", "1"]) == 0
        assert "bit-exact" in capsys.readouterr().out


class TestInfoAndStreams:
    def test_info(self, encoded, capsys):
        assert main(["info", "-i", str(encoded), "--pictures"]) == 0
        out = capsys.readouterr().out
        assert "8 coded pictures" in out
        assert " I " in out

    def test_streams_listing(self, capsys):
        assert main(["streams"]) == 0
        out = capsys.readouterr().out
        assert "orion4" in out and "3840x2800" in out
