"""Multiple slices per macroblock row — resync points within rows.

MPEG-2 Main Profile lets an encoder restart slices within a row.  The
splitter must never fuse runs across a slice boundary (the bits in between
are start codes, not macroblock data), and the first macroblock of a slice
positions the slice without implying skipped macroblocks.
"""

import pytest

from repro.mpeg2.decoder import decode_stream
from repro.mpeg2.encoder import Encoder, EncoderConfig
from repro.mpeg2.parser import MacroblockParser, PictureScanner
from repro.mpeg2.validate import validate_stream
from repro.parallel.mb_splitter import MacroblockSplitter
from repro.parallel.pipeline import ParallelDecoder
from repro.parallel.subpicture import RunRecord
from repro.wall.layout import TileLayout
from repro.workloads.synthetic import moving_pattern_frames


@pytest.fixture(scope="module")
def clip():
    return moving_pattern_frames(128, 64, 7, seed=13)


def _stream(clip, spr):
    return Encoder(
        EncoderConfig(gop_size=7, b_frames=2, slices_per_row=spr)
    ).encode(clip)


class TestEncoding:
    def test_slice_count(self, clip):
        for spr in (1, 2, 4):
            stream = _stream(clip, spr)
            seq, pics = PictureScanner(stream).scan()
            parser = MacroblockParser(seq)
            parsed = parser.parse_picture(pics[0].data)
            n_slices = len({it.slice_index for it in parsed.items})
            assert n_slices == spr * (seq.height // 16)

    def test_validates(self, clip):
        report = validate_stream(_stream(clip, 3))
        assert report.ok, [str(f) for f in report.findings]

    def test_config_validation(self):
        with pytest.raises(ValueError):
            EncoderConfig(slices_per_row=0)

    def test_more_slices_cost_bits(self, clip):
        assert len(_stream(clip, 4)) > len(_stream(clip, 1))


class TestDecoding:
    @pytest.mark.parametrize("spr", [2, 3, 4])
    def test_sequential_equals_single_slice(self, clip, spr):
        """Slice structure changes bits, never pixels."""
        a = decode_stream(_stream(clip, 1))
        b = decode_stream(_stream(clip, spr))
        assert all(x.max_abs_diff(y) == 0 for x, y in zip(a, b))

    def test_predictors_reset_per_slice(self, clip):
        stream = _stream(clip, 2)
        seq, pics = PictureScanner(stream).scan()
        parsed = MacroblockParser(seq).parse_picture(pics[0].data)
        mb_w = seq.width // 16
        for it in parsed.items:
            col = it.mb.address % mb_w
            if col in (0, mb_w // 2) and not it.mb.skipped:
                assert it.state_before["dc_pred"] == [128, 128, 128]


class TestSplitter:
    @pytest.mark.parametrize("spr", [2, 4])
    def test_runs_never_cross_slices(self, clip, spr):
        stream = _stream(clip, spr)
        seq, pics = PictureScanner(stream).scan()
        layout = TileLayout(seq.width, seq.height, 2, 1)
        splitter = MacroblockSplitter(seq, layout)
        parser = MacroblockParser(seq)
        for i, unit in enumerate(pics):
            parsed = parser.parse_picture(unit.data)
            slice_of = {it.mb.address: it.slice_index for it in parsed.items}
            result = splitter.split(unit, i)
            for sp in result.subpictures.values():
                for rec in sp.records:
                    if isinstance(rec, RunRecord):
                        slices = {
                            slice_of[a]
                            for a in range(
                                rec.sph.address, rec.sph.address + rec.n_total
                            )
                        }
                        assert len(slices) == 1

    @pytest.mark.parametrize("spr", [2, 3])
    @pytest.mark.parametrize("m,n,k", [(2, 1, 1), (2, 2, 2), (4, 2, 2)])
    def test_parallel_bit_exact(self, clip, spr, m, n, k):
        """The headline invariant holds for multi-slice streams too."""
        stream = _stream(clip, spr)
        ref = decode_stream(stream)
        layout = TileLayout(128, 64, m, n)
        out = ParallelDecoder(layout, k=k).decode(stream)
        assert all(a.max_abs_diff(b) == 0 for a, b in zip(ref, out))
