"""Dynamic load balancing extension (paper future work §6)."""

import pytest

from repro.parallel.loadbalance import balanced_layout, imbalance
from repro.parallel.system import TimedSystem
from repro.perf.costmodel import CostModel
from repro.wall.layout import TileLayout
from repro.workloads.streams import stream_by_id


S13 = stream_by_id(13)  # localized-detail Orion stream
S8 = stream_by_id(8)  # uniform content


class TestBalancedLayout:
    def test_valid_layout(self):
        layout = balanced_layout(S13, 3, 2)
        assert layout.n_tiles == 6
        # partitions still tile the raster
        area = sum(t.partition.area for t in layout)
        assert area == S13.width * S13.height

    def test_bounds_mb_aligned(self):
        layout = balanced_layout(S13, 4, 4)
        assert all(b % 16 == 0 for b in layout.x_bounds)
        assert all(b % 16 == 0 for b in layout.y_bounds)

    def test_reduces_imbalance_on_detail_stream(self):
        static = TileLayout(S13.width, S13.height, 4, 4)
        balanced = balanced_layout(S13, 4, 4)
        assert imbalance(S13, balanced) < imbalance(S13, static)

    def test_uniform_stream_already_balanced(self):
        static = TileLayout(S8.width, S8.height, 2, 2)
        balanced = balanced_layout(S8, 2, 2)
        assert imbalance(S8, balanced) == pytest.approx(
            imbalance(S8, static), rel=0.05
        )

    def test_hot_tile_shrinks(self):
        """The tile over the detail center gets geometrically smaller."""
        balanced = balanced_layout(S13, 4, 4)
        static = TileLayout(S13.width, S13.height, 4, 4)
        cx = S13.detail.center[0] * S13.width
        cy = S13.detail.center[1] * S13.height

        def hot_tile(layout):
            for t in layout:
                p = t.partition
                if p.x0 <= cx < p.x1 and p.y0 <= cy < p.y1:
                    return t
            raise AssertionError("no owner")

        assert hot_tile(balanced).partition.area < hot_tile(static).partition.area


class TestEndToEndImprovement:
    def test_balanced_layout_improves_fps(self):
        """The ablation claim: dynamic balancing lifts the Orion frame
        rate by reducing straggler synchronization."""
        cost = CostModel()
        static = TileLayout(S13.width, S13.height, 4, 4)
        balanced = balanced_layout(S13, 4, 4, cost=cost)
        f_static = TimedSystem(S13, static, k=3, n_frames=24).run().fps
        f_bal = TimedSystem(S13, balanced, k=3, n_frames=24).run().fps
        assert f_bal > f_static * 1.02

    def test_imbalance_metric_sane(self):
        static = TileLayout(S13.width, S13.height, 4, 4)
        r = imbalance(S13, static)
        assert r >= 1.0


class TestAdaptiveBalancing:
    """The truly *dynamic* variant: adapt from measured decode times."""

    def test_converges_on_detail_stream(self):
        from repro.parallel.loadbalance import adaptive_balance

        hist = adaptive_balance(S13, 4, 4, k=3, windows=4, frames_per_window=14)
        assert len(hist) == 4
        # fps improves (or holds) after the first adaptation...
        assert hist[-1].fps >= hist[0].fps
        assert hist[1].fps > hist[0].fps * 1.01
        # ...because measured imbalance falls
        assert hist[-1].measured_imbalance < hist[0].measured_imbalance

    def test_uniform_stream_stays_put(self):
        from repro.parallel.loadbalance import adaptive_balance

        hist = adaptive_balance(S8, 2, 2, k=2, windows=3, frames_per_window=12)
        # no imbalance to fix: fps stays within noise of the first window
        assert abs(hist[-1].fps - hist[0].fps) / hist[0].fps < 0.05

    def test_bounds_stay_valid(self):
        from repro.parallel.loadbalance import adaptive_balance

        hist = adaptive_balance(S13, 3, 2, k=2, windows=3, frames_per_window=12)
        for i, h in enumerate(hist):
            assert h.x_bounds[0] == 0 and h.x_bounds[-1] == S13.width
            if i > 0:  # adapted bounds are macroblock aligned
                assert all(b % 16 == 0 for b in h.x_bounds[1:-1])
            assert all(
                b1 > b0 for b0, b1 in zip(h.x_bounds, h.x_bounds[1:])
            )
