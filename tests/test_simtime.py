"""DES kernel: scheduling, processes, stores, resources, determinism."""

import pytest

from repro.net.simtime import (
    Event,
    Process,
    Resource,
    SimulationError,
    Simulator,
    Store,
    Timeout,
    hold,
)


class TestScheduling:
    def test_timeouts_advance_clock(self):
        sim = Simulator()
        log = []

        def proc():
            yield Timeout(1.5)
            log.append(sim.now)
            yield Timeout(2.5)
            log.append(sim.now)

        sim.process(proc())
        sim.run()
        assert log == [1.5, 4.0]

    def test_same_instant_fifo(self):
        sim = Simulator()
        log = []

        def proc(name):
            yield Timeout(1.0)
            log.append(name)

        for name in "abc":
            sim.process(proc(name))
        sim.run()
        assert log == ["a", "b", "c"]

    def test_run_until(self):
        sim = Simulator()

        def proc():
            while True:
                yield Timeout(1.0)

        sim.process(proc())
        assert sim.run(until=5.5) == 5.5

    def test_negative_timeout_rejected(self):
        with pytest.raises(ValueError):
            Timeout(-1)

    def test_process_completion_value(self):
        sim = Simulator()
        results = []

        def child():
            yield Timeout(2.0)
            return 42

        def parent():
            value = yield sim.process(child())
            results.append((sim.now, value))

        sim.process(parent())
        sim.run()
        assert results == [(2.0, 42)]

    def test_yield_unsupported_raises(self):
        sim = Simulator()

        def proc():
            yield "nope"

        sim.process(proc())
        with pytest.raises(SimulationError):
            sim.run()


class TestEvents:
    def test_double_trigger_rejected(self):
        sim = Simulator()
        ev = sim.event()
        ev.succeed(1)
        with pytest.raises(SimulationError):
            ev.succeed(2)

    def test_callback_after_trigger_fires(self):
        sim = Simulator()
        ev = sim.event()
        ev.succeed("v")
        got = []
        ev.add_callback(got.append)
        sim.run()
        assert got == ["v"]


class TestStore:
    def test_fifo_order(self):
        sim = Simulator()
        store = Store(sim)
        got = []

        def consumer():
            for _ in range(3):
                item = yield store.get()
                got.append(item)

        def producer():
            yield Timeout(1.0)
            for i in range(3):
                store.put(i)

        sim.process(consumer())
        sim.process(producer())
        sim.run()
        assert got == [0, 1, 2]

    def test_getter_blocks_until_put(self):
        sim = Simulator()
        store = Store(sim)
        times = []

        def consumer():
            yield store.get()
            times.append(sim.now)

        def producer():
            yield Timeout(3.0)
            store.put("x")

        sim.process(consumer())
        sim.process(producer())
        sim.run()
        assert times == [3.0]

    def test_len_counts_buffered(self):
        sim = Simulator()
        store = Store(sim)
        store.put(1)
        store.put(2)
        assert len(store) == 2


class TestResource:
    def test_serializes_holders(self):
        sim = Simulator()
        nic = Resource(sim, 1)
        spans = []

        def user(delay):
            yield Timeout(delay)
            t0 = sim.now
            yield from hold(nic, 2.0)
            spans.append((t0, sim.now))

        sim.process(user(0.0))
        sim.process(user(0.5))
        sim.run()
        # second user queued behind the first
        assert spans == [(0.0, 2.0), (0.5, 4.0)]

    def test_capacity_two(self):
        sim = Simulator()
        res = Resource(sim, 2)
        done = []

        def user(i):
            yield from hold(res, 1.0)
            done.append((i, sim.now))

        for i in range(3):
            sim.process(user(i))
        sim.run()
        assert [t for _, t in done] == [1.0, 1.0, 2.0]

    def test_release_idle_raises(self):
        sim = Simulator()
        res = Resource(sim, 1)
        with pytest.raises(SimulationError):
            res.release()

    def test_bad_capacity(self):
        with pytest.raises(ValueError):
            Resource(Simulator(), 0)


class TestDeterminism:
    def test_identical_runs(self):
        def build():
            sim = Simulator()
            store = Store(sim)
            trace = []

            def producer(i):
                yield Timeout(0.1 * i)
                store.put(i)

            def consumer():
                for _ in range(5):
                    v = yield store.get()
                    trace.append((sim.now, v))

            for i in range(5):
                sim.process(producer(i))
            sim.process(consumer())
            sim.run()
            return trace

        assert build() == build()
