"""Rate control: feedback convergence and stream validity."""

import pytest

from repro.mpeg2 import psnr
from repro.mpeg2.constants import PictureType
from repro.mpeg2.decoder import decode_stream
from repro.mpeg2.encoder import EncoderConfig
from repro.mpeg2.ratecontrol import (
    RateControlConfig,
    RateControlledEncoder,
    RateController,
)
from repro.workloads.synthetic import fish_tank_frames


@pytest.fixture(scope="module")
def clip():
    return fish_tank_frames(160, 96, 18, seed=4)


class TestController:
    def test_no_debt_keeps_base(self):
        ctrl = RateController(RateControlConfig(), pixels_per_frame=10000)
        code = ctrl.quantiser_code(PictureType.P)
        assert code == RateControlConfig().initial_code

    def test_type_ordering(self):
        cfg = RateControlConfig()
        ctrl = RateController(cfg, 10000)
        ci = ctrl.quantiser_code(PictureType.I)
        cp = ctrl.quantiser_code(PictureType.P)
        cb = ctrl.quantiser_code(PictureType.B)
        assert ci < cp < cb  # finer quantizer for I, coarser for B

    def test_debt_raises_code(self):
        cfg = RateControlConfig()
        ctrl = RateController(cfg, 10000)
        base = ctrl.quantiser_code(PictureType.P)
        ctrl.account(int(2 * ctrl.target_frame_bits))  # 100 % over budget
        assert ctrl.quantiser_code(PictureType.P) > base

    def test_surplus_lowers_code(self):
        cfg = RateControlConfig()
        ctrl = RateController(cfg, 10000)
        base = ctrl.quantiser_code(PictureType.P)
        ctrl.account(int(0.3 * ctrl.target_frame_bits))
        assert ctrl.quantiser_code(PictureType.P) < base

    def test_code_clamped(self):
        cfg = RateControlConfig(min_code=2, max_code=31)
        ctrl = RateController(cfg, 10000)
        for _ in range(10):
            ctrl.account(int(10 * ctrl.target_frame_bits))
        assert ctrl.quantiser_code(PictureType.B) == 31
        ctrl2 = RateController(cfg, 10000)
        for _ in range(20):
            ctrl2.account(1)
        assert ctrl2.quantiser_code(PictureType.I) == 2


class TestRateControlledEncoder:
    def test_hits_moderate_target(self, clip):
        enc = RateControlledEncoder(
            EncoderConfig(gop_size=6, b_frames=2),
            RateControlConfig(target_bpp=0.30),
        )
        data = enc.encode(clip)
        bpp = enc.achieved_bpp(data, clip)
        assert bpp == pytest.approx(0.30, rel=0.25)

    def test_stream_remains_decodable(self, clip):
        enc = RateControlledEncoder(
            EncoderConfig(gop_size=6, b_frames=2),
            RateControlConfig(target_bpp=0.25),
        )
        data = enc.encode(clip)
        out = decode_stream(data)
        assert len(out) == len(clip)
        assert min(psnr(a, b) for a, b in zip(clip, out)) > 28

    def test_lower_target_means_fewer_bits(self, clip):
        def encode_at(bpp):
            enc = RateControlledEncoder(
                EncoderConfig(gop_size=6, b_frames=2),
                RateControlConfig(target_bpp=bpp),
            )
            return len(enc.encode(clip))

        assert encode_at(0.2) < encode_at(0.5)

    def test_quantizer_history_recorded(self, clip):
        enc = RateControlledEncoder(
            EncoderConfig(gop_size=6, b_frames=2),
            RateControlConfig(target_bpp=0.3),
        )
        enc.encode(clip[:9])
        assert enc.controller is not None
        assert len(enc.controller.history) == 9

    def test_empty_input_rejected(self):
        with pytest.raises(ValueError):
            RateControlledEncoder().encode([])

    def test_parallel_decode_of_rate_controlled_stream(self, clip):
        """Rate-controlled streams (per-MB quantizer updates) must still
        decode bit-exactly in parallel."""
        from repro.parallel.pipeline import ParallelDecoder
        from repro.wall.layout import TileLayout

        enc = RateControlledEncoder(
            EncoderConfig(gop_size=6, b_frames=2),
            RateControlConfig(target_bpp=0.3),
        )
        data = enc.encode(clip[:9])
        ref = decode_stream(data)
        layout = TileLayout(clip[0].width, clip[0].height, 2, 2, overlap=8)
        out = ParallelDecoder(layout, k=2, verify_overlaps=True).decode(data)
        assert all(a.max_abs_diff(b) == 0 for a, b in zip(ref, out))
