"""Timeline merge, Perfetto export, and the trace-report post-mortem."""

import json

import pytest

from repro.cli import main as cli_main
from repro.perf.export import (
    build_report,
    render_report,
    span_tail,
    to_chrome_trace,
    write_chrome_trace,
)
from repro.perf.trace import (
    TraceEvent,
    TraceWriter,
    load_stage_times,
    merge_traces,
    read_trace_file,
)


def _write_trace(path, proc, events):
    with TraceWriter(path, proc) as tr:
        for ev in events:
            kwargs = dict(ev)
            tr.emit(kwargs.pop("event"), **kwargs)


class TestMergeTraces:
    def test_sorted_by_ts_with_proc_tiebreak(self, tmp_path):
        _write_trace(
            tmp_path / "b.trace.jsonl", "procB",
            [{"event": "x", "ts": 2.0}, {"event": "tie", "ts": 5.0}],
        )
        _write_trace(
            tmp_path / "a.trace.jsonl", "procA",
            [{"event": "y", "ts": 3.0}, {"event": "tie", "ts": 5.0}],
        )
        events = merge_traces(tmp_path)
        assert [(e.ts, e.proc) for e in events] == [
            (2.0, "procB"), (3.0, "procA"), (5.0, "procA"), (5.0, "procB"),
        ]

    def test_merged_output_is_excluded_from_rescan(self, tmp_path):
        _write_trace(tmp_path / "a.trace.jsonl", "a", [{"event": "x", "ts": 1.0}])
        out = tmp_path / "merged.trace.jsonl"
        merge_traces(tmp_path, out)
        # a second merge over the same dir must not double-count
        assert len(merge_traces(tmp_path, out)) == 1

    def test_strict_raises_on_torn_line_lenient_skips(self, tmp_path):
        p = tmp_path / "a.trace.jsonl"
        _write_trace(p, "a", [{"event": "x", "ts": 1.0}])
        with open(p, "a") as fh:
            fh.write('{"ts": 2.0, "proc": "a", "ev')  # torn final write
        with pytest.raises(ValueError):
            merge_traces(tmp_path)
        assert len(merge_traces(tmp_path, strict=False)) == 1


class TestLoadStageTimes:
    def test_multiple_stage_times_events_accumulate(self, tmp_path):
        _write_trace(
            tmp_path / "dec0.trace.jsonl", "dec0",
            [
                {"event": "stage_times", "ts": 1.0,
                 "parse": 0.5, "plan": 0.1, "execute": 1.0, "wire": 0.2,
                 "pictures": 4},
                {"event": "stage_times", "ts": 2.0,
                 "parse": 0.5, "plan": 0.3, "execute": 1.0, "wire": 0.2,
                 "pictures": 4},
            ],
        )
        st = load_stage_times(tmp_path)["dec0"]
        assert st.parse == pytest.approx(1.0)
        assert st.plan == pytest.approx(0.4)
        assert st.pictures == 8


def _span_events(proc="dec0"):
    """A tiny but complete synthetic timeline: spans, stats, stage_times."""
    return [
        TraceEvent(ts=1.0, proc=proc, event="decode", picture=0,
                   data={"ph": "B"}),
        TraceEvent(ts=1.2, proc=proc, event="decode", picture=0,
                   data={"ph": "E", "dur_s": 0.2}),
        TraceEvent(ts=1.3, proc=proc, event="exchange_wait", picture=1,
                   data={"ph": "B"}),
        TraceEvent(ts=1.4, proc=proc, event="exchange_wait", picture=1,
                   data={"ph": "E", "dur_s": 0.1}),
        TraceEvent(ts=1.5, proc=proc, event="stats",
                   data={"metrics": {}, "channels": {
                       "dec0->supervisor": {"sent_bytes": 1000,
                                            "recv_bytes": 10}}}),
        TraceEvent(ts=1.6, proc=proc, event="frame_sent", picture=0),
        TraceEvent(ts=1.7, proc=proc, event="stage_times",
                   data={"parse": 0.0, "plan": 0.0, "execute": 0.2,
                         "wire": 0.01, "pictures": 1}),
    ]


class TestChromeTraceExport:
    def test_schema_and_span_pairs(self):
        doc = to_chrome_trace(_span_events())
        assert set(doc) == {"traceEvents", "displayTimeUnit"}
        evs = doc["traceEvents"]
        meta = [e for e in evs if e["ph"] == "M"]
        assert {"process_name", "thread_name"} <= {m["name"] for m in meta}
        spans = [e for e in evs if e["ph"] in ("B", "E")]
        assert len(spans) == 4
        b, e = spans[0], spans[1]
        assert b["name"] == e["name"] == "decode"
        assert (b["pid"], b["tid"]) == (e["pid"], e["tid"])
        assert e["ts"] >= b["ts"]
        assert b["args"]["picture"] == 0

    def test_timestamps_rebased_to_microseconds(self):
        evs = to_chrome_trace(_span_events())["traceEvents"]
        spans = [e for e in evs if e["ph"] in ("B", "E")]
        assert spans[0]["ts"] == 0.0  # earliest event is the base
        assert spans[1]["ts"] == pytest.approx(0.2e6)

    def test_stats_become_counter_events(self):
        evs = to_chrome_trace(_span_events())["traceEvents"]
        counters = [e for e in evs if e["ph"] == "C"]
        assert len(counters) == 1
        assert counters[0]["name"] == "wire:dec0->supervisor"
        assert counters[0]["args"] == {"sent_bytes": 1000, "recv_bytes": 10}

    def test_other_events_become_instants(self):
        evs = to_chrome_trace(_span_events())["traceEvents"]
        instants = {e["name"] for e in evs if e["ph"] == "i"}
        assert "frame_sent" in instants

    def test_write_is_valid_json_file(self, tmp_path):
        path = write_chrome_trace(_span_events(), tmp_path / "t.json")
        doc = json.loads(path.read_text())
        assert doc["traceEvents"]


class TestReport:
    def test_build_report_aggregates(self):
        rep = build_report(_span_events())
        ps = rep.procs["dec0"]
        assert ps.span_totals["decode"] == pytest.approx(0.2)
        assert ps.span_totals["exchange_wait"] == pytest.approx(0.1)
        assert ps.picture_spans == [pytest.approx(0.2)]
        assert ps.channels["dec0->supervisor"]["sent_bytes"] == 1000
        assert ps.stage_times.execute == pytest.approx(0.2)
        assert rep.wall_s == pytest.approx(0.7)

    def test_open_span_detected(self):
        events = _span_events() + [
            TraceEvent(ts=2.0, proc="dec0", event="decode", picture=5,
                       data={"ph": "B"}),  # worker died inside
        ]
        rep = build_report(events)
        assert rep.procs["dec0"].open_spans == ["decode"]
        assert "UNFINISHED" in render_report(rep)

    def test_render_report_mentions_everything(self):
        text = render_report(build_report(_span_events()))
        for needle in (
            "Per-stage attribution", "Per-picture latency",
            "flow-control waits", "Bytes on wire", "dec0->supervisor",
        ):
            assert needle in text, f"report missing {needle!r}"

    def test_span_tail_formats_last_events(self):
        lines = span_tail(_span_events(), n=3)
        assert len(lines) == 3
        assert "frame_sent" in lines[-2]
        assert "event" in lines[-1] or "stage_times" in lines[-1]


class TestTraceReportCli:
    def _make_rundir(self, tmp_path):
        _write_trace(
            tmp_path / "dec0.trace.jsonl", "dec0",
            [dict(event=e.event, ts=e.ts, picture=e.picture, **e.data)
             for e in _span_events()],
        )
        return tmp_path

    def test_cli_writes_report_and_perfetto_json(self, tmp_path, capsys):
        rundir = self._make_rundir(tmp_path)
        out = tmp_path / "report.txt"
        rc = cli_main(["trace-report", str(rundir), "-o", str(out)])
        assert rc == 0
        assert "Per-stage attribution" in out.read_text()
        doc = json.loads((rundir / "trace.perfetto.json").read_text())
        assert doc["traceEvents"]

    def test_cli_fails_on_torn_trace_unless_lenient(self, tmp_path):
        rundir = self._make_rundir(tmp_path)
        with open(rundir / "dec0.trace.jsonl", "a") as fh:
            fh.write('{"torn')
        assert cli_main(["trace-report", str(rundir)]) == 1
        assert cli_main(["trace-report", str(rundir), "--lenient"]) == 0

    def test_cli_rejects_missing_dir(self, tmp_path):
        assert cli_main(["trace-report", str(tmp_path / "nope")]) == 2

    def test_cli_rejects_empty_dir(self, tmp_path):
        assert cli_main(["trace-report", str(tmp_path)]) == 1


@pytest.mark.integration
class TestClusterReportEndToEnd:
    def test_report_agrees_with_stage_times_within_1pct(self, tmp_path):
        """4-process run: per-stage span totals in the report must match
        the stage_times harvest within 1% (they share measurements)."""
        from repro.cluster.runtime import ClusterSupervisor, WallConfig
        from repro.mpeg2.encoder import Encoder, EncoderConfig
        from repro.workloads.synthetic import moving_pattern_frames

        clip = moving_pattern_frames(96, 64, 6, seed=7)
        stream = Encoder(EncoderConfig(gop_size=3, b_frames=1)).encode(clip)
        sup = ClusterSupervisor(
            WallConfig(m=2, n=2, k=1, transport="unix"),
            trace_dir=str(tmp_path),
        )
        sup.decode(stream, timeout=120.0)

        events = merge_traces(tmp_path)
        rep = build_report(events)
        harvested = load_stage_times(tmp_path)
        for proc, st in harvested.items():
            spans = rep.stage_totals(proc)
            for stage in ("parse", "plan", "execute", "wire"):
                want = getattr(st, stage)
                got = spans[stage]
                assert abs(got - want) <= max(0.01 * want, 1e-3), (
                    f"{proc}.{stage}: spans {got} vs stage_times {want}"
                )

        # the supervisor auto-exported a Perfetto-loadable timeline with
        # every instrumented region present
        assert sup.perfetto_path is not None and sup.perfetto_path.exists()
        doc = json.loads(sup.perfetto_path.read_text())
        names = {e["name"] for e in doc["traceEvents"] if e["ph"] == "B"}
        for expected in (
            "parse", "plan", "execute", "wire",
            "exchange_wait", "credit_wait", "decode", "split",
        ):
            assert expected in names, f"no {expected} spans in timeline"

        text = render_report(rep)
        assert "Cross-tile imbalance" in text
        assert "Credit stalls" in text
