"""Systems layer: program-stream mux/demux."""

import pytest

from repro.bitstream import BitstreamError
from repro.mpeg2.decoder import decode_stream
from repro.mpeg2.systems import (
    SYSTEM_CLOCK,
    VIDEO_STREAM_ID,
    demux_program_stream,
    mux_program_stream,
)
from repro.parallel.pipeline import ParallelDecoder
from repro.wall.layout import TileLayout


class TestRoundTrip:
    def test_es_recovered_exactly(self, small_stream):
        ps = mux_program_stream(small_stream, fps=30.0)
        out = demux_program_stream(ps)
        assert out.video_es == small_stream

    def test_decoding_after_demux(self, small_stream):
        ps = mux_program_stream(small_stream)
        frames = decode_stream(demux_program_stream(ps).video_es)
        ref = decode_stream(small_stream)
        assert len(frames) == len(ref)
        assert all(a.max_abs_diff(b) == 0 for a, b in zip(ref, frames))

    def test_parallel_decode_of_demuxed_stream(self, small_stream):
        """End-to-end: program stream -> demux -> 1-2-(2,2) wall."""
        ps = mux_program_stream(small_stream)
        es = demux_program_stream(ps).video_es
        ref = decode_stream(small_stream)
        layout = TileLayout(ref[0].width, ref[0].height, 2, 2)
        out = ParallelDecoder(layout, k=2).decode(es)
        assert all(a.max_abs_diff(b) == 0 for a, b in zip(ref, out))

    @pytest.mark.parametrize("chunk", [512, 2048, 65000])
    def test_chunk_sizes(self, small_stream, chunk):
        ps = mux_program_stream(small_stream, chunk_size=chunk)
        assert demux_program_stream(ps).video_es == small_stream


class TestTimestamps:
    def test_one_pts_per_picture(self, small_stream):
        from repro.mpeg2.parser import PictureScanner

        _, pictures = PictureScanner(small_stream).scan()
        ps = mux_program_stream(small_stream, fps=30.0)
        out = demux_program_stream(ps)
        assert len(out.pts_list) == len(pictures)

    def test_pts_spacing_matches_fps(self, small_stream):
        ps = mux_program_stream(small_stream, fps=25.0)
        pts = demux_program_stream(ps).pts_list
        deltas = {b - a for a, b in zip(pts, pts[1:])}
        assert deltas == {SYSTEM_CLOCK // 25}

    def test_scrs_monotonic(self, small_stream):
        ps = mux_program_stream(small_stream)
        scrs = demux_program_stream(ps).scrs
        assert scrs == sorted(scrs)

    def test_packet_stream_ids(self, small_stream):
        ps = mux_program_stream(small_stream)
        out = demux_program_stream(ps)
        assert {p.stream_id for p in out.packets} == {VIDEO_STREAM_ID}


class TestFraming:
    def test_starts_with_pack_header(self, small_stream):
        ps = mux_program_stream(small_stream)
        assert ps.startswith(b"\x00\x00\x01\xba")

    def test_ends_with_program_end(self, small_stream):
        ps = mux_program_stream(small_stream)
        assert ps.endswith(b"\x00\x00\x01\xb9")

    def test_empty_es_rejected(self):
        with pytest.raises(ValueError):
            mux_program_stream(b"")

    def test_demux_garbage_rejected(self):
        with pytest.raises(BitstreamError):
            demux_program_stream(b"\x00\x00\x01\xba" + b"\xff" * 4)

    def test_demux_no_video_rejected(self):
        with pytest.raises(BitstreamError):
            demux_program_stream(b"\x00\x00\x01\xb9")
