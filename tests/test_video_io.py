"""Uncompressed video I/O: y4m and PPM round-trips."""

import numpy as np
import pytest

from repro.mpeg2.frames import Frame
from repro.mpeg2.video_io import (
    frame_to_rgb,
    read_ppm,
    read_y4m,
    rgb_to_frame,
    write_ppm,
    write_y4m,
)
from repro.workloads.synthetic import moving_pattern_frames


@pytest.fixture()
def clip():
    return moving_pattern_frames(96, 64, 5, seed=0)


class TestY4M:
    def test_roundtrip_lossless(self, tmp_path, clip):
        path = tmp_path / "clip.y4m"
        write_y4m(path, clip, fps=30.0)
        back = read_y4m(path)
        assert len(back) == len(clip)
        for a, b in zip(clip, back):
            assert a.max_abs_diff(b) == 0

    def test_header_format(self, tmp_path, clip):
        path = tmp_path / "clip.y4m"
        write_y4m(path, clip, fps=29.97)
        head = path.read_bytes()[:64].split(b"\n")[0].decode()
        assert head.startswith("YUV4MPEG2 W96 H64 F30000:1001")
        assert "C420" in head

    def test_non_aligned_input_padded(self, tmp_path):
        # hand-write a 70x50 y4m, reader should pad to 80x64
        w, h = 70, 50
        y = np.arange(w * h, dtype=np.uint8).reshape(h, w)
        cb = np.full((25, 35), 100, np.uint8)
        cr = np.full((25, 35), 150, np.uint8)
        path = tmp_path / "odd.y4m"
        with open(path, "wb") as fh:
            fh.write(b"YUV4MPEG2 W70 H50 F30:1 Ip A1:1 C420\nFRAME\n")
            fh.write(y.tobytes() + cb.tobytes() + cr.tobytes())
        frames = read_y4m(path)
        assert frames[0].width == 80 and frames[0].height == 64
        assert (frames[0].y[:50, :70] == y).all()

    def test_rejects_wrong_magic(self, tmp_path):
        path = tmp_path / "bad.y4m"
        path.write_bytes(b"NOTAY4M W2 H2\n")
        with pytest.raises(ValueError):
            read_y4m(path)

    def test_rejects_422(self, tmp_path):
        path = tmp_path / "bad.y4m"
        path.write_bytes(b"YUV4MPEG2 W16 H16 F30:1 C422\n")
        with pytest.raises(ValueError):
            read_y4m(path)

    def test_truncated_frame(self, tmp_path):
        path = tmp_path / "trunc.y4m"
        path.write_bytes(b"YUV4MPEG2 W16 H16 F30:1 C420\nFRAME\n\x00\x00")
        with pytest.raises(ValueError):
            read_y4m(path)

    def test_empty_clip_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            write_y4m(tmp_path / "e.y4m", [])


class TestColorConversion:
    def test_gray_frame_maps_to_gray_rgb(self):
        f = Frame.blank(32, 32, y=120, c=128)
        rgb = frame_to_rgb(f)
        assert (np.abs(rgb.astype(int) - 120) <= 1).all()

    def test_rgb_frame_roundtrip_close(self):
        rng = np.random.default_rng(0)
        # smooth content survives 4:2:0 chroma subsampling well
        yy, xx = np.mgrid[0:64, 0:64]
        rgb = np.stack(
            [
                128 + 80 * np.sin(xx / 13.0),
                128 + 60 * np.cos(yy / 11.0),
                128 + 40 * np.sin((xx + yy) / 17.0),
            ],
            axis=-1,
        ).astype(np.uint8)
        back = frame_to_rgb(rgb_to_frame(rgb))
        err = np.abs(back.astype(int) - rgb.astype(int))
        assert err.mean() < 4

    def test_rgb_to_frame_pads(self):
        rgb = np.zeros((50, 70, 3), np.uint8)
        f = rgb_to_frame(rgb)
        assert f.width % 16 == 0 and f.height % 16 == 0


class TestPPM:
    def test_roundtrip(self, tmp_path, clip):
        path = tmp_path / "f.ppm"
        write_ppm(path, clip[0])
        back = read_ppm(path)
        assert back.width >= clip[0].width
        # luma approximately preserved through RGB
        a = clip[0].y.astype(int)
        b = back.y[: clip[0].height, : clip[0].width].astype(int)
        assert np.abs(a - b).mean() < 3

    def test_header(self, tmp_path, clip):
        path = tmp_path / "f.ppm"
        write_ppm(path, clip[0])
        assert path.read_bytes().startswith(b"P6\n96 64\n255\n")

    def test_rejects_non_p6(self, tmp_path):
        path = tmp_path / "bad.ppm"
        path.write_bytes(b"P3\n1 1\n255\n0 0 0\n")
        with pytest.raises(ValueError):
            read_ppm(path)
