"""Tile decoder unit tests: routing, ordering, references, MEI execution."""

import numpy as np
import pytest

from repro.mpeg2.constants import PictureType
from repro.mpeg2.encoder import Encoder, EncoderConfig
from repro.mpeg2.frames import Frame
from repro.mpeg2.motion import Rect
from repro.mpeg2.parser import PictureScanner
from repro.parallel.mb_splitter import MacroblockSplitter
from repro.parallel.mei import BWD, FWD, BlockXfer
from repro.parallel.pdecoder import PixelBlock, TileDecoder
from repro.wall.layout import TileLayout
from repro.workloads.synthetic import moving_pattern_frames


@pytest.fixture(scope="module")
def setup():
    frames = moving_pattern_frames(96, 64, 7, seed=8)
    stream = Encoder(EncoderConfig(gop_size=7, b_frames=2)).encode(frames)
    seq, pics = PictureScanner(stream).scan()
    layout = TileLayout(seq.width, seq.height, 2, 1)
    splitter = MacroblockSplitter(seq, layout)
    results = [splitter.split(u, i) for i, u in enumerate(pics)]
    return seq, layout, results


def _decoder(setup, tid=0, **kw):
    seq, layout, _ = setup
    return TileDecoder(layout.tile(tid), layout, seq, **kw)


class TestRouting:
    def test_wrong_tile_rejected(self, setup):
        _, _, results = setup
        dec = _decoder(setup, tid=0)
        with pytest.raises(ValueError):
            dec.decode_subpicture(results[0].subpictures[1])

    def test_out_of_order_rejected(self, setup):
        _, _, results = setup
        dec = _decoder(setup, tid=0)
        with pytest.raises(ValueError, match="out of order"):
            dec.decode_subpicture(results[1].subpictures[0])

    def test_misdelivered_block_rejected(self, setup):
        dec = _decoder(setup, tid=0)
        blk = PixelBlock(
            xfer=BlockXfer(Rect(0, 0, 4, 4), Rect(0, 0, 2, 2), FWD),
            src=1,
            dest=1,  # not this decoder
            y=np.zeros((4, 4), np.uint8),
            cb=None,
            cr=None,
        )
        with pytest.raises(ValueError):
            dec.apply_recv(blk, PictureType.P)


class TestReferences:
    def test_p_before_i_rejected(self, setup):
        _, _, results = setup
        dec = _decoder(setup, tid=0)
        # force the first delivery to be the P picture (index mismatch is
        # checked first, so rewrite its index)
        sp = results[1].subpictures[0]
        sp.picture_index = 0
        try:
            with pytest.raises(ValueError):
                dec.decode_subpicture(sp)
        finally:
            sp.picture_index = 1  # shared fixture: undo the mutation

    def test_reference_for_direction(self, setup):
        dec = _decoder(setup, tid=0)
        a = Frame.blank(96, 64, y=10)
        b = Frame.blank(96, 64, y=20)
        dec.prev_anchor, dec.held = a, b
        assert dec._ref_for_direction(FWD, PictureType.P) is b
        assert dec._ref_for_direction(FWD, PictureType.B) is a
        assert dec._ref_for_direction(BWD, PictureType.B) is b
        with pytest.raises(ValueError):
            dec._ref_for_direction(BWD, PictureType.P)
        with pytest.raises(ValueError):
            dec._ref_for_direction(7, PictureType.P)

    def test_missing_reference_detected(self, setup):
        dec = _decoder(setup, tid=0)
        with pytest.raises(ValueError):
            dec._ref_for_direction(FWD, PictureType.P)


class TestMEIExecution:
    def test_send_then_recv_moves_pixels(self, setup):
        seq, layout, _ = setup
        src = _decoder(setup, tid=0)
        dst = _decoder(setup, tid=1)
        ref_src = Frame.blank(96, 64, y=99)
        src.held = ref_src
        dst.held = Frame.blank(96, 64, y=0)
        xfer = BlockXfer(Rect(40, 8, 48, 24), Rect(20, 4, 24, 12), FWD)
        from repro.parallel.mei import MEIProgram

        prog = MEIProgram(tile=0, picture_index=1, sends=[(xfer, 1)])
        blocks = src.execute_sends(prog, PictureType.P)
        assert len(blocks) == 1
        assert blocks[0].nbytes == xfer.payload_bytes
        dst.apply_recv(blocks[0], PictureType.P)
        assert (dst.held.y[8:24, 40:48] == 99).all()
        assert src.stats.serve_bytes == dst.stats.fetch_bytes == xfer.payload_bytes

    def test_display_reorder_matches_sequential(self, setup):
        """Anchors are held one picture; B frames emit immediately."""
        _, _, results = setup
        dec = _decoder(setup, tid=0)
        emitted = []
        for r in results:
            out = dec.decode_subpicture(r.subpictures[0])
            emitted.append(out is not None)
        tail = dec.flush()
        assert tail is not None
        # coded order I P B B P B B -> ready flags F T T T T T T
        assert emitted == [False, True, True, True, True, True, True]

    def test_stats_accumulate(self, setup):
        _, _, results = setup
        dec = _decoder(setup, tid=0)
        for r in results:
            dec.decode_subpicture(r.subpictures[0])
        assert dec.stats.pictures_decoded == len(results)
        assert dec.stats.macroblocks_decoded > 0
        assert dec.stats.subpicture_bytes > 0
