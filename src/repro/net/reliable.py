"""Opt-in reliable-link mode for the socket transport.

A plain :class:`~repro.net.channel.Channel` is exactly as reliable as its
TCP/unix stream: a transient disconnect (daemon restart, dropped NAT
binding, a gateway fail-probe racing a slow accept) surfaces as
:class:`ChannelClosed`/:class:`PeerDeadError` and the conversation is
dead.  That is the right behavior for intra-cluster *data* links — a
decoder losing its splitter is a cluster failure — but the fleet
gateway's *control* traffic must survive daemon hiccups: an in-flight
``submit`` must not be lost because the socket flapped.

This module layers RTLink-style reliability (sequence-numbered frames,
cumulative acks, bounded retransmit window, resume handshake) on top of
the existing frame transport, negotiated HELLO-style and off by default:

- every application frame is wrapped in an ``RL_DATA`` frame carrying a
  per-link **send sequence number** and a piggybacked **cumulative ack**;
- the sender keeps unacked frames in a bounded **retransmit window**
  (``window`` frames); a full window blocks the sender until acks drain;
- the receiver delivers strictly in order, acks cumulatively, and
  re-acks (without redelivering) duplicates seen after a retransmit;
- on disconnect, the dialer side **reconnects and resumes**: it dials
  again, sends ``RL_SYN`` with its receive cursor and a features dict
  (the HELLO convention — ``{"reliable": true}`` alongside whatever else,
  mirroring the cluster's ``shm_pool`` flag), the accepter answers
  ``RL_SYNACK`` with *its* cursor, and both sides retransmit exactly the
  frames the peer has not seen.  The accepter side cannot dial; it parks
  in :meth:`ReliableEndpoint.recv` until the accept loop adopts a fresh
  connection into the link (or ``resume_timeout`` expires, which is the
  one case that still raises :class:`PeerDeadError`).

Because loss on a stream socket only ever happens *at* a disconnect,
there is no timer-based retransmit: the resume handshake is the
retransmission trigger, which keeps the steady-state cost to one 12-byte
reliable header per frame plus one small ack frame per delivery.

The layer is deliberately single-conversation: one thread drives
``send``/``recv`` per endpoint (the gateway's RPC pattern).  Heartbeats
keep running underneath on whichever channel is currently attached.
"""

from __future__ import annotations

import json
import struct
import threading
import time
import uuid
from typing import Callable, Deque, Dict, Optional, Tuple
from collections import OrderedDict, deque

from repro.net.channel import (
    Channel,
    ChannelClosed,
    ChannelError,
    ChannelTimeout,
    Message,
    PeerDeadError,
)

#: Transport-reserved frame types (250..255; application types stay below).
RL_DATA = 250  # reliable payload: _DATA_HEAD + inner payload
RL_ACK = 251  # cumulative ack: _ACK_HEAD only
RL_SYN = 252  # dialer -> accepter: open/resume (json)
RL_SYNACK = 253  # accepter -> dialer: resume reply (json)

#: seq u32, cumulative ack u32, inner type u8, inner sender u16, inner picture i32
_DATA_HEAD = "<IIBHi"
_DATA_HEAD_SIZE = struct.calcsize(_DATA_HEAD)
_ACK_HEAD = "<I"

#: Poll slice while waiting for window space or adoption.
_POLL = 0.05


class LinkProtocolError(ChannelError):
    """The peer violated the reliable-link protocol (bad seq, bad SYN)."""


def encode_syn(token: str, rx_next: int, features: Optional[dict] = None) -> bytes:
    doc = {"token": token, "rx_next": rx_next}
    if features:
        doc["features"] = features
    return json.dumps(doc, sort_keys=True).encode("utf-8")


def decode_syn(payload: bytes) -> Tuple[str, int, dict]:
    try:
        doc = json.loads(payload.decode("utf-8"))
        return str(doc["token"]), int(doc["rx_next"]), doc.get("features", {})
    except (UnicodeDecodeError, ValueError, KeyError, TypeError) as exc:
        raise LinkProtocolError(f"malformed SYN payload: {exc}") from exc


class ReliableEndpoint:
    """One end of a reliable link over a sequence of underlying channels.

    The **dialer** side owns a ``dial`` callable and transparently
    reconnects; the **accepter** side is re-armed from outside via
    :meth:`adopt` (the accept loop recognizes the returning token).
    """

    def __init__(
        self,
        token: Optional[str] = None,
        side: str = "dialer",
        dial: Optional[Callable[[], Channel]] = None,
        window: int = 64,
        resume_timeout: float = 10.0,
        heartbeat_interval: Optional[float] = None,
        features: Optional[dict] = None,
        name: str = "",
    ):
        if side not in ("dialer", "accepter"):
            raise ValueError(f"unknown side {side!r}")
        if side == "dialer" and dial is None:
            raise ValueError("the dialer side needs a dial callable")
        if window < 1:
            raise ValueError("need a window of at least one frame")
        self.token = token or uuid.uuid4().hex
        self.side = side
        self.dial = dial
        self.window = window
        self.resume_timeout = resume_timeout
        self.heartbeat_interval = heartbeat_interval
        self.features = dict(features or {})
        self.features.setdefault("reliable", True)
        self.name = name or f"rl-{self.token[:8]}"
        self.peer_features: Dict[str, object] = {}
        # --- reliable state (survives channel swaps) ---
        self.tx_next = 0  # next sequence number to assign
        self.rx_next = 0  # next sequence number expected
        self.tx_unacked: "OrderedDict[int, bytes]" = OrderedDict()  # seq -> wire bytes
        self._inbox: Deque[Message] = deque()  # DATA buffered while pumping acks
        self._chan: Optional[Channel] = None
        self._chan_gen = 0  # bumped on every (re)attach
        self._down_since: Optional[float] = None  # first failure of this outage
        self._cond = threading.Condition()
        self._closed = False
        # observability
        self.reconnects = 0
        self.retransmits = 0
        self.duplicates_dropped = 0

    # ------------------------------- attach ------------------------------ #

    def _attach(
        self, ch: Channel, peer_rx_next: int, send_synack: bool = False
    ) -> None:
        """Adopt ``ch`` as the live channel and retransmit past the peer's
        receive cursor.  The channel swap happens *before* the SYNACK goes
        out: the moment the peer unblocks, a thread parked in this
        endpoint's recv/send must already see the new channel."""
        with self._cond:
            old = self._chan
            self._chan = ch
            self._chan_gen += 1
            self._down_since = None
            self._cond.notify_all()
        if old is not None and old is not ch:
            old.close()
        if self.heartbeat_interval:
            ch.start_heartbeat(self.heartbeat_interval)
        if send_synack:
            ch.send(RL_SYNACK, encode_syn(self.token, self.rx_next, self.features))
        # Everything below the peer's cursor is implicitly acked.
        self._process_ack(peer_rx_next - 1)
        for seq, wire in list(self.tx_unacked.items()):
            if seq >= peer_rx_next:
                ch.send(RL_DATA, wire)
                self.retransmits += 1

    def adopt(self, ch: Channel, peer_rx_next: int, peer_features: dict) -> None:
        """Accepter side: a (re)connecting peer presented this link's token.

        Replies ``RL_SYNACK`` with our receive cursor, then retransmits
        whatever the peer is missing.  Wakes any thread parked in
        :meth:`recv`/:meth:`send` waiting out the disconnect.
        """
        if self._closed:
            raise ChannelClosed(f"{self.name}: link closed")
        self.peer_features = dict(peer_features)
        self._attach(ch, peer_rx_next, send_synack=True)

    def _outage_deadline(self, gen: int) -> float:
        """Absolute instant this outage becomes fatal.  Anchored to the
        *first* failure observed for this channel generation, so repeated
        short-timeout ``recv`` calls do not keep restarting the clock."""
        with self._cond:
            if self._down_since is None:
                self._down_since = time.monotonic()
            return self._down_since + self.resume_timeout

    def _redial(self, gen: int, deadline: Optional[float]) -> None:
        """Dialer side: reconnect and run the SYN/SYNACK resume handshake."""
        assert self.dial is not None
        resume_by = self._outage_deadline(gen)
        while True:
            if self._closed:
                raise ChannelClosed(f"{self.name}: link closed")
            now = time.monotonic()
            if now >= resume_by:
                raise PeerDeadError(
                    f"{self.name}: could not resume within "
                    f"{self.resume_timeout:.1f}s"
                )
            if deadline is not None and now >= deadline:
                raise ChannelTimeout(f"{self.name}: disconnected, still resuming")
            try:
                ch = self.dial()
                ch.name = ch.name or self.name
                ch.send(RL_SYN, encode_syn(self.token, self.rx_next, self.features))
                reply = ch.recv(timeout=max(0.1, resume_by - time.monotonic()))
                if reply.type != RL_SYNACK:
                    ch.close()
                    raise LinkProtocolError(
                        f"{self.name}: expected SYNACK, got type {reply.type}"
                    )
                _token, peer_rx_next, self.peer_features = decode_syn(reply.payload)
                self.reconnects += 1
                self._attach(ch, peer_rx_next)
                return
            except LinkProtocolError:
                raise
            except ChannelError:
                time.sleep(_POLL)

    def open(self) -> None:
        """Dialer side: establish the link for the first time."""
        if self.side != "dialer":
            raise RuntimeError("only the dialer side opens a link")
        with self._cond:
            gen = self._chan_gen
        self._redial(gen, deadline=None)

    def _wait_adoption(self, gen: int, deadline: Optional[float]) -> None:
        """Accepter side: park until the accept loop adopts a new channel."""
        resume_by = self._outage_deadline(gen)
        t_max = resume_by if deadline is None else min(resume_by, deadline)
        with self._cond:
            ok = self._cond.wait_for(
                lambda: self._closed or self._chan_gen != gen,
                max(0.0, t_max - time.monotonic()),
            )
            if self._closed:
                raise ChannelClosed(f"{self.name}: link closed")
            if ok:
                return
        if time.monotonic() >= resume_by:
            raise PeerDeadError(
                f"{self.name}: peer did not resume within "
                f"{self.resume_timeout:.1f}s"
            )
        raise ChannelTimeout(f"{self.name}: disconnected, awaiting resume")

    def _recover(self, gen: int, deadline: Optional[float]) -> None:
        """The live channel died: resume per side, once per channel
        generation (concurrent callers piggyback on the first recovery)."""
        with self._cond:
            if self._chan_gen != gen:
                return  # someone else already recovered
        if self.side == "dialer":
            self._redial(gen, deadline)
        else:
            self._wait_adoption(gen, deadline)

    # -------------------------------- wire ------------------------------- #

    def _live(self) -> Tuple[Channel, int]:
        with self._cond:
            if self._closed:
                raise ChannelClosed(f"{self.name}: link closed")
            if self._chan is None:
                raise ChannelClosed(f"{self.name}: link never opened")
            return self._chan, self._chan_gen

    def _process_ack(self, ack: int) -> None:
        """Cumulative: everything up to and including ``ack`` is delivered."""
        while self.tx_unacked:
            seq = next(iter(self.tx_unacked))
            if seq > ack:
                break
            self.tx_unacked.popitem(last=False)

    def _send_ack(self, ch: Channel) -> None:
        try:
            ch.send(RL_ACK, struct.pack(_ACK_HEAD, self.rx_next))
        except ChannelError:
            pass  # the next resume handshake carries the cursor anyway

    def _pump(self, ch: Channel, timeout: float) -> None:
        """Read one frame off the live channel: acks update the window,
        data frames land in the inbox (deduplicated + acked)."""
        msg = ch.recv(timeout=timeout)
        if msg.type == RL_ACK:
            (ack,) = struct.unpack(_ACK_HEAD, msg.payload)
            self._process_ack(ack - 1)
            return
        if msg.type != RL_DATA:
            raise LinkProtocolError(
                f"{self.name}: unexpected frame type {msg.type} on a reliable link"
            )
        seq, ack, mtype, sender, picture = struct.unpack_from(
            _DATA_HEAD, msg.payload
        )
        self._process_ack(ack - 1)
        if seq < self.rx_next:
            # retransmit of something already delivered: re-ack, drop
            self.duplicates_dropped += 1
            self._send_ack(ch)
            return
        if seq > self.rx_next:
            raise LinkProtocolError(
                f"{self.name}: sequence gap (got {seq}, expected {self.rx_next})"
            )
        self.rx_next = seq + 1
        self._inbox.append(
            Message(
                type=mtype,
                sender=sender,
                picture=picture,
                payload=msg.payload[_DATA_HEAD_SIZE:],
            )
        )
        self._send_ack(ch)

    # ------------------------------- send/recv --------------------------- #

    def send(
        self,
        mtype: int,
        payload: bytes = b"",
        picture: int = -1,
        sender: int = 0,
        timeout: Optional[float] = None,
    ) -> None:
        """Sequence, window-gate, and transmit one application frame.

        The frame is committed to the retransmit buffer *before* the
        first wire attempt, so a disconnect between commit and ack can
        never lose it — resume retransmits it.
        """
        deadline = None if timeout is None else time.monotonic() + timeout
        # Window gate: pump acks (buffering any data) until space opens.
        while len(self.tx_unacked) >= self.window:
            ch, gen = self._live()
            if deadline is not None and time.monotonic() >= deadline:
                raise ChannelTimeout(
                    f"{self.name}: retransmit window full past timeout"
                )
            try:
                self._pump(ch, timeout=_POLL)
            except ChannelTimeout:
                continue
            except (ChannelClosed, PeerDeadError):
                self._recover(gen, deadline)
        seq = self.tx_next
        self.tx_next += 1
        head = struct.pack(_DATA_HEAD, seq, self.rx_next, mtype, sender, picture)
        wire = head + (payload if isinstance(payload, bytes) else bytes(payload))
        self.tx_unacked[seq] = wire
        while True:
            ch, gen = self._live()
            try:
                ch.send(RL_DATA, wire, timeout=timeout)
                return
            except (ChannelClosed, ChannelTimeout, PeerDeadError):
                self._recover(gen, deadline)
                # resume already retransmitted everything unacked — done
                return

    def recv(self, timeout: Optional[float] = None) -> Message:
        """Next in-order application frame; survives reconnects."""
        deadline = None if timeout is None else time.monotonic() + timeout
        while True:
            if self._inbox:
                return self._inbox.popleft()
            ch, gen = self._live()
            if deadline is not None and time.monotonic() >= deadline:
                raise ChannelTimeout(f"{self.name}: no message within timeout")
            try:
                self._pump(ch, timeout=_POLL)
            except ChannelTimeout:
                continue
            except (ChannelClosed, PeerDeadError):
                self._recover(gen, deadline)

    # ------------------------------ lifecycle ----------------------------- #

    def stats_dict(self) -> Dict[str, int]:
        return {
            "tx_next": self.tx_next,
            "rx_next": self.rx_next,
            "unacked": len(self.tx_unacked),
            "reconnects": self.reconnects,
            "retransmits": self.retransmits,
            "duplicates_dropped": self.duplicates_dropped,
        }

    def close(self) -> None:
        with self._cond:
            if self._closed:
                return
            self._closed = True
            ch = self._chan
            self._cond.notify_all()
        if ch is not None:
            ch.close()

    def __enter__(self) -> "ReliableEndpoint":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def dial_reliable(
    dial: Callable[[], Channel],
    window: int = 64,
    resume_timeout: float = 10.0,
    heartbeat_interval: Optional[float] = None,
    features: Optional[dict] = None,
    name: str = "",
) -> ReliableEndpoint:
    """Open the dialer side of a reliable link and return it connected."""
    ep = ReliableEndpoint(
        side="dialer",
        dial=dial,
        window=window,
        resume_timeout=resume_timeout,
        heartbeat_interval=heartbeat_interval,
        features=features,
        name=name,
    )
    ep.open()
    return ep
