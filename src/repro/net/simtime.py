"""A small discrete-event simulation kernel (generator processes).

The kernel is the substrate under the timed 1-k-(m,n) system: protocol
actors are Python generators that ``yield`` events — :class:`Timeout` for
modeled compute time, :class:`Store` gets for message arrival, and
:class:`Resource` requests for serialized hardware (a NIC's injection DMA).
The style follows simpy's, implemented here from scratch so the repository
is dependency-free.

Determinism: events scheduled for the same instant fire in scheduling order
(a monotonically increasing sequence number breaks ties), so simulations
are exactly reproducible.
"""

from __future__ import annotations

import heapq
from collections import deque
from typing import Any, Callable, Deque, Generator, List, Optional


class SimulationError(RuntimeError):
    pass


class Event:
    """A one-shot event processes can wait on."""

    __slots__ = ("sim", "_callbacks", "triggered", "value")

    def __init__(self, sim: "Simulator"):
        self.sim = sim
        self._callbacks: List[Callable[[Any], None]] = []
        self.triggered = False
        self.value: Any = None

    def succeed(self, value: Any = None) -> "Event":
        if self.triggered:
            raise SimulationError("event already triggered")
        self.triggered = True
        self.value = value
        for cb in self._callbacks:
            self.sim._schedule(0.0, cb, value)
        self._callbacks.clear()
        return self

    def add_callback(self, cb: Callable[[Any], None]) -> None:
        if self.triggered:
            self.sim._schedule(0.0, cb, self.value)
        else:
            self._callbacks.append(cb)


class Timeout:
    """Wait for ``delay`` units of simulated time."""

    __slots__ = ("delay",)

    def __init__(self, delay: float):
        if delay < 0:
            raise ValueError("negative timeout")
        self.delay = delay


class Process:
    """A running generator coroutine."""

    __slots__ = ("sim", "gen", "name", "finished", "result", "_waiters")

    def __init__(self, sim: "Simulator", gen: Generator, name: str = "proc"):
        self.sim = sim
        self.gen = gen
        self.name = name
        self.finished = False
        self.result: Any = None
        self._waiters: List[Event] = []
        sim._schedule(0.0, self._resume, None)

    def _resume(self, value: Any) -> None:
        try:
            yielded = self.gen.send(value)
        except StopIteration as stop:
            self.finished = True
            self.result = stop.value
            for ev in self._waiters:
                ev.succeed(stop.value)
            self._waiters.clear()
            return
        self._wire(yielded)

    def _wire(self, yielded: Any) -> None:
        if isinstance(yielded, Timeout):
            self.sim._schedule(yielded.delay, self._resume, None)
        elif isinstance(yielded, Event):
            yielded.add_callback(self._resume)
        elif isinstance(yielded, Process):
            yielded.completion().add_callback(self._resume)
        else:
            raise SimulationError(
                f"process {self.name} yielded unsupported {yielded!r}"
            )

    def completion(self) -> Event:
        ev = Event(self.sim)
        if self.finished:
            ev.succeed(self.result)
        else:
            self._waiters.append(ev)
        return ev


class Simulator:
    """Event loop: a time-ordered heap of callbacks."""

    def __init__(self) -> None:
        self.now = 0.0
        self._heap: List[tuple] = []
        self._seq = 0

    def _schedule(self, delay: float, cb: Callable[[Any], None], value: Any) -> None:
        self._seq += 1
        heapq.heappush(self._heap, (self.now + delay, self._seq, cb, value))

    def process(self, gen: Generator, name: str = "proc") -> Process:
        return Process(self, gen, name=name)

    def event(self) -> Event:
        return Event(self)

    def run(self, until: Optional[float] = None) -> float:
        """Run until the event queue drains (or simulated time ``until``)."""
        while self._heap:
            t, _, cb, value = self._heap[0]
            if until is not None and t > until:
                self.now = until
                return self.now
            heapq.heappop(self._heap)
            self.now = t
            cb(value)
        return self.now


class Store:
    """Unbounded FIFO message store (the mailbox primitive)."""

    def __init__(self, sim: Simulator):
        self.sim = sim
        self.items: Deque[Any] = deque()
        self._getters: Deque[Event] = deque()

    def put(self, item: Any) -> None:
        if self._getters:
            self._getters.popleft().succeed(item)
        else:
            self.items.append(item)

    def get(self) -> Event:
        ev = Event(self.sim)
        if self.items:
            ev.succeed(self.items.popleft())
        else:
            self._getters.append(ev)
        return ev

    def __len__(self) -> int:
        return len(self.items)


class Resource:
    """Counting resource with FIFO queuing (e.g. a NIC DMA engine)."""

    def __init__(self, sim: Simulator, capacity: int = 1):
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.sim = sim
        self.capacity = capacity
        self.in_use = 0
        self._waiters: Deque[Event] = deque()

    def request(self) -> Event:
        ev = Event(self.sim)
        if self.in_use < self.capacity:
            self.in_use += 1
            ev.succeed(None)
        else:
            self._waiters.append(ev)
        return ev

    def release(self) -> None:
        if self._waiters:
            self._waiters.popleft().succeed(None)
        else:
            if self.in_use <= 0:
                raise SimulationError("release of an idle resource")
            self.in_use -= 1


def hold(resource: Resource, duration: float):
    """Generator helper: acquire ``resource``, hold for ``duration``, release.

    Usage inside a process: ``yield from hold(nic, xfer_time)``.
    """
    yield resource.request()
    try:
        yield Timeout(duration)
    finally:
        resource.release()
