"""Length-prefixed socket message transport for the real cluster runtime.

The deterministic simulator (:mod:`repro.net.gm`) models the GM message
layer; this module is the *actual* transport the multi-process runtime
(:mod:`repro.cluster.runtime`) runs on: TCP or Unix-domain stream sockets
carrying framed binary messages.

Wire format (little-endian), one frame per message::

    magic    u16   0x4D43 ("CM")
    type     u8    message type (HEARTBEAT = 0 is transport-reserved)
    sender   u16   sender id, application-defined
    picture  i32   picture index (or -1 when not picture-scoped)
    length   u32   payload byte count

followed by ``length`` payload bytes.

Delivery properties deliberately mirror the GM model the protocol was
designed against: messages on one channel arrive in send order (a stream
socket gives that for free), but nothing orders messages across *different*
channels — which is exactly why the ANID ack-redirection protocol exists
and why the runtime keeps one socket per peer pair.

Failure semantics:

- ``recv`` raises :class:`ChannelTimeout` when no message arrives in time,
  :class:`ChannelClosed` on EOF/reset, and :class:`PeerDeadError` when the
  peer has been silent longer than ``dead_after`` while heartbeats were
  expected — a *hung* peer, as opposed to a dead socket.
- ``connect`` retries with exponential backoff until a deadline, so
  processes may start in any order.
- :class:`CreditGate` implements the paper's two-receive-buffer flow
  control: a sender acquires a credit per in-flight message and the
  receiver's CREDIT/ack messages release them.
"""

from __future__ import annotations

import os
import random
import select
import socket
import struct
import threading
import time
from dataclasses import dataclass, field
from typing import Dict, Optional, Sequence, Tuple, Union

from repro.perf.metrics import NodeBandwidth
from repro.perf.telemetry import register_channel, retire_channel

MAGIC = 0x4D43  # "CM" — cluster message
HEADER_FMT = "<HBHiI"
HEADER_SIZE = struct.calcsize(HEADER_FMT)

#: Transport-reserved message type: sent by the keepalive thread, consumed
#: inside ``recv`` (refreshes the peer-activity clock, never surfaced).
#: Types 250..255 are reserved for the opt-in reliable-link layer
#: (:mod:`repro.net.reliable`); application numbering stays below that.
HEARTBEAT = 0

#: Socket poll granularity; every blocking wait is sliced at this period so
#: deadlines and peer-death checks stay responsive.
POLL_INTERVAL = 0.05

# An address is JSON-friendly: ("tcp", host, port) or ("unix", path).
Address = Union[Tuple[str, str, int], Tuple[str, str]]

# A frame payload: one buffer, or a sequence of buffers written back to
# back (vectored send — ndarray memoryviews reach the socket zero-copy).
Buffer = Union[bytes, bytearray, memoryview]
Payload = Union[Buffer, Sequence[Buffer]]


class ChannelError(RuntimeError):
    """Base class for transport failures."""


class ChannelClosed(ChannelError):
    """The peer closed the connection (EOF or reset)."""


class ChannelTimeout(ChannelError):
    """No message arrived within the allowed time."""


class PeerDeadError(ChannelError):
    """A heartbeat-monitored peer went silent past ``dead_after``."""


class CreditTimeout(ChannelError):
    """A sender exhausted its credits and none were released in time."""


@dataclass(frozen=True)
class Message:
    """One received frame."""

    type: int
    sender: int
    picture: int
    payload: bytes


@dataclass
class ChannelStats:
    """Live accounting for one channel: the wire-level observability.

    ``bandwidth`` counts every byte that crossed the socket (headers and
    heartbeats included — they are wire bytes); the frame counters count
    application frames only.  ``send_blocked_s`` is time the sender spent
    waiting for kernel-buffer space (backpressure), ``recv_wait_s`` is
    time spent blocked for inbound data (idle + transfer).

    Handle-bearing frames (shared-memory pool payloads) put only their
    tiny header+handle on the wire; the pixels move through shm.  So
    ``sent_bytes`` stays honest wire accounting by construction, and
    ``handle_frames``/``handle_bytes`` record how many frames — and how
    many payload bytes — bypassed the socket entirely.
    """

    bandwidth: NodeBandwidth = field(default_factory=NodeBandwidth)
    sent_frames: int = 0
    recv_frames: int = 0
    send_blocked_s: float = 0.0
    recv_wait_s: float = 0.0
    handle_frames: int = 0
    handle_bytes: int = 0

    def note_handle(self, payload_nbytes: int) -> None:
        """Record one frame whose payload moved by shm handle, not wire."""
        self.handle_frames += 1
        self.handle_bytes += payload_nbytes

    def to_dict(self) -> Dict[str, float]:
        return {
            "sent_bytes": self.bandwidth.sent,
            "recv_bytes": self.bandwidth.received,
            "sent_frames": self.sent_frames,
            "recv_frames": self.recv_frames,
            "send_blocked_s": round(self.send_blocked_s, 6),
            "recv_wait_s": round(self.recv_wait_s, 6),
            "handle_frames": self.handle_frames,
            "handle_bytes": self.handle_bytes,
        }


def _new_socket(kind: str) -> socket.socket:
    if kind == "tcp":
        s = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        s.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        return s
    if kind == "unix":
        return socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
    raise ValueError(f"unknown transport {kind!r}")


class Channel:
    """A framed, bidirectional message stream over one connected socket."""

    def __init__(self, sock: socket.socket, name: str = "", dead_after: Optional[float] = None):
        self.sock = sock
        self.name = name
        self.dead_after = dead_after
        # Non-blocking + select throughout: send and recv may run on
        # different threads, and a shared per-socket timeout (settimeout)
        # would let one direction's poll corrupt the other's blocking mode.
        self.sock.setblocking(False)
        self.stats = ChannelStats()
        # Peer capabilities learned from the HELLO exchange (the runtime
        # fills this in); empty means "assume nothing", i.e. by-value.
        self.peer_features: Dict[str, object] = {}
        register_channel(self)
        self._send_lock = threading.Lock()
        self._buf = bytearray()
        self._closed = False
        self._last_activity = time.monotonic()
        self._hb_stop: Optional[threading.Event] = None
        self._hb_thread: Optional[threading.Thread] = None

    @property
    def is_local(self) -> bool:
        """True when the peer provably shares this host (unix socket)."""
        return self.sock.family == socket.AF_UNIX

    # -------------------------------- send --------------------------------- #

    def send(
        self,
        mtype: int,
        payload: Payload = b"",
        picture: int = -1,
        sender: int = 0,
        timeout: Optional[float] = None,
    ) -> None:
        """Write one frame; blocks while the kernel buffer is full.

        ``payload`` may be a single buffer (``bytes``/``memoryview``) or a
        sequence of buffers.  A sequence is written back to back after the
        header with no intermediate concatenation, so ndarray-backed
        memoryviews go to the socket zero-copy.

        With ``timeout`` the wait is bounded.  If the deadline passes with
        the frame partially written, the stream is desynchronised beyond
        repair, so the channel is closed before :class:`ChannelTimeout`
        is raised — a half-sent frame must never be followed by another.
        """
        if isinstance(payload, (bytes, bytearray, memoryview)):
            bufs = [payload]
        else:
            bufs = list(payload)
        views = []
        for b in bufs:
            v = memoryview(b)
            if v.nbytes == 0:
                continue  # empty views cannot be cast (zero in shape)
            if v.format != "B" or v.ndim != 1:
                v = v.cast("B")
            views.append(v)
        length = sum(v.nbytes for v in views)
        header = struct.pack(HEADER_FMT, MAGIC, mtype, sender, picture, length)
        views.insert(0, memoryview(header))
        deadline = None if timeout is None else time.monotonic() + timeout
        started = False
        with self._send_lock:
            for view in views:
                while view:
                    if self._closed:
                        raise ChannelClosed(f"{self.name}: channel closed")
                    if deadline is not None and time.monotonic() >= deadline:
                        if started:
                            self.close()
                        raise ChannelTimeout(
                            f"{self.name}: send buffer full past timeout"
                        )
                    try:
                        t_wait = time.monotonic()
                        _, writable, _ = select.select(
                            [], [self.sock], [], POLL_INTERVAL
                        )
                        if not writable:
                            # backpressure: the kernel buffer is full
                            self.stats.send_blocked_s += (
                                time.monotonic() - t_wait
                            )
                            continue
                        n = self.sock.send(view)
                    except (BlockingIOError, InterruptedError):
                        continue
                    except (OSError, ValueError) as exc:
                        raise ChannelClosed(
                            f"{self.name}: send failed: {exc}"
                        ) from exc
                    if n:
                        started = True
                        self.stats.bandwidth.sent += n
                        view = view[n:]
        if mtype != HEARTBEAT:
            self.stats.sent_frames += 1

    # -------------------------------- recv --------------------------------- #

    def _fill(self, n: int, deadline: Optional[float]) -> None:
        """Buffer at least ``n`` bytes, polling so deadlines stay live."""
        if len(self._buf) >= n:
            return
        t0 = time.monotonic()
        try:
            while len(self._buf) < n:
                now = time.monotonic()
                if deadline is not None and now >= deadline:
                    raise ChannelTimeout(f"{self.name}: no message within timeout")
                if self.dead_after is not None and now - self._last_activity > self.dead_after:
                    raise PeerDeadError(
                        f"{self.name}: peer silent for more than {self.dead_after:.1f}s"
                    )
                try:
                    readable, _, _ = select.select([self.sock], [], [], POLL_INTERVAL)
                    if not readable:
                        continue
                    chunk = self.sock.recv(65536)
                except (BlockingIOError, InterruptedError):
                    continue
                except (OSError, ValueError) as exc:
                    raise ChannelClosed(f"{self.name}: recv failed: {exc}") from exc
                if not chunk:
                    raise ChannelClosed(f"{self.name}: peer closed the connection")
                self._buf.extend(chunk)
                self.stats.bandwidth.received += len(chunk)
                self._last_activity = time.monotonic()
        finally:
            self.stats.recv_wait_s += time.monotonic() - t0

    def recv(self, timeout: Optional[float] = None) -> Message:
        """Return the next application message (heartbeats are consumed)."""
        deadline = None if timeout is None else time.monotonic() + timeout
        while True:
            self._fill(HEADER_SIZE, deadline)
            magic, mtype, sender, picture, length = struct.unpack_from(HEADER_FMT, self._buf)
            if magic != MAGIC:
                raise ChannelError(f"{self.name}: bad frame magic {magic:#x}")
            self._fill(HEADER_SIZE + length, deadline)
            payload = bytes(self._buf[HEADER_SIZE : HEADER_SIZE + length])
            del self._buf[: HEADER_SIZE + length]
            if mtype == HEARTBEAT:
                continue
            self.stats.recv_frames += 1
            return Message(type=mtype, sender=sender, picture=picture, payload=payload)

    # ------------------------------ keepalive ------------------------------- #

    def start_heartbeat(self, interval: float = 0.5) -> None:
        """Send HEARTBEAT frames every ``interval`` seconds until closed."""
        if self._hb_thread is not None:
            return
        stop = threading.Event()

        def beat() -> None:
            while not stop.wait(interval):
                try:
                    self.send(HEARTBEAT)
                except ChannelError:
                    return

        self._hb_stop = stop
        self._hb_thread = threading.Thread(
            target=beat, name=f"hb:{self.name}", daemon=True
        )
        self._hb_thread.start()

    # ------------------------------ lifecycle ------------------------------- #

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        # Harvest the wire counters before the object can be GC'd out of
        # the weak live-channel registry — final totals must include
        # connections that did not survive to the last stats snapshot.
        retire_channel(self)
        if self._hb_stop is not None:
            self._hb_stop.set()
        try:
            self.sock.shutdown(socket.SHUT_RDWR)
        except OSError:
            pass
        self.sock.close()

    def __enter__(self) -> "Channel":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


class Listener:
    """A bound, listening socket producing :class:`Channel` per accept."""

    def __init__(self, address: Address, backlog: int = 64):
        kind = address[0]
        self.sock = _new_socket(kind)
        if kind == "tcp":
            self.sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
            self.sock.bind((address[1], address[2]))
            host, port = self.sock.getsockname()[:2]
            self.address: Address = ("tcp", host, port)
        else:
            path = address[1]
            if os.path.exists(path):
                os.unlink(path)
            self.sock.bind(path)
            self.address = ("unix", path)
        self.sock.listen(backlog)

    def accept(self, timeout: Optional[float] = None, **channel_kw) -> Channel:
        self.sock.settimeout(timeout)
        try:
            conn, _addr = self.sock.accept()
        except socket.timeout as exc:
            raise ChannelTimeout("accept timed out") from exc
        except OSError as exc:
            raise ChannelClosed(f"listener closed: {exc}") from exc
        return Channel(conn, **channel_kw)

    def close(self) -> None:
        self.sock.close()
        if self.address[0] == "unix" and os.path.exists(self.address[1]):
            try:
                os.unlink(self.address[1])
            except OSError:
                pass

    def __enter__(self) -> "Listener":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


@dataclass(frozen=True)
class ConnectPolicy:
    """Dial retry/backoff tuning, carried by configuration objects.

    The defaults match the historical hard-wired constants; long-lived
    deployments (the wall service) raise ``max_interval`` so idle retry
    loops do not spin, while tests shrink everything for fast failure.

    ``jitter`` randomizes each sleep to ``interval * uniform(1 - jitter, 1)``
    so N dialers probing one restarted daemon do not reconnect in lockstep
    (the gateway health checker runs one probe per fleet daemon).
    """

    retry_interval: float = 0.02
    backoff: float = 1.6
    max_interval: float = 0.5
    jitter: float = 0.25

    def __post_init__(self) -> None:
        if self.retry_interval <= 0 or self.max_interval <= 0:
            raise ValueError("retry intervals must be positive")
        if self.backoff < 1.0:
            raise ValueError("backoff must not shrink the retry interval")
        if not 0.0 <= self.jitter < 1.0:
            raise ValueError("jitter must be in [0, 1)")


def connect(
    address: Address,
    timeout: float = 10.0,
    retry_interval: Optional[float] = None,
    backoff: Optional[float] = None,
    max_interval: Optional[float] = None,
    jitter: Optional[float] = None,
    policy: Optional[ConnectPolicy] = None,
    **channel_kw,
) -> Channel:
    """Dial ``address``, retrying with exponential backoff until ``timeout``.

    Bounded retry exists because the supervisor starts the whole process
    tree at once: a dialer may race the listener's bind.  Retry tuning
    comes from ``policy`` (a :class:`ConnectPolicy`); the individual
    keyword arguments override single fields of it.  Each sleep is
    jittered downward by up to ``jitter`` of its length so a fleet of
    dialers probing one reborn listener desynchronizes instead of
    hammering it in lockstep.
    """
    p = policy or ConnectPolicy()
    retry_interval = p.retry_interval if retry_interval is None else retry_interval
    backoff = p.backoff if backoff is None else backoff
    max_interval = p.max_interval if max_interval is None else max_interval
    jitter = p.jitter if jitter is None else jitter
    deadline = time.monotonic() + timeout
    interval = retry_interval
    last_exc: Optional[Exception] = None
    while time.monotonic() < deadline:
        sock = _new_socket(address[0])
        try:
            sock.settimeout(max(0.1, deadline - time.monotonic()))
            if address[0] == "tcp":
                sock.connect((address[1], address[2]))
            else:
                sock.connect(address[1])
            return Channel(sock, **channel_kw)
        except OSError as exc:
            sock.close()
            last_exc = exc
            sleep = interval * (1.0 - jitter * random.random())
            time.sleep(min(sleep, max(0.0, deadline - time.monotonic())))
            interval = min(interval * backoff, max_interval)
    raise ChannelTimeout(f"could not connect to {address!r}: {last_exc}")


class CreditGate:
    """Two-buffer-style flow control: block the sender at zero credits.

    The initial credit count is the receiver's posted-buffer count (the
    paper uses two).  ``acquire`` consumes one credit per send; the thread
    reading the backchannel calls ``release`` for every CREDIT/ack message.
    ``poison`` wakes all waiters and makes further ``acquire`` calls raise —
    used when the peer dies so a blocked sender cannot hang.

    Flow-control observability: ``acquires`` counts successful acquires,
    ``stalls`` how many of them found zero credits, and ``wait_s`` the
    total time spent blocked — the credit-stall numbers of the trace
    report's per-tile attribution.
    """

    def __init__(self, credits: int):
        if credits < 1:
            raise ValueError("need at least one credit")
        self._cond = threading.Condition()
        self._credits = credits
        self._poisoned: Optional[BaseException] = None
        self.acquires = 0
        self.stalls = 0
        self.wait_s = 0.0

    @property
    def available(self) -> int:
        with self._cond:
            return self._credits

    def acquire(self, timeout: Optional[float] = None) -> None:
        with self._cond:
            stalled = self._credits <= 0 and self._poisoned is None
            t0 = time.monotonic()
            ok = self._cond.wait_for(
                lambda: self._credits > 0 or self._poisoned is not None, timeout
            )
            if stalled:
                self.wait_s += time.monotonic() - t0
            if self._poisoned is not None:
                raise self._poisoned
            if not ok:
                raise CreditTimeout(f"no credit released within {timeout}s")
            self._credits -= 1
            self.acquires += 1
            if stalled:
                self.stalls += 1

    def stats_dict(self) -> Dict[str, float]:
        with self._cond:
            return {
                "acquires": self.acquires,
                "stalls": self.stalls,
                "wait_s": round(self.wait_s, 6),
            }

    def release(self, n: int = 1) -> None:
        with self._cond:
            self._credits += n
            self._cond.notify_all()

    def poison(self, exc: BaseException) -> None:
        with self._cond:
            self._poisoned = exc
            self._cond.notify_all()
