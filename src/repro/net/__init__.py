"""Cluster interconnect substrate: DES kernel and GM-like transport."""

from repro.net.simtime import Simulator, Process, Timeout, Store, Resource, Event
from repro.net.gm import GMNetwork, GMPort, Message, NetworkParams

__all__ = [
    "Simulator",
    "Process",
    "Timeout",
    "Store",
    "Resource",
    "Event",
    "GMNetwork",
    "GMPort",
    "Message",
    "NetworkParams",
]
