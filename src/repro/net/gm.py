"""GM-over-Myrinet-like transport model (paper §4.4).

Properties modeled after the GM user-level message layer the paper uses:

- **Posted receive buffers.** A message can only be consumed if the
  receiver posted a buffer first.  The paper's protocol guarantees this
  with two receive buffers and ack/go-ahead flow control; the transport
  *checks* the guarantee: in ``strict`` mode an arrival that finds no
  posted buffer raises (it would have been silently dropped or DMA'd over
  live data on real hardware).
- **Zero-copy.** Send and receive cost no per-byte CPU copy by default;
  the ``copy_cost_per_byte`` knob adds the memcpy a non-zero-copy stack
  would pay (used by the zero-copy ablation benchmark).
- **No cross-sender ordering.** Messages from one sender to one receiver
  arrive in order (per-NIC DMA serialization gives that for free), but
  messages from *different* senders interleave arbitrarily — which is why
  the ANID ack-redirection protocol exists.
- **Per-NIC serialization + wire time.**  A transfer occupies the source
  NIC for ``size/bandwidth``, travels ``latency`` seconds, then occupies
  the destination NIC for ``size/bandwidth`` (store-and-forward at the
  host interface; the switch itself is cut-through and unmodeled, which
  matches Myrinet's microsecond-scale fabric).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Optional

from repro.net.simtime import Resource, Simulator, Store, Timeout


@dataclass
class NetworkParams:
    """Link/NIC parameters; defaults are Myrinet-class (c. 2001).

    LANai-7 Myrinet with GM delivered ~1.28 Gb/s per link and ~11 us
    short-message latency; we use slightly conservative host-side figures.
    """

    bandwidth: float = 140e6  # bytes/second sustained per NIC
    latency: float = 11e-6  # seconds, one-way short-message latency
    per_message_overhead: float = 6e-6  # host send/recv posting cost (CPU)
    copy_cost_per_byte: float = 0.0  # 0 -> zero-copy (GM); ablation knob
    strict: bool = True  # raise if no receive buffer is posted


class FlowControlError(RuntimeError):
    """An arrival found no posted receive buffer."""


@dataclass
class Message:
    src: int
    dst: int
    payload: Any
    size: int
    tag: str = ""
    send_time: float = 0.0
    arrival_time: float = 0.0
    control: bool = False  # small control message from a pre-posted pool


@dataclass
class PortStats:
    bytes_sent: int = 0
    bytes_received: int = 0
    messages_sent: int = 0
    messages_received: int = 0
    send_busy_time: float = 0.0


class GMPort:
    """One node's network endpoint."""

    def __init__(self, net: "GMNetwork", node_id: int):
        self.net = net
        self.node_id = node_id
        self.inbox = Store(net.sim)
        self.posted_buffers = 0
        self.stats = PortStats()
        self._nic_tx = Resource(net.sim, 1)
        self._nic_rx = Resource(net.sim, 1)

    # -- receive side ---------------------------------------------------- #

    def post_receive_buffer(self, count: int = 1) -> None:
        """Make ``count`` receive buffers available (paper: post two)."""
        self.posted_buffers += count

    def recv(self):
        """Process helper: ``msg = yield from port.recv()``.

        Host-side per-message receive costs are charged by the protocol
        actors (they differ between control acks and bulk data); the
        transport only accounts bytes.
        """
        ev = self.inbox.get()
        msg = yield ev
        self.stats.bytes_received += msg.size
        self.stats.messages_received += 1
        return msg

    # -- send side ------------------------------------------------------- #

    def send(self, dst: int, payload: Any, size: int, tag: str = "", control: bool = False):
        """Process helper: ``yield from port.send(...)``.

        Returns once the source NIC is free again (the message is in
        flight); delivery happens asynchronously.
        """
        msg = Message(
            src=self.node_id,
            dst=dst,
            payload=payload,
            size=size,
            tag=tag,
            send_time=self.net.sim.now,
            control=control,
        )
        params = self.net.params
        if params.per_message_overhead:
            yield Timeout(params.per_message_overhead)
        if params.copy_cost_per_byte:
            yield Timeout(params.copy_cost_per_byte * size)
        yield self._nic_tx.request()
        t0 = self.net.sim.now
        try:
            yield Timeout(size / params.bandwidth)
        finally:
            self._nic_tx.release()
        self.stats.send_busy_time += self.net.sim.now - t0
        self.stats.bytes_sent += size
        self.stats.messages_sent += 1
        self.net._launch_delivery(msg)


class GMNetwork:
    """The cluster fabric: a set of ports plus delivery processes."""

    def __init__(self, sim: Simulator, params: Optional[NetworkParams] = None):
        self.sim = sim
        self.params = params or NetworkParams()
        self.ports: Dict[int, GMPort] = {}
        self.flow_control_violations = 0

    def port(self, node_id: int) -> GMPort:
        if node_id not in self.ports:
            self.ports[node_id] = GMPort(self, node_id)
        return self.ports[node_id]

    def _launch_delivery(self, msg: Message) -> None:
        self.sim.process(self._deliver(msg), name=f"deliver:{msg.tag}")

    def _deliver(self, msg: Message):
        params = self.params
        yield Timeout(params.latency)
        dst = self.port(msg.dst)
        # Ejection DMA into host memory is serialized per NIC.
        yield dst._nic_rx.request()
        try:
            yield Timeout(msg.size / params.bandwidth)
        finally:
            dst._nic_rx.release()
        if not msg.control:
            if dst.posted_buffers <= 0:
                self.flow_control_violations += 1
                if params.strict:
                    raise FlowControlError(
                        f"message {msg.tag!r} from {msg.src} arrived at {msg.dst} "
                        "with no posted receive buffer"
                    )
            else:
                dst.posted_buffers -= 1
        msg.arrival_time = self.sim.now
        dst.inbox.put(msg)

    # -- reporting --------------------------------------------------------#

    def bandwidth_report(self, duration: float) -> Dict[int, tuple]:
        """Per-node (send MB/s, recv MB/s) over ``duration`` seconds."""
        out = {}
        for nid, port in sorted(self.ports.items()):
            out[nid] = (
                port.stats.bytes_sent / duration / 1e6,
                port.stats.bytes_received / duration / 1e6,
            )
        return out
