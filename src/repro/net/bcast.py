"""One-to-many broadcast channel: encode once, fan out to N receivers.

The cluster transport (:mod:`repro.net.channel`) is strictly unicast: the
root encodes and writes one copy of every wire-frame per peer, so sender
bytes and encode CPU grow linearly with wall size.  A real tiled wall
ships *one* stream to many receivers.  This module provides that channel:

- The sender encodes each record **exactly once** (header + payload into
  one byte string) and fans the same bytes out to every subscriber —
  either over UDP multicast (one ``sendto`` per datagram regardless of
  receiver count) or over per-subscriber stream sockets (the in-process /
  unix fallback that keeps tests and single-host runs deterministic;
  still a single encode, N zero-copy writes of the same buffer).
- Receivers filter records by **tile membership on receive**: each record
  header carries a 64-bit tile bitmap, and a receiver subscribed to tiles
  ``{2, 3}`` silently drops records whose bitmap does not intersect its
  mask.  The sender never builds per-receiver frames.
- Late joiners complete a **SUBSCRIBE handshake** over a control stream
  socket that returns the broadcast mode, the next sequence number, and —
  via an application callback — the next closed-GOP/I-picture index to
  tune in at.  Sticky records (the latest per kind, e.g. the sequence
  header) are replayed to the joiner before live fan-out resumes.
- UDP mode keeps a **sequence/NACK repair window**: receivers detect gaps
  from the record sequence numbers, NACK the missing range over the
  control socket, and the sender replays from a bounded ring.  Losses
  that fall outside the window come back as an explicit GAP notice so the
  receiver can re-tune instead of stalling.

Record wire format (little-endian), one record per frame::

    magic    u16   0x4D42 ("BM")
    kind     u8    application record kind
    flags    u8    RECORD_STICKY et al.
    seq      u32   broadcast sequence number (gap detection / repair)
    picture  i32   picture index (or -1 when not picture-scoped)
    tiles    u64   tile-membership bitmap (ALL_TILES = every receiver)
    length   u32   payload byte count

Control messages ride ordinary :class:`~repro.net.channel.Channel` frames
with types 40..46 — the control socket is private to this module, so the
numbering only needs to clear the transport-reserved ranges (HEARTBEAT=0,
reliable layer 250..255).
"""

from __future__ import annotations

import json
import select
import socket
import struct
import threading
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Optional, Tuple, Union

from repro.net.channel import (
    Address,
    Channel,
    ChannelClosed,
    ChannelError,
    ChannelTimeout,
    Listener,
    connect,
)

RECORD_MAGIC = 0x4D42  # "BM" — broadcast message
RECORD_FMT = "<HBBIiQI"
RECORD_HEADER_SIZE = struct.calcsize(RECORD_FMT)

#: Record flag: the sender keeps the latest record of this kind and
#: replays it to late joiners during the SUBSCRIBE handshake.
RECORD_STICKY = 0x01

#: Tile bitmap meaning "every receiver" (64 tiles max per broadcast).
ALL_TILES = (1 << 64) - 1
MAX_TILES = 64

# Control-channel message types (private to the broadcast control socket).
BC_SUB = 40  # receiver -> sender: JSON {tiles, name}
BC_SUB_OK = 41  # sender -> receiver: JSON {mode, next_seq, start_at, ...}
BC_DATA = 42  # sender -> receiver: one encoded record (fan-out or repair)
BC_NACK = 43  # receiver -> sender: JSON {seqs: [missing...]}
BC_GAP = 44  # sender -> receiver: JSON {seqs} fell out of the repair window
BC_STAT = 45  # receiver -> sender: JSON receiver-side ledger report
BC_BYE = 46  # receiver -> sender: clean unsubscribe

# UDP datagram sub-header: seq u32, fragment index u16, fragment count u16.
DATAGRAM_FMT = "<IHH"
DATAGRAM_HEADER_SIZE = struct.calcsize(DATAGRAM_FMT)
#: Payload bytes per datagram; comfortably under the 64 KiB UDP limit and
#: large enough that a typical coded picture is a handful of fragments.
DATAGRAM_PAYLOAD = 60000

DEFAULT_GROUP = "239.77.7.7"


def tile_mask(tiles: Optional[Iterable[int]]) -> int:
    """Bitmap for a tile set; ``None`` means every tile."""
    if tiles is None:
        return ALL_TILES
    mask = 0
    for t in tiles:
        if not 0 <= t < MAX_TILES:
            raise ValueError(f"tile id {t} outside broadcast bitmap range")
        mask |= 1 << t
    return mask


@dataclass(frozen=True)
class BroadcastRecord:
    """One decoded broadcast record."""

    kind: int
    seq: int
    picture: int
    tiles: int
    flags: int
    payload: bytes

    @property
    def sticky(self) -> bool:
        return bool(self.flags & RECORD_STICKY)


@dataclass(frozen=True)
class GapNotice:
    """Delivered in-band when records were lost beyond repair.

    ``seqs`` is the list of sequence numbers that will never arrive; the
    application re-tunes (next anchor picture) instead of stalling.
    """

    seqs: Tuple[int, ...]


def encode_record(
    kind: int,
    payload: Union[bytes, bytearray, memoryview],
    seq: int,
    picture: int = -1,
    tiles: int = ALL_TILES,
    flags: int = 0,
) -> bytes:
    """Encode one record to its full wire bytes (the single encode)."""
    header = struct.pack(
        RECORD_FMT, RECORD_MAGIC, kind, flags, seq, picture, tiles, len(payload)
    )
    return header + bytes(payload)


def decode_record(data: Union[bytes, memoryview]) -> BroadcastRecord:
    magic, kind, flags, seq, picture, tiles, length = struct.unpack_from(
        RECORD_FMT, data
    )
    if magic != RECORD_MAGIC:
        raise ChannelError(f"bad broadcast record magic {magic:#x}")
    payload = bytes(data[RECORD_HEADER_SIZE : RECORD_HEADER_SIZE + length])
    if len(payload) != length:
        raise ChannelError(
            f"truncated broadcast record: {len(payload)} of {length} bytes"
        )
    return BroadcastRecord(
        kind=kind, seq=seq, picture=picture, tiles=tiles, flags=flags, payload=payload
    )


def multicast_available(group: str = DEFAULT_GROUP) -> bool:
    """Probe whether UDP multicast loopback works in this environment."""
    try:
        rx = socket.socket(socket.AF_INET, socket.SOCK_DGRAM)
        tx = socket.socket(socket.AF_INET, socket.SOCK_DGRAM)
        try:
            rx.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
            rx.bind(("", 0))
            port = rx.getsockname()[1]
            mreq = socket.inet_aton(group) + socket.inet_aton("127.0.0.1")
            rx.setsockopt(socket.IPPROTO_IP, socket.IP_ADD_MEMBERSHIP, mreq)
            tx.setsockopt(socket.IPPROTO_IP, socket.IP_MULTICAST_LOOP, 1)
            tx.setsockopt(
                socket.IPPROTO_IP,
                socket.IP_MULTICAST_IF,
                socket.inet_aton("127.0.0.1"),
            )
            tx.sendto(b"probe", (group, port))
            rx.settimeout(0.5)
            data, _ = rx.recvfrom(32)
            return data == b"probe"
        finally:
            rx.close()
            tx.close()
    except OSError:
        return False


@dataclass
class SenderStats:
    """Sender-side ledger: the 'one encode, N receivers' evidence."""

    records: int = 0
    encodes: int = 0
    payload_bytes: int = 0
    encoded_bytes: int = 0
    fanout_sends: int = 0
    fanout_bytes: int = 0
    datagrams: int = 0
    repairs: int = 0
    gaps: int = 0
    detached: int = 0

    def to_dict(self) -> Dict[str, int]:
        return dict(self.__dict__)


class _Subscriber:
    def __init__(self, channel: Channel, mask: int, name: str):
        self.channel = channel
        self.mask = mask
        self.name = name
        self.alive = True
        self.last_report: Dict[str, object] = {}
        self.report_time = 0.0


class BroadcastSender:
    """Publish records once; fan out to every subscriber.

    ``mode`` selects the data path: ``"stream"`` writes the encoded record
    to every subscriber's control channel (deterministic, lossless —
    tests and unix single-host runs), ``"udp"`` sends fragmented datagrams
    to a multicast group (one send per datagram regardless of N) and uses
    the control channels only for handshake/NACK/repair traffic.

    ``anchor_fn`` is called during each SUBSCRIBE handshake and must
    return the picture index the joiner should tune in at (the next
    closed-GOP/I-picture), or ``None`` when no further anchor exists.

    ``loss_fn(seq, frag)`` is a test hook: return True to drop that
    datagram on the floor instead of sending it (exercises NACK repair).
    """

    def __init__(
        self,
        control: Address,
        mode: str = "stream",
        group: str = DEFAULT_GROUP,
        port: int = 0,
        iface: str = "127.0.0.1",
        ttl: int = 0,
        repair_window: int = 512,
        meta: Optional[Dict[str, object]] = None,
        anchor_fn: Optional[Callable[[], Optional[int]]] = None,
        loss_fn: Optional[Callable[[int, int], bool]] = None,
        name: str = "bcast",
    ):
        if mode not in ("stream", "udp"):
            raise ValueError(f"unknown broadcast mode {mode!r}")
        self.mode = mode
        self.group = group
        self.iface = iface
        self.name = name
        self.meta = dict(meta or {})
        self.anchor_fn = anchor_fn
        self.loss_fn = loss_fn
        self.repair_window = repair_window
        self.stats = SenderStats()
        self.epoch = time.time()
        self._lock = threading.RLock()
        self._seq = 0
        self._ring: Dict[int, bytes] = {}
        self._ring_order: List[int] = []
        self._sticky: Dict[int, bytes] = {}
        self._subs: List[_Subscriber] = []
        # Last BC_STAT per receiver name, retained after detach so final
        # summaries survive the subscriber's disconnect.
        self._reports: Dict[str, Dict] = {}
        self._report_times: Dict[str, float] = {}
        self._closed = False
        self._listener = Listener(control)
        self.control_address: Address = self._listener.address
        self._tx: Optional[socket.socket] = None
        if mode == "udp":
            if port == 0:
                probe = socket.socket(socket.AF_INET, socket.SOCK_DGRAM)
                probe.bind(("", 0))
                port = probe.getsockname()[1]
                probe.close()
            self.port = port
            self._tx = socket.socket(socket.AF_INET, socket.SOCK_DGRAM)
            self._tx.setsockopt(socket.IPPROTO_IP, socket.IP_MULTICAST_LOOP, 1)
            self._tx.setsockopt(socket.IPPROTO_IP, socket.IP_MULTICAST_TTL, ttl)
            self._tx.setsockopt(
                socket.IPPROTO_IP,
                socket.IP_MULTICAST_IF,
                socket.inet_aton(iface),
            )
        else:
            self.port = 0
        self._accept_thread = threading.Thread(
            target=self._accept_loop, name=f"{name}:accept", daemon=True
        )
        self._accept_thread.start()

    # ---------------------------- subscription ----------------------------- #

    def _accept_loop(self) -> None:
        while not self._closed:
            try:
                ch = self._listener.accept(timeout=0.25, name=f"{self.name}:sub")
            except ChannelTimeout:
                continue
            except ChannelError:
                return
            t = threading.Thread(
                target=self._serve_subscriber, args=(ch,), daemon=True
            )
            t.start()

    def _serve_subscriber(self, ch: Channel) -> None:
        try:
            msg = ch.recv(timeout=10.0)
        except ChannelError:
            ch.close()
            return
        if msg.type != BC_SUB:
            ch.close()
            return
        try:
            req = json.loads(msg.payload.decode("utf-8"))
        except (ValueError, UnicodeDecodeError):
            ch.close()
            return
        mask = tile_mask(req.get("tiles"))
        sub = _Subscriber(ch, mask, str(req.get("name", "rx")))
        with self._lock:
            start_at = self.anchor_fn() if self.anchor_fn is not None else None
            reply = {
                "mode": self.mode,
                "group": self.group,
                "port": self.port,
                "iface": self.iface,
                "next_seq": self._seq,
                "start_at": start_at,
                "epoch": self.epoch,
                "meta": self.meta,
            }
            try:
                ch.send(BC_SUB_OK, json.dumps(reply).encode("utf-8"))
                # Sticky replay happens under the lock so no live publish
                # can interleave between replay and fan-out registration:
                # the joiner sees sticky records, then the live stream.
                for seq in sorted(
                    decode_record(rec).seq for rec in self._sticky.values()
                ):
                    ch.send(BC_DATA, self._ring.get(seq) or self._sticky_by_seq(seq))
            except ChannelError:
                ch.close()
                return
            self._subs.append(sub)
        self._control_loop(sub)

    def _sticky_by_seq(self, seq: int) -> bytes:
        for rec in self._sticky.values():
            if decode_record(rec).seq == seq:
                return rec
        raise KeyError(seq)

    def _control_loop(self, sub: _Subscriber) -> None:
        """Read NACK/STAT/BYE from one subscriber until it goes away."""
        while not self._closed and sub.alive:
            try:
                msg = sub.channel.recv(timeout=0.5)
            except ChannelTimeout:
                continue
            except ChannelError:
                break
            if msg.type == BC_NACK:
                try:
                    seqs = json.loads(msg.payload.decode("utf-8"))["seqs"]
                except (ValueError, KeyError, UnicodeDecodeError):
                    continue
                self._repair(sub, [int(s) for s in seqs])
            elif msg.type == BC_STAT:
                try:
                    sub.last_report = json.loads(msg.payload.decode("utf-8"))
                    sub.report_time = time.time()
                except (ValueError, UnicodeDecodeError):
                    pass
                else:
                    with self._lock:
                        self._reports[sub.name] = sub.last_report
                        self._report_times[sub.name] = sub.report_time
            elif msg.type == BC_BYE:
                break
        self._detach(sub)

    def _repair(self, sub: _Subscriber, seqs: List[int]) -> None:
        gone: List[int] = []
        with self._lock:
            for seq in seqs:
                rec = self._ring.get(seq)
                if rec is None:
                    gone.append(seq)
                    continue
                try:
                    sub.channel.send(BC_DATA, rec)
                    self.stats.repairs += 1
                except ChannelError:
                    self._detach_locked(sub)
                    return
            if gone:
                self.stats.gaps += len(gone)
                try:
                    sub.channel.send(
                        BC_GAP, json.dumps({"seqs": gone}).encode("utf-8")
                    )
                except ChannelError:
                    self._detach_locked(sub)

    def _detach(self, sub: _Subscriber) -> None:
        with self._lock:
            self._detach_locked(sub)

    def _detach_locked(self, sub: _Subscriber) -> None:
        if sub.alive:
            sub.alive = False
            self.stats.detached += 1
            if sub in self._subs:
                self._subs.remove(sub)
            sub.channel.close()

    # ------------------------------- publish -------------------------------- #

    def publish(
        self,
        kind: int,
        payload: Union[bytes, bytearray, memoryview],
        picture: int = -1,
        tiles: int = ALL_TILES,
        sticky: bool = False,
    ) -> int:
        """Encode once, fan out to all current subscribers; returns seq."""
        flags = RECORD_STICKY if sticky else 0
        with self._lock:
            if self._closed:
                raise ChannelClosed(f"{self.name}: sender closed")
            seq = self._seq
            self._seq += 1
            record = encode_record(kind, payload, seq, picture, tiles, flags)
            self.stats.records += 1
            self.stats.encodes += 1
            self.stats.payload_bytes += len(payload)
            self.stats.encoded_bytes += len(record)
            self._ring[seq] = record
            self._ring_order.append(seq)
            while len(self._ring_order) > self.repair_window:
                old = self._ring_order.pop(0)
                self._ring.pop(old, None)
            if sticky:
                self._sticky[kind] = record
            if self.mode == "udp":
                self._send_datagrams(seq, record)
            else:
                for sub in list(self._subs):
                    try:
                        sub.channel.send(BC_DATA, record)
                        self.stats.fanout_sends += 1
                        self.stats.fanout_bytes += len(record)
                    except ChannelError:
                        self._detach_locked(sub)
            return seq

    def _send_datagrams(self, seq: int, record: bytes) -> None:
        assert self._tx is not None
        view = memoryview(record)
        nfrags = max(1, (len(record) + DATAGRAM_PAYLOAD - 1) // DATAGRAM_PAYLOAD)
        for frag in range(nfrags):
            if self.loss_fn is not None and self.loss_fn(seq, frag):
                continue
            chunk = view[frag * DATAGRAM_PAYLOAD : (frag + 1) * DATAGRAM_PAYLOAD]
            head = struct.pack(DATAGRAM_FMT, seq, frag, nfrags)
            self._tx.sendto(head + bytes(chunk), (self.group, self.port))
            self.stats.datagrams += 1
            self.stats.fanout_sends += 1
            self.stats.fanout_bytes += DATAGRAM_HEADER_SIZE + len(chunk)

    # ------------------------------ inspection ------------------------------ #

    @property
    def subscriber_count(self) -> int:
        with self._lock:
            return len(self._subs)

    def receiver_reports(self) -> List[Dict[str, object]]:
        """Latest BC_STAT ledger per receiver (kept after disconnect)."""
        with self._lock:
            out = []
            for name in sorted(self._reports):
                rep = dict(self._reports[name])
                rep.setdefault("name", name)
                rep["age_s"] = round(time.time() - self._report_times[name], 3)
                out.append(rep)
            return out

    def wait_subscribers(self, n: int, timeout: float = 10.0) -> None:
        deadline = time.monotonic() + timeout
        while time.monotonic() < deadline:
            if self.subscriber_count >= n:
                return
            time.sleep(0.01)
        raise ChannelTimeout(
            f"{self.name}: {self.subscriber_count}/{n} subscribers after {timeout}s"
        )

    def close(self) -> None:
        with self._lock:
            if self._closed:
                return
            self._closed = True
            subs = list(self._subs)
            self._subs.clear()
        for sub in subs:
            sub.channel.close()
        self._listener.close()
        if self._tx is not None:
            self._tx.close()


@dataclass
class ReceiverStats:
    """Receiver-side ledger, reported back to the sender via BC_STAT."""

    received: int = 0
    received_bytes: int = 0
    filtered: int = 0
    repaired: int = 0
    lost: int = 0
    nacks: int = 0
    duplicates: int = 0

    def to_dict(self) -> Dict[str, int]:
        return dict(self.__dict__)


class BroadcastReceiver:
    """Subscribe to a broadcast and yield records in sequence order.

    ``recv`` returns :class:`BroadcastRecord` instances whose tile bitmap
    intersects this receiver's mask (others are counted and dropped), or a
    :class:`GapNotice` when records were lost beyond the repair window —
    the application's cue to re-tune at the next anchor.
    """

    def __init__(
        self,
        control: Address,
        tiles: Optional[Iterable[int]] = None,
        name: str = "rx",
        connect_timeout: float = 10.0,
        nack_delay: float = 0.05,
    ):
        self.name = name
        self.mask = tile_mask(tiles)
        self.stats = ReceiverStats()
        self.nack_delay = nack_delay
        self._control = connect(control, timeout=connect_timeout, name=f"bc:{name}")
        sub = {"tiles": None if self.mask == ALL_TILES else _mask_tiles(self.mask),
               "name": name}
        self._control.send(BC_SUB, json.dumps(sub).encode("utf-8"))
        ok = self._control.recv(timeout=connect_timeout)
        if ok.type != BC_SUB_OK:
            raise ChannelError(f"unexpected handshake reply type {ok.type}")
        hello = json.loads(ok.payload.decode("utf-8"))
        self.mode: str = hello["mode"]
        self.start_at: Optional[int] = hello.get("start_at")
        self.epoch: float = float(hello.get("epoch", 0.0))
        self.meta: Dict[str, object] = hello.get("meta", {})
        self._next = int(hello["next_seq"])
        self._ready: List[Union[BroadcastRecord, GapNotice]] = []
        self._pending: Dict[int, BroadcastRecord] = {}
        self._frags: Dict[int, List[Optional[bytes]]] = {}
        self._frag_t0: Dict[int, float] = {}
        self._nacked: Dict[int, float] = {}
        self._rx: Optional[socket.socket] = None
        if self.mode == "udp":
            self._rx = socket.socket(socket.AF_INET, socket.SOCK_DGRAM)
            self._rx.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
            try:
                # A multi-fragment picture burst can exceed the default
                # receive buffer; lost fragments are repairable but slow.
                self._rx.setsockopt(socket.SOL_SOCKET, socket.SO_RCVBUF, 1 << 22)
            except OSError:
                pass
            self._rx.bind(("", int(hello["port"])))
            mreq = socket.inet_aton(hello["group"]) + socket.inet_aton(
                hello.get("iface", "127.0.0.1")
            )
            self._rx.setsockopt(socket.IPPROTO_IP, socket.IP_ADD_MEMBERSHIP, mreq)
            self._rx.setblocking(False)
        self._closed = False

    # -------------------------------- recv ---------------------------------- #

    def recv(
        self, timeout: Optional[float] = None
    ) -> Optional[Union[BroadcastRecord, GapNotice]]:
        """Next in-order record passing the tile filter, or a GapNotice.

        Returns ``None`` on timeout (callers poll; a broadcast has no EOF
        at the transport level — the application layer defines an END
        record).
        """
        deadline = None if timeout is None else time.monotonic() + timeout
        while True:
            if self._ready:
                return self._ready.pop(0)
            if self._closed:
                raise ChannelClosed(f"{self.name}: receiver closed")
            remain = None
            if deadline is not None:
                remain = deadline - time.monotonic()
                if remain <= 0:
                    return None
            if self.mode == "udp":
                self._pump_udp(remain)
            else:
                self._pump_stream(remain)

    def _pump_stream(self, remain: Optional[float]) -> None:
        slice_s = 0.1 if remain is None else max(0.0, min(0.1, remain))
        try:
            msg = self._control.recv(timeout=slice_s)
        except ChannelTimeout:
            return
        self._on_control(msg)

    def _pump_udp(self, remain: Optional[float]) -> None:
        assert self._rx is not None
        self._renack()
        slice_s = 0.05 if remain is None else max(0.0, min(0.05, remain))
        socks = [self._rx, self._control.sock]
        try:
            readable, _, _ = select.select(socks, [], [], slice_s)
        except (OSError, ValueError) as exc:
            raise ChannelClosed(f"{self.name}: receive sockets gone: {exc}") from exc
        if self._rx in readable:
            try:
                while True:
                    data, _ = self._rx.recvfrom(65536)
                    self._on_datagram(data)
            except BlockingIOError:
                pass
        if self._control.sock in readable:
            # select() saw bytes on the raw socket; a small positive budget
            # lets Channel._fill actually read them (timeout=0 would raise
            # before the first recv call).
            try:
                msg = self._control.recv(timeout=0.2)
            except ChannelTimeout:
                return
            self._on_control(msg)

    def _on_control(self, msg) -> None:
        if msg.type == BC_DATA:
            self._admit(decode_record(msg.payload), repaired=self.mode == "udp")
        elif msg.type == BC_GAP:
            seqs = json.loads(msg.payload.decode("utf-8"))["seqs"]
            self._give_up([int(s) for s in seqs])

    def _on_datagram(self, data: bytes) -> None:
        if len(data) < DATAGRAM_HEADER_SIZE:
            return
        seq, frag, nfrags = struct.unpack_from(DATAGRAM_FMT, data)
        if seq < self._next and seq not in self._nacked:
            self.stats.duplicates += 1
            return
        chunk = data[DATAGRAM_HEADER_SIZE:]
        if nfrags == 1:
            self._admit(decode_record(chunk), repaired=seq in self._nacked)
            return
        if seq not in self._frags:
            self._frags[seq] = [None] * nfrags
            self._frag_t0[seq] = time.monotonic()
        slots = self._frags[seq]
        if frag >= len(slots) or slots[frag] is not None:
            self.stats.duplicates += 1
            return
        slots[frag] = chunk
        if all(s is not None for s in slots):
            del self._frags[seq]
            self._frag_t0.pop(seq, None)
            self._admit(
                decode_record(b"".join(slots)), repaired=seq in self._nacked
            )

    def _admit(self, rec: BroadcastRecord, repaired: bool = False) -> None:
        """Sequence-order release with tile filtering and gap NACKing."""
        self.stats.received += 1
        self.stats.received_bytes += RECORD_HEADER_SIZE + len(rec.payload)
        if repaired and rec.seq in self._nacked:
            self._nacked.pop(rec.seq, None)
            self._frags.pop(rec.seq, None)
            self._frag_t0.pop(rec.seq, None)
            self.stats.repaired += 1
        if rec.seq < self._next:
            # Sticky catch-up replayed during the handshake: deliver
            # immediately, it predates our live window by design.
            if rec.sticky:
                self._release(rec)
            else:
                self.stats.duplicates += 1
            return
        self._pending[rec.seq] = rec
        self._drain_pending()

    def _drain_pending(self) -> None:
        while self._next in self._pending:
            rec = self._pending.pop(self._next)
            self._next += 1
            self._release(rec)
        if self._pending and self.mode == "udp":
            missing = [
                s
                for s in range(self._next, max(self._pending))
                if s not in self._pending and s not in self._nacked
            ]
            if missing:
                self._send_nack(missing)
        elif self._pending and self.mode == "stream":
            # A stream socket cannot reorder; a forward jump means the
            # sender resynced us past a gap (should not happen today).
            lo = self._next
            hi = min(self._pending)
            self._give_up(list(range(lo, hi)))

    def _release(self, rec: BroadcastRecord) -> None:
        if rec.tiles & self.mask:
            self._ready.append(rec)
        else:
            self.stats.filtered += 1

    def _send_nack(self, seqs: List[int]) -> None:
        now = time.monotonic()
        for s in seqs:
            self._nacked[s] = now
        try:
            self._control.send(BC_NACK, json.dumps({"seqs": seqs}).encode("utf-8"))
            self.stats.nacks += 1
        except ChannelError:
            pass

    def _renack(self) -> None:
        now = time.monotonic()
        # A reassembly that has been incomplete longer than the NACK delay
        # lost fragments; ask for the whole record over the control path.
        hung = [
            s
            for s, t in self._frag_t0.items()
            if now - t > self.nack_delay and s not in self._nacked and s >= self._next
        ]
        if hung:
            self._send_nack(hung)
        if not self._nacked:
            return
        stale = [s for s, t in self._nacked.items() if now - t > self.nack_delay * 4]
        if stale:
            for s in stale:
                self._nacked[s] = now
            try:
                self._control.send(
                    BC_NACK, json.dumps({"seqs": stale}).encode("utf-8")
                )
                self.stats.nacks += 1
            except ChannelError:
                pass

    def _give_up(self, seqs: List[int]) -> None:
        gone = []
        for s in seqs:
            if s >= self._next:
                gone.append(s)
            self._nacked.pop(s, None)
            self._frags.pop(s, None)
            self._frag_t0.pop(s, None)
        if not gone:
            return
        self.stats.lost += len(gone)
        self._ready.append(GapNotice(seqs=tuple(sorted(gone))))
        # Advance past the hole so buffered successors can release.
        self._next = max(self._next, max(gone) + 1)
        self._drain_pending()

    # ------------------------------- control -------------------------------- #

    def report(self, extra: Optional[Dict[str, object]] = None) -> None:
        """Ship the receiver ledger to the sender (BC_STAT)."""
        body: Dict[str, object] = {"name": self.name, **self.stats.to_dict()}
        if extra:
            body.update(extra)
        try:
            self._control.send(BC_STAT, json.dumps(body).encode("utf-8"))
        except ChannelError:
            pass

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        try:
            self._control.send(BC_BYE)
        except ChannelError:
            pass
        self._control.close()
        if self._rx is not None:
            self._rx.close()

    def __enter__(self) -> "BroadcastReceiver":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def _mask_tiles(mask: int) -> List[int]:
    return [t for t in range(MAX_TILES) if mask & (1 << t)]
