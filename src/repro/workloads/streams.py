"""Statistical models of the paper's 16 test streams (Table 4).

Each :class:`StreamSpec` captures what the experiments depend on:
resolution, bits-per-pixel (all non-DVD streams are ~0.3 bpp per §5.2; the
DVD clips are compressed at a higher rate), GOP structure, typical motion
magnitude, and — for the animation/Orion streams — the *localized detail*
distribution that §5.5 identifies as the cause of tile load imbalance.

The OCR of the paper available to this reproduction lost most numeric
table cells; resolutions below are reconstructed from the prose anchors
(720x480 DVD; fish-tank/FOX 720p HDTV; NBC/CBS 1080i; stream 12 = stream 4
at quadrupled resolution; Orion flybys up to the 3840x2800 / 38.9 fps /
~130 Mb/s-equivalent headline figure) and flagged in EXPERIMENTS.md.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.mpeg2.constants import MB_SIZE, PictureType
from repro.wall.layout import TileLayout


@dataclass(frozen=True)
class DetailProfile:
    """Spatial bit-allocation profile.

    ``concentration`` in [0, 1): fraction of bits drawn toward a Gaussian
    bump at ``center`` (fractions of frame size) with ``sigma_frac`` width.
    0 means uniform allocation.
    """

    center: Tuple[float, float] = (0.5, 0.5)
    sigma_frac: float = 0.2
    concentration: float = 0.0


@dataclass(frozen=True)
class StreamSpec:
    """One test stream of Table 4."""

    sid: int
    name: str
    width: int
    height: int
    fps: float
    bpp: float
    motion_pixels: float  # mean motion-vector magnitude, luma pixels
    detail: DetailProfile = field(default_factory=DetailProfile)
    n_frames: int = 240  # "Each sequence is trimmed to contain 240 frames"
    gop_size: int = 12
    b_frames: int = 2
    content: str = "pattern"  # synthetic generator family for scaled runs

    # ------------------------------------------------------------------ #
    # Table 4 columns
    # ------------------------------------------------------------------ #

    @property
    def n_pixels(self) -> int:
        return self.width * self.height

    @property
    def mb_width(self) -> int:
        return self.width // MB_SIZE

    @property
    def mb_height(self) -> int:
        return self.height // MB_SIZE

    @property
    def mbs_per_frame(self) -> int:
        return self.mb_width * self.mb_height

    @property
    def avg_frame_bytes(self) -> float:
        return self.n_pixels * self.bpp / 8.0

    @property
    def bit_rate_mbps(self) -> float:
        """Nominal bitstream rate at the native frame rate."""
        return self.n_pixels * self.bpp * self.fps / 1e6

    @property
    def demand_mpps(self) -> float:
        """Decode demand in megapixels/second — the admission controller's
        capacity currency (pixel throughput, not channel bits)."""
        return self.n_pixels * self.fps / 1e6

    # ------------------------------------------------------------------ #
    # wire round-trip (the service protocol ships specs, never pickles)
    # ------------------------------------------------------------------ #

    def to_dict(self) -> dict:
        d = {
            "sid": self.sid,
            "name": self.name,
            "width": self.width,
            "height": self.height,
            "fps": self.fps,
            "bpp": self.bpp,
            "motion_pixels": self.motion_pixels,
            "n_frames": self.n_frames,
            "gop_size": self.gop_size,
            "b_frames": self.b_frames,
            "content": self.content,
        }
        if self.detail.concentration > 0:
            d["detail"] = {
                "center": list(self.detail.center),
                "sigma_frac": self.detail.sigma_frac,
                "concentration": self.detail.concentration,
            }
        return d

    @classmethod
    def from_dict(cls, data: dict) -> "StreamSpec":
        d = dict(data)
        detail = d.pop("detail", None)
        if detail is not None:
            d["detail"] = DetailProfile(
                center=tuple(detail.get("center", (0.5, 0.5))),
                sigma_frac=detail.get("sigma_frac", 0.2),
                concentration=detail.get("concentration", 0.0),
            )
        return cls(**d)

    # ------------------------------------------------------------------ #
    # picture-type sequence and per-type sizes
    # ------------------------------------------------------------------ #

    # Relative coded sizes of I/P/B pictures, normalized below so the
    # average matches ``avg_frame_bytes``; ratios typical of MPEG-2 at
    # moderate quantization.
    _TYPE_WEIGHT = {PictureType.I: 3.0, PictureType.P: 1.4, PictureType.B: 0.55}

    def picture_types(self, n: Optional[int] = None) -> List[PictureType]:
        """Display-order picture types for ``n`` frames (default: all)."""
        n = n or self.n_frames
        m = self.b_frames + 1
        out = []
        for i in range(n):
            in_gop = i % self.gop_size
            if in_gop == 0:
                out.append(PictureType.I)
            elif in_gop % m == 0:
                out.append(PictureType.P)
            else:
                out.append(PictureType.B)
        return out

    def picture_bytes(self, ptype: PictureType, n: Optional[int] = None) -> float:
        types = self.picture_types(n)
        mean_w = sum(self._TYPE_WEIGHT[t] for t in types) / len(types)
        return self.avg_frame_bytes * self._TYPE_WEIGHT[ptype] / mean_w

    # ------------------------------------------------------------------ #
    # spatial bit distribution
    # ------------------------------------------------------------------ #

    def mb_bit_weights(self) -> np.ndarray:
        """(mb_height, mb_width) weights summing to 1: each macroblock's
        share of the picture's bits."""
        h, w = self.mb_height, self.mb_width
        uniform = np.full((h, w), 1.0 / (h * w))
        c = self.detail.concentration
        if c <= 0:
            return uniform
        ys = (np.arange(h) + 0.5) / h
        xs = (np.arange(w) + 0.5) / w
        cx, cy = self.detail.center
        s = self.detail.sigma_frac
        g = np.exp(
            -(((xs[None, :] - cx) ** 2) + ((ys[:, None] - cy) ** 2)) / (2 * s * s)
        )
        g /= g.sum()
        return (1 - c) * uniform + c * g

    def tile_workloads(self, layout: TileLayout) -> Dict[int, dict]:
        """Per-tile macroblock count and bits fraction (with overlap
        duplication — a macroblock under a projector overlap is counted for
        every tile that displays it, as in the real system)."""
        weights = self.mb_bit_weights()
        out: Dict[int, dict] = {}
        for tile in layout:
            r = tile.rect
            mx0 = r.x0 // MB_SIZE
            my0 = r.y0 // MB_SIZE
            mx1 = -(-r.x1 // MB_SIZE)
            my1 = -(-r.y1 // MB_SIZE)
            mx1 = min(mx1, self.mb_width)
            my1 = min(my1, self.mb_height)
            block = weights[my0:my1, mx0:mx1]
            out[tile.tid] = {
                "mbs": block.size,
                "mb_rows": my1 - my0,
                "bits_fraction": float(block.sum()),
            }
        return out

    # ------------------------------------------------------------------ #
    # scaling for functional runs
    # ------------------------------------------------------------------ #

    def scaled(self, max_width: int = 192) -> "StreamSpec":
        """A macroblock-aligned scaled-down spec for pixel-exact runs."""
        if self.width <= max_width:
            return self
        factor = self.width / max_width
        w = max(MB_SIZE, round(self.width / factor / MB_SIZE) * MB_SIZE)
        h = max(MB_SIZE, round(self.height / factor / MB_SIZE) * MB_SIZE)
        return StreamSpec(
            sid=self.sid,
            name=f"{self.name}@{w}x{h}",
            width=w,
            height=h,
            fps=self.fps,
            bpp=self.bpp,
            motion_pixels=max(1.0, self.motion_pixels * w / self.width),
            detail=self.detail,
            n_frames=self.n_frames,
            gop_size=self.gop_size,
            b_frames=self.b_frames,
            content=self.content,
        )

    def synthetic_frames(self, n_frames: int, max_width: int = 192):
        """Generate actual frames (scaled) matching this stream's profile."""
        from repro.workloads import synthetic

        spec = self.scaled(max_width)
        gen = synthetic.GENERATORS[spec.content]
        if spec.content == "detail":
            return gen(
                spec.width,
                spec.height,
                n_frames,
                center=self.detail.center,
                seed=self.sid,
            )
        return gen(spec.width, spec.height, n_frames, seed=self.sid)


# -------------------------------------------------------------------------- #
# Table 4 — the sixteen test streams
# -------------------------------------------------------------------------- #

_ORION_DETAIL = DetailProfile(center=(0.35, 0.45), sigma_frac=0.22, concentration=0.2)
_ANIM_DETAIL = DetailProfile(center=(0.5, 0.55), sigma_frac=0.3, concentration=0.3)

TABLE4_STREAMS: List[StreamSpec] = [
    # 1-3: DVD movie clips — higher bit rate than the 0.3 bpp family.
    StreamSpec(1, "spr", 720, 480, 24.0, 0.60, 9.0, content="pattern"),
    StreamSpec(2, "matrix", 720, 480, 24.0, 0.55, 11.0, content="pattern"),
    StreamSpec(3, "t2", 720, 480, 24.0, 0.58, 12.0, content="pattern"),
    # 4: short animation by Adam Finkelstein ("anim 1k").
    StreamSpec(4, "anim", 960, 704, 30.0, 0.30, 6.0, detail=_ANIM_DETAIL, content="detail"),
    # 5-8: Intel MRL fish-tank HDTV camera shots (720p family).
    StreamSpec(5, "fish1", 1280, 720, 30.0, 0.30, 5.0, content="fish"),
    StreamSpec(6, "fish2", 1280, 720, 30.0, 0.30, 6.0, content="fish"),
    StreamSpec(7, "fish3", 1280, 720, 30.0, 0.30, 7.0, content="fish"),
    StreamSpec(8, "fish4", 1280, 720, 60.0, 0.30, 6.0, content="fish"),
    # 9: FOX5 HDTV broadcast, 720p.
    StreamSpec(9, "fox", 1280, 720, 60.0, 0.30, 8.0, content="broadcast"),
    # 10-11: NBC4 / CBS3 1080i broadcasts (decoded as progressive frames).
    StreamSpec(10, "nbc", 1920, 1072, 30.0, 0.30, 8.0, content="broadcast"),
    StreamSpec(11, "cbs", 1920, 1072, 30.0, 0.30, 9.0, content="broadcast"),
    # 12: stream 4 rendered at quadrupled resolution.
    StreamSpec(12, "anim4", 1920, 1408, 30.0, 0.30, 8.0, detail=_ANIM_DETAIL, content="detail"),
    # 13-16: Orion Nebula fly-through (UCSD), up to near-IMAX.
    StreamSpec(13, "orion1", 2048, 1536, 30.0, 0.30, 9.0, detail=_ORION_DETAIL, content="detail"),
    StreamSpec(14, "orion2", 2560, 1920, 30.0, 0.30, 9.0, detail=_ORION_DETAIL, content="detail"),
    StreamSpec(15, "orion3", 3200, 2400, 30.0, 0.30, 10.0, detail=_ORION_DETAIL, content="detail"),
    StreamSpec(16, "orion4", 3840, 2800, 30.0, 0.30, 10.0, detail=_ORION_DETAIL, content="detail"),
]


def stream_by_id(sid: int) -> StreamSpec:
    for s in TABLE4_STREAMS:
        if s.sid == sid:
            return s
    raise KeyError(f"no stream {sid}")


def table4_rows() -> List[dict]:
    """The Table 4 report: resolution, average frame size, bits/pixel."""
    rows = []
    for s in TABLE4_STREAMS:
        rows.append(
            {
                "stream": s.sid,
                "name": s.name,
                "resolution": f"{s.width}x{s.height}",
                "avg_frame_bytes": round(s.avg_frame_bytes),
                "bpp": s.bpp,
                "bit_rate_mbps": round(s.bit_rate_mbps, 1),
            }
        )
    return rows
