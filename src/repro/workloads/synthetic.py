"""Synthetic video generators for the functional (pixel-exact) path.

Each generator returns macroblock-aligned 4:2:0 frames.  They are designed
to exercise the parallel decoder's interesting paths:

- global panning motion -> motion vectors crossing tile boundaries (MEI);
- flat regions -> skipped macroblocks, including runs crossing tiles;
- sharp moving objects -> intra refresh inside P/B pictures;
- localized detail -> the §5.5 bit-allocation imbalance between tiles.
"""

from __future__ import annotations

from typing import List

import numpy as np

from repro.mpeg2.frames import Frame


def _chroma_of(y: np.ndarray, base_cb: int = 118, base_cr: int = 138) -> tuple:
    """Derive mildly varying chroma planes from a luma plane."""
    sub = y[::2, ::2].astype(np.int32)
    cb = np.clip(base_cb + (sub - 128) // 6, 0, 255).astype(np.uint8)
    cr = np.clip(base_cr - (sub - 128) // 8, 0, 255).astype(np.uint8)
    return cb, cr


def moving_pattern_frames(
    width: int, height: int, n_frames: int, speed: int = 3, seed: int = 0
) -> List[Frame]:
    """A textured background panning at ``speed`` px/frame plus a bouncing
    bright block — the generic motion workload."""
    rng = np.random.default_rng(seed)
    # Periodic texture so panning wraps cleanly.
    base = (
        120
        + 60 * np.sin(2 * np.pi * np.arange(width * 2) / 37.0)[None, :]
        + 40 * np.cos(2 * np.pi * np.arange(height)[:, None] / 23.0)
    )
    base = np.clip(base + rng.normal(0, 4, (height, width * 2)), 16, 235)
    frames = []
    bx, by, vx, vy = width // 4, height // 3, 5, 3
    for t in range(n_frames):
        off = (t * speed) % width
        y = base[:, off : off + width].astype(np.uint8).copy()
        y[by : by + 16, bx : bx + 24] = 225
        bx += vx
        by += vy
        if bx < 0 or bx + 24 >= width:
            vx = -vx
            bx += 2 * vx
        if by < 0 or by + 16 >= height:
            vy = -vy
            by += 2 * vy
        cb, cr = _chroma_of(y)
        frames.append(Frame(y, cb, cr))
    return frames


def localized_detail_frames(
    width: int,
    height: int,
    n_frames: int,
    center: tuple = (0.3, 0.4),
    radius_frac: float = 0.22,
    seed: int = 0,
) -> List[Frame]:
    """Mostly flat frames with a busy, moving region — the Orion-flyby
    profile (paper §5.5): the encoder allocates most bits to one part of
    the screen, so one tile's decoder becomes the straggler."""
    rng = np.random.default_rng(seed)
    yy, xx = np.mgrid[0:height, 0:width]
    cx0, cy0 = center[0] * width, center[1] * height
    r = radius_frac * min(width, height)
    noise = rng.normal(0, 1, (height, width))
    frames = []
    for t in range(n_frames):
        cx = cx0 + 2.0 * t
        cy = cy0 + 1.0 * np.sin(t / 3.0) * r
        d2 = ((xx - cx) ** 2 + (yy - cy) ** 2) / (r * r)
        mask = np.exp(-d2)
        detail = 70 * np.sin(xx / 2.3 + t) * np.cos(yy / 2.9 - t / 2.0) + 25 * noise
        y = np.clip(40 + 10 * np.sin(yy / 40.0) + mask * (120 + detail), 16, 235)
        y = y.astype(np.uint8)
        cb, cr = _chroma_of(y)
        frames.append(Frame(y, cb, cr))
    return frames


def fish_tank_frames(
    width: int, height: int, n_frames: int, n_fish: int = 6, seed: int = 1
) -> List[Frame]:
    """Several bright objects drifting over a slowly waving background —
    the Intel MRL fish-tank profile (streams 5-8)."""
    rng = np.random.default_rng(seed)
    yy, xx = np.mgrid[0:height, 0:width]
    pos = rng.uniform(0, 1, (n_fish, 2)) * [width - 24, height - 12]
    vel = rng.uniform(-4, 4, (n_fish, 2))
    frames = []
    for t in range(n_frames):
        y = (90 + 25 * np.sin(xx / 31.0 + t / 5.0) * np.cos(yy / 19.0)).astype(
            np.float64
        )
        for i in range(n_fish):
            px, py = int(pos[i, 0]), int(pos[i, 1])
            y[py : py + 10, px : px + 20] = 200 + 10 * np.sin(t + i)
            pos[i] += vel[i]
            for axis, limit in ((0, width - 24), (1, height - 12)):
                if pos[i, axis] < 0 or pos[i, axis] > limit:
                    vel[i, axis] = -vel[i, axis]
                    pos[i, axis] = np.clip(pos[i, axis], 0, limit)
        y = np.clip(y, 16, 235).astype(np.uint8)
        cb, cr = _chroma_of(y)
        frames.append(Frame(y, cb, cr))
    return frames


def broadcast_frames(
    width: int, height: int, n_frames: int, ticker_rows: int = 0, seed: int = 2
) -> List[Frame]:
    """A broadcast-style frame: mostly static studio background, a
    talking-head region with small motion, and a scrolling lower-third
    ticker — the FOX/NBC/CBS profile (streams 9-11).

    The ticker band's constant horizontal motion produces a steady stripe
    of tile-boundary-crossing motion vectors across the bottom row of
    tiles; the static background produces long skipped-macroblock runs.
    """
    rng = np.random.default_rng(seed)
    ticker_rows = ticker_rows or max(16, height // 8)
    yy, xx = np.mgrid[0:height, 0:width]
    studio = (70 + 30 * np.sin(xx / 53.0) + 15 * np.cos(yy / 37.0)).astype(
        np.float64
    )
    # "text": a periodic high-contrast strip that scrolls
    strip = (
        128
        + 100 * np.sign(np.sin(2 * np.pi * np.arange(width * 2) / 24.0))
    ).astype(np.float64)
    hx, hy = width // 3, height // 4  # talking head box
    frames = []
    for t in range(n_frames):
        y = studio.copy()
        # talking head: slight bobbing motion
        oy = int(2 * np.sin(t / 2.0))
        y[hy + oy : hy + oy + height // 3, hx : hx + width // 4] = (
            150 + 20 * np.sin(yy[: height // 3, : width // 4] / 5.0 + t)
        )
        # scrolling ticker
        off = (4 * t) % width
        band = strip[off : off + width]
        y[-ticker_rows:, :] = band[None, :]
        y = np.clip(y + rng.normal(0, 1.5, y.shape), 16, 235).astype(np.uint8)
        cb, cr = _chroma_of(y)
        frames.append(Frame(y, cb, cr))
    return frames


GENERATORS = {
    "pattern": moving_pattern_frames,
    "detail": localized_detail_frames,
    "fish": fish_tank_frames,
    "broadcast": broadcast_frames,
}
