"""Workloads: synthetic video content and the paper's 16 test streams.

The paper's streams (Table 4) are copyrighted movie clips, HDTV camera
shots, and telescope-flyby renderings we cannot redistribute, so this
package provides both:

- :mod:`repro.workloads.synthetic` — pixel-level generators that produce
  actual :class:`~repro.mpeg2.frames.Frame` sequences with the properties
  that matter to the parallel decoder (global motion, localized detail,
  scene-complexity gradients), used by the functional/correctness path at
  scaled resolutions; and
- :mod:`repro.workloads.streams` — statistical models of the 16 streams
  (resolution, bit-per-pixel, GOP structure, motion magnitude, spatial
  detail distribution), used by the timed DES system at full resolution.
"""

from repro.workloads.streams import StreamSpec, TABLE4_STREAMS, stream_by_id
from repro.workloads.synthetic import (
    moving_pattern_frames,
    localized_detail_frames,
    fish_tank_frames,
)

__all__ = [
    "StreamSpec",
    "TABLE4_STREAMS",
    "stream_by_id",
    "moving_pattern_frames",
    "localized_detail_frames",
    "fish_tank_frames",
]
