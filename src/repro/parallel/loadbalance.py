"""Dynamic load balancing (paper future work, §6).

The paper balances workloads statically: partition lines sit at equal
pixel spacing, so for localized-detail streams (Orion flybys) the tile
holding the busy region becomes the straggler and gates the synchronized
frame rate (§5.5).  The proposed improvement is to "help the splitter
distribute work more evenly".

This module implements that extension: partition lines move (at macroblock
granularity) so the predicted per-tile decode cost is equalized along each
axis, using the same bit-distribution knowledge the splitter already has
from parsing.  The timed ablation benchmark compares static vs balanced
layouts on the Orion streams.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from repro.mpeg2.constants import MB_SIZE
from repro.parallel.partition import clamp_cell, equalize_pixel_bounds
from repro.perf.costmodel import CostModel
from repro.wall.layout import TileLayout
from repro.workloads.streams import StreamSpec


def _equalize_bounds(cum: np.ndarray, parts: int, total_cells: int) -> List[int]:
    """Place ``parts - 1`` interior boundaries so each part holds ~equal
    cumulative weight.  ``cum`` is the inclusive cumulative weight per cell
    row/column; returns pixel boundaries (macroblock aligned).

    Delegates to :func:`repro.parallel.partition.equalize_cells`, which
    guarantees strictly increasing bounds with >= 1 cell per part (and
    raises :class:`ValueError` when ``parts > total_cells``, instead of
    clamping into a zero-size tile).
    """
    cum = np.asarray(cum, dtype=float)
    if len(cum) != total_cells:
        raise ValueError(
            f"cumulative weights cover {len(cum)} cells, expected {total_cells}"
        )
    return equalize_pixel_bounds(np.diff(cum, prepend=0.0), parts)


def balanced_layout(
    spec: StreamSpec,
    m: int,
    n: int,
    overlap: int = 0,
    cost: Optional[CostModel] = None,
) -> TileLayout:
    """A layout whose partition lines equalize predicted per-tile cost.

    The predicted cost of a macroblock is ``decode_mb_fixed + display_mb +
    bits(mb) * decode_per_bit`` — the same model the timed system charges —
    so minimizing the maximum tile cost means equalizing column sums along
    x and row sums along y (a separable approximation of the 2-D balance
    problem; exact 2-D balanced grid partitioning is NP-hard).
    """
    cost = cost or CostModel()
    weights = spec.mb_bit_weights()
    bits = spec.avg_frame_bytes * 8
    per_mb_fixed = cost.decode_mb_fixed + cost.display_mb
    cell_cost = per_mb_fixed + weights * bits * cost.decode_per_bit

    col_cost = cell_cost.sum(axis=0)
    row_cost = cell_cost.sum(axis=1)
    x_bounds = _equalize_bounds(np.cumsum(col_cost), m, spec.mb_width)
    y_bounds = _equalize_bounds(np.cumsum(row_cost), n, spec.mb_height)
    return TileLayout(
        spec.width,
        spec.height,
        m,
        n,
        overlap=overlap,
        x_bounds=x_bounds,
        y_bounds=y_bounds,
    )


@dataclass
class AdaptiveWindow:
    """One adaptation step of the dynamic balancer."""

    window: int
    fps: float
    measured_imbalance: float  # max/mean per-tile decode time, observed
    x_bounds: List[int]
    y_bounds: List[int]


def adaptive_balance(
    spec: StreamSpec,
    m: int,
    n: int,
    k: int,
    windows: int = 4,
    frames_per_window: int = 18,
    cost: Optional[CostModel] = None,
    gain: float = 1.0,
) -> List[AdaptiveWindow]:
    """Dynamic load balancing (paper §6): adapt partition lines from
    *measured* per-tile decode times, window by window.

    Unlike :func:`balanced_layout` (which uses the stream model's bit map),
    this uses only what a real system observes — each decoder's work time
    over the last window — spreading a tile's measured cost uniformly over
    its macroblocks to build a cost field, then equalizing the column/row
    sums.  ``gain`` < 1 damps the boundary moves.
    """
    from repro.parallel.system import TimedSystem

    cost = cost or CostModel()
    layout = TileLayout(spec.width, spec.height, m, n)
    history: List[AdaptiveWindow] = []
    for w in range(windows):
        res = TimedSystem(
            spec, layout, k=k, cost=cost, n_frames=frames_per_window
        ).run()
        work = {tid: bd.work for tid, bd in res.breakdowns.items()}
        times = list(work.values())
        measured = max(times) / (sum(times) / len(times))
        history.append(
            AdaptiveWindow(
                window=w,
                fps=res.fps,
                measured_imbalance=measured,
                x_bounds=list(layout.x_bounds),
                y_bounds=list(layout.y_bounds),
            )
        )
        if w == windows - 1:
            break
        # Build a per-macroblock cost field from the measured tile costs.
        field_ = np.zeros((spec.mb_height, spec.mb_width))
        for tile in layout:
            p = tile.partition
            mx0, my0 = p.x0 // MB_SIZE, p.y0 // MB_SIZE
            mx1 = max(mx0 + 1, -(-p.x1 // MB_SIZE))
            my1 = max(my0 + 1, -(-p.y1 // MB_SIZE))
            cells = (my1 - my0) * (mx1 - mx0)
            field_[my0:my1, mx0:mx1] += work[tile.tid] / cells
        col = field_.sum(axis=0)
        row = field_.sum(axis=1)
        new_x = _equalize_bounds(np.cumsum(col), m, spec.mb_width)
        new_y = _equalize_bounds(np.cumsum(row), n, spec.mb_height)
        # Damped move toward the equalized bounds, macroblock-aligned.
        # Each boundary is clamped into its valid window (strictly after
        # the previous one, leaving >= 1 cell per remaining part) so a
        # chain of damped moves under concentrated weight can never push
        # an interior boundary to or past the raster edge.
        def blend(old: List[int], new: List[int]) -> List[int]:
            parts = len(old) - 1
            total_cells = old[-1] // MB_SIZE
            out = [old[0]]
            for j, (o, nw) in enumerate(zip(old[1:-1], new[1:-1]), start=1):
                moved = o + gain * (nw - o)
                cell = clamp_cell(
                    int(round(moved / MB_SIZE)), out[-1], parts - j, total_cells
                )
                out.append(cell * MB_SIZE)
            out.append(old[-1])
            return out

        layout = TileLayout(
            spec.width,
            spec.height,
            m,
            n,
            x_bounds=blend(layout.x_bounds, new_x),
            y_bounds=blend(layout.y_bounds, new_y),
        )
    return history


def imbalance(spec: StreamSpec, layout: TileLayout, cost: Optional[CostModel] = None) -> float:
    """Max/mean ratio of predicted per-tile decode cost (1.0 = perfect)."""
    cost = cost or CostModel()
    bits = spec.avg_frame_bytes * 8
    loads = spec.tile_workloads(layout)
    times = [
        cost.t_decode_mbs(w["mbs"], bits * w["bits_fraction"])
        for w in loads.values()
    ]
    return max(times) / (sum(times) / len(times))
