"""Per-tile decoder (paper §4.1, refined algorithm Table 3).

A tile decoder receives (MEI, SP) pairs in decode order.  For each picture
it first executes the MEI SEND instructions (reading previously decoded
reference frames), applies the received blocks into its local reference
copies, then decodes the sub-picture one macroblock at a time via the same
macroblock/reconstruction code paths as the sequential decoder.

No server thread and no blocking demand-fetch exist anywhere in this class
— the pre-calculated exchange is the paper's central decoder-side idea.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from repro.bitstream import BitReader, BitstreamError
from repro.mpeg2 import fast_vlc, vlc
from repro.mpeg2.batch_reconstruct import PlanBuilder, execute_plan
from repro.mpeg2.constants import PictureType
from repro.mpeg2.frames import Frame
from repro.mpeg2.macroblock import (
    CodingState,
    Macroblock,
    make_skipped,
    parse_macroblock_body,
)
from repro.mpeg2.plan_codec import TilePlan
from repro.mpeg2.reconstruct import QuantMatrices, reconstruct_macroblock
from repro.mpeg2.structures import SequenceHeader
from repro.perf.metrics import StageTimes
from repro.perf.telemetry import registry
from repro.parallel.mei import BWD, FWD, BlockXfer, MEIProgram
from repro.parallel.subpicture import RunRecord, SkipRecord, SubPicture
from repro.wall.layout import Tile, TileLayout


@dataclass
class PixelBlock:
    """Pixels of one MEI transfer in flight."""

    xfer: BlockXfer
    src: int
    dest: int
    y: Optional[np.ndarray]
    cb: Optional[np.ndarray]
    cr: Optional[np.ndarray]

    @property
    def nbytes(self) -> int:
        return self.xfer.payload_bytes


@dataclass
class TileDecoderStats:
    """Accounting for the runtime-breakdown and bandwidth figures."""

    macroblocks_decoded: int = 0
    macroblocks_skipped: int = 0
    pictures_decoded: int = 0
    serve_bytes: int = 0  # pixels sent to other decoders
    fetch_bytes: int = 0  # pixels received from other decoders
    subpicture_bytes: int = 0
    macroblocks_concealed: int = 0  # error-concealment substitutions
    records_failed: int = 0


class TileDecoder:
    """Decode the sub-pictures of one tile of the wall.

    ``conceal_errors=True`` turns record-level parse failures (corrupted
    sub-picture payloads) into concealment: the affected macroblocks are
    copied from the forward reference (or left neutral in an I picture)
    instead of aborting the wall — a frame-accurate glitch instead of a
    crash, as a production decoder behaves.
    """

    def __init__(
        self,
        tile: Tile,
        layout: TileLayout,
        sequence: SequenceHeader,
        conceal_errors: bool = False,
        batch_reconstruct: bool = True,
    ):
        self.tile = tile
        self.layout = layout
        self.sequence = sequence
        self.conceal_errors = conceal_errors
        self.batch_reconstruct = batch_reconstruct
        self.matrices = QuantMatrices.from_sequence(sequence)
        self.held: Optional[Frame] = None  # newest decoded anchor
        self.prev_anchor: Optional[Frame] = None
        self.stats = TileDecoderStats()
        self.stage_times = StageTimes()
        # per-picture decode latency distribution (p50/p95/p99 in the
        # periodic ``stats`` snapshots and the trace report)
        self.picture_hist = registry().histogram("decoder.picture_s")
        self._expected_picture = 0

    # ------------------------------------------------------------------ #
    # reference bookkeeping
    # ------------------------------------------------------------------ #

    def _ref_for_direction(self, direction: int, ptype: PictureType) -> Frame:
        """The reference frame a transfer direction denotes for ``ptype``."""
        if direction == FWD:
            ref = self.prev_anchor if ptype == PictureType.B else self.held
        elif direction == BWD:
            if ptype != PictureType.B:
                raise ValueError("backward reference outside a B picture")
            ref = self.held
        else:
            raise ValueError(f"bad direction {direction}")
        if ref is None:
            raise ValueError("reference frame not yet decoded")
        return ref

    # ------------------------------------------------------------------ #
    # MEI execution
    # ------------------------------------------------------------------ #

    def execute_sends(
        self, program: MEIProgram, ptype: PictureType
    ) -> List[PixelBlock]:
        """Run the SEND instructions: cut reference pixels for peers."""
        out: List[PixelBlock] = []
        for xfer, dest in program.sends:
            ref = self._ref_for_direction(xfer.direction, ptype)
            lr, cr_ = xfer.luma, xfer.chroma
            y = ref.y[lr.y0 : lr.y1, lr.x0 : lr.x1].copy() if lr.area else None
            cb = (
                ref.cb[cr_.y0 : cr_.y1, cr_.x0 : cr_.x1].copy() if cr_.area else None
            )
            cr = (
                ref.cr[cr_.y0 : cr_.y1, cr_.x0 : cr_.x1].copy() if cr_.area else None
            )
            block = PixelBlock(
                xfer=xfer, src=self.tile.tid, dest=dest, y=y, cb=cb, cr=cr
            )
            self.stats.serve_bytes += block.nbytes
            out.append(block)
        return out

    def apply_recv(self, block: PixelBlock, ptype: PictureType) -> None:
        """Write one received transfer into the local reference copy."""
        if block.dest != self.tile.tid:
            raise ValueError("transfer delivered to the wrong decoder")
        ref = self._ref_for_direction(block.xfer.direction, ptype)
        lr, cr_ = block.xfer.luma, block.xfer.chroma
        if block.y is not None:
            ref.y[lr.y0 : lr.y1, lr.x0 : lr.x1] = block.y
        if block.cb is not None:
            ref.cb[cr_.y0 : cr_.y1, cr_.x0 : cr_.x1] = block.cb
        if block.cr is not None:
            ref.cr[cr_.y0 : cr_.y1, cr_.x0 : cr_.x1] = block.cr
        self.stats.fetch_bytes += block.nbytes

    # ------------------------------------------------------------------ #
    # decoding
    # ------------------------------------------------------------------ #

    def _begin_picture(self, picture_index: int, tile: int, ptype: PictureType):
        """Shared ordering/reference checks; returns (frame, fwd, bwd)."""
        if tile != self.tile.tid:
            raise ValueError("sub-picture routed to the wrong tile")
        if picture_index != self._expected_picture:
            raise ValueError(
                f"picture {picture_index} arrived out of order at tile "
                f"{self.tile.tid} (expected {self._expected_picture})"
            )
        self._expected_picture += 1
        fwd = self.prev_anchor if ptype == PictureType.B else self.held
        bwd = self.held if ptype == PictureType.B else None
        if ptype != PictureType.I and fwd is None:
            raise ValueError("missing forward reference")
        if ptype == PictureType.B and bwd is None:
            raise ValueError("missing backward reference")
        frame = Frame.blank(self.sequence.width, self.sequence.height)
        return frame, fwd, bwd

    def _finish_picture(self, ptype: PictureType, frame: Frame) -> Optional[Frame]:
        """The usual anchor/B reorder: B frames display immediately, anchors
        release the previously held anchor."""
        self.stats.pictures_decoded += 1
        if ptype == PictureType.B:
            return frame
        ready = self.held
        self.prev_anchor = self.held
        self.held = frame
        return ready

    def decode_subpicture(self, sp: SubPicture) -> Optional[Frame]:
        """Decode one sub-picture; returns the next display-order frame for
        this tile, if one became ready (the usual anchor/B reorder)."""
        t0 = time.perf_counter()
        ptype = sp.picture_type
        frame, fwd, bwd = self._begin_picture(sp.picture_index, sp.tile, ptype)
        self.stats.subpicture_bytes += len(sp.serialize())

        header = sp.picture_header()
        mb_width = sp.mb_width
        if self.batch_reconstruct:
            self._decode_records_batched(sp, header, frame, fwd, bwd, mb_width)
        else:
            for rec in sp.records:
                try:
                    if isinstance(rec, RunRecord):
                        self._decode_run(rec, header, frame, fwd, bwd, mb_width)
                    elif isinstance(rec, SkipRecord):
                        self._decode_skip(rec, ptype, frame, fwd, bwd, mb_width)
                    else:  # pragma: no cover - defensive
                        raise TypeError(f"unknown record {type(rec)!r}")
                except (BitstreamError, ValueError):
                    if not self.conceal_errors:
                        raise
                    self.stats.records_failed += 1
                    if isinstance(rec, RunRecord):
                        addresses = range(
                            rec.sph.address, rec.sph.address + rec.n_total
                        )
                    else:
                        addresses = range(rec.address, rec.address + rec.count)
                    self._conceal(addresses, frame, fwd, mb_width)
        self.picture_hist.observe(time.perf_counter() - t0)
        return self._finish_picture(ptype, frame)

    def decode_plan(self, tp: TilePlan) -> Optional[Frame]:
        """Decode one splitter-compiled plan: no VLC work on this side —
        straight to the batched execute phase (plan shipping)."""
        t0 = time.perf_counter()
        ptype = tp.picture_type
        frame, fwd, bwd = self._begin_picture(tp.picture_index, tp.tile, ptype)
        self.stats.subpicture_bytes += tp.wire_bytes
        with self.stage_times.stage("execute"):
            execute_plan(tp.plan, frame, fwd, bwd)
        self.stats.macroblocks_decoded += tp.n_coded
        self.stats.macroblocks_skipped += tp.n_skipped
        self.picture_hist.observe(time.perf_counter() - t0)
        return self._finish_picture(ptype, frame)

    def flush(self) -> Optional[Frame]:
        """End of stream: the held anchor becomes displayable."""
        ready, self.held = self.held, None
        return ready

    def retile(self, tile: Tile, layout: TileLayout) -> None:
        """Swap tile geometry at a closed-GOP boundary (adaptive partition).

        Reference frames are full-raster (tile geometry only selects which
        macroblocks arrive and which crop ships to the collector), so this
        is a pure geometry change — no reference pixels move.  The caller
        guarantees the swap happens only where no motion vector crosses
        the cut: the first picture of a closed GOP.
        """
        if tile.tid != self.tile.tid:
            raise ValueError(
                f"retile changed the tile id ({self.tile.tid} -> {tile.tid})"
            )
        if layout.width != self.sequence.width or layout.height != self.sequence.height:
            raise ValueError("layout raster does not match the video raster")
        self.tile = tile
        self.layout = layout

    def _conceal(
        self, addresses, frame: Frame, fwd: Optional[Frame], mb_width: int
    ) -> None:
        """Temporal concealment: copy the co-located reference pixels."""
        for addr in addresses:
            mb_x, mb_y = addr % mb_width, addr // mb_width
            ys = slice(mb_y * 16, mb_y * 16 + 16)
            xs = slice(mb_x * 16, mb_x * 16 + 16)
            cys = slice(mb_y * 8, mb_y * 8 + 8)
            cxs = slice(mb_x * 8, mb_x * 8 + 8)
            if fwd is not None:
                frame.y[ys, xs] = fwd.y[ys, xs]
                frame.cb[cys, cxs] = fwd.cb[cys, cxs]
                frame.cr[cys, cxs] = fwd.cr[cys, cxs]
            self.stats.macroblocks_concealed += 1

    # ------------------------------------------------------------------ #
    # two-phase batched path (parse -> plan -> execute)
    # ------------------------------------------------------------------ #

    def _decode_records_batched(
        self,
        sp: SubPicture,
        header,
        frame: Frame,
        fwd: Optional[Frame],
        bwd: Optional[Frame],
        mb_width: int,
    ) -> None:
        """Phase 1: entropy-parse every record into the reconstruction plan
        (per-record, so concealment keeps its failure granularity);
        phase 2: one batched execute for the whole sub-picture."""
        ptype = header.picture_type
        timers = self.stage_times
        builder = PlanBuilder(
            ptype,
            mb_width,
            self.sequence.width,
            self.sequence.height,
            self.matrices,
            header.dc_scaler,
        )
        for rec in sp.records:
            try:
                if isinstance(rec, RunRecord):
                    with timers.stage("parse"):
                        mbs, n_skipped = self._parse_run(rec, header)
                elif isinstance(rec, SkipRecord):
                    mbs, n_skipped = self._expand_skip(rec), rec.count
                else:  # pragma: no cover - defensive
                    raise TypeError(f"unknown record {type(rec)!r}")
                with timers.stage("plan"):
                    builder.add_all(mbs)
            except (BitstreamError, ValueError):
                if not self.conceal_errors:
                    raise
                self.stats.records_failed += 1
                if isinstance(rec, RunRecord):
                    addresses = range(rec.sph.address, rec.sph.address + rec.n_total)
                else:
                    addresses = range(rec.address, rec.address + rec.count)
                self._conceal(addresses, frame, fwd, mb_width)
                continue
            self.stats.macroblocks_decoded += len(mbs) - n_skipped
            self.stats.macroblocks_skipped += n_skipped
        with timers.stage("execute"):
            execute_plan(builder.build(), frame, fwd, bwd)

    def _parse_run(self, rec: RunRecord, header) -> Tuple[List[Macroblock], int]:
        """Entropy-parse a partial slice into macroblocks (no pixels)."""
        br = BitReader(rec.payload, start_bit=rec.sph.skip_bits)
        state = CodingState(picture=header)
        state.restore(rec.sph.to_state_snapshot())

        mbs: List[Macroblock] = []
        n_skipped = 0
        mb = parse_macroblock_body(br, state)
        mb.address = rec.sph.address
        mbs.append(mb)
        decode_increment = (
            fast_vlc.decode_address_increment
            if fast_vlc.ENABLED
            else vlc.decode_address_increment
        )
        coded = 1
        cur = rec.sph.address
        while coded < rec.n_coded:
            inc = decode_increment(br)
            for skip_addr in range(cur + 1, cur + inc):
                mbs.append(make_skipped(skip_addr, state))
                n_skipped += 1
            mb = parse_macroblock_body(br, state)
            mb.address = cur + inc
            mbs.append(mb)
            coded += 1
            cur = mb.address
        used = br.pos - rec.sph.skip_bits
        if used != rec.nbits:
            raise BitstreamError(
                f"partial slice consumed {used} bits, header said {rec.nbits}"
            )
        return mbs, n_skipped

    def _expand_skip(self, rec: SkipRecord) -> List[Macroblock]:
        """Materialize a boundary-crossing skip run as macroblocks."""
        mbs: List[Macroblock] = []
        for i in range(rec.count):
            mb = Macroblock(address=rec.address + i, skipped=True)
            mb.motion_forward = rec.forward
            mb.motion_backward = rec.backward
            if rec.forward:
                mb.mv_fwd = rec.mv_fwd
            if rec.backward:
                mb.mv_bwd = rec.mv_bwd
            mbs.append(mb)
        return mbs

    # ------------------------------------------------------------------ #
    # per-macroblock reference path
    # ------------------------------------------------------------------ #

    def _decode_run(
        self,
        rec: RunRecord,
        header,
        frame: Frame,
        fwd: Optional[Frame],
        bwd: Optional[Frame],
        mb_width: int,
    ) -> None:
        ptype = header.picture_type
        br = BitReader(rec.payload, start_bit=rec.sph.skip_bits)
        state = CodingState(picture=header)
        state.restore(rec.sph.to_state_snapshot())

        dc_scaler = header.dc_scaler
        mb = parse_macroblock_body(br, state)
        mb.address = rec.sph.address
        reconstruct_macroblock(
            mb, ptype, frame, fwd, bwd, mb_width, self.matrices, dc_scaler
        )
        self.stats.macroblocks_decoded += 1
        coded = 1
        cur = rec.sph.address
        while coded < rec.n_coded:
            inc = vlc.decode_address_increment(br)
            for skip_addr in range(cur + 1, cur + inc):
                smb = make_skipped(skip_addr, state)
                reconstruct_macroblock(smb, ptype, frame, fwd, bwd, mb_width, self.matrices)
                self.stats.macroblocks_skipped += 1
            mb = parse_macroblock_body(br, state)
            mb.address = cur + inc
            reconstruct_macroblock(
                mb, ptype, frame, fwd, bwd, mb_width, self.matrices, dc_scaler
            )
            self.stats.macroblocks_decoded += 1
            coded += 1
            cur = mb.address
        used = br.pos - rec.sph.skip_bits
        if used != rec.nbits:
            raise BitstreamError(
                f"partial slice consumed {used} bits, header said {rec.nbits}"
            )

    def _decode_skip(
        self,
        rec: SkipRecord,
        ptype: PictureType,
        frame: Frame,
        fwd: Optional[Frame],
        bwd: Optional[Frame],
        mb_width: int,
    ) -> None:
        for i in range(rec.count):
            mb = Macroblock(address=rec.address + i, skipped=True)
            mb.motion_forward = rec.forward
            mb.motion_backward = rec.backward
            if rec.forward:
                mb.mv_fwd = rec.mv_fwd
            if rec.backward:
                mb.mv_bwd = rec.mv_bwd
            reconstruct_macroblock(mb, ptype, frame, fwd, bwd, mb_width, self.matrices)
            self.stats.macroblocks_skipped += 1
