"""Functional (pixel-exact) implementations of the coarse baselines (§3).

The analytic models in :mod:`repro.parallel.baselines` estimate throughput;
these classes actually *decode* with each scheme's work partitioning and
account the communication it would require on a display wall, so the
Table 1 comparison is backed by running code:

- :class:`GopParallelDecoder` — nodes take whole GOPs round-robin
  (Kwong et al. style).  Self-contained with closed GOPs, but every
  decoded pixel a node does not display must be redistributed.
- :class:`PictureParallelDecoder` — nodes take pictures round-robin;
  P/B pictures must fetch whole reference pictures from other nodes, and
  redistribution remains.
- :class:`SliceParallelDecoder` — nodes take horizontal bands of slices.
  Slices are self-contained syntax (no SPH needed — the reason the paper
  calls slice splitting "very low" cost); references crossing band edges
  and band-to-tile display mapping generate the traffic.

All three produce output bit-exact with the sequential decoder — a
correctness check on the accounting, and a demonstration that the paper's
comparison is about *cost*, not feasibility of decoding.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.mpeg2.constants import PictureType
from repro.mpeg2.decoder import reconstruct_picture
from repro.mpeg2.frames import Frame
from repro.mpeg2.parser import MacroblockParser, PictureScanner
from repro.mpeg2.motion import reference_rect, chroma_reference_rect
from repro.wall.layout import TileLayout

_YUV = 1.5  # bytes per pixel in 4:2:0


@dataclass
class BaselineAccounting:
    """Communication a scheme would generate, measured from real decodes."""

    frames: int = 0
    per_node_frames: Dict[int, int] = field(default_factory=dict)
    interdecoder_bytes: int = 0  # reference data between decoders
    redistribution_bytes: int = 0  # decoded pixels moved for display

    def per_frame(self) -> Tuple[float, float]:
        if not self.frames:
            return (0.0, 0.0)
        return (
            self.interdecoder_bytes / self.frames,
            self.redistribution_bytes / self.frames,
        )


class GopParallelDecoder:
    """GOP-level parallel decoding, functionally."""

    def __init__(
        self,
        n_nodes: int,
        layout: Optional[TileLayout] = None,
        batch_reconstruct: bool = True,
    ):
        if n_nodes < 1:
            raise ValueError("need at least one node")
        self.n_nodes = n_nodes
        self.layout = layout
        self.accounting = BaselineAccounting()
        self.batch_reconstruct = batch_reconstruct

    def decode(self, stream: bytes) -> List[Frame]:
        sequence, pictures = PictureScanner(stream).scan()
        parser = MacroblockParser(sequence)
        # group coded pictures into GOPs
        groups: List[List] = []
        for unit in pictures:
            if unit.new_gop or not groups:
                if not groups or groups[-1]:
                    groups.append([])
            groups[-1].append(unit)
        acct = BaselineAccounting(
            per_node_frames={n: 0 for n in range(self.n_nodes)}
        )

        out: List[Frame] = []
        for g_idx, group in enumerate(groups):
            node = g_idx % self.n_nodes
            if group[0].gop is not None and not group[0].gop.closed_gop:
                raise ValueError("GOP-level parallelism requires closed GOPs")
            # decode the GOP independently (closed: no external references)
            held: Optional[Frame] = None
            prev: Optional[Frame] = None
            for unit in group:
                parsed = parser.parse_picture(unit.data)
                ptype = parsed.header.picture_type
                if ptype == PictureType.B:
                    frame = reconstruct_picture(
                        parsed, sequence, prev, held, batch=self.batch_reconstruct
                    )
                    out.append(frame)
                else:
                    fwd = held if ptype == PictureType.P else None
                    frame = reconstruct_picture(
                        parsed, sequence, fwd, None, batch=self.batch_reconstruct
                    )
                    if held is not None:
                        out.append(held)
                    prev, held = held, frame
                acct.per_node_frames[node] += 1
            if held is not None:
                out.append(held)
        # redistribution: every frame leaves its producer except the tile
        # share the producer itself displays
        mn = self.layout.n_tiles if self.layout else self.n_nodes
        share = (mn - 1) / mn if mn > 1 else 0.0
        frame_bytes = int(sequence.width * sequence.height * _YUV)
        acct.frames = len(out)
        acct.redistribution_bytes = int(len(out) * frame_bytes * share)
        self.accounting = acct
        return out


class PictureParallelDecoder:
    """Picture-level parallel decoding, functionally."""

    def __init__(
        self,
        n_nodes: int,
        layout: Optional[TileLayout] = None,
        batch_reconstruct: bool = True,
    ):
        if n_nodes < 1:
            raise ValueError("need at least one node")
        self.n_nodes = n_nodes
        self.layout = layout
        self.accounting = BaselineAccounting()
        self.batch_reconstruct = batch_reconstruct

    def decode(self, stream: bytes) -> List[Frame]:
        sequence, pictures = PictureScanner(stream).scan()
        parser = MacroblockParser(sequence)
        acct = BaselineAccounting(
            per_node_frames={n: 0 for n in range(self.n_nodes)}
        )
        frame_bytes = int(sequence.width * sequence.height * _YUV)

        out: List[Frame] = []
        held: Optional[Frame] = None
        held_node: Optional[int] = None
        prev: Optional[Frame] = None
        prev_node: Optional[int] = None
        for i, unit in enumerate(pictures):
            node = i % self.n_nodes
            acct.per_node_frames[node] += 1
            parsed = parser.parse_picture(unit.data)
            ptype = parsed.header.picture_type
            # reference fetches: whole pictures from their producing nodes
            if ptype == PictureType.P and held_node is not None:
                if held_node != node:
                    acct.interdecoder_bytes += frame_bytes
            if ptype == PictureType.B:
                for rnode in (prev_node, held_node):
                    if rnode is not None and rnode != node:
                        acct.interdecoder_bytes += frame_bytes
            if ptype == PictureType.B:
                out.append(reconstruct_picture(
                    parsed, sequence, prev, held, batch=self.batch_reconstruct
                ))
            else:
                fwd = held if ptype == PictureType.P else None
                frame = reconstruct_picture(
                    parsed, sequence, fwd, None, batch=self.batch_reconstruct
                )
                if held is not None:
                    out.append(held)
                prev, prev_node = held, held_node
                held, held_node = frame, node
        if held is not None:
            out.append(held)

        mn = self.layout.n_tiles if self.layout else self.n_nodes
        share = (mn - 1) / mn if mn > 1 else 0.0
        acct.frames = len(out)
        acct.redistribution_bytes = int(len(out) * frame_bytes * share)
        self.accounting = acct
        return out


class SliceParallelDecoder:
    """Slice-level parallel decoding, functionally.

    Node b decodes the band of slice rows [bounds[b], bounds[b+1]).  A
    motion vector reaching outside the band fetches reference pixels from
    the band that owns them; for display, the (m-1)/m of each band's
    pixels shown by other columns of the wall redistribute.
    """

    def __init__(
        self,
        n_bands: int,
        layout: Optional[TileLayout] = None,
        batch_reconstruct: bool = True,
    ):
        if n_bands < 1:
            raise ValueError("need at least one band")
        self.n_bands = n_bands
        self.layout = layout
        self.accounting = BaselineAccounting()
        self.batch_reconstruct = batch_reconstruct

    def decode(self, stream: bytes) -> List[Frame]:
        sequence, pictures = PictureScanner(stream).scan()
        parser = MacroblockParser(sequence)
        mb_h = sequence.height // 16
        if self.n_bands > mb_h:
            raise ValueError("more bands than slice rows")
        bounds = [round(b * mb_h / self.n_bands) for b in range(self.n_bands + 1)]
        acct = BaselineAccounting(
            per_node_frames={n: 0 for n in range(self.n_bands)}
        )

        def band_of_row(row: int) -> int:
            for b in range(self.n_bands):
                if bounds[b] <= row < bounds[b + 1]:
                    return b
            raise ValueError(row)

        out: List[Frame] = []
        held: Optional[Frame] = None
        prev: Optional[Frame] = None
        for unit in pictures:
            parsed = parser.parse_picture(unit.data)
            ptype = parsed.header.picture_type
            fwd = (
                prev if ptype == PictureType.B
                else held if ptype == PictureType.P
                else None
            )
            bwd = held if ptype == PictureType.B else None
            # account cross-band reference fetches from real motion vectors
            for item in parsed.items:
                mb = item.mb
                row = item.slice_row
                band = band_of_row(row)
                y0 = bounds[band] * 16
                y1 = bounds[band + 1] * 16
                for mv in (mb.mv_fwd, mb.mv_bwd):
                    if mv is None or mv == (0, 0):
                        continue
                    mb_x = mb.address % parsed.mb_width
                    mb_y = mb.address // parsed.mb_width
                    r = reference_rect(mb_x, mb_y, mv)
                    above = max(0, y0 - r.y0) * r.width
                    below = max(0, r.y1 - y1) * r.width
                    cr_ = chroma_reference_rect(mb_x, mb_y, mv)
                    c_above = max(0, y0 // 2 - cr_.y0) * cr_.width
                    c_below = max(0, cr_.y1 - y1 // 2) * cr_.width
                    acct.interdecoder_bytes += above + below + 2 * (c_above + c_below)
            for b in range(self.n_bands):
                acct.per_node_frames[b] += 1
            frame = reconstruct_picture(
                parsed, sequence, fwd, bwd, batch=self.batch_reconstruct
            )
            if ptype == PictureType.B:
                out.append(frame)
            else:
                if held is not None:
                    out.append(held)
                prev, held = held, frame
        if held is not None:
            out.append(held)

        # display redistribution: bands are full-width, tiles are not
        m_cols = self.layout.m if self.layout else 1
        share = (m_cols - 1) / m_cols if m_cols > 1 else 0.0
        frame_bytes = int(sequence.width * sequence.height * _YUV)
        acct.frames = len(out)
        acct.redistribution_bytes = int(len(out) * frame_bytes * share)
        self.accounting = acct
        return out
