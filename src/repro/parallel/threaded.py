"""The 1-k-(m,n) pipeline on real OS threads.

The functional pipeline (:mod:`repro.parallel.pipeline`) drives the
components synchronously; the timed system runs them as simulated actors.
This module runs them as *actual concurrent threads* exchanging messages
through blocking queues, with the paper's full control flow:

- the root thread round-robins pictures to splitter threads, gated by
  ack credits (two receive slots per splitter);
- each splitter thread splits independently and waits for all decoder
  acks of the previous picture — redirected via ANID — before sending,
  which serializes sub-picture delivery without reorder queues;
- each tile-decoder thread executes its MEI SENDs, blocks on its RECVs
  (with a hold-back buffer for blocks of the next picture arriving early),
  decodes, and emits display-ready frames.

Output is bit-exact with the sequential decoder; the value of this runner
is demonstrating the protocol is deadlock-free and order-correct under
real preemptive scheduling, not just in the deterministic DES.

Shutdown: every blocking queue operation is a short poll against a shared
stop event, so the first failing worker poisons the whole pipeline — the
driver re-raises its exception and every thread drains promptly instead
of blocking on a queue nobody will ever service again.  (For the same
protocol across OS *processes*, see :mod:`repro.cluster.runtime`.)
"""

from __future__ import annotations

import queue
import threading
import time
from contextlib import nullcontext
from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, List, Optional

from repro.mpeg2 import plan_codec
from repro.mpeg2.constants import PictureType
from repro.mpeg2.frames import Frame
from repro.mpeg2.parser import PictureScanner
from repro.parallel.mb_splitter import MacroblockSplitter
from repro.parallel.partition import build_controller
from repro.parallel.pdecoder import TileDecoder
from repro.parallel.subpicture import SubPicture
from repro.wall.layout import TileLayout

if TYPE_CHECKING:  # runtime import would cycle through repro.perf.trace
    from repro.perf.trace import TraceWriter

#: Queue poll period; the granularity at which workers notice the stop event.
_POLL = 0.05


@dataclass
class _SPMessage:
    picture_index: int
    anid: int
    sp_bytes: bytes
    program: object  # MEIProgram
    expected_recvs: int


@dataclass
class _PlanMessage:
    """Plan-shipping counterpart of :class:`_SPMessage`.

    The plan travels through the queue in its wire encoding, exactly as it
    would cross a socket, so the threaded runner exercises the same codec
    path as the cluster runtime.
    """

    picture_index: int
    anid: int
    plan_bytes: bytes
    program: object  # MEIProgram
    expected_recvs: int


class _Cancelled(BaseException):
    """A worker was asked to stop because another worker failed."""


class ThreadedParallelDecoder:
    """Run the hierarchical decoder on ``1 + k + m*n`` threads."""

    def __init__(
        self,
        layout: TileLayout,
        k: int = 1,
        queue_depth: int = 2,
        batch_reconstruct: bool = True,
        ship_plans: bool = True,
        partition_policy: str = "static",
        partition_ewma: float = 0.5,
        tracer: Optional["TraceWriter"] = None,
    ):
        if k < 1:
            raise ValueError("need at least one second-level splitter")
        self.layout = layout
        self.k = k
        self.queue_depth = queue_depth
        self.batch_reconstruct = batch_reconstruct
        self.ship_plans = ship_plans
        # Runtime partition policy (repro.parallel.partition): the same
        # controller the cluster root runs, minus the wire protocol —
        # threads share the LayoutSchedule object directly, and the
        # queue handoffs provide the happens-before ordering the cluster
        # gets from per-channel FIFO.
        self.partition_policy = partition_policy
        self.partition_ewma = partition_ewma
        # Versioned updates the controller issued during the last decode()
        # (empty under the static policy) — the runner's observable record
        # that adaptation actually happened.
        self.partition_updates: List = []
        # Optional span telemetry: all worker threads share one writer
        # (emits are thread-safe); each thread gets its own ``tid`` track
        # in the timeline export via its thread name.
        self.tracer = tracer
        self.errors: List[BaseException] = []

    def _span(self, event: str, picture: int = -1, **data):
        if self.tracer is None:
            return nullcontext()
        return self.tracer.span(event, picture=picture, **data)

    def decode(self, stream: bytes, timeout: float = 60.0) -> List[Frame]:
        scanner = PictureScanner(stream)
        sequence, pictures = scanner.scan()
        n_pics = len(pictures)
        n_tiles = self.layout.n_tiles

        controller = build_controller(
            self.partition_policy, self.layout, ewma=self.partition_ewma
        )
        schedule = controller.schedule if controller is not None else None
        self.partition_updates = controller.updates if controller else []

        # queues -------------------------------------------------------- #
        pic_q = [queue.Queue(self.queue_depth) for _ in range(self.k)]
        sp_q = [queue.Queue() for _ in range(n_tiles)]
        blk_q = [queue.Queue() for _ in range(n_tiles)]
        # decoder acks, redirected by ANID: one queue per splitter
        ack_q = [queue.Queue() for _ in range(self.k)]
        out_q: "queue.Queue" = queue.Queue()
        errors = self.errors
        stop = threading.Event()

        def _get(q: "queue.Queue", what: str):
            """Blocking get that honors the stop event and the deadline."""
            deadline = time.monotonic() + timeout
            while True:
                if stop.is_set():
                    raise _Cancelled()
                try:
                    return q.get(timeout=_POLL)
                except queue.Empty:
                    if time.monotonic() >= deadline:
                        raise TimeoutError(
                            f"timed out after {timeout:.1f}s waiting for {what}"
                        )

        def _put(q: "queue.Queue", item, what: str):
            """Blocking put into a bounded queue, stop-aware as well."""
            deadline = time.monotonic() + timeout
            while True:
                if stop.is_set():
                    raise _Cancelled()
                try:
                    return q.put(item, timeout=_POLL)
                except queue.Full:
                    if time.monotonic() >= deadline:
                        raise TimeoutError(
                            f"timed out after {timeout:.1f}s putting {what}"
                        )

        def guard(fn):
            def run():
                try:
                    fn()
                except _Cancelled:
                    pass  # poisoned by the first failure; not a new error
                except BaseException as exc:  # propagate to the caller
                    errors.append(exc)
                    stop.set()
                    out_q.put(("error", exc))

            return run

        # root ----------------------------------------------------------- #
        def root():
            for i, unit in enumerate(pictures):
                if controller is not None:
                    # Repartition decision BEFORE dispatching picture i:
                    # the queue put below publishes the schedule change to
                    # every downstream thread (happens-before).
                    upd = controller.maybe_update(i, unit)
                    if upd is not None and self.tracer is not None:
                        self.tracer.emit(
                            "layout_update",
                            picture=i,
                            version=upd.version,
                            x_bounds=list(upd.x_bounds),
                            y_bounds=list(upd.y_bounds),
                        )
                a = i % self.k
                nsid = (a + 1) % self.k
                # bounded: blocks at depth `queue_depth` (the two-buffer
                # credit scheme), but wakes immediately on poisoning
                with self._span("dispatch", picture=i, splitter=a):
                    _put(pic_q[a], (i, nsid, unit), f"picture {i}")
            for a in range(self.k):
                _put(pic_q[a], None, "end of stream")

        # splitters ------------------------------------------------------ #
        def splitter(sid: int):
            msplit = MacroblockSplitter(
                sequence,
                self.layout,
                collect_content=self.partition_policy == "content",
            )
            while True:
                item = _get(pic_q[sid], "a picture from the root")
                if item is None:
                    return
                i, nsid, unit = item
                if schedule is not None:
                    lay = schedule.layout_for(i)
                    if lay is not msplit.layout:
                        msplit.set_layout(lay)
                with self._span("split", picture=i):
                    if self.ship_plans:
                        result = msplit.split_plans(unit, i)
                    else:
                        result = msplit.split(unit, i)
                if msplit.last_content is not None:
                    cols, rows = msplit.last_content
                    controller.observe_content(i, cols, rows)
                    msplit.last_content = None
                if i > 0:
                    # wait for every decoder's ack of picture i-1,
                    # redirected here via ANID
                    with self._span("ack_wait", picture=i - 1):
                        for _ in range(n_tiles):
                            pic_idx = _get(ack_q[sid], f"acks of picture {i - 1}")
                            if pic_idx != i - 1:
                                raise RuntimeError(
                                    f"splitter {sid}: ack for picture {pic_idx}, "
                                    f"expected {i - 1}"
                                )
                for tid in range(n_tiles):
                    prog = result.mei.program(tid)
                    expected = len(prog.recvs)
                    if self.ship_plans:
                        msg = _PlanMessage(
                            picture_index=i,
                            anid=nsid,
                            plan_bytes=plan_codec.encode_plan_bytes(
                                result.plans[tid]
                            ),
                            program=prog,
                            expected_recvs=expected,
                        )
                    else:
                        msg = _SPMessage(
                            picture_index=i,
                            anid=nsid,
                            sp_bytes=result.subpictures[tid].serialize(),
                            program=prog,
                            expected_recvs=expected,
                        )
                    sp_q[tid].put(msg)

        # decoders -------------------------------------------------------- #
        def decoder(tid: int):
            cur_layout = self.layout
            dec = TileDecoder(
                self.layout.tile(tid),
                self.layout,
                sequence,
                batch_reconstruct=self.batch_reconstruct,
            )
            partition = self.layout.tile(tid).partition
            # The crop a frame ships with is the partition in force when
            # it was decoded — the held anchor may outlive a repartition.
            held_partition = partition
            held_back: Dict[int, List] = {}
            for i in range(n_pics):
                msg = _get(sp_q[tid], f"sub-picture {i}")
                if msg.picture_index != i:
                    raise RuntimeError(
                        f"tile {tid}: picture {msg.picture_index} arrived, "
                        f"expected {i} (ordering broken)"
                    )
                if schedule is not None:
                    lay = schedule.layout_for(i)
                    if lay is not cur_layout:
                        cur_layout = lay
                        new_tile = lay.tile(tid)
                        dec.retile(new_tile, lay)
                        partition = new_tile.partition
                        if self.tracer is not None:
                            self.tracer.emit(
                                "repartition",
                                picture=i,
                                version=schedule.version_for(i),
                                rect=[
                                    partition.x0,
                                    partition.y0,
                                    partition.x1,
                                    partition.y1,
                                ],
                            )
                if isinstance(msg, _PlanMessage):
                    sp = None
                    tp, _ = plan_codec.decode_plan(msg.plan_bytes, dec.matrices)
                    ptype = tp.picture_type
                else:
                    sp = SubPicture.deserialize(msg.sp_bytes)
                    ptype = sp.picture_type
                # ack to the *next* splitter (ANID), releasing picture i+1
                ack_q[msg.anid].put(i)
                c0 = time.thread_time()
                # serve peers first (reads already-decoded local refs)
                for block in dec.execute_sends(msg.program, ptype):
                    blk_q[block.dest].put((i, block))
                serve_cpu = time.thread_time() - c0
                # collect expected blocks; hold back early arrivals
                with self._span("exchange_wait", picture=i):
                    pending = held_back.pop(i, [])
                    for block in pending:
                        dec.apply_recv(block, ptype)
                    got = len(pending)
                    while got < msg.expected_recvs:
                        pic_idx, block = _get(blk_q[tid], f"blocks of picture {i}")
                        if pic_idx == i:
                            dec.apply_recv(block, ptype)
                            got += 1
                        else:
                            held_back.setdefault(pic_idx, []).append(block)
                c0 = time.thread_time()
                with self._span("decode", picture=i):
                    ready = (
                        dec.decode_plan(tp) if sp is None else dec.decode_subpicture(sp)
                    )
                if self.partition_policy == "feedback":
                    # Thread CPU time, not wall time: with every tile
                    # sharing one GIL the wall span of each decode absorbs
                    # the other tiles' work and the telemetry flattens.
                    controller.observe_execute(
                        i, tid, serve_cpu + (time.thread_time() - c0)
                    )
                if ptype == PictureType.B:
                    out_part = partition
                else:
                    out_part = held_partition
                    held_partition = partition
                if ready is not None:
                    out_q.put(("frame", tid, ready, out_part))
            tail = dec.flush()
            if tail is not None:
                out_q.put(("frame", tid, tail, held_partition))

        threads = [threading.Thread(target=guard(root), name="root", daemon=True)]
        threads += [
            threading.Thread(
                target=guard(lambda s=s: splitter(s)), name=f"split{s}", daemon=True
            )
            for s in range(self.k)
        ]
        threads += [
            threading.Thread(
                target=guard(lambda t=t: decoder(t)), name=f"dec{t}", daemon=True
            )
            for t in range(n_tiles)
        ]
        for t in threads:
            t.start()

        # collect: every displayed picture produces one crop per tile,
        # stamped with the partition it was decoded under (the layout may
        # have changed between decode and display for held anchors)
        try:
            frames: List[Frame] = []
            buckets: Dict[int, Dict[int, tuple]] = {}
            display_counter = [0] * n_tiles
            collected = 0
            while collected < n_pics * n_tiles:
                kind, *payload = out_q.get(timeout=timeout)
                if kind == "error":
                    raise payload[0]
                tid, frame, part = payload
                idx = display_counter[tid]
                display_counter[tid] += 1
                buckets.setdefault(idx, {})[tid] = (frame, part)
                collected += 1
        finally:
            # Success or failure, poison and drain every worker: no thread
            # may outlive this call blocked on an unserviced queue.
            stop.set()
            deadline = time.monotonic() + timeout
            for t in threads:
                t.join(timeout=max(0.1, deadline - time.monotonic()))
        if self.errors:
            raise self.errors[0]

        for idx in sorted(buckets):
            out = Frame.blank(self.layout.width, self.layout.height)
            for tile_frame, p in buckets[idx].values():
                out.y[p.y0 : p.y1, p.x0 : p.x1] = tile_frame.y[
                    p.y0 : p.y1, p.x0 : p.x1
                ]
                out.cb[p.y0 // 2 : p.y1 // 2, p.x0 // 2 : p.x1 // 2] = tile_frame.cb[
                    p.y0 // 2 : p.y1 // 2, p.x0 // 2 : p.x1 // 2
                ]
                out.cr[p.y0 // 2 : p.y1 // 2, p.x0 // 2 : p.x1 // 2] = tile_frame.cr[
                    p.y0 // 2 : p.y1 // 2, p.x0 // 2 : p.x1 // 2
                ]
            frames.append(out)
        return frames
