"""Functional in-process 1-k-(m,n) pipeline — the correctness path.

This module wires the real components together without the network: root
splitter -> k macroblock splitters (round-robin) -> m*n tile decoders ->
wall assembly.  Sub-pictures are serialized and re-parsed through their
actual wire format, and MEI exchanges move real pixels, so everything the
timed DES system models is exercised here with bit-exact verification
against the sequential decoder.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.mpeg2.frames import Frame
from repro.parallel.mb_splitter import MacroblockSplitter, SplitResult
from repro.parallel.pdecoder import TileDecoder, TileDecoderStats
from repro.parallel.root_splitter import RootSplitter
from repro.parallel.subpicture import SubPicture
from repro.wall.display import assemble_wall, check_overlap_consistency
from repro.wall.layout import TileLayout


@dataclass
class PipelineStats:
    """Aggregated accounting from one parallel decode."""

    pictures: int = 0
    splitter_pictures: List[int] = field(default_factory=list)  # per splitter
    splitter_send_bytes: List[int] = field(default_factory=list)
    decoder_stats: Dict[int, TileDecoderStats] = field(default_factory=dict)
    exchange_bytes: int = 0
    exchange_count: int = 0
    subpicture_payload_bytes: int = 0
    subpicture_total_bytes: int = 0

    @property
    def sph_overhead_fraction(self) -> float:
        """Sub-picture bytes beyond copied payload, as a fraction."""
        if self.subpicture_payload_bytes == 0:
            return 0.0
        return (
            self.subpicture_total_bytes - self.subpicture_payload_bytes
        ) / self.subpicture_payload_bytes


class ParallelDecoder:
    """The 1-k-(m,n) hierarchical parallel decoder, run functionally.

    ``verify_overlaps=True`` additionally asserts that tiles sharing a
    projector-overlap region decoded identical pixels there.
    """

    def __init__(
        self,
        layout: TileLayout,
        k: int = 1,
        verify_overlaps: bool = False,
        conceal_errors: bool = False,
        batch_reconstruct: bool = True,
    ):
        self.layout = layout
        self.k = k
        self.verify_overlaps = verify_overlaps
        self.conceal_errors = conceal_errors
        self.batch_reconstruct = batch_reconstruct
        self.stats = PipelineStats()

    def decode(self, stream: bytes) -> List[Frame]:
        """Decode ``stream``; returns assembled wall frames, display order."""
        root = RootSplitter(stream, self.k)
        sequence = root.sequence
        splitters = [MacroblockSplitter(sequence, self.layout) for _ in range(self.k)]
        decoders = {
            tile.tid: TileDecoder(
                tile,
                self.layout,
                sequence,
                conceal_errors=self.conceal_errors,
                batch_reconstruct=self.batch_reconstruct,
            )
            for tile in self.layout
        }
        stats = PipelineStats(
            splitter_pictures=[0] * self.k,
            splitter_send_bytes=[0] * self.k,
        )
        self.stats = stats

        frames: List[Frame] = []
        for routed in root.route():
            result = splitters[routed.splitter].split(
                routed.unit, routed.picture_index
            )
            stats.pictures += 1
            stats.splitter_pictures[routed.splitter] += 1
            stats.splitter_send_bytes[routed.splitter] += result.total_send_bytes()
            self._account_subpictures(stats, result)
            ready = self._decode_picture(decoders, result)
            self._collect_frame(frames, ready)

        # End of stream: every decoder flushes its held anchor.
        tail = {tid: d.flush() for tid, d in decoders.items()}
        self._collect_frame(frames, tail)

        stats.decoder_stats = {tid: d.stats for tid, d in decoders.items()}
        self.stats = stats
        return frames

    # ------------------------------------------------------------------ #

    def _decode_picture(
        self, decoders: Dict[int, TileDecoder], result: SplitResult
    ) -> Dict[int, Optional[Frame]]:
        ptype = result.picture_type
        # Phase 1: everyone executes SENDs against already-decoded frames.
        blocks = []
        for tid, dec in decoders.items():
            blocks.extend(dec.execute_sends(result.mei.program(tid), ptype))
        # Phase 2: deliveries.
        for block in blocks:
            decoders[block.dest].apply_recv(block, ptype)
        self.stats.exchange_count += len(blocks)
        self.stats.exchange_bytes += sum(b.nbytes for b in blocks)
        # Phase 3: decode, passing sub-pictures through their wire format.
        ready: Dict[int, Optional[Frame]] = {}
        for tid, dec in decoders.items():
            sp = SubPicture.deserialize(result.subpictures[tid].serialize())
            ready[tid] = dec.decode_subpicture(sp)
        return ready

    def _collect_frame(
        self, frames: List[Frame], ready: Dict[int, Optional[Frame]]
    ) -> None:
        have = [f for f in ready.values() if f is not None]
        if not have:
            return
        if len(have) != len(ready):
            raise RuntimeError("tile decoders disagree on display readiness")
        if self.verify_overlaps:
            bad = check_overlap_consistency(self.layout, ready)  # type: ignore[arg-type]
            if bad:
                raise RuntimeError(f"{bad} overlap samples disagree between tiles")
        frames.append(assemble_wall(self.layout, ready))  # type: ignore[arg-type]

    def _account_subpictures(self, stats: PipelineStats, result: SplitResult) -> None:
        for sp in result.subpictures.values():
            stats.subpicture_payload_bytes += sp.payload_bytes
            stats.subpicture_total_bytes += len(sp.serialize())
