"""Baseline parallel-decoding schemes the paper compares against (§3).

These are throughput models of the coarse-granularity alternatives —
GOP-level (Kwong et al.), picture-level, and slice-level (Bilas et al.)
parallel decoders — mapped onto the *same* cluster/display-wall setting, so
the hierarchical decoder's advantage (no pixel redistribution, no splitter
bottleneck) is measured rather than asserted.

Each baseline reports the sustainable frame rate as the minimum over its
pipeline stages:

- split stage (per-picture splitter CPU),
- decode stage (per-node decode of its work share),
- network stage (inter-decoder communication + pixel redistribution
  through each node's NIC).

The functional correctness of coarse schemes is not at issue (they decode
whole pictures with a stock decoder), so a stage-throughput model is the
appropriate level of detail; the hierarchical system is the one with novel
protocol behaviour and gets the full DES treatment in
:mod:`repro.parallel.system`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.net.gm import NetworkParams
from repro.parallel.analysis import level_costs
from repro.perf.costmodel import CostModel
from repro.wall.layout import TileLayout
from repro.workloads.streams import StreamSpec


# Pixel redistribution cannot be zero-copy: decoded pixels live in strided
# frame buffers and must be gathered at the producer and scattered at the
# consumer.  ~250 MB/s effective memcpy on the paper's PIII workstations,
# paid once per end.
COPY_PER_BYTE = 4e-9
# Decoder workstation memory (§5.1: 256 MB RDRAM).
NODE_RAM_MB = 256.0
_YUV_BYTES = 1.5  # bytes per pixel, 4:2:0


@dataclass
class BaselineResult:
    scheme: str
    fps: float
    bound: str  # which stage limits: "split" | "decode" | "network" | "memory"
    split_fps: float
    decode_fps: float
    network_fps: float
    memory_required_mb: float = 0.0
    feasible: bool = True


def _stage_result(
    scheme: str,
    split_fps: float,
    decode_fps: float,
    network_fps: float,
    memory_required_mb: float = 0.0,
) -> BaselineResult:
    fps = min(split_fps, decode_fps, network_fps)
    bound = {split_fps: "split", decode_fps: "decode", network_fps: "network"}[fps]
    feasible = memory_required_mb <= NODE_RAM_MB
    if not feasible:
        fps, bound = 0.0, "memory"
    return BaselineResult(
        scheme=scheme,
        fps=fps,
        bound=bound,
        split_fps=split_fps,
        decode_fps=decode_fps,
        network_fps=network_fps,
        memory_required_mb=memory_required_mb,
        feasible=feasible,
    )


def _decode_time_full_picture(spec: StreamSpec, cost: CostModel) -> float:
    return cost.t_decode_mbs(spec.mbs_per_frame, spec.avg_frame_bytes * 8)


def gop_level(
    spec: StreamSpec,
    layout: TileLayout,
    cost: CostModel | None = None,
    net: NetworkParams | None = None,
) -> BaselineResult:
    """GOP-level parallelism: each node decodes every (mn)-th GOP entirely,
    then redistributes (mn-1)/mn of every picture's pixels for display.

    Memory: decoding a whole GOP takes ``mn`` GOP-durations of wall time,
    so a node buffers its decoded GOP while display drains it, plus its
    tile's share of the other in-flight GOPs — this is what makes the
    scheme physically impossible for ultra-high-resolution streams on the
    paper's 256 MB workstations (§3: "it is impossible for an SMP to
    display such videos even if it can decode them").
    """
    cost = cost or CostModel()
    net = net or NetworkParams()
    mn = layout.n_tiles
    costs = {c.level: c for c in level_costs(spec, layout, cost)}["gop"]
    split_fps = 1.0 / max(1e-12, costs.split_cpu_s / cost.root_speed)
    copy_s = 2 * COPY_PER_BYTE * costs.redistribution_bytes
    decode_fps = mn / (_decode_time_full_picture(spec, cost) + copy_s)
    per_node_bytes = costs.redistribution_bytes
    network_fps = (
        mn * net.bandwidth / per_node_bytes if per_node_bytes else float("inf")
    )
    frame_mb = spec.n_pixels * _YUV_BYTES / 1e6
    memory = (spec.gop_size + 3) * frame_mb + (
        mn * spec.gop_size * frame_mb / mn if mn > 1 else 0.0
    )
    return _stage_result("gop", split_fps, decode_fps, network_fps, memory)


def picture_level(
    spec: StreamSpec,
    layout: TileLayout,
    cost: CostModel | None = None,
    net: NetworkParams | None = None,
) -> BaselineResult:
    """Picture-level parallelism: pictures round-robin across nodes; every
    P/B picture fetches whole reference pictures remotely, and decoded
    pixels still redistribute for display."""
    cost = cost or CostModel()
    net = net or NetworkParams()
    mn = layout.n_tiles
    costs = {c.level: c for c in level_costs(spec, layout, cost)}["picture"]
    split_fps = 1.0 / max(1e-12, costs.split_cpu_s / cost.root_speed)
    traffic = costs.interdecoder_bytes + costs.redistribution_bytes
    copy_s = 2 * COPY_PER_BYTE * traffic
    decode_fps = mn / (_decode_time_full_picture(spec, cost) + copy_s)
    network_fps = mn * net.bandwidth / traffic if traffic else float("inf")
    frame_mb = spec.n_pixels * _YUV_BYTES / 1e6
    memory = 6 * frame_mb  # current + 2 fetched refs + display pipeline
    return _stage_result("picture", split_fps, decode_fps, network_fps, memory)


def slice_level(
    spec: StreamSpec,
    layout: TileLayout,
    cost: CostModel | None = None,
    net: NetworkParams | None = None,
) -> BaselineResult:
    """Slice-level parallelism: each node decodes a band of slice rows;
    boundary references cross bands and (m-1)/m of each band redistributes
    to the tiles that display it.  Every node holds only its band, so
    memory is never the constraint — communication is."""
    cost = cost or CostModel()
    net = net or NetworkParams()
    mn = layout.n_tiles
    costs = {c.level: c for c in level_costs(spec, layout, cost)}["slice"]
    split_fps = 1.0 / max(1e-12, costs.split_cpu_s / cost.root_speed)
    traffic = costs.interdecoder_bytes + costs.redistribution_bytes
    # Per picture each node decodes 1/mn of the work and copies its share
    # of the redistribution traffic.
    per_node_s = _decode_time_full_picture(spec, cost) / mn + (
        2 * COPY_PER_BYTE * traffic / mn
    )
    decode_fps = 1.0 / per_node_s
    network_fps = mn * net.bandwidth / traffic if traffic else float("inf")
    frame_mb = spec.n_pixels * _YUV_BYTES / 1e6
    memory = 4 * frame_mb / mn + 2 * frame_mb / mn
    return _stage_result("slice", split_fps, decode_fps, network_fps, memory)


def hierarchical(
    spec: StreamSpec,
    layout: TileLayout,
    k: int,
    cost: CostModel | None = None,
    net: NetworkParams | None = None,
) -> BaselineResult:
    """The paper's scheme through the same stage-throughput lens (the DES
    gives the detailed number; this keeps the comparison apples-to-apples)."""
    cost = cost or CostModel()
    net = net or NetworkParams()
    costs = {c.level: c for c in level_costs(spec, layout, cost)}["macroblock"]
    split_fps = max(1, k) / max(1e-12, costs.split_cpu_s)
    decode_fps = 1.0 / cost.t_d(spec, layout)
    per_picture = costs.interdecoder_bytes
    network_fps = (
        layout.n_tiles * net.bandwidth / per_picture
        if per_picture
        else float("inf")
    )
    frame_mb = spec.n_pixels * _YUV_BYTES / 1e6
    memory = 4 * frame_mb / layout.n_tiles
    return _stage_result("hierarchical", split_fps, decode_fps, network_fps, memory)


def compare_all(
    spec: StreamSpec,
    layout: TileLayout,
    k: int = 4,
    cost: CostModel | None = None,
    net: NetworkParams | None = None,
) -> List[BaselineResult]:
    return [
        gop_level(spec, layout, cost, net),
        picture_level(spec, layout, cost, net),
        slice_level(spec, layout, cost, net),
        hierarchical(spec, layout, k, cost, net),
    ]
