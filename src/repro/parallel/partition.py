"""Runtime tile-partition policies (paper §6 future work, closed loop).

The paper's splitter distributes work with a *fixed* m x n partition, so
localized-detail streams (Orion flybys, Table 4 streams 13-16) make the
tile holding the busy region the straggler that gates the synchronized
frame rate (§5.5).  This module turns the partition into a pluggable
runtime policy:

- :class:`StaticPolicy` — the paper's fixed equal-pixel grid.
- :class:`ContentAwarePolicy` — the splitter already VLC-parses every
  macroblock, so its coded size (bit extent) is a free load proxy;
  partition lines equalize an EWMA of the per-column/per-row coded bits.
- :class:`FeedbackPolicy` — decoders report per-picture busy time
  upstream; partition lines equalize an EWMA of observed per-tile cost
  spread uniformly over each tile's macroblocks (the same cost-field
  construction :func:`repro.parallel.loadbalance.adaptive_balance` uses
  offline).

Reference safety: boundaries move **only at closed-GOP boundaries**.  A
picture with ``new_gop`` and ``closed_gop`` starts a self-contained GOP —
no later picture (in decode order) references anything decoded before it,
so no motion vector ever crosses a repartition cut.  Tile decoders keep
*full-raster* reference frames (tile geometry only selects which
macroblocks arrive and which crop ships to the collector), so a swap is
a pure geometry change: no reference pixels are copied or lost, and the
output stays bit-identical to the static layout.

Every change is a versioned :class:`LayoutUpdate` carried on the existing
channel protocol (``MSG_LAYOUT``).  FIFO channel order gives the only
guarantee the protocol needs: the splitter that handles picture
``effective_from`` receives the update before that picture (root sends it
first on the same channel) and forwards it to each decoder before that
picture's plan (again, same channel) — so every process swaps layouts at
exactly the same picture index.
"""

from __future__ import annotations

import bisect
import struct
import threading
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.mpeg2.constants import MB_SIZE
from repro.wall.layout import TileLayout

POLICY_NAMES = ("static", "content", "feedback")


# --------------------------------------------------------------------- #
# boundary equalization (cell units)
# --------------------------------------------------------------------- #


def equalize_cells(weights: Sequence[float], parts: int) -> List[int]:
    """Cell-unit boundaries splitting ``weights`` into ``parts`` spans of
    roughly equal total weight.

    Guaranteed contract, for any non-negative (NaN/inf-tolerant) weight
    vector: returns ``parts + 1`` strictly increasing integers from ``0``
    to ``len(weights)`` — every part holds at least one cell.  Raises
    :class:`ValueError` when that is impossible (``parts > len(weights)``)
    instead of silently producing a zero-size part.
    """
    w = np.asarray(weights, dtype=float)
    n = int(w.size)
    if parts < 1:
        raise ValueError("need at least one part")
    if n < parts:
        raise ValueError(f"cannot split {n} cells into {parts} parts")
    w = np.where(np.isfinite(w) & (w > 0), w, 0.0)
    cum = np.cumsum(w)
    total = float(cum[-1]) if n else 0.0
    cuts = [0]
    for i in range(1, parts):
        if total > 0:
            cell = int(np.searchsorted(cum, total * i / parts, side="left")) + 1
        else:
            cell = round(n * i / parts)
        # Forward clamp: the previous part keeps >= 1 cell.  Backward
        # clamp: leave >= 1 cell for each remaining part.  Because
        # cuts[-1] <= n - (parts - i + 1), the lower clamp never exceeds
        # the upper one, so the result is strictly increasing.
        cell = max(cell, cuts[-1] + 1)
        cell = min(cell, n - (parts - i))
        cuts.append(cell)
    cuts.append(n)
    return cuts


def equalize_pixel_bounds(weights: Sequence[float], parts: int) -> List[int]:
    """:func:`equalize_cells` scaled to macroblock-aligned pixel bounds."""
    return [c * MB_SIZE for c in equalize_cells(weights, parts)]


def clamp_cell(cell: int, prev_bound_px: int, remaining_parts: int, total_cells: int) -> int:
    """Clamp one candidate cell boundary into the valid window: strictly
    after the previous boundary, leaving ``remaining_parts`` cells free."""
    lo = prev_bound_px // MB_SIZE + 1
    hi = total_cells - remaining_parts
    if lo > hi:
        raise ValueError(
            f"no valid boundary: previous bound at cell {lo - 1}, "
            f"{remaining_parts} parts need cells past {hi}"
        )
    return min(max(cell, lo), hi)


# --------------------------------------------------------------------- #
# versioned layout updates (wire format)
# --------------------------------------------------------------------- #

_UPD_HEAD = struct.Struct("<IIHH")  # version, effective_from, n_x, n_y
_UPD_U32 = struct.Struct("<I")


@dataclass(frozen=True)
class LayoutUpdate:
    """One versioned partition change, effective at a picture index.

    ``x_bounds``/``y_bounds`` are full pixel boundary lists (length
    ``m + 1`` / ``n + 1``) so an update is self-describing — a receiver
    validates it simply by constructing the :class:`TileLayout`.
    """

    version: int
    effective_from: int
    x_bounds: Tuple[int, ...]
    y_bounds: Tuple[int, ...]

    def encode(self) -> bytes:
        head = _UPD_HEAD.pack(
            self.version, self.effective_from, len(self.x_bounds), len(self.y_bounds)
        )
        body = struct.pack(
            f"<{len(self.x_bounds) + len(self.y_bounds)}I",
            *self.x_bounds,
            *self.y_bounds,
        )
        return head + body

    @classmethod
    def decode(cls, payload: bytes) -> "LayoutUpdate":
        version, eff, nx, ny = _UPD_HEAD.unpack_from(payload)
        need = _UPD_HEAD.size + (nx + ny) * _UPD_U32.size
        if len(payload) < need:
            raise ValueError(
                f"layout update truncated: {len(payload)} bytes, need {need}"
            )
        vals = struct.unpack_from(f"<{nx + ny}I", payload, _UPD_HEAD.size)
        return cls(version, eff, tuple(vals[:nx]), tuple(vals[nx:]))

    def make_layout(self, overlap: int = 0) -> TileLayout:
        """Materialize the layout (bounds span the raster by construction)."""
        return TileLayout(
            self.x_bounds[-1],
            self.y_bounds[-1],
            len(self.x_bounds) - 1,
            len(self.y_bounds) - 1,
            overlap=overlap,
            x_bounds=list(self.x_bounds),
            y_bounds=list(self.y_bounds),
        )


class LayoutSchedule:
    """Append-only, picture-indexed layout history (thread-safe).

    Every role keeps one: the root's controller appends updates as it
    issues them; splitters and decoders append as ``MSG_LAYOUT`` arrives.
    ``layout_for(i)`` answers "which layout governs picture i" — entries
    staged for a future ``effective_from`` do not leak backward, so an
    update may arrive arbitrarily early without racing the pictures still
    in flight under the old partition.
    """

    def __init__(self, base: TileLayout):
        self.base = base
        self._lock = threading.Lock()
        self._starts: List[int] = [0]
        self._layouts: List[TileLayout] = [base]
        self._versions: List[int] = [0]

    def apply(self, upd: LayoutUpdate) -> Optional[TileLayout]:
        """Stage one update; returns its layout, or None for a duplicate
        (the same version forwarded along several channel paths)."""
        with self._lock:
            if upd.version <= self._versions[-1]:
                return None
            if upd.effective_from < self._starts[-1]:
                raise ValueError(
                    f"layout v{upd.version} effective at {upd.effective_from}, "
                    f"before staged v{self._versions[-1]} at {self._starts[-1]}"
                )
            lay = TileLayout(
                self.base.width,
                self.base.height,
                self.base.m,
                self.base.n,
                overlap=self.base.overlap,
                x_bounds=list(upd.x_bounds),
                y_bounds=list(upd.y_bounds),
            )
            if upd.effective_from == self._starts[-1]:
                self._layouts[-1] = lay
                self._versions[-1] = upd.version
            else:
                self._starts.append(upd.effective_from)
                self._layouts.append(lay)
                self._versions.append(upd.version)
            return lay

    def layout_for(self, picture: int) -> TileLayout:
        with self._lock:
            j = bisect.bisect_right(self._starts, picture) - 1
            return self._layouts[max(j, 0)]

    def version_for(self, picture: int) -> int:
        with self._lock:
            j = bisect.bisect_right(self._starts, picture) - 1
            return self._versions[max(j, 0)]

    def current(self) -> TileLayout:
        with self._lock:
            return self._layouts[-1]

    @property
    def n_updates(self) -> int:
        with self._lock:
            return len(self._starts) - 1


# --------------------------------------------------------------------- #
# policies
# --------------------------------------------------------------------- #


class PartitionPolicy:
    """Base policy: observe telemetry, propose boundary moves.

    ``propose`` returns macroblock-aligned pixel boundary lists (or None
    to keep the current partition); the controller gates *when* a
    proposal may take effect (closed-GOP boundaries only).
    """

    name = "static"

    def __init__(self, mb_width: int, mb_height: int, m: int, n: int):
        if m > mb_width or n > mb_height:
            raise ValueError(
                f"{m}x{n} tiles need at least {m}x{n} macroblocks "
                f"(raster has {mb_width}x{mb_height})"
            )
        self.mb_width = mb_width
        self.mb_height = mb_height
        self.m = m
        self.n = n

    def observe_content(
        self, picture: int, col_bits: Sequence[float], row_bits: Sequence[float]
    ) -> None:
        pass

    def observe_execute(self, picture: int, tile: int, busy_s: float) -> None:
        pass

    def propose(
        self, current: TileLayout
    ) -> Optional[Tuple[List[int], List[int]]]:
        return None


class StaticPolicy(PartitionPolicy):
    """The paper's fixed grid — never proposes a move."""


class ContentAwarePolicy(PartitionPolicy):
    """Equalize an EWMA of per-macroblock-column/row coded bits.

    Coded size is a proxy for decode cost, but every macroblock also
    carries a fixed cost (IDCT, motion compensation) independent of its
    bits — ``uniform_floor`` adds that as a constant term scaled to the
    mean cell weight, which keeps sparse regions from collapsing to
    near-zero weight and overshooting the boundary moves.  The default
    (2.0) reflects this decoder's measured cost structure: per-macroblock
    fixed work dominates entropy-proportional work, so raw bit counts
    overstate the skew by roughly that factor.
    """

    name = "content"

    def __init__(
        self,
        mb_width: int,
        mb_height: int,
        m: int,
        n: int,
        ewma: float = 0.5,
        uniform_floor: float = 2.0,
    ):
        super().__init__(mb_width, mb_height, m, n)
        if not 0.0 < ewma <= 1.0:
            raise ValueError("ewma must be in (0, 1]")
        self.ewma = ewma
        self.uniform_floor = uniform_floor
        self._cols: Optional[np.ndarray] = None
        self._rows: Optional[np.ndarray] = None

    def observe_content(
        self, picture: int, col_bits: Sequence[float], row_bits: Sequence[float]
    ) -> None:
        cols = np.asarray(col_bits, dtype=float)
        rows = np.asarray(row_bits, dtype=float)
        if cols.size != self.mb_width or rows.size != self.mb_height:
            raise ValueError("content profile does not match the raster")
        a = self.ewma
        self._cols = cols if self._cols is None else a * cols + (1 - a) * self._cols
        self._rows = rows if self._rows is None else a * rows + (1 - a) * self._rows

    def propose(
        self, current: TileLayout
    ) -> Optional[Tuple[List[int], List[int]]]:
        if self._cols is None or self._rows is None:
            return None

        def weight(axis: np.ndarray) -> np.ndarray:
            mean = float(axis.mean())
            return axis + self.uniform_floor * (mean if mean > 0 else 1.0)

        return (
            equalize_pixel_bounds(weight(self._cols), self.m),
            equalize_pixel_bounds(weight(self._rows), self.n),
        )


class FeedbackPolicy(PartitionPolicy):
    """Equalize an EWMA of *observed* per-tile busy time.

    Each tile's smoothed cost is spread uniformly over the macroblocks
    its current partition owns, building a cost field whose column/row
    sums the equalizer re-splits — exactly the construction the offline
    :func:`~repro.parallel.loadbalance.adaptive_balance` ablation uses,
    now fed by live ``MSG_REPORT`` telemetry instead of a simulation.
    """

    name = "feedback"

    def __init__(
        self,
        mb_width: int,
        mb_height: int,
        m: int,
        n: int,
        ewma: float = 0.5,
    ):
        super().__init__(mb_width, mb_height, m, n)
        if not 0.0 < ewma <= 1.0:
            raise ValueError("ewma must be in (0, 1]")
        self.ewma = ewma
        self._busy: Dict[int, float] = {}

    def observe_execute(self, picture: int, tile: int, busy_s: float) -> None:
        prev = self._busy.get(tile)
        a = self.ewma
        self._busy[tile] = busy_s if prev is None else a * busy_s + (1 - a) * prev

    def propose(
        self, current: TileLayout
    ) -> Optional[Tuple[List[int], List[int]]]:
        if len(self._busy) < current.n_tiles:
            return None  # not every tile has reported yet
        field = np.zeros((self.mb_height, self.mb_width))
        for tile in current:
            p = tile.partition
            mx0, my0 = p.x0 // MB_SIZE, p.y0 // MB_SIZE
            mx1 = max(mx0 + 1, -(-p.x1 // MB_SIZE))
            my1 = max(my0 + 1, -(-p.y1 // MB_SIZE))
            cells = (my1 - my0) * (mx1 - mx0)
            field[my0:my1, mx0:mx1] += self._busy[tile.tid] / cells
        return (
            equalize_pixel_bounds(field.sum(axis=0), self.m),
            equalize_pixel_bounds(field.sum(axis=1), self.n),
        )


def make_policy(
    name: str, mb_width: int, mb_height: int, m: int, n: int, **kwargs
) -> PartitionPolicy:
    if name == "static":
        return StaticPolicy(mb_width, mb_height, m, n)
    if name == "content":
        return ContentAwarePolicy(mb_width, mb_height, m, n, **kwargs)
    if name == "feedback":
        return FeedbackPolicy(mb_width, mb_height, m, n, **kwargs)
    raise ValueError(f"unknown partition policy {name!r} (know {POLICY_NAMES})")


# --------------------------------------------------------------------- #
# controller
# --------------------------------------------------------------------- #


def is_repartition_point(unit) -> bool:
    """True when ``unit`` starts a closed GOP — the only picture where
    partition lines may move without a reference crossing the cut."""
    return bool(
        getattr(unit, "new_gop", False)
        and getattr(unit, "gop", None) is not None
        and unit.gop.closed_gop
    )


class PartitionController:
    """The root-side brain: ingest telemetry, issue versioned updates.

    Thread-safe: observations arrive from the credit-pump threads (one
    per splitter channel) while ``maybe_update`` runs on the dispatch
    loop.  The controller owns the version counter and the authoritative
    :class:`LayoutSchedule` for the run.
    """

    def __init__(self, policy: PartitionPolicy, schedule: LayoutSchedule):
        self.policy = policy
        self.schedule = schedule
        self._lock = threading.Lock()
        self._version = 0
        self.updates: List[LayoutUpdate] = []

    def observe_content(self, picture, col_bits, row_bits) -> None:
        with self._lock:
            self.policy.observe_content(picture, col_bits, row_bits)

    def observe_execute(self, picture, tile, busy_s) -> None:
        with self._lock:
            self.policy.observe_execute(picture, tile, busy_s)

    def ingest(self, rec: dict) -> None:
        """Dispatch one decoded ``MSG_REPORT`` record."""
        kind = rec.get("kind")
        if kind == "exec":
            self.observe_execute(rec["picture"], rec["tile"], rec["busy_s"])
        elif kind == "content":
            self.observe_content(rec["picture"], rec["cols"], rec["rows"])

    def maybe_update(self, picture: int, unit) -> Optional[LayoutUpdate]:
        """Issue an update effective at ``picture``, if the policy wants
        one and ``picture`` is a closed-GOP boundary (never picture 0 —
        the base layout is already in force there)."""
        if picture == 0 or not is_repartition_point(unit):
            return None
        with self._lock:
            current = self.schedule.current()
            proposal = self.policy.propose(current)
            if proposal is None:
                return None
            x_bounds, y_bounds = proposal
            if list(x_bounds) == list(current.x_bounds) and list(y_bounds) == list(
                current.y_bounds
            ):
                return None
            self._version += 1
            upd = LayoutUpdate(
                self._version, picture, tuple(x_bounds), tuple(y_bounds)
            )
            self.schedule.apply(upd)
            self.updates.append(upd)
            return upd


def build_controller(
    policy_name: str, base_layout: TileLayout, **policy_kwargs
) -> Optional[PartitionController]:
    """A controller for the named policy, or None for ``static`` (the
    static path carries zero adaptive overhead — no reports, no updates)."""
    if policy_name == "static":
        return None
    policy = make_policy(
        policy_name,
        base_layout.width // MB_SIZE,
        base_layout.height // MB_SIZE,
        base_layout.m,
        base_layout.n,
        **policy_kwargs,
    )
    return PartitionController(policy, LayoutSchedule(base_layout))


# --------------------------------------------------------------------- #
# content profile (splitter side)
# --------------------------------------------------------------------- #


def content_profile(parsed) -> Tuple[np.ndarray, np.ndarray]:
    """Per-macroblock-column and per-row coded-bit totals of one parsed
    picture — the splitter's free load proxy (it parsed the bits anyway).

    Skipped macroblocks carry no coded bits but still cost a motion-copy;
    they count as one bit so fully-skipped regions keep nonzero weight.
    """
    mbw, mbh = parsed.mb_width, parsed.mb_height
    items = parsed.items
    n = len(items)
    if n == 0:
        return np.zeros(mbw), np.zeros(mbh)
    addr = np.fromiter((it.mb.address for it in items), np.int64, n)
    bits = np.fromiter(
        (
            1 if it.mb.skipped else max(it.mb.bit_end - it.mb.bit_start, 1)
            for it in items
        ),
        np.int64,
        n,
    )
    cols = np.bincount(addr % mbw, weights=bits, minlength=mbw)[:mbw]
    rows = np.bincount(addr // mbw, weights=bits, minlength=mbh)[:mbh]
    return cols.astype(float), rows.astype(float)


__all__ = [
    "POLICY_NAMES",
    "LayoutUpdate",
    "LayoutSchedule",
    "PartitionPolicy",
    "StaticPolicy",
    "ContentAwarePolicy",
    "FeedbackPolicy",
    "PartitionController",
    "make_policy",
    "build_controller",
    "is_repartition_point",
    "content_profile",
    "equalize_cells",
    "equalize_pixel_bounds",
    "clamp_cell",
]
