"""Sub-picture streams: the unit of work a second-level splitter ships.

A sub-picture (paper §4.1) carries the macroblocks of one coded picture
that fall inside one tile's display rectangle.  It "does not necessarily
conform to MPEG-2 syntax": it is a sequence of records —

- **RunRecord** — a *partial slice*: a State Propagation Header followed by
  the original bitstream bytes of a contiguous run of macroblocks.  The
  bytes are copied whole (no bit-shifting); the SPH's ``skip_bits`` (0-7)
  says where the first macroblock's ``macroblock_type`` begins inside the
  first byte (paper §4.3, figure 4).  The payload starts at
  ``macroblock_type`` — the first macroblock's address comes from the SPH,
  so its address-increment VLC is *not* copied.  Subsequent macroblocks in
  the run keep their original increment VLCs; increments > 1 reproduce the
  original skipped macroblocks, whose predictor-state side effects replay
  exactly as in the original slice.
- **SkipRecord** — skipped macroblocks whose increment bits travel with a
  macroblock of *another* tile (a skip run crossing a tile boundary).  The
  record is self-contained: it carries the prediction mode and motion
  vectors a decoder needs to reconstruct them.

Both record types serialize to real bytes so the bandwidth experiments
(Figure 9) measure true message sizes, including the SPH overhead the paper
reports as ~20 % of splitter send bandwidth.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, field
from typing import List, Union

from repro.mpeg2.constants import PictureType
from repro.mpeg2.structures import PictureHeader

_MAGIC = 0x5350  # "SP"


@dataclass(frozen=True)
class SPH:
    """State Propagation Header (paper §4.3).

    Snapshot of the decoder-side prediction state immediately before the
    first macroblock of a partial slice: quantiser scale, DC predictors,
    motion-vector predictors, the previous macroblock's prediction mode
    (B-skip semantics), the absolute wall address of the first macroblock,
    and the 0-7 bit skip into the first payload byte.
    """

    address: int
    qscale_code: int
    dc_pred: tuple  # (y, cb, cr)
    pmv: tuple  # ((fh, fv), (bh, bv))
    prev_forward: bool
    prev_backward: bool
    skip_bits: int

    _FMT = "<IB3h4hBB"

    def pack(self) -> bytes:
        flags = (1 if self.prev_forward else 0) | (2 if self.prev_backward else 0)
        return struct.pack(
            self._FMT,
            self.address,
            self.qscale_code,
            *self.dc_pred,
            self.pmv[0][0],
            self.pmv[0][1],
            self.pmv[1][0],
            self.pmv[1][1],
            flags,
            self.skip_bits,
        )

    @classmethod
    def unpack(cls, data: bytes, off: int) -> tuple["SPH", int]:
        size = struct.calcsize(cls._FMT)
        vals = struct.unpack_from(cls._FMT, data, off)
        addr, q, d0, d1, d2, p00, p01, p10, p11, flags, skip = vals
        return (
            cls(
                address=addr,
                qscale_code=q,
                dc_pred=(d0, d1, d2),
                pmv=((p00, p01), (p10, p11)),
                prev_forward=bool(flags & 1),
                prev_backward=bool(flags & 2),
                skip_bits=skip,
            ),
            off + size,
        )

    @classmethod
    def packed_size(cls) -> int:
        return struct.calcsize(cls._FMT)

    def to_state_snapshot(self) -> dict:
        return {
            "qscale_code": self.qscale_code,
            "dc_pred": list(self.dc_pred),
            "pmv": [list(self.pmv[0]), list(self.pmv[1])],
            "prev_forward": self.prev_forward,
            "prev_backward": self.prev_backward,
        }


@dataclass
class RunRecord:
    """A partial slice: SPH + byte-copied macroblock payload."""

    sph: SPH
    n_coded: int  # coded macroblocks in the payload
    n_total: int  # coded + increment-absorbed skipped macroblocks
    nbits: int  # exact payload length in bits (after skip_bits)
    payload: bytes

    _FMT = "<HHI I".replace(" ", "")

    def pack(self) -> bytes:
        head = self.sph.pack() + struct.pack(
            self._FMT, self.n_coded, self.n_total, self.nbits, len(self.payload)
        )
        return b"\x01" + head + self.payload

    @classmethod
    def unpack(cls, data: bytes, off: int) -> tuple["RunRecord", int]:
        sph, off = SPH.unpack(data, off)
        n_coded, n_total, nbits, plen = struct.unpack_from(cls._FMT, data, off)
        off += struct.calcsize(cls._FMT)
        payload = data[off : off + plen]
        return cls(sph, n_coded, n_total, nbits, payload), off + plen


@dataclass
class SkipRecord:
    """Skipped macroblocks shipped explicitly (boundary-crossing skips)."""

    address: int
    count: int
    forward: bool
    backward: bool
    mv_fwd: tuple = (0, 0)
    mv_bwd: tuple = (0, 0)

    _FMT = "<IHB4h"

    def pack(self) -> bytes:
        flags = (1 if self.forward else 0) | (2 if self.backward else 0)
        return b"\x02" + struct.pack(
            self._FMT,
            self.address,
            self.count,
            flags,
            self.mv_fwd[0],
            self.mv_fwd[1],
            self.mv_bwd[0],
            self.mv_bwd[1],
        )

    @classmethod
    def unpack(cls, data: bytes, off: int) -> tuple["SkipRecord", int]:
        addr, count, flags, fh, fv, bh, bv = struct.unpack_from(cls._FMT, data, off)
        return (
            cls(
                address=addr,
                count=count,
                forward=bool(flags & 1),
                backward=bool(flags & 2),
                mv_fwd=(fh, fv),
                mv_bwd=(bh, bv),
            ),
            off + struct.calcsize(cls._FMT),
        )


Record = Union[RunRecord, SkipRecord]


@dataclass
class SubPicture:
    """All macroblocks of one coded picture destined for one tile."""

    picture_index: int
    tile: int
    picture_type: PictureType
    temporal_reference: int
    f_code: tuple
    mb_width: int
    mb_height: int
    intra_dc_precision: int = 8
    intra_vlc_format: int = 0
    records: List[Record] = field(default_factory=list)

    _HEAD_FMT = "<HIHBH8BHH I".replace(" ", "")

    def picture_header(self) -> PictureHeader:
        return PictureHeader(
            temporal_reference=self.temporal_reference,
            picture_type=self.picture_type,
            f_code=self.f_code,
            intra_dc_precision=self.intra_dc_precision,
            intra_vlc_format=self.intra_vlc_format,
        )

    @property
    def n_macroblocks(self) -> int:
        """Macroblocks this sub-picture reconstructs (coded + skipped)."""
        total = 0
        for rec in self.records:
            total += rec.n_total if isinstance(rec, RunRecord) else rec.count
        return total

    @property
    def payload_bytes(self) -> int:
        """Bytes of copied original bitstream (excluding SPH/framing)."""
        return sum(
            len(rec.payload) for rec in self.records if isinstance(rec, RunRecord)
        )

    @property
    def overhead_bytes(self) -> int:
        """Framing + SPH + skip-record bytes (the paper's ~20 % overhead)."""
        return len(self.serialize()) - self.payload_bytes

    def serialize(self) -> bytes:
        fc = self.f_code
        head = struct.pack(
            self._HEAD_FMT,
            _MAGIC,
            self.picture_index,
            self.tile,
            int(self.picture_type),
            self.temporal_reference,
            fc[0][0],
            fc[0][1],
            fc[1][0],
            fc[1][1],
            self.intra_dc_precision,
            self.intra_vlc_format,
            0,
            0,
            self.mb_width,
            self.mb_height,
            len(self.records),
        )
        return head + b"".join(rec.pack() for rec in self.records)

    @classmethod
    def deserialize(cls, data: bytes) -> "SubPicture":
        off = struct.calcsize(cls._HEAD_FMT)
        (
            magic,
            pic_idx,
            tile,
            ptype,
            tref,
            f00,
            f01,
            f10,
            f11,
            dc_prec,
            ivf,
            _r2,
            _r3,
            mbw,
            mbh,
            n_rec,
        ) = struct.unpack_from(cls._HEAD_FMT, data, 0)
        if magic != _MAGIC:
            raise ValueError("not a sub-picture buffer")
        sp = cls(
            picture_index=pic_idx,
            tile=tile,
            picture_type=PictureType(ptype),
            temporal_reference=tref,
            f_code=((f00, f01), (f10, f11)),
            mb_width=mbw,
            mb_height=mbh,
            intra_dc_precision=dc_prec or 8,
            intra_vlc_format=ivf,
        )
        for _ in range(n_rec):
            kind = data[off]
            off += 1
            if kind == 1:
                rec, off = RunRecord.unpack(data, off)
            elif kind == 2:
                rec, off = SkipRecord.unpack(data, off)
            else:
                raise ValueError(f"unknown sub-picture record type {kind}")
            sp.records.append(rec)
        return sp
