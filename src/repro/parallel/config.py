"""Configuration determination (paper §4.6 and future work §6).

With ``t_s`` the time to macroblock-split one picture and ``t_d`` the time
to decode and display one sub-picture, the overall frame rate of a
1-k-(m,n) system is::

    F = min(k / t_s, 1 / t_d)

When ``t_s > k * t_d`` the splitters are the bottleneck; the optimal number
of second-level splitters is ``k* = ceil(t_s / t_d)``.  If ``k* == 1`` the
second level can be dropped entirely (a 1-(m,n) system).

The paper chooses configurations empirically; §6 proposes choosing them
automatically given a target frame rate — implemented here as
:func:`auto_configure`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass


def predicted_frame_rate(k: int, t_s: float, t_d: float) -> float:
    """F = min(k/t_s, 1/t_d) — the paper's §4.6 model."""
    if k < 1:
        raise ValueError("k must be >= 1")
    if t_s <= 0 or t_d <= 0:
        raise ValueError("times must be positive")
    return min(k / t_s, 1.0 / t_d)


def optimal_k(t_s: float, t_d: float) -> int:
    """Smallest k keeping the decoders running at full speed.

    ``t_s <= k * t_d``  ⇔  ``k >= t_s / t_d``; the optimum is the ceiling.
    """
    if t_s <= 0 or t_d <= 0:
        raise ValueError("times must be positive")
    return max(1, math.ceil(t_s / t_d))


def splitter_bound(k: int, t_s: float) -> float:
    """Frame rate the splitting stage can sustain."""
    return k / t_s


def decoder_bound(t_d: float) -> float:
    """Frame rate the decoding stage can sustain."""
    return 1.0 / t_d


@dataclass(frozen=True)
class SystemConfig:
    """A chosen 1-k-(m,n) configuration."""

    k: int
    m: int
    n: int

    @property
    def n_decoders(self) -> int:
        return self.m * self.n

    @property
    def n_nodes(self) -> int:
        """Total PCs: 1 root + k splitters + m*n decoders.

        The paper's one-level systems (k == 1 collapsed into the root) are
        counted as 1 + m*n, matching its Figure 6 x-axis.
        """
        if self.k == 0:
            return 1 + self.n_decoders
        return 1 + self.k + self.n_decoders

    def label(self) -> str:
        if self.k == 0:
            return f"1-({self.m},{self.n})"
        return f"1-{self.k}-({self.m},{self.n})"


def match_tiles_to_video(
    video_w: int, video_h: int, tile_w: int = 1024, tile_h: int = 768,
    max_m: int = 6, max_n: int = 4,
) -> tuple[int, int]:
    """Pick (m, n) so the tiled resolution matches the video (paper §4.6:
    'We determine m and n by matching the video resolution with the
    resolution of a tiled display wall')."""
    m = min(max_m, max(1, math.ceil(video_w / tile_w)))
    n = min(max_n, max(1, math.ceil(video_h / tile_h)))
    return m, n


def auto_configure(
    t_s: float,
    t_d_of: "callable",
    video_w: int,
    video_h: int,
    target_fps: float,
    max_k: int = 8,
    tile_w: int = 1024,
    tile_h: int = 768,
) -> SystemConfig:
    """Choose (k, m, n) for a target frame rate (paper future work §6).

    ``t_d_of(m, n)`` maps a screen configuration to the per-sub-picture
    decode time (the caller derives it from the cost model).  The search
    fixes (m, n) from the resolution match, then takes the smallest k whose
    predicted rate meets the target; if even ``optimal_k`` cannot reach the
    target (decoders are the bound), it returns the decoder-optimal k.
    """
    m, n = match_tiles_to_video(video_w, video_h, tile_w, tile_h)
    t_d = t_d_of(m, n)
    for k in range(1, max_k + 1):
        if predicted_frame_rate(k, t_s, t_d) >= target_fps:
            return SystemConfig(k=k, m=m, n=n)
    return SystemConfig(k=min(max_k, optimal_k(t_s, t_d)), m=m, n=n)
