"""Analytic cost model of the parallelization levels (paper Table 1, §3).

For each splitting granularity — sequence, GOP, picture, slice,
macroblock — we quantify the three cost axes the paper compares:

- **splitting cost**: CPU time the splitter spends per picture.  Levels
  with byte-aligned start codes only scan; macroblock level must VLC-parse
  everything.
- **inter-decoder communication**: reference data moved between decoders
  per picture.
- **pixel redistribution**: decoded pixels that must move to the node that
  displays them.  At sequence/GOP/picture level a decoder produces whole
  frames but displays only its tile, so ``(mn - 1) / mn`` of every decoded
  picture crosses the network; at slice level ``(n - 1) / n`` of each slice
  band leaves its decoder; at macroblock level work is split by screen
  location, so nothing moves.

These numbers quantify the paper's qualitative table and drive the
baseline-comparison benchmark.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.mpeg2.constants import MB_SIZE, PictureType
from repro.perf.costmodel import CostModel
from repro.wall.layout import TileLayout
from repro.workloads.streams import StreamSpec

# YCbCr 4:2:0 bytes per pixel
_YUV_BPP = 1.5

LEVELS = ("sequence", "gop", "picture", "slice", "macroblock")


@dataclass
class LevelCosts:
    """Per-picture costs of one parallelization level for one workload."""

    level: str
    split_cpu_s: float  # splitter CPU time per picture
    interdecoder_bytes: float  # reference pixels exchanged per picture
    redistribution_bytes: float  # decoded pixels moved per picture
    label_split: str
    label_comm: str
    label_redist: str

    @property
    def network_bytes(self) -> float:
        return self.interdecoder_bytes + self.redistribution_bytes


def _mean_reference_pictures(spec: StreamSpec) -> float:
    """Average reference pictures fetched per picture (0 for I, 1 P, 2 B)."""
    types = spec.picture_types()
    score = {PictureType.I: 0, PictureType.P: 1, PictureType.B: 2}
    return sum(score[t] for t in types) / len(types)


def _boundary_exchange_bytes(spec: StreamSpec, layout: TileLayout) -> float:
    """Macroblock-level inter-decoder traffic (same model the timed system
    uses), averaged per picture."""
    from repro.perf.costmodel import build_picture_work

    works = build_picture_work(spec, layout, n_frames=min(spec.n_frames, 36))
    total = sum(e.nbytes for w in works for e in w.exchanges)
    return total / len(works)


def level_costs(
    spec: StreamSpec, layout: TileLayout, cost: CostModel | None = None
) -> List[LevelCosts]:
    """Quantified Table 1 for one stream on one wall layout."""
    cost = cost or CostModel()
    mn = layout.n_tiles
    frame_pixels = spec.n_pixels * _YUV_BPP
    pic_bytes = spec.avg_frame_bytes
    scan_cost = cost.t_root_copy(pic_bytes) * cost.root_speed  # pure scan+copy
    full_split = cost.t_split_picture(spec.mbs_per_frame, pic_bytes * 8)
    refs = _mean_reference_pictures(spec)

    redistribution_full = frame_pixels * (mn - 1) / mn if mn > 1 else 0.0
    # Slice-level: bands of rows; each band displays across the m columns,
    # so (m-1)/m of a band's pixels leave the decoder that made it.
    redistribution_slice = frame_pixels * (layout.m - 1) / layout.m if layout.m > 1 else 0.0
    # Picture-level communication only exists with multiple decoders.
    picture_comm = refs * frame_pixels if mn > 1 else 0.0
    # Slice-level communication: motion vectors reaching across each of the
    # mn-1 band boundaries pull in strips of reference rows.
    band_rows = max(1, spec.mb_height // mn)
    slice_comm = (
        refs
        * spec.width
        * min(spec.motion_pixels, band_rows * MB_SIZE)
        * _YUV_BPP
        * (mn - 1)
        if mn > 1
        else 0.0
    )
    mb_comm = _boundary_exchange_bytes(spec, layout) if mn > 1 else 0.0

    return [
        LevelCosts(
            "sequence", scan_cost, 0.0, redistribution_full,
            "very low", "none", "very high",
        ),
        LevelCosts(
            "gop", scan_cost, 0.0, redistribution_full,
            "very low", "none or low", "very high",
        ),
        LevelCosts(
            "picture", scan_cost, picture_comm, redistribution_full,
            "very low", "very high", "very high",
        ),
        LevelCosts(
            "slice", scan_cost, slice_comm, redistribution_slice,
            "very low", "moderate to high", "moderate to high",
        ),
        LevelCosts(
            "macroblock", full_split, mb_comm, 0.0,
            "high or moderate", "low", "none",
        ),
    ]
