"""Root (picture-level) splitter (paper §4.1, Table 2/3).

The root splitter scans the bitstream for picture start codes — a linear
byte scan, no VLC work — copies each coded picture into an output buffer,
and ships it to the ``k`` second-level splitters round-robin.  With every
picture it sends the **NSID** (next-splitter id): the identity of the
splitter responsible for the following picture, which the second-level
splitter forwards to decoders as the **ANID** (ack-node id).  Decoders ack
the *next* splitter rather than the sender, which serializes picture
delivery without any reorder queue (paper §4.5) while keeping the set of
second-level splitters hidden from each other.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Tuple

from repro.mpeg2.parser import PictureScanner, PictureUnit


@dataclass(frozen=True)
class RoutedPicture:
    """One picture as dispatched by the root."""

    picture_index: int
    splitter: int  # second-level splitter receiving this picture
    nsid: int  # splitter responsible for the next picture
    unit: PictureUnit


class RootSplitter:
    """Picture-level splitting with round-robin dispatch."""

    def __init__(self, stream: bytes, k: int):
        if k < 1:
            raise ValueError("need at least one second-level splitter")
        self.k = k
        self.scanner = PictureScanner(stream)
        self.sequence, self.pictures = self.scanner.scan()

    def __len__(self) -> int:
        return len(self.pictures)

    def route(self) -> Iterator[RoutedPicture]:
        """Yield pictures with their splitter assignment and NSID."""
        a = 0
        for i, unit in enumerate(self.pictures):
            nsid = (a + 1) % self.k
            yield RoutedPicture(picture_index=i, splitter=a, nsid=nsid, unit=unit)
            a = nsid

    def schedule(self) -> List[Tuple[int, int]]:
        """(picture_index, splitter) pairs — the round-robin schedule."""
        return [(r.picture_index, r.splitter) for r in self.route()]
