"""The timed 1-k-(m,n) system: Table 3's refined protocol on the DES.

Node ids: ``0`` is the console (root splitter); ``1..k`` are second-level
splitters; ``k+1 .. k+m*n`` are decoders.  With ``k == 0`` the system is the
paper's one-level 1-(m,n): the console does the macroblock splitting itself
and ships sub-pictures directly — the configuration whose splitter
saturates beyond ~4 decoders (§5.3).

The protocol implemented is exactly the refined algorithm of Table 3:

- the root copies each picture, waits for an ack from *any* splitter
  (except before the first picture), and sends the picture round-robin
  with the NSID of the next splitter;
- a splitter acks the root on receive, splits, waits for the previous
  picture's decoder acks (redirected to it via ANID), then sends each
  decoder its MEI + sub-picture with the ANID it got from the root;
- a decoder acks node ANID (not the sender!), executes its MEI SENDs,
  waits for its MEI RECVs, then decodes and displays.

Every decoder verifies in-order picture arrival, and the GM model verifies
that a posted receive buffer exists for every bulk arrival — so a protocol
bug fails the run instead of skewing the numbers.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.net.gm import GMNetwork, GMPort, NetworkParams
from repro.net.simtime import Simulator, Store, Timeout
from repro.cluster.node import ClusterSpec, Node, PRINCETON_WALL
from repro.parallel.mei import INSTRUCTION_BYTES
from repro.perf.costmodel import CostModel, PictureWork, build_picture_work
from repro.perf.metrics import RuntimeBreakdown, average_breakdown
from repro.perf.timeline import TimelineTrace
from repro.wall.layout import TileLayout
from repro.workloads.streams import StreamSpec

ACK_SIZE = 8


class _Mailbox:
    """Tag-demultiplexed view of a GM port's inbox."""

    def __init__(self, sim: Simulator, port: GMPort):
        self.sim = sim
        self.stores: Dict[str, Store] = defaultdict(lambda: Store(sim))
        sim.process(self._pump(port), name=f"mailbox:{port.node_id}")

    def _pump(self, port: GMPort):
        while True:
            msg = yield port.inbox.get()
            port.stats.bytes_received += msg.size
            port.stats.messages_received += 1
            self.stores[msg.tag].put(msg)

    def get(self, tag: str):
        """Process helper: ``msg = yield mailbox.get(tag)`` (event)."""
        return self.stores[tag].get()


@dataclass
class SystemResult:
    """What one timed run produces."""

    label: str
    fps: float
    pixel_rate_mpps: float
    n_frames: int
    duration: float
    breakdowns: Dict[int, RuntimeBreakdown]  # tile id -> breakdown
    bandwidth: Dict[str, Tuple[float, float]]  # node label -> (send, recv) MB/s
    flow_control_violations: int
    display_times: List[float]
    utilization: Dict[str, float] = None  # node label -> CPU busy fraction

    def mean_breakdown(self) -> RuntimeBreakdown:
        return average_breakdown(list(self.breakdowns.values()))


class TimedSystem:
    """Build and run one timed 1-k-(m,n) simulation."""

    def __init__(
        self,
        spec: StreamSpec,
        layout: TileLayout,
        k: int,
        cost: Optional[CostModel] = None,
        net_params: Optional[NetworkParams] = None,
        cluster: ClusterSpec = PRINCETON_WALL,
        n_frames: int = 60,
        disable_anid: bool = False,
        demand_fetch: bool = False,
        works: Optional[List[PictureWork]] = None,
        node_speeds: Optional[Dict[int, float]] = None,
        tiles_per_node: int = 1,
        trace: Optional[TimelineTrace] = None,
    ):
        self.spec = spec
        self.layout = layout
        self.k = k
        self.cost = cost or CostModel()
        self.net_params = net_params or NetworkParams()
        self.cluster = cluster
        self.disable_anid = disable_anid
        self.demand_fetch = demand_fetch
        # Workloads come from the analytic model by default; pass ``works``
        # (e.g. from repro.perf.trace) to drive the system from a real
        # stream's measured split results instead.
        self.works = works if works is not None else build_picture_work(
            spec, layout, n_frames
        )
        self.n_frames = len(self.works)

        self.sim = Simulator()
        self.net = GMNetwork(self.sim, self.net_params)
        # Multi-display extension (paper §6): one decoder PC can drive
        # ``tiles_per_node`` projectors.  Tiles are grouped row-major.
        if tiles_per_node < 1:
            raise ValueError("tiles_per_node must be >= 1")
        self.tiles_per_node = tiles_per_node
        n_tiles = layout.n_tiles
        n_dec = -(-n_tiles // tiles_per_node)
        self.tile_groups: List[List[int]] = [
            list(range(g * tiles_per_node, min((g + 1) * tiles_per_node, n_tiles)))
            for g in range(n_dec)
        ]
        self.node_of_tile: Dict[int, int] = {}
        for g, tids in enumerate(self.tile_groups):
            for tid in tids:
                self.node_of_tile[tid] = k + 1 + g
        self.decoder_ids = list(range(k + 1, k + 1 + n_dec))
        self.splitter_ids = list(range(1, k + 1))
        self.nodes: Dict[int, Node] = {}
        from dataclasses import replace as _dc_replace

        for nid in [0] + self.splitter_ids + self.decoder_ids:
            spec_n = cluster.console if nid == 0 else cluster.worker
            if node_speeds and nid in node_speeds:
                # Heterogeneity/straggler injection: scale this node's CPU.
                spec_n = _dc_replace(
                    spec_n, cpu_mhz=spec_n.cpu_mhz * node_speeds[nid]
                )
            self.nodes[nid] = Node(self.sim, self.net, nid, spec_n)
        self.mailboxes = {
            nid: _Mailbox(self.sim, self.nodes[nid].port) for nid in self.nodes
        }
        self.breakdowns: Dict[int, RuntimeBreakdown] = {}
        self.display_times: Dict[int, List[float]] = defaultdict(list)
        self.trace = trace

    def _rec(self, actor: str, phase: str, t0: float, picture: int = -1) -> None:
        """Record a span ending now on the optional timeline trace."""
        if self.trace is not None and self.sim.now > t0:
            self.trace.record(actor, phase, t0, self.sim.now, picture)

    # ------------------------------------------------------------------ #

    def decoder_node_of_tile(self, tid: int) -> int:
        return self.node_of_tile[tid]

    def label(self) -> str:
        if self.k == 0:
            return f"1-({self.layout.m},{self.layout.n})"
        return f"1-{self.k}-({self.layout.m},{self.layout.n})"

    # ------------------------------------------------------------------ #
    # actors
    # ------------------------------------------------------------------ #

    def _root_two_level(self):
        node = self.nodes[0]
        port = node.port
        mbox = self.mailboxes[0]
        for work in self.works:
            a = work.index % self.k
            nsid = (a + 1) % self.k
            t0 = self.sim.now
            yield from node.compute(self.cost.t_root_copy(work.nbytes))
            self._rec("root", "copy", t0, work.index)
            if work.index > 0:
                t0 = self.sim.now
                yield mbox.get("ackroot")  # ack from any splitter
                self._rec("root", "wait", t0, work.index)
            t0 = self.sim.now
            yield from port.send(
                1 + a,
                {"work": work, "nsid": nsid},
                size=work.nbytes + 16,
                tag="pic",
            )
            self._rec("root", "send", t0, work.index)

    def _splitter(self, sid: int):
        """Second-level splitter ``sid`` (node id sid+1... here real id)."""
        node = self.nodes[sid]
        port = node.port
        mbox = self.mailboxes[sid]
        port.post_receive_buffer(2)
        n_dec = len(self.decoder_ids)
        sname = f"splitter{sid - 1}"
        while True:
            t0 = self.sim.now
            msg = yield mbox.get("pic")
            work: PictureWork = msg.payload["work"]
            nsid = msg.payload["nsid"]
            self._rec(sname, "receive", t0, work.index)
            port.post_receive_buffer(1)  # recycle the consumed buffer
            t0 = self.sim.now
            yield from node.compute(self.cost.ack_cost)
            yield from port.send(0, None, ACK_SIZE, tag="ackroot", control=True)
            self._rec(sname, "ack", t0, work.index)
            t0 = self.sim.now
            yield from node.compute(
                self.cost.t_split_picture(
                    self.spec.mbs_per_frame, work.nbytes * 8
                )
            )
            self._rec(sname, "split", t0, work.index)
            if work.index > 0 and not self.disable_anid:
                t0 = self.sim.now
                for _ in range(n_dec):
                    yield mbox.get(f"acksp:{work.index - 1}")
                self._rec(sname, "wait", t0, work.index)
            anid = nsid if not self.disable_anid else (sid - 1)
            t_send = self.sim.now
            for tid in range(self.layout.n_tiles):
                tw = work.tiles[tid]
                instr = sum(
                    e.n_instructions
                    for e in work.exchanges
                    if e.src == tid or e.dst == tid
                )
                size = tw.sp_bytes + instr * INSTRUCTION_BYTES
                yield from port.send(
                    self.decoder_node_of_tile(tid),
                    {"work": work, "anid": anid, "tile": tid},
                    size=size,
                    tag="sp",
                )
            self._rec(sname, "send", t_send, work.index)
            if work.index + self.k >= self.n_frames:
                return  # no more pictures routed to this splitter

    def _decoder(self, tids: List[int]):
        """One decoder PC driving the tiles in ``tids`` (usually one)."""
        lead = tids[0]
        my_tiles = set(tids)
        node = self.nodes[self.decoder_node_of_tile(lead)]
        port = node.port
        mbox = self.mailboxes[node.node_id]
        port.post_receive_buffer(2 * len(tids))
        bd = RuntimeBreakdown()
        self.breakdowns[lead] = bd
        cost = self.cost
        dname = f"decoder{lead}"
        for i in range(self.n_frames):
            t0 = self.sim.now
            work: Optional[PictureWork] = None
            anid = -1
            for _ in tids:
                msg = yield mbox.get("sp")
                work = msg.payload["work"]
                anid = msg.payload["anid"]
                if work.index != i:
                    raise RuntimeError(
                        f"tile {lead}: picture {work.index} arrived, "
                        f"expected {i} (ordering protocol violated)"
                    )
                port.post_receive_buffer(1)
            assert work is not None
            bd.add("receive", self.sim.now - t0)
            self._rec(dname, "receive", t0, i)
            # ack to the ANID node (the *next* splitter), not the sender
            t0 = self.sim.now
            yield from node.compute(cost.ack_cost)
            anid_node = 1 + anid if self.k else 0
            yield from port.send(
                anid_node, None, ACK_SIZE, tag=f"acksp:{i}", control=True
            )
            bd.add("ack", self.sim.now - t0)
            self._rec(dname, "ack", t0, i)
            # Partition this picture's exchanges by locality: transfers
            # between two tiles of this node never touch the network (the
            # multi-display extension's main saving).
            sends_remote = [
                ex
                for tid in tids
                for ex in work.exchanges_from(tid)
                if ex.dst not in my_tiles
            ]
            local = [
                ex
                for tid in tids
                for ex in work.exchanges_from(tid)
                if ex.dst in my_tiles
            ]
            expected_recv = sum(
                1
                for tid in tids
                for ex in work.exchanges_to(tid)
                if ex.src not in my_tiles
            )
            if not self.demand_fetch:
                # MEI pre-calculation (the paper's §4.2 design): serve
                # remote decoders first, then collect incoming blocks.
                t0 = self.sim.now
                for ex in sends_remote:
                    yield from node.compute(
                        cost.serve_per_byte * ex.nbytes
                        + cost.mei_per_instruction * ex.n_instructions
                    )
                    yield from port.send(
                        self.decoder_node_of_tile(ex.dst),
                        ex,
                        size=ex.nbytes + ex.n_instructions * INSTRUCTION_BYTES,
                        tag=f"blk:{i}",
                        control=True,
                    )
                for ex in local:
                    # same-node tiles share memory: a copy, no messaging
                    yield from node.compute(cost.apply_per_byte * ex.nbytes)
                bd.add("serve", self.sim.now - t0)
                self._rec(dname, "serve", t0, i)
                t0 = self.sim.now
                for _ in range(expected_recv):
                    m = yield mbox.get(f"blk:{i}")
                    yield from node.compute(
                        cost.apply_per_byte * m.payload.nbytes
                        + cost.mei_per_instruction * m.payload.n_instructions
                    )
                bd.add("wait_remote", self.sim.now - t0)
                self._rec(dname, "fetch", t0, i)
            else:
                # Ablation: demand fetching (§4.2's rejected design).  Each
                # remote reference is a blocking request/response round trip
                # served by a server thread on the peer, adding two context
                # switches per region; requests serialize with decoding.
                ctx_switch = 30e-6
                t0 = self.sim.now
                for ex in sends_remote:
                    # this node's server thread steals the same service time
                    # plus wakeup/switch costs
                    yield from node.compute(
                        cost.serve_per_byte * ex.nbytes
                        + (cost.mei_per_instruction + 2 * ctx_switch)
                        * ex.n_instructions
                    )
                for ex in local:
                    yield from node.compute(cost.apply_per_byte * ex.nbytes)
                bd.add("serve", self.sim.now - t0)
                t0 = self.sim.now
                remote_recvs = [
                    ex
                    for t in tids
                    for ex in work.exchanges_to(t)
                    if ex.src not in my_tiles
                ]
                for ex in remote_recvs:
                    per_region = ex.nbytes / max(1, ex.n_instructions)
                    for _ in range(ex.n_instructions):
                        # request latency + remote wakeup + response
                        yield Timeout(
                            2 * self.net_params.latency
                            + 2 * ctx_switch
                            + per_region / self.net_params.bandwidth
                        )
                        yield from node.compute(
                            cost.apply_per_byte * per_region
                        )
                bd.add("wait_remote", self.sim.now - t0)
            # decode + display (all tiles of this node, sequentially)
            t0 = self.sim.now
            for t in tids:
                tw = work.tiles[t]
                yield from node.compute(cost.t_decode_mbs(tw.n_mbs, tw.bits))
            bd.add("work", self.sim.now - t0)
            self._rec(dname, "decode", t0, i)
            self.display_times[lead].append(self.sim.now)

    def _root_one_level(self):
        """One-level 1-(m,n): the console scans, splits, and ships SPs."""
        node = self.nodes[0]
        port = node.port
        mbox = self.mailboxes[0]
        n_dec = len(self.decoder_ids)
        for work in self.works:
            yield from node.compute(self.cost.t_root_copy(work.nbytes))
            yield from node.compute(
                self.cost.t_split_picture(self.spec.mbs_per_frame, work.nbytes * 8)
            )
            if work.index > 0:
                for _ in range(n_dec):
                    yield mbox.get(f"acksp:{work.index - 1}")
            for tid in range(self.layout.n_tiles):
                tw = work.tiles[tid]
                instr = sum(
                    e.n_instructions
                    for e in work.exchanges
                    if e.src == tid or e.dst == tid
                )
                size = tw.sp_bytes + instr * INSTRUCTION_BYTES
                yield from port.send(
                    self.decoder_node_of_tile(tid),
                    {"work": work, "anid": -1, "tile": tid},
                    size=size,
                    tag="sp",
                )

    # ------------------------------------------------------------------ #

    def run(self) -> SystemResult:
        if self.k == 0:
            self.sim.process(self._root_one_level(), name="root")
        else:
            self.sim.process(self._root_two_level(), name="root")
            for sid in self.splitter_ids:
                self.sim.process(self._splitter(sid), name=f"splitter{sid}")
        for group in self.tile_groups:
            self.sim.process(self._decoder(group), name=f"decoder{group[0]}")
        end = self.sim.run()

        times = self.display_times[0]
        warm = min(4, max(0, len(times) - 2))
        if len(times) >= warm + 2:
            fps = (len(times) - 1 - warm) / (times[-1] - times[warm])
        else:
            fps = len(times) / end if end > 0 else 0.0
        duration = times[-1] - times[warm] if len(times) > warm + 1 else end

        bandwidth: Dict[str, Tuple[float, float]] = {}
        utilization: Dict[str, float] = {}
        for nid in sorted(self.nodes):
            node = self.nodes[nid]
            port = node.port
            if nid == 0:
                name = "root"
            elif nid in self.splitter_ids:
                name = f"splitter{nid - 1}"
            else:
                name = f"decoder{nid - self.k - 1}"
            bandwidth[name] = (
                port.stats.bytes_sent / duration / 1e6,
                port.stats.bytes_received / duration / 1e6,
            )
            utilization[name] = min(1.0, node.busy_time / end) if end > 0 else 0.0

        return SystemResult(
            label=self.label(),
            fps=fps,
            pixel_rate_mpps=fps * self.spec.n_pixels / 1e6,
            n_frames=self.n_frames,
            duration=duration,
            breakdowns=dict(self.breakdowns),
            bandwidth=bandwidth,
            flow_control_violations=self.net.flow_control_violations,
            display_times=list(times),
            utilization=utilization,
        )


def run_system(
    spec: StreamSpec,
    m: int,
    n: int,
    k: int,
    overlap: int = 0,
    n_frames: int = 60,
    cost: Optional[CostModel] = None,
    net_params: Optional[NetworkParams] = None,
    disable_anid: bool = False,
    demand_fetch: bool = False,
) -> SystemResult:
    """Convenience wrapper: build layout + system and run it."""
    layout = TileLayout(spec.width, spec.height, m, n, overlap=overlap)
    sys_ = TimedSystem(
        spec,
        layout,
        k,
        cost=cost,
        net_params=net_params,
        n_frames=n_frames,
        disable_anid=disable_anid,
        demand_fetch=demand_fetch,
    )
    return sys_.run()
