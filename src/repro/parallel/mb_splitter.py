"""Second-level (macroblock) splitter (paper §4.1 algorithm, refined §4.5).

For each coded picture the splitter:

1. VLC-parses the picture into macroblocks (no pixel work — "a splitter
   does not motion compensate", which is why pictures can be split in
   parallel with no inter-picture dependency);
2. sorts macroblocks into per-tile **sub-pictures**, copying partial-slice
   bytes and inserting State Propagation Headers where prediction chains
   break;
3. pre-calculates the **MEI** exchange programs from every motion vector
   that reads outside its tile's coverage.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.mpeg2.batch_reconstruct import PlanBuilder
from repro.mpeg2.constants import PictureType
from repro.mpeg2.motion import Rect, chroma_reference_rect, reference_rect
from repro.mpeg2.parser import MacroblockParser, ParsedMB, ParsedPicture, PictureUnit
from repro.mpeg2.plan_codec import TilePlan
from repro.mpeg2.reconstruct import QuantMatrices
from repro.mpeg2.structures import SequenceHeader
from repro.parallel.mei import BWD, FWD, BlockXfer, MEIBatch
from repro.parallel.subpicture import SPH, RunRecord, SkipRecord, SubPicture
from repro.perf.metrics import StageTimes
from repro.perf.telemetry import registry
from repro.wall.layout import TileLayout


@dataclass
class SplitResult:
    """Everything a second-level splitter ships for one picture."""

    picture_index: int
    subpictures: Dict[int, SubPicture]
    mei: MEIBatch
    picture_type: PictureType

    def subpicture_bytes(self, tile: int) -> int:
        return len(self.subpictures[tile].serialize())

    def total_send_bytes(self) -> int:
        """Bytes this splitter sends to decoders (SPs + MEI programs)."""
        return sum(
            len(sp.serialize()) + self.mei.program(t).instruction_bytes
            for t, sp in self.subpictures.items()
        )


@dataclass
class PlanSplitResult:
    """Plan-shipping counterpart of :class:`SplitResult`.

    Instead of sub-picture bitstreams, each tile gets a compiled
    :class:`~repro.mpeg2.plan_codec.TilePlan` — the decoder side goes
    straight to the vectorized execute phase with no VLC work.  The MEI
    exchange programs are identical to the bitstream path's.
    """

    picture_index: int
    plans: Dict[int, TilePlan]
    mei: MEIBatch
    picture_type: PictureType


@dataclass
class _Run:
    """An open partial slice being accumulated for one tile."""

    row: int
    slice_index: int
    items: List[ParsedMB] = field(default_factory=list)

    @property
    def next_addr(self) -> int:
        return self.items[-1].mb.address + 1


@dataclass
class _SkipStreak:
    first_address: int
    count: int
    forward: bool
    backward: bool
    mv_fwd: tuple
    mv_bwd: tuple


class MacroblockSplitter:
    """Split coded pictures into per-tile sub-pictures + MEI programs."""

    def __init__(self, sequence: SequenceHeader, layout: TileLayout):
        if layout.width != sequence.width or layout.height != sequence.height:
            raise ValueError("layout raster does not match the video raster")
        self.sequence = sequence
        self.layout = layout
        self.parser = MacroblockParser(sequence)
        self.matrices = QuantMatrices.from_sequence(sequence)
        # parse/plan attribution for the per-process stage_times traces.
        self.stage_times = StageTimes()
        # per-picture split latency distribution for the stats snapshots
        self.split_hist = registry().histogram("splitter.split_s")

    # ------------------------------------------------------------------ #

    def split(self, unit: PictureUnit, picture_index: int) -> SplitResult:
        t0 = time.perf_counter()
        with self.stage_times.stage("parse"):
            parsed = self.parser.parse_picture(unit.data)
        with self.stage_times.stage("plan"):
            result = self.split_parsed(parsed, picture_index)
        self.stage_times.pictures += 1
        self.split_hist.observe(time.perf_counter() - t0)
        return result

    def split_plans(self, unit: PictureUnit, picture_index: int) -> PlanSplitResult:
        """Parse once, compile each tile's share into a shipped plan."""
        t0 = time.perf_counter()
        with self.stage_times.stage("parse"):
            parsed = self.parser.parse_picture(unit.data)
        with self.stage_times.stage("plan"):
            result = self.compile_plans(parsed, picture_index)
        self.stage_times.pictures += 1
        self.split_hist.observe(time.perf_counter() - t0)
        return result

    def compile_plans(
        self, parsed: ParsedPicture, picture_index: int
    ) -> PlanSplitResult:
        layout = self.layout
        hdr = parsed.header
        builders = {
            t.tid: PlanBuilder(
                hdr.picture_type,
                parsed.mb_width,
                self.sequence.width,
                self.sequence.height,
                self.matrices,
                hdr.dc_scaler,
            )
            for t in layout
        }
        counts = {t.tid: [0, 0] for t in layout}  # [coded, skipped]
        mei = MEIBatch(picture_index, layout.n_tiles)

        for item in parsed.items:
            mb = item.mb
            mb_x = mb.address % parsed.mb_width
            mb_y = mb.address // parsed.mb_width
            for t in layout.tiles_for_mb(mb_x, mb_y):
                builders[t].add(mb)
                counts[t][1 if mb.skipped else 0] += 1
                self._add_exchanges(mei, item, t, mb_x, mb_y)

        plans = {
            t.tid: TilePlan(
                picture_index=picture_index,
                tile=t.tid,
                picture_type=hdr.picture_type,
                n_coded=counts[t.tid][0],
                n_skipped=counts[t.tid][1],
                plan=builders[t.tid].build(),
            )
            for t in layout
        }
        return PlanSplitResult(
            picture_index=picture_index,
            plans=plans,
            mei=mei,
            picture_type=hdr.picture_type,
        )

    def split_parsed(self, parsed: ParsedPicture, picture_index: int) -> SplitResult:
        layout = self.layout
        hdr = parsed.header
        subpictures = {
            t.tid: SubPicture(
                picture_index=picture_index,
                tile=t.tid,
                picture_type=hdr.picture_type,
                temporal_reference=hdr.temporal_reference,
                f_code=hdr.f_code,
                mb_width=parsed.mb_width,
                mb_height=parsed.mb_height,
                intra_dc_precision=hdr.intra_dc_precision,
                intra_vlc_format=hdr.intra_vlc_format,
            )
            for t in layout
        }
        mei = MEIBatch(picture_index, layout.n_tiles)

        open_runs: Dict[int, Optional[_Run]] = {t.tid: None for t in layout}
        pending: Dict[int, Optional[_SkipStreak]] = {t.tid: None for t in layout}

        def flush_pending(t: int) -> None:
            streak = pending[t]
            if streak is None:
                return
            subpictures[t].records.append(
                SkipRecord(
                    address=streak.first_address,
                    count=streak.count,
                    forward=streak.forward,
                    backward=streak.backward,
                    mv_fwd=streak.mv_fwd,
                    mv_bwd=streak.mv_bwd,
                )
            )
            pending[t] = None

        def add_pending_skip(t: int, item: ParsedMB) -> None:
            mb = item.mb
            mvf = mb.mv_fwd or (0, 0)
            mvb = mb.mv_bwd or (0, 0)
            streak = pending[t]
            if (
                streak is not None
                and streak.first_address + streak.count == mb.address
                and streak.forward == mb.motion_forward
                and streak.backward == mb.motion_backward
                and streak.mv_fwd == mvf
                and streak.mv_bwd == mvb
            ):
                streak.count += 1
                return
            flush_pending(t)
            pending[t] = _SkipStreak(
                first_address=mb.address,
                count=1,
                forward=mb.motion_forward,
                backward=mb.motion_backward,
                mv_fwd=mvf,
                mv_bwd=mvb,
            )

        def close_run(t: int) -> None:
            run = open_runs[t]
            if run is None:
                return
            open_runs[t] = None
            items = run.items
            # Trailing skipped macroblocks have their increment bits inside
            # a later macroblock that is NOT in this run; ship them as
            # explicit skip records instead.
            last_coded = max(
                i for i, it in enumerate(items) if not it.mb.skipped
            )
            run_items, trailing = items[: last_coded + 1], items[last_coded + 1 :]
            first = run_items[0]
            start = first.mb.body_start
            end = run_items[-1].mb.bit_end
            payload = parsed.data[start // 8 : (end + 7) // 8]
            snap = first.state_before
            sph = SPH(
                address=first.mb.address,
                qscale_code=snap["qscale_code"],
                dc_pred=tuple(snap["dc_pred"]),
                pmv=(tuple(snap["pmv"][0]), tuple(snap["pmv"][1])),
                prev_forward=snap["prev_forward"],
                prev_backward=snap["prev_backward"],
                skip_bits=start % 8,
            )
            subpictures[t].records.append(
                RunRecord(
                    sph=sph,
                    n_coded=sum(1 for it in run_items if not it.mb.skipped),
                    n_total=len(run_items),
                    nbits=end - start,
                    payload=payload,
                )
            )
            for it in trailing:
                add_pending_skip(t, it)

        # ---------------- sort macroblocks into tiles ------------------- #
        for item in parsed.items:
            mb = item.mb
            mb_x = mb.address % parsed.mb_width
            mb_y = mb.address // parsed.mb_width
            tiles = layout.tiles_for_mb(mb_x, mb_y)
            for t in tiles:
                run = open_runs[t]
                contiguous = (
                    run is not None
                    and mb.address == run.next_addr
                    and item.slice_index == run.slice_index
                )
                if mb.skipped:
                    if contiguous:
                        run.items.append(item)
                    else:
                        close_run(t)
                        add_pending_skip(t, item)
                else:
                    if contiguous:
                        run.items.append(item)
                    else:
                        close_run(t)
                        flush_pending(t)
                        open_runs[t] = _Run(
                            row=item.slice_row,
                            slice_index=item.slice_index,
                            items=[item],
                        )
                self._add_exchanges(mei, item, t, mb_x, mb_y)

        for t in layout.tiles:
            close_run(t.tid)
            flush_pending(t.tid)

        return SplitResult(
            picture_index=picture_index,
            subpictures=subpictures,
            mei=mei,
            picture_type=hdr.picture_type,
        )

    # ------------------------------------------------------------------ #

    def _add_exchanges(
        self, mei: MEIBatch, item: ParsedMB, t: int, mb_x: int, mb_y: int
    ) -> None:
        """Pre-calculate remote reference transfers for one macroblock."""
        mb = item.mb
        if mb.intra:
            return
        layout = self.layout
        tile = layout.tile(t)
        cov = tile.coverage
        ccov = Rect(cov.x0 // 2, cov.y0 // 2, cov.x1 // 2, cov.y1 // 2)

        directions = []
        if mb.motion_forward and mb.mv_fwd is not None:
            directions.append((FWD, mb.mv_fwd))
        if mb.motion_backward and mb.mv_bwd is not None:
            directions.append((BWD, mb.mv_bwd))
        # P "No MC" and P skips read the co-located macroblock, which is
        # always inside this tile's coverage — no exchange needed.

        for direction, mv in directions:
            if mv == (0, 0):
                continue  # co-located read, local by construction
            lrect = reference_rect(mb_x, mb_y, mv)
            crect = chroma_reference_rect(mb_x, mb_y, mv)
            if cov.contains(lrect) and ccov.contains(crect):
                continue
            for other in layout.tiles:
                if other.tid == t:
                    continue
                p = other.partition
                lpiece = p.intersect(lrect)
                cp = Rect(p.x0 // 2, p.y0 // 2, -(-p.x1 // 2), -(-p.y1 // 2))
                cpiece = cp.intersect(crect)
                luma_needed = not lpiece.is_empty() and not cov.contains(lpiece)
                chroma_needed = not cpiece.is_empty() and not ccov.contains(cpiece)
                if not luma_needed and not chroma_needed:
                    continue
                mei.add_exchange(
                    other.tid,
                    t,
                    BlockXfer(
                        luma=lpiece if luma_needed else Rect(0, 0, 0, 0),
                        chroma=cpiece if chroma_needed else Rect(0, 0, 0, 0),
                        direction=direction,
                    ),
                )
