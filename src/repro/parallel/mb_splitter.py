"""Second-level (macroblock) splitter (paper §4.1 algorithm, refined §4.5).

For each coded picture the splitter:

1. VLC-parses the picture into macroblocks (no pixel work — "a splitter
   does not motion compensate", which is why pictures can be split in
   parallel with no inter-picture dependency);
2. sorts macroblocks into per-tile **sub-pictures**, copying partial-slice
   bytes and inserting State Propagation Headers where prediction chains
   break;
3. pre-calculates the **MEI** exchange programs from every motion vector
   that reads outside its tile's coverage.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.mpeg2.batch_reconstruct import PlanBuilder, ReconstructionPlan
from repro.mpeg2.constants import PictureType
from repro.mpeg2.motion import Rect, chroma_reference_rect, reference_rect
from repro.mpeg2.parser import MacroblockParser, ParsedMB, ParsedPicture, PictureUnit
from repro.mpeg2.plan_codec import TilePlan
from repro.mpeg2.reconstruct import QuantMatrices
from repro.mpeg2.structures import SequenceHeader
from repro.mpeg2.tables import QUANTISER_SCALE
from repro.parallel.mei import BWD, FWD, BlockXfer, MEIBatch
from repro.parallel.subpicture import SPH, RunRecord, SkipRecord, SubPicture
from repro.perf.metrics import StageTimes
from repro.perf.telemetry import registry
from repro.wall.layout import TileLayout


@dataclass
class SplitResult:
    """Everything a second-level splitter ships for one picture."""

    picture_index: int
    subpictures: Dict[int, SubPicture]
    mei: MEIBatch
    picture_type: PictureType

    def subpicture_bytes(self, tile: int) -> int:
        return len(self.subpictures[tile].serialize())

    def total_send_bytes(self) -> int:
        """Bytes this splitter sends to decoders (SPs + MEI programs)."""
        return sum(
            len(sp.serialize()) + self.mei.program(t).instruction_bytes
            for t, sp in self.subpictures.items()
        )


@dataclass
class PlanSplitResult:
    """Plan-shipping counterpart of :class:`SplitResult`.

    Instead of sub-picture bitstreams, each tile gets a compiled
    :class:`~repro.mpeg2.plan_codec.TilePlan` — the decoder side goes
    straight to the vectorized execute phase with no VLC work.  The MEI
    exchange programs are identical to the bitstream path's.
    """

    picture_index: int
    plans: Dict[int, TilePlan]
    mei: MEIBatch
    picture_type: PictureType


@dataclass
class _Run:
    """An open partial slice being accumulated for one tile."""

    row: int
    slice_index: int
    items: List[ParsedMB] = field(default_factory=list)

    @property
    def next_addr(self) -> int:
        return self.items[-1].mb.address + 1


def _div2_toward_zero(v: np.ndarray) -> np.ndarray:
    """Chroma MV component: luma MV / 2 rounded toward zero (§7.6.3.7)."""
    return np.where(v >= 0, v // 2, -((-v) // 2))


class _PictureColumns:
    """Columnar (structure-of-arrays) view of one parsed picture.

    ``compile_plans`` is called once per picture per tile *set*, and the
    scalar path re-walks the macroblock list once per covering tile —
    O(n_mb x tiles) Python-level work.  This table is built in a single
    pass and every per-tile question (membership, plan arrays, which
    motion vectors escape a tile's coverage) becomes a numpy expression
    over it.  Blocks are stacked once, in stream order with slots
    ascending per macroblock, so a tile's coefficient stack is a fancy
    index into ``scans``.
    """

    def __init__(self, parsed: ParsedPicture):
        items = parsed.items
        n = self.n = len(items)
        mbs = self.mbs = [it.mb for it in items]
        is_p = parsed.header.picture_type == PictureType.P

        addr = np.fromiter((mb.address for mb in mbs), np.int64, n)
        self.mbx = addr % parsed.mb_width
        self.mby = addr // parsed.mb_width
        self.intra = np.fromiter((mb.intra for mb in mbs), bool, n)
        self.skipped = np.fromiter((mb.skipped for mb in mbs), bool, n)
        self.fwd_flag = np.fromiter((mb.motion_forward for mb in mbs), bool, n)
        self.bwd_flag = np.fromiter((mb.motion_backward for mb in mbs), bool, n)
        qcode = np.fromiter((mb.qscale_code for mb in mbs), np.int64, n)
        self.qscale = QUANTISER_SCALE.astype(np.int64)[qcode]

        mvf = np.zeros((n, 2), np.int64)
        mvb = np.zeros((n, 2), np.int64)
        has_f = np.zeros(n, bool)
        has_b = np.zeros(n, bool)
        first_blk = np.zeros(n, np.int64)
        nblk = np.zeros(n, np.int64)
        scans: List[np.ndarray] = []
        slots: List[int] = []
        for i, mb in enumerate(mbs):
            v = mb.mv_fwd
            if v is not None:
                has_f[i] = True
                mvf[i, 0], mvf[i, 1] = v
            v = mb.mv_bwd
            if v is not None:
                has_b[i] = True
                mvb[i, 0], mvb[i, 1] = v
            if mb.intra or mb.pattern:
                first_blk[i] = len(scans)
                c = 0
                for slot, blk in enumerate(mb.blocks):
                    if blk is not None:
                        scans.append(blk)
                        slots.append(slot)
                        c += 1
                nblk[i] = c
        self.mvf_raw, self.mvb_raw = mvf, mvb
        self.has_f, self.has_b = has_f, has_b
        self.first_blk, self.nblk = first_blk, nblk
        self.scans = (
            np.stack(scans).astype(np.int32, copy=False)
            if scans
            else np.zeros((0, 64), np.int32)
        )
        self.slots = np.asarray(slots, np.int64)

        # Staged (plan) view of the motion data, mirroring
        # PlanBuilder._stage: a P "No MC" macroblock gets a zero forward
        # vector; directions follow vector presence, not the coded flags.
        if is_p:
            forced = ~self.fwd_flag
            dir_f = ~self.intra & (has_f | forced)
            eff_f = np.where(forced[:, None], 0, mvf)
        else:
            dir_f = ~self.intra & has_f
            eff_f = mvf
        dir_b = ~self.intra & has_b
        self.mb_dir = np.stack([dir_f, dir_b], axis=1)
        self.mb_mv = np.stack(
            [
                np.where(dir_f[:, None], eff_f, 0),
                np.where(dir_b[:, None], mvb, 0),
            ],
            axis=1,
        )

    def stage_errors(self, frame_width: int, frame_height: int) -> bool:
        """True if any macroblock would make ``PlanBuilder._stage`` raise.

        The caller then replays the scalar staging to surface the exact
        exception; this predicate only has to *agree* with it.
        """
        bad = ~self.intra & ~self.mb_dir[:, 0] & ~self.mb_dir[:, 1]
        for d in range(2):
            mv = self.mb_mv[:, d]
            mvx, mvy = mv[:, 0], mv[:, 1]
            check = self.mb_dir[:, d] & ((mvx != 0) | (mvy != 0))
            if not check.any():
                continue
            x0 = self.mbx * 16 + (mvx >> 1)
            y0 = self.mby * 16 + (mvy >> 1)
            v = (
                (x0 < 0)
                | (y0 < 0)
                | (x0 + 16 + (mvx & 1) > frame_width)
                | (y0 + 16 + (mvy & 1) > frame_height)
            )
            cx, cy = _div2_toward_zero(mvx), _div2_toward_zero(mvy)
            xc = self.mbx * 8 + (cx >> 1)
            yc = self.mby * 8 + (cy >> 1)
            v |= (
                (xc < 0)
                | (yc < 0)
                | (xc + 8 + (cx & 1) > frame_width // 2)
                | (yc + 8 + (cy & 1) > frame_height // 2)
            )
            bad |= check & v
        return bool(bad.any())

    def members(self, tile) -> np.ndarray:
        """Stream-order indices of macroblocks tile ``t`` displays.

        A macroblock intersects ``tile.rect`` iff it lies inside the
        rect's macroblock-aligned expansion — exactly ``tile.coverage``,
        so membership is a box test in macroblock coordinates.
        """
        r = tile.rect
        mask = (
            (self.mbx >= r.x0 // 16)
            & (self.mbx <= (r.x1 - 1) // 16)
            & (self.mby >= r.y0 // 16)
            & (self.mby <= (r.y1 - 1) // 16)
        )
        return np.nonzero(mask)[0]

    def mei_candidates(self):
        """Per direction: (active mask, luma rect columns, chroma rect columns).

        Active means the macroblock carries a nonzero coded vector in that
        direction — the only case ``_add_exchanges`` can emit a transfer
        for.  Rects are computed for every row; garbage where inactive.
        """
        out = []
        for flag, has, mv in (
            (self.fwd_flag, self.has_f, self.mvf_raw),
            (self.bwd_flag, self.has_b, self.mvb_raw),
        ):
            mvx, mvy = mv[:, 0], mv[:, 1]
            act = ~self.intra & flag & has & ((mvx != 0) | (mvy != 0))
            lx0 = self.mbx * 16 + (mvx >> 1)
            ly0 = self.mby * 16 + (mvy >> 1)
            lrect = (lx0, ly0, lx0 + 16 + (mvx & 1), ly0 + 16 + (mvy & 1))
            cx, cy = _div2_toward_zero(mvx), _div2_toward_zero(mvy)
            cx0 = self.mbx * 8 + (cx >> 1)
            cy0 = self.mby * 8 + (cy >> 1)
            crect = (cx0, cy0, cx0 + 8 + (cx & 1), cy0 + 8 + (cy & 1))
            out.append((act, lrect, crect))
        return out


def _contained(rect_cols, idx: np.ndarray, bound: Rect) -> np.ndarray:
    x0, y0, x1, y1 = rect_cols
    return (
        (x0[idx] >= bound.x0)
        & (y0[idx] >= bound.y0)
        & (x1[idx] <= bound.x1)
        & (y1[idx] <= bound.y1)
    )


@dataclass
class _SkipStreak:
    first_address: int
    count: int
    forward: bool
    backward: bool
    mv_fwd: tuple
    mv_bwd: tuple


class MacroblockSplitter:
    """Split coded pictures into per-tile sub-pictures + MEI programs.

    ``collect_content=True`` records a per-column/per-row coded-bit
    profile of each parsed picture in :attr:`last_content` — the load
    proxy the content-aware partition policy feeds on (the bits were
    parsed anyway, so the profile is one bincount per picture).
    """

    def __init__(
        self,
        sequence: SequenceHeader,
        layout: TileLayout,
        collect_content: bool = False,
    ):
        if layout.width != sequence.width or layout.height != sequence.height:
            raise ValueError("layout raster does not match the video raster")
        self.sequence = sequence
        self.layout = layout
        self.collect_content = collect_content
        self.last_content = None  # (col_bits, row_bits) of the last parse
        self.parser = MacroblockParser(sequence)
        self.matrices = QuantMatrices.from_sequence(sequence)
        # parse/plan attribution for the per-process stage_times traces.
        self.stage_times = StageTimes()
        # per-picture split latency distribution for the stats snapshots
        self.split_hist = registry().histogram("splitter.split_s")

    def set_layout(self, layout: TileLayout) -> None:
        """Swap the tile partition (adaptive repartitioning).

        The splitter is stateless across pictures — parsing depends only
        on the sequence header — so a layout swap between pictures is
        safe; the caller (the runtime's layout schedule) guarantees it
        only happens at closed-GOP boundaries.
        """
        if layout.width != self.sequence.width or layout.height != self.sequence.height:
            raise ValueError("layout raster does not match the video raster")
        self.layout = layout

    # ------------------------------------------------------------------ #

    def split(self, unit: PictureUnit, picture_index: int) -> SplitResult:
        t0 = time.perf_counter()
        with self.stage_times.stage("parse"):
            parsed = self.parser.parse_picture(unit.data)
        self._note_content(parsed)
        with self.stage_times.stage("plan"):
            result = self.split_parsed(parsed, picture_index)
        self.stage_times.pictures += 1
        self.split_hist.observe(time.perf_counter() - t0)
        return result

    def split_plans(self, unit: PictureUnit, picture_index: int) -> PlanSplitResult:
        """Parse once, compile each tile's share into a shipped plan."""
        t0 = time.perf_counter()
        with self.stage_times.stage("parse"):
            # Lean parse: plans carry no SPHs, so skip the state snapshots.
            parsed = self.parser.parse_picture(unit.data, lean=True)
        self._note_content(parsed)
        with self.stage_times.stage("plan"):
            result = self.compile_plans(parsed, picture_index)
        self.stage_times.pictures += 1
        self.split_hist.observe(time.perf_counter() - t0)
        return result

    def _note_content(self, parsed: ParsedPicture) -> None:
        if self.collect_content:
            from repro.parallel.partition import content_profile

            self.last_content = content_profile(parsed)

    def compile_plans(
        self, parsed: ParsedPicture, picture_index: int
    ) -> PlanSplitResult:
        """Vectorized plan compilation (output-identical to the reference).

        One Python pass builds a columnar table of the picture
        (:class:`_PictureColumns`); after that, tile membership, plan
        arrays, and the escape test for MEI exchanges are all array
        expressions.  Only the rare macroblocks whose reference rectangle
        actually leaves a tile's coverage fall back to the scalar
        ``_add_exchanges`` — in the same (stream, tile) order the
        reference path visits them, so MEI dedup and program order are
        preserved exactly.
        """
        layout = self.layout
        hdr = parsed.header
        mei = MEIBatch(picture_index, layout.n_tiles)
        items = parsed.items
        if not items:
            empty = PlanBuilder(
                hdr.picture_type,
                parsed.mb_width,
                self.sequence.width,
                self.sequence.height,
                self.matrices,
                hdr.dc_scaler,
            )
            plans = {
                t.tid: TilePlan(
                    picture_index, t.tid, hdr.picture_type, 0, 0, empty.build()
                )
                for t in layout
            }
            return PlanSplitResult(picture_index, plans, mei, hdr.picture_type)

        tab = _PictureColumns(parsed)
        if tab.stage_errors(self.sequence.width, self.sequence.height):
            # Replay the scalar staging to raise the exact exception the
            # reference path would (message depends on the offending MB).
            probe = PlanBuilder(
                hdr.picture_type,
                parsed.mb_width,
                self.sequence.width,
                self.sequence.height,
                self.matrices,
                hdr.dc_scaler,
            )
            for mb in tab.mbs:
                probe._stage(mb)
            raise AssertionError("vectorized staging check disagreed with PlanBuilder")

        cands = tab.mei_candidates()
        esc_items: List[np.ndarray] = []
        esc_tids: List[np.ndarray] = []
        plans: Dict[int, TilePlan] = {}
        for t in layout:
            idx = tab.members(t)
            m = len(idx)
            n_sk = int(tab.skipped[idx].sum())
            plans[t.tid] = TilePlan(
                picture_index=picture_index,
                tile=t.tid,
                picture_type=hdr.picture_type,
                n_coded=m - n_sk,
                n_skipped=n_sk,
                plan=self._tile_plan(parsed, tab, idx),
            )
            if m == 0:
                continue
            cov = t.coverage
            ccov = Rect(cov.x0 // 2, cov.y0 // 2, cov.x1 // 2, cov.y1 // 2)
            esc = np.zeros(m, bool)
            for act, lrect, crect in cands:
                a = act[idx]
                if not a.any():
                    continue
                esc |= a & ~(
                    _contained(lrect, idx, cov) & _contained(crect, idx, ccov)
                )
            if esc.any():
                esc_items.append(idx[esc])
                esc_tids.append(np.full(int(esc.sum()), t.tid, np.int64))

        if esc_items:
            gi = np.concatenate(esc_items)
            gt = np.concatenate(esc_tids)
            # Reference visit order: stream position major, tile id minor.
            for k in np.lexsort((gt, gi)):
                i = int(gi[k])
                self._add_exchanges(
                    mei, items[i], int(gt[k]), int(tab.mbx[i]), int(tab.mby[i])
                )

        return PlanSplitResult(
            picture_index=picture_index,
            plans=plans,
            mei=mei,
            picture_type=hdr.picture_type,
        )

    def _tile_plan(
        self, parsed: ParsedPicture, tab: _PictureColumns, idx: np.ndarray
    ) -> ReconstructionPlan:
        """Assemble one tile's :class:`ReconstructionPlan` from the table.

        Reproduces ``PlanBuilder.build`` exactly: residual rows are
        assigned in stream order over the tile's members, while the
        coefficient stack is partitioned intra-first (stream order within
        each class, slots ascending within a macroblock).
        """
        hdr = parsed.header
        t_intra = tab.intra[idx]
        hb = tab.nblk[idx] > 0
        res_vals = np.where(hb, np.cumsum(hb) - 1, -1)

        def block_meta(mask: np.ndarray) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
            sel = idx[mask]
            c = tab.nblk[sel]
            tot = int(c.sum())
            if tot == 0:
                z = np.zeros(0, np.int64)
                return z, z, z
            ends = np.cumsum(c)
            offs = np.arange(tot, dtype=np.int64) - np.repeat(ends - c, c)
            rows = np.repeat(tab.first_blk[sel], c) + offs
            return rows, np.repeat(tab.qscale[sel], c), np.repeat(res_vals[mask], c)

        rows_i, q_i, r_i = block_meta(t_intra & hb)
        rows_n, q_n, r_n = block_meta(~t_intra & hb)
        rows = np.concatenate([rows_i, rows_n])
        return ReconstructionPlan(
            picture_type=hdr.picture_type,
            mb_width=parsed.mb_width,
            matrices=self.matrices,
            dc_scaler=hdr.dc_scaler,
            scans=tab.scans[rows],
            block_qscale=np.concatenate([q_i, q_n]),
            block_res=np.concatenate([r_i, r_n]),
            block_slot=tab.slots[rows],
            n_intra_blocks=len(rows_i),
            mb_x=tab.mbx[idx],
            mb_y=tab.mby[idx],
            mb_intra=t_intra,
            mb_dir=tab.mb_dir[idx],
            mb_mv=tab.mb_mv[idx],
            mb_res_row=res_vals.astype(np.int64, copy=False),
            n_res=int(hb.sum()),
        )

    def compile_plans_reference(
        self, parsed: ParsedPicture, picture_index: int
    ) -> PlanSplitResult:
        """Scalar reference for :meth:`compile_plans` (differential tests).

        The macroblock-at-a-time path the vectorized compiler must match
        bit for bit — plans, counts, MEI programs, and exceptions.
        """
        layout = self.layout
        hdr = parsed.header
        builders = {
            t.tid: PlanBuilder(
                hdr.picture_type,
                parsed.mb_width,
                self.sequence.width,
                self.sequence.height,
                self.matrices,
                hdr.dc_scaler,
            )
            for t in layout
        }
        counts = {t.tid: [0, 0] for t in layout}  # [coded, skipped]
        mei = MEIBatch(picture_index, layout.n_tiles)

        for item in parsed.items:
            mb = item.mb
            mb_x = mb.address % parsed.mb_width
            mb_y = mb.address // parsed.mb_width
            for t in layout.tiles_for_mb(mb_x, mb_y):
                builders[t].add(mb)
                counts[t][1 if mb.skipped else 0] += 1
                self._add_exchanges(mei, item, t, mb_x, mb_y)

        plans = {
            t.tid: TilePlan(
                picture_index=picture_index,
                tile=t.tid,
                picture_type=hdr.picture_type,
                n_coded=counts[t.tid][0],
                n_skipped=counts[t.tid][1],
                plan=builders[t.tid].build(),
            )
            for t in layout
        }
        return PlanSplitResult(
            picture_index=picture_index,
            plans=plans,
            mei=mei,
            picture_type=hdr.picture_type,
        )

    def split_parsed(self, parsed: ParsedPicture, picture_index: int) -> SplitResult:
        layout = self.layout
        hdr = parsed.header
        subpictures = {
            t.tid: SubPicture(
                picture_index=picture_index,
                tile=t.tid,
                picture_type=hdr.picture_type,
                temporal_reference=hdr.temporal_reference,
                f_code=hdr.f_code,
                mb_width=parsed.mb_width,
                mb_height=parsed.mb_height,
                intra_dc_precision=hdr.intra_dc_precision,
                intra_vlc_format=hdr.intra_vlc_format,
            )
            for t in layout
        }
        mei = MEIBatch(picture_index, layout.n_tiles)

        open_runs: Dict[int, Optional[_Run]] = {t.tid: None for t in layout}
        pending: Dict[int, Optional[_SkipStreak]] = {t.tid: None for t in layout}

        def flush_pending(t: int) -> None:
            streak = pending[t]
            if streak is None:
                return
            subpictures[t].records.append(
                SkipRecord(
                    address=streak.first_address,
                    count=streak.count,
                    forward=streak.forward,
                    backward=streak.backward,
                    mv_fwd=streak.mv_fwd,
                    mv_bwd=streak.mv_bwd,
                )
            )
            pending[t] = None

        def add_pending_skip(t: int, item: ParsedMB) -> None:
            mb = item.mb
            mvf = mb.mv_fwd or (0, 0)
            mvb = mb.mv_bwd or (0, 0)
            streak = pending[t]
            if (
                streak is not None
                and streak.first_address + streak.count == mb.address
                and streak.forward == mb.motion_forward
                and streak.backward == mb.motion_backward
                and streak.mv_fwd == mvf
                and streak.mv_bwd == mvb
            ):
                streak.count += 1
                return
            flush_pending(t)
            pending[t] = _SkipStreak(
                first_address=mb.address,
                count=1,
                forward=mb.motion_forward,
                backward=mb.motion_backward,
                mv_fwd=mvf,
                mv_bwd=mvb,
            )

        def close_run(t: int) -> None:
            run = open_runs[t]
            if run is None:
                return
            open_runs[t] = None
            items = run.items
            # Trailing skipped macroblocks have their increment bits inside
            # a later macroblock that is NOT in this run; ship them as
            # explicit skip records instead.
            last_coded = max(
                i for i, it in enumerate(items) if not it.mb.skipped
            )
            run_items, trailing = items[: last_coded + 1], items[last_coded + 1 :]
            first = run_items[0]
            start = first.mb.body_start
            end = run_items[-1].mb.bit_end
            payload = parsed.data[start // 8 : (end + 7) // 8]
            snap = first.state_before
            sph = SPH(
                address=first.mb.address,
                qscale_code=snap["qscale_code"],
                dc_pred=tuple(snap["dc_pred"]),
                pmv=(tuple(snap["pmv"][0]), tuple(snap["pmv"][1])),
                prev_forward=snap["prev_forward"],
                prev_backward=snap["prev_backward"],
                skip_bits=start % 8,
            )
            subpictures[t].records.append(
                RunRecord(
                    sph=sph,
                    n_coded=sum(1 for it in run_items if not it.mb.skipped),
                    n_total=len(run_items),
                    nbits=end - start,
                    payload=payload,
                )
            )
            for it in trailing:
                add_pending_skip(t, it)

        # ---------------- sort macroblocks into tiles ------------------- #
        for item in parsed.items:
            mb = item.mb
            mb_x = mb.address % parsed.mb_width
            mb_y = mb.address // parsed.mb_width
            tiles = layout.tiles_for_mb(mb_x, mb_y)
            for t in tiles:
                run = open_runs[t]
                contiguous = (
                    run is not None
                    and mb.address == run.next_addr
                    and item.slice_index == run.slice_index
                )
                if mb.skipped:
                    if contiguous:
                        run.items.append(item)
                    else:
                        close_run(t)
                        add_pending_skip(t, item)
                else:
                    if contiguous:
                        run.items.append(item)
                    else:
                        close_run(t)
                        flush_pending(t)
                        open_runs[t] = _Run(
                            row=item.slice_row,
                            slice_index=item.slice_index,
                            items=[item],
                        )
                self._add_exchanges(mei, item, t, mb_x, mb_y)

        for t in layout.tiles:
            close_run(t.tid)
            flush_pending(t.tid)

        return SplitResult(
            picture_index=picture_index,
            subpictures=subpictures,
            mei=mei,
            picture_type=hdr.picture_type,
        )

    # ------------------------------------------------------------------ #

    def _add_exchanges(
        self, mei: MEIBatch, item: ParsedMB, t: int, mb_x: int, mb_y: int
    ) -> None:
        """Pre-calculate remote reference transfers for one macroblock."""
        mb = item.mb
        if mb.intra:
            return
        layout = self.layout
        tile = layout.tile(t)
        cov = tile.coverage
        ccov = Rect(cov.x0 // 2, cov.y0 // 2, cov.x1 // 2, cov.y1 // 2)

        directions = []
        if mb.motion_forward and mb.mv_fwd is not None:
            directions.append((FWD, mb.mv_fwd))
        if mb.motion_backward and mb.mv_bwd is not None:
            directions.append((BWD, mb.mv_bwd))
        # P "No MC" and P skips read the co-located macroblock, which is
        # always inside this tile's coverage — no exchange needed.

        for direction, mv in directions:
            if mv == (0, 0):
                continue  # co-located read, local by construction
            lrect = reference_rect(mb_x, mb_y, mv)
            crect = chroma_reference_rect(mb_x, mb_y, mv)
            if cov.contains(lrect) and ccov.contains(crect):
                continue
            for other in layout.tiles:
                if other.tid == t:
                    continue
                p = other.partition
                lpiece = p.intersect(lrect)
                cp = Rect(p.x0 // 2, p.y0 // 2, -(-p.x1 // 2), -(-p.y1 // 2))
                cpiece = cp.intersect(crect)
                luma_needed = not lpiece.is_empty() and not cov.contains(lpiece)
                chroma_needed = not cpiece.is_empty() and not ccov.contains(cpiece)
                if not luma_needed and not chroma_needed:
                    continue
                mei.add_exchange(
                    other.tid,
                    t,
                    BlockXfer(
                        luma=lpiece if luma_needed else Rect(0, 0, 0, 0),
                        chroma=cpiece if chroma_needed else Rect(0, 0, 0, 0),
                        direction=direction,
                    ),
                )
