"""The paper's contribution: the hierarchical 1-k-(m,n) parallel decoder.

Layers:

- :mod:`repro.parallel.subpicture` — sub-picture streams: byte-copied
  partial slices prefixed by State Propagation Headers (paper §4.3), plus
  skip records for skipped-macroblock runs whose bits travel with another
  tile's macroblocks.
- :mod:`repro.parallel.mei` — pre-calculated macroblock exchange
  instructions (paper §4.2): SEND/RECV lists the splitter derives from
  motion vectors that cross tile boundaries.
- :mod:`repro.parallel.root_splitter` / :mod:`repro.parallel.mb_splitter` —
  the two splitter levels.
- :mod:`repro.parallel.pdecoder` — the per-tile decoder.
- :mod:`repro.parallel.pipeline` — the functional in-process 1-k-(m,n)
  system (the correctness path; bit-exact against the sequential decoder).
- :mod:`repro.parallel.system` — the timed DES system (the performance
  path; reproduces the paper's tables and figures).
- :mod:`repro.parallel.config` — F = min(k/t_s, 1/t_d) configuration rule.
- :mod:`repro.parallel.baselines` / :mod:`repro.parallel.analysis` —
  GOP/picture/slice-level baselines and the Table 1 cost model.
"""

from repro.parallel.pipeline import ParallelDecoder
from repro.parallel.threaded import ThreadedParallelDecoder
from repro.parallel.config import optimal_k, predicted_frame_rate

__all__ = [
    "ParallelDecoder",
    "ThreadedParallelDecoder",
    "optimal_k",
    "predicted_frame_rate",
]
