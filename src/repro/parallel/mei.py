"""Macroblock Exchange Instructions (paper §4.2).

The second-level splitter parses the whole picture, so it knows which
macroblock on which decoder references blocks owned by which other decoder.
For every motion vector that reads outside the destination tile's coverage,
it appends ``SEND(rect, dest)`` to the serving tile's program and
``RECV(rect, src)`` to the destination tile's program.  Decoders execute
all SENDs before decoding (the referenced pixels belong to previously
decoded pictures, so they are available), which

- eliminates demand fetching and server threads, and
- doubles as synchronization: no two decoders drift more than one frame.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Set, Tuple

from repro.mpeg2.motion import Rect

# Reference-picture selector for a transfer: which anchor the pixels come
# from relative to the picture about to be decoded.
FWD = 0  # forward anchor (P and B pictures)
BWD = 1  # backward anchor (B pictures only)

# Serialized size of one instruction: rect (4x2 bytes) + chroma rect (8) +
# direction (1) + peer tile id (2) + opcode (1) = 20 bytes.
INSTRUCTION_BYTES = 20


@dataclass(frozen=True)
class BlockXfer:
    """One reference-pixel rectangle to move between two decoders."""

    luma: Rect
    chroma: Rect
    direction: int  # FWD or BWD

    @property
    def payload_bytes(self) -> int:
        """Transferred pixel bytes: one luma + two chroma planes."""
        return self.luma.area + 2 * self.chroma.area


@dataclass
class MEIProgram:
    """The exchange program one decoder executes before one picture.

    ``sends[i] = (xfer, dest_tile)`` and ``recvs[i] = (xfer, src_tile)``.
    SEND/RECV lists across a picture's programs are exact duals — a
    property-based test asserts it.
    """

    tile: int
    picture_index: int
    sends: List[Tuple[BlockXfer, int]] = field(default_factory=list)
    recvs: List[Tuple[BlockXfer, int]] = field(default_factory=list)

    @property
    def instruction_bytes(self) -> int:
        return INSTRUCTION_BYTES * (len(self.sends) + len(self.recvs))

    @property
    def send_payload_bytes(self) -> int:
        return sum(x.payload_bytes for x, _ in self.sends)

    @property
    def recv_payload_bytes(self) -> int:
        return sum(x.payload_bytes for x, _ in self.recvs)


class MEIBatch:
    """Per-picture collection of MEI programs, one per tile, with dedup."""

    def __init__(self, picture_index: int, n_tiles: int):
        self.picture_index = picture_index
        self.programs: Dict[int, MEIProgram] = {
            t: MEIProgram(tile=t, picture_index=picture_index) for t in range(n_tiles)
        }
        self._seen: Set[Tuple[int, int, BlockXfer]] = set()

    def add_exchange(self, src: int, dest: int, xfer: BlockXfer) -> None:
        """Record that ``dest`` needs ``xfer`` served by ``src``.

        Duplicate requests (several macroblocks referencing the same remote
        rectangle) collapse to a single transfer.
        """
        if src == dest:
            raise ValueError("exchange between a tile and itself")
        key = (src, dest, xfer)
        if key in self._seen:
            return
        self._seen.add(key)
        self.programs[src].sends.append((xfer, dest))
        self.programs[dest].recvs.append((xfer, src))

    def program(self, tile: int) -> MEIProgram:
        return self.programs[tile]

    def total_exchanges(self) -> int:
        return len(self._seen)
