"""Snapshot assembly for the live observability plane.

One process has three metric stores that today only surface in the trace
stream: the flat name→metric registry and per-channel wire counters of
:mod:`repro.perf.telemetry`, and the labeled families of
:mod:`repro.perf.metrics`.  :func:`obs_snapshot` merges all three into a
single JSON document — the payload of the ``VERB_STATS`` service verb and
the ``/metrics.json`` HTTP endpoint — and :func:`snapshot_text` renders
that document as Prometheus text exposition.

:func:`empty_snapshot` is the telemetry-kill-switch shape: a daemon with
``telemetry=False`` answers stats requests with it instead of erroring,
so scrapers keep working against a dark process.
"""

from __future__ import annotations

import time
from typing import Dict, Optional

from repro.perf.metrics import encode_prometheus, families
from repro.perf.telemetry import channel_snapshot, registry


def empty_snapshot() -> Dict:
    """The shape of :func:`obs_snapshot` with every store dark."""
    return {
        "ts": time.time(),
        "families": {},
        "metrics": {"counters": {}, "gauges": {}, "histograms": {}},
        "channels": {},
    }


def obs_snapshot(extra: Optional[Dict] = None) -> Dict:
    """One JSON document with everything this process knows right now.

    ``extra`` keys (session tables, admission state, daemon identity) are
    merged at the top level; they must not collide with the three store
    keys.
    """
    snap = {
        "ts": time.time(),
        "families": families().snapshot(),
        "metrics": registry().snapshot(),
        "channels": channel_snapshot(),
    }
    if extra:
        snap.update(extra)
    return snap


def snapshot_text(snapshot: Dict) -> str:
    """Prometheus text exposition of a snapshot document."""
    return encode_prometheus(snapshot)
