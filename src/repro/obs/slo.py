"""Per-session SLO objectives with multi-window burn-rate evaluation.

A paced wall session has two user-facing failure modes: pictures
presented **late** (decode finished after the pacer's deadline) and
pictures **dropped** (shed by the degradation ladder or forced).  Each is
an objective with an error budget — e.g. "at most 5% of pictures late" —
and the *burn rate* is how fast the session is spending that budget:

    burn = observed_bad_fraction / target_bad_fraction

A burn of 1.0 exactly exhausts the budget; 14x means the budget for a
long horizon is gone in hours.  Following the multi-window SRE pattern,
the tracker evaluates every objective over a **fast** and a **slow**
window and alerts only when *both* exceed the threshold: the slow window
filters one-off blips, the fast window guarantees the problem is still
happening when the alert fires.

The tracker is clock-free (callers pass ``now``) so tests drive it with
a fake clock, and bounded: events older than the slowest window are
pruned on every record.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Deque, Dict, Tuple

#: The objectives a session tracks: name -> attribute of the event.
OBJECTIVES = ("deadline", "drop")


@dataclass(frozen=True)
class SLOConfig:
    """Targets and evaluation windows for one session's objectives."""

    deadline_miss_target: float = 0.05  # tolerated late-picture fraction
    drop_rate_target: float = 0.05  # tolerated dropped-picture fraction
    windows: Tuple[float, float] = (5.0, 30.0)  # (fast, slow) seconds
    burn_alert: float = 1.0  # alert when both windows burn >= this

    def __post_init__(self) -> None:
        if not 0.0 < self.deadline_miss_target <= 1.0:
            raise ValueError("deadline_miss_target must be in (0, 1]")
        if not 0.0 < self.drop_rate_target <= 1.0:
            raise ValueError("drop_rate_target must be in (0, 1]")
        if len(self.windows) < 1 or sorted(self.windows) != list(self.windows):
            raise ValueError("windows must be non-empty and ascending")
        if self.burn_alert <= 0:
            raise ValueError("burn_alert must be positive")

    def target(self, objective: str) -> float:
        return {
            "deadline": self.deadline_miss_target,
            "drop": self.drop_rate_target,
        }[objective]


class SLOTracker:
    """Sliding-window burn-rate evaluator for one session."""

    def __init__(self, config: SLOConfig = SLOConfig()):
        self.config = config
        # (ts, late, dropped) per processed picture; bounded by pruning
        self._events: Deque[Tuple[float, bool, bool]] = deque()
        self.recorded = 0

    def record(self, now: float, late: bool, dropped: bool) -> None:
        """Account one processed picture."""
        self._events.append((now, bool(late), bool(dropped)))
        self.recorded += 1
        horizon = now - self.config.windows[-1]
        while self._events and self._events[0][0] < horizon:
            self._events.popleft()

    def _window_fractions(self, now: float, window: float) -> Dict[str, float]:
        total = late = dropped = 0
        lo = now - window
        for ts, is_late, is_drop in reversed(self._events):
            if ts < lo:
                break
            total += 1
            late += is_late
            dropped += is_drop
        if total == 0:
            return {"deadline": 0.0, "drop": 0.0}
        return {"deadline": late / total, "drop": dropped / total}

    def burn_rates(self, now: float) -> Dict[str, Dict[str, float]]:
        """``{objective: {window_s: burn}}`` for every window."""
        out: Dict[str, Dict[str, float]] = {o: {} for o in OBJECTIVES}
        for w in self.config.windows:
            fr = self._window_fractions(now, w)
            for o in OBJECTIVES:
                out[o][f"{w:g}"] = fr[o] / self.config.target(o)
        return out

    def alerting_burns(self, now: float) -> Dict[str, float]:
        """Per-objective multi-window burn: the *minimum* across windows.

        Both windows must exceed the threshold for the objective to
        alert, so the alertable figure is the smaller of the two.
        """
        rates = self.burn_rates(now)
        return {o: min(rates[o].values()) for o in OBJECTIVES}

    def worst_burn(self, now: float) -> float:
        """The highest alertable burn across objectives (the headline)."""
        burns = self.alerting_burns(now)
        return max(burns.values()) if burns else 0.0

    def should_alert(self, now: float) -> bool:
        return self.worst_burn(now) >= self.config.burn_alert

    def to_dict(self, now: float) -> Dict:
        """JSON-safe burn summary for stats snapshots."""
        return {
            "worst_burn": round(self.worst_burn(now), 4),
            "burns": {
                o: {w: round(b, 4) for w, b in per.items()}
                for o, per in self.burn_rates(now).items()
            },
            "windows_s": list(self.config.windows),
            "targets": {o: self.config.target(o) for o in OBJECTIVES},
            "alerting": self.should_alert(now),
        }


__all__ = ["SLOConfig", "SLOTracker", "OBJECTIVES"]
