"""Optional HTTP ``/metrics`` listener for scrape-based collectors.

The service protocol's ``VERB_STATS`` is the first-class stats surface,
but external collectors speak HTTP.  :class:`MetricsHTTPServer` wraps a
stdlib ``ThreadingHTTPServer`` around a snapshot callable:

- ``GET /metrics``       → Prometheus text exposition
- ``GET /metrics.json``  → the raw JSON snapshot document
- ``GET /healthz``       → ``ok`` (liveness)

Port 0 binds an ephemeral port; the bound port is exposed as ``.port``
and the owning daemon writes it to ``<rundir>/metrics.port`` so scrapers
can rendezvous the same way clients find the service socket.  The
listener is loopback-only by design.
"""

from __future__ import annotations

import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Callable, Dict, Optional

from repro.perf.metrics import encode_prometheus


class MetricsHTTPServer:
    """Serve a snapshot callable over loopback HTTP until :meth:`stop`."""

    def __init__(
        self,
        snapshot_fn: Callable[[], Dict],
        port: int = 0,
        host: str = "127.0.0.1",
    ):
        self._snapshot_fn = snapshot_fn

        outer = self

        class Handler(BaseHTTPRequestHandler):
            def do_GET(self) -> None:  # noqa: N802 - stdlib API name
                try:
                    if self.path.startswith("/metrics.json"):
                        body = (
                            json.dumps(outer._snapshot_fn(), sort_keys=True)
                            + "\n"
                        ).encode()
                        ctype = "application/json"
                    elif self.path.startswith("/metrics"):
                        body = encode_prometheus(outer._snapshot_fn()).encode()
                        ctype = "text/plain; version=0.0.4"
                    elif self.path.startswith("/healthz"):
                        body, ctype = b"ok\n", "text/plain"
                    else:
                        self.send_error(404)
                        return
                except Exception as exc:  # noqa: BLE001 - surface as 500
                    self.send_error(500, str(exc))
                    return
                self.send_response(200)
                self.send_header("Content-Type", ctype)
                self.send_header("Content-Length", str(len(body)))
                self.end_headers()
                self.wfile.write(body)

            def log_message(self, *args) -> None:  # silence stderr spam
                pass

        self._server = ThreadingHTTPServer((host, port), Handler)
        self._server.daemon_threads = True
        self.host, self.port = self._server.server_address[:2]
        self._thread = threading.Thread(
            target=self._server.serve_forever,
            name=f"metrics-http:{self.port}",
            daemon=True,
        )
        self._thread.start()

    @property
    def address(self) -> str:
        return f"http://{self.host}:{self.port}"

    def stop(self, timeout: Optional[float] = 2.0) -> None:
        self._server.shutdown()
        self._server.server_close()
        self._thread.join(timeout=timeout)


__all__ = ["MetricsHTTPServer"]
