"""Live observability plane: snapshots, SLO burn rates, /metrics, top.

Layered over the passive telemetry of :mod:`repro.perf`: where trace
streams answer questions *after* a run, :mod:`repro.obs` answers them
*while the process is alive* — a JSON/Prometheus snapshot of every
counter, gauge, histogram, labeled family and per-channel wire stat
(:func:`obs_snapshot`), multi-window SLO burn-rate evaluation
(:class:`SLOTracker`), an optional HTTP ``/metrics`` listener
(:class:`MetricsHTTPServer`), and the ``repro top`` dashboard renderer.
"""

from repro.obs.plane import empty_snapshot, obs_snapshot, snapshot_text
from repro.obs.slo import SLOConfig, SLOTracker

__all__ = [
    "obs_snapshot",
    "empty_snapshot",
    "snapshot_text",
    "SLOConfig",
    "SLOTracker",
]
