"""``repro top`` — a live fleet health dashboard in the terminal.

Polls the obs plane (``VERB_STATS``) of whatever is listening under the
run directory — a fleet gateway or a single wall-service daemon — and
renders a refreshing table: per-daemon admission headroom and SLO burn,
per-session fps / end-to-end p95 / drop ladder state.  The gateway
answers for the whole fleet from its health-loop cache, so one scrape a
second is all the dashboard costs regardless of fleet size.

``run_top(..., count=1, clear=False)`` is the scriptable form CI uses:
one snapshot, plain text, exit 0 when the scrape parsed.
"""

from __future__ import annotations

import time
from pathlib import Path
from typing import Any, Dict, List


def _fmt_table(header: List[str], rows: List[List[Any]]) -> List[str]:
    widths = [
        max(len(str(h)), *(len(str(r[i])) for r in rows)) if rows else len(str(h))
        for i, h in enumerate(header)
    ]
    out = [
        "  ".join(str(h).ljust(w) for h, w in zip(header, widths)).rstrip(),
        "  ".join("-" * w for w in widths),
    ]
    for r in rows:
        out.append("  ".join(str(c).ljust(w) for c, w in zip(r, widths)).rstrip())
    return out


def _session_row(row: Dict[str, Any], daemon: str) -> List[Any]:
    slo = row.get("slo", {})
    drops = int(row.get("dropped_b", 0)) + int(row.get("dropped_p", 0))
    return [
        row.get("sid", "?"),
        daemon,
        str(row.get("name", "?"))[:14],
        row.get("state", "?"),
        f"{float(row.get('progress', 0.0)):.0%}",
        f"{float(row.get('fps', 0.0)):.1f}",
        f"{float(row.get('latency_p95_ms', 0.0)):.1f}",
        drops,
        row.get("level", 0),
        f"{float(slo.get('worst_burn', 0.0)):.2f}"
        + ("!" if slo.get("alerting") else ""),
    ]


_SESSION_HEADER = [
    "sid", "daemon", "name", "state", "prog", "fps", "p95_ms",
    "drops", "lvl", "burn",
]


def _wall_row(rep: Dict[str, Any], daemon: str) -> List[Any]:
    drops = (
        int(rep.get("dropped_tuning", 0))
        + int(rep.get("dropped_gap", 0))
        + int(rep.get("dropped_late", 0))
    )
    return [
        rep.get("tile", "?"),
        daemon,
        str(rep.get("name", "?"))[:14],
        rep.get("state", "?"),
        rep.get("tuned_at", "-"),
        rep.get("decoded", 0),
        rep.get("displayed", 0),
        drops,
        f"{float(rep.get('lag_s', 0.0) or 0.0) * 1e3:.1f}",
        rep.get("retunes", 0),
    ]


_WALL_HEADER = [
    "tile", "daemon", "name", "state", "tuned@", "dec", "disp",
    "drops", "lag_ms", "retunes",
]


def _daemon_lines(
    name: str,
    snap: Dict[str, Any],
    rows: List[List[Any]],
    wall_rows: List[List[Any]],
) -> str:
    adm = snap.get("admission", {})
    slo = snap.get("slo", {})
    flags = "draining" if snap.get("draining") else "up"
    if not snap:
        flags = "no stats yet"
    line = (
        f"{name:10s} [{flags}]  "
        f"headroom {adm.get('headroom_mpps', '?')} Mpixel/s  "
        f"queued {adm.get('queued', '?')}  "
        f"burn {float(slo.get('worst_burn', 0.0) or 0.0):.2f}x  "
        f"sessions {len(snap.get('sessions', []))}"
    )
    for row in snap.get("sessions", []):
        rows.append(_session_row(row, name))
    for rep in snap.get("wall", {}).get("receivers", []):
        wall_rows.append(_wall_row(rep, name))
    return line


def render(reply: Dict[str, Any]) -> str:
    """One dashboard frame from a VERB_STATS reply document."""
    snap = reply.get("stats", {})
    L: List[str] = []
    role = snap.get("role", "?")
    stamp = time.strftime("%H:%M:%S")
    rows: List[List[Any]] = []
    wall_rows: List[List[Any]] = []
    if role == "gateway":
        fleet = snap.get("fleet", {})
        L.append(
            f"repro top @ {stamp} — fleet: "
            f"{fleet.get('active_demand_mpps', 0.0)}/"
            f"{fleet.get('capacity_mpps', 0.0)} Mpixel/s, "
            f"{fleet.get('daemons_up', 0)} daemon(s) up, "
            f"{fleet.get('failovers', 0)} failover(s), "
            f"worst burn {float(fleet.get('worst_burn', 0.0)):.2f}x"
        )
        for name in sorted(snap.get("daemons", {})):
            L.append(
                "  "
                + _daemon_lines(name, snap["daemons"][name], rows, wall_rows)
            )
    else:
        name = snap.get("name", "daemon")
        L.append(f"repro top @ {stamp} — single daemon")
        L.append("  " + _daemon_lines(name, snap, rows, wall_rows))
    if snap.get("telemetry") is False:
        L.append("  (telemetry disabled: obs plane reports empty snapshots)")
    L.append("")
    if rows:
        L += _fmt_table(_SESSION_HEADER, rows)
    else:
        L.append("(no sessions)")
    if wall_rows:
        L.append("")
        L += _fmt_table(_WALL_HEADER, wall_rows)
    return "\n".join(L)


def run_top(
    rundir: Path,
    transport: str = "unix",
    interval: float = 1.0,
    count: int = 0,
    clear: bool = True,
    out=None,
) -> int:
    """Poll and render until interrupted (or ``count`` frames).

    Returns 0 on a clean exit, 1 when the first scrape fails — so CI can
    assert the obs plane answers with a single ``repro top --once``.
    """
    import sys

    from repro.net.channel import ChannelError, ChannelTimeout
    from repro.service.client import ServiceClient, ServiceError

    out = out or sys.stdout
    shown = 0
    try:
        with ServiceClient(Path(rundir), transport=transport) as client:
            while True:
                try:
                    reply = client.stats()
                except (ChannelError, ChannelTimeout, ServiceError, OSError) as exc:
                    if shown == 0:
                        print(f"stats scrape failed: {exc}", file=sys.stderr)
                        return 1
                    raise
                if clear:
                    print("\x1b[2J\x1b[H", end="", file=out)
                print(render(reply), file=out)
                shown += 1
                if count and shown >= count:
                    return 0
                time.sleep(interval)
    except KeyboardInterrupt:
        return 0
    except (ChannelError, ChannelTimeout, OSError) as exc:
        print(f"connection lost: {exc}", file=sys.stderr)
        return 1


__all__ = ["render", "run_top"]
