"""Binary wire codec for splitter-compiled reconstruction plans.

When plan shipping is on, a second-level splitter parses a picture once,
compiles each tile's share into a :class:`ReconstructionPlan`, and ships
the plan itself — the tile decoder never sees bitstream bytes and never
runs VLC.  This module defines the wire format: a fixed little-endian
header (:data:`PLAN_WIRE_VERSION` first) followed by the plan's arrays as
raw ndarray buffers in a fixed order.

Encoding returns a list of buffers (header ``bytes`` + one ``memoryview``
per array) so the socket layer can write them with no intermediate copy;
decoding wraps the received payload with ``np.frombuffer`` views —
zero-copy, read-only, which is safe because ``execute_plan`` only reads
plan arrays.  Quantiser matrices are *not* shipped: both sides derive them
from the sequence header (``QuantMatrices.from_sequence``), so the decoder
injects its own copy at decode time.

See DESIGN.md §9 for the byte-level layout diagram.
"""

from __future__ import annotations

import struct
import sys
from dataclasses import dataclass
from typing import List, Tuple, Union

import numpy as np

from repro.mpeg2.batch_reconstruct import ReconstructionPlan
from repro.mpeg2.constants import PictureType
from repro.mpeg2.reconstruct import QuantMatrices

#: Bump on any layout change; decoders reject unknown versions.
PLAN_WIRE_VERSION = 1

# version u8 | picture_type u8 | dc_scaler u8 | pad u8 | tile u16 |
# mb_width u16 | picture_index i32 | n_mb u32 | n_blocks u32 |
# n_intra_blocks u32 | n_res u32 | n_coded u32 | n_skipped u32
_HEAD = "<BBBxHHiIIIIII"
_HEAD_SIZE = struct.calcsize(_HEAD)

#: Array order and dtypes on the wire — (attribute, dtype, shape per count).
#: Shapes use -1 for the leading count dimension filled from the header.
_BLOCK_ARRAYS: Tuple[Tuple[str, type, Tuple[int, ...]], ...] = (
    ("scans", np.int32, (-1, 64)),
    ("block_qscale", np.int64, (-1,)),
    ("block_res", np.int64, (-1,)),
    ("block_slot", np.int64, (-1,)),
)
_MB_ARRAYS: Tuple[Tuple[str, type, Tuple[int, ...]], ...] = (
    ("mb_x", np.int64, (-1,)),
    ("mb_y", np.int64, (-1,)),
    ("mb_intra", np.bool_, (-1,)),
    ("mb_dir", np.bool_, (-1, 2)),
    ("mb_mv", np.int64, (-1, 2, 2)),
    ("mb_res_row", np.int64, (-1,)),
)

Buffers = List[Union[bytes, memoryview]]


def _require_little_endian() -> None:
    # The arrays go on the wire in host order; the format pins little
    # endian, which every supported platform satisfies.  Fail loudly
    # rather than silently byte-swap on an exotic host.
    if sys.byteorder != "little":
        raise NotImplementedError("plan wire codec requires a little-endian host")


@dataclass
class TilePlan:
    """One tile's compiled share of a picture, as shipped by a splitter.

    Carries the counts a decoder needs for stats (a plan has no notion of
    skipped macroblocks — they are plain prediction entries) and, after
    decode, how many payload bytes the plan occupied on the wire.
    """

    picture_index: int
    tile: int
    picture_type: PictureType
    n_coded: int
    n_skipped: int
    plan: ReconstructionPlan
    wire_bytes: int = 0


def encode_plan(tp: TilePlan) -> Buffers:
    """Encode to a buffer list: header bytes + one memoryview per array."""
    _require_little_endian()
    p = tp.plan
    head = struct.pack(
        _HEAD,
        PLAN_WIRE_VERSION,
        int(p.picture_type),
        p.dc_scaler,
        tp.tile,
        p.mb_width,
        tp.picture_index,
        p.n_macroblocks,
        p.n_blocks,
        p.n_intra_blocks,
        p.n_res,
        tp.n_coded,
        tp.n_skipped,
    )
    bufs: Buffers = [head]
    for name, dtype, _shape in _BLOCK_ARRAYS + _MB_ARRAYS:
        arr = getattr(p, name)
        if arr.dtype != dtype:
            raise ValueError(f"plan.{name} has dtype {arr.dtype}, wire wants {dtype}")
        bufs.append(memoryview(np.ascontiguousarray(arr)))
    return bufs


def encode_plan_bytes(tp: TilePlan) -> bytes:
    """Single-buffer encoding for in-process queues and tests."""
    return b"".join(bytes(b) for b in encode_plan(tp))


def plan_wire_bound(n_mb: int, n_blocks: int) -> int:
    """Wire size of a plan with the given counts (slab sizing helper)."""
    total = _HEAD_SIZE
    for group, count in ((_BLOCK_ARRAYS, n_blocks), (_MB_ARRAYS, n_mb)):
        for _name, dtype, shape in group:
            n_items = count
            for d in shape[1:]:
                n_items *= d
            total += n_items * np.dtype(dtype).itemsize
    return total


def plan_nbytes(tp: TilePlan) -> int:
    """Exact wire size of ``encode_plan(tp)`` without encoding anything.

    The shm pool path sizes its slab lease with this before writing the
    plan in place with :func:`encode_plan_into`.
    """
    p = tp.plan
    return plan_wire_bound(p.n_macroblocks, p.n_blocks)


def encode_plan_into(tp: TilePlan, buf) -> int:
    """Encode straight into a writable buffer (a pool lease), no wire copy.

    ``buf`` must hold at least :func:`plan_nbytes` bytes.  Returns the
    bytes written.  Layout is identical to :func:`encode_plan`, so the
    consumer decodes the slab with the ordinary :func:`decode_plan`.
    """
    mv = memoryview(buf).cast("B")
    total = 0
    for part in encode_plan(tp):
        b = memoryview(part)
        if b.nbytes == 0:
            continue  # empty arrays cannot be cast (zero in shape)
        if b.format != "B" or b.ndim != 1:
            b = b.cast("B")
        n = b.nbytes
        mv[total : total + n] = b
        total += n
    return total


def buffers_nbytes(bufs: Buffers) -> int:
    return sum(memoryview(b).nbytes for b in bufs)


def decode_plan(
    payload: Union[bytes, memoryview],
    matrices: QuantMatrices,
    offset: int = 0,
) -> Tuple[TilePlan, int]:
    """Decode a plan from ``payload`` at ``offset``.

    Returns the :class:`TilePlan` (its arrays are read-only zero-copy views
    into ``payload``) and the offset one past the plan.
    """
    _require_little_endian()
    (
        version,
        ptype,
        dc_scaler,
        tile,
        mb_width,
        picture_index,
        n_mb,
        n_blocks,
        n_intra,
        n_res,
        n_coded,
        n_skipped,
    ) = struct.unpack_from(_HEAD, payload, offset)
    if version != PLAN_WIRE_VERSION:
        raise ValueError(f"plan wire version {version}, expected {PLAN_WIRE_VERSION}")
    off = offset + _HEAD_SIZE
    fields = {}
    for group, count in ((_BLOCK_ARRAYS, n_blocks), (_MB_ARRAYS, n_mb)):
        for name, dtype, shape in group:
            full = (count,) + shape[1:]
            n_items = count
            for d in shape[1:]:
                n_items *= d
            fields[name] = np.frombuffer(
                payload, dtype=dtype, count=n_items, offset=off
            ).reshape(full)
            off += n_items * np.dtype(dtype).itemsize
    plan = ReconstructionPlan(
        picture_type=PictureType(ptype),
        mb_width=mb_width,
        matrices=matrices,
        dc_scaler=dc_scaler,
        n_intra_blocks=n_intra,
        n_res=n_res,
        **fields,
    )
    tp = TilePlan(
        picture_index=picture_index,
        tile=tile,
        picture_type=PictureType(ptype),
        n_coded=n_coded,
        n_skipped=n_skipped,
        plan=plan,
        wire_bytes=off - offset,
    )
    return tp, off
