"""Header-level syntax elements and their bitstream codecs (§6.2-§6.3).

Each dataclass owns its wire format: ``write(bw)`` emits the element
(including its start code) and ``parse(br)`` consumes it, assuming the start
code has just been read by the caller's scan loop.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from repro.bitstream import BitReader, BitstreamError, BitWriter
from repro.mpeg2.tables import RASTER_OF_SCAN
from repro.mpeg2.constants import (
    EXTENSION_START_CODE,
    FRAME_PICTURE,
    FRAME_RATE_CODES,
    GROUP_START_CODE,
    PICTURE_CODING_EXTENSION_ID,
    PICTURE_START_CODE,
    PROFILE_MAIN_LEVEL_HIGH,
    SEQUENCE_EXTENSION_ID,
    SEQUENCE_HEADER_CODE,
    PictureType,
    frame_rate_code_for,
)


@dataclass
class SequenceHeader:
    """sequence_header + sequence_extension (progressive, 4:2:0).

    ``intra_matrix``/``non_intra_matrix`` carry custom quantization
    matrices (8x8 int arrays, values 1-255); ``None`` means the defaults.
    Custom matrices travel in the header in zigzag order, per §6.2.2.1.
    """

    width: int
    height: int
    frame_rate_code: int = 5  # 30 fps
    bit_rate: int = 0  # in units of 400 bits/s; 0 -> "unspecified" placeholder
    vbv_buffer_size: int = 112
    intra_matrix: Optional[np.ndarray] = None
    non_intra_matrix: Optional[np.ndarray] = None

    def __eq__(self, other: object) -> bool:  # ndarray fields break default eq
        if not isinstance(other, SequenceHeader):
            return NotImplemented
        def _m(x):
            return None if x is None else x.tolist()
        return (
            self.width == other.width
            and self.height == other.height
            and self.frame_rate_code == other.frame_rate_code
            and self.bit_rate == other.bit_rate
            and self.vbv_buffer_size == other.vbv_buffer_size
            and _m(self.intra_matrix) == _m(other.intra_matrix)
            and _m(self.non_intra_matrix) == _m(other.non_intra_matrix)
        )

    @property
    def frame_rate(self) -> float:
        return FRAME_RATE_CODES[self.frame_rate_code]

    @staticmethod
    def _check_matrix(matrix: np.ndarray, name: str) -> np.ndarray:
        m = np.asarray(matrix, dtype=np.int32)
        if m.shape != (8, 8):
            raise ValueError(f"{name} must be 8x8")
        if m.min() < 1 or m.max() > 255:
            raise ValueError(f"{name} values must be in [1, 255]")
        return m

    @staticmethod
    def _write_matrix(bw: BitWriter, matrix: np.ndarray) -> None:
        flat = matrix.reshape(-1)
        for scan_pos in range(64):
            bw.write(int(flat[RASTER_OF_SCAN[scan_pos]]), 8)

    @staticmethod
    def _parse_matrix(br: BitReader) -> np.ndarray:
        flat = np.empty(64, dtype=np.int32)
        for scan_pos in range(64):
            v = br.read(8)
            if v == 0:
                raise BitstreamError("zero entry in quantization matrix")
            flat[RASTER_OF_SCAN[scan_pos]] = v
        return flat.reshape(8, 8)

    @classmethod
    def for_video(cls, width: int, height: int, fps: float = 30.0) -> "SequenceHeader":
        return cls(width=width, height=height, frame_rate_code=frame_rate_code_for(fps))

    def write(self, bw: BitWriter) -> None:
        if self.width >= 1 << 14 or self.height >= 1 << 14:
            raise ValueError("dimensions exceed 14-bit size fields")
        bw.write_start_code(SEQUENCE_HEADER_CODE)
        bw.write(self.width & 0xFFF, 12)
        bw.write(self.height & 0xFFF, 12)
        bw.write(1, 4)  # aspect_ratio_information: square samples
        bw.write(self.frame_rate_code, 4)
        bw.write(max(self.bit_rate, 1) & 0x3FFFF, 18)
        bw.write(1, 1)  # marker bit
        bw.write(self.vbv_buffer_size & 0x3FF, 10)
        bw.write(0, 1)  # constrained_parameters_flag
        if self.intra_matrix is not None:
            bw.write(1, 1)  # load_intra_quantiser_matrix
            self._write_matrix(bw, self._check_matrix(self.intra_matrix, "intra_matrix"))
        else:
            bw.write(0, 1)
        if self.non_intra_matrix is not None:
            bw.write(1, 1)  # load_non_intra_quantiser_matrix
            self._write_matrix(
                bw, self._check_matrix(self.non_intra_matrix, "non_intra_matrix")
            )
        else:
            bw.write(0, 1)
        # sequence_extension
        bw.write_start_code(EXTENSION_START_CODE)
        bw.write(SEQUENCE_EXTENSION_ID, 4)
        bw.write(PROFILE_MAIN_LEVEL_HIGH, 8)
        bw.write(1, 1)  # progressive_sequence
        bw.write(0b01, 2)  # chroma_format 4:2:0
        bw.write((self.width >> 12) & 0x3, 2)
        bw.write((self.height >> 12) & 0x3, 2)
        bw.write((max(self.bit_rate, 1) >> 18) & 0xFFF, 12)
        bw.write(1, 1)  # marker bit
        bw.write((self.vbv_buffer_size >> 10) & 0xFF, 8)
        bw.write(0, 1)  # low_delay
        bw.write(0, 2)  # frame_rate_extension_n
        bw.write(0, 5)  # frame_rate_extension_d

    @classmethod
    def parse(cls, br: BitReader) -> "SequenceHeader":
        """Parse the body following a sequence_header start code."""
        width = br.read(12)
        height = br.read(12)
        br.read(4)  # aspect ratio
        frame_rate_code = br.read(4)
        bit_rate = br.read(18)
        if br.read(1) != 1:
            raise BitstreamError("missing marker in sequence header")
        vbv = br.read(10)
        br.read(1)  # constrained
        intra_matrix = cls._parse_matrix(br) if br.read(1) else None
        non_intra_matrix = cls._parse_matrix(br) if br.read(1) else None
        if br.next_start_code() != EXTENSION_START_CODE:
            raise BitstreamError("sequence_extension missing")
        if br.read(4) != SEQUENCE_EXTENSION_ID:
            raise BitstreamError("expected sequence extension id")
        br.read(8)  # profile/level
        br.read(1)  # progressive
        if br.read(2) != 0b01:
            raise BitstreamError("only 4:2:0 supported")
        width |= br.read(2) << 12
        height |= br.read(2) << 12
        bit_rate |= br.read(12) << 18
        br.read(1)  # marker
        vbv |= br.read(8) << 10
        br.read(1)  # low_delay
        br.read(2)
        br.read(5)
        return cls(
            width=width,
            height=height,
            frame_rate_code=frame_rate_code,
            bit_rate=bit_rate,
            vbv_buffer_size=vbv,
            intra_matrix=intra_matrix,
            non_intra_matrix=non_intra_matrix,
        )


@dataclass
class GOPHeader:
    """group_of_pictures_header (§6.2.2.6)."""

    closed_gop: bool = True
    broken_link: bool = False
    time_code: int = 0  # raw 25-bit field; we do not model SMPTE time

    def write(self, bw: BitWriter) -> None:
        bw.write_start_code(GROUP_START_CODE)
        bw.write(self.time_code & ((1 << 25) - 1), 25)
        bw.write(1 if self.closed_gop else 0, 1)
        bw.write(1 if self.broken_link else 0, 1)

    @classmethod
    def parse(cls, br: BitReader) -> "GOPHeader":
        time_code = br.read(25)
        closed = bool(br.read(1))
        broken = bool(br.read(1))
        return cls(closed_gop=closed, broken_link=broken, time_code=time_code)


@dataclass
class PictureHeader:
    """picture_header + picture_coding_extension (frame pictures).

    ``f_code[s][t]``: s=0 forward / s=1 backward, t=0 horizontal /
    t=1 vertical.  Value 15 means "unused" for the directions a picture
    type does not carry.

    ``intra_dc_precision`` is 8, 9, or 10 bits; the DC quantizer step is
    ``2**(11 - precision)`` and the DC predictor reset value is
    ``2**(precision - 1)`` (§7.2.1).
    """

    temporal_reference: int
    picture_type: PictureType
    f_code: tuple[tuple[int, int], tuple[int, int]] = ((15, 15), (15, 15))
    vbv_delay: int = 0xFFFF
    intra_dc_precision: int = 8
    intra_vlc_format: int = 0  # 0 = table B.14, 1 = table B.15 for intra AC

    def f_code_for(self, direction: int, component: int) -> int:
        return self.f_code[direction][component]

    @property
    def dc_scaler(self) -> int:
        return 1 << (11 - self.intra_dc_precision)

    @property
    def dc_reset(self) -> int:
        return 1 << (self.intra_dc_precision - 1)

    def write(self, bw: BitWriter) -> None:
        bw.write_start_code(PICTURE_START_CODE)
        bw.write(self.temporal_reference & 0x3FF, 10)
        bw.write(int(self.picture_type), 3)
        bw.write(self.vbv_delay & 0xFFFF, 16)
        if self.picture_type in (PictureType.P, PictureType.B):
            bw.write(0, 1)  # full_pel_forward_vector (MPEG-2: must be 0)
            bw.write(7, 3)  # forward_f_code placeholder (MPEG-2: 111)
        if self.picture_type == PictureType.B:
            bw.write(0, 1)  # full_pel_backward_vector
            bw.write(7, 3)  # backward_f_code placeholder
        bw.write(0, 1)  # extra_bit_picture
        # picture_coding_extension
        bw.write_start_code(EXTENSION_START_CODE)
        bw.write(PICTURE_CODING_EXTENSION_ID, 4)
        if not 8 <= self.intra_dc_precision <= 10:
            raise ValueError("intra_dc_precision must be 8, 9, or 10")
        for s in range(2):
            for t in range(2):
                bw.write(self.f_code[s][t], 4)
        bw.write(self.intra_dc_precision - 8, 2)
        bw.write(FRAME_PICTURE, 2)
        bw.write(0, 1)  # top_field_first
        bw.write(1, 1)  # frame_pred_frame_dct
        bw.write(0, 1)  # concealment_motion_vectors
        bw.write(0, 1)  # q_scale_type
        bw.write(self.intra_vlc_format & 1, 1)
        bw.write(0, 1)  # alternate_scan
        bw.write(0, 1)  # repeat_first_field
        bw.write(1, 1)  # chroma_420_type
        bw.write(1, 1)  # progressive_frame
        bw.write(0, 1)  # composite_display_flag

    @classmethod
    def parse(cls, br: BitReader) -> "PictureHeader":
        temporal_reference = br.read(10)
        ptype = PictureType(br.read(3))
        vbv_delay = br.read(16)
        if ptype in (PictureType.P, PictureType.B):
            br.read(1)
            br.read(3)
        if ptype == PictureType.B:
            br.read(1)
            br.read(3)
        if br.read(1):
            raise BitstreamError("extra_information_picture unsupported")
        if br.next_start_code() != EXTENSION_START_CODE:
            raise BitstreamError("picture_coding_extension missing")
        if br.read(4) != PICTURE_CODING_EXTENSION_ID:
            raise BitstreamError("expected picture coding extension id")
        f_code = tuple(
            tuple(br.read(4) for _ in range(2)) for _ in range(2)
        )
        dc_precision = br.read(2) + 8
        if dc_precision > 10:
            raise BitstreamError("intra_dc_precision 11 unsupported")
        if br.read(2) != FRAME_PICTURE:
            raise BitstreamError("only frame pictures supported")
        br.read(1)  # top_field_first
        if br.read(1) != 1:
            raise BitstreamError("only frame_pred_frame_dct=1 supported")
        if br.read(1):
            raise BitstreamError("concealment motion vectors unsupported")
        br.read(1)  # q_scale_type
        intra_vlc_format = br.read(1)
        if br.read(1):
            raise BitstreamError("alternate_scan unsupported")
        br.read(1)  # repeat_first_field
        br.read(1)  # chroma_420_type
        br.read(1)  # progressive_frame
        br.read(1)  # composite_display_flag
        return cls(
            temporal_reference=temporal_reference,
            picture_type=ptype,
            f_code=f_code,  # type: ignore[arg-type]
            vbv_delay=vbv_delay,
            intra_dc_precision=dc_precision,
            intra_vlc_format=intra_vlc_format,
        )
