"""Motion estimation, half-pel compensation, and reference-region analysis.

The compensation path (§7.6) is exercised by every decoder; the estimation
path only by the encoder.  `reference_rect` is the analysis the second-level
splitter runs to pre-calculate remote macroblock exchanges (paper §4.2): it
maps a macroblock + motion vector to the pixel rectangle the prediction
reads in the reference frame, which the MEI builder intersects with tile
rectangles.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from repro.mpeg2.constants import MB_SIZE
from repro.mpeg2.frames import Frame


@dataclass(frozen=True)
class Rect:
    """Half-open pixel rectangle [x0, x1) x [y0, y1) in luma coordinates."""

    x0: int
    y0: int
    x1: int
    y1: int

    @property
    def width(self) -> int:
        return self.x1 - self.x0

    @property
    def height(self) -> int:
        return self.y1 - self.y0

    @property
    def area(self) -> int:
        return max(0, self.width) * max(0, self.height)

    def intersect(self, other: "Rect") -> "Rect":
        return Rect(
            max(self.x0, other.x0),
            max(self.y0, other.y0),
            min(self.x1, other.x1),
            min(self.y1, other.y1),
        )

    def is_empty(self) -> bool:
        return self.x1 <= self.x0 or self.y1 <= self.y0

    def contains(self, other: "Rect") -> bool:
        return (
            other.x0 >= self.x0
            and other.y0 >= self.y0
            and other.x1 <= self.x1
            and other.y1 <= self.y1
        )


def mb_rect(mb_x: int, mb_y: int) -> Rect:
    """The 16x16 luma rectangle of macroblock (mb_x, mb_y)."""
    return Rect(mb_x * MB_SIZE, mb_y * MB_SIZE, (mb_x + 1) * MB_SIZE, (mb_y + 1) * MB_SIZE)


def reference_rect(mb_x: int, mb_y: int, mv: Tuple[int, int]) -> Rect:
    """Luma rectangle read by a 16x16 prediction with half-pel MV ``mv``.

    A fractional component widens the read by one sample for interpolation.
    The corresponding chroma read is always contained in this rectangle
    mapped to chroma coordinates (chroma MV = luma MV / 2 with the same
    rounding the compensator uses), so MEI exchanges sized from this
    rectangle cover both planes.
    """
    mvx, mvy = mv
    x0 = mb_x * MB_SIZE + (mvx >> 1)
    y0 = mb_y * MB_SIZE + (mvy >> 1)
    w = MB_SIZE + (1 if mvx & 1 else 0)
    h = MB_SIZE + (1 if mvy & 1 else 0)
    return Rect(x0, y0, x0 + w, y0 + h)


def chroma_reference_rect(mb_x: int, mb_y: int, mv: Tuple[int, int]) -> Rect:
    """Chroma-plane rectangle read by a macroblock prediction (4:2:0)."""
    cmvx, cmvy = chroma_mv(mv)
    x0 = mb_x * 8 + (cmvx >> 1)
    y0 = mb_y * 8 + (cmvy >> 1)
    w = 8 + (1 if cmvx & 1 else 0)
    h = 8 + (1 if cmvy & 1 else 0)
    return Rect(x0, y0, x0 + w, y0 + h)


# ---------------------------------------------------------------------- #
# half-pel prediction
# ---------------------------------------------------------------------- #


def predict_plane(
    plane: np.ndarray, x: int, y: int, w: int, h: int, mvx: int, mvy: int
) -> np.ndarray:
    """Half-pel motion-compensated prediction from ``plane``.

    ``(x, y, w, h)`` is the destination rectangle; ``(mvx, mvy)`` is the
    motion vector in half-sample units of *this plane's* resolution.
    Returns int32 samples.  The referenced region must lie inside the plane
    (the encoder clamps vectors to guarantee this).
    """
    ix, iy = mvx >> 1, mvy >> 1
    fx, fy = mvx & 1, mvy & 1
    x0, y0 = x + ix, y + iy
    ph, pw = plane.shape
    if x0 < 0 or y0 < 0 or x0 + w + (1 if fx else 0) > pw or y0 + h + (1 if fy else 0) > ph:
        raise ValueError(
            f"motion vector ({mvx},{mvy}) reads outside plane at ({x},{y})"
        )
    region = plane[y0 : y0 + h + fy, x0 : x0 + w + fx].astype(np.int32)
    if fx == 0 and fy == 0:
        return region
    if fx and not fy:
        return (region[:, :-1] + region[:, 1:] + 1) >> 1
    if fy and not fx:
        return (region[:-1, :] + region[1:, :] + 1) >> 1
    return (
        region[:-1, :-1] + region[:-1, 1:] + region[1:, :-1] + region[1:, 1:] + 2
    ) >> 2


def chroma_mv(mv: Tuple[int, int]) -> Tuple[int, int]:
    """Luma half-pel MV -> chroma half-pel MV (§7.6.3.7, 4:2:0 frame)."""
    return (mv[0] // 2 if mv[0] >= 0 else -((-mv[0]) // 2),
            mv[1] // 2 if mv[1] >= 0 else -((-mv[1]) // 2))


def predict_macroblock(
    fwd: Optional[Frame],
    bwd: Optional[Frame],
    mb_x: int,
    mb_y: int,
    mv_fwd: Optional[Tuple[int, int]],
    mv_bwd: Optional[Tuple[int, int]],
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Form the full prediction for one macroblock (Y 16x16, Cb/Cr 8x8).

    Bidirectional predictions are the rounded average of the two directions
    (§7.6.7.1).  Returns int32 planes.
    """

    def one(frame: Frame, mv: Tuple[int, int]):
        cmv = chroma_mv(mv)
        py = predict_plane(frame.y, mb_x * 16, mb_y * 16, 16, 16, mv[0], mv[1])
        pcb = predict_plane(frame.cb, mb_x * 8, mb_y * 8, 8, 8, cmv[0], cmv[1])
        pcr = predict_plane(frame.cr, mb_x * 8, mb_y * 8, 8, 8, cmv[0], cmv[1])
        return py, pcb, pcr

    if mv_fwd is not None and mv_bwd is not None:
        assert fwd is not None and bwd is not None
        fy, fcb, fcr = one(fwd, mv_fwd)
        by, bcb, bcr = one(bwd, mv_bwd)
        return ((fy + by + 1) >> 1, (fcb + bcb + 1) >> 1, (fcr + bcr + 1) >> 1)
    if mv_fwd is not None:
        assert fwd is not None
        return one(fwd, mv_fwd)
    if mv_bwd is not None:
        assert bwd is not None
        return one(bwd, mv_bwd)
    raise ValueError("prediction requested with no motion vectors")


# ---------------------------------------------------------------------- #
# motion estimation (encoder only)
# ---------------------------------------------------------------------- #


def estimate_mv(
    current: np.ndarray,
    reference: np.ndarray,
    mb_x: int,
    mb_y: int,
    search_range: int,
    half_pel: bool = True,
) -> Tuple[int, int]:
    """Estimate the best half-pel MV for macroblock (mb_x, mb_y).

    Full-search SAD over +/-``search_range`` integer offsets (vectorized via
    a sliding-window view), then one half-pel refinement step.  Candidates
    whose reads would leave the reference are excluded, so the returned MV
    is always legal for :func:`predict_plane`.
    """
    h, w = reference.shape
    bx, by = mb_x * MB_SIZE, mb_y * MB_SIZE
    block = current[by : by + MB_SIZE, bx : bx + MB_SIZE].astype(np.int32)

    # Clip the integer search window to the reference bounds.
    lo_x = max(-search_range, -bx)
    hi_x = min(search_range, w - MB_SIZE - bx)
    lo_y = max(-search_range, -by)
    hi_y = min(search_range, h - MB_SIZE - by)
    if lo_x > hi_x or lo_y > hi_y:
        return (0, 0)

    win = reference[
        by + lo_y : by + hi_y + MB_SIZE,
        bx + lo_x : bx + hi_x + MB_SIZE,
    ].astype(np.int32)
    view = np.lib.stride_tricks.sliding_window_view(win, (MB_SIZE, MB_SIZE))
    sads = np.abs(view - block).sum(axis=(2, 3))
    # Bias toward the zero vector on ties for cheaper coding.
    iy, ix = np.unravel_index(np.argmin(sads), sads.shape)
    best = (lo_x + int(ix), lo_y + int(iy))
    if 0 >= lo_x and 0 <= hi_x and 0 >= lo_y and 0 <= hi_y:
        if sads[-lo_y, -lo_x] <= sads[iy, ix]:
            best = (0, 0)

    mvx, mvy = best[0] * 2, best[1] * 2
    if not half_pel:
        return (mvx, mvy)

    best_sad = None
    best_mv = (mvx, mvy)
    for dy in (-1, 0, 1):
        for dx in (-1, 0, 1):
            cand = (mvx + dx, mvy + dy)
            try:
                pred = predict_plane(
                    reference, bx, by, MB_SIZE, MB_SIZE, cand[0], cand[1]
                )
            except ValueError:
                continue
            sad = int(np.abs(pred - block).sum())
            if best_sad is None or sad < best_sad:
                best_sad, best_mv = sad, cand
    return best_mv
