"""MPEG-2 systems layer: program-stream multiplexing (ISO 13818-1 subset).

The paper's overview (§2) notes MPEG-2 is a family: video, audio, and "a
system layer standard for multiplexing".  Real capture pipelines hand the
wall a *program stream*; this module packs/unpacks the video elementary
stream so the root splitter can be fed either way:

- :func:`mux_program_stream` wraps a video ES into packs of PES packets
  with SCR timestamps and per-picture PTS;
- :func:`demux_program_stream` recovers the elementary stream (and the
  PTS list) from a program stream.

Subset: one video elementary stream (stream_id 0xE0), no audio or padding
streams, no system header rate enforcement.  The wire format of what *is*
emitted follows 13818-1 (pack headers with 42-bit SCR, MPEG-2 PES headers
with 33-bit PTS), so the parsing side is tolerant of real-world streams'
framing.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro.bitstream import BitReader, BitstreamError, BitWriter, find_start_codes
from repro.mpeg2.constants import PICTURE_START_CODE

PACK_START_CODE = 0xBA
SYSTEM_HEADER_CODE = 0xBB
PROGRAM_END_CODE = 0xB9
VIDEO_STREAM_ID = 0xE0

#: 90 kHz system clock (PTS/SCR base units)
SYSTEM_CLOCK = 90_000


@dataclass
class PESPacket:
    stream_id: int
    payload: bytes
    pts: Optional[int] = None  # 33-bit, 90 kHz units


@dataclass
class ProgramStream:
    """Demux result."""

    video_es: bytes
    packets: List[PESPacket] = field(default_factory=list)
    scrs: List[int] = field(default_factory=list)

    @property
    def pts_list(self) -> List[int]:
        return [p.pts for p in self.packets if p.pts is not None]


# ---------------------------------------------------------------------- #
# muxing
# ---------------------------------------------------------------------- #


def _write_scr(bw: BitWriter, scr_base: int, scr_ext: int = 0) -> None:
    bw.write(0b01, 2)
    bw.write((scr_base >> 30) & 0x7, 3)
    bw.write(1, 1)
    bw.write((scr_base >> 15) & 0x7FFF, 15)
    bw.write(1, 1)
    bw.write(scr_base & 0x7FFF, 15)
    bw.write(1, 1)
    bw.write(scr_ext & 0x1FF, 9)
    bw.write(1, 1)


def _write_pack_header(bw: BitWriter, scr_base: int, mux_rate: int) -> None:
    bw.write_start_code(PACK_START_CODE)
    _write_scr(bw, scr_base)
    bw.write(mux_rate & 0x3FFFFF, 22)
    bw.write(1, 1)
    bw.write(1, 1)
    bw.write(0x1F, 5)  # reserved
    bw.write(0, 3)  # pack_stuffing_length


def _write_pes(bw: BitWriter, packet: PESPacket) -> None:
    header_data = BitWriter()
    if packet.pts is not None:
        header_data.write(0b0010, 4)
        header_data.write((packet.pts >> 30) & 0x7, 3)
        header_data.write(1, 1)
        header_data.write((packet.pts >> 15) & 0x7FFF, 15)
        header_data.write(1, 1)
        header_data.write(packet.pts & 0x7FFF, 15)
        header_data.write(1, 1)
    hdata = header_data.getvalue()

    pes_len = 3 + len(hdata) + len(packet.payload)
    if pes_len > 0xFFFF:
        raise ValueError("PES packet too large; reduce chunk size")
    bw.write_start_code(packet.stream_id)
    bw.write(pes_len, 16)
    bw.write(0b10, 2)  # MPEG-2 marker
    bw.write(0, 2)  # scrambling
    bw.write(0, 1)  # priority
    bw.write(1, 1)  # data_alignment (picture-aligned chunks)
    bw.write(0, 1)  # copyright
    bw.write(0, 1)  # original
    bw.write(0b10 if packet.pts is not None else 0b00, 2)  # PTS_DTS_flags
    bw.write(0, 6)  # ESCR..extension flags
    bw.write(len(hdata), 8)
    bw.align()
    bw.write_bytes(hdata)
    bw.write_bytes(packet.payload)


def mux_program_stream(
    video_es: bytes,
    fps: float = 30.0,
    chunk_size: int = 2048,
    mux_rate: int = 2_000_000 // 400,
) -> bytes:
    """Pack a video elementary stream into a program stream.

    Each coded picture starts a new PES packet carrying its PTS (decode
    order index / fps); large pictures continue in PTS-less packets of
    ``chunk_size`` bytes.  One pack per PES packet keeps the mux simple.
    """
    if not video_es:
        raise ValueError("empty elementary stream")
    # picture-aligned chunking
    cuts = [off for off, code in find_start_codes(video_es) if code == PICTURE_START_CODE]
    boundaries = sorted(set([0] + cuts + [len(video_es)]))
    ticks_per_frame = int(round(SYSTEM_CLOCK / fps))

    bw = BitWriter()
    pic_index = 0
    for b0, b1 in zip(boundaries, boundaries[1:]):
        region = video_es[b0:b1]
        is_picture = b0 in cuts
        pts = pic_index * ticks_per_frame if is_picture else None
        if is_picture:
            pic_index += 1
        for off in range(0, len(region), chunk_size):
            chunk = region[off : off + chunk_size]
            _write_pack_header(bw, scr_base=(pts or 0), mux_rate=mux_rate)
            _write_pes(
                bw,
                PESPacket(
                    stream_id=VIDEO_STREAM_ID,
                    payload=chunk,
                    pts=pts if off == 0 else None,
                ),
            )
    bw.write_start_code(PROGRAM_END_CODE)
    return bw.getvalue()


# ---------------------------------------------------------------------- #
# demuxing
# ---------------------------------------------------------------------- #


def _read_scr(br: BitReader) -> int:
    if br.read(2) != 0b01:
        raise BitstreamError("bad SCR marker bits")
    base = br.read(3) << 30
    br.read(1)
    base |= br.read(15) << 15
    br.read(1)
    base |= br.read(15)
    br.read(1)
    br.read(9)  # extension
    br.read(1)
    return base


def _read_pts(br: BitReader) -> int:
    if br.read(4) != 0b0010:
        raise BitstreamError("bad PTS prefix")
    pts = br.read(3) << 30
    br.read(1)
    pts |= br.read(15) << 15
    br.read(1)
    pts |= br.read(15)
    br.read(1)
    return pts


def demux_program_stream(data: bytes) -> ProgramStream:
    """Recover the video elementary stream from a program stream."""
    br = BitReader(data)
    out = ProgramStream(video_es=b"")
    chunks: List[bytes] = []
    while True:
        code = br.next_start_code()
        if code is None or code == PROGRAM_END_CODE:
            break
        if code == PACK_START_CODE:
            scr = _read_scr(br)
            br.read(22)  # mux rate
            br.read(2)
            br.read(5)
            stuffing = br.read(3)
            br.skip(8 * stuffing)
            out.scrs.append(scr)
        elif code == SYSTEM_HEADER_CODE:
            length = br.read(16)
            br.skip(8 * length)
        elif 0xC0 <= code <= 0xEF:  # audio/video PES stream ids
            length = br.read(16)
            end_bit = br.pos + 8 * length
            if br.read(2) != 0b10:
                raise BitstreamError("not an MPEG-2 PES header")
            br.read(6)  # scrambling..original
            pts_dts = br.read(2)
            br.read(6)
            hlen = br.read(8)
            hdr_end = br.pos + 8 * hlen
            pts = None
            if pts_dts in (0b10, 0b11):
                pts = _read_pts(br)
            br.pos = hdr_end
            payload_bytes = (end_bit - br.pos) // 8
            payload = br.data[br.byte_pos : br.byte_pos + payload_bytes]
            br.pos = end_bit
            pkt = PESPacket(stream_id=code, payload=payload, pts=pts)
            out.packets.append(pkt)
            if code == VIDEO_STREAM_ID:
                chunks.append(payload)
        # other codes (e.g. stray video codes inside payloads are never
        # seen: payloads are skipped as bytes above)
    out.video_es = b"".join(chunks)
    if not out.video_es:
        raise BitstreamError("no video PES packets found")
    return out
