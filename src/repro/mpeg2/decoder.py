"""Reference sequential MPEG-2 decoder.

This is the correctness oracle: the parallel 1-k-(m,n) system must produce
bit-exactly the frames this decoder produces.  It is deliberately built from
the same parts the parallel system uses — :class:`PictureScanner` for
picture boundaries, :class:`MacroblockParser` for the VLC layer, and
:mod:`repro.mpeg2.reconstruct` for pixels — so a mismatch isolates a bug in
the *parallel* machinery (SPH, MEI, ordering), not in duplicated codec code.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, List, Optional

from repro.mpeg2.batch_reconstruct import PlanBuilder, execute_plan
from repro.mpeg2.constants import PictureType
from repro.mpeg2.frames import Frame
from repro.mpeg2.parser import MacroblockParser, ParsedPicture, PictureScanner
from repro.mpeg2.reconstruct import QuantMatrices, reconstruct_macroblock
from repro.mpeg2.structures import SequenceHeader
from repro.perf.metrics import StageTimes


@dataclass
class DecodeStats:
    """Per-picture accounting used by the cost-model calibration."""

    picture_types: List[PictureType] = field(default_factory=list)
    coded_macroblocks: List[int] = field(default_factory=list)
    skipped_macroblocks: List[int] = field(default_factory=list)
    picture_bytes: List[int] = field(default_factory=list)


class Decoder:
    """Decode a full stream; frames come out in display order.

    ``batch_reconstruct`` selects the two-phase batched reconstruction
    engine (the default); ``False`` keeps the per-macroblock reference
    path.  Both are bit-identical — the flag exists so the reference
    implementation stays runnable for golden comparisons and debugging.
    """

    def __init__(self, batch_reconstruct: bool = True) -> None:
        self.sequence: Optional[SequenceHeader] = None
        self.stats = DecodeStats()
        self.batch_reconstruct = batch_reconstruct
        self.stage_times = StageTimes()

    def decode(self, stream: bytes) -> List[Frame]:
        return list(self.iter_decode(stream))

    def decode_from_gop(self, stream: bytes, gop_index: int) -> List[Frame]:
        """Random access: decode starting at the ``gop_index``-th GOP.

        Closed GOPs are self-contained (§6.3.8), so seeking to one needs no
        earlier reference data — the property players and the paper's
        GOP-level baseline rely on.
        """
        return list(self.iter_decode(stream, start_gop=gop_index))

    @staticmethod
    def seek_points(stream: bytes) -> List[int]:
        """Coded-picture indices where GOPs begin (the seekable instants)."""
        _, pictures = PictureScanner(stream).scan()
        return [u.coded_index for u in pictures if u.new_gop]

    def iter_decode(self, stream: bytes, start_gop: int = 0) -> Iterator[Frame]:
        """Decode lazily, yielding frames in display order."""
        scanner = PictureScanner(stream)
        sequence, pictures = scanner.scan()
        self.sequence = sequence
        if start_gop:
            starts = [u.coded_index for u in pictures if u.new_gop]
            if start_gop >= len(starts):
                raise ValueError(
                    f"stream has {len(starts)} GOPs, cannot seek to {start_gop}"
                )
            first = pictures[starts[start_gop]]
            if first.gop is not None and not first.gop.closed_gop:
                raise ValueError("cannot seek into an open GOP")
            pictures = pictures[starts[start_gop] :]
        parser = MacroblockParser(sequence)
        self.stats = DecodeStats()
        self.stage_times = StageTimes()
        timers = self.stage_times

        held: Optional[Frame] = None  # most recent anchor, not yet displayed
        prev_anchor: Optional[Frame] = None
        for unit in pictures:
            with timers.stage("parse"):
                parsed = parser.parse_picture(unit.data)
            timers.pictures += 1
            self.stats.picture_types.append(parsed.header.picture_type)
            self.stats.coded_macroblocks.append(parsed.n_coded)
            self.stats.skipped_macroblocks.append(parsed.n_skipped)
            self.stats.picture_bytes.append(len(unit.data))

            if parsed.header.picture_type == PictureType.B:
                frame = reconstruct_picture(
                    parsed, sequence, prev_anchor, held,
                    batch=self.batch_reconstruct, timers=timers,
                )
                yield frame
            else:
                fwd = held  # anchor available when this picture was coded
                frame = reconstruct_picture(
                    parsed,
                    sequence,
                    fwd if parsed.header.picture_type == PictureType.P else None,
                    None,
                    batch=self.batch_reconstruct,
                    timers=timers,
                )
                if held is not None:
                    yield held
                prev_anchor = held
                held = frame
        if held is not None:
            yield held


def reconstruct_picture(
    parsed: ParsedPicture,
    sequence: SequenceHeader,
    fwd: Optional[Frame],
    bwd: Optional[Frame],
    batch: bool = True,
    timers: Optional[StageTimes] = None,
) -> Frame:
    """Reconstruct every macroblock of a parsed picture into a new frame.

    ``batch=True`` runs the two-phase batched engine
    (:mod:`repro.mpeg2.batch_reconstruct`); ``batch=False`` runs the
    per-macroblock reference path.  Both produce bit-identical frames.
    """
    ptype = parsed.header.picture_type
    if ptype == PictureType.P and fwd is None:
        raise ValueError("P-picture without forward reference")
    if ptype == PictureType.B and (fwd is None or bwd is None):
        raise ValueError("B-picture without two references")
    out = Frame.blank(sequence.width, sequence.height)
    matrices = QuantMatrices.from_sequence(sequence)
    timers = timers if timers is not None else StageTimes()
    seen = set()
    if batch:
        with timers.stage("plan"):
            builder = PlanBuilder(
                ptype,
                parsed.mb_width,
                sequence.width,
                sequence.height,
                matrices,
                parsed.header.dc_scaler,
            )
            for item in parsed.items:
                seen.add(item.mb.address)
                builder.add(item.mb)
            plan = builder.build()
        with timers.stage("execute"):
            execute_plan(plan, out, fwd, bwd)
    else:
        with timers.stage("execute"):
            for item in parsed.items:
                seen.add(item.mb.address)
                reconstruct_macroblock(
                    item.mb, ptype, out, fwd, bwd, parsed.mb_width, matrices,
                    parsed.header.dc_scaler,
                )
    expected = parsed.mb_width * parsed.mb_height
    if len(seen) != expected:
        missing = expected - len(seen)
        raise ValueError(f"picture is missing {missing} macroblocks")
    return out


def decode_stream(stream: bytes) -> List[Frame]:
    """Convenience wrapper: decode ``stream`` to display-order frames."""
    return Decoder().decode(stream)
