"""Two-phase batched picture reconstruction (parse -> plan -> execute).

The per-macroblock reference path (:mod:`repro.mpeg2.reconstruct`) pays a
separate numpy dispatch, ``scipy.fft.idctn``, ``rint``, and ``clip`` for
every 8x8 block, so a picture reconstructs at Python-loop speed.  This
module restructures the work the way a hardware decoder's memory system
does: the entropy phase emits a flat *reconstruction plan* — coefficient
stacks, per-block quantiser scales, intra/inter flags, motion vectors, and
destination offsets — and the execute phase then runs **one** dequantize +
**one** IDCT over the whole ``(N, 8, 8)`` coefficient stack, forms motion
compensated predictions with array-level gathers grouped by half-pel
fraction, and scatters finished macroblock tiles into the frame planes with
slice assignments.

Every arithmetic step reproduces the reference path operation for
operation (same dtypes, same rounding, same clip order), so the output is
bit-identical — the property the golden and hypothesis tests assert.

Entropy decoding itself stays serial: VLC parsing is inherently sequential
(each codeword's position depends on the previous one), which is exactly
why the paper's splitter hierarchy parallelizes *across* pictures while
this engine vectorizes *within* one.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from repro.mpeg2 import dct
from repro.mpeg2.constants import PictureType
from repro.mpeg2.frames import Frame
from repro.mpeg2.macroblock import Macroblock
from repro.mpeg2.reconstruct import DEFAULT_MATRICES, QuantMatrices
from repro.mpeg2.tables import QUANTISER_SCALE

# Prediction direction indices within plan arrays.
_FWD, _BWD = 0, 1


@dataclass
class ReconstructionPlan:
    """Flat, array-typed description of one picture's reconstruction work.

    Block-level arrays (length ``n_blocks``, one entry per *coded* block).
    Blocks are ordered with the ``n_intra_blocks`` intra blocks first so the
    two dequantizers each run over a contiguous slice of the stack:

    - ``scans``: ``(n_blocks, 64)`` int32 scan-order levels;
    - ``block_qscale``: quantiser scale (already mapped from the code);
    - ``block_res``: row in the compacted residual stack;
    - ``block_slot``: 0-5 (Y0..Y3, Cb, Cr).

    Macroblock-level arrays (length ``n_macroblocks``):

    - ``mb_x``/``mb_y``: destination in macroblock coordinates;
    - ``mb_intra``: bool;
    - ``mb_dir``: ``(n_macroblocks, 2)`` bool, forward/backward used;
    - ``mb_mv``: ``(n_macroblocks, 2, 2)`` int32 half-pel vectors;
    - ``mb_res_row``: residual-stack row, or -1 for prediction-only
      macroblocks (the compaction that lets skip-heavy pictures bypass the
      residual math entirely).
    """

    picture_type: PictureType
    mb_width: int
    matrices: QuantMatrices
    dc_scaler: int
    scans: np.ndarray
    block_qscale: np.ndarray
    block_res: np.ndarray
    block_slot: np.ndarray
    n_intra_blocks: int
    mb_x: np.ndarray
    mb_y: np.ndarray
    mb_intra: np.ndarray
    mb_dir: np.ndarray
    mb_mv: np.ndarray
    mb_res_row: np.ndarray
    n_res: int

    @property
    def n_macroblocks(self) -> int:
        return len(self.mb_x)

    @property
    def n_blocks(self) -> int:
        return len(self.scans)


class PlanBuilder:
    """Accumulate parsed macroblocks into a :class:`ReconstructionPlan`.

    The builder is fed in entropy order (phase 1) and finalized once per
    picture or sub-picture (phase 2).  ``add_all`` is transactional: motion
    vectors are validated against the reference-plane bounds *before* any
    macroblock of the batch is committed, so a tile decoder can map a bad
    record to concealment without poisoning the rest of the plan — the same
    failure granularity the per-macroblock path has.
    """

    def __init__(
        self,
        picture_type: PictureType,
        mb_width: int,
        frame_width: int,
        frame_height: int,
        matrices: QuantMatrices = DEFAULT_MATRICES,
        dc_scaler: int = 8,
    ):
        self.picture_type = picture_type
        self.mb_width = mb_width
        self.frame_width = frame_width
        self.frame_height = frame_height
        self.matrices = matrices
        self.dc_scaler = dc_scaler
        self._p_picture = picture_type == PictureType.P
        # (mb, mb_x, mb_y, mv_fwd, mv_bwd) tuples, entropy order
        self._staged: List[tuple] = []

    # ------------------------------------------------------------------ #
    # phase 1: staging
    # ------------------------------------------------------------------ #

    def _validate_mv(self, mb_x: int, mb_y: int, mv: Tuple[int, int]) -> None:
        """Reject vectors whose prediction would read outside the planes.

        Mirrors the bounds check in :func:`repro.mpeg2.motion.predict_plane`
        for both the luma and the chroma read, but runs at *plan* time so a
        corrupt record fails before the batch executes.
        """
        mvx, mvy = mv
        x0, y0 = mb_x * 16 + (mvx >> 1), mb_y * 16 + (mvy >> 1)
        if (
            x0 < 0
            or y0 < 0
            or x0 + 16 + (mvx & 1) > self.frame_width
            or y0 + 16 + (mvy & 1) > self.frame_height
        ):
            raise ValueError(
                f"motion vector ({mvx},{mvy}) reads outside plane "
                f"at ({mb_x * 16},{mb_y * 16})"
            )
        # chroma read (§7.6.3.7: chroma MV = luma MV / 2, toward zero)
        cx = mvx // 2 if mvx >= 0 else -((-mvx) // 2)
        cy = mvy // 2 if mvy >= 0 else -((-mvy) // 2)
        x0, y0 = mb_x * 8 + (cx >> 1), mb_y * 8 + (cy >> 1)
        if (
            x0 < 0
            or y0 < 0
            or x0 + 8 + (cx & 1) > self.frame_width // 2
            or y0 + 8 + (cy & 1) > self.frame_height // 2
        ):
            raise ValueError(
                f"motion vector ({cx},{cy}) reads outside plane "
                f"at ({mb_x * 8},{mb_y * 8})"
            )

    def _stage(self, mb: Macroblock) -> tuple:
        if mb.intra:
            mv_fwd = mv_bwd = None
        else:
            mv_fwd, mv_bwd = mb.mv_fwd, mb.mv_bwd
            if self._p_picture and not mb.motion_forward:
                # "No MC" macroblock: zero forward vector (§7.6.3.5)
                mv_fwd = (0, 0)
            if mv_fwd is None and mv_bwd is None:
                raise ValueError("prediction requested with no motion vectors")
        addr = mb.address
        mb_x, mb_y = addr % self.mb_width, addr // self.mb_width
        # The zero vector is always in bounds — the overwhelmingly common
        # case for skipped macroblocks, so skip its checks.
        if mv_fwd is not None and mv_fwd != (0, 0):
            self._validate_mv(mb_x, mb_y, mv_fwd)
        if mv_bwd is not None and mv_bwd != (0, 0):
            self._validate_mv(mb_x, mb_y, mv_bwd)
        return (mb, mb_x, mb_y, mv_fwd, mv_bwd)

    def add(self, mb: Macroblock) -> None:
        """Append one macroblock (vectors are validated first)."""
        self._staged.append(self._stage(mb))

    def add_all(self, mbs: List[Macroblock]) -> None:
        """Append a batch of macroblocks, all-or-nothing."""
        self._staged.extend([self._stage(mb) for mb in mbs])

    # ------------------------------------------------------------------ #
    # phase boundary: flatten to arrays
    # ------------------------------------------------------------------ #

    def build(self) -> ReconstructionPlan:
        staged = self._staged
        m = len(staged)
        if m == 0:
            return self._empty_plan()
        mbs = [s[0] for s in staged]
        mb_x = np.fromiter((s[1] for s in staged), dtype=np.int64, count=m)
        mb_y = np.fromiter((s[2] for s in staged), dtype=np.int64, count=m)
        mb_intra = np.fromiter((mb.intra for mb in mbs), dtype=bool, count=m)
        mb_dir = np.array(
            [(s[3] is not None, s[4] is not None) for s in staged], dtype=bool
        ).reshape(m, 2)
        mb_mv = np.array(
            [(s[3] or (0, 0), s[4] or (0, 0)) for s in staged], dtype=np.int64
        ).reshape(m, 2, 2)

        # Partition coded blocks intra-first so each dequantizer sees one
        # contiguous slice of the coefficient stack (no mask gathers).
        scans_i: List[np.ndarray] = []
        scans_n: List[np.ndarray] = []
        meta_i: List[Tuple[int, int, int]] = []  # (qscale, row, slot)
        meta_n: List[Tuple[int, int, int]] = []
        res_row = [-1] * m
        n_res = 0
        qs_table = QUANTISER_SCALE
        for i, mb in enumerate(mbs):
            if not (mb.intra or mb.pattern):
                continue
            blocks = mb.blocks
            qscale = int(qs_table[mb.qscale_code])
            if mb.intra:
                scans_append, meta_append = scans_i.append, meta_i.append
            else:
                scans_append, meta_append = scans_n.append, meta_n.append
            row = -1
            for slot in range(6):
                blk = blocks[slot]
                if blk is None:
                    continue
                if row < 0:
                    row = n_res
                    n_res += 1
                    res_row[i] = row
                scans_append(blk)
                meta_append((qscale, row, slot))

        n_intra = len(scans_i)
        n_blocks = n_intra + len(scans_n)
        if n_blocks:
            scan_arr = np.stack(scans_i + scans_n).astype(np.int32, copy=False)
            meta_arr = np.array(meta_i + meta_n, dtype=np.int64)
            block_qscale = meta_arr[:, 0]
            block_res = meta_arr[:, 1]
            block_slot = meta_arr[:, 2]
        else:
            scan_arr = np.zeros((0, 64), dtype=np.int32)
            block_qscale = np.zeros(0, dtype=np.int64)
            block_res = np.zeros(0, dtype=np.int64)
            block_slot = np.zeros(0, dtype=np.int64)

        return ReconstructionPlan(
            picture_type=self.picture_type,
            mb_width=self.mb_width,
            matrices=self.matrices,
            dc_scaler=self.dc_scaler,
            scans=scan_arr,
            block_qscale=block_qscale,
            block_res=block_res,
            block_slot=block_slot,
            n_intra_blocks=n_intra,
            mb_x=mb_x,
            mb_y=mb_y,
            mb_intra=mb_intra,
            mb_dir=mb_dir,
            mb_mv=mb_mv,
            mb_res_row=np.asarray(res_row, dtype=np.int64),
            n_res=n_res,
        )

    def _empty_plan(self) -> ReconstructionPlan:
        return ReconstructionPlan(
            picture_type=self.picture_type,
            mb_width=self.mb_width,
            matrices=self.matrices,
            dc_scaler=self.dc_scaler,
            scans=np.zeros((0, 64), dtype=np.int32),
            block_qscale=np.zeros(0, dtype=np.int64),
            block_res=np.zeros(0, dtype=np.int64),
            block_slot=np.zeros(0, dtype=np.int64),
            n_intra_blocks=0,
            mb_x=np.zeros(0, dtype=np.int64),
            mb_y=np.zeros(0, dtype=np.int64),
            mb_intra=np.zeros(0, dtype=bool),
            mb_dir=np.zeros((0, 2), dtype=bool),
            mb_mv=np.zeros((0, 2, 2), dtype=np.int64),
            mb_res_row=np.zeros(0, dtype=np.int64),
            n_res=0,
        )


# ---------------------------------------------------------------------- #
# execute phase
# ---------------------------------------------------------------------- #


def _tiled_view(plane: np.ndarray, size: int) -> np.ndarray:
    """A ``(mb_h, mb_w, size, size)`` writable view of a frame plane."""
    if not plane.flags["C_CONTIGUOUS"]:
        raise ValueError("frame planes must be C-contiguous for tiled scatter")
    h, w = plane.shape
    return plane.reshape(h // size, size, w // size, size).transpose(0, 2, 1, 3)


def _residual_stacks(plan: ReconstructionPlan) -> np.ndarray:
    """Dequantize + IDCT every coded block; scatter to ``(n_res, 6, 8, 8)``.

    One dequantize per quantizer class and one ``idctn`` over the entire
    stack — this is the kernel batching the module exists for.  Uncoded
    blocks stay exactly zero, matching the reference path's zero scans.
    """
    res6 = np.zeros((plan.n_res, 6, 8, 8), dtype=np.float64)
    if plan.n_blocks == 0:
        return res6
    blocks = dct.scan_to_block(plan.scans)
    # Blocks were laid out intra-first at build time, so both dequantizers
    # run over plain slices and write straight into the float IDCT input.
    coeffs = np.empty((plan.n_blocks, 8, 8), dtype=np.float64)
    k = plan.n_intra_blocks
    if k:
        coeffs[:k] = dct.dequantize_intra(
            blocks[:k], plan.block_qscale[:k], plan.matrices.intra, plan.dc_scaler
        )
    if k < plan.n_blocks:
        coeffs[k:] = dct.dequantize_non_intra(
            blocks[k:], plan.block_qscale[k:], plan.matrices.non_intra
        )
    res = dct.idct(coeffs)
    res6[plan.block_res, plan.block_slot] = res
    return res6


def _assemble_luma_batch(res6: np.ndarray) -> np.ndarray:
    """``(R, 6, 8, 8)`` residuals -> ``(R, 16, 16)`` luma tiles."""
    m = len(res6)
    return (
        res6[:, :4]
        .reshape(m, 2, 2, 8, 8)
        .transpose(0, 1, 3, 2, 4)
        .reshape(m, 16, 16)
    )


def _chroma_mv_batch(mv: np.ndarray) -> np.ndarray:
    """Vectorized §7.6.3.7 luma->chroma vector mapping (divide toward 0)."""
    return np.where(mv >= 0, mv // 2, -((-mv) // 2))


def _predict_plane_batch(
    plane: np.ndarray,
    base_x: np.ndarray,
    base_y: np.ndarray,
    mvx: np.ndarray,
    mvy: np.ndarray,
    size: int,
) -> np.ndarray:
    """Batched half-pel prediction: ``(K, size, size)`` int32 samples.

    Groups requests by their half-pel fraction pair so each group is a pure
    fancy-indexed gather followed by one vectorized interpolation — the same
    arithmetic as :func:`repro.mpeg2.motion.predict_plane`, over a stack.
    Bounds were validated at plan time.
    """
    k = len(base_x)
    out = np.empty((k, size, size), dtype=np.int32)
    ix, iy = mvx >> 1, mvy >> 1
    fx, fy = mvx & 1, mvy & 1
    x0, y0 = base_x + ix, base_y + iy
    for gfy in (0, 1):
        for gfx in (0, 1):
            sel = (fx == gfx) & (fy == gfy)
            if not sel.any():
                continue
            rows = y0[sel][:, None] + np.arange(size + gfy)
            cols = x0[sel][:, None] + np.arange(size + gfx)
            region = plane[rows[:, :, None], cols[:, None, :]].astype(np.int32)
            if not gfx and not gfy:
                out[sel] = region
            elif gfx and not gfy:
                out[sel] = (region[:, :, :-1] + region[:, :, 1:] + 1) >> 1
            elif gfy and not gfx:
                out[sel] = (region[:, :-1, :] + region[:, 1:, :] + 1) >> 1
            else:
                out[sel] = (
                    region[:, :-1, :-1]
                    + region[:, :-1, 1:]
                    + region[:, 1:, :-1]
                    + region[:, 1:, 1:]
                    + 2
                ) >> 2
    return out


def _predict_direction(
    plan: ReconstructionPlan,
    ref: Frame,
    idx: np.ndarray,
    direction: int,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Predictions ``(y, cb, cr)`` for the macroblocks ``idx`` from ``ref``."""
    mv = plan.mb_mv[idx, direction]
    cmv = _chroma_mv_batch(mv)
    y = _predict_plane_batch(
        ref.y, plan.mb_x[idx] * 16, plan.mb_y[idx] * 16, mv[:, 0], mv[:, 1], 16
    )
    cb = _predict_plane_batch(
        ref.cb, plan.mb_x[idx] * 8, plan.mb_y[idx] * 8, cmv[:, 0], cmv[:, 1], 8
    )
    cr = _predict_plane_batch(
        ref.cr, plan.mb_x[idx] * 8, plan.mb_y[idx] * 8, cmv[:, 0], cmv[:, 1], 8
    )
    return y, cb, cr


def _gather_residual(res: np.ndarray, rows: np.ndarray, shape: tuple) -> np.ndarray:
    """Residual tiles for macroblock rows (``-1`` rows come back zero)."""
    valid = rows >= 0
    if valid.all():
        return res[rows]
    out = np.zeros((len(rows),) + shape, dtype=res.dtype)
    out[valid] = res[rows[valid]]
    return out


def execute_plan(
    plan: ReconstructionPlan,
    out: Frame,
    fwd: Optional[Frame],
    bwd: Optional[Frame],
) -> None:
    """Reconstruct every planned macroblock into ``out`` in place."""
    if plan.n_macroblocks == 0:
        return
    res6 = _residual_stacks(plan)
    res_y = _assemble_luma_batch(res6)
    res_cb, res_cr = res6[:, 4], res6[:, 5]

    vy = _tiled_view(out.y, 16)
    vcb = _tiled_view(out.cb, 8)
    vcr = _tiled_view(out.cr, 8)

    intra_idx = np.flatnonzero(plan.mb_intra)
    if len(intra_idx):
        rows = plan.mb_res_row[intra_idx]
        ix, iy = plan.mb_x[intra_idx], plan.mb_y[intra_idx]
        ty = _gather_residual(res_y, rows, (16, 16))
        tcb = _gather_residual(res_cb, rows, (8, 8))
        tcr = _gather_residual(res_cr, rows, (8, 8))
        vy[iy, ix] = np.clip(np.rint(ty), 0, 255).astype(np.uint8)
        vcb[iy, ix] = np.clip(np.rint(tcb), 0, 255).astype(np.uint8)
        vcr[iy, ix] = np.clip(np.rint(tcr), 0, 255).astype(np.uint8)

    inter_idx = np.flatnonzero(~plan.mb_intra)
    if not len(inter_idx):
        return

    use_f = plan.mb_dir[inter_idx, _FWD]
    use_b = plan.mb_dir[inter_idx, _BWD]
    if not (use_f | use_b).all():
        raise ValueError("prediction requested with no motion vectors")
    for use, ref, name in ((use_f, fwd, "forward"), (use_b, bwd, "backward")):
        if use.any() and ref is None:
            raise ValueError(f"prediction requested without {name} reference")

    m = len(inter_idx)
    py = np.empty((m, 16, 16), dtype=np.int32)
    pcb = np.empty((m, 8, 8), dtype=np.int32)
    pcr = np.empty((m, 8, 8), dtype=np.int32)
    only_f, only_b, both = use_f & ~use_b, use_b & ~use_f, use_f & use_b
    if use_f.any():
        yf, cbf, crf = _predict_direction(plan, fwd, inter_idx[use_f], _FWD)
        py[only_f], pcb[only_f], pcr[only_f] = (
            yf[only_f[use_f]],
            cbf[only_f[use_f]],
            crf[only_f[use_f]],
        )
    if use_b.any():
        yb, cbb, crb = _predict_direction(plan, bwd, inter_idx[use_b], _BWD)
        py[only_b], pcb[only_b], pcr[only_b] = (
            yb[only_b[use_b]],
            cbb[only_b[use_b]],
            crb[only_b[use_b]],
        )
    if both.any():
        # Bidirectional: rounded average of the two directions (§7.6.7.1).
        fsel, bsel = both[use_f], both[use_b]
        py[both] = (yf[fsel] + yb[bsel] + 1) >> 1
        pcb[both] = (cbf[fsel] + cbb[bsel] + 1) >> 1
        pcr[both] = (crf[fsel] + crb[bsel] + 1) >> 1

    rows = plan.mb_res_row[inter_idx]
    hasres = rows >= 0
    y8 = np.empty((m, 16, 16), dtype=np.uint8)
    cb8 = np.empty((m, 8, 8), dtype=np.uint8)
    cr8 = np.empty((m, 8, 8), dtype=np.uint8)
    if hasres.any():
        # Residual add + clip, exactly as the per-MB path: int64 sum -> clip.
        rr = rows[hasres]
        y8[hasres] = np.clip(
            py[hasres] + np.rint(res_y[rr]).astype(np.int64), 0, 255
        ).astype(np.uint8)
        cb8[hasres] = np.clip(
            pcb[hasres] + np.rint(res_cb[rr]).astype(np.int64), 0, 255
        ).astype(np.uint8)
        cr8[hasres] = np.clip(
            pcr[hasres] + np.rint(res_cr[rr]).astype(np.int64), 0, 255
        ).astype(np.uint8)
    nores = ~hasres
    if nores.any():
        # Pure predictions are averages of uint8 samples, already in
        # [0, 255]; the reference path's clip is a no-op there, so a plain
        # cast is bit-identical.
        y8[nores] = py[nores].astype(np.uint8)
        cb8[nores] = pcb[nores].astype(np.uint8)
        cr8[nores] = pcr[nores].astype(np.uint8)

    ex, ey = plan.mb_x[inter_idx], plan.mb_y[inter_idx]
    vy[ey, ex] = y8
    vcb[ey, ex] = cb8
    vcr[ey, ex] = cr8
