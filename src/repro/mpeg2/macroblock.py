"""Macroblock-layer syntax: coding state, encode, and parse (§6.2.5, §7.6).

This module is shared by three consumers with different needs:

- the **encoder** serializes macroblocks (`encode_macroblock`);
- the **reference decoder** parses and then reconstructs pixels;
- the **second-level splitter** parses *without* reconstruction, but needs
  the exact bit extent of every macroblock (``bit_start``/``body_start``/
  ``bit_end``) plus the predictor state at each macroblock boundary so it
  can build State Propagation Headers for sub-pictures.

The running prediction state (DC predictors, motion-vector predictors,
quantiser scale, previous-macroblock mode for B skips) lives in
:class:`CodingState`; its snapshot/restore methods are what the SPH
mechanism serializes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

import numpy as np

from repro.bitstream import BitReader, BitstreamError, BitWriter
from repro.mpeg2 import fast_vlc, vlc
from repro.mpeg2.constants import PictureType
from repro.mpeg2.structures import PictureHeader

# DC predictor reset value for the default intra_dc_precision of 8 (§7.2.1);
# CodingState uses the picture header's precision-dependent value.
DC_RESET = 128


@dataclass
class CodingState:
    """Intra-slice prediction state (§7.2.1 DC, §7.6.3 motion vectors)."""

    picture: PictureHeader
    qscale_code: int = 1
    dc_pred: Optional[List[int]] = None
    # pmv[direction][component]: 0=forward/1=backward, 0=horizontal/1=vertical
    pmv: List[List[int]] = field(default_factory=lambda: [[0, 0], [0, 0]])
    # Previous macroblock's prediction directions (B-picture skip semantics)
    prev_forward: bool = False
    prev_backward: bool = False

    def __post_init__(self) -> None:
        if self.dc_pred is None:
            self.reset_dc()

    def reset_dc(self) -> None:
        self.dc_pred = [self.picture.dc_reset] * 3

    def reset_mv(self) -> None:
        self.pmv = [[0, 0], [0, 0]]

    def snapshot(self) -> dict:
        """Deep copy of every field an SPH must carry."""
        return {
            "qscale_code": self.qscale_code,
            "dc_pred": list(self.dc_pred),
            "pmv": [list(self.pmv[0]), list(self.pmv[1])],
            "prev_forward": self.prev_forward,
            "prev_backward": self.prev_backward,
        }

    def restore(self, snap: dict) -> None:
        self.qscale_code = snap["qscale_code"]
        self.dc_pred = list(snap["dc_pred"])
        self.pmv = [list(snap["pmv"][0]), list(snap["pmv"][1])]
        self.prev_forward = snap["prev_forward"]
        self.prev_backward = snap["prev_backward"]


@dataclass
class Macroblock:
    """One parsed (or to-be-encoded) macroblock.

    ``blocks`` holds six 64-entry scan-order level vectors (Y0..Y3, Cb, Cr);
    uncoded blocks are ``None``.  For intra macroblocks the DC level (QDC,
    absolute, not differential) sits at scan position 0.
    Motion vectors are absolute half-pel values after prediction.
    """

    address: int
    quant: bool = False
    motion_forward: bool = False
    motion_backward: bool = False
    pattern: bool = False
    intra: bool = False
    qscale_code: int = 1
    mv_fwd: Optional[Tuple[int, int]] = None
    mv_bwd: Optional[Tuple[int, int]] = None
    cbp: int = 0
    blocks: List[Optional[np.ndarray]] = field(default_factory=lambda: [None] * 6)
    skipped: bool = False  # True for synthesized skipped macroblocks
    # bit extents in the containing stream (filled by the parser)
    bit_start: int = -1  # first bit of the address-increment VLC
    body_start: int = -1  # first bit after the address-increment VLC(s)
    bit_end: int = -1  # one past the last bit of the macroblock

    @property
    def flags(self) -> vlc.VLCTable:
        raise AttributeError  # guard against accidental use

    def type_flags(self) -> Tuple[bool, bool, bool, bool, bool]:
        return (
            self.quant,
            self.motion_forward,
            self.motion_backward,
            self.pattern,
            self.intra,
        )

    def mb_xy(self, mb_width: int) -> Tuple[int, int]:
        return self.address % mb_width, self.address // mb_width


def make_skipped(address: int, state: CodingState) -> Macroblock:
    """Synthesize the reconstruction-relevant view of a skipped macroblock.

    P-pictures: zero forward vector, predictors reset (§7.6.6.2).
    B-pictures: previous macroblock's directions with the current PMVs
    (§7.6.6.3); predictors unchanged.
    """
    mb = Macroblock(address=address, skipped=True, qscale_code=state.qscale_code)
    if state.picture.picture_type == PictureType.P:
        mb.motion_forward = True
        mb.mv_fwd = (0, 0)
        state.reset_mv()
    else:
        mb.motion_forward = state.prev_forward
        mb.motion_backward = state.prev_backward
        if mb.motion_forward:
            mb.mv_fwd = (state.pmv[0][0], state.pmv[0][1])
        if mb.motion_backward:
            mb.mv_bwd = (state.pmv[1][0], state.pmv[1][1])
    state.reset_dc()
    return mb


# ---------------------------------------------------------------------- #
# DC differential coding (§7.2.1, tables B.12/B.13)
# ---------------------------------------------------------------------- #


def _encode_dc(bw: BitWriter, qdc: int, component: int, state: CodingState) -> None:
    diff = qdc - state.dc_pred[component]
    state.dc_pred[component] = qdc
    size = int(abs(diff)).bit_length()
    table = vlc.DC_SIZE_LUMA if component == 0 else vlc.DC_SIZE_CHROMA
    table.encode(bw, size)
    if size:
        if diff > 0:
            bw.write(diff, size)
        else:
            bw.write(diff + (1 << size) - 1, size)


def _decode_dc(br: BitReader, component: int, state: CodingState) -> int:
    if fast_vlc.ENABLED:
        diff = fast_vlc.decode_dc_delta(br, component)
    else:
        table = vlc.DC_SIZE_LUMA if component == 0 else vlc.DC_SIZE_CHROMA
        size = table.decode(br)
        if size == 0:
            diff = 0
        else:
            v = br.read(size)
            diff = v if v >= (1 << (size - 1)) else v - (1 << size) + 1
    qdc = state.dc_pred[component] + diff
    state.dc_pred[component] = qdc
    return qdc


# ---------------------------------------------------------------------- #
# motion vectors (§7.6.3)
# ---------------------------------------------------------------------- #


def _fold_delta(delta: int, f_code: int) -> int:
    """Fold a prediction residual into the legal wrap range [-16f, 16f-1]."""
    f = 1 << (f_code - 1)
    rng = 32 * f
    low, high = -16 * f, 16 * f - 1
    while delta < low:
        delta += rng
    while delta > high:
        delta -= rng
    return delta


def _encode_mv(
    bw: BitWriter, mv: Tuple[int, int], direction: int, state: CodingState
) -> None:
    for comp in range(2):
        f_code = state.picture.f_code_for(direction, comp)
        delta = _fold_delta(mv[comp] - state.pmv[direction][comp], f_code)
        vlc.encode_motion_delta(bw, delta, f_code - 1)
        state.pmv[direction][comp] = mv[comp]


def _decode_mv(br: BitReader, direction: int, state: CodingState) -> Tuple[int, int]:
    out = [0, 0]
    decode_delta = (
        fast_vlc.decode_motion_delta if fast_vlc.ENABLED else vlc.decode_motion_delta
    )
    for comp in range(2):
        f_code = state.picture.f_code_for(direction, comp)
        delta = decode_delta(br, f_code - 1)
        f = 1 << (f_code - 1)
        low, high, rng = -16 * f, 16 * f - 1, 32 * f
        val = state.pmv[direction][comp] + delta
        if val < low:
            val += rng
        elif val > high:
            val -= rng
        state.pmv[direction][comp] = val
        out[comp] = val
    return out[0], out[1]


# ---------------------------------------------------------------------- #
# blocks
# ---------------------------------------------------------------------- #


def _encode_block(
    bw: BitWriter, scan: np.ndarray, component: int, intra: bool, state: CodingState
) -> None:
    if intra:
        _encode_dc(bw, int(scan[0]), component, state)
        rl = []
        prev = 0
        for pos in range(1, 64):
            lv = int(scan[pos])
            if lv:
                rl.append((pos - prev - 1, lv))
                prev = pos
        vlc.encode_coefficients(
            bw, rl, intra=True, table_one=state.picture.intra_vlc_format == 1
        )
    else:
        rl = []
        prev = -1
        for pos in range(64):
            lv = int(scan[pos])
            if lv:
                rl.append((pos - prev - 1, lv))
                prev = pos
        if not rl:
            raise ValueError("coded non-intra block must have a nonzero level")
        vlc.encode_coefficients(bw, rl, intra=False)


def _decode_block(
    br: BitReader, component: int, intra: bool, state: CodingState
) -> np.ndarray:
    scan = np.zeros(64, dtype=np.int32)
    table_one = False
    if intra:
        if fast_vlc.ENABLED:
            qdc = state.dc_pred[component] + fast_vlc.decode_dc_delta(br, component)
            state.dc_pred[component] = qdc
            scan[0] = qdc
        else:
            scan[0] = _decode_dc(br, component, state)
        table_one = state.picture.intra_vlc_format == 1
    if fast_vlc.ENABLED:
        fast_vlc.decode_ac_into(br, scan, intra, table_one)
    elif intra:
        pos = 0
        for run, level in vlc.decode_coefficients(br, intra=True, table_one=table_one):
            pos += run + 1
            if pos > 63:
                raise BitstreamError("AC run overruns block")
            scan[pos] = level
    else:
        pos = -1
        for run, level in vlc.decode_coefficients(br, intra=False):
            pos += run + 1
            if pos > 63:
                raise BitstreamError("run overruns block")
            scan[pos] = level
    return scan


# ---------------------------------------------------------------------- #
# macroblock encode / parse
# ---------------------------------------------------------------------- #

_COMPONENT_OF_BLOCK = (0, 0, 0, 0, 1, 2)  # Y Y Y Y Cb Cr


def encode_macroblock(
    bw: BitWriter, mb: Macroblock, increment: int, state: CodingState
) -> None:
    """Serialize one (non-skipped) macroblock, updating ``state``."""
    if mb.skipped:
        raise ValueError("skipped macroblocks are encoded via address increments")
    vlc.encode_address_increment(bw, increment)
    table = vlc.mb_type_table(state.picture.picture_type)
    table.encode(bw, mb.type_flags())
    if mb.quant:
        bw.write(mb.qscale_code, 5)
        state.qscale_code = mb.qscale_code
    if mb.motion_forward:
        assert mb.mv_fwd is not None
        _encode_mv(bw, mb.mv_fwd, 0, state)
    if mb.motion_backward:
        assert mb.mv_bwd is not None
        _encode_mv(bw, mb.mv_bwd, 1, state)
    if mb.intra:
        for b in range(6):
            assert mb.blocks[b] is not None
            _encode_block(bw, mb.blocks[b], _COMPONENT_OF_BLOCK[b], True, state)
    elif mb.pattern:
        vlc.CBP.encode(bw, mb.cbp)
        for b in range(6):
            if mb.cbp & (1 << (5 - b)):
                assert mb.blocks[b] is not None
                _encode_block(bw, mb.blocks[b], _COMPONENT_OF_BLOCK[b], False, state)
    # predictor resets (§7.2.1, §7.6.3.4)
    if not mb.intra:
        state.reset_dc()
    if mb.intra:
        state.reset_mv()
    elif state.picture.picture_type == PictureType.P and not mb.motion_forward:
        state.reset_mv()
    state.prev_forward = mb.motion_forward
    state.prev_backward = mb.motion_backward


def parse_macroblock_body(br: BitReader, state: CodingState) -> Macroblock:
    """Parse one macroblock starting at its ``macroblock_type`` VLC.

    The address-increment VLC is handled by the caller so that skipped-
    macroblock predictor resets can be applied to ``state`` *before* this
    body parse (§7.6.3.4) — and so that sub-picture payloads, which begin
    at ``macroblock_type`` after a State Propagation Header, parse through
    the same code path as ordinary slices.

    ``mb.address`` is left at -1; the caller assigns it from the running
    slice (or sub-picture) position.  Bit extents are recorded.
    """
    body_start = br.pos
    mb = Macroblock(address=-1, bit_start=body_start, body_start=body_start)
    if fast_vlc.ENABLED:
        quant, mf, mbk, pattern, intra = fast_vlc.decode_mb_type(
            br, state.picture.picture_type
        )
    else:
        table = vlc.mb_type_table(state.picture.picture_type)
        quant, mf, mbk, pattern, intra = table.decode(br)
    mb.quant, mb.motion_forward, mb.motion_backward = quant, mf, mbk
    mb.pattern, mb.intra = pattern, intra
    if mb.quant:
        code = br.read(5)
        if code == 0:
            raise BitstreamError("quantiser_scale_code of zero")
        mb.qscale_code = code
        state.qscale_code = code
    else:
        mb.qscale_code = state.qscale_code
    if mb.motion_forward:
        mb.mv_fwd = _decode_mv(br, 0, state)
    if mb.motion_backward:
        mb.mv_bwd = _decode_mv(br, 1, state)
    if mb.intra:
        mb.cbp = 0x3F
        for b in range(6):
            mb.blocks[b] = _decode_block(br, _COMPONENT_OF_BLOCK[b], True, state)
    elif mb.pattern:
        mb.cbp = fast_vlc.decode_cbp(br) if fast_vlc.ENABLED else vlc.CBP.decode(br)
        for b in range(6):
            if mb.cbp & (1 << (5 - b)):
                mb.blocks[b] = _decode_block(br, _COMPONENT_OF_BLOCK[b], False, state)
    if not mb.intra:
        state.reset_dc()
    if mb.intra:
        state.reset_mv()
    elif state.picture.picture_type == PictureType.P and not mb.motion_forward:
        state.reset_mv()
    state.prev_forward = mb.motion_forward
    state.prev_backward = mb.motion_backward
    mb.bit_end = br.pos
    return mb


def parse_macroblock(br: BitReader, state: CodingState) -> Tuple[int, Macroblock]:
    """Parse address increment + body in one call.

    Only valid when the caller knows the increment is 1 (no skipped
    macroblocks), since skipped-macroblock state transitions are the
    caller's responsibility; used by tests and simple tools.
    """
    bit_start = br.pos
    if fast_vlc.ENABLED:
        increment = fast_vlc.decode_address_increment(br)
    else:
        increment = vlc.decode_address_increment(br)
    mb = parse_macroblock_body(br, state)
    mb.bit_start = bit_start
    return increment, mb
