"""VBV (video buffering verifier) model (ISO 13818-2 Annex C subset).

The VBV is MPEG's contract between encoder and decoder: bits arrive at the
channel rate, one picture's bits leave instantaneously at each decode
instant, and the buffer must neither underflow (decoder starves — a frame
drop on the wall) nor overflow (encoder overruns the decoder's memory).

:func:`simulate_vbv` replays that model over a stream's measured picture
sizes; :func:`check_stream` runs it on an encoded stream.  The rate-control
tests use it to show the feedback controller keeps streams inside a sane
buffer at their nominal channel rate.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Sequence

from repro.mpeg2.parser import PictureScanner


@dataclass
class VBVEvent:
    picture: int
    occupancy_before_bits: float  # buffer level right before removal
    occupancy_after_bits: float  # right after the picture is pulled
    underflow: bool
    overflow: bool


@dataclass
class VBVResult:
    buffer_bits: int
    bit_rate: float
    events: List[VBVEvent] = field(default_factory=list)

    @property
    def underflows(self) -> List[int]:
        return [e.picture for e in self.events if e.underflow]

    @property
    def overflows(self) -> List[int]:
        return [e.picture for e in self.events if e.overflow]

    @property
    def ok(self) -> bool:
        return not self.underflows and not self.overflows

    @property
    def min_occupancy(self) -> float:
        return min((e.occupancy_before_bits for e in self.events), default=0.0)

    @property
    def peak_occupancy(self) -> float:
        return max((e.occupancy_before_bits for e in self.events), default=0.0)


def simulate_vbv(
    picture_bits: Sequence[int],
    bit_rate: float,
    fps: float,
    buffer_bits: int = 1_835_008,  # MP@ML VBV: 112 * 16384 bits
    initial_delay: float = 0.5,
) -> VBVResult:
    """Replay the VBV over per-picture sizes (decode order).

    ``initial_delay`` seconds of fill happen before the first decode (the
    startup buffering a player performs).  Occupancy is clamped at the
    buffer size — the clamp instants are reported as overflows.
    """
    if bit_rate <= 0 or fps <= 0:
        raise ValueError("bit_rate and fps must be positive")
    result = VBVResult(buffer_bits=buffer_bits, bit_rate=bit_rate)
    occupancy = min(buffer_bits, bit_rate * initial_delay)
    per_tick = bit_rate / fps
    for i, bits in enumerate(picture_bits):
        overflow = False
        if i > 0:
            occupancy += per_tick
            if occupancy > buffer_bits:
                occupancy = buffer_bits
                overflow = True
        underflow = bits > occupancy
        after = max(0.0, occupancy - bits)
        result.events.append(
            VBVEvent(
                picture=i,
                occupancy_before_bits=occupancy,
                occupancy_after_bits=after,
                underflow=underflow,
                overflow=overflow,
            )
        )
        occupancy = after
    return result


def plan_initial_fill(
    picture_bits: Sequence[int],
    bit_rate: float,
    fps: float,
    buffer_bits: int = 1_835_008,
) -> "float | None":
    """A feasible initial buffer fill (bits), or ``None`` if none exists.

    The encoder chooses ``vbv_delay``; a stream is VBV-conformant iff
    *some* initial fill ``x`` avoids both failure modes.  With arrivals
    ``A(i) = i * rate/fps`` and removals ``R(i) = sum(bits[:i])``, the
    clamp-free occupancy before decode ``i`` is ``x + A(i) - R(i)``, so:

    - no underflow needs ``x >= max_i R(i+1) - A(i)``;
    - no overflow needs ``x <= buffer - max_i (A(i) - R(i))``.

    Returns the midpoint of the feasible band (robust to rounding), which
    admission control converts back to a startup delay.
    """
    if bit_rate <= 0 or fps <= 0:
        raise ValueError("bit_rate and fps must be positive")
    per_tick = bit_rate / fps
    arrived = 0.0
    removed = 0.0
    lo = 0.0  # least fill avoiding underflow
    rise = 0.0  # worst clamp-free rise above the initial fill
    for i, bits in enumerate(picture_bits):
        arrived = i * per_tick
        rise = max(rise, arrived - removed)
        lo = max(lo, removed + bits - arrived)
        removed += bits
    hi = buffer_bits - rise
    if lo > hi or lo > buffer_bits:
        return None
    return (lo + hi) / 2.0


def check_stream(
    stream: bytes,
    bit_rate: float,
    fps: float,
    buffer_bits: int = 1_835_008,
    initial_delay: float = 0.5,
) -> VBVResult:
    """Measure per-picture sizes from an encoded stream and run the VBV."""
    _, pictures = PictureScanner(stream).scan()
    sizes = [8 * unit.size_bytes for unit in pictures]
    return simulate_vbv(
        sizes, bit_rate, fps, buffer_bits=buffer_bits, initial_delay=initial_delay
    )
