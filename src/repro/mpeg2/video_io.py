"""Uncompressed video I/O: YUV4MPEG2 (.y4m) clips and PPM stills.

Gives the examples and downstream users a way to bring real content in and
get decoded walls out without adding dependencies: ``mpv``/``ffplay`` play
.y4m directly, and PPM opens anywhere.
"""

from __future__ import annotations

import io
import re
from pathlib import Path
from typing import Iterable, List, Union

import numpy as np

from repro.mpeg2.frames import Frame, pad_to_macroblocks

PathLike = Union[str, Path]


# ---------------------------------------------------------------------- #
# YUV4MPEG2
# ---------------------------------------------------------------------- #


def write_y4m(path: PathLike, frames: Iterable[Frame], fps: float = 30.0) -> None:
    """Write frames as a YUV4MPEG2 4:2:0 stream."""
    frames = list(frames)
    if not frames:
        raise ValueError("no frames to write")
    w, h = frames[0].width, frames[0].height
    num, den = _fps_to_ratio(fps)
    with open(path, "wb") as fh:
        fh.write(f"YUV4MPEG2 W{w} H{h} F{num}:{den} Ip A1:1 C420\n".encode())
        for f in frames:
            if (f.width, f.height) != (w, h):
                raise ValueError("frame size changed mid-stream")
            fh.write(b"FRAME\n")
            fh.write(f.y.tobytes())
            fh.write(f.cb.tobytes())
            fh.write(f.cr.tobytes())


def read_y4m(path: PathLike, pad: bool = True) -> List[Frame]:
    """Read a YUV4MPEG2 4:2:0 stream.

    ``pad=True`` edge-pads frames to macroblock alignment so the result
    feeds the encoder directly.
    """
    data = Path(path).read_bytes()
    nl = data.index(b"\n")
    header = data[:nl].decode("ascii", "replace")
    if not header.startswith("YUV4MPEG2"):
        raise ValueError("not a YUV4MPEG2 file")
    mw = re.search(r"\bW(\d+)", header)
    mh = re.search(r"\bH(\d+)", header)
    if not mw or not mh:
        raise ValueError("missing W/H in y4m header")
    mc = re.search(r"\bC(\S+)", header)
    if mc and not mc.group(1).startswith("420"):
        raise ValueError(f"unsupported chroma format C{mc.group(1)}")
    w, h = int(mw.group(1)), int(mh.group(1))
    ysz, csz = w * h, (w // 2) * (h // 2)
    frames: List[Frame] = []
    pos = nl + 1
    while pos < len(data):
        fnl = data.index(b"\n", pos)
        if not data[pos:fnl].startswith(b"FRAME"):
            raise ValueError("malformed frame marker")
        pos = fnl + 1
        if pos + ysz + 2 * csz > len(data):
            raise ValueError("truncated y4m frame")
        y = np.frombuffer(data, np.uint8, ysz, pos).reshape(h, w)
        cb = np.frombuffer(data, np.uint8, csz, pos + ysz).reshape(h // 2, w // 2)
        cr = np.frombuffer(data, np.uint8, csz, pos + ysz + csz).reshape(
            h // 2, w // 2
        )
        pos += ysz + 2 * csz
        if pad and (w % 16 or h % 16):
            frames.append(pad_to_macroblocks(y, cb, cr))
        else:
            frames.append(Frame(y.copy(), cb.copy(), cr.copy()))
    return frames


def _fps_to_ratio(fps: float) -> tuple:
    for num, den in ((24000, 1001), (30000, 1001), (60000, 1001)):
        if abs(fps - num / den) < 1e-3:
            return num, den
    if abs(fps - round(fps)) < 1e-9:
        return int(round(fps)), 1
    return int(round(fps * 1000)), 1000


# ---------------------------------------------------------------------- #
# PPM stills (via BT.601 conversion)
# ---------------------------------------------------------------------- #


def frame_to_rgb(frame: Frame) -> np.ndarray:
    """BT.601 full-range YCbCr -> RGB, (h, w, 3) uint8."""
    y = frame.y.astype(np.float64)
    cb = np.repeat(np.repeat(frame.cb, 2, axis=0), 2, axis=1).astype(np.float64)
    cr = np.repeat(np.repeat(frame.cr, 2, axis=0), 2, axis=1).astype(np.float64)
    cb -= 128.0
    cr -= 128.0
    r = y + 1.402 * cr
    g = y - 0.344136 * cb - 0.714136 * cr
    b = y + 1.772 * cb
    rgb = np.stack([r, g, b], axis=-1)
    return np.clip(np.rint(rgb), 0, 255).astype(np.uint8)


def rgb_to_frame(rgb: np.ndarray) -> Frame:
    """RGB (h, w, 3) -> 4:2:0 Frame (BT.601 full range), padded to MBs."""
    arr = np.asarray(rgb, dtype=np.float64)
    r, g, b = arr[..., 0], arr[..., 1], arr[..., 2]
    y = 0.299 * r + 0.587 * g + 0.114 * b
    cb = 128.0 + (b - y) / 1.772
    cr = 128.0 + (r - y) / 1.402
    y8 = np.clip(np.rint(y), 0, 255).astype(np.uint8)
    # 2x2 box filter for chroma subsampling
    h, w = y8.shape
    h2, w2 = h - h % 2, w - w % 2
    cb_s = cb[:h2, :w2].reshape(h2 // 2, 2, w2 // 2, 2).mean(axis=(1, 3))
    cr_s = cr[:h2, :w2].reshape(h2 // 2, 2, w2 // 2, 2).mean(axis=(1, 3))
    cb8 = np.clip(np.rint(cb_s), 0, 255).astype(np.uint8)
    cr8 = np.clip(np.rint(cr_s), 0, 255).astype(np.uint8)
    return pad_to_macroblocks(y8[:h2, :w2], cb8, cr8)


def write_ppm(path: PathLike, frame: Frame) -> None:
    rgb = frame_to_rgb(frame)
    with open(path, "wb") as fh:
        fh.write(f"P6\n{frame.width} {frame.height}\n255\n".encode())
        fh.write(rgb.tobytes())


def read_ppm(path: PathLike) -> Frame:
    data = Path(path).read_bytes()
    fh = io.BytesIO(data)
    magic = fh.readline().strip()
    if magic != b"P6":
        raise ValueError("not a binary PPM")
    fields: List[int] = []
    while len(fields) < 3:
        line = fh.readline()
        if not line:
            raise ValueError("truncated PPM header")
        if line.startswith(b"#"):
            continue
        fields.extend(int(tok) for tok in line.split())
    w, h, maxval = fields[:3]
    if maxval != 255:
        raise ValueError("only 8-bit PPM supported")
    raw = fh.read(w * h * 3)
    rgb = np.frombuffer(raw, np.uint8).reshape(h, w, 3)
    return rgb_to_frame(rgb)
