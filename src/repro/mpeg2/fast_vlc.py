"""Table-driven fast VLC decode (multi-bit lookup, inline escape handling).

The reference codecs in :mod:`repro.mpeg2.vlc` decode one code at a time
through per-table flat LUTs but pay a Python call + ``bytes`` slice per
symbol.  This module precomputes *combined* lookup tables at import time —
sign bit folded into the DCT coefficient entries, end-of-block and escape
codes stored as sentinel entries, the address-increment escape folded into
its table — and decodes against a wide cached bit window so the hot loop
is a shift, a mask, and one list index per symbol.

``repro.mpeg2.vlc`` stays untouched as the bit-exact reference oracle:
every decoder here is differentially fuzzed against it
(``tests/test_fast_vlc.py``), and the syntax layer falls back to the
reference path when ``ENABLED`` is off (``set_enabled`` /
``use_reference``), which is also how the benchmark measures the legacy
parse cost.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Dict, Iterable, List, Optional, Tuple

from repro.bitstream import BitReader, BitstreamError
from repro.mpeg2 import tables as T
from repro.mpeg2.vlc import VLCError

#: Module-level switch consulted by the macroblock/slice parsers.  Leave it
#: on; flip off (via :func:`set_enabled` or :func:`use_reference`) to force
#: the bit-at-a-time reference decoders for differential testing.
ENABLED = True


def set_enabled(on: bool) -> bool:
    """Toggle the fast decode paths; returns the previous setting."""
    global ENABLED
    prev = ENABLED
    ENABLED = bool(on)
    return prev


@contextmanager
def use_reference():
    """Run the enclosed block on the bit-at-a-time reference decoders."""
    prev = set_enabled(False)
    try:
        yield
    finally:
        set_enabled(prev)


# ---------------------------------------------------------------------- #
# LUT construction
# ---------------------------------------------------------------------- #


def _fill(lut: List[Optional[tuple]], bits: int, length: int, width: int, entry: tuple) -> None:
    """Write ``entry`` into every LUT slot whose top ``length`` bits match."""
    shift = width - length
    base = bits << shift
    for i in range(1 << shift):
        if lut[base + i] is not None:
            raise ValueError(
                f"VLC LUT conflict at {bits:0{length}b} (width {width})"
            )
        lut[base + i] = entry


def _build_sym_lut(
    mapping: Dict, extra: Iterable[Tuple[object, Tuple[int, int]]] = ()
) -> Tuple[List[Optional[tuple]], int]:
    """(symbol, length) LUT over the table's maximum code width."""
    items = list(mapping.items()) + list(extra)
    width = max(length for _, (_, length) in items)
    lut: List[Optional[tuple]] = [None] * (1 << width)
    for sym, (bits, length) in items:
        _fill(lut, bits, length, width, (sym, length))
    return lut, width


# DCT coefficient LUTs: 16 bits cover the longest run/level code (13 bits)
# plus its sign bit; EOB and the escape prefix become sentinel entries so
# one lookup classifies every symbol.  No Annex B code is all zeros, so the
# zero-padding past end-of-buffer can never decode as a symbol.
COEFF_BITS = 16
_EOB_RUN = -1
_ESC_RUN = -2


def _build_coeff_lut(
    mapping: Dict[Tuple[int, int], Tuple[int, int]], eob_code: Tuple[int, int]
) -> List[Optional[tuple]]:
    lut: List[Optional[tuple]] = [None] * (1 << COEFF_BITS)
    for (run, a), (bits, length) in mapping.items():
        if length + 1 > COEFF_BITS:
            raise ValueError(f"code for (run={run}, level={a}) exceeds {COEFF_BITS} bits")
        _fill(lut, bits << 1, length + 1, COEFF_BITS, (run, a, length + 1))
        _fill(lut, (bits << 1) | 1, length + 1, COEFF_BITS, (run, -a, length + 1))
    eob_bits, eob_len = eob_code
    _fill(lut, eob_bits, eob_len, COEFF_BITS, (_EOB_RUN, 0, eob_len))
    esc_bits, esc_len = T.DCT_ESCAPE_CODE
    _fill(lut, esc_bits, esc_len, COEFF_BITS, (_ESC_RUN, 0, esc_len))
    return lut


_COEFF_LUT_T0 = _build_coeff_lut(T.DCT_COEFF, T.EOB_CODE)
_COEFF_LUT_T1 = _build_coeff_lut(T.DCT_COEFF_T1, T.EOB_CODE_T1)

_ADDR_ESCAPE = -1
_ADDR_LUT, _ADDR_BITS = _build_sym_lut(
    T.MB_ADDRESS_INCREMENT, [(_ADDR_ESCAPE, T.MB_ESCAPE_CODE)]
)
_MOTION_LUT, _MOTION_BITS = _build_sym_lut(T.MOTION_CODE)
_DC_LUMA_LUT, _DC_LUMA_BITS = _build_sym_lut(T.DCT_DC_SIZE_LUMA)
_DC_CHROMA_LUT, _DC_CHROMA_BITS = _build_sym_lut(T.DCT_DC_SIZE_CHROMA)
_CBP_LUT, _CBP_BITS = _build_sym_lut(T.CODED_BLOCK_PATTERN)
_MB_TYPE_LUTS = {
    1: _build_sym_lut(T.MB_TYPE_I),  # PictureType.I
    2: _build_sym_lut(T.MB_TYPE_P),  # PictureType.P
    3: _build_sym_lut(T.MB_TYPE_B),  # PictureType.B
}


# ---------------------------------------------------------------------- #
# decoders
# ---------------------------------------------------------------------- #


def decode_address_increment(br: BitReader) -> int:
    """Table-driven §6.3.16 address increment (escape folded into the LUT)."""
    total = 0
    while True:
        hit = _ADDR_LUT[br.peek_bits(_ADDR_BITS)]
        if hit is None:
            raise VLCError(f"no address-increment code matches at bit {br.pos}")
        sym, length = hit
        br.skip_bits(length)
        if sym != _ADDR_ESCAPE:
            return total + sym
        total += 33


def decode_motion_delta(br: BitReader, r_size: int) -> int:
    """Table-driven §7.6.3.1 motion delta (sign carried by the code).

    One 24-bit peek covers the longest motion code (11 bits) plus the
    largest residual (``r_size`` <= 8), so code and residual are extracted
    from the same window read.
    """
    v = br.peek_bits(24)
    hit = _MOTION_LUT[v >> (24 - _MOTION_BITS)]
    if hit is None:
        raise VLCError(f"no motion code matches at bit {br.pos}")
    code, length = hit
    if code == 0:
        br.skip_bits(length)
        return 0
    if r_size:
        residual = (v >> (24 - length - r_size)) & ((1 << r_size) - 1)
        br.skip_bits(length + r_size)
    else:
        residual = 0
        br.skip_bits(length)
    a = ((abs(code) - 1) << r_size) + residual + 1
    return a if code > 0 else -a


def decode_dc_delta(br: BitReader, component: int) -> int:
    """Table-driven §7.2.1 DC differential (size VLC + size-bit residual).

    A single 24-bit peek covers the longest size code (10 bits) plus the
    largest differential (11 bits).
    """
    v = br.peek_bits(24)
    if component == 0:
        hit = _DC_LUMA_LUT[v >> (24 - _DC_LUMA_BITS)]
    else:
        hit = _DC_CHROMA_LUT[v >> (24 - _DC_CHROMA_BITS)]
    if hit is None:
        raise VLCError(f"no dct_dc_size code matches at bit {br.pos}")
    size, length = hit
    if size == 0:
        br.skip_bits(length)
        return 0
    br.skip_bits(length + size)
    d = (v >> (24 - length - size)) & ((1 << size) - 1)
    return d if d >= (1 << (size - 1)) else d - (1 << size) + 1


def decode_cbp(br: BitReader) -> int:
    """Table-driven coded_block_pattern (table B.9)."""
    hit = _CBP_LUT[br.peek_bits(_CBP_BITS)]
    if hit is None:
        raise VLCError(f"no coded_block_pattern code matches at bit {br.pos}")
    sym, length = hit
    br.skip_bits(length)
    return sym


def decode_mb_type(br: BitReader, picture_type: int):
    """Table-driven macroblock_type (tables B.2-B.4) for the picture type."""
    lut, width = _MB_TYPE_LUTS[int(picture_type)]
    hit = lut[br.peek_bits(width)]
    if hit is None:
        raise VLCError(f"no macroblock_type code matches at bit {br.pos}")
    sym, length = hit
    br.skip_bits(length)
    return sym


def decode_ac_into(br: BitReader, scan, intra: bool, table_one: bool = False) -> None:
    """Decode a block's AC (run, level) symbols plus EOB straight into ``scan``.

    Equivalent to ``vlc.decode_coefficients`` followed by the run/position
    accumulation in ``macroblock._decode_block`` — including the non-intra
    first-coefficient short form, the MPEG-2 escape (24 bits, handled
    inline), and the run-overrun :class:`BitstreamError` messages — but
    decodes against a local 256-bit window refilled once per ~29 bytes, so
    the per-symbol cost is a shift, a mask, and one list index.
    """
    lut = _COEFF_LUT_T1 if table_one else _COEFF_LUT_T0
    data = br.data
    pos = br.pos
    win = 0
    wend = -1  # bit index one past the window; forces the first refill
    p = 0 if intra else -1
    first = not intra
    while True:
        if wend - pos < 24:
            base = pos >> 3
            chunk = data[base : base + 32]
            if len(chunk) < 32:
                chunk = chunk + b"\x00" * (32 - len(chunk))
            win = int.from_bytes(chunk, "big")
            wend = (base << 3) + 256
        v = (win >> (wend - pos - COEFF_BITS)) & 0xFFFF
        if first:
            first = False
            if v & 0x8000:
                # Leading '1' at the first coefficient of a non-intra block
                # is always (0, +/-1) with the next bit as sign (§7.2.2).
                p += 1
                scan[p] = -1 if v & 0x4000 else 1
                pos += 2
                continue
        hit = lut[v]
        if hit is None:
            br.pos = pos
            raise VLCError(
                f"no DCT coefficient code matches bits {v:016b} at bit {pos}"
            )
        run, level, length = hit
        if run >= 0:
            pos += length
        elif run == _EOB_RUN:
            br.pos = pos + length
            return
        else:
            # Escape: 6-bit prefix + 6-bit run + 12-bit two's-complement level.
            v = (win >> (wend - pos - 24)) & 0xFFFFFF
            run = (v >> 12) & 0x3F
            level = v & 0xFFF
            if level >= 2048:
                level -= 4096
            if level == 0:
                br.pos = pos
                raise VLCError("escape-coded level of zero")
            pos += 24
        p += run + 1
        if p > 63:
            br.pos = pos
            raise BitstreamError(
                "AC run overruns block" if intra else "run overruns block"
            )
        scan[p] = level
