"""MPEG-2 video encoder (I/P/B, 4:2:0, frame pictures, one slice per row).

The encoder exists so the repository is self-contained: the paper's test
streams are copyrighted movies and telescope flybys, so we synthesize
content (:mod:`repro.workloads.synthetic`) and compress it ourselves.  The
encoder reconstructs reference frames through the *same* code path the
decoders use (:mod:`repro.mpeg2.reconstruct`), so there is no encoder/decoder
drift.

Supported tools and limits are listed in the package docstring; they are the
tools the paper's parallel decoder exercises (motion vectors that cross tile
boundaries, intra-slice DC/MV prediction chains, skipped-macroblock runs,
per-macroblock quantizer changes).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional, Sequence, Tuple

import numpy as np

from repro.bitstream import BitWriter
from repro.mpeg2 import dct
from repro.mpeg2.constants import (
    MB_SIZE,
    SEQUENCE_END_CODE,
    PictureType,
)
from repro.mpeg2.frames import Frame
from repro.mpeg2.macroblock import (
    CodingState,
    Macroblock,
    encode_macroblock,
    make_skipped,
)
from repro.mpeg2.motion import estimate_mv, predict_macroblock
from repro.mpeg2.reconstruct import QuantMatrices, reconstruct_macroblock
from repro.mpeg2.structures import GOPHeader, PictureHeader, SequenceHeader
from repro.mpeg2.tables import (
    DEFAULT_INTRA_QUANT_MATRIX,
    DEFAULT_NON_INTRA_QUANT_MATRIX,
)


@dataclass
class EncoderConfig:
    """Encoder parameters.

    ``gop_size`` is the I-picture period in display order; ``b_frames`` is
    the number of B pictures between anchors.  ``f_code`` must satisfy
    ``16 * 2**(f_code-1)`` > 2*search_range+1 (half-pel units); the default
    pair (7, 2) allows vectors up to +/-15.5 luma pixels.
    """

    gop_size: int = 9
    b_frames: int = 2
    qscale_code_intra: int = 6
    qscale_code_inter: int = 8
    search_range: int = 7
    f_code: int = 2
    fps: float = 30.0
    closed_gop: bool = True
    allow_skips: bool = True
    # Optional per-macroblock quantizer modulation: (mb_x, mb_y, activity)
    # -> quantiser_scale_code.  Used by the localized-detail workloads to
    # reproduce the paper's §5.5 bit-allocation imbalance.
    quant_modulator: Optional[Callable[[int, int, float], int]] = None
    # Custom quantization matrices (8x8, values 1-255); None -> defaults.
    # Carried in the sequence header, so every decoder (sequential or
    # parallel) reconstructs with them.
    intra_matrix: Optional[np.ndarray] = None
    non_intra_matrix: Optional[np.ndarray] = None
    # Intra DC precision in bits (8, 9, or 10; §7.4.1) — higher precision
    # costs bits but removes DC banding on smooth gradients.
    intra_dc_precision: int = 8
    # 0 -> table B.14 for intra AC coefficients; 1 -> the alternate B.15
    intra_vlc_format: int = 0
    # Slices per macroblock row (>=1).  MPEG-2 Main Profile requires every
    # row to start a slice; more slices add resync points (and SPH-like
    # restart behaviour the splitter must respect).
    slices_per_row: int = 1

    def __post_init__(self) -> None:
        if self.intra_dc_precision not in (8, 9, 10):
            raise ValueError("intra_dc_precision must be 8, 9, or 10")
        if self.intra_vlc_format not in (0, 1):
            raise ValueError("intra_vlc_format must be 0 or 1")
        if self.slices_per_row < 1:
            raise ValueError("slices_per_row must be >= 1")
        if self.b_frames < 0:
            raise ValueError("b_frames must be >= 0")
        if self.gop_size < 1:
            raise ValueError("gop_size must be >= 1")
        max_half_pel = 2 * self.search_range + 1
        if 16 * (1 << (self.f_code - 1)) <= max_half_pel:
            raise ValueError("f_code too small for search_range")
        for code in (self.qscale_code_intra, self.qscale_code_inter):
            if not 1 <= code <= 31:
                raise ValueError("quantiser_scale_code out of range")


@dataclass
class PicturePlan:
    """One picture in coded order."""

    display_index: int
    picture_type: PictureType
    temporal_reference: int
    new_gop: bool
    fwd_ref: Optional[int] = None  # display index of forward anchor
    bwd_ref: Optional[int] = None  # display index of backward anchor


def plan_gop_structure(n_frames: int, cfg: EncoderConfig) -> List[PicturePlan]:
    """Lay out picture types and coded order for ``n_frames`` inputs.

    Anchors (I/P) are coded before the B pictures that precede them in
    display order.  A truncated tail is closed with a final P anchor so no
    B picture lacks a backward reference.

    With ``closed_gop=True`` (the default) every GOP is self-contained: it
    ends on an anchor and its B pictures reference only its own anchors —
    the property GOP-level seek and GOP-parallel decoding rely on.  With
    ``closed_gop=False`` the GOPs are *open*: the B pictures displayed just
    before each I picture are coded inside the new GOP and forward-
    reference the previous GOP's final anchor (§6.3.8).
    """
    m = cfg.b_frames + 1
    plans: List[PicturePlan] = []
    gop_starts = list(range(0, n_frames, cfg.gop_size))
    carried_anchor: Optional[int] = None  # open-GOP cross-boundary anchor
    for g_idx, g0 in enumerate(gop_starts):
        g1 = min(g0 + cfg.gop_size, n_frames)
        if not cfg.closed_gop and g_idx + 1 < len(gop_starts):
            # open GOP: leading B's of the NEXT gop cover our tail frames,
            # so our own anchors stop at the I of the next GOP
            next_i = gop_starts[g_idx + 1]
            anchors = [a for a in range(g0, g1, m)]
            # trailing frames between our last anchor and next_i become the
            # next GOP's leading B pictures (handled below via carry)
            tail_start = anchors[-1] + 1
        else:
            anchors = list(range(g0, g1, m))
            if anchors[-1] != g1 - 1:
                anchors.append(g1 - 1)
            tail_start = None
        prev_anchor: Optional[int] = carried_anchor
        # Open GOPs display their leading B pictures first, so every
        # temporal reference shifts by the lead count (§6.3.9).
        lead = (g0 - carried_anchor - 1) if carried_anchor is not None else 0
        for a_idx, a in enumerate(anchors):
            ptype = PictureType.I if a_idx == 0 else PictureType.P
            plans.append(
                PicturePlan(
                    display_index=a,
                    picture_type=ptype,
                    temporal_reference=a - g0 + lead,
                    new_gop=(a_idx == 0),
                    fwd_ref=prev_anchor if ptype == PictureType.P else None,
                )
            )
            if prev_anchor is not None:
                for b in range(prev_anchor + 1, a):
                    plans.append(
                        PicturePlan(
                            display_index=b,
                            picture_type=PictureType.B,
                            temporal_reference=b - g0 + lead,
                            new_gop=False,
                            fwd_ref=prev_anchor,
                            bwd_ref=a,
                        )
                    )
            prev_anchor = a
        carried_anchor = prev_anchor if not cfg.closed_gop else None
        last_lead = lead
    # Open-GOP tail: frames after the final anchor still need coding.
    if carried_anchor is not None and carried_anchor < n_frames - 1:
        final = n_frames - 1
        plans.append(
            PicturePlan(
                display_index=final,
                picture_type=PictureType.P,
                temporal_reference=final - gop_starts[-1] + last_lead,
                new_gop=False,
                fwd_ref=carried_anchor,
            )
        )
        for b in range(carried_anchor + 1, final):
            plans.append(
                PicturePlan(
                    display_index=b,
                    picture_type=PictureType.B,
                    temporal_reference=b - gop_starts[-1] + last_lead,
                    new_gop=False,
                    fwd_ref=carried_anchor,
                    bwd_ref=final,
                )
            )
    return plans


@dataclass
class EncodeStats:
    """Per-picture size accounting (drives the Table 4 stream report)."""

    picture_sizes: List[int] = field(default_factory=list)
    picture_types: List[PictureType] = field(default_factory=list)

    @property
    def total_bytes(self) -> int:
        return sum(self.picture_sizes)

    def average_frame_size(self) -> float:
        return self.total_bytes / max(1, len(self.picture_sizes))


class Encoder:
    """Encode a sequence of :class:`Frame` objects to an MPEG-2 bitstream."""

    def __init__(self, config: EncoderConfig | None = None):
        self.cfg = config or EncoderConfig()
        self.stats = EncodeStats()
        self.matrices = QuantMatrices(
            intra=(
                self.cfg.intra_matrix
                if self.cfg.intra_matrix is not None
                else DEFAULT_INTRA_QUANT_MATRIX
            ),
            non_intra=(
                self.cfg.non_intra_matrix
                if self.cfg.non_intra_matrix is not None
                else DEFAULT_NON_INTRA_QUANT_MATRIX
            ),
        )

    # ------------------------------------------------------------------ #

    def encode(self, frames: Sequence[Frame]) -> bytes:
        """Encode ``frames`` (display order) and return the full bitstream."""
        if not frames:
            raise ValueError("no frames to encode")
        w, h = frames[0].width, frames[0].height
        for f in frames:
            if (f.width, f.height) != (w, h):
                raise ValueError("all frames must share one resolution")
        if h > 2800:
            raise ValueError(
                "slice_vertical_position_extension unsupported (height > 2800)"
            )

        bw = BitWriter()
        seq = SequenceHeader.for_video(w, h, self.cfg.fps)
        seq.intra_matrix = self.cfg.intra_matrix
        seq.non_intra_matrix = self.cfg.non_intra_matrix
        seq.write(bw)

        plans = plan_gop_structure(len(frames), self.cfg)
        recon: dict[int, Frame] = {}  # display index -> reconstructed anchor
        self.stats = EncodeStats()

        for plan in plans:
            if plan.new_gop:
                GOPHeader(closed_gop=self.cfg.closed_gop).write(bw)
            before = len(bw) // 8
            frame = frames[plan.display_index]
            fwd = recon.get(plan.fwd_ref) if plan.fwd_ref is not None else None
            bwd = recon.get(plan.bwd_ref) if plan.bwd_ref is not None else None
            out = self._encode_picture(bw, frame, plan, fwd, bwd)
            if plan.picture_type != PictureType.B:
                recon[plan.display_index] = out
                # Drop anchors that can no longer be referenced.
                for k in list(recon):
                    if k < plan.display_index - self.cfg.gop_size:
                        del recon[k]
            self.stats.picture_sizes.append(len(bw) // 8 - before)
            self.stats.picture_types.append(plan.picture_type)

        bw.write_start_code(SEQUENCE_END_CODE)
        return bw.getvalue()

    # ------------------------------------------------------------------ #

    def _picture_header(self, plan: PicturePlan) -> PictureHeader:
        fc = self.cfg.f_code
        if plan.picture_type == PictureType.I:
            f_code = ((15, 15), (15, 15))
        elif plan.picture_type == PictureType.P:
            f_code = ((fc, fc), (15, 15))
        else:
            f_code = ((fc, fc), (fc, fc))
        return PictureHeader(
            temporal_reference=plan.temporal_reference,
            picture_type=plan.picture_type,
            f_code=f_code,
            intra_dc_precision=self.cfg.intra_dc_precision,
            intra_vlc_format=self.cfg.intra_vlc_format,
        )

    def _encode_picture(
        self,
        bw: BitWriter,
        frame: Frame,
        plan: PicturePlan,
        fwd: Optional[Frame],
        bwd: Optional[Frame],
    ) -> Frame:
        header = self._picture_header(plan)
        header.write(bw)
        mb_w, mb_h = frame.mb_width, frame.mb_height
        out = Frame.blank(frame.width, frame.height)

        for row in range(mb_h):
            self._encode_slice(bw, frame, header, plan, fwd, bwd, row, out)
        return out

    def _encode_slice(
        self,
        bw: BitWriter,
        frame: Frame,
        header: PictureHeader,
        plan: PicturePlan,
        fwd: Optional[Frame],
        bwd: Optional[Frame],
        row: int,
        out: Frame,
    ) -> None:
        mb_w = frame.mb_width
        base_q = (
            self.cfg.qscale_code_intra
            if plan.picture_type == PictureType.I
            else self.cfg.qscale_code_inter
        )
        n_slices = min(self.cfg.slices_per_row, mb_w)
        cuts = {round(s * mb_w / n_slices) for s in range(n_slices)}
        state = CodingState(picture=header, qscale_code=base_q)
        prev_coded = row * mb_w - 1  # address of previous coded macroblock
        for col in range(mb_w):
            if col in cuts:
                # Start a (new) slice: header + full predictor reset.  The
                # address base also resets (§6.3.16): the first macroblock's
                # increment positions the slice within the row.
                bw.write_start_code(row + 1)
                bw.write(base_q, 5)
                bw.write(0, 1)  # extra_bit_slice
                state = CodingState(picture=header, qscale_code=base_q)
                prev_coded = row * mb_w - 1
            address = row * mb_w + col
            mb = self._code_macroblock(frame, plan, fwd, bwd, col, row, state)
            first = col in cuts  # first macroblock of a slice
            last = (col + 1) in cuts or col == mb_w - 1  # last of a slice
            if (
                self.cfg.allow_skips
                and not first
                and not last
                and mb is not None
                and self._skippable(mb, plan, state)
            ):
                skipped = make_skipped(address, state)
                reconstruct_macroblock(
                    skipped, plan.picture_type, out, fwd, bwd, mb_w,
                    self.matrices,
                )
                continue
            assert mb is not None
            mb.address = address
            increment = address - prev_coded
            encode_macroblock(bw, mb, increment, state)
            reconstruct_macroblock(
                mb, plan.picture_type, out, fwd, bwd, mb_w, self.matrices,
                1 << (11 - self.cfg.intra_dc_precision),
            )
            prev_coded = address

    # ------------------------------------------------------------------ #
    # per-macroblock mode decision
    # ------------------------------------------------------------------ #

    def _skippable(
        self, mb: Macroblock, plan: PicturePlan, state: CodingState
    ) -> bool:
        """May this already-decided macroblock be coded as skipped?"""
        if mb.intra or mb.pattern or mb.quant:
            return False
        if plan.picture_type == PictureType.P:
            return mb.motion_forward and mb.mv_fwd == (0, 0)
        if plan.picture_type == PictureType.B:
            if mb.motion_forward != state.prev_forward:
                return False
            if mb.motion_backward != state.prev_backward:
                return False
            if not (mb.motion_forward or mb.motion_backward):
                return False
            if mb.motion_forward and mb.mv_fwd != tuple(state.pmv[0]):
                return False
            if mb.motion_backward and mb.mv_bwd != tuple(state.pmv[1]):
                return False
            return True
        return False

    def _extract_blocks(self, frame: Frame, col: int, row: int) -> np.ndarray:
        """Six 8x8 source blocks of macroblock (col, row) as (6, 8, 8)."""
        y = frame.mb_luma(col, row).astype(np.float64)
        cb, cr = frame.mb_chroma(col, row)
        return np.stack(
            [y[:8, :8], y[:8, 8:], y[8:, :8], y[8:, 8:], cb.astype(np.float64), cr.astype(np.float64)]
        )

    def _choose_qscale(self, col: int, row: int, activity: float, base: int) -> int:
        if self.cfg.quant_modulator is None:
            return base
        code = int(self.cfg.quant_modulator(col, row, activity))
        return min(31, max(1, code))

    def _code_macroblock(
        self,
        frame: Frame,
        plan: PicturePlan,
        fwd: Optional[Frame],
        bwd: Optional[Frame],
        col: int,
        row: int,
        state: CodingState,
    ) -> Macroblock:
        src = self._extract_blocks(frame, col, row)
        luma = frame.mb_luma(col, row).astype(np.int32)
        activity = float(np.var(luma))

        if plan.picture_type == PictureType.I:
            return self._intra_mb(src, col, row, activity, state)

        # --- motion search ------------------------------------------------
        mv_f = mv_b = None
        if fwd is not None:
            mv_f = estimate_mv(frame.y, fwd.y, col, row, self.cfg.search_range)
        if plan.picture_type == PictureType.B and bwd is not None:
            mv_b = estimate_mv(frame.y, bwd.y, col, row, self.cfg.search_range)

        candidates: List[Tuple[int, bool, bool]] = []  # (sad, use_fwd, use_bwd)
        if mv_f is not None:
            py, _, _ = predict_macroblock(fwd, None, col, row, mv_f, None)
            candidates.append((int(np.abs(py - luma).sum()), True, False))
        if mv_b is not None:
            py, _, _ = predict_macroblock(None, bwd, col, row, None, mv_b)
            candidates.append((int(np.abs(py - luma).sum()), False, True))
        if mv_f is not None and mv_b is not None:
            py, _, _ = predict_macroblock(fwd, bwd, col, row, mv_f, mv_b)
            candidates.append((int(np.abs(py - luma).sum()), True, True))
        best_sad, use_f, use_b = min(candidates)

        intra_act = int(np.abs(luma - int(np.mean(luma))).sum())
        if best_sad > intra_act * 1.1 + 256:
            return self._intra_mb(src, col, row, activity, state)

        # --- inter residual ------------------------------------------------
        py, pcb, pcr = predict_macroblock(
            fwd if use_f else None,
            bwd if use_b else None,
            col,
            row,
            mv_f if use_f else None,
            mv_b if use_b else None,
        )
        pred = np.stack(
            [
                py[:8, :8],
                py[:8, 8:],
                py[8:, :8],
                py[8:, 8:],
                pcb,
                pcr,
            ]
        ).astype(np.float64)
        resid = src - pred
        qcode = self._choose_qscale(col, row, activity, self.cfg.qscale_code_inter)
        coeffs = dct.fdct(resid)
        levels = dct.quantize_non_intra(coeffs, 2 * qcode, self.matrices.non_intra)
        scans = dct.block_to_scan(levels)
        cbp = 0
        blocks: List[Optional[np.ndarray]] = [None] * 6
        for b in range(6):
            if np.any(scans[b]):
                cbp |= 1 << (5 - b)
                blocks[b] = scans[b]

        mb = Macroblock(address=-1)
        mb.motion_forward = use_f
        mb.motion_backward = use_b
        mb.mv_fwd = mv_f if use_f else None
        mb.mv_bwd = mv_b if use_b else None
        mb.pattern = cbp != 0
        mb.cbp = cbp
        mb.blocks = blocks
        mb.qscale_code = qcode
        mb.quant = cbp != 0 and qcode != state.qscale_code
        if not mb.pattern and plan.picture_type == PictureType.P and not use_f:
            # P-picture "No MC, not coded" does not exist; code a zero MV.
            mb.motion_forward = True
            mb.mv_fwd = (0, 0)
        return mb

    def _intra_mb(
        self,
        src: np.ndarray,
        col: int,
        row: int,
        activity: float,
        state: CodingState,
    ) -> Macroblock:
        qcode = self._choose_qscale(col, row, activity, self.cfg.qscale_code_intra)
        coeffs = dct.fdct(src)
        levels = dct.quantize_intra(
            coeffs, 2 * qcode, self.matrices.intra,
            dc_scaler=1 << (11 - self.cfg.intra_dc_precision),
        )
        scans = dct.block_to_scan(levels)
        mb = Macroblock(address=-1)
        mb.intra = True
        mb.cbp = 0x3F
        mb.blocks = [scans[b] for b in range(6)]
        mb.qscale_code = qcode
        mb.quant = qcode != state.qscale_code
        return mb
