"""Start codes, picture types, and syntax constants (ISO/IEC 13818-2 §6.2)."""

from __future__ import annotations

from enum import IntEnum

# ---------------------------------------------------------------------- #
# start codes (the byte following the 00 00 01 prefix)
# ---------------------------------------------------------------------- #

PICTURE_START_CODE = 0x00
# Slice start codes run 0x01..0xAF; the value encodes (slice row + 1).
SLICE_START_CODE_MIN = 0x01
SLICE_START_CODE_MAX = 0xAF
USER_DATA_START_CODE = 0xB2
SEQUENCE_HEADER_CODE = 0xB3
SEQUENCE_ERROR_CODE = 0xB4
EXTENSION_START_CODE = 0xB5
SEQUENCE_END_CODE = 0xB7
GROUP_START_CODE = 0xB8


def is_slice_start_code(code: int) -> bool:
    return SLICE_START_CODE_MIN <= code <= SLICE_START_CODE_MAX


# extension_start_code_identifier values (§6.3.1)
SEQUENCE_EXTENSION_ID = 0x1
PICTURE_CODING_EXTENSION_ID = 0x8


class PictureType(IntEnum):
    """picture_coding_type (§6.3.9, table 6-12)."""

    I = 1
    P = 2
    B = 3


# picture_structure — we code frame pictures only
FRAME_PICTURE = 0b11

# Macroblock geometry: a macroblock covers 16x16 luma pixels; in 4:2:0 it
# carries 4 luma blocks + 1 Cb + 1 Cr block of 8x8 samples each.
MB_SIZE = 16
BLOCK_SIZE = 8
BLOCKS_PER_MB_420 = 6

# profile_and_level_indication for Main Profile @ High Level — the paper's
# ultra-high-resolution streams exceed even this, which is part of its point;
# we emit MP@HL and do not enforce level constraints.
PROFILE_MAIN_LEVEL_HIGH = 0x14

# Frame rate codes (table 6-4): code -> frames per second
FRAME_RATE_CODES = {
    1: 24000 / 1001,
    2: 24.0,
    3: 25.0,
    4: 30000 / 1001,
    5: 30.0,
    6: 50.0,
    7: 60000 / 1001,
    8: 60.0,
}


def frame_rate_code_for(fps: float) -> int:
    """Nearest frame_rate_code for ``fps`` (exact matches preferred)."""
    return min(FRAME_RATE_CODES, key=lambda c: abs(FRAME_RATE_CODES[c] - fps))
