"""Stream parsing at the two granularities the hierarchical decoder uses.

:class:`PictureScanner` is the root splitter's engine: a linear start-code
scan that carves the stream into self-contained coded pictures (plus the
sequence/GOP headers they travel with).  It does **no** VLC work — that is
exactly why picture-level splitting is cheap (paper Table 1).

:class:`MacroblockParser` is the second-level splitter's engine: a full VLC
parse of one coded picture into macroblocks with their bit extents and the
predictor state at every macroblock boundary — everything the sub-picture
builder needs to emit State Propagation Headers and the MEI builder needs to
pre-calculate remote-block exchanges.  It does no pixel reconstruction
("a splitter does not motion compensate").
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro.bitstream import BitReader, BitstreamError
from repro.mpeg2.constants import (
    GROUP_START_CODE,
    PICTURE_START_CODE,
    SEQUENCE_END_CODE,
    SEQUENCE_HEADER_CODE,
    is_slice_start_code,
)
from repro.mpeg2 import fast_vlc, vlc
from repro.mpeg2.macroblock import (
    CodingState,
    Macroblock,
    make_skipped,
    parse_macroblock_body,
)
from repro.mpeg2.structures import GOPHeader, PictureHeader, SequenceHeader


@dataclass
class PictureUnit:
    """One coded picture as shipped by the root splitter.

    ``data`` spans from the picture start code to the byte before the next
    picture/GOP/sequence start code, so it is self-contained for macroblock
    parsing (given the sequence header, which the root distributes once).
    """

    coded_index: int
    data: bytes
    new_gop: bool = False
    gop: Optional[GOPHeader] = None

    @property
    def size_bytes(self) -> int:
        return len(self.data)


class PictureScanner:
    """Split a stream into its sequence header and coded pictures."""

    def __init__(self, stream: bytes):
        self.stream = bytes(stream)
        self.sequence: Optional[SequenceHeader] = None
        self._pictures: Optional[List[PictureUnit]] = None

    def scan(self) -> Tuple[SequenceHeader, List[PictureUnit]]:
        """Scan the whole stream once; results are cached."""
        if self._pictures is not None:
            assert self.sequence is not None
            return self.sequence, self._pictures

        br = BitReader(self.stream)
        code = br.next_start_code()
        if code != SEQUENCE_HEADER_CODE:
            raise BitstreamError("stream does not begin with a sequence header")
        self.sequence = SequenceHeader.parse(br)

        pictures: List[PictureUnit] = []
        pending_gop: Optional[GOPHeader] = None
        new_gop = False
        pic_start: Optional[int] = None

        def close_picture(end_byte: int) -> None:
            nonlocal pic_start, pending_gop, new_gop
            if pic_start is None:
                return
            pictures.append(
                PictureUnit(
                    coded_index=len(pictures),
                    data=self.stream[pic_start:end_byte],
                    new_gop=new_gop,
                    gop=pending_gop,
                )
            )
            pic_start = None
            pending_gop = None
            new_gop = False

        while True:
            code = br.next_start_code()
            if code is None:
                close_picture(len(self.stream))
                break
            at = br.byte_pos - 4  # position of the 00 00 01 prefix
            if code == GROUP_START_CODE:
                close_picture(at)
                pending_gop = GOPHeader.parse(br)
                new_gop = True
            elif code == PICTURE_START_CODE:
                close_picture(at)
                pic_start = at
            elif code == SEQUENCE_END_CODE:
                close_picture(at)
                break
            elif code == SEQUENCE_HEADER_CODE:
                close_picture(at)
                SequenceHeader.parse(br)  # repeated header; validated and dropped
            elif is_slice_start_code(code):
                continue  # interior of the current picture
            # extension/user-data codes inside pictures are skipped by scan

        self._pictures = pictures
        return self.sequence, pictures


# ---------------------------------------------------------------------- #
# macroblock-level parsing
# ---------------------------------------------------------------------- #


@dataclass
class ParsedMB:
    """A macroblock plus the splitter-relevant context around it."""

    mb: Macroblock
    # CodingState.snapshot() before this macroblock, or None in a lean
    # parse (plan shipping never builds SPHs, so never reads it).
    state_before: Optional[dict]
    slice_row: int
    # Monotone id of the slice this macroblock was coded in.  Runs must
    # never fuse across slice boundaries even within one row (multiple
    # slices per row are legal): the bits between them hold start codes
    # and slice headers, not macroblock data.
    slice_index: int = 0


@dataclass
class ParsedPicture:
    """Full macroblock-level parse of one coded picture."""

    header: PictureHeader
    data: bytes
    mb_width: int
    mb_height: int
    items: List[ParsedMB] = field(default_factory=list)  # stream order
    n_skipped: int = 0

    @property
    def n_coded(self) -> int:
        return len(self.items) - self.n_skipped

    def coded_items(self) -> List[ParsedMB]:
        return [it for it in self.items if not it.mb.skipped]


# End-of-slice detection: a macroblock never starts with 23 zero bits, while
# the zero padding + start-code prefix that ends a slice always provides them.
_EOS_BITS = 23


class MacroblockParser:
    """VLC-parse coded pictures into macroblocks (no reconstruction)."""

    def __init__(self, sequence: SequenceHeader):
        self.sequence = sequence
        self.mb_width = sequence.width // 16
        self.mb_height = sequence.height // 16

    def parse_picture(self, data: bytes, lean: bool = False) -> ParsedPicture:
        """VLC-parse one coded picture.

        With ``lean=True`` the per-macroblock predictor-state snapshots are
        skipped (``state_before`` is ``None``) — they exist only for the
        sub-picture builder's State Propagation Headers, and allocating
        the dicts dominates parse time for plan-shipping splitters, which
        never read them.
        """
        br = BitReader(data)
        code = br.next_start_code()
        if code != PICTURE_START_CODE:
            raise BitstreamError("picture unit does not start with picture code")
        header = PictureHeader.parse(br)
        parsed = ParsedPicture(
            header=header,
            data=data,
            mb_width=self.mb_width,
            mb_height=self.mb_height,
        )
        slice_index = 0
        while True:
            code = br.peek_start_code()
            if code is None or not is_slice_start_code(code):
                break
            br.next_start_code()
            self._parse_slice(br, code - 1, header, parsed, slice_index, lean)
            slice_index += 1
        return parsed

    def _parse_slice(
        self,
        br: BitReader,
        row: int,
        header: PictureHeader,
        parsed: ParsedPicture,
        slice_index: int = 0,
        lean: bool = False,
    ) -> None:
        if row >= self.mb_height:
            raise BitstreamError(f"slice row {row} beyond picture height")
        qcode = br.read(5)
        if qcode == 0:
            raise BitstreamError("slice quantiser_scale_code of zero")
        if br.read(1):
            raise BitstreamError("extra_information_slice unsupported")
        state = CodingState(picture=header, qscale_code=qcode)
        prev_addr = row * self.mb_width - 1
        first_in_slice = True
        decode_increment = (
            fast_vlc.decode_address_increment
            if fast_vlc.ENABLED
            else vlc.decode_address_increment
        )
        while br.bits_left() > 0 and br.peek(_EOS_BITS) != 0:
            bit_start = br.pos
            increment = decode_increment(br)
            address = prev_addr + increment
            if address >= (row + 1) * self.mb_width:
                raise BitstreamError("macroblock address beyond slice row")
            # Skipped macroblocks covered by the increment mutate the
            # predictor state *before* the coded macroblock's body parse
            # (§7.6.3.4): P skips reset the motion-vector predictors, and
            # every skip resets the DC predictors.  The FIRST macroblock of
            # a slice is special: its increment only positions the slice in
            # the row (earlier macroblocks belong to the previous slice),
            # so it implies no skips (§6.3.16).
            skip_from = address if first_in_slice else prev_addr + 1
            first_in_slice = False
            for skip_addr in range(skip_from, address):
                skip_snap = None if lean else state.snapshot()
                smb = make_skipped(skip_addr, state)
                parsed.items.append(
                    ParsedMB(
                        mb=smb,
                        state_before=skip_snap,
                        slice_row=row,
                        slice_index=slice_index,
                    )
                )
                parsed.n_skipped += 1
            snap = None if lean else state.snapshot()
            mb = parse_macroblock_body(br, state)
            mb.bit_start = bit_start
            mb.address = address
            parsed.items.append(
                ParsedMB(
                    mb=mb,
                    state_before=snap,
                    slice_row=row,
                    slice_index=slice_index,
                )
            )
            prev_addr = address
