"""From-scratch MPEG-2 video codec substrate.

This package implements the subset of ISO/IEC 13818-2 exercised by the
paper's parallel decoder: frame-picture, frame-prediction, frame-DCT coding
of 4:2:0 I/P/B pictures with the standard VLC tables, zigzag scan, default
quantization matrices, and half-pel motion compensation.

Components
----------
- :mod:`repro.mpeg2.tables` / :mod:`repro.mpeg2.vlc` — the entropy-coding
  layer (tables B.1, B.2-B.4, B.9, B.10, B.12-B.14 plus escape coding).
- :mod:`repro.mpeg2.dct` — 8x8 DCT/IDCT, quantization, scan ordering.
- :mod:`repro.mpeg2.frames` — YCbCr 4:2:0 frame container and metrics.
- :mod:`repro.mpeg2.motion` — motion estimation and half-pel compensation.
- :mod:`repro.mpeg2.encoder` — a complete encoder (GOP structure, I/P/B).
- :mod:`repro.mpeg2.decoder` — the reference *sequential* decoder; it is the
  correctness oracle the parallel system must match bit-exactly.
- :mod:`repro.mpeg2.parser` — start-code scanning (the root splitter's
  engine) and full macroblock-level parsing (the second-level splitter's
  engine).

Supported tools: I/P/B frame pictures, closed and open GOPs, one or more
slices per macroblock row, skipped-macroblock runs, custom quantization
matrices, intra DC precision 8/9/10, intra_vlc_format 0 and 1, half-pel
motion compensation, program-stream multiplexing, VBV checking, and GOP
random access.  Deviations from ISO 13818-2, documented in DESIGN.md:
progressive frames only (no interlace tools), q_scale_type=0, no
concealment motion vectors, no dual-prime; some long table B.14/B.15 codes
fall back to escape coding.  The encoder and all decoders in this
repository are mutually consistent.
"""

from repro.mpeg2.frames import Frame, psnr
from repro.mpeg2.encoder import Encoder, EncoderConfig
from repro.mpeg2.decoder import Decoder, decode_stream
from repro.mpeg2.parser import PictureScanner, MacroblockParser

__all__ = [
    "Frame",
    "psnr",
    "Encoder",
    "EncoderConfig",
    "Decoder",
    "decode_stream",
    "PictureScanner",
    "MacroblockParser",
]
