"""YCbCr 4:2:0 frame container and pixel-domain utilities."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.mpeg2.constants import MB_SIZE


@dataclass
class Frame:
    """One video frame in planar YCbCr 4:2:0.

    ``y`` is ``(height, width)`` uint8; ``cb``/``cr`` are
    ``(height // 2, width // 2)`` uint8.  Dimensions must be multiples of 16
    (the encoder pads content to macroblock alignment before coding).
    """

    y: np.ndarray
    cb: np.ndarray
    cr: np.ndarray

    def __post_init__(self) -> None:
        h, w = self.y.shape
        if h % MB_SIZE or w % MB_SIZE:
            raise ValueError(f"frame size {w}x{h} not macroblock aligned")
        if self.cb.shape != (h // 2, w // 2) or self.cr.shape != (h // 2, w // 2):
            raise ValueError("chroma planes are not 4:2:0 subsampled")
        for plane in (self.y, self.cb, self.cr):
            if plane.dtype != np.uint8:
                raise ValueError("planes must be uint8")

    # ------------------------------------------------------------------ #

    @property
    def width(self) -> int:
        return self.y.shape[1]

    @property
    def height(self) -> int:
        return self.y.shape[0]

    @property
    def mb_width(self) -> int:
        return self.width // MB_SIZE

    @property
    def mb_height(self) -> int:
        return self.height // MB_SIZE

    @property
    def n_macroblocks(self) -> int:
        return self.mb_width * self.mb_height

    @property
    def n_pixels(self) -> int:
        return self.width * self.height

    # ------------------------------------------------------------------ #

    @classmethod
    def blank(cls, width: int, height: int, y: int = 16, c: int = 128) -> "Frame":
        """A uniform frame (defaults to black in video range)."""
        return cls(
            y=np.full((height, width), y, dtype=np.uint8),
            cb=np.full((height // 2, width // 2), c, dtype=np.uint8),
            cr=np.full((height // 2, width // 2), c, dtype=np.uint8),
        )

    @classmethod
    def from_planes(cls, y: np.ndarray, cb: np.ndarray, cr: np.ndarray) -> "Frame":
        return cls(
            y=np.ascontiguousarray(y, dtype=np.uint8),
            cb=np.ascontiguousarray(cb, dtype=np.uint8),
            cr=np.ascontiguousarray(cr, dtype=np.uint8),
        )

    def copy(self) -> "Frame":
        return Frame(self.y.copy(), self.cb.copy(), self.cr.copy())

    # ------------------------------------------------------------------ #
    # comparisons
    # ------------------------------------------------------------------ #

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Frame):
            return NotImplemented
        return (
            np.array_equal(self.y, other.y)
            and np.array_equal(self.cb, other.cb)
            and np.array_equal(self.cr, other.cr)
        )

    def max_abs_diff(self, other: "Frame") -> int:
        """Largest per-sample difference across all three planes."""
        return max(
            int(np.max(np.abs(self.y.astype(np.int16) - other.y.astype(np.int16)), initial=0)),
            int(np.max(np.abs(self.cb.astype(np.int16) - other.cb.astype(np.int16)), initial=0)),
            int(np.max(np.abs(self.cr.astype(np.int16) - other.cr.astype(np.int16)), initial=0)),
        )

    # ------------------------------------------------------------------ #
    # macroblock access
    # ------------------------------------------------------------------ #

    def mb_luma(self, mb_x: int, mb_y: int) -> np.ndarray:
        """View of the 16x16 luma samples of macroblock (mb_x, mb_y)."""
        return self.y[
            mb_y * MB_SIZE : (mb_y + 1) * MB_SIZE,
            mb_x * MB_SIZE : (mb_x + 1) * MB_SIZE,
        ]

    def mb_chroma(self, mb_x: int, mb_y: int) -> tuple[np.ndarray, np.ndarray]:
        """Views of the 8x8 Cb and Cr samples of macroblock (mb_x, mb_y)."""
        sl = (
            slice(mb_y * 8, (mb_y + 1) * 8),
            slice(mb_x * 8, (mb_x + 1) * 8),
        )
        return self.cb[sl], self.cr[sl]


def psnr(a: Frame, b: Frame) -> float:
    """Luma PSNR in dB between two frames (inf for identical planes)."""
    diff = a.y.astype(np.float64) - b.y.astype(np.float64)
    mse = float(np.mean(diff * diff))
    if mse == 0.0:
        return float("inf")
    return 10.0 * np.log10(255.0 * 255.0 / mse)


def pad_to_macroblocks(y: np.ndarray, cb: np.ndarray, cr: np.ndarray) -> Frame:
    """Edge-pad arbitrary-size planes up to macroblock-aligned dimensions."""
    h, w = y.shape
    ph = (MB_SIZE - h % MB_SIZE) % MB_SIZE
    pw = (MB_SIZE - w % MB_SIZE) % MB_SIZE
    if ph or pw:
        y = np.pad(y, ((0, ph), (0, pw)), mode="edge")
        cb = np.pad(cb, ((0, ph // 2), (0, pw // 2)), mode="edge")
        cr = np.pad(cr, ((0, ph // 2), (0, pw // 2)), mode="edge")
    return Frame.from_planes(y, cb, cr)
