"""Variable-length coding engines built from the Annex B tables.

:class:`VLCTable` turns a ``symbol -> (bits, length)`` mapping into an
encoder and a single-lookup decoder (a flat table indexed by the next
``max_length`` bits, the classic software-VLC trick mpeg2dec uses).  On top
of it sit the composite codecs the syntax layer needs: macroblock address
increments with escapes, motion codes with residuals, and the run/level DCT
coefficient codec with end-of-block, first-coefficient special case, and
MPEG-2 escape coding.
"""

from __future__ import annotations

from typing import Dict, Hashable, List, Sequence, Tuple

from repro.bitstream import BitReader, BitstreamError, BitWriter
from repro.mpeg2 import tables as T


class VLCError(BitstreamError):
    """Raised when no code in the table matches the bitstream."""


class VLCTable:
    """Prefix-code encoder/decoder for one Annex B table."""

    def __init__(self, name: str, mapping: Dict[Hashable, Tuple[int, int]]):
        self.name = name
        self.mapping = dict(mapping)
        self.max_len = max(length for _, length in mapping.values())
        self._check_prefix_free()
        # Flat decode LUT: index by the next max_len bits, store (sym, len).
        size = 1 << self.max_len
        lut: List[Tuple[Hashable, int] | None] = [None] * size
        for sym, (bits, length) in mapping.items():
            shift = self.max_len - length
            base = bits << shift
            for i in range(1 << shift):
                lut[base + i] = (sym, length)
        self._lut = lut

    def _check_prefix_free(self) -> None:
        codes = sorted(
            ((bits, length) for bits, length in self.mapping.values()),
            key=lambda c: c[1],
        )
        for i, (bits_a, len_a) in enumerate(codes):
            for bits_b, len_b in codes[i + 1 :]:
                if bits_b >> (len_b - len_a) == bits_a:
                    raise ValueError(
                        f"table {self.name}: {bits_a:0{len_a}b} is a prefix "
                        f"of {bits_b:0{len_b}b}"
                    )

    def encode(self, writer: BitWriter, symbol: Hashable) -> None:
        bits, length = self.mapping[symbol]
        writer.write(bits, length)

    def code_length(self, symbol: Hashable) -> int:
        return self.mapping[symbol][1]

    def decode(self, reader: BitReader):
        idx = reader.peek(self.max_len)
        hit = self._lut[idx]
        if hit is None:
            raise VLCError(
                f"table {self.name}: no code matches bits "
                f"{idx:0{self.max_len}b} at bit {reader.pos}"
            )
        sym, length = hit
        reader.skip(length)
        return sym

    def try_decode(self, reader: BitReader):
        """Decode without raising; returns None and leaves the cursor put."""
        idx = reader.peek(self.max_len)
        hit = self._lut[idx]
        if hit is None:
            return None
        sym, length = hit
        reader.skip(length)
        return sym


# Table singletons -------------------------------------------------------- #

MB_ADDR_INC = VLCTable("mb_address_increment", T.MB_ADDRESS_INCREMENT)
MB_TYPE_I = VLCTable("mb_type_i", T.MB_TYPE_I)
MB_TYPE_P = VLCTable("mb_type_p", T.MB_TYPE_P)
MB_TYPE_B = VLCTable("mb_type_b", T.MB_TYPE_B)
CBP = VLCTable("coded_block_pattern", T.CODED_BLOCK_PATTERN)
MOTION = VLCTable("motion_code", T.MOTION_CODE)
DC_SIZE_LUMA = VLCTable("dct_dc_size_luma", T.DCT_DC_SIZE_LUMA)
DC_SIZE_CHROMA = VLCTable("dct_dc_size_chroma", T.DCT_DC_SIZE_CHROMA)
DCT_COEFF = VLCTable("dct_coeff", T.DCT_COEFF)
DCT_COEFF_T1 = VLCTable("dct_coeff_t1", T.DCT_COEFF_T1)


# Keyed by the IntEnum *values* so int and PictureType arguments both hit.
_MB_TYPE_TABLES = {1: MB_TYPE_I, 2: MB_TYPE_P, 3: MB_TYPE_B}


def mb_type_table(picture_type: int) -> VLCTable:
    return _MB_TYPE_TABLES[int(picture_type)]


# ------------------------------------------------------------------------ #
# macroblock_address_increment with escapes (§6.3.16)
# ------------------------------------------------------------------------ #


def encode_address_increment(writer: BitWriter, increment: int) -> None:
    """Emit ``macroblock_escape`` codes then the residual increment."""
    if increment < 1:
        raise ValueError(f"address increment must be >= 1, got {increment}")
    esc_bits, esc_len = T.MB_ESCAPE_CODE
    while increment > 33:
        writer.write(esc_bits, esc_len)
        increment -= 33
    MB_ADDR_INC.encode(writer, increment)


def decode_address_increment(reader: BitReader) -> int:
    esc_bits, esc_len = T.MB_ESCAPE_CODE
    total = 0
    while reader.peek(esc_len) == esc_bits:
        reader.skip(esc_len)
        total += 33
    return total + MB_ADDR_INC.decode(reader)


# ------------------------------------------------------------------------ #
# motion vectors (§6.3.17.3, §7.6.3.1)
# ------------------------------------------------------------------------ #


def encode_motion_delta(writer: BitWriter, delta: int, r_size: int) -> None:
    """Encode one motion-vector component delta.

    ``delta`` is the prediction residual in half-pel units, already folded
    into the legal range ``[-16*f, 16*f - 1]`` where ``f = 1 << r_size``.
    The code is ``motion_code`` (table B.10) plus an ``r_size``-bit residual.
    """
    f = 1 << r_size
    if delta == 0:
        MOTION.encode(writer, 0)
        return
    sign = 1 if delta > 0 else -1
    a = abs(delta)
    motion_code = (a + f - 1) // f
    if motion_code > 16:
        raise ValueError(f"motion delta {delta} out of range for r_size {r_size}")
    MOTION.encode(writer, sign * motion_code)
    if r_size:
        residual = a - (motion_code - 1) * f - 1  # in [0, f-1]
        writer.write(residual, r_size)


def decode_motion_delta(reader: BitReader, r_size: int) -> int:
    motion_code = MOTION.decode(reader)
    if motion_code == 0:
        return 0
    f = 1 << r_size
    residual = reader.read(r_size) if r_size else 0
    a = (abs(motion_code) - 1) * f + residual + 1
    return a if motion_code > 0 else -a


# ------------------------------------------------------------------------ #
# DCT coefficient run/level codec (§7.2.2, table B.14 + escape)
# ------------------------------------------------------------------------ #


def encode_coefficients(
    writer: BitWriter,
    run_levels: Sequence[Tuple[int, int]],
    intra: bool,
    table_one: bool = False,
) -> None:
    """Encode a block's (run, level) list and the end-of-block code.

    For non-intra blocks the very first coefficient may use the 1-bit
    ``(0, +/-1)`` short form.  Intra blocks start after the separately-coded
    DC term, so the short form never applies to them here (we pass
    ``intra=True`` for the AC coefficients of intra blocks).

    ``table_one`` selects table B.15 with its own end-of-block code —
    only legal for intra blocks (intra_vlc_format = 1, §7.2.2.1).
    """
    if table_one and not intra:
        raise ValueError("table B.15 applies to intra blocks only")
    table = DCT_COEFF_T1 if table_one else DCT_COEFF
    mapping = T.DCT_COEFF_T1 if table_one else T.DCT_COEFF
    first = not intra
    for run, level in run_levels:
        if level == 0:
            raise ValueError("zero level in run/level list")
        a = abs(level)
        sign = 0 if level > 0 else 1
        if first and run == 0 and a == 1:
            bits, length = T.FIRST_COEFF_01_CODE
            writer.write(bits, length)
            writer.write(sign, 1)
        elif (run, a) in mapping:
            table.encode(writer, (run, a))
            writer.write(sign, 1)
        else:
            if a > T.MAX_ESCAPE_LEVEL or run > 63:
                raise ValueError(f"(run={run}, level={level}) not escapable")
            bits, length = T.DCT_ESCAPE_CODE
            writer.write(bits, length)
            writer.write(run, T.ESCAPE_RUN_BITS)
            writer.write(level & ((1 << T.ESCAPE_LEVEL_BITS) - 1), T.ESCAPE_LEVEL_BITS)
        first = False
    bits, length = T.EOB_CODE_T1 if table_one else T.EOB_CODE
    writer.write(bits, length)


def decode_coefficients(
    reader: BitReader, intra: bool, table_one: bool = False
) -> List[Tuple[int, int]]:
    """Decode (run, level) pairs up to and including the end-of-block code."""
    if table_one and not intra:
        raise ValueError("table B.15 applies to intra blocks only")
    table = DCT_COEFF_T1 if table_one else DCT_COEFF
    out: List[Tuple[int, int]] = []
    first = not intra
    esc_bits, esc_len = T.DCT_ESCAPE_CODE
    eob_bits, eob_len = (T.EOB_CODE_T1 if table_one else T.EOB_CODE)
    while True:
        if first:
            # At the first coefficient of a non-intra block a leading '1'
            # always means (0, +/-1); EOB cannot occur first.
            if reader.peek(1) == 1:
                reader.skip(1)
                sign = reader.read(1)
                out.append((0, -1 if sign else 1))
                first = False
                continue
        else:
            if reader.peek(eob_len) == eob_bits:
                reader.skip(eob_len)
                return out
        if reader.peek(esc_len) == esc_bits:
            reader.skip(esc_len)
            run = reader.read(T.ESCAPE_RUN_BITS)
            level = reader.read(T.ESCAPE_LEVEL_BITS)
            if level >= 1 << (T.ESCAPE_LEVEL_BITS - 1):
                level -= 1 << T.ESCAPE_LEVEL_BITS
            if level == 0:
                raise VLCError("escape-coded level of zero")
            out.append((run, level))
        else:
            run, a = table.decode(reader)
            sign = reader.read(1)
            out.append((run, -a if sign else a))
        first = False
