"""8x8 DCT/IDCT, quantization, and scan ordering (ISO 13818-2 §7.3-§7.4).

All kernels are vectorized over *stacks* of blocks shaped ``(N, 8, 8)`` —
per-block Python loops only appear at the entropy layer where the bitstream
forces serialization.  The IDCT is the floating-point separable transform
with deterministic rounding; encoder and every decoder in this repository
share it, so sequential and parallel reconstructions are bit-identical.
"""

from __future__ import annotations

import numpy as np
import scipy.fft

from repro.mpeg2 import tables as T

BLOCK = 8

# Coefficient saturation range (§7.4.3)
COEFF_MIN, COEFF_MAX = -2048, 2047


def fdct(blocks: np.ndarray) -> np.ndarray:
    """Forward 2-D DCT-II in the MPEG scaling convention.

    ``blocks`` is ``(..., 8, 8)`` float or int; returns float64 coefficients.
    The orthonormal transform *is* the MPEG reference scaling: the DC of a
    constant block ``c`` is ``8c`` (max 2040 for 8-bit video), so every
    coefficient fits the standard's 12-bit saturation range.
    """
    x = np.asarray(blocks, dtype=np.float64)
    return scipy.fft.dctn(x, type=2, axes=(-2, -1), norm="ortho")


def idct(coeffs: np.ndarray) -> np.ndarray:
    """Inverse of :func:`fdct`; returns float64 spatial samples."""
    c = np.asarray(coeffs, dtype=np.float64)
    return scipy.fft.idctn(c, type=2, axes=(-2, -1), norm="ortho")


# ---------------------------------------------------------------------- #
# quantization
# ---------------------------------------------------------------------- #


def quantize_intra(
    coeffs: np.ndarray,
    qscale: int,
    matrix: np.ndarray = T.DEFAULT_INTRA_QUANT_MATRIX,
    dc_scaler: int = 8,
) -> np.ndarray:
    """Quantize intra blocks; DC divides by ``dc_scaler`` (8/4/2 for
    intra_dc_precision 8/9/10, §7.4.1).

    Returns int32 levels with the DC level in position [0, 0] expressed in
    QDC units (reconstruction multiplies by ``dc_scaler``).
    """
    c = np.asarray(coeffs, dtype=np.float64)
    w = matrix.astype(np.float64)
    q = np.rint(16.0 * c / (w * qscale)).astype(np.int64)
    dc = np.rint(c[..., 0, 0] / dc_scaler).astype(np.int64)
    # AC levels must survive escape coding; DC is bounded by its precision.
    np.clip(q, -T.MAX_ESCAPE_LEVEL, T.MAX_ESCAPE_LEVEL, out=q)
    q[..., 0, 0] = np.clip(dc, 0, 2048 // dc_scaler - 1)
    return q.astype(np.int32)


def _qscale_factor(qscale, ndim_levels: int) -> np.ndarray:
    """Broadcast a scalar or per-block quantiser scale over ``(..., 8, 8)``.

    A 1-D array of per-block scales lets the batched reconstruction engine
    dequantize a whole picture's ``(N, 8, 8)`` coefficient stack in one call
    even though the quantiser scale varies macroblock to macroblock.
    """
    qs = np.asarray(qscale, dtype=np.int64)
    if qs.ndim == 0:
        return qs
    if qs.ndim != 1:
        raise ValueError(f"qscale must be scalar or 1-D, got shape {qs.shape}")
    return qs.reshape(qs.shape + (1,) * (ndim_levels - 1))


def dequantize_intra(
    levels: np.ndarray,
    qscale,
    matrix: np.ndarray = T.DEFAULT_INTRA_QUANT_MATRIX,
    dc_scaler: int = 8,
) -> np.ndarray:
    """Reconstruct intra coefficients (§7.4.2.1), saturated to 12 bits.

    ``qscale`` may be a scalar or a 1-D array of per-block scales matching
    the leading axis of a ``(N, 8, 8)`` stack.
    """
    q = np.asarray(levels, dtype=np.int64)
    w = matrix.astype(np.int64)
    f = q * w
    f *= _qscale_factor(qscale, q.ndim)
    f //= 16
    f[..., 0, 0] = q[..., 0, 0] * dc_scaler
    return np.clip(f, COEFF_MIN, COEFF_MAX, out=f)


def quantize_non_intra(
    coeffs: np.ndarray,
    qscale: int,
    matrix: np.ndarray = T.DEFAULT_NON_INTRA_QUANT_MATRIX,
) -> np.ndarray:
    """Quantize non-intra blocks with the standard dead zone (truncation)."""
    c = np.asarray(coeffs, dtype=np.float64)
    w = matrix.astype(np.float64)
    q = np.trunc(32.0 * c / (2.0 * w * qscale)).astype(np.int64)
    np.clip(q, -T.MAX_ESCAPE_LEVEL, T.MAX_ESCAPE_LEVEL, out=q)
    return q.astype(np.int32)


def dequantize_non_intra(
    levels: np.ndarray,
    qscale,
    matrix: np.ndarray = T.DEFAULT_NON_INTRA_QUANT_MATRIX,
) -> np.ndarray:
    """Reconstruct non-intra coefficients (§7.4.2.2) with oddification.

    ``qscale`` may be a scalar or a 1-D array of per-block scales matching
    the leading axis of a ``(N, 8, 8)`` stack.
    """
    q = np.asarray(levels, dtype=np.int64)
    w = matrix.astype(np.int64)
    f = 2 * q
    f += np.sign(q)
    f *= w
    f *= _qscale_factor(qscale, q.ndim)
    f //= 32
    return np.clip(f, COEFF_MIN, COEFF_MAX, out=f)


# ---------------------------------------------------------------------- #
# scan ordering / run-level conversion
# ---------------------------------------------------------------------- #


def block_to_scan(block: np.ndarray) -> np.ndarray:
    """Reorder an ``(..., 8, 8)`` block into ``(..., 64)`` zigzag order."""
    flat = np.asarray(block).reshape(*block.shape[:-2], 64)
    return flat[..., T.RASTER_OF_SCAN]


def scan_to_block(scan: np.ndarray) -> np.ndarray:
    """Inverse of :func:`block_to_scan`."""
    scan = np.asarray(scan)
    # Gather through the inverse permutation (faster than a fancy scatter).
    flat = scan[..., T.SCAN_OF_RASTER]
    return flat.reshape(*scan.shape[:-1], 8, 8)


def run_levels_from_scan(scan: np.ndarray, skip_dc: bool) -> list[tuple[int, int]]:
    """Convert one 64-entry scan vector to (run, level) pairs.

    ``skip_dc`` drops position 0 (intra blocks code DC separately).
    """
    start = 1 if skip_dc else 0
    (nz,) = np.nonzero(scan[start:])
    out: list[tuple[int, int]] = []
    prev = -1
    for idx in nz:
        out.append((int(idx) - prev - 1, int(scan[start + idx])))
        prev = int(idx)
    return out


def scan_from_run_levels(
    run_levels: list[tuple[int, int]], dc: int | None
) -> np.ndarray:
    """Rebuild a 64-entry scan vector; ``dc`` fills position 0 if given."""
    scan = np.zeros(64, dtype=np.int32)
    pos = 1 if dc is not None else 0
    if dc is not None:
        scan[0] = dc
    for run, level in run_levels:
        pos += run
        if pos > 63:
            raise ValueError("run/level sequence overruns the block")
        scan[pos] = level
        pos += 1
    return scan
